#include "baseline/vdr_server.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Millis(605);

class VdrServerTest : public ::testing::Test {
 protected:
  // 4 clusters; objects of 10 subobjects => display time 6.05 s.
  void MakeServer(int32_t num_objects = 10, int32_t preload = 4,
                  bool replication = true, int64_t subobjects = 10) {
    catalog_ = Catalog::Uniform(num_objects, subobjects, Bandwidth::Mbps(100));
    TertiaryParameters tp;
    tp.bandwidth = Bandwidth::Mbps(40);
    tp.reposition = SimTime::Zero();
    tertiary_ = std::make_unique<TertiaryManager>(&sim_, TertiaryDevice(tp));
    VdrConfig config;
    config.num_clusters = 4;
    config.cluster_degree = 5;
    config.interval = kInterval;
    config.fragment_size = DataSize::MB(1.512);
    config.enable_replication = replication;
    config.preload_objects = preload;
    auto server = VdrServer::Create(&sim_, &catalog_, tertiary_.get(), config);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = *std::move(server);
  }

  struct Probe {
    bool started = false;
    bool completed = false;
    bool interrupted = false;
    SimTime latency;
  };

  void Request(ObjectId object, Probe* probe) {
    Status st = server_->RequestDisplay(
        object,
        [probe](SimTime latency) {
          probe->started = true;
          probe->latency = latency;
        },
        [probe] { probe->completed = true; },
        [probe] { probe->interrupted = true; });
    ASSERT_TRUE(st.ok()) << st;
  }

  SimTime DisplayTime() const { return kInterval * 10; }

  Simulator sim_;
  Catalog catalog_;
  std::unique_ptr<TertiaryManager> tertiary_;
  std::unique_ptr<VdrServer> server_;
};

TEST_F(VdrServerTest, ConfigValidation) {
  VdrConfig config;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());  // no clusters
  config.num_clusters = 4;
  config.cluster_degree = 5;
  config.interval = kInterval;
  EXPECT_TRUE(config.Validate().ok());
  config.objects_per_cluster = 0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.objects_per_cluster = 2;
  config.preload_replicas = {1, 1};
  EXPECT_TRUE(config.Validate().IsInvalidArgument());  // needs opc == 1
}

TEST_F(VdrServerTest, UnknownObjectRejected) {
  MakeServer();
  EXPECT_TRUE(server_->RequestDisplay(99, nullptr, nullptr).IsNotFound());
}

TEST_F(VdrServerTest, PreloadedObjectDisplaysImmediately) {
  MakeServer();
  Probe p;
  Request(0, &p);
  EXPECT_TRUE(p.started);
  EXPECT_EQ(p.latency, SimTime::Zero());
  sim_.RunUntil(DisplayTime() + SimTime::Seconds(1));
  EXPECT_TRUE(p.completed);
  EXPECT_EQ(server_->metrics().displays_completed, 1);
}

TEST_F(VdrServerTest, SecondRequestForSameObjectWaits) {
  MakeServer(/*num_objects=*/10, /*preload=*/4, /*replication=*/false);
  Probe a, b;
  Request(0, &a);
  Request(0, &b);
  EXPECT_TRUE(a.started);
  EXPECT_FALSE(b.started);  // sole replica busy
  sim_.RunUntil(DisplayTime() + SimTime::Seconds(1));
  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(b.started);
  EXPECT_NEAR(b.latency.seconds(), DisplayTime().seconds(), 0.01);
}

TEST_F(VdrServerTest, DifferentObjectsDisplayConcurrently) {
  MakeServer();
  Probe p[4];
  for (ObjectId i = 0; i < 4; ++i) Request(i, &p[i]);
  for (const Probe& probe : p) EXPECT_TRUE(probe.started);
  sim_.RunUntil(DisplayTime() + SimTime::Seconds(1));
  for (const Probe& probe : p) EXPECT_TRUE(probe.completed);
}

TEST_F(VdrServerTest, MissTriggersMaterialization) {
  MakeServer(/*num_objects=*/10, /*preload=*/3);
  Probe p;
  Request(5, &p);  // not preloaded; cluster 3 is empty
  EXPECT_FALSE(p.started);
  EXPECT_EQ(server_->metrics().materializations, 1);
  // Object: 10 subobjects x 5 frags x 1.512 MB = 75.6 MB at 40 mbps
  // ~15.1 s, then the display runs.
  sim_.RunUntil(SimTime::Seconds(16));
  EXPECT_TRUE(p.started);
  sim_.RunUntil(SimTime::Seconds(16) + DisplayTime());
  EXPECT_TRUE(p.completed);
  EXPECT_EQ(server_->ReplicaCount(5), 1);
}

TEST_F(VdrServerTest, ConcurrentMissesShareOneMaterialization) {
  MakeServer(/*num_objects=*/10, /*preload=*/3);
  Probe a, b;
  Request(5, &a);
  Request(5, &b);
  EXPECT_EQ(server_->metrics().materializations, 1);
  sim_.RunUntil(SimTime::Minutes(2));
  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(b.completed);
}

TEST_F(VdrServerTest, MaterializationEvictsLfuWhenFull) {
  MakeServer(/*num_objects=*/10, /*preload=*/4);
  // Touch objects 0-2 so object 3 is the LFU resident.
  Probe warm[3];
  for (ObjectId i = 0; i < 3; ++i) Request(i, &warm[i]);
  sim_.RunUntil(DisplayTime() + SimTime::Seconds(1));
  Probe p;
  Request(7, &p);
  sim_.RunUntil(SimTime::Minutes(2));
  EXPECT_TRUE(p.completed);
  EXPECT_EQ(server_->ReplicaCount(3), 0);  // evicted
  EXPECT_EQ(server_->ReplicaCount(7), 1);
  EXPECT_GE(server_->metrics().evictions, 1);
}

TEST_F(VdrServerTest, PiggybackReplicationGrowsHotObjects) {
  MakeServer(/*num_objects=*/10, /*preload=*/2);
  // Three queued requests for object 0 while one replica exists.
  Probe p[4];
  for (int i = 0; i < 4; ++i) Request(0, &p[i]);
  sim_.RunUntil(DisplayTime() * 5);
  EXPECT_GE(server_->metrics().replications, 1);
  EXPECT_GE(server_->ReplicaCount(0), 2);
  for (const Probe& probe : p) EXPECT_TRUE(probe.completed);
}

TEST_F(VdrServerTest, ReplicationDisabledNeverReplicates) {
  MakeServer(/*num_objects=*/10, /*preload=*/2, /*replication=*/false);
  Probe p[4];
  for (int i = 0; i < 4; ++i) Request(0, &p[i]);
  sim_.RunUntil(DisplayTime() * 6);
  EXPECT_EQ(server_->metrics().replications, 0);
  EXPECT_EQ(server_->ReplicaCount(0), 1);
  for (const Probe& probe : p) EXPECT_TRUE(probe.completed);
}

TEST_F(VdrServerTest, ReplicationNeverDisplacesSoleReplicas) {
  // All four clusters hold sole replicas of touched objects; replication
  // of the hot object must find no destination.
  MakeServer(/*num_objects=*/10, /*preload=*/4);
  Probe warm[4];
  for (ObjectId i = 0; i < 4; ++i) Request(i, &warm[i]);
  sim_.RunUntil(DisplayTime() + SimTime::Seconds(1));
  Probe p[3];
  for (int i = 0; i < 3; ++i) Request(0, &p[i]);
  sim_.RunUntil(DisplayTime() * 6);
  EXPECT_EQ(server_->metrics().replications, 0);
  EXPECT_EQ(server_->ResidentObjectCount(), 4);
}

TEST_F(VdrServerTest, DemandProportionalPreload) {
  catalog_ = Catalog::Uniform(10, 10, Bandwidth::Mbps(100));
  TertiaryParameters tp;
  tertiary_ = std::make_unique<TertiaryManager>(&sim_, TertiaryDevice(tp));
  VdrConfig config;
  config.num_clusters = 4;
  config.cluster_degree = 5;
  config.interval = kInterval;
  config.preload_replicas = {2, 1, 1};
  auto server = VdrServer::Create(&sim_, &catalog_, tertiary_.get(), config);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ((*server)->ReplicaCount(0), 2);
  EXPECT_EQ((*server)->ReplicaCount(1), 1);
  EXPECT_EQ((*server)->ReplicaCount(2), 1);
  EXPECT_EQ((*server)->ResidentObjectCount(), 3);
}

// ---------------------------------------------------------------------
// Materialization timeout / retry / terminal-interrupt machinery.
// Object size: 10 subobjects x 5 frags x 1.512 MB = 75.6 MB, which the
// 40 mbps tertiary moves in ~15.1 s.
// ---------------------------------------------------------------------

class VdrTimeoutTest : public VdrServerTest {
 protected:
  void MakeTimeoutServer(SimTime timeout, int32_t retries,
                         SimTime backoff = SimTime::Seconds(2),
                         SimTime cap = SimTime::Seconds(8),
                         int32_t preload = 3) {
    catalog_ = Catalog::Uniform(10, 10, Bandwidth::Mbps(100));
    TertiaryParameters tp;
    tp.bandwidth = Bandwidth::Mbps(40);
    tp.reposition = SimTime::Zero();
    tertiary_ = std::make_unique<TertiaryManager>(&sim_, TertiaryDevice(tp));
    VdrConfig config;
    config.num_clusters = 4;
    config.cluster_degree = 5;
    config.interval = kInterval;
    config.fragment_size = DataSize::MB(1.512);
    config.preload_objects = preload;
    config.materialization_timeout = timeout;
    config.max_materialization_retries = retries;
    config.materialization_retry_backoff = backoff;
    config.max_materialization_backoff = cap;
    auto server = VdrServer::Create(&sim_, &catalog_, tertiary_.get(), config);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = *std::move(server);
  }
};

TEST_F(VdrTimeoutTest, TimeoutConfigValidates) {
  VdrConfig config;
  config.num_clusters = 4;
  config.cluster_degree = 5;
  config.interval = kInterval;
  ASSERT_TRUE(config.Validate().ok());
  config.materialization_timeout = SimTime::Micros(-1);
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.materialization_timeout = SimTime::Seconds(5);
  config.max_materialization_retries = -1;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.max_materialization_retries = 2;
  config.materialization_retry_backoff = SimTime::Zero();
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.materialization_retry_backoff = SimTime::Seconds(4);
  config.max_materialization_backoff = SimTime::Seconds(2);
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.max_materialization_backoff = SimTime::Seconds(16);
  EXPECT_TRUE(config.Validate().ok());
  // Disabled timeout ignores the other knobs entirely.
  config.materialization_timeout = SimTime::Zero();
  config.max_materialization_retries = -7;
  EXPECT_TRUE(config.Validate().ok());
}

TEST_F(VdrTimeoutTest, GenerousTimeoutLandsNormally) {
  MakeTimeoutServer(SimTime::Seconds(20), /*retries=*/3);
  Probe p;
  Request(5, &p);
  sim_.RunUntil(SimTime::Seconds(16));
  EXPECT_TRUE(p.started);  // landing at ~15.1 s beat the 20 s guard
  sim_.RunUntil(SimTime::Seconds(16) + DisplayTime());
  EXPECT_TRUE(p.completed);
  EXPECT_FALSE(p.interrupted);
  EXPECT_EQ(server_->metrics().materialization_timeouts, 0);
  EXPECT_EQ(server_->metrics().materialization_retries, 0);
  EXPECT_EQ(server_->metrics().materializations_abandoned, 0);
}

TEST_F(VdrTimeoutTest, SlowTertiaryExhaustsRetriesAndInterrupts) {
  // 5 s guard against a ~15.1 s transfer: attempt 1 times out at 5,
  // retries after the 2 s backoff at 7, attempt 2 times out at 12 and
  // exhausts the budget — the waiter gets its terminal interruption.
  MakeTimeoutServer(SimTime::Seconds(5), /*retries=*/1);
  Probe p;
  Request(5, &p);
  // Run past the stale landings (15.1 s, 30.2 s) to exercise the
  // token-void path as well.
  sim_.RunUntil(SimTime::Seconds(60));
  EXPECT_FALSE(p.started);
  EXPECT_FALSE(p.completed);
  EXPECT_TRUE(p.interrupted);
  EXPECT_EQ(server_->metrics().materializations, 2);
  EXPECT_EQ(server_->metrics().materialization_timeouts, 2);
  EXPECT_EQ(server_->metrics().materialization_retries, 1);
  EXPECT_EQ(server_->metrics().materializations_abandoned, 1);
  EXPECT_EQ(server_->metrics().displays_completed, 0);
  EXPECT_EQ(server_->ReplicaCount(5), 0);
}

TEST_F(VdrTimeoutTest, ZeroRetriesAbandonsAfterFirstTimeout) {
  MakeTimeoutServer(SimTime::Seconds(5), /*retries=*/0);
  Probe p;
  Request(5, &p);
  sim_.RunUntil(SimTime::Seconds(6));
  EXPECT_TRUE(p.interrupted);
  EXPECT_EQ(server_->metrics().materialization_timeouts, 1);
  EXPECT_EQ(server_->metrics().materialization_retries, 0);
  EXPECT_EQ(server_->metrics().materializations_abandoned, 1);
}

TEST_F(VdrTimeoutTest, BusyTertiaryTimeoutThenRetrySucceeds) {
  // Two misses share the tertiary: the second object's transfer sits in
  // the device queue (~15.1 s wait + 15.1 s transfer) and its 25 s
  // guard fires mid-queue.  The backoff retry re-enqueues it behind the
  // stale transfer and the second attempt lands inside its own window.
  MakeTimeoutServer(SimTime::Seconds(25), /*retries=*/3,
                    SimTime::Seconds(2), SimTime::Seconds(8),
                    /*preload=*/2);
  Probe a, b;
  Request(5, &a);
  Request(6, &b);
  sim_.RunUntil(SimTime::Seconds(60));
  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(b.completed);
  EXPECT_FALSE(b.interrupted);
  EXPECT_EQ(server_->metrics().materializations, 3);  // 5, 6, and 6 again
  EXPECT_EQ(server_->metrics().materialization_timeouts, 1);
  EXPECT_EQ(server_->metrics().materialization_retries, 1);
  EXPECT_EQ(server_->metrics().materializations_abandoned, 0);
  EXPECT_EQ(server_->ReplicaCount(5), 1);
  EXPECT_EQ(server_->ReplicaCount(6), 1);
}

TEST_F(VdrServerTest, ClusterUtilizationAccounts) {
  MakeServer();
  Probe p;
  Request(0, &p);
  sim_.RunUntil(DisplayTime() * 2);
  // One of four clusters busy for half the elapsed time.
  EXPECT_NEAR(server_->MeanClusterUtilization(), 0.125, 0.01);
}

}  // namespace
}  // namespace stagger
