// VDR baseline edge cases: multi-object clusters, queue pressure
// metrics, destination starvation, and replica bookkeeping under
// eviction.

#include <gtest/gtest.h>

#include <memory>

#include "baseline/vdr_server.h"
#include "sim/simulator.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Millis(605);

class VdrEdgeTest : public ::testing::Test {
 protected:
  void MakeServer(VdrConfig config, int32_t num_objects = 10,
                  int64_t subobjects = 10) {
    catalog_ = Catalog::Uniform(num_objects, subobjects, Bandwidth::Mbps(100));
    TertiaryParameters tp;
    tp.bandwidth = Bandwidth::Mbps(40);
    tp.reposition = SimTime::Zero();
    tertiary_ = std::make_unique<TertiaryManager>(&sim_, TertiaryDevice(tp));
    auto server = VdrServer::Create(&sim_, &catalog_, tertiary_.get(), config);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = *std::move(server);
  }

  VdrConfig BaseConfig() {
    VdrConfig config;
    config.num_clusters = 4;
    config.cluster_degree = 5;
    config.interval = kInterval;
    config.fragment_size = DataSize::MB(1.512);
    return config;
  }

  Simulator sim_;
  Catalog catalog_;
  std::unique_ptr<TertiaryManager> tertiary_;
  std::unique_ptr<VdrServer> server_;
};

TEST_F(VdrEdgeTest, MultipleObjectsPerCluster) {
  VdrConfig config = BaseConfig();
  config.objects_per_cluster = 2;
  config.preload_objects = 8;  // fills 4 clusters x 2 objects
  MakeServer(config);
  EXPECT_EQ(server_->ResidentObjectCount(), 8);
  // Displays of co-resident objects contend for the one cluster.
  bool a_started = false, b_started = false;
  ASSERT_TRUE(server_
                  ->RequestDisplay(0, [&](SimTime) { a_started = true; },
                                   [] {})
                  .ok());
  ASSERT_TRUE(server_
                  ->RequestDisplay(4, [&](SimTime) { b_started = true; },
                                   [] {})
                  .ok());
  // Objects 0 and 4 share cluster 0 under round-robin preload.
  EXPECT_TRUE(a_started);
  EXPECT_FALSE(b_started);
  sim_.RunUntil(kInterval * 12);
  EXPECT_TRUE(b_started);
}

TEST_F(VdrEdgeTest, QueueLengthMetricRisesUnderContention) {
  VdrConfig config = BaseConfig();
  config.preload_objects = 4;
  config.enable_replication = false;
  MakeServer(config);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(server_->RequestDisplay(0, nullptr, [] {}).ok());
  }
  sim_.RunUntil(kInterval * 20);
  EXPECT_GT(server_->metrics().queue_length.Average(sim_.Now()), 1.0);
}

TEST_F(VdrEdgeTest, MissWaitsWhenNoClusterClaimable) {
  VdrConfig config = BaseConfig();
  config.preload_objects = 4;
  config.enable_replication = false;
  MakeServer(config);
  // Occupy all four clusters with displays.
  for (ObjectId id = 0; id < 4; ++id) {
    ASSERT_TRUE(server_->RequestDisplay(id, nullptr, [] {}).ok());
  }
  // A miss cannot claim a destination while every cluster is busy.
  bool miss_started = false;
  ASSERT_TRUE(server_
                  ->RequestDisplay(7, [&](SimTime) { miss_started = true; },
                                   [] {})
                  .ok());
  sim_.RunUntil(kInterval * 3);
  EXPECT_EQ(server_->metrics().materializations, 0);
  EXPECT_FALSE(miss_started);
  // After the displays end, the materialization claims a cluster and
  // the miss eventually plays (15.1 s transfer + display).
  sim_.RunUntil(SimTime::Minutes(2));
  EXPECT_EQ(server_->metrics().materializations, 1);
  EXPECT_TRUE(miss_started);
}

TEST_F(VdrEdgeTest, EvictionUpdatesReplicaCount) {
  VdrConfig config = BaseConfig();
  config.preload_objects = 4;
  MakeServer(config);
  // Touch 0..2; object 3 is the never-accessed victim for a miss.
  for (ObjectId id = 0; id < 3; ++id) {
    ASSERT_TRUE(server_->RequestDisplay(id, nullptr, [] {}).ok());
  }
  sim_.RunUntil(kInterval * 12);
  EXPECT_EQ(server_->ReplicaCount(3), 1);
  ASSERT_TRUE(server_->RequestDisplay(8, nullptr, [] {}).ok());
  sim_.RunUntil(SimTime::Minutes(2));
  EXPECT_EQ(server_->ReplicaCount(3), 0);
  EXPECT_EQ(server_->ReplicaCount(8), 1);
  EXPECT_EQ(server_->ResidentObjectCount(), 4);
}

TEST_F(VdrEdgeTest, WaitingObjectsAreNeverEvicted) {
  VdrConfig config = BaseConfig();
  config.preload_objects = 4;
  config.enable_replication = false;
  MakeServer(config);
  // Two requests for object 3: one displays, one waits.  The waiting
  // demand must protect object 3 from eviction by a miss.
  ASSERT_TRUE(server_->RequestDisplay(3, nullptr, [] {}).ok());
  ASSERT_TRUE(server_->RequestDisplay(3, nullptr, [] {}).ok());
  ASSERT_TRUE(server_->RequestDisplay(7, nullptr, [] {}).ok());  // miss
  sim_.RunUntil(SimTime::Minutes(2));
  EXPECT_EQ(server_->ReplicaCount(3), 1);  // survived
  EXPECT_EQ(server_->ReplicaCount(7), 1);  // landed elsewhere (victim 0/1/2)
}

TEST_F(VdrEdgeTest, UtilizationCountsCopyDestinations) {
  VdrConfig config = BaseConfig();
  config.preload_objects = 2;
  MakeServer(config);
  // Four requests for object 0: the first display runs alone (no
  // waiters existed when it started); the second starts with two still
  // queued and spawns a piggyback copy — two clusters busy.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server_->RequestDisplay(0, nullptr, [] {}).ok());
  }
  sim_.RunUntil(kInterval * 20);  // through the second display
  EXPECT_GE(server_->metrics().replications, 1);
  // Average: 1 cluster for the first display, 2 for the second, of 4.
  EXPECT_GT(server_->MeanClusterUtilization(), 0.3);
}

}  // namespace
}  // namespace stagger
