// Randomized stress of the event queue's lazy-cancellation machinery:
// interleave schedules, cancels (including double-cancels and cancels
// of fired events), and pops; verify ordering, counts, and that no
// cancelled event ever fires.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/event_queue.h"
#include "util/rng.h"

namespace stagger {
namespace {

TEST(EventQueueStressTest, RandomScheduleCancelPop) {
  Rng rng(2024);
  EventQueue q;

  struct Tracked {
    EventHandle handle;
    bool cancelled = false;
    bool fired = false;
  };
  std::vector<Tracked> events;
  int64_t live = 0;

  for (int round = 0; round < 20000; ++round) {
    const double action = rng.NextDouble();
    if (action < 0.55) {
      // Schedule.
      const size_t index = events.size();
      events.push_back({});
      const SimTime when =
          SimTime::Micros(static_cast<int64_t>(rng.NextBounded(1 << 20)));
      events[index].handle = q.Schedule(when, [&events, index] {
        events[index].fired = true;
      });
      ++live;
    } else if (action < 0.8 && !events.empty()) {
      // Cancel a random event (possibly already fired/cancelled).
      Tracked& t = events[rng.NextBounded(events.size())];
      const bool was_live = !t.cancelled && !t.fired;
      const bool result = q.Cancel(t.handle);
      EXPECT_EQ(result, was_live);
      if (result) {
        t.cancelled = true;
        --live;
      }
    } else if (!q.empty()) {
      // Pop-execute the earliest event.
      q.PopNext().fn();
      --live;
    }
    ASSERT_EQ(static_cast<int64_t>(q.size()), live);
  }

  // Drain; verify monotone times.
  SimTime last = SimTime::Zero();
  while (!q.empty()) {
    auto fired = q.PopNext();
    EXPECT_GE(fired.time, last);
    last = fired.time;
    fired.fn();
  }

  // Exactly the uncancelled events fired.
  for (const Tracked& t : events) {
    EXPECT_NE(t.fired, t.cancelled);
    EXPECT_TRUE(t.fired || t.cancelled);
  }
}

TEST(EventQueueStressTest, CancelEverythingLeavesCleanQueue) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(q.Schedule(SimTime::Micros(i), [] {
      FAIL() << "cancelled event fired";
    }));
  }
  for (EventHandle& h : handles) {
    EXPECT_TRUE(q.Cancel(h));
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.NextTime(), SimTime::Max());
}

}  // namespace
}  // namespace stagger
