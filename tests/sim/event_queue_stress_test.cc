// Randomized stress of the event queue's lazy-cancellation machinery:
// interleave schedules, cancels (including double-cancels and cancels
// of fired events), and pops; verify ordering, counts, and that no
// cancelled event ever fires.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/event_queue.h"
#include "util/rng.h"

namespace stagger {
namespace {

TEST(EventQueueStressTest, RandomScheduleCancelPop) {
  Rng rng(2024);
  EventQueue q;

  struct Tracked {
    EventHandle handle;
    bool cancelled = false;
    bool fired = false;
  };
  std::vector<Tracked> events;
  int64_t live = 0;

  for (int round = 0; round < 20000; ++round) {
    const double action = rng.NextDouble();
    if (action < 0.55) {
      // Schedule.
      const size_t index = events.size();
      events.push_back({});
      const SimTime when =
          SimTime::Micros(static_cast<int64_t>(rng.NextBounded(1 << 20)));
      events[index].handle = q.Schedule(when, [&events, index] {
        events[index].fired = true;
      });
      ++live;
    } else if (action < 0.8 && !events.empty()) {
      // Cancel a random event (possibly already fired/cancelled).
      Tracked& t = events[rng.NextBounded(events.size())];
      const bool was_live = !t.cancelled && !t.fired;
      const bool result = q.Cancel(t.handle);
      EXPECT_EQ(result, was_live);
      if (result) {
        t.cancelled = true;
        --live;
      }
    } else if (!q.empty()) {
      // Pop-execute the earliest event.
      q.PopNext().fn();
      --live;
    }
    ASSERT_EQ(static_cast<int64_t>(q.size()), live);
  }

  // Drain; verify monotone times.
  SimTime last = SimTime::Zero();
  while (!q.empty()) {
    auto fired = q.PopNext();
    EXPECT_GE(fired.time, last);
    last = fired.time;
    fired.fn();
  }

  // Exactly the uncancelled events fired.
  for (const Tracked& t : events) {
    EXPECT_NE(t.fired, t.cancelled);
    EXPECT_TRUE(t.fired || t.cancelled);
  }
}

// Every event on one instant: the whole queue is a single calendar
// bucket / a single batch.  Insertion order must be preserved exactly,
// interleaved cancels included.
TEST(EventQueueStressTest, SingleIntervalCohort) {
  Rng rng(7);
  EventQueue q;
  const SimTime when = SimTime::Millis(42);
  std::vector<EventHandle> handles;
  std::vector<int> fired;
  std::vector<int> expected;
  for (int i = 0; i < 5000; ++i) {
    handles.push_back(q.Schedule(when, [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 5000; ++i) {
    if (rng.NextDouble() < 0.3) {
      EXPECT_TRUE(q.Cancel(handles[static_cast<size_t>(i)]));
    } else {
      expected.push_back(i);
    }
  }
  while (!q.empty()) {
    auto f = q.PopNext();
    EXPECT_EQ(f.time, when);
    f.fn();
  }
  EXPECT_EQ(fired, expected);
}

// One event per calendar day, spaced exactly one day apart across many
// ring years: every pop lands on a different bucket and the drain
// crosses several ring rebases.
TEST(EventQueueStressTest, OneEventPerCalendarDay) {
  EventQueue q;
  const int kDays = 4 * EventQueue::kNumDays + 17;
  std::vector<int> fired;
  for (int i = kDays - 1; i >= 0; --i) {
    q.Schedule(SimTime::Micros(i * EventQueue::kDayMicros),
               [&fired, i] { fired.push_back(i); });
  }
  int64_t expect = 0;
  while (!q.empty()) {
    EXPECT_EQ(q.NextTime(), SimTime::Micros(expect * EventQueue::kDayMicros));
    auto f = q.PopNext();
    f.fn();
    ++expect;
  }
  EXPECT_EQ(expect, kDays);
  for (int i = 0; i < kDays; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

// Monotonically increasing far-future times: each schedule lands in the
// overflow map far beyond the ring, and each pop forces the ring to
// rebase onto a new year.  Alternating schedule/pop keeps the queue
// nearly empty, the worst case for rebase frequency.
TEST(EventQueueStressTest, MonotoneFarFutureOverflow) {
  EventQueue q;
  const int64_t year = EventQueue::kDayMicros * EventQueue::kNumDays;
  int64_t t = 0;
  int fired = 0;
  for (int i = 0; i < 2000; ++i) {
    t += year * 3 + 12345 * i;
    q.Schedule(SimTime::Micros(t), [&fired] { ++fired; });
    if (i % 2 == 0) {
      auto f = q.PopNext();
      f.fn();
    }
  }
  SimTime last = SimTime::Zero();
  while (!q.empty()) {
    auto f = q.PopNext();
    EXPECT_GE(f.time, last);
    last = f.time;
    f.fn();
  }
  EXPECT_EQ(fired, 2000);
}

// Callbacks scheduling more events while the queue is mid-drain,
// including same-instant events at a lower priority than the one in
// flight (which must preempt an open batch rather than be skipped).
TEST(EventQueueStressTest, ScheduleFromInsideCallback) {
  EventQueue q;
  std::vector<int> fired;
  int64_t clock = 0;

  std::function<void(int)> spawn = [&](int depth) {
    if (depth >= 6) return;
    const int64_t at = clock + 100;
    q.Schedule(SimTime::Micros(at), [&, depth, at] {
      clock = at;
      fired.push_back(depth + 100);
      spawn(depth + 1);
    });
  };

  int preempted = 0;
  q.Schedule(SimTime::Micros(10),
             [&] {
               clock = 10;
               fired.push_back(1);
               // Same time, smaller priority value: outranks the open
               // (10, priority 0) batch, so the calendar must hand the
               // staged remainder back and fire this before moving on.
               q.Schedule(SimTime::Micros(10), [&] { ++preempted; },
                          /*priority=*/-5);
               spawn(0);
             },
             /*priority=*/0);

  // Drain in batched mode to exercise stage reentrancy.  Events fire in
  // nondecreasing time even though callbacks keep scheduling.
  int64_t last_us = 0;
  while (!q.empty()) {
    const EventQueue::Batch batch = q.PopInterval();
    EXPECT_GE(batch.time.micros(), last_us);
    last_us = batch.time.micros();
    EventQueue::Fired f;
    while (q.PopStaged(&f)) {
      EXPECT_EQ(f.time.micros(), last_us);
      f.fn();
    }
  }
  EXPECT_EQ(preempted, 1);
  EXPECT_EQ(fired, (std::vector<int>{1, 100, 101, 102, 103, 104, 105}));
}

TEST(EventQueueStressTest, CancelEverythingLeavesCleanQueue) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(q.Schedule(SimTime::Micros(i), [] {
      FAIL() << "cancelled event fired";
    }));
  }
  for (EventHandle& h : handles) {
    EXPECT_TRUE(q.Cancel(h));
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.NextTime(), SimTime::Max());
}

}  // namespace
}  // namespace stagger
