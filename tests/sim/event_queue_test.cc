#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace stagger {
namespace {

TEST(EventQueueTest, EmptyByDefault) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.NextTime(), SimTime::Max());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime::Seconds(3), [&] { order.push_back(3); });
  q.Schedule(SimTime::Seconds(1), [&] { order.push_back(1); });
  q.Schedule(SimTime::Seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.PopNext().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(SimTime::Seconds(1), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.PopNext().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, PriorityBreaksTiesBeforeInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime::Seconds(1), [&] { order.push_back(1); }, /*priority=*/5);
  q.Schedule(SimTime::Seconds(1), [&] { order.push_back(2); }, /*priority=*/1);
  while (!q.empty()) q.PopNext().fn();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueueTest, NextTimeTracksEarliestLiveEvent) {
  EventQueue q;
  q.Schedule(SimTime::Seconds(5), [] {});
  EventHandle early = q.Schedule(SimTime::Seconds(2), [] {});
  EXPECT_EQ(q.NextTime(), SimTime::Seconds(2));
  EXPECT_TRUE(q.Cancel(early));
  EXPECT_EQ(q.NextTime(), SimTime::Seconds(5));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.Schedule(SimTime::Seconds(1), [&] { ++fired; });
  q.Schedule(SimTime::Seconds(2), [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.PopNext().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  EventHandle h = q.Schedule(SimTime::Seconds(1), [] {});
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_FALSE(q.Cancel(h));
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  EventHandle h = q.Schedule(SimTime::Seconds(1), [] {});
  q.PopNext();
  EXPECT_FALSE(q.Cancel(h));
}

TEST(EventQueueTest, InvalidHandleCancelIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(EventHandle()));
}

TEST(EventQueueTest, PopReturnsScheduledTime) {
  EventQueue q;
  q.Schedule(SimTime::Millis(250), [] {});
  auto fired = q.PopNext();
  EXPECT_EQ(fired.time, SimTime::Millis(250));
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  // Deterministic pseudo-random times; verify nondecreasing pop order.
  uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    q.Schedule(SimTime::Micros(static_cast<int64_t>(x % 1000000)), [] {});
  }
  SimTime last = SimTime::Zero();
  while (!q.empty()) {
    auto fired = q.PopNext();
    EXPECT_GE(fired.time, last);
    last = fired.time;
  }
}

TEST(EventQueueTest, PopIntervalReturnsWholeCohort) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(SimTime::Seconds(1), [&order, i] { order.push_back(i); });
  }
  q.Schedule(SimTime::Seconds(2), [&order] { order.push_back(99); });

  EventQueue::Batch batch = q.PopInterval();
  EXPECT_EQ(batch.time, SimTime::Seconds(1));
  EXPECT_EQ(batch.priority, 0);
  EXPECT_EQ(batch.count, 5u);

  EventQueue::Fired f;
  while (q.PopStaged(&f)) {
    EXPECT_EQ(f.time, SimTime::Seconds(1));
    f.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.NextTime(), SimTime::Seconds(2));
}

TEST(EventQueueTest, PriorityPartitionsBatchesAtOneInstant) {
  EventQueue q;
  q.Schedule(SimTime::Seconds(1), [] {}, /*priority=*/2);
  q.Schedule(SimTime::Seconds(1), [] {}, /*priority=*/1);
  q.Schedule(SimTime::Seconds(1), [] {}, /*priority=*/1);

  EventQueue::Batch first = q.PopInterval();
  EXPECT_EQ(first.priority, 1);
  EXPECT_EQ(first.count, 2u);
  EventQueue::Fired f;
  while (q.PopStaged(&f)) f.fn();

  EventQueue::Batch second = q.PopInterval();
  EXPECT_EQ(second.priority, 2);
  EXPECT_EQ(second.count, 1u);
}

TEST(EventQueueTest, CancelWhileStagedPreventsFiring) {
  EventQueue q;
  int fired = 0;
  q.Schedule(SimTime::Seconds(1), [&] { ++fired; });
  EventHandle victim = q.Schedule(SimTime::Seconds(1), [&] { ++fired; });
  q.Schedule(SimTime::Seconds(1), [&] { ++fired; });

  EventQueue::Batch batch = q.PopInterval();
  EXPECT_EQ(batch.count, 3u);
  EXPECT_TRUE(q.Cancel(victim));  // staged but not yet popped
  EXPECT_FALSE(q.Cancel(victim));

  EventQueue::Fired f;
  while (q.PopStaged(&f)) f.fn();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, EqualKeyScheduleJoinsOpenBatchInstant) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime::Seconds(1), [&] { order.push_back(0); });
  (void)q.PopInterval();

  EventQueue::Fired f;
  ASSERT_TRUE(q.PopStaged(&f));
  f.fn();
  // Same (time, priority) as the open batch: its seq is larger than
  // every staged entry, so it fires at this instant, after them.
  q.Schedule(SimTime::Seconds(1), [&] { order.push_back(1); });
  while (q.PopStaged(&f)) f.fn();
  // The new event is found by the next PopInterval at the same key.
  EventQueue::Batch batch = q.PopInterval();
  EXPECT_EQ(batch.time, SimTime::Seconds(1));
  while (q.PopStaged(&f)) f.fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueueTest, ScheduleAndCancelChurnKeepsMemoryBounded) {
  EventQueue q;
  // One million schedule/cancel pairs against a small live set.  With
  // eager slot reclamation and bucket compaction, neither the buffered
  // entries nor the slot table may grow with the churn count.
  std::vector<EventHandle> live;
  for (int i = 0; i < 64; ++i) {
    live.push_back(q.Schedule(SimTime::Micros(i), [] {}));
  }
  for (int i = 0; i < 1000000; ++i) {
    EventHandle h = q.Schedule(SimTime::Micros(i % 4096), [] {});
    EXPECT_TRUE(q.Cancel(h));
    EXPECT_FALSE(q.Cancel(h));  // generation check: stale handle
    EXPECT_TRUE(h.valid());     // validity is not liveness
  }
  EXPECT_EQ(q.size(), 64u);
  // Cancelled debt is compacted away: entries must stay within a small
  // constant of the live set, and slots must be recycled.
  EXPECT_LE(q.buffered_entries(), 64u + 256u);
  EXPECT_LE(q.allocated_slots(), 64u + 1024u);
  for (EventHandle& h : live) EXPECT_TRUE(q.Cancel(h));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueDeathTest, PopOnEmptyAborts) {
  EventQueue q;
  EXPECT_DEATH(q.PopNext(), "PopNext on empty");
}

TEST(EventQueueDeathTest, PopIntervalOnEmptyAborts) {
  EventQueue q;
  EXPECT_DEATH(q.PopInterval(), "PopInterval on empty");
}

}  // namespace
}  // namespace stagger
