#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace stagger {
namespace {

TEST(EventQueueTest, EmptyByDefault) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.NextTime(), SimTime::Max());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime::Seconds(3), [&] { order.push_back(3); });
  q.Schedule(SimTime::Seconds(1), [&] { order.push_back(1); });
  q.Schedule(SimTime::Seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.PopNext().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(SimTime::Seconds(1), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.PopNext().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, PriorityBreaksTiesBeforeInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime::Seconds(1), [&] { order.push_back(1); }, /*priority=*/5);
  q.Schedule(SimTime::Seconds(1), [&] { order.push_back(2); }, /*priority=*/1);
  while (!q.empty()) q.PopNext().fn();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueueTest, NextTimeTracksEarliestLiveEvent) {
  EventQueue q;
  q.Schedule(SimTime::Seconds(5), [] {});
  EventHandle early = q.Schedule(SimTime::Seconds(2), [] {});
  EXPECT_EQ(q.NextTime(), SimTime::Seconds(2));
  EXPECT_TRUE(q.Cancel(early));
  EXPECT_EQ(q.NextTime(), SimTime::Seconds(5));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.Schedule(SimTime::Seconds(1), [&] { ++fired; });
  q.Schedule(SimTime::Seconds(2), [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.PopNext().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  EventHandle h = q.Schedule(SimTime::Seconds(1), [] {});
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_FALSE(q.Cancel(h));
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  EventHandle h = q.Schedule(SimTime::Seconds(1), [] {});
  q.PopNext();
  EXPECT_FALSE(q.Cancel(h));
}

TEST(EventQueueTest, InvalidHandleCancelIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(EventHandle()));
}

TEST(EventQueueTest, PopReturnsScheduledTime) {
  EventQueue q;
  q.Schedule(SimTime::Millis(250), [] {});
  auto fired = q.PopNext();
  EXPECT_EQ(fired.time, SimTime::Millis(250));
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  // Deterministic pseudo-random times; verify nondecreasing pop order.
  uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    q.Schedule(SimTime::Micros(static_cast<int64_t>(x % 1000000)), [] {});
  }
  SimTime last = SimTime::Zero();
  while (!q.empty()) {
    auto fired = q.PopNext();
    EXPECT_GE(fired.time, last);
    last = fired.time;
  }
}

TEST(EventQueueDeathTest, PopOnEmptyAborts) {
  EventQueue q;
  EXPECT_DEATH(q.PopNext(), "PopNext on empty");
}

}  // namespace
}  // namespace stagger
