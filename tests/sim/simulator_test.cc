#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace stagger {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), SimTime::Zero());
}

TEST(SimulatorTest, RunExecutesAllEventsInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(SimTime::Seconds(2), [&] { order.push_back(2); });
  sim.ScheduleAt(SimTime::Seconds(1), [&] { order.push_back(1); });
  const SimTime end = sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(end, SimTime::Seconds(2));
}

TEST(SimulatorTest, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.ScheduleAfter(SimTime::Seconds(1), chain);
  };
  sim.ScheduleAt(SimTime::Seconds(1), chain);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), SimTime::Seconds(5));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(SimTime::Seconds(1), [&] { ++fired; });
  sim.ScheduleAt(SimTime::Seconds(10), [&] { ++fired; });
  sim.RunUntil(SimTime::Seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), SimTime::Seconds(5));
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilExecutesEventExactlyAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(SimTime::Seconds(5), [&] { ++fired; });
  sim.RunUntil(SimTime::Seconds(5));
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.RunUntil(SimTime::Hours(1));
  EXPECT_EQ(sim.Now(), SimTime::Hours(1));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime observed;
  sim.ScheduleAt(SimTime::Seconds(3), [&] {
    sim.ScheduleAfter(SimTime::Seconds(2), [&] { observed = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(observed, SimTime::Seconds(5));
}

TEST(SimulatorTest, CancelPendingEvent) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.ScheduleAt(SimTime::Seconds(1), [&] { ++fired; });
  EXPECT_TRUE(sim.Cancel(h));
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, RequestStopEndsRunEarly) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(SimTime::Seconds(1), [&] {
    ++fired;
    sim.RequestStop();
  });
  sim.ScheduleAt(SimTime::Seconds(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), SimTime::Seconds(1));
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(SimTime::Seconds(1), [&] { ++fired; });
  sim.ScheduleAt(SimTime::Seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.ScheduleAt(SimTime::Seconds(5), [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(SimTime::Seconds(1), [] {}),
               "scheduled in the past");
}

TEST(PeriodicTickerTest, FiresAtFixedCadence) {
  Simulator sim;
  std::vector<SimTime> at;
  PeriodicTicker ticker(&sim, SimTime::Seconds(1), SimTime::Seconds(2),
                        [&](int64_t) { at.push_back(sim.Now()); });
  sim.RunUntil(SimTime::Seconds(7));
  ASSERT_EQ(at.size(), 4u);  // t = 1, 3, 5, 7
  EXPECT_EQ(at[0], SimTime::Seconds(1));
  EXPECT_EQ(at[3], SimTime::Seconds(7));
  EXPECT_EQ(ticker.ticks_fired(), 4);
}

TEST(PeriodicTickerTest, PassesTickIndex) {
  Simulator sim;
  std::vector<int64_t> indices;
  PeriodicTicker ticker(&sim, SimTime::Zero(), SimTime::Seconds(1),
                        [&](int64_t i) { indices.push_back(i); });
  sim.RunUntil(SimTime::Seconds(3));
  EXPECT_EQ(indices, (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(PeriodicTickerTest, StopFromCallback) {
  Simulator sim;
  PeriodicTicker* self = nullptr;
  int fired = 0;
  PeriodicTicker ticker(&sim, SimTime::Zero(), SimTime::Seconds(1),
                        [&](int64_t) {
                          if (++fired == 3) self->Stop();
                        });
  self = &ticker;
  sim.RunUntil(SimTime::Seconds(10));
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(ticker.running());
}

TEST(PeriodicTickerTest, DestructionCancelsFutureTicks) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTicker ticker(&sim, SimTime::Seconds(1), SimTime::Seconds(1),
                          [&](int64_t) { ++fired; });
  }
  sim.RunUntil(SimTime::Seconds(5));
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace stagger
