#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "disk/disk_array.h"
#include "disk/disk_parameters.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "util/check.h"

namespace stagger {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), SimTime::Zero());
}

TEST(SimulatorTest, RunExecutesAllEventsInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(SimTime::Seconds(2), [&] { order.push_back(2); });
  sim.ScheduleAt(SimTime::Seconds(1), [&] { order.push_back(1); });
  const SimTime end = sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(end, SimTime::Seconds(2));
}

TEST(SimulatorTest, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.ScheduleAfter(SimTime::Seconds(1), chain);
  };
  sim.ScheduleAt(SimTime::Seconds(1), chain);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), SimTime::Seconds(5));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(SimTime::Seconds(1), [&] { ++fired; });
  sim.ScheduleAt(SimTime::Seconds(10), [&] { ++fired; });
  sim.RunUntil(SimTime::Seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), SimTime::Seconds(5));
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilExecutesEventExactlyAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(SimTime::Seconds(5), [&] { ++fired; });
  sim.RunUntil(SimTime::Seconds(5));
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.RunUntil(SimTime::Hours(1));
  EXPECT_EQ(sim.Now(), SimTime::Hours(1));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime observed;
  sim.ScheduleAt(SimTime::Seconds(3), [&] {
    sim.ScheduleAfter(SimTime::Seconds(2), [&] { observed = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(observed, SimTime::Seconds(5));
}

TEST(SimulatorTest, CancelPendingEvent) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.ScheduleAt(SimTime::Seconds(1), [&] { ++fired; });
  EXPECT_TRUE(sim.Cancel(h));
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, RequestStopEndsRunEarly) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(SimTime::Seconds(1), [&] {
    ++fired;
    sim.RequestStop();
  });
  sim.ScheduleAt(SimTime::Seconds(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), SimTime::Seconds(1));
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(SimTime::Seconds(1), [&] { ++fired; });
  sim.ScheduleAt(SimTime::Seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(sim.events_executed(), 2u);
}

// Batched dispatch (Run) must replay a fault-laden scenario in exactly
// the order a Step() loop produces.  The scenario mirrors the real
// server: a periodic scheduler tick, fault events at a negative
// priority landing exactly on tick boundaries, per-tick work events,
// and callbacks that cancel and reschedule.
class ReplayScenario {
 public:
  std::vector<std::pair<int64_t, int>> log;  // (time us, tag)

  explicit ReplayScenario(Simulator* sim) : sim_(sim) {
    DiskParameters params = DiskParameters::Evaluation();
    auto disks = DiskArray::Create(4, params);
    STAGGER_CHECK(disks.ok());
    disks_ = std::make_unique<DiskArray>(std::move(disks).ValueOrDie());

    FaultPlan plan;
    plan.FailAt(1, SimTime::Millis(20))
        .StallAt(2, SimTime::Millis(30), SimTime::Millis(25))
        .RecoverAt(1, SimTime::Millis(60))
        .FailAt(3, SimTime::Millis(60));
    auto injector = FaultInjector::Create(sim_, disks_.get(), std::move(plan));
    STAGGER_CHECK(injector.ok());
    injector_ = std::move(injector).ValueOrDie();
    injector_->OnDown([this](DiskId d, SimTime t) {
      log.push_back({t.micros(), 1000 + d});
    });
    injector_->OnUp([this](DiskId d, SimTime t) {
      log.push_back({t.micros(), 2000 + d});
    });

    ticker_ = std::make_unique<PeriodicTicker>(
        sim_, SimTime::Zero(), SimTime::Millis(10), [this](int64_t tick) {
          if (tick >= 10) {
            ticker_->Stop();
            return;
          }
          log.push_back({sim_->Now().micros(), 100});
          // Per-tick work at the same instant, varying priorities.
          for (int i = 0; i < 3; ++i) {
            sim_->ScheduleAt(sim_->Now(),
                             [this, i] {
                               log.push_back({sim_->Now().micros(), 200 + i});
                             },
                             /*priority=*/i % 2);
          }
          // Retries: some fire, some are cancelled before their time.
          if (tick % 2 == 0) {
            retry_ = sim_->ScheduleAfter(SimTime::Millis(25), [this] {
              log.push_back({sim_->Now().micros(), 300});
            });
          } else if (tick % 4 == 1 && retry_.valid()) {
            sim_->Cancel(retry_);
          }
        });
  }

 private:
  Simulator* sim_;
  std::unique_ptr<DiskArray> disks_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<PeriodicTicker> ticker_;
  EventHandle retry_;
};

TEST(SimulatorTest, BatchedRunMatchesStepLoopOnFaultReplay) {
  Simulator step_sim;
  ReplayScenario step_scenario(&step_sim);
  while (step_sim.Step()) {
  }

  Simulator run_sim;
  ReplayScenario run_scenario(&run_sim);
  run_sim.Run();

  // Identical event-fire order, fault applications included.
  ASSERT_EQ(run_scenario.log.size(), step_scenario.log.size());
  for (size_t i = 0; i < run_scenario.log.size(); ++i) {
    EXPECT_EQ(run_scenario.log[i], step_scenario.log[i]) << "at index " << i;
  }
  EXPECT_EQ(run_sim.events_executed(), step_sim.events_executed());

  // Batching is real: many same-instant events per dispatched batch.
  EXPECT_GT(run_sim.events_executed(), run_sim.batches_dispatched());
  EXPECT_EQ(step_sim.batches_dispatched(), 0u);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.ScheduleAt(SimTime::Seconds(5), [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(SimTime::Seconds(1), [] {}),
               "scheduled in the past");
}

TEST(PeriodicTickerTest, FiresAtFixedCadence) {
  Simulator sim;
  std::vector<SimTime> at;
  PeriodicTicker ticker(&sim, SimTime::Seconds(1), SimTime::Seconds(2),
                        [&](int64_t) { at.push_back(sim.Now()); });
  sim.RunUntil(SimTime::Seconds(7));
  ASSERT_EQ(at.size(), 4u);  // t = 1, 3, 5, 7
  EXPECT_EQ(at[0], SimTime::Seconds(1));
  EXPECT_EQ(at[3], SimTime::Seconds(7));
  EXPECT_EQ(ticker.ticks_fired(), 4);
}

TEST(PeriodicTickerTest, PassesTickIndex) {
  Simulator sim;
  std::vector<int64_t> indices;
  PeriodicTicker ticker(&sim, SimTime::Zero(), SimTime::Seconds(1),
                        [&](int64_t i) { indices.push_back(i); });
  sim.RunUntil(SimTime::Seconds(3));
  EXPECT_EQ(indices, (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(PeriodicTickerTest, StopFromCallback) {
  Simulator sim;
  PeriodicTicker* self = nullptr;
  int fired = 0;
  PeriodicTicker ticker(&sim, SimTime::Zero(), SimTime::Seconds(1),
                        [&](int64_t) {
                          if (++fired == 3) self->Stop();
                        });
  self = &ticker;
  sim.RunUntil(SimTime::Seconds(10));
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(ticker.running());
}

TEST(PeriodicTickerTest, DestructionCancelsFutureTicks) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTicker ticker(&sim, SimTime::Seconds(1), SimTime::Seconds(1),
                          [&](int64_t) { ++fired; });
  }
  sim.RunUntil(SimTime::Seconds(5));
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace stagger
