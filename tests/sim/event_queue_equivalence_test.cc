// Differential test of the calendar-queue event kernel against the
// binary-heap implementation it replaced.  The reference below is the
// old heap verbatim (modulo naming): (time, priority, seq) heap with
// lazy cancellation through id sets.  Every observable — firing order,
// NextTime(), size(), Cancel() return values — must match the calendar
// queue at every step of a randomized op sequence, across seeds that
// exercise clustered instants, far-future overflow (multiple ring
// years), priority ties, cancels of staged events, and schedules that
// preempt an open batch.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/units.h"

namespace stagger {
namespace {

// The pre-calendar binary-heap event queue, kept as an executable
// specification.  Interface matches EventQueue except that handles are
// plain ids (EventHandle's constructor is private to EventQueue).
class ReferenceEventQueue {
 public:
  struct Fired {
    SimTime time;
    EventFn fn;
  };

  uint64_t Schedule(SimTime when, EventFn fn, int priority = 0) {
    const uint64_t id = next_seq_++;
    heap_.push(Entry{when, priority, id, id, std::move(fn)});
    live_ids_.insert(id);
    return id;
  }

  bool Cancel(uint64_t id) {
    if (id == 0) return false;
    if (live_ids_.erase(id) == 0) return false;
    cancelled_ids_.insert(id);
    return true;
  }

  bool empty() const { return live_ids_.empty(); }
  size_t size() const { return live_ids_.size(); }

  SimTime NextTime() const {
    auto* self = const_cast<ReferenceEventQueue*>(this);
    self->SkipCancelled();
    if (heap_.empty()) return SimTime::Max();
    return heap_.top().time;
  }

  Fired PopNext() {
    SkipCancelled();
    Entry& top = const_cast<Entry&>(heap_.top());
    Fired fired{top.time, std::move(top.fn)};
    live_ids_.erase(top.id);
    heap_.pop();
    return fired;
  }

 private:
  struct Entry {
    SimTime time;
    int priority;
    uint64_t seq;
    uint64_t id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  void SkipCancelled() {
    while (!heap_.empty()) {
      auto it = cancelled_ids_.find(heap_.top().id);
      if (it == cancelled_ids_.end()) return;
      cancelled_ids_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<uint64_t> live_ids_;
  std::unordered_set<uint64_t> cancelled_ids_;
  uint64_t next_seq_ = 1;
};

// One scheduled event mirrored into both queues.
struct Mirrored {
  EventHandle cal_handle;
  uint64_t ref_handle = 0;
};

// Seed-dependent time distribution.  Cycles through regimes so every
// seed stresses a different bucket pattern:
//   0: clustered — a handful of distinct instants (dense ties)
//   1: uniform within one ring year
//   2: far future — spans many ring years (overflow + rebase)
//   3: day-aligned — exact multiples of the calendar day width
int64_t DrawTime(Rng& rng, uint64_t seed) {
  switch (seed % 4) {
    case 0:
      return static_cast<int64_t>(rng.NextBounded(16)) * 12345;
    case 1:
      return static_cast<int64_t>(rng.NextBounded(uint64_t{1} << 21));
    case 2:
      return static_cast<int64_t>(rng.NextBounded(uint64_t{1} << 34));
    default:
      return static_cast<int64_t>(rng.NextBounded(512)) *
             EventQueue::kDayMicros;
  }
}

// Runs `rounds` random ops on both queues, asserting every observable
// matches after every op.  Pops go through PopNext on both sides.
void RunLockstep(uint64_t seed, int rounds) {
  SCOPED_TRACE(testing::Message() << "seed " << seed);
  Rng rng(seed);
  EventQueue cal;
  ReferenceEventQueue ref;
  std::vector<Mirrored> events;
  std::vector<size_t> cal_log;
  std::vector<size_t> ref_log;

  for (int round = 0; round < rounds; ++round) {
    const double action = rng.NextDouble();
    if (action < 0.5) {
      const size_t index = events.size();
      const SimTime when = SimTime::Micros(DrawTime(rng, seed));
      const int priority = static_cast<int>(rng.NextBounded(7)) - 3;
      Mirrored m;
      m.cal_handle =
          cal.Schedule(when, [&cal_log, index] { cal_log.push_back(index); },
                       priority);
      m.ref_handle =
          ref.Schedule(when, [&ref_log, index] { ref_log.push_back(index); },
                       priority);
      EXPECT_TRUE(m.cal_handle.valid());
      events.push_back(m);
    } else if (action < 0.75 && !events.empty()) {
      // Cancel a random event: maybe live, maybe fired, maybe already
      // cancelled.  Both queues must agree on the return value.
      Mirrored& m = events[rng.NextBounded(events.size())];
      const bool ref_result = ref.Cancel(m.ref_handle);
      const bool cal_result = cal.Cancel(m.cal_handle);
      ASSERT_EQ(cal_result, ref_result);
    } else if (!ref.empty()) {
      ASSERT_FALSE(cal.empty());
      ReferenceEventQueue::Fired rf = ref.PopNext();
      EventQueue::Fired cf = cal.PopNext();
      ASSERT_EQ(cf.time, rf.time);
      rf.fn();
      cf.fn();
      ASSERT_EQ(cal_log, ref_log);
    }
    ASSERT_EQ(cal.size(), ref.size());
    ASSERT_EQ(cal.empty(), ref.empty());
    ASSERT_EQ(cal.NextTime(), ref.NextTime());
  }

  // Drain both; identical residue in identical order.
  while (!ref.empty()) {
    ASSERT_EQ(cal.NextTime(), ref.NextTime());
    ReferenceEventQueue::Fired rf = ref.PopNext();
    EventQueue::Fired cf = cal.PopNext();
    ASSERT_EQ(cf.time, rf.time);
    rf.fn();
    cf.fn();
  }
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal_log, ref_log);
}

// Drains the calendar queue in batched mode (PopInterval/PopStaged)
// against the reference popping one event at a time, with adversarial
// interference while a batch is open: cancels of staged events and
// schedules that tie with or preempt the open batch key.
void RunBatchedLockstep(uint64_t seed, int rounds) {
  SCOPED_TRACE(testing::Message() << "seed " << seed);
  Rng rng(seed);
  EventQueue cal;
  ReferenceEventQueue ref;
  std::vector<Mirrored> events;
  std::vector<size_t> cal_log;
  std::vector<size_t> ref_log;

  auto schedule = [&](SimTime when, int priority) {
    const size_t index = events.size();
    Mirrored m;
    m.cal_handle =
        cal.Schedule(when, [&cal_log, index] { cal_log.push_back(index); },
                     priority);
    m.ref_handle =
        ref.Schedule(when, [&ref_log, index] { ref_log.push_back(index); },
                     priority);
    events.push_back(m);
  };

  for (int i = 0; i < rounds; ++i) {
    schedule(SimTime::Micros(DrawTime(rng, seed)),
             static_cast<int>(rng.NextBounded(5)) - 2);
  }

  while (!ref.empty()) {
    ASSERT_FALSE(cal.empty());
    const EventQueue::Batch batch = cal.PopInterval();
    ASSERT_EQ(batch.time, ref.NextTime());
    // Re-requesting the open batch is idempotent.
    const EventQueue::Batch again = cal.PopInterval();
    ASSERT_EQ(again.time, batch.time);
    ASSERT_EQ(again.priority, batch.priority);

    EventQueue::Fired cf;
    while (cal.PopStaged(&cf)) {
      ReferenceEventQueue::Fired rf = ref.PopNext();
      ASSERT_EQ(cf.time, rf.time);
      ASSERT_EQ(cf.time, batch.time);
      rf.fn();
      cf.fn();
      ASSERT_EQ(cal_log, ref_log);
      ASSERT_EQ(cal.size(), ref.size());

      const double interfere = rng.NextDouble();
      if (interfere < 0.15 && !events.empty()) {
        // Cancel a random event — possibly one staged in the open
        // batch; it must not fire from either queue.
        Mirrored& m = events[rng.NextBounded(events.size())];
        ASSERT_EQ(cal.Cancel(m.cal_handle), ref.Cancel(m.ref_handle));
      } else if (interfere < 0.3) {
        // Schedule relative to the open batch: before it (forces the
        // calendar to put the staged remainder back), tying with it
        // (fires within the batch, after already-staged events), or
        // after it.
        const int64_t base = batch.time.micros();
        const uint64_t mode = rng.NextBounded(3);
        int64_t when = base;
        int priority = batch.priority;
        if (mode == 0) {
          when = base - static_cast<int64_t>(rng.NextBounded(
                            static_cast<uint64_t>(base) + 1));
          priority = static_cast<int>(rng.NextBounded(5)) - 2;
        } else if (mode == 2) {
          when = base + 1 + static_cast<int64_t>(rng.NextBounded(1 << 16));
          priority = static_cast<int>(rng.NextBounded(5)) - 2;
        }
        schedule(SimTime::Micros(when), priority);
      }
      ASSERT_EQ(cal.NextTime(), ref.NextTime());
    }
  }
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal_log, ref_log);
}

TEST(EventQueueEquivalenceTest, LockstepMatchesReferenceAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 56; ++seed) {
    RunLockstep(seed, 1500);
    if (HasFatalFailure()) return;
  }
}

TEST(EventQueueEquivalenceTest, BatchedDrainMatchesReferenceAcrossSeeds) {
  for (uint64_t seed = 101; seed <= 156; ++seed) {
    RunBatchedLockstep(seed, 600);
    if (HasFatalFailure()) return;
  }
}

TEST(EventQueueEquivalenceTest, CancelAfterFireAgreesWithReference) {
  EventQueue cal;
  ReferenceEventQueue ref;
  EventHandle ch = cal.Schedule(SimTime::Micros(5), [] {});
  uint64_t rh = ref.Schedule(SimTime::Micros(5), [] {});
  cal.PopNext();
  ref.PopNext();
  EXPECT_EQ(cal.Cancel(ch), ref.Cancel(rh));
  EXPECT_FALSE(cal.Cancel(ch));
}

}  // namespace
}  // namespace stagger
