#include "storage/layout.h"

#include <gtest/gtest.h>

#include <numeric>

namespace stagger {
namespace {

TEST(StaggeredLayoutTest, CreateValidates) {
  EXPECT_FALSE(StaggeredLayout::Create(0, 0, 1, 1).ok());
  EXPECT_FALSE(StaggeredLayout::Create(10, -1, 1, 1).ok());
  EXPECT_FALSE(StaggeredLayout::Create(10, 10, 1, 1).ok());
  EXPECT_FALSE(StaggeredLayout::Create(10, 0, 0, 1).ok());
  EXPECT_FALSE(StaggeredLayout::Create(10, 0, 11, 1).ok());
  EXPECT_FALSE(StaggeredLayout::Create(10, 0, 1, 0).ok());
  EXPECT_FALSE(StaggeredLayout::Create(10, 0, 1, 11).ok());
  EXPECT_TRUE(StaggeredLayout::Create(10, 9, 10, 10).ok());
}

// Figure 1: simple striping on 9 disks, M = 3 — subobject i goes to
// cluster (i mod 3), fragment j to the cluster's j-th disk.  Simple
// striping is staggered striping with k = M.
TEST(StaggeredLayoutTest, Figure1SimpleStriping) {
  auto layout = StaggeredLayout::Create(9, 0, 3, 3);
  ASSERT_TRUE(layout.ok());
  for (int64_t i = 0; i < 12; ++i) {
    for (int32_t j = 0; j < 3; ++j) {
      EXPECT_EQ(layout->DiskFor(i, j), 3 * (i % 3) + j)
          << "X_{" << i << "." << j << "}";
    }
  }
}

// Figure 5: 12 disks, stride 1; Y (M=4) starts on disk 0, X (M=3) on
// disk 4, Z (M=2) on disk 7.  Spot-check the figure's cells.
TEST(StaggeredLayoutTest, Figure5MixedMedia) {
  auto y = StaggeredLayout::Create(12, 0, 1, 4);
  auto x = StaggeredLayout::Create(12, 4, 1, 3);
  auto z = StaggeredLayout::Create(12, 7, 1, 2);
  ASSERT_TRUE(y.ok() && x.ok() && z.ok());

  // Row 0 of the figure.
  EXPECT_EQ(y->DiskFor(0, 0), 0);
  EXPECT_EQ(y->DiskFor(0, 3), 3);
  EXPECT_EQ(x->DiskFor(0, 0), 4);
  EXPECT_EQ(x->DiskFor(0, 2), 6);
  EXPECT_EQ(z->DiskFor(0, 0), 7);
  EXPECT_EQ(z->DiskFor(0, 1), 8);
  // Row 4: Z4.1 wraps to disk 0; X4 occupies 8..10; Z4.0 on disk 11.
  EXPECT_EQ(z->DiskFor(4, 1), 0);
  EXPECT_EQ(z->DiskFor(4, 0), 11);
  EXPECT_EQ(x->DiskFor(4, 0), 8);
  EXPECT_EQ(x->DiskFor(4, 2), 10);
  EXPECT_EQ(y->DiskFor(4, 2), 6);
  // Row 8: X8.0 back on disk 0 (figure bottom half).
  EXPECT_EQ(x->DiskFor(8, 0), 0);
  EXPECT_EQ(y->DiskFor(8, 1), 9);
  // Row 12 is row 0 shifted full circle: Y12.0 on disk 0.
  EXPECT_EQ(y->DiskFor(12, 0), 0);
}

TEST(StaggeredLayoutTest, StrideShiftsFirstFragment) {
  // Table 2: stride = distance between X_{i.0} and X_{i+1.0}.
  for (int32_t k = 1; k <= 5; ++k) {
    auto layout = StaggeredLayout::Create(10, 3, k, 2);
    ASSERT_TRUE(layout.ok());
    for (int64_t i = 0; i < 20; ++i) {
      EXPECT_EQ(layout->FirstDiskFor(i + 1),
                (layout->FirstDiskFor(i) + k) % 10);
    }
  }
}

TEST(StaggeredLayoutTest, FragmentsAreAdjacent) {
  auto layout = StaggeredLayout::Create(7, 5, 3, 4);
  ASSERT_TRUE(layout.ok());
  for (int64_t i = 0; i < 14; ++i) {
    for (int32_t j = 1; j < 4; ++j) {
      EXPECT_EQ(layout->DiskFor(i, j), (layout->DiskFor(i, j - 1) + 1) % 7);
    }
  }
}

// Section 3.2.2: k = D places every subobject on the same M disks.
TEST(StaggeredLayoutTest, StrideDPinsObjectToMDisks) {
  auto layout = StaggeredLayout::Create(10, 2, 10, 4);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->UniqueDisksUsed(500), 4);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(layout->FirstDiskFor(i), 2);
  }
}

// Section 3.2.2: D=100, 100-cylinder object (M=4 -> 25 subobjects):
// k=1 touches 28 disks, k=M touches all 100.
TEST(StaggeredLayoutTest, PaperSpreadExample) {
  EXPECT_EQ(StaggeredLayout::Create(100, 0, 1, 4)->UniqueDisksUsed(25), 28);
  EXPECT_EQ(StaggeredLayout::Create(100, 0, 4, 4)->UniqueDisksUsed(25), 100);
}

TEST(StaggeredLayoutTest, FragmentsPerDiskConservesTotal) {
  for (int32_t k : {1, 2, 3, 5, 7, 10}) {
    auto layout = StaggeredLayout::Create(10, 4, k, 3);
    ASSERT_TRUE(layout.ok());
    auto counts = layout->FragmentsPerDisk(137);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), int64_t{0}),
              137 * 3)
        << "k=" << k;
  }
}

TEST(StaggeredLayoutTest, FragmentsPerDiskMatchesBruteForce) {
  auto layout = StaggeredLayout::Create(12, 5, 8, 3);
  ASSERT_TRUE(layout.ok());
  std::vector<int64_t> brute(12, 0);
  const int64_t n = 100;
  for (int64_t i = 0; i < n; ++i) {
    for (int32_t j = 0; j < 3; ++j) {
      ++brute[static_cast<size_t>(layout->DiskFor(i, j))];
    }
  }
  EXPECT_EQ(layout->FragmentsPerDisk(n), brute);
}

// The paper's GCD rule: gcd(D, k) == 1 guarantees no data skew; with
// gcd > 1 the subobject count must be a multiple of D/gcd.
TEST(StaggeredLayoutTest, GcdSkewRule) {
  // gcd(10, 3) = 1: any length is balanced.
  auto coprime = StaggeredLayout::Create(10, 0, 3, 2);
  for (int64_t n : {7, 23, 100, 101}) {
    EXPECT_TRUE(coprime->IsSkewFree(n)) << n;
  }
  // gcd(10, 5) = 5: only disks in one residue class get data unless n
  // is a multiple of D/gcd = 2 ... but period-2 walks still skip 8 of
  // 10 disks, concentrating load.
  auto skewed = StaggeredLayout::Create(10, 0, 5, 2);
  EXPECT_FALSE(skewed->IsSkewFree(101));
  // gcd(10, 2) = 2, period 5: balanced when n is a multiple of 5.
  auto even = StaggeredLayout::Create(10, 0, 2, 2);
  EXPECT_TRUE(even->IsSkewFree(100));
}

// ---------------------------------------------------------------------
// Parity extension: one parity fragment per subobject stripe on the
// disk after the last data fragment.
// ---------------------------------------------------------------------

TEST(StaggeredLayoutTest, ParityCreateValidates) {
  // M + 1 must fit in D so the parity disk never co-resides with the
  // stripe; a full-width layout can only carry parity on a wider array.
  EXPECT_FALSE(StaggeredLayout::Create(10, 0, 1, 10, /*parity=*/true).ok());
  EXPECT_TRUE(StaggeredLayout::Create(10, 0, 1, 9, /*parity=*/true).ok());
  EXPECT_TRUE(StaggeredLayout::Create(10, 0, 1, 10, /*parity=*/false).ok());
}

TEST(StaggeredLayoutTest, ParityDiskFollowsStripe) {
  auto layout = StaggeredLayout::Create(12, 4, 1, 3, /*parity=*/true);
  ASSERT_TRUE(layout.ok());
  EXPECT_TRUE(layout->has_parity());
  EXPECT_EQ(layout->FragmentsPerSubobject(), 4);
  for (int64_t i = 0; i < 30; ++i) {
    // (p + i*k + M) mod D: the disk right after the last data fragment.
    EXPECT_EQ(layout->ParityDiskFor(i),
              (layout->DiskFor(i, 2) + 1) % 12);
    // Disjoint from every data fragment of the same stripe.
    for (int32_t j = 0; j < 3; ++j) {
      EXPECT_NE(layout->ParityDiskFor(i), layout->DiskFor(i, j))
          << "stripe " << i << " fragment " << j;
    }
  }
}

TEST(StaggeredLayoutTest, ParityCountsInStorageAccounting) {
  // Same object with and without parity: the parity layout stores one
  // extra fragment per stripe, spread by the same gcd-governed walk.
  auto plain = StaggeredLayout::Create(10, 0, 1, 3, /*parity=*/false);
  auto parity = StaggeredLayout::Create(10, 0, 1, 3, /*parity=*/true);
  ASSERT_TRUE(plain.ok() && parity.ok());
  const int64_t n = 40;
  const auto plain_counts = plain->FragmentsPerDisk(n);
  const auto parity_counts = parity->FragmentsPerDisk(n);
  int64_t plain_total = 0, parity_total = 0;
  for (int64_t c : plain_counts) plain_total += c;
  for (int64_t c : parity_counts) parity_total += c;
  EXPECT_EQ(plain_total, n * 3);
  EXPECT_EQ(parity_total, n * 4);
  // The augmented placement is a staggered layout of window M + 1, so
  // with gcd(D, k) = 1 and n a multiple of the period it stays
  // perfectly balanced.
  for (int64_t c : parity_counts) EXPECT_EQ(c, n * 4 / 10);
  EXPECT_TRUE(parity->IsSkewFree(n));
}

TEST(StaggeredLayoutTest, ParityWidensUniqueDiskFootprint) {
  // Section 3.2.2's gcd walk with window M + 1: a narrow object that
  // touches a strict subset of disks gains the parity column.
  auto plain = StaggeredLayout::Create(10, 0, 2, 2, /*parity=*/false);
  auto parity = StaggeredLayout::Create(10, 0, 2, 2, /*parity=*/true);
  ASSERT_TRUE(plain.ok() && parity.ok());
  EXPECT_EQ(plain->UniqueDisksUsed(1), 2);
  EXPECT_EQ(parity->UniqueDisksUsed(1), 3);
  EXPECT_GE(parity->UniqueDisksUsed(5), plain->UniqueDisksUsed(5));
}

TEST(ClusterLayoutTest, CreateValidates) {
  EXPECT_FALSE(ClusterLayout::Create(0, 0, 1).ok());
  EXPECT_FALSE(ClusterLayout::Create(10, 0, 0).ok());
  EXPECT_FALSE(ClusterLayout::Create(10, 2, 5).ok());  // only 2 clusters
  EXPECT_FALSE(ClusterLayout::Create(10, -1, 5).ok());
  EXPECT_TRUE(ClusterLayout::Create(10, 1, 5).ok());
}

TEST(ClusterLayoutTest, AllSubobjectsInOneCluster) {
  auto layout = ClusterLayout::Create(15, 2, 5);
  ASSERT_TRUE(layout.ok());
  for (int64_t i = 0; i < 50; ++i) {
    for (int32_t j = 0; j < 5; ++j) {
      EXPECT_EQ(layout->DiskFor(i, j), 10 + j);
    }
  }
}

}  // namespace
}  // namespace stagger
