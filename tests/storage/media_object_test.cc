#include "storage/media_object.h"

#include <gtest/gtest.h>

#include "storage/catalog.h"

namespace stagger {
namespace {

MediaObject MakeObject(double mbps, int64_t subobjects) {
  MediaObject obj;
  obj.display_bandwidth = Bandwidth::Mbps(mbps);
  obj.num_subobjects = subobjects;
  return obj;
}

// M_X = ceil(B_Display / B_Disk), Table 1 / Table 2.
TEST(MediaObjectTest, DegreeOfDeclustering) {
  const Bandwidth disk = Bandwidth::Mbps(20);
  EXPECT_EQ(MakeObject(100, 1).DegreeOfDeclustering(disk), 5);  // Table 3
  EXPECT_EQ(MakeObject(60, 1).DegreeOfDeclustering(disk), 3);   // Section 1
  EXPECT_EQ(MakeObject(45, 1).DegreeOfDeclustering(disk), 3);   // NTSC
  EXPECT_EQ(MakeObject(20, 1).DegreeOfDeclustering(disk), 1);   // exact
  EXPECT_EQ(MakeObject(21, 1).DegreeOfDeclustering(disk), 2);   // round up
  EXPECT_EQ(MakeObject(5, 1).DegreeOfDeclustering(disk), 1);    // low-bw
  EXPECT_EQ(MakeObject(216, 1).DegreeOfDeclustering(disk), 11); // CCIR 601
}

TEST(MediaObjectTest, SizeAndFragmentCounts) {
  const Bandwidth disk = Bandwidth::Mbps(20);
  MediaObject obj = MakeObject(100, 3000);
  EXPECT_EQ(obj.NumFragments(disk), 15000);
  // Table 3 object: 3000 subobjects x 5 fragments x 1.512 MB = 22.68 GB.
  EXPECT_NEAR(obj.TotalSize(DataSize::MB(1.512), disk).gigabytes(), 22.68,
              0.01);
}

TEST(MediaObjectTest, DisplayTime) {
  MediaObject obj = MakeObject(100, 3000);
  // 3000 intervals of 604.8 ms = the paper's 1814 s (30 min 14 s).
  EXPECT_NEAR(obj.DisplayTime(SimTime::Micros(604800)).seconds(), 1814.0, 0.5);
}

TEST(FragmentIdTest, Equality) {
  FragmentId a{1, 2, 3}, b{1, 2, 3}, c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(CatalogTest, AddAssignsSequentialIds) {
  Catalog catalog;
  EXPECT_EQ(catalog.size(), 0);
  MediaObject obj = MakeObject(100, 10);
  EXPECT_EQ(catalog.Add(obj), 0);
  EXPECT_EQ(catalog.Add(obj), 1);
  EXPECT_EQ(catalog.size(), 2);
  EXPECT_TRUE(catalog.Contains(0));
  EXPECT_TRUE(catalog.Contains(1));
  EXPECT_FALSE(catalog.Contains(2));
  EXPECT_FALSE(catalog.Contains(-1));
}

TEST(CatalogTest, DefaultNamesAssigned) {
  Catalog catalog;
  catalog.Add(MakeObject(100, 10));
  EXPECT_EQ(catalog.Get(0).name, "obj0");
  MediaObject named = MakeObject(50, 5);
  named.name = "trailer";
  catalog.Add(named);
  EXPECT_EQ(catalog.Get(1).name, "trailer");
}

TEST(CatalogTest, UniformBuildsPaperDatabase) {
  Catalog catalog = Catalog::Uniform(2000, 3000, Bandwidth::Mbps(100));
  EXPECT_EQ(catalog.size(), 2000);
  EXPECT_EQ(catalog.Get(1999).num_subobjects, 3000);
  EXPECT_DOUBLE_EQ(catalog.Get(0).display_bandwidth.mbps(), 100.0);
  EXPECT_EQ(catalog.Get(7).id, 7);
}

TEST(CatalogDeathTest, GetUnknownAborts) {
  Catalog catalog;
  EXPECT_DEATH(catalog.Get(0), "unknown object");
}

}  // namespace
}  // namespace stagger
