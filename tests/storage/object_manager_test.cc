#include "storage/object_manager.h"

#include <gtest/gtest.h>

namespace stagger {
namespace {

class ObjectManagerTest : public ::testing::Test {
 protected:
  // 10 disks x 3000 cylinders; objects of 600 subobjects x degree 5 use
  // 3000 cylinders total = 300 per disk with stride 1, so ~10 objects
  // fill the farm.
  void SetUp() override {
    catalog_ = Catalog::Uniform(/*count=*/20, /*num_subobjects=*/600,
                                Bandwidth::Mbps(100));
    auto disks = DiskArray::Create(10, DiskParameters::Evaluation());
    ASSERT_TRUE(disks.ok());
    disks_ = std::make_unique<DiskArray>(*std::move(disks));
    manager_ = std::make_unique<ObjectManager>(&catalog_, disks_.get(),
                                               /*fragment_cylinders=*/1);
  }

  StaggeredLayout Layout(int32_t start) {
    auto layout = StaggeredLayout::Create(10, start, 1, 5);
    STAGGER_CHECK(layout.ok());
    return *std::move(layout);
  }

  Catalog catalog_;
  std::unique_ptr<DiskArray> disks_;
  std::unique_ptr<ObjectManager> manager_;
};

TEST_F(ObjectManagerTest, MakeResidentAllocatesStorage) {
  EXPECT_FALSE(manager_->IsResident(0));
  ASSERT_TRUE(manager_->MakeResident(0, Layout(0)).ok());
  EXPECT_TRUE(manager_->IsResident(0));
  EXPECT_EQ(manager_->ResidentCount(), 1);
  // 600 subobjects x 5 fragments spread evenly over 10 disks.
  EXPECT_EQ(disks_->FreeCylinders(), 30000 - 3000);
  EXPECT_EQ(disks_->disk(0).used_cylinders(), 300);
}

TEST_F(ObjectManagerTest, DoubleResidencyRejected) {
  ASSERT_TRUE(manager_->MakeResident(0, Layout(0)).ok());
  EXPECT_TRUE(manager_->MakeResident(0, Layout(1)).IsAlreadyExists());
}

TEST_F(ObjectManagerTest, UnknownObjectRejected) {
  EXPECT_TRUE(manager_->MakeResident(99, Layout(0)).IsNotFound());
}

TEST_F(ObjectManagerTest, EvictReleasesStorage) {
  ASSERT_TRUE(manager_->MakeResident(0, Layout(0)).ok());
  ASSERT_TRUE(manager_->Evict(0).ok());
  EXPECT_FALSE(manager_->IsResident(0));
  EXPECT_EQ(disks_->FreeCylinders(), 30000);
  EXPECT_EQ(manager_->evictions(), 1);
}

TEST_F(ObjectManagerTest, EvictNonResidentFails) {
  EXPECT_TRUE(manager_->Evict(0).IsFailedPrecondition());
}

TEST_F(ObjectManagerTest, PinnedObjectsCannotBeEvicted) {
  ASSERT_TRUE(manager_->MakeResident(0, Layout(0)).ok());
  manager_->Pin(0);
  EXPECT_TRUE(manager_->Evict(0).IsFailedPrecondition());
  manager_->Unpin(0);
  EXPECT_TRUE(manager_->Evict(0).ok());
}

TEST_F(ObjectManagerTest, LfuVictimSelection) {
  ASSERT_TRUE(manager_->MakeResident(0, Layout(0)).ok());
  ASSERT_TRUE(manager_->MakeResident(1, Layout(1)).ok());
  ASSERT_TRUE(manager_->MakeResident(2, Layout(2)).ok());
  manager_->RecordAccess(0);
  manager_->RecordAccess(0);
  manager_->RecordAccess(1);
  manager_->RecordAccess(2);
  manager_->RecordAccess(2);
  auto victim = manager_->PickVictim();
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(*victim, 1);  // least frequently accessed
}

TEST_F(ObjectManagerTest, PinnedObjectsSkippedAsVictims) {
  ASSERT_TRUE(manager_->MakeResident(0, Layout(0)).ok());
  ASSERT_TRUE(manager_->MakeResident(1, Layout(1)).ok());
  manager_->RecordAccess(1);  // 0 is LFU...
  manager_->Pin(0);           // ...but pinned
  auto victim = manager_->PickVictim();
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(*victim, 1);
}

TEST_F(ObjectManagerTest, NoVictimWhenAllPinned) {
  ASSERT_TRUE(manager_->MakeResident(0, Layout(0)).ok());
  manager_->Pin(0);
  EXPECT_TRUE(manager_->PickVictim().status().IsNotFound());
}

TEST_F(ObjectManagerTest, MakeResidentEvictsLfuUnderPressure) {
  // Fill the farm with 10 objects.
  for (ObjectId id = 0; id < 10; ++id) {
    ASSERT_TRUE(manager_->MakeResident(id, Layout(id)).ok());
    manager_->RecordAccess(id);
    if (id != 3) manager_->RecordAccess(id);  // object 3 is LFU
  }
  EXPECT_EQ(disks_->FreeCylinders(), 0);
  // Object 10 must displace object 3.
  ASSERT_TRUE(manager_->MakeResident(10, Layout(0)).ok());
  EXPECT_TRUE(manager_->IsResident(10));
  EXPECT_FALSE(manager_->IsResident(3));
  EXPECT_EQ(manager_->ResidentCount(), 10);
}

TEST_F(ObjectManagerTest, MakeResidentFailsWhenEverythingPinned) {
  for (ObjectId id = 0; id < 10; ++id) {
    ASSERT_TRUE(manager_->MakeResident(id, Layout(id)).ok());
    manager_->Pin(id);
  }
  Status st = manager_->MakeResident(10, Layout(0));
  EXPECT_TRUE(st.IsResourceExhausted());
  EXPECT_FALSE(manager_->IsResident(10));
  // The failed landing must not leak storage.
  EXPECT_EQ(disks_->FreeCylinders(), 0);
}

TEST_F(ObjectManagerTest, AccessCountsAccumulate) {
  manager_->RecordAccess(5);
  manager_->RecordAccess(5);
  EXPECT_EQ(manager_->AccessCount(5), 2);
  EXPECT_EQ(manager_->AccessCount(6), 0);
}

TEST_F(ObjectManagerTest, LayoutOfReturnsPlacement) {
  ASSERT_TRUE(manager_->MakeResident(0, Layout(7)).ok());
  EXPECT_EQ(manager_->LayoutOf(0).start_disk(), 7);
  EXPECT_EQ(manager_->LayoutOf(0).degree(), 5);
}

TEST_F(ObjectManagerTest, SkewedStrideConcentratesStorage) {
  // k = D pins every fragment of the object onto 5 disks.
  auto layout = StaggeredLayout::Create(10, 0, 10, 5);
  ASSERT_TRUE(layout.ok());
  ASSERT_TRUE(manager_->MakeResident(0, *layout).ok());
  EXPECT_EQ(disks_->disk(0).used_cylinders(), 600);
  EXPECT_EQ(disks_->disk(9).used_cylinders(), 0);
}

TEST_F(ObjectManagerTest, UnpinUnderflowDies) {
  ASSERT_TRUE(manager_->MakeResident(0, Layout(0)).ok());
  EXPECT_DEATH(manager_->Unpin(0), "unbalanced Unpin");
}

}  // namespace
}  // namespace stagger
