// Determinism of faulted runs: the fault subsystem must not perturb
// the simulation's reproducibility.  Identical seeds produce
// bit-identical schedules and statistics, for the striped scheduler
// and the VDR baseline alike, whether a fault plan is active, the
// injector is present but empty, or absent entirely.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/interval_scheduler.h"
#include "disk/disk_array.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "server/experiment.h"
#include "sim/simulator.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Millis(605);

// (interval, object, subobject, fragment, disk)
using Read = std::tuple<int64_t, ObjectId, int64_t, int32_t, int32_t>;

struct SchedulerRun {
  std::vector<Read> reads;
  int64_t displays_completed = 0;
  int64_t degraded_reads = 0;
  int64_t streams_paused = 0;
  int64_t streams_resumed = 0;
};

// A fixed 6-stream load on 12 disks, optionally with a fault injector.
SchedulerRun RunSchedulerOnce(const FaultPlan& plan, bool with_injector) {
  SchedulerRun out;
  Simulator sim;
  auto disks = DiskArray::Create(12, DiskParameters::Evaluation());
  STAGGER_CHECK(disks.ok());
  SchedulerConfig config;
  config.stride = 2;
  config.interval = kInterval;
  config.read_observer = [&out](int64_t interval, ObjectId object,
                                int64_t subobject, int32_t fragment,
                                int32_t disk) {
    out.reads.emplace_back(interval, object, subobject, fragment, disk);
  };
  auto sched = IntervalScheduler::Create(&sim, &*disks, config);
  STAGGER_CHECK(sched.ok());

  std::unique_ptr<FaultInjector> injector;
  if (with_injector) {
    auto created = FaultInjector::Create(&sim, &*disks, plan);
    STAGGER_CHECK(created.ok()) << created.status();
    injector = *std::move(created);
  }

  for (int i = 0; i < 6; ++i) {
    DisplayRequest req;
    req.object = i;
    req.degree = 1 + i % 3;
    req.start_disk = (5 * i) % 12;
    req.num_subobjects = 20 + 7 * i;
    sim.ScheduleAt(kInterval * (3 * i), [&sched, req = std::move(req)]() mutable {
      STAGGER_CHECK((*sched)->Submit(std::move(req)).ok());
    });
  }
  sim.RunUntil(kInterval * 400);

  const SchedulerMetrics& m = (*sched)->metrics();
  out.displays_completed = m.displays_completed;
  out.degraded_reads = m.degraded_reads;
  out.streams_paused = m.streams_paused;
  out.streams_resumed = m.streams_resumed;
  return out;
}

TEST(FaultDeterminismTest, EmptyInjectorIsTransparent) {
  const FaultPlan empty;
  const SchedulerRun bare = RunSchedulerOnce(empty, /*with_injector=*/false);
  const SchedulerRun with = RunSchedulerOnce(empty, /*with_injector=*/true);
  EXPECT_EQ(bare.reads, with.reads);
  EXPECT_EQ(bare.displays_completed, with.displays_completed);
  EXPECT_EQ(with.degraded_reads, 0);
  EXPECT_EQ(with.streams_paused, 0);
}

TEST(FaultDeterminismTest, FaultedScheduleIsBitIdentical) {
  FaultPlan plan;
  plan.FailAt(4, kInterval * 10)
      .RecoverAt(4, kInterval * 30)
      .StallAt(9, kInterval * 20, kInterval * 3);
  const SchedulerRun a = RunSchedulerOnce(plan, /*with_injector=*/true);
  const SchedulerRun b = RunSchedulerOnce(plan, /*with_injector=*/true);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.displays_completed, b.displays_completed);
  EXPECT_EQ(a.degraded_reads, b.degraded_reads);
  EXPECT_EQ(a.streams_paused, b.streams_paused);
  EXPECT_EQ(a.streams_resumed, b.streams_resumed);
  // And the plan had teeth: some degraded handling actually happened.
  EXPECT_GT(a.degraded_reads + a.streams_paused, 0);
}

// --- end-to-end experiment determinism --------------------------------

ExperimentConfig FaultedConfig(Scheme scheme) {
  ExperimentConfig cfg;
  cfg.scheme = scheme;
  cfg.num_disks = 100;
  cfg.num_objects = 100;
  cfg.subobjects_per_object = 150;
  cfg.preload_objects = 20;
  cfg.stations = 8;
  cfg.geometric_mean = 5.0;
  cfg.warmup = SimTime::Minutes(10);
  cfg.measure = SimTime::Minutes(30);
  cfg.fault_plan.FailAt(3, SimTime::Minutes(12))
      .RecoverAt(3, SimTime::Minutes(20))
      .StallAt(47, SimTime::Minutes(15), SimTime::Seconds(45))
      .FailAt(12, SimTime::Minutes(25))
      .RecoverAt(12, SimTime::Minutes(32));
  return cfg;
}

void ExpectIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_DOUBLE_EQ(a.displays_per_hour, b.displays_per_hour);
  EXPECT_EQ(a.displays_completed, b.displays_completed);
  EXPECT_DOUBLE_EQ(a.mean_startup_latency_sec, b.mean_startup_latency_sec);
  EXPECT_DOUBLE_EQ(a.disk_utilization, b.disk_utilization);
  EXPECT_DOUBLE_EQ(a.tertiary_utilization, b.tertiary_utilization);
  EXPECT_EQ(a.materializations, b.materializations);
  EXPECT_EQ(a.hiccups, b.hiccups);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.degraded_reads, b.degraded_reads);
  EXPECT_EQ(a.streams_paused, b.streams_paused);
  EXPECT_EQ(a.streams_resumed, b.streams_resumed);
  EXPECT_EQ(a.displays_interrupted, b.displays_interrupted);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_DOUBLE_EQ(a.mean_resume_latency_sec, b.mean_resume_latency_sec);
}

TEST(FaultDeterminismTest, StripedExperimentRepeatsExactly) {
  const ExperimentConfig cfg = FaultedConfig(Scheme::kSimpleStriping);
  auto a = RunExperiment(cfg);
  auto b = RunExperiment(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdentical(*a, *b);
}

TEST(FaultDeterminismTest, VdrExperimentRepeatsExactly) {
  const ExperimentConfig cfg = FaultedConfig(Scheme::kVdr);
  auto a = RunExperiment(cfg);
  auto b = RunExperiment(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdentical(*a, *b);
}

}  // namespace
}  // namespace stagger
