#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace stagger {
namespace {

TEST(FaultPlanTest, EmptyPlanValidates) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.Validate(10).ok());
}

TEST(FaultPlanTest, BuilderAndValidate) {
  FaultPlan plan;
  plan.FailAt(3, SimTime::Seconds(10))
      .RecoverAt(3, SimTime::Seconds(50))
      .StallAt(7, SimTime::Seconds(20), SimTime::Seconds(5));
  EXPECT_EQ(plan.size(), 3u);
  EXPECT_TRUE(plan.Validate(10).ok());
}

TEST(FaultPlanTest, RejectsOutOfRangeDisk) {
  FaultPlan plan;
  plan.FailAt(10, SimTime::Seconds(1));
  EXPECT_TRUE(plan.Validate(10).IsInvalidArgument());
  FaultPlan negative;
  negative.FailAt(-1, SimTime::Seconds(1));
  EXPECT_TRUE(negative.Validate(10).IsInvalidArgument());
}

TEST(FaultPlanTest, RejectsNegativeTimeAndNonPositiveStall) {
  FaultPlan plan;
  plan.FailAt(0, SimTime::Micros(-1));
  EXPECT_FALSE(plan.Validate(4).ok());
  FaultPlan stall;
  stall.StallAt(0, SimTime::Seconds(1), SimTime::Zero());
  EXPECT_FALSE(stall.Validate(4).ok());
}

TEST(FaultPlanTest, RejectsDoubleFailure) {
  FaultPlan plan;
  plan.FailAt(2, SimTime::Seconds(1)).FailAt(2, SimTime::Seconds(2));
  EXPECT_FALSE(plan.Validate(4).ok());
}

TEST(FaultPlanTest, RejectsRecoverOfHealthyDisk) {
  FaultPlan plan;
  plan.RecoverAt(2, SimTime::Seconds(1));
  EXPECT_FALSE(plan.Validate(4).ok());
}

TEST(FaultPlanTest, RejectsStallInsideOutage) {
  FaultPlan plan;
  plan.FailAt(1, SimTime::Seconds(1))
      .StallAt(1, SimTime::Seconds(2), SimTime::Seconds(1))
      .RecoverAt(1, SimTime::Seconds(10));
  EXPECT_FALSE(plan.Validate(4).ok());
}

TEST(FaultPlanTest, RejectsOverlappingStalls) {
  FaultPlan plan;
  plan.StallAt(1, SimTime::Seconds(1), SimTime::Seconds(10))
      .StallAt(1, SimTime::Seconds(5), SimTime::Seconds(1));
  EXPECT_FALSE(plan.Validate(4).ok());
}

TEST(FaultPlanTest, AllowsSequentialEventsOnOneDisk) {
  FaultPlan plan;
  plan.StallAt(1, SimTime::Seconds(1), SimTime::Seconds(2))
      .FailAt(1, SimTime::Seconds(4))
      .RecoverAt(1, SimTime::Seconds(6))
      .StallAt(1, SimTime::Seconds(7), SimTime::Seconds(1));
  EXPECT_TRUE(plan.Validate(4).ok()) << plan.Validate(4);
}

TEST(FaultPlanTest, IndependentDisksDoNotInterfere) {
  FaultPlan plan;
  plan.FailAt(0, SimTime::Seconds(1)).FailAt(1, SimTime::Seconds(1));
  EXPECT_TRUE(plan.Validate(4).ok());
}

TEST(FaultPlanTest, RoundTripsThroughText) {
  FaultPlan plan;
  plan.FailAt(3, SimTime::Seconds(10))
      .RecoverAt(3, SimTime::Seconds(50))
      .StallAt(7, SimTime::Millis(20500), SimTime::Seconds(5));
  const std::string text = plan.ToString();
  auto parsed = FaultPlan::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->ToString(), text);
  EXPECT_TRUE(parsed->Validate(10).ok());
}

TEST(FaultPlanTest, ParseSkipsCommentsAndBlankLines) {
  auto plan = FaultPlan::Parse(
      "# a failure scenario\n"
      "\n"
      "1000000 fail 2\n"
      "  # indented comment\n"
      "5000000 recover 2\n"
      "2000000 stall 3 250000\n");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->size(), 3u);
  EXPECT_TRUE(plan->Validate(8).ok());
}

TEST(FaultPlanTest, ParseRejectsGarbage) {
  EXPECT_FALSE(FaultPlan::Parse("once upon a time").ok());
  EXPECT_FALSE(FaultPlan::Parse("1000 explode 3").ok());
  EXPECT_FALSE(FaultPlan::Parse("1000 stall 3").ok());  // missing duration
  EXPECT_FALSE(FaultPlan::Parse("1000 fail 3 extra").ok());
}

TEST(FaultPlanTest, SortedOrdersByTime) {
  FaultPlan plan;
  plan.RecoverAt(0, SimTime::Seconds(9))
      .FailAt(0, SimTime::Seconds(1))
      .StallAt(1, SimTime::Seconds(4), SimTime::Seconds(1));
  const auto sorted = plan.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_LE(sorted[0].at, sorted[1].at);
  EXPECT_LE(sorted[1].at, sorted[2].at);
}

TEST(FaultPlanTest, RandomPlansAlwaysValidate) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    FaultPlan plan = FaultPlan::Random(&rng, /*num_disks=*/12,
                                       /*horizon=*/SimTime::Hours(1),
                                       /*num_failures=*/3, /*num_stalls=*/3,
                                       /*mean_outage=*/SimTime::Minutes(5),
                                       /*mean_stall=*/SimTime::Seconds(30));
    EXPECT_TRUE(plan.Validate(12).ok())
        << "seed " << seed << ": " << plan.Validate(12) << "\n"
        << plan.ToString();
  }
}

// ---------------------------------------------------------------------
// Same-instant tie-breaks: deterministic apply order recover < fail <
// stall, with exact duplicates rejected.
// ---------------------------------------------------------------------

TEST(FaultPlanTest, SameInstantRecoverThenFailIsLegal) {
  // A back-to-back outage: the old failure ends and a new one begins at
  // the same timestamp.  The recover applies first regardless of the
  // order the builder saw them.
  FaultPlan plan;
  plan.FailAt(3, SimTime::Seconds(1))
      .FailAt(3, SimTime::Seconds(5))
      .RecoverAt(3, SimTime::Seconds(5))
      .RecoverAt(3, SimTime::Seconds(9));
  EXPECT_TRUE(plan.Validate(8).ok()) << plan.Validate(8);

  const auto sorted = plan.Sorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[1].kind, FaultKind::kRecover);
  EXPECT_EQ(sorted[2].kind, FaultKind::kFail);
  EXPECT_EQ(sorted[1].at, sorted[2].at);
}

TEST(FaultPlanTest, SameInstantRecoverThenStallIsLegal) {
  FaultPlan plan;
  plan.FailAt(0, SimTime::Seconds(1))
      .StallAt(0, SimTime::Seconds(4), SimTime::Seconds(2))
      .RecoverAt(0, SimTime::Seconds(4));
  EXPECT_TRUE(plan.Validate(2).ok()) << plan.Validate(2);
}

TEST(FaultPlanTest, RejectsExactDuplicateEvents) {
  FaultPlan fails;
  fails.FailAt(1, SimTime::Seconds(2)).FailAt(1, SimTime::Seconds(2));
  EXPECT_TRUE(fails.Validate(4).IsInvalidArgument());

  FaultPlan recovers;
  recovers.FailAt(1, SimTime::Seconds(1))
      .RecoverAt(1, SimTime::Seconds(2))
      .RecoverAt(1, SimTime::Seconds(2));
  EXPECT_TRUE(recovers.Validate(4).IsInvalidArgument());
}

TEST(FaultPlanTest, SameInstantFailThenStallIsStillInconsistent) {
  // Apply order puts the fail first, so the stall lands on a failed
  // disk — the state machine rejects it like any other overlap.
  FaultPlan plan;
  plan.StallAt(2, SimTime::Seconds(3), SimTime::Seconds(1))
      .FailAt(2, SimTime::Seconds(3));
  EXPECT_TRUE(plan.Validate(4).IsInvalidArgument());
}

TEST(FaultPlanTest, SameInstantTieBreakSurvivesSerialization) {
  FaultPlan plan;
  plan.FailAt(5, SimTime::Seconds(2))
      .RecoverAt(5, SimTime::Seconds(4))
      .FailAt(5, SimTime::Seconds(4));
  auto reparsed = FaultPlan::Parse(plan.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_TRUE(reparsed->Validate(8).ok());
  EXPECT_EQ(reparsed->ToString(), plan.ToString());
}

TEST(FaultPlanTest, RandomIsDeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  const FaultPlan pa =
      FaultPlan::Random(&a, 8, SimTime::Hours(1), 2, 2,
                        SimTime::Minutes(3), SimTime::Seconds(10));
  const FaultPlan pb =
      FaultPlan::Random(&b, 8, SimTime::Hours(1), 2, 2,
                        SimTime::Minutes(3), SimTime::Seconds(10));
  EXPECT_EQ(pa.ToString(), pb.ToString());
}

}  // namespace
}  // namespace stagger
