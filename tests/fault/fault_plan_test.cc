#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace stagger {
namespace {

TEST(FaultPlanTest, EmptyPlanValidates) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.Validate(10).ok());
}

TEST(FaultPlanTest, BuilderAndValidate) {
  FaultPlan plan;
  plan.FailAt(3, SimTime::Seconds(10))
      .RecoverAt(3, SimTime::Seconds(50))
      .StallAt(7, SimTime::Seconds(20), SimTime::Seconds(5));
  EXPECT_EQ(plan.size(), 3u);
  EXPECT_TRUE(plan.Validate(10).ok());
}

TEST(FaultPlanTest, RejectsOutOfRangeDisk) {
  FaultPlan plan;
  plan.FailAt(10, SimTime::Seconds(1));
  EXPECT_TRUE(plan.Validate(10).IsInvalidArgument());
  FaultPlan negative;
  negative.FailAt(-1, SimTime::Seconds(1));
  EXPECT_TRUE(negative.Validate(10).IsInvalidArgument());
}

TEST(FaultPlanTest, RejectsNegativeTimeAndNonPositiveStall) {
  FaultPlan plan;
  plan.FailAt(0, SimTime::Micros(-1));
  EXPECT_FALSE(plan.Validate(4).ok());
  FaultPlan stall;
  stall.StallAt(0, SimTime::Seconds(1), SimTime::Zero());
  EXPECT_FALSE(stall.Validate(4).ok());
}

TEST(FaultPlanTest, RejectsDoubleFailure) {
  FaultPlan plan;
  plan.FailAt(2, SimTime::Seconds(1)).FailAt(2, SimTime::Seconds(2));
  EXPECT_FALSE(plan.Validate(4).ok());
}

TEST(FaultPlanTest, RejectsRecoverOfHealthyDisk) {
  FaultPlan plan;
  plan.RecoverAt(2, SimTime::Seconds(1));
  EXPECT_FALSE(plan.Validate(4).ok());
}

TEST(FaultPlanTest, RejectsStallInsideOutage) {
  FaultPlan plan;
  plan.FailAt(1, SimTime::Seconds(1))
      .StallAt(1, SimTime::Seconds(2), SimTime::Seconds(1))
      .RecoverAt(1, SimTime::Seconds(10));
  EXPECT_FALSE(plan.Validate(4).ok());
}

TEST(FaultPlanTest, RejectsOverlappingStalls) {
  FaultPlan plan;
  plan.StallAt(1, SimTime::Seconds(1), SimTime::Seconds(10))
      .StallAt(1, SimTime::Seconds(5), SimTime::Seconds(1));
  EXPECT_FALSE(plan.Validate(4).ok());
}

TEST(FaultPlanTest, AllowsSequentialEventsOnOneDisk) {
  FaultPlan plan;
  plan.StallAt(1, SimTime::Seconds(1), SimTime::Seconds(2))
      .FailAt(1, SimTime::Seconds(4))
      .RecoverAt(1, SimTime::Seconds(6))
      .StallAt(1, SimTime::Seconds(7), SimTime::Seconds(1));
  EXPECT_TRUE(plan.Validate(4).ok()) << plan.Validate(4);
}

TEST(FaultPlanTest, IndependentDisksDoNotInterfere) {
  FaultPlan plan;
  plan.FailAt(0, SimTime::Seconds(1)).FailAt(1, SimTime::Seconds(1));
  EXPECT_TRUE(plan.Validate(4).ok());
}

TEST(FaultPlanTest, RoundTripsThroughText) {
  FaultPlan plan;
  plan.FailAt(3, SimTime::Seconds(10))
      .RecoverAt(3, SimTime::Seconds(50))
      .StallAt(7, SimTime::Millis(20500), SimTime::Seconds(5));
  const std::string text = plan.ToString();
  auto parsed = FaultPlan::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->ToString(), text);
  EXPECT_TRUE(parsed->Validate(10).ok());
}

TEST(FaultPlanTest, ParseSkipsCommentsAndBlankLines) {
  auto plan = FaultPlan::Parse(
      "# a failure scenario\n"
      "\n"
      "1000000 fail 2\n"
      "  # indented comment\n"
      "5000000 recover 2\n"
      "2000000 stall 3 250000\n");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->size(), 3u);
  EXPECT_TRUE(plan->Validate(8).ok());
}

TEST(FaultPlanTest, ParseRejectsGarbage) {
  EXPECT_FALSE(FaultPlan::Parse("once upon a time").ok());
  EXPECT_FALSE(FaultPlan::Parse("1000 explode 3").ok());
  EXPECT_FALSE(FaultPlan::Parse("1000 stall 3").ok());  // missing duration
  EXPECT_FALSE(FaultPlan::Parse("1000 fail 3 extra").ok());
}

TEST(FaultPlanTest, SortedOrdersByTime) {
  FaultPlan plan;
  plan.RecoverAt(0, SimTime::Seconds(9))
      .FailAt(0, SimTime::Seconds(1))
      .StallAt(1, SimTime::Seconds(4), SimTime::Seconds(1));
  const auto sorted = plan.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_LE(sorted[0].at, sorted[1].at);
  EXPECT_LE(sorted[1].at, sorted[2].at);
}

TEST(FaultPlanTest, RandomPlansAlwaysValidate) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    FaultPlan plan = FaultPlan::Random(&rng, /*num_disks=*/12,
                                       /*horizon=*/SimTime::Hours(1),
                                       /*num_failures=*/3, /*num_stalls=*/3,
                                       /*mean_outage=*/SimTime::Minutes(5),
                                       /*mean_stall=*/SimTime::Seconds(30));
    EXPECT_TRUE(plan.Validate(12).ok())
        << "seed " << seed << ": " << plan.Validate(12) << "\n"
        << plan.ToString();
  }
}

// ---------------------------------------------------------------------
// Same-instant tie-breaks: deterministic apply order recover < fail <
// stall, with exact duplicates rejected.
// ---------------------------------------------------------------------

TEST(FaultPlanTest, SameInstantRecoverThenFailIsLegal) {
  // A back-to-back outage: the old failure ends and a new one begins at
  // the same timestamp.  The recover applies first regardless of the
  // order the builder saw them.
  FaultPlan plan;
  plan.FailAt(3, SimTime::Seconds(1))
      .FailAt(3, SimTime::Seconds(5))
      .RecoverAt(3, SimTime::Seconds(5))
      .RecoverAt(3, SimTime::Seconds(9));
  EXPECT_TRUE(plan.Validate(8).ok()) << plan.Validate(8);

  const auto sorted = plan.Sorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[1].kind, FaultKind::kRecover);
  EXPECT_EQ(sorted[2].kind, FaultKind::kFail);
  EXPECT_EQ(sorted[1].at, sorted[2].at);
}

TEST(FaultPlanTest, SameInstantRecoverThenStallIsLegal) {
  FaultPlan plan;
  plan.FailAt(0, SimTime::Seconds(1))
      .StallAt(0, SimTime::Seconds(4), SimTime::Seconds(2))
      .RecoverAt(0, SimTime::Seconds(4));
  EXPECT_TRUE(plan.Validate(2).ok()) << plan.Validate(2);
}

TEST(FaultPlanTest, RejectsExactDuplicateEvents) {
  FaultPlan fails;
  fails.FailAt(1, SimTime::Seconds(2)).FailAt(1, SimTime::Seconds(2));
  EXPECT_TRUE(fails.Validate(4).IsInvalidArgument());

  FaultPlan recovers;
  recovers.FailAt(1, SimTime::Seconds(1))
      .RecoverAt(1, SimTime::Seconds(2))
      .RecoverAt(1, SimTime::Seconds(2));
  EXPECT_TRUE(recovers.Validate(4).IsInvalidArgument());
}

TEST(FaultPlanTest, SameInstantFailThenStallIsStillInconsistent) {
  // Apply order puts the fail first, so the stall lands on a failed
  // disk — the state machine rejects it like any other overlap.
  FaultPlan plan;
  plan.StallAt(2, SimTime::Seconds(3), SimTime::Seconds(1))
      .FailAt(2, SimTime::Seconds(3));
  EXPECT_TRUE(plan.Validate(4).IsInvalidArgument());
}

TEST(FaultPlanTest, SameInstantTieBreakSurvivesSerialization) {
  FaultPlan plan;
  plan.FailAt(5, SimTime::Seconds(2))
      .RecoverAt(5, SimTime::Seconds(4))
      .FailAt(5, SimTime::Seconds(4));
  auto reparsed = FaultPlan::Parse(plan.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_TRUE(reparsed->Validate(8).ok());
  EXPECT_EQ(reparsed->ToString(), plan.ToString());
}

// ---------------------------------------------------------------------
// Partial faults and correlated events: degrade, latent, domains.
// ---------------------------------------------------------------------

TEST(FaultPlanTest, DegradeValidates) {
  FaultPlan plan;
  plan.DegradeAt(2, SimTime::Seconds(5), SimTime::Seconds(30), 50);
  EXPECT_TRUE(plan.Validate(8).ok()) << plan.Validate(8);
}

TEST(FaultPlanTest, RejectsDegradePercentOutOfRange) {
  FaultPlan zero;
  zero.DegradeAt(0, SimTime::Seconds(1), SimTime::Seconds(1), 0);
  EXPECT_TRUE(zero.Validate(4).IsInvalidArgument());
  FaultPlan full;
  full.DegradeAt(0, SimTime::Seconds(1), SimTime::Seconds(1), 100);
  EXPECT_TRUE(full.Validate(4).IsInvalidArgument());
}

TEST(FaultPlanTest, RejectsDegradeOverlappingOutage) {
  FaultPlan plan;
  plan.FailAt(1, SimTime::Seconds(1))
      .DegradeAt(1, SimTime::Seconds(2), SimTime::Seconds(1), 50)
      .RecoverAt(1, SimTime::Seconds(10));
  EXPECT_TRUE(plan.Validate(4).IsInvalidArgument());
}

TEST(FaultPlanTest, RejectsOverlappingDegrades) {
  FaultPlan plan;
  plan.DegradeAt(1, SimTime::Seconds(1), SimTime::Seconds(10), 40)
      .DegradeAt(1, SimTime::Seconds(5), SimTime::Seconds(1), 60);
  EXPECT_TRUE(plan.Validate(4).IsInvalidArgument());
}

TEST(FaultPlanTest, LatentIsOrthogonalToHealth) {
  // A latent error inside an outage window is legal: media corruption
  // does not care whether the disk is currently serving.
  FaultPlan plan;
  plan.FailAt(1, SimTime::Seconds(1))
      .LatentAt(1, SimTime::Seconds(2), 10, 12)
      .RecoverAt(1, SimTime::Seconds(5));
  EXPECT_TRUE(plan.Validate(4).ok()) << plan.Validate(4);
}

TEST(FaultPlanTest, RejectsMalformedLatentRange) {
  FaultPlan inverted;
  inverted.LatentAt(0, SimTime::Seconds(1), 5, 3);
  EXPECT_TRUE(inverted.Validate(4).IsInvalidArgument());
  FaultPlan negative;
  negative.LatentAt(0, SimTime::Seconds(1), -1, 3);
  EXPECT_TRUE(negative.Validate(4).IsInvalidArgument());
}

TEST(FaultPlanTest, DomainEventExpandsToEveryMember) {
  FaultPlan plan;
  const int32_t d = plan.AddDomain({0, 1, 2});
  plan.FailDomainAt(d, SimTime::Seconds(2))
      .RecoverDomainAt(d, SimTime::Seconds(8));
  EXPECT_TRUE(plan.Validate(6).ok()) << plan.Validate(6);
  EXPECT_EQ(plan.Sorted().size(), 2u);            // one entry per line
  EXPECT_EQ(plan.ExpandedSorted().size(), 6u);    // one per member
  for (const FaultEvent& e : plan.ExpandedSorted()) {
    EXPECT_EQ(e.domain, -1);  // expansion resolves to single disks
    EXPECT_GE(e.disk, 0);
    EXPECT_LE(e.disk, 2);
  }
}

TEST(FaultPlanTest, RejectsOverlappingDomains) {
  FaultPlan plan;
  plan.AddDomain({0, 1});
  plan.AddDomain({1, 2});
  const int32_t id = 0;
  plan.FailDomainAt(id, SimTime::Seconds(1));
  EXPECT_TRUE(plan.Validate(4).IsInvalidArgument());
}

TEST(FaultPlanTest, RejectsDomainMemberOutOfRange) {
  FaultPlan plan;
  const int32_t d = plan.AddDomain({2, 9});
  plan.StallDomainAt(d, SimTime::Seconds(1), SimTime::Seconds(1));
  EXPECT_TRUE(plan.Validate(4).IsInvalidArgument());
}

TEST(FaultPlanTest, DomainEventConflictsWithMemberEvent) {
  // The domain fail expands to disk 1, which is already failed.
  FaultPlan plan;
  const int32_t d = plan.AddDomain({1, 2});
  plan.FailAt(1, SimTime::Seconds(1)).FailDomainAt(d, SimTime::Seconds(3));
  EXPECT_TRUE(plan.Validate(4).IsInvalidArgument());
}

TEST(FaultPlanTest, NewKindsRoundTripThroughText) {
  FaultPlan plan;
  const int32_t d = plan.AddDomain({4, 5, 6});
  plan.DegradeAt(1, SimTime::Seconds(3), SimTime::Seconds(20), 45)
      .LatentAt(2, SimTime::Seconds(7), 100, 103)
      .DegradeDomainAt(d, SimTime::Seconds(9), SimTime::Seconds(5), 70)
      .StallDomainAt(d, SimTime::Seconds(30), SimTime::Seconds(2));
  const std::string text = plan.ToString();
  auto parsed = FaultPlan::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->ToString(), text);
  EXPECT_TRUE(parsed->Validate(8).ok()) << parsed->Validate(8);
  ASSERT_EQ(parsed->domains().size(), 1u);
  EXPECT_EQ(parsed->domains()[0], (std::vector<DiskId>{4, 5, 6}));
}

TEST(FaultPlanTest, ParseRejectsMalformedNewKinds) {
  // Missing or non-numeric fields fail at parse time.
  EXPECT_FALSE(FaultPlan::Parse("1000 degrade 3 250000").ok());
  EXPECT_FALSE(FaultPlan::Parse("1000 latent 3 10").ok());
  EXPECT_FALSE(FaultPlan::Parse("1000 degrade 3 250000 fast").ok());
  // Domain declarations: duplicate ids, empty groups, bad members, and
  // latent targeted at a domain all fail at parse time.
  EXPECT_FALSE(FaultPlan::Parse("domain 0 1 2\ndomain 0 3 4\n").ok());
  EXPECT_FALSE(FaultPlan::Parse("domain 0\n").ok());
  EXPECT_FALSE(FaultPlan::Parse("domain 0 1 x\n").ok());
  EXPECT_FALSE(FaultPlan::Parse("domain 0 1 2\n1000 latent @0 1 2\n").ok());
  // Trailing junk on otherwise well-formed lines.
  EXPECT_FALSE(FaultPlan::Parse("1000 degrade 3 250000 50 extra").ok());
  EXPECT_FALSE(FaultPlan::Parse("1000 latent 3 10 12 extra").ok());
  // Out-of-range payloads and undeclared domain references parse (the
  // grammar is satisfied) but fail Validate.
  auto pct = FaultPlan::Parse("1000 degrade 3 250000 0");
  ASSERT_TRUE(pct.ok()) << pct.status();
  EXPECT_TRUE(pct->Validate(8).IsInvalidArgument());
  auto inverted = FaultPlan::Parse("1000 latent 3 12 10");
  ASSERT_TRUE(inverted.ok()) << inverted.status();
  EXPECT_TRUE(inverted->Validate(8).IsInvalidArgument());
  auto undeclared = FaultPlan::Parse("1000 fail @0\n");
  ASSERT_TRUE(undeclared.ok()) << undeclared.status();
  EXPECT_TRUE(undeclared->Validate(8).IsInvalidArgument());
}

TEST(FaultPlanTest, GeneratePlansAlwaysValidateAndRoundTrip) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    ChaosParams params;
    params.horizon = SimTime::Hours(2);
    params.mtbf = SimTime::Hours(20);
    params.mttr = SimTime::Minutes(20);
    params.stall_mtbf = SimTime::Hours(15);
    params.mean_stall = SimTime::Seconds(30);
    params.degrade_mtbf = SimTime::Hours(15);
    params.mean_degrade = SimTime::Minutes(10);
    params.latent_mtbf = SimTime::Hours(10);
    params.subobject_space = 200;
    params.max_latent_run = 3;
    params.num_domains = 3;
    FaultPlan plan = FaultPlan::Generate(&rng, /*num_disks=*/12, params);
    EXPECT_TRUE(plan.Validate(12).ok())
        << "seed " << seed << ": " << plan.Validate(12) << "\n"
        << plan.ToString();
    auto reparsed = FaultPlan::Parse(plan.ToString());
    ASSERT_TRUE(reparsed.ok()) << "seed " << seed << ": " << reparsed.status();
    EXPECT_EQ(reparsed->ToString(), plan.ToString()) << "seed " << seed;
  }
}

TEST(FaultPlanTest, GenerateIsDeterministicPerSeed) {
  ChaosParams params;
  params.horizon = SimTime::Hours(1);
  params.mtbf = SimTime::Hours(10);
  params.mttr = SimTime::Minutes(15);
  params.latent_mtbf = SimTime::Hours(5);
  params.subobject_space = 100;
  params.num_domains = 2;
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(FaultPlan::Generate(&a, 10, params).ToString(),
            FaultPlan::Generate(&b, 10, params).ToString());
}

TEST(FaultPlanTest, RandomIsDeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  const FaultPlan pa =
      FaultPlan::Random(&a, 8, SimTime::Hours(1), 2, 2,
                        SimTime::Minutes(3), SimTime::Seconds(10));
  const FaultPlan pb =
      FaultPlan::Random(&b, 8, SimTime::Hours(1), 2, 2,
                        SimTime::Minutes(3), SimTime::Seconds(10));
  EXPECT_EQ(pa.ToString(), pb.ToString());
}

}  // namespace
}  // namespace stagger
