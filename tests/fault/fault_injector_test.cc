#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "disk/disk_array.h"
#include "sim/simulator.h"

namespace stagger {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto disks = DiskArray::Create(8, DiskParameters::Evaluation());
    ASSERT_TRUE(disks.ok());
    disks_ = std::make_unique<DiskArray>(*std::move(disks));
  }

  Simulator sim_;
  std::unique_ptr<DiskArray> disks_;
};

TEST_F(FaultInjectorTest, AppliesFailureAndRecovery) {
  FaultPlan plan;
  plan.FailAt(2, SimTime::Seconds(10)).RecoverAt(2, SimTime::Seconds(30));
  auto injector = FaultInjector::Create(&sim_, disks_.get(), plan);
  ASSERT_TRUE(injector.ok()) << injector.status();

  sim_.RunUntil(SimTime::Seconds(9));
  EXPECT_TRUE(disks_->IsAvailable(2));
  sim_.RunUntil(SimTime::Seconds(10));
  EXPECT_FALSE(disks_->IsAvailable(2));
  EXPECT_EQ(disks_->disk(2).health(), DiskHealth::kFailed);
  EXPECT_EQ((*injector)->unavailable_disks(), 1);
  sim_.RunUntil(SimTime::Seconds(30));
  EXPECT_TRUE(disks_->IsAvailable(2));
  EXPECT_EQ((*injector)->metrics().failures_injected, 1);
  EXPECT_EQ((*injector)->metrics().recoveries_injected, 1);
}

TEST_F(FaultInjectorTest, StallRecoversImplicitly) {
  FaultPlan plan;
  plan.StallAt(5, SimTime::Seconds(10), SimTime::Seconds(4));
  auto injector = FaultInjector::Create(&sim_, disks_.get(), plan);
  ASSERT_TRUE(injector.ok()) << injector.status();

  sim_.RunUntil(SimTime::Seconds(10));
  EXPECT_EQ(disks_->disk(5).health(), DiskHealth::kStalled);
  sim_.RunUntil(SimTime::Seconds(14));
  EXPECT_EQ(disks_->disk(5).health(), DiskHealth::kHealthy);
  EXPECT_EQ((*injector)->metrics().stalls_injected, 1);
  EXPECT_EQ((*injector)->metrics().recoveries_injected, 1);
}

TEST_F(FaultInjectorTest, ListenersFireWithEventTime) {
  FaultPlan plan;
  plan.FailAt(1, SimTime::Seconds(5)).RecoverAt(1, SimTime::Seconds(8));
  auto injector = FaultInjector::Create(&sim_, disks_.get(), plan);
  ASSERT_TRUE(injector.ok()) << injector.status();

  std::vector<std::pair<DiskId, SimTime>> downs;
  std::vector<std::pair<DiskId, SimTime>> ups;
  (*injector)->OnDown([&](DiskId d, SimTime t) { downs.emplace_back(d, t); });
  (*injector)->OnUp([&](DiskId d, SimTime t) { ups.emplace_back(d, t); });
  sim_.Run();

  ASSERT_EQ(downs.size(), 1u);
  EXPECT_EQ(downs[0].first, 1);
  EXPECT_EQ(downs[0].second, SimTime::Seconds(5));
  ASSERT_EQ(ups.size(), 1u);
  EXPECT_EQ(ups[0].first, 1);
  EXPECT_EQ(ups[0].second, SimTime::Seconds(8));
}

TEST_F(FaultInjectorTest, RejectsInvalidPlan) {
  FaultPlan plan;
  plan.FailAt(99, SimTime::Seconds(1));
  EXPECT_FALSE(FaultInjector::Create(&sim_, disks_.get(), plan).ok());
}

TEST_F(FaultInjectorTest, RejectsEventsInThePast) {
  sim_.ScheduleAt(SimTime::Seconds(10), [] {});
  sim_.Run();
  FaultPlan plan;
  plan.FailAt(0, SimTime::Seconds(5));
  auto injector = FaultInjector::Create(&sim_, disks_.get(), plan);
  EXPECT_TRUE(injector.status().IsFailedPrecondition());
}

TEST_F(FaultInjectorTest, DownIntervalAccountingAccrues) {
  FaultPlan plan;
  plan.FailAt(0, SimTime::Zero()).RecoverAt(0, SimTime::Seconds(3));
  auto injector = FaultInjector::Create(&sim_, disks_.get(), plan);
  ASSERT_TRUE(injector.ok()) << injector.status();

  // Drive interval close-outs by hand: one per simulated second.
  for (int t = 0; t <= 4; ++t) {
    sim_.ScheduleAt(SimTime::Seconds(t), [this] { disks_->EndInterval(); },
                    /*priority=*/10);
  }
  sim_.Run();
  // Down at the close-outs of t = 0, 1, 2; recovered by t = 3.
  EXPECT_EQ(disks_->disk(0).down_intervals(), 3);
  EXPECT_EQ(disks_->disk(1).down_intervals(), 0);
}

}  // namespace
}  // namespace stagger
