// End-to-end chaos properties: generated fault plans — whole-disk
// failures, stalls, degrades, latent sector errors, optionally
// correlated across failure domains — replayed against a scrub-enabled
// striped server.  Checked per seed:
//  * the generated plan is Validate-clean and round-trips through its
//    text form bit-identically (any chaos run is replayable from its
//    printed plan);
//  * no corrupt frame reaches a viewer — every latent read is caught by
//    the fault-aware ladder (corrupt_frames_delivered == 0);
//  * the background budget never exceeds the measured idle bandwidth
//    (budget_violations == 0; under the debug-audit preset a violation
//    is also a fatal in-run check);
//  * every latent error is repaired by run end — the chaos horizon
//    closes well before the measurement window does, so the scrubber's
//    repair paths (parity, archive, orphan, targeted) must converge to
//    zero active cells;
//  * delivery stays hiccup-free and the run completes displays.
//
// The seed count defaults to 20 (the acceptance sweep width) and is
// widened by the weekly sweep through STAGGER_CHAOS_SEEDS.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "fault/fault_plan.h"
#include "server/experiment.h"
#include "util/rng.h"

namespace stagger {
namespace {

/// A 24-disk shrink with parity, hot spares, scrubbing, and moderate
/// load — idle-bandwidth maintenance needs idle bandwidth: a scrub
/// stripe read needs all M+1 members free in one interval, so the
/// station count (M = 5: 3 stations pin ~15 of 24 disks at peak) keeps
/// whole-stripe windows opening often enough for repair to converge.
/// The catalog is sized so one full scrub cycle (<= num_objects *
/// subobjects_per_object stripes at ~1 stripe per interval for stride-1
/// layouts) fits inside the post-chaos repair runway: an undetected
/// latent cell is only found when the cursor crosses it, so "repaired
/// by run end" needs cycle time < runway — the same sizing rule real
/// deployments apply to scrub rate versus detection-window targets.
ExperimentConfig ChaosConfig(uint64_t seed) {
  ExperimentConfig cfg;
  cfg.scheme = Scheme::kStaggered;
  cfg.num_disks = 24;
  cfg.num_objects = 40;
  cfg.subobjects_per_object = 25;
  cfg.preload_objects = 8;
  cfg.stations = 3;
  cfg.geometric_mean = 5.0;
  cfg.warmup = SimTime::Minutes(10);
  cfg.measure = SimTime::Minutes(40);
  cfg.seed = seed;
  cfg.degraded_policy = DegradedPolicy::kReconstruct;
  cfg.parity = true;
  cfg.num_spares = 2;
  cfg.scrub = true;
  return cfg;
}

/// MTBF rates tuned to draw a handful of events of each kind over the
/// chaos horizon (expected count per kind = D * horizon / mtbf).
FaultPlan ChaosPlan(uint64_t seed, const ExperimentConfig& cfg) {
  ChaosParams params;
  // Faults stop halfway through the measurement window, leaving the
  // tail as repair runway: by run end everything must have healed.
  params.horizon = cfg.warmup + SimTime::Micros(cfg.measure.micros() / 2);
  params.mtbf = SimTime::Hours(5);
  params.mttr = SimTime::Minutes(5);
  params.stall_mtbf = SimTime::Hours(5);
  params.mean_stall = SimTime::Seconds(45);
  params.degrade_mtbf = SimTime::Hours(5);
  params.mean_degrade = SimTime::Minutes(4);
  params.latent_mtbf = SimTime::Hours(3);
  params.subobject_space = cfg.subobjects_per_object;
  params.max_latent_run = 2;
  // Half the seeds exercise correlated (enclosure-level) events.
  params.num_domains = seed % 2 == 0 ? 2 : 0;
  Rng rng(seed);
  return FaultPlan::Generate(&rng, cfg.num_disks, params);
}

int64_t NumSeeds() {
  int64_t seeds = 20;
  if (const char* env = std::getenv("STAGGER_CHAOS_SEEDS")) {
    seeds = std::max<int64_t>(1, std::atoll(env));
  }
  return seeds;
}

std::string CaseName(const ::testing::TestParamInfo<uint64_t>& info) {
  std::ostringstream os;
  os << (info.param % 2 == 0 ? "domains" : "plain") << "_s" << info.param;
  return os.str();
}

std::vector<uint64_t> MakeSeeds() {
  std::vector<uint64_t> seeds;
  for (int64_t s = 1; s <= NumSeeds(); ++s) {
    seeds.push_back(static_cast<uint64_t>(s));
  }
  return seeds;
}

class ChaosPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosPropertyTest, GeneratedFaultsNeverCorruptOrOverdraw) {
  const uint64_t seed = GetParam();
  ExperimentConfig cfg = ChaosConfig(seed);
  const FaultPlan plan = ChaosPlan(seed, cfg);

  ASSERT_TRUE(plan.Validate(cfg.num_disks).ok())
      << plan.Validate(cfg.num_disks) << "\n" << plan.ToString();
  auto reparsed = FaultPlan::Parse(plan.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->ToString(), plan.ToString())
      << "chaos plans must replay from their printed text";

  cfg.fault_plan = plan;
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status() << "\nplan:\n"
                           << plan.ToString();

  // The run made progress and delivery never hiccuped.
  EXPECT_GT(result->displays_completed, 0) << plan.ToString();
  EXPECT_EQ(result->hiccups, 0) << plan.ToString();

  // No corrupt frame reached a viewer: the fault-aware read ladder
  // catches every latent cell a display touches.
  EXPECT_EQ(result->corrupt_frames_delivered, 0) << plan.ToString();

  // Background maintenance lived strictly inside idle bandwidth.
  EXPECT_EQ(result->background_budget_violations, 0) << plan.ToString();

  // Every injected latent error healed before run end, whichever path
  // repaired it (scrub parity/archive/orphan/targeted, or a rebuild
  // replacing the medium).
  EXPECT_EQ(result->latent_errors_unrepaired, 0) << plan.ToString();
  EXPECT_EQ(result->latent_errors_repaired, result->latent_errors_injected)
      << plan.ToString();
  if (result->latent_errors_injected > 0) {
    EXPECT_GE(result->mean_time_to_repair_sec, 0.0);
  }

  // The scrubber actually cycled (it is configured on in every run).
  EXPECT_GT(result->scrub_stripes_verified, 0) << plan.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosPropertyTest,
                         ::testing::ValuesIn(MakeSeeds()), CaseName);

TEST(ChaosDeterminismTest, IdenticalSeedsReplayBitIdentically) {
  ExperimentConfig cfg = ChaosConfig(2);
  cfg.fault_plan = ChaosPlan(2, cfg);
  auto a = RunExperiment(cfg);
  auto b = RunExperiment(cfg);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->displays_per_hour, b->displays_per_hour);
  EXPECT_EQ(a->displays_completed, b->displays_completed);
  EXPECT_EQ(a->latent_errors_injected, b->latent_errors_injected);
  EXPECT_EQ(a->latent_errors_detected, b->latent_errors_detected);
  EXPECT_EQ(a->latent_errors_repaired, b->latent_errors_repaired);
  EXPECT_EQ(a->mean_time_to_repair_sec, b->mean_time_to_repair_sec);
  EXPECT_EQ(a->corrupt_reads_detected, b->corrupt_reads_detected);
  EXPECT_EQ(a->scrub_stripes_verified, b->scrub_stripes_verified);
  EXPECT_EQ(a->degraded_disk_intervals, b->degraded_disk_intervals);
  EXPECT_EQ(a->background_reads_granted, b->background_reads_granted);
  EXPECT_EQ(a->rebuilds_completed, b->rebuilds_completed);
}

}  // namespace
}  // namespace stagger
