// Property tests for the fault subsystem: randomized fault plans
// against a randomized display load must leave every scheduler
// invariant intact, every interval.  Checked per seed:
//  * InvariantAuditor::AuditScheduler passes after every interval
//    (includes the degraded-state rules: an unavailable disk carries
//    zero load, and no request is scheduled twice across the active,
//    queued, and paused sets);
//  * every pause resolves — streams_paused == streams_resumed +
//    displays_interrupted once the array is healthy again and the
//    backoff runway has elapsed;
//  * every admitted display either completes or is cancelled, and
//    delivery stays hiccup-free throughout.
//
// The seed count defaults to 6 and is widened by the CI sweep through
// STAGGER_FAULT_SEEDS (see .github/workflows).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <vector>

#include "core/interval_scheduler.h"
#include "core/invariants.h"
#include "disk/disk_array.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Millis(605);

struct FaultCase {
  uint64_t seed;
  DegradedPolicy policy;
};

std::string CaseName(const ::testing::TestParamInfo<FaultCase>& info) {
  std::ostringstream os;
  os << (info.param.policy == DegradedPolicy::kPause ? "pause" : "remap")
     << "_s" << info.param.seed;
  return os.str();
}

std::vector<FaultCase> MakeCases() {
  int64_t seeds = 6;
  if (const char* env = std::getenv("STAGGER_FAULT_SEEDS")) {
    seeds = std::max<int64_t>(1, std::atoll(env));
  }
  std::vector<FaultCase> cases;
  for (int64_t s = 1; s <= seeds; ++s) {
    cases.push_back({static_cast<uint64_t>(s),
                     s % 2 == 0 ? DegradedPolicy::kPause
                                : DegradedPolicy::kRemapOrPause});
  }
  return cases;
}

class FaultPropertyTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultPropertyTest, RandomFaultsKeepInvariantsEveryInterval) {
  const FaultCase& c = GetParam();
  Rng rng(c.seed);

  constexpr int32_t kDisks = 12;
  Simulator sim;
  auto disks = DiskArray::Create(kDisks, DiskParameters::Evaluation());
  ASSERT_TRUE(disks.ok());

  SchedulerConfig config;
  config.stride = static_cast<int32_t>(1 + rng.NextBounded(3));
  config.interval = kInterval;
  config.degraded_policy = c.policy;
  // Bound the pause runway so interrupted displays resolve within the
  // simulated horizon even for never-healing stragglers.
  config.max_pause_intervals = 64;
  auto sched = IntervalScheduler::Create(&sim, &*disks, config);
  ASSERT_TRUE(sched.ok()) << sched.status();

  // All faults start (and stalls end) inside the first 200 intervals;
  // failures recover within the plan by construction.
  const FaultPlan plan = FaultPlan::Random(
      &rng, kDisks, /*horizon=*/kInterval * 200, /*num_failures=*/3,
      /*num_stalls=*/3, /*mean_outage=*/kInterval * 20,
      /*mean_stall=*/kInterval * 5);
  ASSERT_TRUE(plan.Validate(kDisks).ok());
  auto injector = FaultInjector::Create(&sim, &*disks, plan);
  ASSERT_TRUE(injector.ok()) << injector.status();

  constexpr int kRequests = 12;
  int completed = 0;
  for (int i = 0; i < kRequests; ++i) {
    DisplayRequest req;
    req.object = i;
    req.degree = static_cast<int32_t>(1 + rng.NextBounded(4));
    req.start_disk = static_cast<int32_t>(rng.NextBounded(kDisks));
    req.num_subobjects = static_cast<int64_t>(10 + rng.NextBounded(50));
    req.on_completed = [&completed] { ++completed; };
    const SimTime at = kInterval * static_cast<int64_t>(rng.NextBounded(100));
    sim.ScheduleAt(at, [&sched, req = std::move(req)]() mutable {
      auto id = (*sched)->Submit(std::move(req));
      STAGGER_CHECK(id.ok()) << id.status();
    });
  }

  // Faults end by interval ~270 (200 + the outage tail); the remaining
  // runway covers the longest displays plus max_pause_intervals of
  // backoff, so by interval 500 everything must have settled.
  constexpr int64_t kHorizonIntervals = 500;
  for (int64_t step = 1; step <= kHorizonIntervals; ++step) {
    sim.RunUntil(kInterval * step);
    ASSERT_TRUE(InvariantAuditor::AuditScheduler(**sched).ok())
        << InvariantAuditor::AuditScheduler(**sched) << " after interval "
        << step;
  }

  const SchedulerMetrics& m = (*sched)->metrics();
  // Everything drained: no stream is active, queued, or parked.
  EXPECT_EQ((*sched)->active_streams(), 0u);
  EXPECT_EQ((*sched)->pending_requests(), 0u);
  EXPECT_EQ((*sched)->paused_streams(), 0u);
  // Every pause resolved, one way or the other.
  EXPECT_EQ(m.streams_paused, m.streams_resumed + m.displays_interrupted);
  // Every request was admitted exactly once and then completed or
  // cancelled; completions observed through callbacks agree.
  EXPECT_EQ(m.displays_requested, kRequests);
  EXPECT_EQ(m.displays_admitted, kRequests);
  EXPECT_EQ(m.displays_completed + m.displays_cancelled, kRequests);
  EXPECT_EQ(m.displays_completed, completed);
  EXPECT_EQ(m.displays_cancelled, m.displays_interrupted);
  // Delivery never hiccuped, degraded or not.
  EXPECT_EQ(m.hiccups, 0);
  if (c.policy == DegradedPolicy::kPause) {
    EXPECT_EQ(m.degraded_reads, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultPropertyTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

}  // namespace
}  // namespace stagger
