// Degraded-mode behavior: the scheduler's remap / pause / resume
// machinery and the VDR baseline's cluster failover, driven by the
// fault subsystem.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "baseline/vdr_server.h"
#include "core/interval_scheduler.h"
#include "disk/disk_array.h"
#include "fault/fault_injector.h"
#include "sim/simulator.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Millis(605);

class DegradedSchedulerTest : public ::testing::Test {
 protected:
  void Init(int32_t num_disks, int32_t stride, DegradedPolicy policy,
            int64_t max_pause_intervals = 4096) {
    auto disks = DiskArray::Create(num_disks, DiskParameters::Evaluation());
    ASSERT_TRUE(disks.ok());
    disks_ = std::make_unique<DiskArray>(*std::move(disks));
    SchedulerConfig config;
    config.stride = stride;
    config.interval = kInterval;
    config.degraded_policy = policy;
    config.max_pause_intervals = max_pause_intervals;
    config.read_observer = [this](int64_t interval, ObjectId object,
                                  int64_t subobject, int32_t fragment,
                                  int32_t disk) {
      reads_.emplace_back(interval, object, subobject, fragment, disk);
    };
    auto sched = IntervalScheduler::Create(&sim_, disks_.get(), config);
    ASSERT_TRUE(sched.ok()) << sched.status();
    sched_ = *std::move(sched);
  }

  void Inject(const FaultPlan& plan) {
    auto injector = FaultInjector::Create(&sim_, disks_.get(), plan);
    ASSERT_TRUE(injector.ok()) << injector.status();
    injector_ = *std::move(injector);
  }

  struct Probe {
    bool started = false;
    bool completed = false;
    SimTime latency;
    SimTime completed_at;
  };

  RequestId Request(ObjectId object, int32_t start_disk, int32_t degree,
                    int64_t subobjects, Probe* probe, bool parity = false) {
    DisplayRequest req;
    req.object = object;
    req.start_disk = start_disk;
    req.degree = degree;
    req.num_subobjects = subobjects;
    req.parity = parity;
    req.on_started = [probe](SimTime latency) {
      probe->started = true;
      probe->latency = latency;
    };
    req.on_completed = [this, probe] {
      probe->completed = true;
      probe->completed_at = sim_.Now();
    };
    auto id = sched_->Submit(std::move(req));
    STAGGER_CHECK(id.ok()) << id.status();
    return *id;
  }

  // (interval, object, subobject, fragment, physical disk)
  using Read = std::tuple<int64_t, ObjectId, int64_t, int32_t, int32_t>;

  Simulator sim_;
  std::unique_ptr<DiskArray> disks_;
  std::unique_ptr<IntervalScheduler> sched_;
  std::unique_ptr<FaultInjector> injector_;
  std::vector<Read> reads_;
};

// A single failed disk with idle disks around it: the lost fragment's
// read is remapped and the display never notices.
TEST_F(DegradedSchedulerTest, RemapKeepsDisplayOnSchedule) {
  Init(10, 1, DegradedPolicy::kRemapOrPause);
  FaultPlan plan;
  plan.FailAt(5, kInterval * 5).RecoverAt(5, kInterval * 6);
  Inject(plan);

  Probe probe;
  Request(0, 0, 3, 20, &probe);
  sim_.RunUntil(SimTime::Minutes(2));

  EXPECT_TRUE(probe.completed);
  EXPECT_EQ(probe.completed_at, kInterval * 19);  // no delay at all
  EXPECT_EQ(sched_->metrics().degraded_reads, 1);
  EXPECT_EQ(sched_->metrics().streams_paused, 0);
  EXPECT_EQ(sched_->metrics().hiccups, 0);
  EXPECT_EQ(sched_->metrics().displays_completed, 1);

  // At interval 5 the stream's stripe is disks {5,6,7}; 6 and 7 are
  // claimed by its own lanes, so the lost read lands on the lowest idle
  // disk, 0.
  bool found = false;
  for (const Read& r : reads_) {
    if (std::get<0>(r) == 5 && std::get<3>(r) == 0) {
      EXPECT_EQ(std::get<4>(r), 0) << "remapped read on wrong disk";
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// A transient stall is treated exactly like a short outage.
TEST_F(DegradedSchedulerTest, StallRemapsForItsDuration) {
  Init(10, 1, DegradedPolicy::kRemapOrPause);
  FaultPlan plan;
  plan.StallAt(6, kInterval * 5, kInterval * 2);
  Inject(plan);

  Probe probe;
  Request(0, 0, 3, 20, &probe);
  sim_.RunUntil(SimTime::Minutes(2));

  EXPECT_TRUE(probe.completed);
  EXPECT_EQ(probe.completed_at, kInterval * 19);
  // Disk 6 is read at intervals 4..6 (lanes 2,1,0); the stall covers
  // intervals 5 and 6.
  EXPECT_EQ(sched_->metrics().degraded_reads, 2);
  EXPECT_EQ(sched_->metrics().streams_paused, 0);
  EXPECT_EQ(sched_->metrics().hiccups, 0);
}

// kPause never remaps: the stream parks and resumes with exponential
// backoff once the disk recovers.
TEST_F(DegradedSchedulerTest, PauseAndResumeAfterRecovery) {
  Init(10, 1, DegradedPolicy::kPause);
  FaultPlan plan;
  plan.FailAt(5, kInterval * 5).RecoverAt(5, kInterval * 10);
  Inject(plan);

  Probe probe;
  Request(0, 0, 3, 20, &probe);

  sim_.RunUntil(kInterval * 5 + SimTime::Millis(1));
  EXPECT_EQ(sched_->paused_streams(), 1u);
  EXPECT_EQ(sched_->active_streams(), 0u);

  sim_.RunUntil(SimTime::Minutes(2));
  // Paused at interval 5 with 5 subobjects delivered; retries at 6 and
  // 8 fail (disk still down), backoff doubles to 4, the retry at 12
  // succeeds, and the remaining 15 subobjects run through interval 26.
  EXPECT_TRUE(probe.completed);
  EXPECT_EQ(probe.completed_at, kInterval * 26);
  EXPECT_EQ(sched_->metrics().streams_paused, 1);
  EXPECT_EQ(sched_->metrics().streams_resumed, 1);
  EXPECT_EQ(sched_->metrics().displays_admitted, 1);  // counted once
  EXPECT_EQ(sched_->metrics().displays_interrupted, 0);
  EXPECT_EQ(sched_->metrics().degraded_reads, 0);
  EXPECT_EQ(sched_->metrics().hiccups, 0);
  EXPECT_NEAR(sched_->metrics().resume_latency_sec.mean(),
              (kInterval * 7).seconds(), 1e-9);
  // on_started fired exactly once, at the original admission.
  EXPECT_TRUE(probe.started);
  EXPECT_EQ(probe.latency, SimTime::Zero());
}

// A stream paused past max_pause_intervals is cancelled as an
// interrupted display.
TEST_F(DegradedSchedulerTest, PausedPastDeadlineIsCancelled) {
  Init(10, 1, DegradedPolicy::kPause, /*max_pause_intervals=*/3);
  FaultPlan plan;
  plan.FailAt(5, kInterval * 5);  // never recovers
  Inject(plan);

  Probe probe;
  Request(0, 0, 3, 20, &probe);
  sim_.RunUntil(SimTime::Minutes(2));

  EXPECT_TRUE(probe.started);
  EXPECT_FALSE(probe.completed);
  EXPECT_EQ(sched_->paused_streams(), 0u);
  EXPECT_EQ(sched_->metrics().streams_paused, 1);
  EXPECT_EQ(sched_->metrics().streams_resumed, 0);
  EXPECT_EQ(sched_->metrics().displays_interrupted, 1);
  EXPECT_EQ(sched_->metrics().displays_cancelled, 1);
}

// With every disk claimed by the stream itself there is no slack, so
// kRemapOrPause falls back to pausing.
TEST_F(DegradedSchedulerTest, RemapFallsBackToPauseWithoutSlack) {
  Init(3, 1, DegradedPolicy::kRemapOrPause);
  FaultPlan plan;
  plan.FailAt(1, kInterval * 2).RecoverAt(1, kInterval * 4);
  Inject(plan);

  Probe probe;
  Request(0, 0, 3, 10, &probe);
  sim_.RunUntil(SimTime::Minutes(2));

  // Paused at interval 2 (2 delivered); retry at 3 fails, backoff 2,
  // retry at 5 succeeds; the remaining 8 subobjects end at interval 12.
  EXPECT_TRUE(probe.completed);
  EXPECT_EQ(probe.completed_at, kInterval * 12);
  EXPECT_EQ(sched_->metrics().degraded_reads, 0);
  EXPECT_EQ(sched_->metrics().streams_paused, 1);
  EXPECT_EQ(sched_->metrics().streams_resumed, 1);
  EXPECT_EQ(sched_->metrics().hiccups, 0);
}

// Fresh admissions are availability-gated: a request whose first
// stripe includes a down disk waits instead of admitting into a pause.
TEST_F(DegradedSchedulerTest, AdmissionWaitsForDownStripeDisk) {
  Init(6, 1, DegradedPolicy::kRemapOrPause);
  FaultPlan plan;
  plan.FailAt(1, SimTime::Zero()).RecoverAt(1, kInterval * 3);
  Inject(plan);

  Probe probe;
  Request(0, 0, 2, 8, &probe);

  sim_.RunUntil(kInterval * 2 + SimTime::Millis(1));
  EXPECT_FALSE(probe.started);
  EXPECT_EQ(sched_->pending_requests(), 1u);

  sim_.RunUntil(SimTime::Minutes(1));
  EXPECT_TRUE(probe.started);
  EXPECT_EQ(probe.latency, kInterval * 3);
  EXPECT_TRUE(probe.completed);
  EXPECT_EQ(probe.completed_at, kInterval * 10);
  EXPECT_EQ(sched_->metrics().streams_paused, 0);
}

// ---------------------------------------------------------------------
// kReconstruct: the lost fragment is re-derived from the stripe's
// parity fragment, read in the same interval.
// ---------------------------------------------------------------------

// One failed disk mid-display: the read shifts to the stripe's parity
// disk and the display never notices.  At interval 5 the stripe is
// disks {5,6,7}, so the parity fragment sits on disk 8.
TEST_F(DegradedSchedulerTest, ReconstructReadsParityDisk) {
  Init(10, 1, DegradedPolicy::kReconstruct);
  FaultPlan plan;
  plan.FailAt(5, kInterval * 5).RecoverAt(5, kInterval * 6);
  Inject(plan);

  Probe probe;
  Request(0, 0, 3, 20, &probe, /*parity=*/true);
  sim_.RunUntil(SimTime::Minutes(2));

  EXPECT_TRUE(probe.completed);
  EXPECT_EQ(probe.completed_at, kInterval * 19);  // no delay at all
  EXPECT_EQ(sched_->metrics().reconstructed_reads, 1);
  EXPECT_EQ(sched_->metrics().degraded_reads, 0);  // parity, not remap
  EXPECT_EQ(sched_->metrics().streams_paused, 0);
  EXPECT_EQ(sched_->metrics().hiccups, 0);

  bool found = false;
  for (const Read& r : reads_) {
    if (std::get<0>(r) == 5 && std::get<4>(r) == 8) found = true;
  }
  EXPECT_TRUE(found) << "no read landed on the parity disk at interval 5";
}

// A parity-less stream under kReconstruct falls through to the remap
// ladder — reconstruction needs the parity fragment on disk.
TEST_F(DegradedSchedulerTest, ReconstructWithoutParityFallsBackToRemap) {
  Init(10, 1, DegradedPolicy::kReconstruct);
  FaultPlan plan;
  plan.FailAt(5, kInterval * 5).RecoverAt(5, kInterval * 6);
  Inject(plan);

  Probe probe;
  Request(0, 0, 3, 20, &probe, /*parity=*/false);
  sim_.RunUntil(SimTime::Minutes(2));

  EXPECT_TRUE(probe.completed);
  EXPECT_EQ(probe.completed_at, kInterval * 19);
  EXPECT_EQ(sched_->metrics().reconstructed_reads, 0);
  EXPECT_EQ(sched_->metrics().degraded_reads, 1);
}

// Admission under kReconstruct: a down disk in the first stripe does
// not hold the stream back when the stripe's parity disk is healthy —
// it admits immediately and reconstructs until the disk returns.
TEST_F(DegradedSchedulerTest, ReconstructAdmitsOverDownStripeDisk) {
  Init(10, 1, DegradedPolicy::kReconstruct);
  FaultPlan plan;
  plan.FailAt(1, SimTime::Zero()).RecoverAt(1, kInterval * 2);
  Inject(plan);

  Probe probe;
  Request(0, 0, 3, 20, &probe, /*parity=*/true);
  sim_.RunUntil(SimTime::Minutes(2));

  // Disk 1 carries fragment reads at intervals 0 (lane 1) and 1
  // (lane 0); both reconstruct from parity disks 3 and 4.
  EXPECT_TRUE(probe.started);
  EXPECT_EQ(probe.latency, SimTime::Zero());
  EXPECT_TRUE(probe.completed);
  EXPECT_EQ(probe.completed_at, kInterval * 19);
  EXPECT_EQ(sched_->metrics().reconstructed_reads, 2);
  EXPECT_EQ(sched_->metrics().streams_paused, 0);
}

// The parity disk is one read, not a free pass: when a second stripe
// disk is down in the same interval, one parity fragment cannot cover
// two losses and the stream falls back down the ladder (pause here).
TEST_F(DegradedSchedulerTest, DoubleFailureExceedsParityAndPauses) {
  Init(4, 1, DegradedPolicy::kReconstruct);
  FaultPlan plan;
  plan.FailAt(1, kInterval * 1).RecoverAt(1, kInterval * 5);
  plan.FailAt(2, kInterval * 1).RecoverAt(2, kInterval * 5);
  Inject(plan);

  Probe probe;
  Request(0, 0, 3, 10, &probe, /*parity=*/true);
  sim_.RunUntil(SimTime::Minutes(2));

  // With D = 4 and two disks down there is no idle substitute either,
  // so the stream pauses and resumes after recovery.
  EXPECT_TRUE(probe.completed);
  EXPECT_EQ(sched_->metrics().streams_paused, 1);
  EXPECT_EQ(sched_->metrics().streams_resumed, 1);
}

// ---------------------------------------------------------------------
// VDR cluster failover.
// ---------------------------------------------------------------------

class VdrFailoverTest : public ::testing::Test {
 protected:
  // Two clusters of five disks, one object of 10 subobjects.
  void MakeServer(std::vector<int32_t> preload_replicas) {
    catalog_ = Catalog::Uniform(1, 10, Bandwidth::Mbps(100));
    TertiaryParameters tp;
    tp.bandwidth = Bandwidth::Mbps(40);
    tp.reposition = SimTime::Zero();
    tertiary_ = std::make_unique<TertiaryManager>(&sim_, TertiaryDevice(tp));
    VdrConfig config;
    config.num_clusters = 2;
    config.cluster_degree = 5;
    config.interval = kInterval;
    config.fragment_size = DataSize::MB(1.512);
    config.enable_replication = false;
    config.preload_objects = 0;
    config.objects_per_cluster = 1;
    config.preload_replicas = std::move(preload_replicas);
    auto server = VdrServer::Create(&sim_, &catalog_, tertiary_.get(), config);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = *std::move(server);
  }

  struct Probe {
    bool started = false;
    int32_t starts = 0;
    bool completed = false;
    SimTime completed_at;
  };

  void Request(ObjectId object, Probe* probe) {
    Status st = server_->RequestDisplay(
        object,
        [probe](SimTime) {
          probe->started = true;
          ++probe->starts;
        },
        [this, probe] {
          probe->completed = true;
          probe->completed_at = sim_.Now();
        });
    ASSERT_TRUE(st.ok()) << st;
  }

  SimTime DisplayTime() const { return kInterval * 10; }

  Simulator sim_;
  Catalog catalog_;
  std::unique_ptr<TertiaryManager> tertiary_;
  std::unique_ptr<VdrServer> server_;
};

TEST_F(VdrFailoverTest, DisplayFailsOverToSurvivingReplica) {
  MakeServer(/*preload_replicas=*/{2});
  Probe probe;
  Request(0, &probe);
  EXPECT_TRUE(probe.started);

  // Lose a disk (and its cluster's media) mid-display.
  sim_.RunUntil(kInterval * 4);
  server_->OnDiskDown(0, /*media_lost=*/true);
  EXPECT_FALSE(server_->ClusterUp(0));

  sim_.RunUntil(kInterval * 4 + DisplayTime() + SimTime::Seconds(1));
  EXPECT_TRUE(probe.completed);
  // The display restarted from the surviving replica at the failure
  // instant and ran a full display time from there.
  EXPECT_EQ(probe.completed_at, kInterval * 4 + DisplayTime());
  EXPECT_EQ(probe.starts, 1);  // no duplicate on_started
  EXPECT_EQ(server_->metrics().displays_interrupted, 1);
  EXPECT_EQ(server_->metrics().failovers, 1);
  EXPECT_EQ(server_->metrics().replicas_lost, 1);
  EXPECT_EQ(server_->metrics().displays_completed, 1);

  server_->OnDiskUp(0);
  EXPECT_TRUE(server_->ClusterUp(0));
}

TEST_F(VdrFailoverTest, StallFailsOverWithoutLosingMedia) {
  MakeServer(/*preload_replicas=*/{2});
  Probe probe;
  Request(0, &probe);

  sim_.RunUntil(kInterval * 4);
  server_->OnDiskDown(0, /*media_lost=*/false);
  sim_.RunUntil(kInterval * 4 + DisplayTime() + SimTime::Seconds(1));

  EXPECT_TRUE(probe.completed);
  EXPECT_EQ(server_->metrics().failovers, 1);
  EXPECT_EQ(server_->metrics().replicas_lost, 0);
  EXPECT_EQ(server_->ResidentObjectCount(), 1);
}

TEST_F(VdrFailoverTest, LastReplicaLossRematerializesFromTertiary) {
  MakeServer(/*preload_replicas=*/{1});
  Probe probe;
  Request(0, &probe);

  sim_.RunUntil(kInterval * 4);
  server_->OnDiskDown(0, /*media_lost=*/true);
  EXPECT_EQ(server_->metrics().replicas_lost, 1);
  EXPECT_EQ(server_->ResidentObjectCount(), 0);

  // The only copy is gone: the re-queued display must wait for a fresh
  // materialization onto the surviving cluster.
  sim_.RunUntil(SimTime::Hours(2));
  EXPECT_TRUE(probe.completed);
  EXPECT_EQ(server_->metrics().displays_interrupted, 1);
  EXPECT_EQ(server_->metrics().displays_completed, 1);
  EXPECT_EQ(server_->ResidentObjectCount(), 1);
}

TEST_F(VdrFailoverTest, ClusterReturnsOnlyWhenAllDisksAreUp) {
  MakeServer(/*preload_replicas=*/{1});
  server_->OnDiskDown(0, /*media_lost=*/false);
  server_->OnDiskDown(1, /*media_lost=*/false);
  EXPECT_FALSE(server_->ClusterUp(0));
  server_->OnDiskUp(0);
  EXPECT_FALSE(server_->ClusterUp(0));
  server_->OnDiskUp(1);
  EXPECT_TRUE(server_->ClusterUp(0));
  EXPECT_EQ(server_->metrics().failovers, 0);  // nothing was displaying
}

TEST_F(VdrFailoverTest, QueuedRequestWaitsOutFullOutage) {
  MakeServer(/*preload_replicas=*/{1});
  server_->OnDiskDown(0, /*media_lost=*/false);

  Probe probe;
  Request(0, &probe);
  EXPECT_FALSE(probe.started);  // sole replica's cluster is down

  sim_.RunUntil(SimTime::Seconds(1));
  server_->OnDiskUp(0);  // dispatches the queued request
  EXPECT_TRUE(probe.started);
  sim_.RunUntil(SimTime::Seconds(1) + DisplayTime() + SimTime::Seconds(1));
  EXPECT_TRUE(probe.completed);
  EXPECT_EQ(server_->metrics().displays_interrupted, 0);
}

}  // namespace
}  // namespace stagger
