#include "background/background_budget.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "disk/disk_array.h"

namespace stagger {
namespace {

DiskArray MakeArray(int32_t n) {
  auto array = DiskArray::Create(n, DiskParameters::Evaluation());
  STAGGER_CHECK(array.ok());
  return *std::move(array);
}

/// Reads every disk its grant allows, low slot first, until its work
/// counter runs out.
class GreedyConsumer : public BackgroundConsumer {
 public:
  GreedyConsumer(const char* name, DiskArray* disks)
      : name_(name), disks_(disks) {}

  const char* name() const override { return name_; }
  bool HasWork() const override { return work_ > 0; }
  int64_t RunIdle(int64_t /*interval*/, BackgroundGrant* grant) override {
    int64_t done = 0;
    for (int32_t d = 0; d < disks_->num_disks() && work_ > 0; ++d) {
      if (!grant->CanRead(d)) continue;
      grant->ReadSlot(d);
      --work_;
      ++done;
    }
    return done;
  }

  int64_t work_ = 0;

 private:
  const char* name_;
  DiskArray* disks_;
};

TEST(BackgroundGrantTest, EnforcesCapAvailabilityAndBusy) {
  DiskArray disks = MakeArray(4);
  disks.FailDisk(1);
  disks.ReserveSlot(2);  // foreground traffic pinned slot 2
  BackgroundGrant grant(&disks, /*max_reads=*/1);

  EXPECT_FALSE(grant.CanRead(1));  // unavailable
  EXPECT_FALSE(grant.CanRead(2));  // busy
  ASSERT_TRUE(grant.CanRead(0));
  grant.ReadSlot(0);
  EXPECT_EQ(grant.reads(), 1);
  EXPECT_EQ(grant.reads_remaining(), 0);
  EXPECT_FALSE(grant.CanRead(3));  // cap exhausted
  // The reservation went through the array's bitmap: a second grant
  // cannot take the same slot.
  BackgroundGrant other(&disks, /*max_reads=*/0);
  EXPECT_FALSE(other.CanRead(0));
  EXPECT_TRUE(other.CanRead(3));
}

TEST(BackgroundGrantTest, ZeroMeansUncapped) {
  DiskArray disks = MakeArray(3);
  BackgroundGrant grant(&disks, /*max_reads=*/0);
  for (int32_t d = 0; d < 3; ++d) {
    ASSERT_TRUE(grant.CanRead(d));
    grant.ReadSlot(d);
  }
  EXPECT_EQ(grant.reads(), 3);
}

class BackgroundBudgetTest : public ::testing::Test {
 protected:
  void Init(int32_t num_disks) {
    disks_ = std::make_unique<DiskArray>(MakeArray(num_disks));
    budget_ = std::make_unique<BackgroundBudget>(disks_.get());
  }

  void RunIntervals(int64_t n, int64_t start = 0) {
    for (int64_t t = start; t < start + n; ++t) {
      budget_->OnIdleInterval(t);
      disks_->EndInterval();
    }
  }

  std::unique_ptr<DiskArray> disks_;
  std::unique_ptr<BackgroundBudget> budget_;
};

TEST_F(BackgroundBudgetTest, HigherPriorityDrawsFirst) {
  Init(4);
  GreedyConsumer rebuild("rebuild", disks_.get());
  GreedyConsumer scrub("scrub", disks_.get());
  BackgroundConsumerConfig high;
  high.priority = 0;
  high.max_reads_per_interval = 3;
  BackgroundConsumerConfig low;
  low.priority = 1;
  budget_->Register(&scrub, low);  // registration order must not matter
  budget_->Register(&rebuild, high);
  rebuild.work_ = 3;
  scrub.work_ = 4;

  RunIntervals(1);
  // Rebuild took its capped 3 disks; scrub got the one left over.
  EXPECT_EQ(budget_->stats(&rebuild).reads, 3);
  EXPECT_EQ(budget_->stats(&scrub).reads, 1);
  EXPECT_EQ(budget_->metrics().reads_granted, 4);
  EXPECT_EQ(budget_->metrics().idle_capacity, 4);
  EXPECT_EQ(budget_->metrics().budget_violations, 0);
}

TEST_F(BackgroundBudgetTest, CombinedDrawNeverExceedsIdleBandwidth) {
  Init(4);
  GreedyConsumer a("a", disks_.get());
  GreedyConsumer b("b", disks_.get());
  budget_->Register(&a, BackgroundConsumerConfig{});
  BackgroundConsumerConfig second;
  second.priority = 1;
  budget_->Register(&b, second);
  a.work_ = 1000;
  b.work_ = 1000;
  // Foreground pins two disks every interval: only two are grantable.
  for (int64_t t = 0; t < 8; ++t) {
    disks_->ReserveSlot(0);
    disks_->ReserveSlot(1);
    budget_->OnIdleInterval(t);
    disks_->EndInterval();
  }
  EXPECT_EQ(budget_->metrics().idle_capacity, 16);
  EXPECT_EQ(budget_->metrics().reads_granted, 16);
  EXPECT_EQ(budget_->metrics().budget_violations, 0);
  EXPECT_TRUE(budget_->AuditState().ok());
}

TEST_F(BackgroundBudgetTest, StarvationFloorBoostsTheStarvedConsumer) {
  Init(2);
  GreedyConsumer hog("hog", disks_.get());
  GreedyConsumer meek("meek", disks_.get());
  BackgroundConsumerConfig first;
  first.priority = 0;
  budget_->Register(&hog, first);
  BackgroundConsumerConfig floored;
  floored.priority = 1;
  floored.starvation_floor_intervals = 3;
  budget_->Register(&meek, floored);
  hog.work_ = 1000000;
  meek.work_ = 1000000;

  RunIntervals(12);
  // The hog drains both disks every ordinary interval, so without the
  // floor the meek consumer would never progress.
  EXPECT_GT(budget_->stats(&meek).boosted_runs, 0);
  EXPECT_GT(budget_->stats(&meek).ops, 0);
  EXPECT_GT(budget_->stats(&meek).starved_intervals, 0);
  // The boost is one interval at a time, not a priority inversion.
  EXPECT_GT(budget_->stats(&hog).ops, budget_->stats(&meek).ops);
  EXPECT_EQ(budget_->metrics().budget_violations, 0);
}

TEST_F(BackgroundBudgetTest, IdleConsumerIsNeitherGrantedNorStarved) {
  Init(2);
  GreedyConsumer idle("idle", disks_.get());
  BackgroundConsumerConfig cfg;
  cfg.starvation_floor_intervals = 2;
  budget_->Register(&idle, cfg);
  idle.work_ = 0;

  RunIntervals(6);
  EXPECT_EQ(budget_->stats(&idle).granted_intervals, 0);
  EXPECT_EQ(budget_->stats(&idle).starved_intervals, 0);
  EXPECT_EQ(budget_->stats(&idle).boosted_runs, 0);
  EXPECT_EQ(budget_->metrics().intervals, 6);
}

TEST_F(BackgroundBudgetTest, PerConsumerCapIsEnforcedEveryInterval) {
  Init(4);
  GreedyConsumer capped("capped", disks_.get());
  BackgroundConsumerConfig cfg;
  cfg.max_reads_per_interval = 1;
  budget_->Register(&capped, cfg);
  capped.work_ = 100;

  RunIntervals(5);
  EXPECT_EQ(budget_->stats(&capped).reads, 5);
  EXPECT_EQ(budget_->stats(&capped).progress_intervals, 5);
}

TEST_F(BackgroundBudgetTest, ShardTalliesPartitionTheGlobalReadCount) {
  // 10 disks split 3 ways at [0, 3, 6) — the node/shard_map.h slice
  // boundaries for D = 10, S = 3.  Every grant read must land in
  // exactly one shard tally, and the tallies must sum to the global
  // counter (the no-double-count contract AuditState pins).
  Init(10);
  budget_->SetShardBoundaries({0, 3, 6});
  GreedyConsumer a("a", disks_.get());
  GreedyConsumer b("b", disks_.get());
  BackgroundConsumerConfig high;
  high.priority = 0;
  high.max_reads_per_interval = 4;
  budget_->Register(&a, high);
  BackgroundConsumerConfig low;
  low.priority = 1;
  budget_->Register(&b, low);
  a.work_ = 7;
  b.work_ = 8;

  RunIntervals(2);
  // Greedy low-slot-first draws: interval 0 grants a disks {0,1,2,3}
  // (its cap) and b disks {4..9}; interval 1 grants a disks {0,1,2}
  // (work exhausted) and b disks {3,4}.  Per shard that is
  // {0,1,2} x 2 = 6, {3,4,5} + {3,4} = 5, and {6..9} = 4.
  const std::vector<int64_t>& per_shard = budget_->shard_reads_granted();
  ASSERT_EQ(per_shard.size(), 3u);
  EXPECT_EQ(per_shard[0], 6);
  EXPECT_EQ(per_shard[1], 5);
  EXPECT_EQ(per_shard[2], 4);
  int64_t total = 0;
  for (const int64_t reads : per_shard) total += reads;
  EXPECT_EQ(total, budget_->metrics().reads_granted);
  EXPECT_EQ(budget_->metrics().reads_granted, 15);
  EXPECT_TRUE(budget_->AuditState().ok());
}

}  // namespace
}  // namespace stagger
