#include "server/striped_server.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Micros(604800);

class StripedServerTest : public ::testing::Test {
 protected:
  // 10 disks x 3000 cylinders; objects of 600 subobjects, M = 5 ->
  // 3000 fragments (300 cylinders per disk with stride 1), so the farm
  // holds exactly 10 objects.  Display time: 600 intervals ~ 363 s.
  void MakeServer(int32_t num_objects = 20, int32_t preload = 10,
                  int64_t subobjects = 600, int32_t stride = 1,
                  double tertiary_mbps = 40) {
    catalog_ = Catalog::Uniform(num_objects, subobjects, Bandwidth::Mbps(100));
    auto disks = DiskArray::Create(10, DiskParameters::Evaluation());
    ASSERT_TRUE(disks.ok());
    disks_ = std::make_unique<DiskArray>(*std::move(disks));
    TertiaryParameters tp;
    tp.bandwidth = Bandwidth::Mbps(tertiary_mbps);
    tp.reposition = SimTime::Zero();
    tertiary_ = std::make_unique<TertiaryManager>(&sim_, TertiaryDevice(tp));
    StripedConfig config;
    config.stride = stride;
    config.interval = kInterval;
    config.fragment_size = DataSize::MB(1.512);
    config.preload_objects = preload;
    auto server = StripedServer::Create(&sim_, &catalog_, disks_.get(),
                                        tertiary_.get(), config);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = *std::move(server);
  }

  struct Probe {
    bool started = false;
    bool completed = false;
    SimTime latency;
  };

  void Request(ObjectId object, Probe* probe) {
    Status st = server_->RequestDisplay(
        object,
        [probe](SimTime latency) {
          probe->started = true;
          probe->latency = latency;
        },
        [probe] { probe->completed = true; });
    ASSERT_TRUE(st.ok()) << st;
  }

  SimTime DisplayTime() const { return kInterval * 600; }

  Simulator sim_;
  Catalog catalog_;
  std::unique_ptr<DiskArray> disks_;
  std::unique_ptr<TertiaryManager> tertiary_;
  std::unique_ptr<StripedServer> server_;
};

TEST_F(StripedServerTest, ConfigValidation) {
  StripedConfig config;
  config.stride = 0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config = StripedConfig{};
  config.fragment_cylinders = 0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config = StripedConfig{};
  config.preload_objects = -1;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  EXPECT_TRUE(StripedConfig{}.Validate().ok());
}

TEST_F(StripedServerTest, ConfigValidationFragmentedAndCoalesce) {
  // kFragmented with a non-positive lookahead degenerates to contiguous
  // admission while paying Algorithm 1's bookkeeping: rejected.
  StripedConfig config;
  config.policy = AdmissionPolicy::kFragmented;
  config.fragmented_lookahead = 0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.fragmented_lookahead = -3;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.fragmented_lookahead = 16;
  EXPECT_TRUE(config.Validate().ok());
  // A contiguous policy tolerates any lookahead value (it is unused).
  config = StripedConfig{};
  config.policy = AdmissionPolicy::kContiguous;
  config.fragmented_lookahead = 0;
  EXPECT_TRUE(config.Validate().ok());

  // Coalescing requires the fragmented policy ...
  config = StripedConfig{};
  config.coalesce = true;
  config.policy = AdmissionPolicy::kContiguous;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  // ... and a buffer pool that can hold at least one lookahead's worth
  // of fragments (unlimited pools are fine).
  config.policy = AdmissionPolicy::kFragmented;
  config.fragmented_lookahead = 16;
  config.buffer_capacity_fragments = 8;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.buffer_capacity_fragments = 16;
  EXPECT_TRUE(config.Validate().ok());
  config.buffer_capacity_fragments = 0;  // unlimited
  EXPECT_TRUE(config.Validate().ok());
}

TEST_F(StripedServerTest, ConfigValidationDegradedBackoff) {
  StripedConfig config;
  config.retry_backoff_intervals = 0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config = StripedConfig{};
  config.retry_backoff_intervals = 8;
  config.max_retry_backoff_intervals = 4;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.max_retry_backoff_intervals = 8;
  EXPECT_TRUE(config.Validate().ok());
}

TEST_F(StripedServerTest, EffectiveDiskBandwidthFromFragmentAndInterval) {
  MakeServer();
  EXPECT_NEAR(server_->EffectiveDiskBandwidth().mbps(), 20.0, 0.01);
}

TEST_F(StripedServerTest, PreloadFillsFarm) {
  MakeServer();
  EXPECT_EQ(server_->object_manager().ResidentCount(), 10);
  EXPECT_EQ(disks_->FreeCylinders(), 0);
}

TEST_F(StripedServerTest, UnknownObjectRejected) {
  MakeServer();
  EXPECT_TRUE(server_->RequestDisplay(999, nullptr, nullptr).IsNotFound());
}

TEST_F(StripedServerTest, ResidentHitDisplays) {
  MakeServer();
  Probe p;
  Request(0, &p);
  sim_.RunUntil(DisplayTime() + SimTime::Seconds(2));
  EXPECT_TRUE(p.started);
  EXPECT_TRUE(p.completed);
  EXPECT_EQ(server_->metrics().resident_hits, 1);
  EXPECT_EQ(server_->scheduler_metrics().hiccups, 0);
  EXPECT_EQ(server_->object_manager().PinCount(0), 0);  // unpinned after
}

TEST_F(StripedServerTest, MissMaterializesThenDisplays) {
  MakeServer(/*num_objects=*/20, /*preload=*/10, /*subobjects=*/600,
             /*stride=*/1, /*tertiary_mbps=*/400);
  Probe p;
  Request(15, &p);  // beyond the preload
  EXPECT_FALSE(p.started);
  EXPECT_EQ(server_->metrics().materializations_started, 1);
  // Object size: 600 x 5 x 1.512 MB = 4.536 GB at 400 mbps ~ 90.7 s,
  // plus eviction + admission.
  sim_.RunUntil(SimTime::Seconds(95));
  EXPECT_TRUE(p.started);
  EXPECT_TRUE(server_->object_manager().IsResident(15));
  sim_.RunUntil(SimTime::Seconds(95) + DisplayTime());
  EXPECT_TRUE(p.completed);
  // LFU: some never-accessed preloaded object was evicted to make room.
  EXPECT_EQ(server_->object_manager().ResidentCount(), 10);
}

TEST_F(StripedServerTest, ConcurrentMissesShareMaterialization) {
  MakeServer(/*num_objects=*/20, /*preload=*/10, /*subobjects=*/600,
             /*stride=*/1, /*tertiary_mbps=*/400);
  Probe a, b;
  Request(15, &a);
  Request(15, &b);
  EXPECT_EQ(server_->metrics().materializations_started, 1);
  sim_.RunUntil(SimTime::Minutes(10));
  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(b.completed);
}

TEST_F(StripedServerTest, ConcurrentDisplaysOfSameObject) {
  // Unlike VDR, striping serves several displays of one object at a
  // small stagger — the core advantage the paper demonstrates.
  MakeServer();
  Probe a, b;
  Request(0, &a);
  Request(0, &b);
  sim_.RunUntil(kInterval * 8);
  EXPECT_TRUE(a.started);
  EXPECT_TRUE(b.started);
  EXPECT_LE(b.latency, kInterval * 6);
  sim_.RunUntil(SimTime::Minutes(8));
  EXPECT_TRUE(a.completed && b.completed);
  EXPECT_EQ(server_->scheduler_metrics().hiccups, 0);
}

TEST_F(StripedServerTest, PinnedObjectsSurviveEvictionPressure) {
  // Fast tertiary (400 mbps): the miss lands in ~91 s, while every
  // resident object is pinned by an active or queued display until the
  // first displays complete at ~363 s.
  MakeServer(/*num_objects=*/20, /*preload=*/10, /*subobjects=*/600,
             /*stride=*/1, /*tertiary_mbps=*/400);
  Probe displays[10];
  for (ObjectId id = 0; id < 10; ++id) Request(id, &displays[id]);
  Probe miss;
  Request(15, &miss);
  sim_.RunUntil(SimTime::Seconds(100));  // after materialization, before
                                         // any display completion
  EXPECT_GE(server_->metrics().landings_deferred, 1);
  EXPECT_FALSE(miss.started);
  // Two displays run at a time; the miss display queues behind the
  // other eight and starts around t ~ 1815 s.
  sim_.RunUntil(SimTime::Minutes(35));
  EXPECT_TRUE(miss.started);
  sim_.RunUntil(SimTime::Minutes(45));
  EXPECT_TRUE(miss.completed);
}

TEST_F(StripedServerTest, SimpleStripingStrideM) {
  MakeServer(/*num_objects=*/20, /*preload=*/10, /*subobjects=*/600,
             /*stride=*/5);
  Probe a, b;
  Request(0, &a);
  Request(1, &b);
  sim_.RunUntil(SimTime::Minutes(8));
  EXPECT_TRUE(a.completed && b.completed);
  EXPECT_EQ(server_->scheduler_metrics().hiccups, 0);
}

TEST_F(StripedServerTest, AccessCountsDriveLfu) {
  MakeServer(/*num_objects=*/20, /*preload=*/10, /*subobjects=*/600,
             /*stride=*/1, /*tertiary_mbps=*/400);
  Probe p;
  Request(0, &p);  // object 0 now has an access
  sim_.RunUntil(DisplayTime() + SimTime::Seconds(2));
  Probe miss;
  Request(15, &miss);
  sim_.RunUntil(SimTime::Minutes(15));
  EXPECT_TRUE(miss.completed);
  EXPECT_TRUE(server_->object_manager().IsResident(0));   // accessed: kept
  EXPECT_TRUE(server_->object_manager().IsResident(15));  // newly landed
}

}  // namespace
}  // namespace stagger
