// End-to-end property sweep: small Table 3-shaped systems across
// schemes, strides, policies, and popularity skews must always deliver
// hiccup-free displays, respect the analytical throughput ceiling, and
// be reproducible.

#include <gtest/gtest.h>

#include <sstream>

#include "server/experiment.h"

namespace stagger {
namespace {

struct ServerCase {
  Scheme scheme;
  int32_t stride;          // staggered only
  AdmissionPolicy policy;
  bool coalesce;
  double mean;
  int32_t stations;
  bool charge_writes;
};

std::string CaseName(const ::testing::TestParamInfo<ServerCase>& info) {
  const ServerCase& c = info.param;
  std::ostringstream os;
  os << SchemeName(c.scheme) << "_k" << c.stride << "_"
     << (c.policy == AdmissionPolicy::kContiguous ? "contig" : "frag")
     << (c.coalesce ? "_coal" : "") << "_m" << static_cast<int>(c.mean)
     << "_s" << c.stations << (c.charge_writes ? "_writes" : "");
  std::string name = os.str();
  for (char& ch : name) {
    if (ch == '-' || ch == '.') ch = '_';
  }
  return name;
}

class ServerPropertyTest : public ::testing::TestWithParam<ServerCase> {};

TEST_P(ServerPropertyTest, InvariantsHold) {
  const ServerCase& c = GetParam();
  ExperimentConfig cfg;
  cfg.scheme = c.scheme;
  cfg.stride = c.stride;
  cfg.policy = c.policy;
  cfg.coalesce = c.coalesce;
  cfg.charge_materialization_writes = c.charge_writes;
  cfg.num_disks = 60;
  cfg.num_objects = 80;
  cfg.subobjects_per_object = 120;  // ~73 s displays
  cfg.preload_objects = 24;         // warm start; misses still occur
  cfg.stations = c.stations;
  cfg.geometric_mean = c.mean;
  cfg.warmup = SimTime::Minutes(20);
  cfg.measure = SimTime::Hours(1);

  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();

  // Continuous display is never violated.
  EXPECT_EQ(result->hiccups, 0);
  // Work happened.
  EXPECT_GT(result->displays_per_hour, 0.0);
  EXPECT_GT(result->displays_completed, 0);
  // The disk-bandwidth ceiling binds every scheme:
  // (D / M) concurrent displays of ~73 s each.
  const double ceiling = (cfg.num_disks / cfg.Degree()) /
                         (cfg.Interval() * cfg.subobjects_per_object).hours();
  EXPECT_LE(result->displays_per_hour, ceiling * 1.02);
  // Utilizations are proper fractions.
  EXPECT_GE(result->disk_utilization, 0.0);
  EXPECT_LE(result->disk_utilization, 1.0 + 1e-9);
  EXPECT_GE(result->tertiary_utilization, 0.0);
  EXPECT_LE(result->tertiary_utilization, 1.0 + 1e-9);
  // Residency never exceeds capacity.
  EXPECT_LE(result->resident_objects_end, cfg.num_objects);

  // Bit-identical reproducibility.
  auto again = RunExperiment(cfg);
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(result->displays_per_hour, again->displays_per_hour);
  EXPECT_EQ(result->displays_completed, again->displays_completed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ServerPropertyTest,
    ::testing::Values(
        ServerCase{Scheme::kSimpleStriping, 5, AdmissionPolicy::kContiguous,
                   false, 5.0, 20, false},
        ServerCase{Scheme::kSimpleStriping, 5, AdmissionPolicy::kContiguous,
                   false, 15.0, 40, false},
        ServerCase{Scheme::kSimpleStriping, 5, AdmissionPolicy::kFragmented,
                   false, 5.0, 20, false},
        ServerCase{Scheme::kSimpleStriping, 5, AdmissionPolicy::kFragmented,
                   true, 15.0, 40, false},
        ServerCase{Scheme::kSimpleStriping, 5, AdmissionPolicy::kContiguous,
                   false, 10.0, 30, true},
        ServerCase{Scheme::kStaggered, 1, AdmissionPolicy::kContiguous, false,
                   5.0, 20, false},
        ServerCase{Scheme::kStaggered, 1, AdmissionPolicy::kFragmented, true,
                   10.0, 30, false},
        ServerCase{Scheme::kStaggered, 7, AdmissionPolicy::kContiguous, false,
                   10.0, 25, false},
        ServerCase{Scheme::kStaggered, 3, AdmissionPolicy::kFragmented, false,
                   20.0, 40, true},
        ServerCase{Scheme::kVdr, 5, AdmissionPolicy::kContiguous, false, 5.0,
                   20, false},
        ServerCase{Scheme::kVdr, 5, AdmissionPolicy::kContiguous, false, 15.0,
                   40, false},
        ServerCase{Scheme::kVdr, 5, AdmissionPolicy::kContiguous, false, 30.0,
                   30, false}),
    CaseName);

}  // namespace
}  // namespace stagger
