// Integration tests: the full Table 3 experiment runner, at reduced
// scale/duration so the whole suite stays fast.  The full-scale Figure 8
// / Table 4 matrices live in bench/.

#include "server/experiment.h"

#include <gtest/gtest.h>

namespace stagger {
namespace {

ExperimentConfig SmallConfig(Scheme scheme) {
  // A 100-disk, 200-object shrink of Table 3: M = 5, 20 clusters,
  // objects of 300 subobjects (~3 min displays), 20 resident objects.
  ExperimentConfig cfg;
  cfg.scheme = scheme;
  cfg.num_disks = 100;
  cfg.num_objects = 200;
  cfg.subobjects_per_object = 300;
  cfg.preload_objects = 20;
  cfg.stations = 16;
  cfg.geometric_mean = 5.0;
  cfg.warmup = SimTime::Minutes(20);
  cfg.measure = SimTime::Hours(1);
  return cfg;
}

TEST(ExperimentConfigTest, DefaultsMatchTable3) {
  const ExperimentConfig cfg;
  EXPECT_TRUE(cfg.Validate().ok());
  EXPECT_EQ(cfg.num_disks, 1000);
  EXPECT_EQ(cfg.num_objects, 2000);
  EXPECT_EQ(cfg.subobjects_per_object, 3000);
  EXPECT_EQ(cfg.Degree(), 5);
  EXPECT_DOUBLE_EQ(cfg.display_bandwidth.mbps(), 100.0);
  EXPECT_DOUBLE_EQ(cfg.EffectiveDiskBandwidth().mbps(), 20.0);
  EXPECT_DOUBLE_EQ(cfg.tertiary.bandwidth.mbps(), 40.0);
  EXPECT_EQ(cfg.Interval().micros(), 604800);
  EXPECT_NEAR(cfg.FragmentSize().megabytes(), 1.512, 1e-9);
}

TEST(ExperimentConfigTest, ValidationCatchesBadSettings) {
  ExperimentConfig cfg;
  cfg.stations = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = ExperimentConfig{};
  cfg.geometric_mean = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = ExperimentConfig{};
  cfg.num_disks = 3;  // degree 5 > D
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = ExperimentConfig{};
  cfg.measure = SimTime::Zero();
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ExperimentTest, SchemeNames) {
  EXPECT_EQ(SchemeName(Scheme::kSimpleStriping), "simple-striping");
  EXPECT_EQ(SchemeName(Scheme::kStaggered), "staggered-striping");
  EXPECT_EQ(SchemeName(Scheme::kVdr), "virtual-data-replication");
}

TEST(ExperimentTest, SimpleStripingRuns) {
  auto result = RunExperiment(SmallConfig(Scheme::kSimpleStriping));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->displays_per_hour, 0.0);
  EXPECT_EQ(result->hiccups, 0);
  EXPECT_GT(result->displays_completed, 0);
  EXPECT_GT(result->disk_utilization, 0.0);
  EXPECT_GT(result->unique_objects_referenced, 0);
  EXPECT_GT(result->resident_objects_end, 0);
}

TEST(ExperimentTest, StaggeredStrideOneRuns) {
  ExperimentConfig cfg = SmallConfig(Scheme::kStaggered);
  cfg.stride = 1;
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->displays_per_hour, 0.0);
  EXPECT_EQ(result->hiccups, 0);
}

TEST(ExperimentTest, VdrRuns) {
  auto result = RunExperiment(SmallConfig(Scheme::kVdr));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->displays_per_hour, 0.0);
  EXPECT_GT(result->resident_objects_end, 0);
}

// The headline qualitative claim at miniature scale: under skewed
// access and load, striping outperforms virtual data replication.
TEST(ExperimentTest, StripingBeatsVdrUnderLoad) {
  ExperimentConfig cfg = SmallConfig(Scheme::kSimpleStriping);
  cfg.stations = 40;
  auto striping = RunExperiment(cfg);
  ASSERT_TRUE(striping.ok());
  cfg.scheme = Scheme::kVdr;
  auto vdr = RunExperiment(cfg);
  ASSERT_TRUE(vdr.ok());
  EXPECT_GT(striping->displays_per_hour, vdr->displays_per_hour);
}

TEST(ExperimentTest, DeterministicForFixedSeed) {
  auto a = RunExperiment(SmallConfig(Scheme::kSimpleStriping));
  auto b = RunExperiment(SmallConfig(Scheme::kSimpleStriping));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->displays_completed, b->displays_completed);
  EXPECT_DOUBLE_EQ(a->displays_per_hour, b->displays_per_hour);
  EXPECT_DOUBLE_EQ(a->mean_startup_latency_sec, b->mean_startup_latency_sec);
}

TEST(ExperimentTest, SeedChangesOutcome) {
  ExperimentConfig cfg = SmallConfig(Scheme::kSimpleStriping);
  auto a = RunExperiment(cfg);
  cfg.seed = 999;
  auto b = RunExperiment(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->mean_startup_latency_sec, b->mean_startup_latency_sec);
}

// More stations -> more throughput while capacity remains.
TEST(ExperimentTest, ThroughputScalesWithStations) {
  ExperimentConfig cfg = SmallConfig(Scheme::kSimpleStriping);
  cfg.stations = 4;
  auto small = RunExperiment(cfg);
  cfg.stations = 16;
  auto big = RunExperiment(cfg);
  ASSERT_TRUE(small.ok() && big.ok());
  EXPECT_GT(big->displays_per_hour, small->displays_per_hour * 2);
}

}  // namespace
}  // namespace stagger
