// The parallel experiment driver (RunMany / RunReplicated with
// threads > 1) must be a pure wall-clock optimization: every run is an
// isolated simulation, so results — and the seed-order aggregates built
// from them — are bit-identical whatever the thread count.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "server/experiment.h"

namespace stagger {
namespace {

ExperimentConfig TinyConfig(uint64_t seed) {
  // A 100-disk shrink of Table 3 kept deliberately short: the point is
  // determinism across thread counts, not steady-state statistics.
  ExperimentConfig cfg;
  cfg.num_disks = 100;
  cfg.num_objects = 50;
  cfg.subobjects_per_object = 100;
  cfg.preload_objects = 10;
  cfg.stations = 8;
  cfg.geometric_mean = 5.0;
  cfg.warmup = SimTime::Minutes(5);
  cfg.measure = SimTime::Minutes(20);
  cfg.seed = seed;
  return cfg;
}

void ExpectBitIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  // Exact equality on purpose: the parallel driver promises
  // bit-identical results, not statistically-close ones.
  EXPECT_EQ(a.displays_per_hour, b.displays_per_hour);
  EXPECT_EQ(a.displays_completed, b.displays_completed);
  EXPECT_EQ(a.mean_startup_latency_sec, b.mean_startup_latency_sec);
  EXPECT_EQ(a.disk_utilization, b.disk_utilization);
  EXPECT_EQ(a.tertiary_utilization, b.tertiary_utilization);
  EXPECT_EQ(a.materializations, b.materializations);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.hiccups, b.hiccups);
  EXPECT_EQ(a.unique_objects_referenced, b.unique_objects_referenced);
  EXPECT_EQ(a.resident_objects_end, b.resident_objects_end);
}

TEST(RunManyTest, EmptyInputYieldsEmptyOutput) {
  const auto results = RunMany({}, 4);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(RunManyTest, ParallelResultsBitIdenticalToSerial) {
  std::vector<ExperimentConfig> configs;
  for (uint64_t r = 0; r < 5; ++r) configs.push_back(TinyConfig(1000 + r));

  const auto serial = RunMany(configs, 1);
  const auto parallel = RunMany(configs, 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), configs.size());
  ASSERT_EQ(parallel->size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectBitIdentical((*serial)[i], (*parallel)[i]);
  }
}

TEST(RunManyTest, MoreThreadsThanConfigsIsFine) {
  const std::vector<ExperimentConfig> configs = {TinyConfig(7)};
  const auto many = RunMany(configs, 16);
  const auto one = RunExperiment(configs[0]);
  ASSERT_TRUE(many.ok());
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(many->size(), 1u);
  ExpectBitIdentical((*many)[0], *one);
}

TEST(RunManyTest, ResultsComeBackInInputOrder) {
  // Distinguishable configs: different station counts drive different
  // completed-display counts, so a mis-ordered result array would show.
  std::vector<ExperimentConfig> configs;
  for (int32_t stations = 2; stations <= 8; stations += 2) {
    ExperimentConfig cfg = TinyConfig(42);
    cfg.stations = stations;
    configs.push_back(cfg);
  }
  const auto parallel = RunMany(configs, 4);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(i);
    const auto expect = RunExperiment(configs[i]);
    ASSERT_TRUE(expect.ok());
    ExpectBitIdentical((*parallel)[i], *expect);
  }
}

TEST(RunManyTest, ReportsLowestIndexedFailure) {
  // Two invalid configs with distinguishable errors: the driver must
  // report the one a serial sweep would have hit first.
  std::vector<ExperimentConfig> configs(4, TinyConfig(1));
  configs[1].stations = 0;        // "need stations"
  configs[3].geometric_mean = 0;  // "geometric mean must be positive"
  const auto results = RunMany(configs, 4);
  ASSERT_FALSE(results.ok());
  EXPECT_NE(results.status().ToString().find("stations"), std::string::npos)
      << results.status().ToString();
}

TEST(RunReplicatedTest, RejectsNonPositiveReplications) {
  EXPECT_FALSE(RunReplicated(TinyConfig(1), 0).ok());
  EXPECT_FALSE(RunReplicated(TinyConfig(1), -3, 4).ok());
}

TEST(RunReplicatedTest, AggregatesBitIdenticalAcrossThreadCounts) {
  const ExperimentConfig cfg = TinyConfig(20240101);
  const auto serial = RunReplicated(cfg, 4, 1);
  const auto parallel = RunReplicated(cfg, 4, 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->replications, 4);
  EXPECT_EQ(parallel->replications, 4);
  // StreamingStats accumulation is order-sensitive in floating point;
  // seed-order accumulation makes these exactly equal, not just close.
  EXPECT_EQ(serial->displays_per_hour.mean(),
            parallel->displays_per_hour.mean());
  EXPECT_EQ(serial->displays_per_hour.stddev(),
            parallel->displays_per_hour.stddev());
  EXPECT_EQ(serial->mean_startup_latency_sec.mean(),
            parallel->mean_startup_latency_sec.mean());
  EXPECT_EQ(serial->mean_startup_latency_sec.stddev(),
            parallel->mean_startup_latency_sec.stddev());
  EXPECT_EQ(serial->disk_utilization.mean(),
            parallel->disk_utilization.mean());
  EXPECT_EQ(serial->disk_utilization.stddev(),
            parallel->disk_utilization.stddev());
}

TEST(RunReplicatedTest, ReplicationsVarySeedOnly) {
  // Distinct seeds should actually change the sampled workload: with
  // several replications the across-run spread is almost surely
  // nonzero.  (Guards against accidentally running the same seed N
  // times and reporting stddev 0.)
  const auto replicated = RunReplicated(TinyConfig(555), 4, 2);
  ASSERT_TRUE(replicated.ok());
  EXPECT_EQ(replicated->displays_per_hour.count(), 4);
  EXPECT_GT(replicated->displays_per_hour.stddev() +
                replicated->mean_startup_latency_sec.stddev() +
                replicated->disk_utilization.stddev(),
            0.0);
}

}  // namespace
}  // namespace stagger
