// Differential test for sharded execution (src/node/): a striped server
// running with --shards S and --threads T must be BIT-IDENTICAL to the
// flat serial server (S = T = 1) — the same fragment lands on the same
// disk in the same interval for every event of the run, and every
// workload / scheduler / server counter matches exactly.  That is the
// tentpole's hard requirement: num_shards and tick_threads are pure
// execution knobs, never model knobs.
//
// Grid: 20 seeds (widened by STAGGER_SHARD_SEEDS in the CI sweep)
// x {S = 2, 8} x {T = 1, 8}, each compared against the flat baseline on
// the full read-observer trace.  shard_min_active_streams = 0 forces
// every eligible tick through the parallel plan/apply path, and each
// case asserts sharded_ticks > 0 so the comparison can never go vacuous
// by silently falling back to the serial walk.
//
// A final case replays a seeded chaos fault plan through S = 8, T = 8:
// degraded ticks take the serial fallback (by design — the differential
// property holds per tick), healthy stretches shard, and the fingerprint
// must still match the flat faulted run exactly.
//
// STAGGER_AUDIT builds compile the parallel path out entirely (every
// read must cross the per-lane alignment audit), so there the sweep
// degenerates to checking that the sharding knobs are inert no-ops —
// sharded_ticks stays 0 and the non-vacuity assertion is skipped.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "disk/disk_array.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "server/striped_server.h"
#include "sim/simulator.h"
#include "storage/catalog.h"
#include "tertiary/tertiary_manager.h"
#include "util/rng.h"
#include "workload/open_arrivals.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Micros(604800);

int64_t NumSeeds() {
  if (const char* env = std::getenv("STAGGER_SHARD_SEEDS")) {
    return std::max<int64_t>(1, std::atoll(env));
  }
  return 20;
}

/// Everything observable about one run, rendered comparably.
struct Fingerprint {
  std::string schedule;  ///< every (interval, object, subobject, fragment, disk)
  int64_t requests = 0;
  int64_t completed = 0;
  int64_t interrupted = 0;
  int64_t latency_count = 0;
  double latency_mean = 0.0;
  int64_t sched_requested = 0;
  int64_t sched_admitted = 0;
  int64_t sched_cancelled = 0;
  int64_t sched_completed = 0;
  int64_t hiccups = 0;
  int64_t buffered_peak = 0;
  int64_t degraded_reads = 0;
  int64_t reconstructed_reads = 0;
  int64_t streams_paused = 0;
  int64_t sharded_ticks = 0;
  int64_t server_requests = 0;
  int64_t resident_hits = 0;
};

struct RunSpec {
  uint64_t seed = 1;
  int32_t num_shards = 1;
  int32_t tick_threads = 1;
  bool faults = false;
};

Fingerprint RunOnce(const RunSpec& spec) {
  Fingerprint fp;
  Simulator sim;
  Catalog catalog = Catalog::Uniform(24, 100, Bandwidth::Mbps(100));
  auto disks = DiskArray::Create(50, DiskParameters::Evaluation());
  EXPECT_TRUE(disks.ok());
  TertiaryManager tertiary(&sim, TertiaryDevice(TertiaryParameters{}));

  std::ostringstream schedule;
  StripedConfig config;
  config.stride = 5;
  config.interval = kInterval;
  config.preload_objects = catalog.size();
  config.num_shards = spec.num_shards;
  config.tick_threads = spec.tick_threads;
  config.shard_min_active_streams = 0;  // shard every eligible tick
  config.read_observer = [&schedule](int64_t interval, ObjectId object,
                                     int64_t subobject, int32_t fragment,
                                     int32_t disk) {
    schedule << interval << ':' << object << '.' << subobject << '/'
             << fragment << '@' << disk << '\n';
  };
  if (spec.faults) {
    config.parity = true;
    config.degraded_policy = DegradedPolicy::kReconstruct;
  }
  auto server =
      StripedServer::Create(&sim, &catalog, &*disks, &tertiary, config);
  EXPECT_TRUE(server.ok()) << server.status();

  std::unique_ptr<FaultInjector> injector;
  if (spec.faults) {
    ChaosParams cp;
    cp.horizon = SimTime::Minutes(90);
    cp.mtbf = SimTime::Hours(4);
    cp.mttr = SimTime::Minutes(10);
    Rng rng(spec.seed * 7919 + 17);
    FaultPlan plan = FaultPlan::Generate(&rng, 50, cp);
    auto created = FaultInjector::Create(&sim, &*disks, plan);
    EXPECT_TRUE(created.ok()) << created.status();
    injector = *std::move(created);
    StripedServer* s = server->get();
    injector->OnDown(
        [s](DiskId disk, SimTime now) { s->OnDiskDown(disk, now); });
    injector->OnUp([s](DiskId disk, SimTime now) { s->OnDiskUp(disk, now); });
  }

  auto popularity = TruncatedGeometric::FromMean(24, 6);
  EXPECT_TRUE(popularity.ok());
  OpenArrivalsConfig oc;
  oc.mean_interarrival = SimTime::Seconds(15);
  oc.seed = spec.seed;
  oc.measure_start = SimTime::Minutes(10);
  OpenArrivals arrivals(&sim, server->get(), &*popularity, std::move(oc));
  arrivals.Start();
  sim.RunUntil(SimTime::Minutes(90));
  arrivals.Stop();
  sim.RunUntil(SimTime::Minutes(120));  // drain in-flight displays

  fp.schedule = schedule.str();
  fp.requests = arrivals.requests_issued();
  fp.completed = arrivals.displays_completed();
  fp.interrupted = arrivals.displays_interrupted();
  fp.latency_count = arrivals.startup_latency_sec().count();
  fp.latency_mean = arrivals.startup_latency_sec().mean();
  const SchedulerMetrics& sm = (*server)->scheduler_metrics();
  fp.sched_requested = sm.displays_requested;
  fp.sched_admitted = sm.displays_admitted;
  fp.sched_cancelled = sm.displays_cancelled;
  fp.sched_completed = sm.displays_completed;
  fp.hiccups = sm.hiccups;
  fp.buffered_peak = sm.peak_buffered_fragments;
  fp.degraded_reads = sm.degraded_reads;
  fp.reconstructed_reads = sm.reconstructed_reads;
  fp.streams_paused = sm.streams_paused;
  fp.sharded_ticks = sm.sharded_ticks;
  fp.server_requests = (*server)->metrics().requests;
  fp.resident_hits = (*server)->metrics().resident_hits;
  return fp;
}

// Asserts the parallel plan/apply path actually ran — except in audit
// builds, where it is compiled out and every tick stays serial.
void ExpectParallelPathRan(const Fingerprint& sharded) {
#ifdef STAGGER_AUDIT
  EXPECT_EQ(sharded.sharded_ticks, 0) << "audit build took the parallel path";
#else
  ASSERT_GT(sharded.sharded_ticks, 0) << "parallel path never ran";
#endif
}

void ExpectIdentical(const Fingerprint& sharded, const Fingerprint& flat) {
  // The flat run produced work (the comparison is not vacuous)...
  ASSERT_GT(flat.requests, 0);
  ASSERT_GT(flat.completed, 0);
  ASSERT_FALSE(flat.schedule.empty());
  // ...and the serial baseline never entered the parallel path.
  ASSERT_EQ(flat.sharded_ticks, 0);

  EXPECT_EQ(sharded.schedule, flat.schedule);
  EXPECT_EQ(sharded.requests, flat.requests);
  EXPECT_EQ(sharded.completed, flat.completed);
  EXPECT_EQ(sharded.interrupted, flat.interrupted);
  EXPECT_EQ(sharded.latency_count, flat.latency_count);
  EXPECT_EQ(sharded.latency_mean, flat.latency_mean);  // bit-exact
  EXPECT_EQ(sharded.sched_requested, flat.sched_requested);
  EXPECT_EQ(sharded.sched_admitted, flat.sched_admitted);
  EXPECT_EQ(sharded.sched_cancelled, flat.sched_cancelled);
  EXPECT_EQ(sharded.sched_completed, flat.sched_completed);
  EXPECT_EQ(sharded.hiccups, flat.hiccups);
  EXPECT_EQ(sharded.buffered_peak, flat.buffered_peak);
  EXPECT_EQ(sharded.degraded_reads, flat.degraded_reads);
  EXPECT_EQ(sharded.reconstructed_reads, flat.reconstructed_reads);
  EXPECT_EQ(sharded.streams_paused, flat.streams_paused);
  EXPECT_EQ(sharded.server_requests, flat.server_requests);
  EXPECT_EQ(sharded.resident_hits, flat.resident_hits);
}

class ShardedDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardedDifferentialTest, BitIdenticalToFlatAcrossShardsAndThreads) {
  const uint64_t seed = GetParam();
  const Fingerprint flat = RunOnce({seed, 1, 1, false});
  for (const int32_t shards : {2, 8}) {
    for (const int32_t threads : {1, 8}) {
      SCOPED_TRACE(testing::Message() << "seed " << seed << " shards "
                                      << shards << " threads " << threads);
      const Fingerprint sharded = RunOnce({seed, shards, threads, false});
      ExpectParallelPathRan(sharded);
      ExpectIdentical(sharded, flat);
    }
  }
}

TEST_P(ShardedDifferentialTest, ChaosFaultedRunStaysBitIdentical) {
  const uint64_t seed = GetParam();
  const Fingerprint flat = RunOnce({seed, 1, 1, true});
  const Fingerprint sharded = RunOnce({seed, 8, 8, true});
  // Degraded intervals fall back to the serial walk by design; the
  // healthy stretches must still shard (chaos outages are sparse).
  ExpectParallelPathRan(sharded);
  ExpectIdentical(sharded, flat);
}

std::vector<uint64_t> MakeSeeds() {
  std::vector<uint64_t> cases;
  for (int64_t s = 1; s <= NumSeeds(); ++s) {
    cases.push_back(static_cast<uint64_t>(s));
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<uint64_t>& info) {
  std::ostringstream os;
  os << "s" << info.param;
  return os.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedDifferentialTest,
                         ::testing::ValuesIn(MakeSeeds()), CaseName);

}  // namespace
}  // namespace stagger
