// Section 3.2.4 disk-side write charging: with
// charge_materialization_writes enabled, a materialization occupies a
// floor(B_Tertiary / B_Disk)-disk write stream on the regular scheduler
// for the duration of the transfer.

#include <gtest/gtest.h>

#include <memory>

#include "server/experiment.h"
#include "server/striped_server.h"
#include "sim/simulator.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Micros(604800);

class MaterializationWritesTest : public ::testing::Test {
 protected:
  void MakeServer(bool charge) {
    catalog_ = Catalog::Uniform(/*count=*/20, /*num_subobjects=*/600,
                                Bandwidth::Mbps(100));
    auto disks = DiskArray::Create(10, DiskParameters::Evaluation());
    ASSERT_TRUE(disks.ok());
    disks_ = std::make_unique<DiskArray>(*std::move(disks));
    TertiaryParameters tp;
    tp.bandwidth = Bandwidth::Mbps(40);
    tp.reposition = SimTime::Zero();
    tertiary_ = std::make_unique<TertiaryManager>(&sim_, TertiaryDevice(tp));
    StripedConfig config;
    config.stride = 1;
    config.interval = kInterval;
    config.fragment_size = DataSize::MB(1.512);
    config.preload_objects = 5;  // half the farm; room to land misses
    config.charge_materialization_writes = charge;
    config.tertiary_bandwidth = tp.bandwidth;
    auto server = StripedServer::Create(&sim_, &catalog_, disks_.get(),
                                        tertiary_.get(), config);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = *std::move(server);
  }

  Simulator sim_;
  Catalog catalog_;
  std::unique_ptr<DiskArray> disks_;
  std::unique_ptr<TertiaryManager> tertiary_;
  std::unique_ptr<StripedServer> server_;
};

TEST_F(MaterializationWritesTest, WriteStreamOccupiesDisks) {
  MakeServer(/*charge=*/true);
  bool completed = false;
  ASSERT_TRUE(server_
                  ->RequestDisplay(10, nullptr, [&] { completed = true; })
                  .ok());
  // During the transfer (~907 s at 40 mbps for a 4.536 GB object), the
  // write stream keeps floor(40/20) = 2 of 10 disks busy.
  sim_.RunUntil(SimTime::Seconds(300));
  EXPECT_FALSE(completed);
  EXPECT_NEAR(disks_->MeanUtilization(), 0.2, 0.03);
  sim_.RunUntil(SimTime::Seconds(1500));
  EXPECT_TRUE(server_->object_manager().IsResident(10));
  sim_.RunUntil(SimTime::Seconds(1500) + kInterval * 600);
  EXPECT_TRUE(completed);
  EXPECT_EQ(server_->scheduler_metrics().hiccups, 0);
}

TEST_F(MaterializationWritesTest, DefaultDoesNotChargeDisks) {
  MakeServer(/*charge=*/false);
  bool completed = false;
  ASSERT_TRUE(server_
                  ->RequestDisplay(10, nullptr, [&] { completed = true; })
                  .ok());
  sim_.RunUntil(SimTime::Seconds(300));
  EXPECT_NEAR(disks_->MeanUtilization(), 0.0, 1e-9);
}

TEST_F(MaterializationWritesTest, ExperimentFlagWiresThrough) {
  ExperimentConfig cfg;
  cfg.scheme = Scheme::kSimpleStriping;
  cfg.num_disks = 100;
  cfg.num_objects = 100;
  cfg.subobjects_per_object = 200;
  cfg.preload_objects = 10;
  cfg.stations = 8;
  cfg.geometric_mean = 30.0;  // wide working set -> misses happen
  cfg.warmup = SimTime::Minutes(10);
  cfg.measure = SimTime::Hours(1);
  cfg.charge_materialization_writes = true;
  auto charged = RunExperiment(cfg);
  ASSERT_TRUE(charged.ok()) << charged.status();
  EXPECT_EQ(charged->hiccups, 0);
  cfg.charge_materialization_writes = false;
  auto uncharged = RunExperiment(cfg);
  ASSERT_TRUE(uncharged.ok());
  // Charging write load can only lower or keep throughput.
  EXPECT_LE(charged->displays_per_hour, uncharged->displays_per_hour + 1.0);
}

}  // namespace
}  // namespace stagger
