// Golden-trace regression tests: fixed-seed runs are serialized — the
// per-interval read schedule for the striped scheduler, an event log
// for the VDR baseline — and compared byte-for-byte against checked-in
// baselines in tests/golden/.  Any change to a scheduling decision
// shows up as a readable diff.
//
// To refresh the baselines after an *intentional* behavior change:
//
//   ./build/tests/golden_trace_test --update-golden
//
// then review the diff and commit the .golden files with the change.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "baseline/vdr_server.h"
#include "core/interval_scheduler.h"
#include "core/invariants.h"
#include "core/schedule_trace.h"
#include "disk/disk_array.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "server/striped_server.h"
#include "sim/simulator.h"
#include "tertiary/tertiary_manager.h"
#include "util/rng.h"

namespace stagger {

// Set by --update-golden in main(): record baselines instead of
// comparing against them.
bool g_update_golden = false;

namespace {

constexpr SimTime kInterval = SimTime::Millis(605);

std::string GoldenPath(const std::string& name) {
  return std::string(STAGGER_GOLDEN_DIR) + "/" + name + ".golden";
}

void CompareOrUpdate(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (g_update_golden) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden baseline " << path
      << " — run golden_trace_test --update-golden to record it";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "schedule diverged from " << path
      << "; if the change is intentional, re-record with --update-golden";
}

// --- striped scheduler traces -----------------------------------------

struct StripedScenario {
  int32_t num_disks = 10;
  int32_t stride = 1;
  AdmissionPolicy policy = AdmissionPolicy::kContiguous;
  bool coalesce = false;
  int64_t buffer_cap = 0;
  FaultPlan faults;
  uint64_t seed = 7;
  int64_t run_intervals = 48;
};

std::string TraceStriped(const StripedScenario& sc) {
  Simulator sim;
  auto disks = DiskArray::Create(sc.num_disks, DiskParameters::Evaluation());
  STAGGER_CHECK(disks.ok());

  ScheduleTracer tracer(sc.num_disks, /*max_intervals=*/sc.run_intervals + 1);
  SchedulerConfig config;
  config.stride = sc.stride;
  config.interval = kInterval;
  config.policy = sc.policy;
  config.coalesce = sc.coalesce;
  config.buffer_capacity_fragments = sc.buffer_cap;
  config.read_observer = [&tracer](int64_t interval, ObjectId object,
                                   int64_t subobject, int32_t fragment,
                                   int32_t disk) {
    tracer.Record(interval, object, subobject, fragment, disk);
  };
  auto sched = IntervalScheduler::Create(&sim, &*disks, config);
  STAGGER_CHECK(sched.ok());

  std::unique_ptr<FaultInjector> injector;
  if (!sc.faults.empty()) {
    auto created = FaultInjector::Create(&sim, &*disks, sc.faults);
    STAGGER_CHECK(created.ok()) << created.status();
    injector = *std::move(created);
  }

  // A fixed-seed randomized load: the seed pins every request, so the
  // recorded schedule is a pure function of the scheduler's decisions.
  Rng rng(sc.seed);
  for (int i = 0; i < 5; ++i) {
    DisplayRequest req;
    req.object = i;
    req.degree = static_cast<int32_t>(1 + rng.NextBounded(3));
    req.start_disk =
        static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(sc.num_disks)));
    req.num_subobjects = static_cast<int64_t>(8 + rng.NextBounded(16));
    const SimTime at = kInterval * static_cast<int64_t>(rng.NextBounded(8));
    sim.ScheduleAt(at, [&sched, req = std::move(req)]() mutable {
      STAGGER_CHECK((*sched)->Submit(std::move(req)).ok());
    });
  }
  sim.RunUntil(kInterval * sc.run_intervals);

  std::ostringstream os;
  os << "# D=" << sc.num_disks << " k=" << sc.stride << " policy="
     << (sc.policy == AdmissionPolicy::kContiguous ? "contiguous"
                                                   : "fragmented")
     << (sc.coalesce ? "+coalesce" : "") << " seed=" << sc.seed << "\n";
  if (!sc.faults.empty()) {
    os << "# fault plan:\n" << sc.faults.ToString();
  }
  tracer.RenderDisks().Print(os);
  const SchedulerMetrics& m = (*sched)->metrics();
  os << "reads=" << tracer.num_events()
     << " collisions=" << tracer.num_collisions() << "\n"
     << "displays: requested=" << m.displays_requested
     << " admitted=" << m.displays_admitted
     << " completed=" << m.displays_completed
     << " cancelled=" << m.displays_cancelled << "\n"
     << "fragmented_admissions=" << m.fragmented_admissions
     << " coalesce_migrations=" << m.coalesce_migrations << "\n"
     << "degraded: reads=" << m.degraded_reads
     << " paused=" << m.streams_paused << " resumed=" << m.streams_resumed
     << " interrupted=" << m.displays_interrupted << "\n"
     << "hiccups=" << m.hiccups << "\n";
  return os.str();
}

TEST(GoldenTraceTest, StripedContiguous) {
  CompareOrUpdate("striped_contiguous", TraceStriped({}));
}

TEST(GoldenTraceTest, StripedFragmentedCoalesce) {
  StripedScenario sc;
  sc.stride = 2;
  sc.policy = AdmissionPolicy::kFragmented;
  sc.coalesce = true;
  sc.buffer_cap = 64;
  CompareOrUpdate("striped_fragmented_coalesce", TraceStriped(sc));
}

// The acceptance scenario: a single-disk failure mid-run under load.
// The trace records the remapped reads and the pause/resume decisions;
// a fixed seed must reproduce the identical failure trace.
TEST(GoldenTraceTest, StripedSingleDiskFailure) {
  StripedScenario sc;
  sc.faults.FailAt(4, kInterval * 12)
      .RecoverAt(4, kInterval * 24)
      .StallAt(8, kInterval * 30, kInterval * 2);
  sc.run_intervals = 64;
  CompareOrUpdate("striped_single_disk_failure", TraceStriped(sc));
}

// --- reconstruct + rebuild acceptance trace ---------------------------

// The explicit placement (parity column included) of every resident
// object, one row per subobject.  Captured before the failure and after
// the rebuild: spare promotion must leave the slot-space placement
// bit-identical.
std::string RenderPlacements(const StripedServer& srv, int32_t num_objects,
                             int64_t num_subobjects) {
  std::ostringstream os;
  for (ObjectId id = 0; id < num_objects; ++id) {
    const StaggeredLayout& layout = srv.object_manager().LayoutOf(id);
    const PlacementTable table =
        MaterializePlacement(layout, num_subobjects, layout.has_parity());
    os << "obj " << id << ":";
    for (const auto& row : table) {
      os << " ";
      for (size_t j = 0; j < row.size(); ++j) {
        os << (j ? "." : "") << row[j];
      }
    }
    os << "\n";
  }
  return os.str();
}

// The ISSUE acceptance scenario: kReconstruct under load with one
// *unrecovered* disk failure on a parity-striped server with a hot
// spare.  While every stripe has slack (low-degree objects on a wide
// array), degraded reads reconstruct in place — zero pauses, zero
// abandoned displays — and the online rebuild drains the lost slot onto
// the spare on idle bandwidth until promotion restores the full array.
TEST(GoldenTraceTest, StripedReconstructRebuild) {
  constexpr int32_t kDisks = 8;
  constexpr int32_t kSpares = 1;
  constexpr int32_t kObjects = 3;
  constexpr int64_t kSubobjects = 24;
  constexpr int64_t kRunIntervals = 200;

  Simulator sim;
  // 30 mbps objects over ~20 mbps effective disks: M = 2, stripes span
  // 3 slots, so reconstruction always finds survivors + parity.
  Catalog catalog =
      Catalog::Uniform(kObjects, kSubobjects, Bandwidth::Mbps(30));
  auto disks =
      DiskArray::Create(kDisks, DiskParameters::Evaluation(), kSpares);
  STAGGER_CHECK(disks.ok());
  TertiaryParameters tp;
  tp.bandwidth = Bandwidth::Mbps(40);
  tp.reposition = SimTime::Zero();
  TertiaryManager tertiary(&sim, TertiaryDevice(tp));

  ScheduleTracer tracer(kDisks, /*max_intervals=*/kRunIntervals + 1);
  StripedConfig config;
  config.stride = 1;
  config.interval = kInterval;
  config.fragment_size = DataSize::MB(1.512);
  config.preload_objects = kObjects;
  config.parity = true;
  config.degraded_policy = DegradedPolicy::kReconstruct;
  config.read_observer = [&tracer](int64_t interval, ObjectId object,
                                   int64_t subobject, int32_t fragment,
                                   int32_t disk) {
    tracer.Record(interval, object, subobject, fragment, disk);
  };
  auto server =
      StripedServer::Create(&sim, &catalog, &*disks, &tertiary, config);
  ASSERT_TRUE(server.ok()) << server.status();
  StripedServer* srv = server->get();

  const std::string placement_before =
      RenderPlacements(*srv, kObjects, kSubobjects);

  // One permanent failure mid-run; the slot only comes back through the
  // rebuilt spare.
  FaultPlan plan;
  plan.FailAt(3, kInterval * 20 + SimTime::Millis(1));
  auto injector = FaultInjector::Create(&sim, &*disks, plan);
  ASSERT_TRUE(injector.ok()) << injector.status();
  (*injector)->OnDown([srv](DiskId d, SimTime now) { srv->OnDiskDown(d, now); });
  (*injector)->OnUp([srv](DiskId d, SimTime now) { srv->OnDiskUp(d, now); });

  // A fixed-seed display mix over the resident objects, overlapping the
  // failure and the rebuild.
  Rng rng(7);
  int completed = 0;
  int interrupted = 0;
  // Request 0 is pinned to interval 10 so its 24-interval display is
  // guaranteed to straddle the failure and exercise degraded reads.
  for (int i = 0; i < 4; ++i) {
    const auto object = static_cast<ObjectId>(i % kObjects);
    const SimTime at =
        i == 0 ? kInterval * 10
               : kInterval * static_cast<int64_t>(rng.NextBounded(60));
    sim.ScheduleAt(at, [srv, object, &completed, &interrupted] {
      STAGGER_CHECK_OK(srv->RequestDisplay(
          object, /*on_started=*/nullptr, [&completed] { ++completed; },
          [&interrupted] { ++interrupted; }));
    });
  }

  for (int64_t step = 1; step <= kRunIntervals; ++step) {
    sim.RunUntil(kInterval * step);
    ASSERT_TRUE(srv->AuditInvariants().ok())
        << srv->AuditInvariants() << " after interval " << step;
  }

  // Slack existed throughout: reconstruction substituted every degraded
  // read and nothing paused or was abandoned.
  const SchedulerMetrics& m = srv->scheduler_metrics();
  EXPECT_GT(m.degraded_reads, 0);
  EXPECT_EQ(m.streams_paused, 0);
  EXPECT_EQ(m.displays_interrupted, 0);
  EXPECT_EQ(m.hiccups, 0);
  EXPECT_EQ(m.displays_completed, 4);
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(interrupted, 0);

  // The rebuild drained the slot onto the spare and promoted it; the
  // post-rebuild placement is bit-identical to the pre-failure one.
  ASSERT_NE(srv->rebuild(), nullptr);
  const RebuildMetrics& rm = srv->rebuild()->metrics();
  EXPECT_EQ(rm.rebuilds_started, 1);
  EXPECT_EQ(rm.rebuilds_completed, 1);
  EXPECT_EQ(rm.mismatches, 0);
  EXPECT_EQ(srv->rebuild()->active_jobs(), 0u);
  EXPECT_EQ(disks->AvailableCount(), kDisks);
  EXPECT_EQ(placement_before, RenderPlacements(*srv, kObjects, kSubobjects));

  std::ostringstream os;
  os << "# D=" << kDisks << " spares=" << kSpares
     << " policy=reconstruct parity=1 seed=7\n"
     << "# fault plan:\n"
     << plan.ToString();
  tracer.RenderDisks().Print(os);
  os << "reads=" << tracer.num_events()
     << " collisions=" << tracer.num_collisions() << "\n"
     << "displays: requested=" << m.displays_requested
     << " completed=" << m.displays_completed
     << " interrupted=" << m.displays_interrupted << "\n"
     << "degraded: reads=" << m.degraded_reads << " paused=" << m.streams_paused
     << " hiccups=" << m.hiccups << "\n"
     << "rebuild: fragments=" << rm.fragments_rebuilt
     << " source_reads=" << rm.source_reads
     << " stalled=" << rm.stalled_intervals
     << " completed=" << rm.rebuilds_completed << "\n"
     << "placement (pre-failure == post-rebuild):\n"
     << placement_before;
  CompareOrUpdate("striped_reconstruct_rebuild", os.str());
}

// --- latent-error scrub trace -----------------------------------------

// The chaos-suite acceptance scenario in miniature: latent sector
// errors appear mid-run on a parity-striped, scrub-enabled server —
// two inside resident stripes (found by the scrub cursor's verify
// reads and parity-repaired in place) and two beyond every resident
// row (repairable only by the pass-end orphan sweep, which re-arms
// until the busy disks free up).  A display runs alongside; the read
// ladder must never deliver a corrupt frame.  The trace pins the repair
// path taken for each cell, the pass structure, and the background
// draw, so any change to scrub scheduling shows up as a readable diff.
TEST(GoldenTraceTest, StripedScrubRepairsLatentError) {
  constexpr int32_t kDisks = 8;
  constexpr int32_t kObjects = 3;
  constexpr int64_t kSubobjects = 24;
  constexpr int64_t kRunIntervals = 160;

  Simulator sim;
  Catalog catalog =
      Catalog::Uniform(kObjects, kSubobjects, Bandwidth::Mbps(30));
  auto disks = DiskArray::Create(kDisks, DiskParameters::Evaluation());
  STAGGER_CHECK(disks.ok());
  TertiaryParameters tp;
  tp.bandwidth = Bandwidth::Mbps(40);
  tp.reposition = SimTime::Zero();
  TertiaryManager tertiary(&sim, TertiaryDevice(tp));

  ScheduleTracer tracer(kDisks, /*max_intervals=*/kRunIntervals + 1);
  StripedConfig config;
  config.stride = 1;
  config.interval = kInterval;
  config.fragment_size = DataSize::MB(1.512);
  config.preload_objects = kObjects;
  config.parity = true;
  config.degraded_policy = DegradedPolicy::kReconstruct;
  config.scrub = true;
  config.read_observer = [&tracer](int64_t interval, ObjectId object,
                                   int64_t subobject, int32_t fragment,
                                   int32_t disk) {
    tracer.Record(interval, object, subobject, fragment, disk);
  };
  auto server =
      StripedServer::Create(&sim, &catalog, &*disks, &tertiary, config);
  ASSERT_TRUE(server.ok()) << server.status();
  StripedServer* srv = server->get();

  // Two cells inside resident stripes — computed from the layouts so
  // they land under real data fragments (object 0 row 5, behind the
  // cursor at injection time so the *next* pass finds it; object 1 row
  // 17, ahead of it so the first pass does) — and two on rows no
  // resident object reaches, repairable only by the orphan sweep.
  const StaggeredLayout& l0 = srv->object_manager().LayoutOf(0);
  const StaggeredLayout& l1 = srv->object_manager().LayoutOf(1);
  const auto cell_a = static_cast<DiskId>(
      (l0.FirstDiskFor(0) + 5 * l0.stride() + 0) % kDisks);
  const auto cell_b = static_cast<DiskId>(
      (l1.FirstDiskFor(0) + 17 * l1.stride() + 1) % kDisks);
  FaultPlan plan;
  plan.LatentAt(cell_a, kInterval * 8 + SimTime::Millis(1), 5, 5)
      .LatentAt(cell_b, kInterval * 8 + SimTime::Millis(1), 17, 17)
      .LatentAt(6, kInterval * 12 + SimTime::Millis(1), 30, 31);
  auto injector = FaultInjector::Create(&sim, &*disks, plan);
  ASSERT_TRUE(injector.ok()) << injector.status();
  (*injector)->OnDown([srv](DiskId d, SimTime now) { srv->OnDiskDown(d, now); });
  (*injector)->OnUp([srv](DiskId d, SimTime now) { srv->OnDiskUp(d, now); });

  // A display overlaps the corruption window: the fault-aware ladder
  // must catch any corrupt cell its reads touch.
  int completed = 0;
  int interrupted = 0;
  sim.ScheduleAt(kInterval * 10, [srv, &completed, &interrupted] {
    STAGGER_CHECK_OK(srv->RequestDisplay(
        /*object=*/0, /*on_started=*/nullptr, [&completed] { ++completed; },
        [&interrupted] { ++interrupted; }));
  });

  for (int64_t step = 1; step <= kRunIntervals; ++step) {
    sim.RunUntil(kInterval * step);
    ASSERT_TRUE(srv->AuditInvariants().ok())
        << srv->AuditInvariants() << " after interval " << step;
  }

  // Every injected cell healed, and nothing corrupt reached the viewer.
  const LatentErrorMetrics& lm = disks->latent_errors().metrics();
  EXPECT_EQ(lm.injected, 4);
  EXPECT_EQ(lm.repaired, 4);
  EXPECT_EQ(disks->latent_errors().ActiveCells(), 0);
  const SchedulerMetrics& m = srv->scheduler_metrics();
  EXPECT_EQ(m.corrupt_frames_delivered, 0);
  EXPECT_EQ(m.hiccups, 0);
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(interrupted, 0);

  ASSERT_NE(srv->scrubber(), nullptr);
  const ScrubMetrics& sm = srv->scrubber()->metrics();
  EXPECT_GE(sm.passes_completed, 1);
  EXPECT_GE(sm.parity_repairs + sm.targeted_repairs, 1);
  EXPECT_EQ(sm.orphans_repaired, 2);
  EXPECT_EQ(sm.mismatches, 0);
  EXPECT_TRUE(srv->scrubber()->AuditState().ok());
  ASSERT_NE(srv->background_budget(), nullptr);
  EXPECT_EQ(srv->background_budget()->metrics().budget_violations, 0);
  EXPECT_TRUE(srv->background_budget()->AuditState().ok());

  std::ostringstream os;
  os << "# D=" << kDisks << " parity=1 scrub=1 policy=reconstruct\n"
     << "# fault plan:\n"
     << plan.ToString();
  tracer.RenderDisks().Print(os);
  os << "reads=" << tracer.num_events()
     << " collisions=" << tracer.num_collisions() << "\n"
     << "displays: requested=" << m.displays_requested
     << " completed=" << m.displays_completed << " hiccups=" << m.hiccups
     << "\n"
     << "latent: injected=" << lm.injected << " detected=" << lm.detected
     << " repaired=" << lm.repaired
     << " corrupt_caught=" << m.corrupt_reads_detected
     << " corrupt_delivered=" << m.corrupt_frames_delivered << "\n"
     << "scrub: stripes=" << sm.stripes_scrubbed
     << " passes=" << sm.passes_completed
     << " verify_reads=" << sm.verify_reads
     << " parity_repairs=" << sm.parity_repairs
     << " targeted=" << sm.targeted_repairs
     << " orphans=" << sm.orphans_repaired
     << " archive_restores=" << sm.archive_restores << "\n"
     << "budget: granted="
     << srv->background_budget()->metrics().reads_granted
     << " idle_capacity=" << srv->background_budget()->metrics().idle_capacity
     << " violations="
     << srv->background_budget()->metrics().budget_violations << "\n";
  CompareOrUpdate("striped_scrub_repairs_latent_error", os.str());
}

// --- flash-crowd batching trace ---------------------------------------

// A scripted burst of same-object requests through a batching
// StripedServer: the first two arrivals gather in the admission window
// and share one stream, a third rides piggyback on the playing stream,
// a fourth arrives past the window and seeds a second stream that a
// fifth joins piggyback — while an unrelated object streams alongside.
// The trace records every request/start/complete with its latency plus
// the per-disk schedule, so any change to a merge decision (who joins
// which stream, and when) shows up as a readable diff.
TEST(GoldenTraceTest, StripedFlashCrowdBatching) {
  constexpr int32_t kDisks = 10;
  constexpr int32_t kObjects = 3;
  constexpr int64_t kSubobjects = 24;
  constexpr int64_t kRunIntervals = 120;
  const SimTime window = kInterval * 8;

  Simulator sim;
  Catalog catalog =
      Catalog::Uniform(kObjects, kSubobjects, Bandwidth::Mbps(30));
  auto disks = DiskArray::Create(kDisks, DiskParameters::Evaluation());
  STAGGER_CHECK(disks.ok());
  TertiaryParameters tp;
  tp.bandwidth = Bandwidth::Mbps(40);
  tp.reposition = SimTime::Zero();
  TertiaryManager tertiary(&sim, TertiaryDevice(tp));

  ScheduleTracer tracer(kDisks, /*max_intervals=*/kRunIntervals + 1);
  StripedConfig config;
  config.stride = 1;
  config.interval = kInterval;
  config.fragment_size = DataSize::MB(1.512);
  config.preload_objects = kObjects;
  config.batch = true;
  config.batch_window = window;
  config.read_observer = [&tracer](int64_t interval, ObjectId object,
                                   int64_t subobject, int32_t fragment,
                                   int32_t disk) {
    tracer.Record(interval, object, subobject, fragment, disk);
  };
  auto server =
      StripedServer::Create(&sim, &catalog, &*disks, &tertiary, config);
  ASSERT_TRUE(server.ok()) << server.status();
  StripedServer* srv = server->get();

  std::ostringstream log;
  auto issue = [&log, &sim, srv](int viewer, ObjectId object) {
    log << "t=" << sim.Now().micros() << "us request viewer=" << viewer
        << " obj=" << object << "\n";
    STAGGER_CHECK_OK(srv->RequestDisplay(
        object,
        [&log, &sim, viewer](SimTime latency) {
          log << "t=" << sim.Now().micros() << "us start viewer=" << viewer
              << " latency_us=" << latency.micros() << "\n";
        },
        [&log, &sim, viewer] {
          log << "t=" << sim.Now().micros() << "us complete viewer=" << viewer
              << "\n";
        },
        [&log, &sim, viewer] {
          log << "t=" << sim.Now().micros() << "us interrupt viewer=" << viewer
              << "\n";
        }));
  };
  // The burst: viewers 0/1 gather in the window, 2 piggybacks on the
  // playing stream, 3 misses the window and seeds stream two, 4 joins
  // it piggyback.  Viewer 5 streams object 1 alongside the crowd.
  const struct {
    int64_t at_interval;
    int viewer;
    ObjectId object;
  } arrivals[] = {{0, 0, 0},  {2, 1, 0},  {3, 5, 1},
                  {12, 2, 0}, {20, 3, 0}, {30, 4, 0}};
  for (const auto& a : arrivals) {
    sim.ScheduleAt(kInterval * a.at_interval,
                   [&issue, v = a.viewer, o = a.object] { issue(v, o); });
  }

  for (int64_t step = 1; step <= kRunIntervals; ++step) {
    sim.RunUntil(kInterval * step);
    ASSERT_TRUE(srv->AuditInvariants().ok())
        << srv->AuditInvariants() << " after interval " << step;
  }

  const StreamBatcher* batcher = srv->batcher();
  ASSERT_NE(batcher, nullptr);
  const BatcherMetrics& bm = batcher->metrics();
  const SchedulerMetrics& m = srv->scheduler_metrics();
  EXPECT_EQ(bm.requests, 6);
  EXPECT_EQ(bm.completed, 6);
  EXPECT_EQ(batcher->open_batches(), 0);
  EXPECT_EQ(m.hiccups, 0);
  EXPECT_LE(bm.start_offset_sec.max(), window.seconds() + 1e-9);

  std::ostringstream os;
  os << "# D=" << kDisks << " k=1 batch_window_us=" << window.micros()
     << " burst on obj 0\n"
     << log.str();
  tracer.RenderDisks().Print(os);
  os << "reads=" << tracer.num_events()
     << " collisions=" << tracer.num_collisions() << "\n"
     << "displays: requested=" << m.displays_requested
     << " completed=" << m.displays_completed << " hiccups=" << m.hiccups
     << "\n"
     << "batching: requests=" << bm.requests
     << " physical_streams=" << bm.physical_streams
     << " window_joins=" << bm.window_joins
     << " piggyback_joins=" << bm.piggyback_joins << "\n"
     << "fanout_max=" << bm.fanout.max()
     << " start_offset_max_us="
     << static_cast<int64_t>(bm.start_offset_sec.max() * 1e6) << "\n";
  CompareOrUpdate("striped_flash_crowd_batching", os.str());
}

// --- VDR event log ----------------------------------------------------

TEST(GoldenTraceTest, VdrFailoverEventLog) {
  Simulator sim;
  Catalog catalog = Catalog::Uniform(6, 8, Bandwidth::Mbps(100));
  TertiaryParameters tp;
  tp.bandwidth = Bandwidth::Mbps(40);
  tp.reposition = SimTime::Zero();
  TertiaryManager tertiary(&sim, TertiaryDevice(tp));
  VdrConfig config;
  config.num_clusters = 4;
  config.cluster_degree = 2;
  config.interval = kInterval;
  config.fragment_size = DataSize::MB(1.512);
  config.enable_replication = true;
  config.preload_objects = 4;
  auto server = VdrServer::Create(&sim, &catalog, &tertiary, config);
  ASSERT_TRUE(server.ok()) << server.status();
  VdrServer& vdr = **server;

  std::ostringstream log;
  auto event = [&log, &sim](const std::string& what) {
    log << "t=" << sim.Now().micros() << "us " << what << "\n";
  };

  // A fixed-seed request mix over the preloaded objects.
  Rng rng(11);
  for (int i = 0; i < 8; ++i) {
    const auto object = static_cast<ObjectId>(rng.NextBounded(6));
    const SimTime at = kInterval * static_cast<int64_t>(rng.NextBounded(20));
    sim.ScheduleAt(at, [&vdr, &event, object] {
      event("request obj=" + std::to_string(object));
      STAGGER_CHECK(
          vdr.RequestDisplay(
                 object,
                 [&event, object](SimTime latency) {
                   event("start obj=" + std::to_string(object) +
                         " latency_us=" + std::to_string(latency.micros()));
                 },
                 [&event, object] {
                   event("complete obj=" + std::to_string(object));
                 })
              .ok());
    });
  }

  // Scripted outages: cluster 1 loses a disk (and its media) mid-run;
  // cluster 2 sees a transient, media-preserving stall.
  sim.ScheduleAt(kInterval * 5, [&vdr, &event] {
    event("disk-down 2 media-lost");
    vdr.OnDiskDown(2, /*media_lost=*/true);
  });
  sim.ScheduleAt(kInterval * 14, [&vdr, &event] {
    event("disk-up 2");
    vdr.OnDiskUp(2);
  });
  sim.ScheduleAt(kInterval * 9, [&vdr, &event] {
    event("disk-down 4");
    vdr.OnDiskDown(4, /*media_lost=*/false);
  });
  sim.ScheduleAt(kInterval * 11, [&vdr, &event] {
    event("disk-up 4");
    vdr.OnDiskUp(4);
  });

  sim.RunUntil(kInterval * 120);

  const VdrMetrics& m = vdr.metrics();
  log << "displays_completed=" << m.displays_completed
      << " interrupted=" << m.displays_interrupted
      << " failovers=" << m.failovers << "\n"
      << "replicas_lost=" << m.replicas_lost
      << " replications=" << m.replications
      << " replications_aborted=" << m.replications_aborted
      << " materializations=" << m.materializations
      << " evictions=" << m.evictions << "\n"
      << "resident_objects_end=" << vdr.ResidentObjectCount() << "\n";
  CompareOrUpdate("vdr_failover_event_log", log.str());
}

}  // namespace
}  // namespace stagger

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      stagger::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
