// Coordinator routing tests: home-shard lookup, pickMin placement down
// the replica chain, hop accounting, and memoization.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "node/coordinator.h"

namespace stagger {
namespace {

CoordinatorConfig Config(int32_t shards, int32_t replicas = 2,
                         uint64_t seed = 0x517a66e7ull) {
  CoordinatorConfig cc;
  cc.num_shards = shards;
  cc.ring_replicas = replicas;
  cc.ring_seed = seed;
  return cc;
}

TEST(Coordinator, SingleShardRoutesEverythingHomeInOneHop) {
  Coordinator coord(Config(1), 100);
  for (ObjectId id = 0; id < 50; ++id) {
    const Coordinator::Route route = coord.PlaceObject(id);
    EXPECT_EQ(route.shard, 0);
    EXPECT_EQ(route.hops, 1);
  }
  EXPECT_EQ(coord.metrics().placements, 50);
  EXPECT_EQ(coord.metrics().redirects, 0);
  EXPECT_EQ(coord.metrics().rpc_hops, 50);
  EXPECT_EQ(coord.placements_on(0), 50);
}

TEST(Coordinator, PlacementIsMemoizedAndChargedOnce) {
  Coordinator coord(Config(4), 1000);
  const Coordinator::Route first = coord.PlaceObject(7);
  const Coordinator::Route again = coord.PlaceObject(7);
  EXPECT_EQ(first.shard, again.shard);
  EXPECT_EQ(first.hops, again.hops);
  EXPECT_EQ(coord.metrics().placements, 1);
  int64_t total = 0;
  for (int32_t s = 0; s < 4; ++s) total += coord.placements_on(s);
  EXPECT_EQ(total, 1);
}

TEST(Coordinator, PickMinShedsLoadFromTheHomeShard) {
  // With replicas = 2, an object whose home shard already carries more
  // committed placements than its first replica must be redirected
  // (chain position 1 => 2 hops).  Build that state directly: place
  // many objects, then check every placement obeyed pickMin over its
  // own chain at the time it was made — pickMin never chooses a
  // strictly more-loaded shard than the best alternative.
  Coordinator coord(Config(8, 3), 1000);
  Coordinator shadow(Config(8, 3), 1000);  // same ring, replayed
  std::vector<int64_t> load(8, 0);
  for (ObjectId id = 0; id < 400; ++id) {
    const std::vector<int32_t> chain =
        shadow.ring().ReplicaChainFor(static_cast<uint64_t>(id), 3);
    const Coordinator::Route route = coord.PlaceObject(id);
    // The chosen shard is on the chain, and no chain member had
    // strictly less load (ties break toward the earlier position).
    int32_t pos = -1;
    for (size_t i = 0; i < chain.size(); ++i) {
      if (chain[i] == route.shard) pos = static_cast<int32_t>(i);
    }
    ASSERT_GE(pos, 0) << "placement left the replica chain";
    for (size_t i = 0; i < chain.size(); ++i) {
      const int64_t chosen = load[static_cast<size_t>(route.shard)];
      const int64_t other = load[static_cast<size_t>(chain[i])];
      if (static_cast<int32_t>(i) < pos) {
        EXPECT_LT(chosen, other)
            << "object " << id << ": skipped an equally-loaded earlier "
            << "chain entry";
      }
    }
    EXPECT_EQ(route.hops, 1 + pos);
    ++load[static_cast<size_t>(route.shard)];
  }
  // pickMin keeps committed placements near-balanced.
  int64_t lo = load[0], hi = load[0];
  for (const int64_t l : load) {
    lo = std::min(lo, l);
    hi = std::max(hi, l);
  }
  EXPECT_LE(hi - lo, 2);
  // Every placement pays the coordinator->home hop; each redirect adds
  // at least one more.
  EXPECT_GE(coord.metrics().rpc_hops,
            coord.metrics().placements + coord.metrics().redirects);
}

TEST(Coordinator, HomeShardMatchesRingLookup) {
  Coordinator coord(Config(8), 800);
  for (ObjectId id = 0; id < 100; ++id) {
    EXPECT_EQ(coord.HomeShardFor(id),
              coord.ring().ShardFor(static_cast<uint64_t>(id)));
  }
}

TEST(Coordinator, RoutesAreSeedDeterministic) {
  Coordinator a(Config(8, 2, 42), 1000);
  Coordinator b(Config(8, 2, 42), 1000);
  Coordinator c(Config(8, 2, 43), 1000);
  bool any_difference = false;
  for (ObjectId id = 0; id < 200; ++id) {
    const Coordinator::Route ra = a.PlaceObject(id);
    const Coordinator::Route rb = b.PlaceObject(id);
    EXPECT_EQ(ra.shard, rb.shard);
    EXPECT_EQ(ra.hops, rb.hops);
    if (c.PlaceObject(id).shard != ra.shard) any_difference = true;
  }
  EXPECT_TRUE(any_difference) << "seed does not move the ring";
}

}  // namespace
}  // namespace stagger
