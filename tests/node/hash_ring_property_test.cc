// Property tests for the consistent-hash ring (node/hash_ring.h) and
// the contiguous shard map (node/shard_map.h).
//
// The ring's contract has three legs, each pinned here:
//   1. Balance: with kVnodesPerWeight points per unit weight, the
//      busiest shard carries at most 1.15x the mean key load — across
//      50 seeds and shard counts 2/4/8 (the ISSUE acceptance bar).
//   2. Minimal remap: adding a shard moves keys ONLY onto the new
//      shard; removing one moves ONLY its own keys.  No third shard's
//      keys churn.
//   3. Cross-platform determinism: positions are pure (seed, shard,
//      vnode) functions — hardcoded lookups must reproduce on any
//      machine, compiler, and standard library.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "node/hash_ring.h"
#include "node/shard_map.h"

namespace stagger {
namespace {

constexpr int64_t kKeys = 40000;

HashRing MakeRing(uint64_t seed, int32_t shards) {
  HashRing ring(seed);
  for (int32_t s = 0; s < shards; ++s) ring.AddShard(s);
  return ring;
}

std::vector<int64_t> KeyLoads(const HashRing& ring, int32_t shards) {
  std::vector<int64_t> loads(static_cast<size_t>(shards), 0);
  for (int64_t key = 0; key < kKeys; ++key) {
    ++loads[static_cast<size_t>(
        ring.ShardFor(static_cast<uint64_t>(key)))];
  }
  return loads;
}

TEST(HashRingProperty, BalanceBound) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    for (int32_t shards : {2, 4, 8}) {
      const HashRing ring = MakeRing(seed, shards);
      const std::vector<int64_t> loads = KeyLoads(ring, shards);
      int64_t max_load = 0;
      for (const int64_t load : loads) max_load = std::max(max_load, load);
      const double mean = static_cast<double>(kKeys) / shards;
      EXPECT_LE(static_cast<double>(max_load) / mean, 1.15)
          << "seed " << seed << ", " << shards << " shards";
    }
  }
}

TEST(HashRingProperty, WeightsScaleOwnership) {
  HashRing ring(7);
  ring.AddShard(0, 1);
  ring.AddShard(1, 3);  // 3x the points => ~3x the keys
  const std::vector<int64_t> loads = KeyLoads(ring, 2);
  const double ratio =
      static_cast<double>(loads[1]) / static_cast<double>(loads[0]);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 3.5);
}

TEST(HashRingProperty, AddShardStealsOnlyForItself) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    HashRing before = MakeRing(seed, 4);
    HashRing after = MakeRing(seed, 4);
    after.AddShard(4);
    int64_t moved = 0;
    for (int64_t key = 0; key < kKeys; ++key) {
      const int32_t was = before.ShardFor(static_cast<uint64_t>(key));
      const int32_t now = after.ShardFor(static_cast<uint64_t>(key));
      if (was != now) {
        // A moved key may only have moved TO the new shard.
        EXPECT_EQ(now, 4) << "seed " << seed << " key " << key;
        ++moved;
      }
    }
    // The new shard should own roughly 1/5 of the keyspace — well
    // under the 1/2 a naive mod-hash would reshuffle.
    EXPECT_GT(moved, kKeys / 10);
    EXPECT_LT(moved, kKeys * 3 / 10);
  }
}

TEST(HashRingProperty, RemoveShardMovesOnlyItsOwnKeys) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    HashRing before = MakeRing(seed, 5);
    HashRing after = MakeRing(seed, 5);
    after.RemoveShard(2);
    for (int64_t key = 0; key < kKeys; ++key) {
      const int32_t was = before.ShardFor(static_cast<uint64_t>(key));
      const int32_t now = after.ShardFor(static_cast<uint64_t>(key));
      if (was != 2) {
        // Keys not owned by the removed shard must not move at all.
        EXPECT_EQ(was, now) << "seed " << seed << " key " << key;
      } else {
        EXPECT_NE(now, 2);
      }
    }
  }
}

TEST(HashRingProperty, ReplicaChainIsDistinctAndStartsAtHome) {
  const HashRing ring = MakeRing(3, 8);
  for (int64_t key = 0; key < 1000; ++key) {
    const uint64_t k = static_cast<uint64_t>(key);
    const std::vector<int32_t> chain = ring.ReplicaChainFor(k, 3);
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_EQ(chain[0], ring.ShardFor(k));
    EXPECT_NE(chain[0], chain[1]);
    EXPECT_NE(chain[0], chain[2]);
    EXPECT_NE(chain[1], chain[2]);
  }
  // Asking for more replicas than shards returns all shards once.
  const std::vector<int32_t> all = ring.ReplicaChainFor(1, 99);
  EXPECT_EQ(all.size(), 8u);
}

// Golden lookups: the ring is a pure function of (seed, shards, key).
// These constants were produced by this implementation and must
// reproduce bit-for-bit on every platform — any drift breaks
// cross-machine placement agreement.
TEST(HashRingProperty, DeterministicAcrossPlatforms) {
  EXPECT_EQ(HashRing::Mix(0), 16294208416658607535ull);
  EXPECT_EQ(HashRing::Mix(1), 10451216379200822465ull);
  EXPECT_EQ(HashRing::Mix(0x517a66e7ull), 15898879499741857210ull);

  const HashRing ring = MakeRing(0x517a66e7ull, 8);
  std::vector<int32_t> got;
  for (uint64_t key = 0; key < 16; ++key) got.push_back(ring.ShardFor(key));
  const std::vector<int32_t> want = {1, 1, 1, 2, 1, 5, 1, 6,
                                     2, 3, 0, 4, 3, 3, 1, 2};
  EXPECT_EQ(got, want);
  // Fingerprint of the first 4096 lookups, order-sensitive.  If this
  // value changes the ring function changed — bump it ONLY with a
  // conscious placement-compatibility break.
  uint64_t fp = 0;
  for (uint64_t key = 0; key < 4096; ++key) {
    fp = HashRing::Mix(fp ^ (static_cast<uint64_t>(ring.ShardFor(key)) +
                             key * 131));
  }
  EXPECT_EQ(fp, 7325858866932866061ull);
}

TEST(ShardMapProperty, SlicesPartitionEveryDisk) {
  for (int32_t d : {1, 2, 7, 100, 1000, 1003}) {
    for (int32_t s : {1, 2, 3, 8}) {
      if (s > d) continue;
      const ShardMap map(d, s);
      EXPECT_EQ(map.RangeBegin(0), 0);
      EXPECT_EQ(map.RangeEnd(s - 1), d);
      int32_t total = 0;
      for (int32_t i = 0; i < s; ++i) {
        EXPECT_EQ(map.RangeEnd(i), i + 1 < s ? map.RangeBegin(i + 1) : d);
        EXPECT_GE(map.RangeSize(i), d / s);      // balanced:
        EXPECT_LE(map.RangeSize(i), d / s + 1);  // sizes differ by <= 1
        total += map.RangeSize(i);
      }
      EXPECT_EQ(total, d);
      for (DiskId disk = 0; disk < d; ++disk) {
        const int32_t owner = map.ShardOfDisk(disk);
        ASSERT_GE(owner, 0);
        ASSERT_LT(owner, s);
        EXPECT_GE(disk, map.RangeBegin(owner));
        EXPECT_LT(disk, map.RangeEnd(owner));
        EXPECT_EQ(map.ToGlobal(owner, map.ToLocal(owner, disk)), disk);
      }
    }
  }
}

}  // namespace
}  // namespace stagger
