// EpochPool tests.  The suite name (ShardedTick*) is load-bearing: the
// CI ThreadSanitizer job filters on it, so every test here doubles as a
// race detector over the pool's publish/claim/barrier protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "node/shard_pool.h"

namespace stagger {
namespace {

TEST(ShardedTickPool, RunsEveryTaskExactlyOnce) {
  EpochPool pool(4);
  constexpr int32_t kTasks = 257;  // deliberately not a thread multiple
  std::vector<std::atomic<int32_t>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kTasks, [&hits](int32_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int32_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(ShardedTickPool, BarrierCompletesBeforeReturn) {
  // ParallelFor must not return until every task ran: each epoch sums
  // into an accumulator that the next epoch reads.  Any barrier leak
  // makes the final total wrong (and tsan flags the unsynchronized
  // access).
  EpochPool pool(4);
  int64_t total = 0;  // unsynchronized on purpose: the barrier is the sync
  std::vector<int64_t> partial(8, 0);
  for (int32_t epoch = 0; epoch < 200; ++epoch) {
    pool.ParallelFor(8, [&partial, epoch](int32_t i) {
      partial[static_cast<size_t>(i)] = epoch + i;
    });
    for (const int64_t p : partial) total += p;
  }
  int64_t want = 0;
  for (int32_t epoch = 0; epoch < 200; ++epoch) {
    for (int32_t i = 0; i < 8; ++i) want += epoch + i;
  }
  EXPECT_EQ(total, want);
}

TEST(ShardedTickPool, ReusableAcrossManyEpochsWithVaryingWidths) {
  EpochPool pool(3);
  std::atomic<int64_t> ran{0};
  int64_t want = 0;
  for (int32_t width : {1, 7, 0, 64, 2, 0, 33, 8}) {
    pool.ParallelFor(width, [&ran](int32_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    want += width;
  }
  EXPECT_EQ(ran.load(), want);
  // Width 0 and 1 take the inline fast path; only the wide epochs wake
  // workers.
  EXPECT_GT(pool.epochs_dispatched(), 0);
  EXPECT_LE(pool.epochs_dispatched(), 6);
}

TEST(ShardedTickPool, SingleThreadPoolRunsInlineInOrder) {
  EpochPool pool(1);
  std::vector<int32_t> order;
  pool.ParallelFor(5, [&order](int32_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(pool.epochs_dispatched(), 0);
}

TEST(ShardedTickPool, StragglerFromOldEpochCannotClaimNewTasks) {
  // Hammer many short epochs back to back: a worker that oversleeps
  // epoch e wakes while epoch e+k is in flight holding stale bounds.
  // The monotone-cursor claim makes the stale claim impossible; the
  // exactly-once count below (and tsan) would catch any violation.
  EpochPool pool(4);
  for (int32_t round = 0; round < 500; ++round) {
    std::atomic<int32_t> ran{0};
    pool.ParallelFor(3, [&ran](int32_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(ran.load(), 3) << "round " << round;
  }
}

TEST(ShardedTickPool, DestructionJoinsIdleWorkers) {
  for (int32_t i = 0; i < 20; ++i) {
    EpochPool pool(4);
    std::atomic<int32_t> ran{0};
    pool.ParallelFor(8, [&ran](int32_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 8);
    // destructor runs here with workers parked in WaitForEpochLocked
  }
}

}  // namespace
}  // namespace stagger
