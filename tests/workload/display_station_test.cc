#include "workload/display_station.h"

#include <gtest/gtest.h>

#include <deque>
#include <memory>

namespace stagger {
namespace {

/// A service that starts every display immediately and completes it
/// after a fixed duration.
class FakeService : public MediaService {
 public:
  FakeService(Simulator* sim, SimTime duration)
      : sim_(sim), duration_(duration) {}

  Status RequestDisplay(ObjectId object, StartedFn on_started,
                        CompletedFn on_completed,
                        InterruptedFn /*on_interrupted*/ = nullptr) override {
    ++requests_;
    last_object_ = object;
    if (on_started) on_started(SimTime::Zero());
    sim_->ScheduleAfter(duration_, [done = std::move(on_completed)] {
      if (done) done();
    });
    return Status::OK();
  }

  int64_t requests_ = 0;
  ObjectId last_object_ = kInvalidObject;

 private:
  Simulator* sim_;
  SimTime duration_;
};

class StationPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dist = UniformDistribution::Create(100);
    ASSERT_TRUE(dist.ok());
    dist_ = std::make_unique<UniformDistribution>(*std::move(dist));
  }
  Simulator sim_;
  std::unique_ptr<UniformDistribution> dist_;
};

TEST_F(StationPoolTest, ClosedLoopZeroThinkTime) {
  FakeService service(&sim_, SimTime::Seconds(10));
  StationPool pool(&sim_, &service, dist_.get(), /*num_stations=*/4,
                   /*seed=*/1);
  pool.Start();
  EXPECT_EQ(service.requests_, 4);  // one outstanding per station
  sim_.RunUntil(SimTime::Seconds(95));
  // Each station completes one display every 10 s and immediately
  // reissues: 9 completions per station by t = 95.
  EXPECT_EQ(pool.metrics().displays_completed, 4 * 9);
  EXPECT_EQ(service.requests_, 4 * 10);
  EXPECT_EQ(pool.metrics().requests_issued, service.requests_);
}

TEST_F(StationPoolTest, ThroughputOverMeasurementWindow) {
  FakeService service(&sim_, SimTime::Minutes(6));
  StationPool pool(&sim_, &service, dist_.get(), 10, 1);
  pool.SetMeasurementWindowStart(SimTime::Hours(1));
  pool.Start();
  sim_.RunUntil(SimTime::Hours(2));
  // 10 stations x one display per 6 min = 100/h in steady state.
  EXPECT_NEAR(pool.metrics().ThroughputPerHour(SimTime::Hours(1), sim_.Now()),
              100.0, 2.0);
  // The window excludes the first hour's completions.
  EXPECT_LT(pool.metrics().displays_completed_in_window,
            pool.metrics().displays_completed);
}

TEST_F(StationPoolTest, LatencyStatsRecorded) {
  FakeService service(&sim_, SimTime::Seconds(5));
  StationPool pool(&sim_, &service, dist_.get(), 2, 1);
  pool.Start();
  sim_.RunUntil(SimTime::Minutes(1));
  EXPECT_GT(pool.metrics().startup_latency_sec.count(), 0);
  EXPECT_DOUBLE_EQ(pool.metrics().startup_latency_sec.mean(), 0.0);
}

TEST_F(StationPoolTest, UniqueObjectsReferencedGrows) {
  FakeService service(&sim_, SimTime::Seconds(1));
  StationPool pool(&sim_, &service, dist_.get(), 4, 7);
  pool.Start();
  sim_.RunUntil(SimTime::Minutes(5));
  const int64_t unique = pool.UniqueObjectsReferenced();
  EXPECT_GT(unique, 50);   // ~1200 draws over 100 objects
  EXPECT_LE(unique, 100);
}

TEST_F(StationPoolTest, SkewedDistributionNarrowsWorkingSet) {
  auto skewed = TruncatedGeometric::FromMean(100, 3);
  ASSERT_TRUE(skewed.ok());
  FakeService service(&sim_, SimTime::Seconds(1));
  StationPool pool(&sim_, &service, &*skewed, 4, 7);
  pool.Start();
  sim_.RunUntil(SimTime::Minutes(5));
  EXPECT_LT(pool.UniqueObjectsReferenced(), 50);
}

TEST_F(StationPoolTest, DeterministicAcrossRuns) {
  auto run = [this](uint64_t seed) {
    Simulator sim;
    FakeService service(&sim, SimTime::Seconds(3));
    StationPool pool(&sim, &service, dist_.get(), 3, seed);
    pool.Start();
    sim.RunUntil(SimTime::Minutes(2));
    return std::make_pair(pool.metrics().requests_issued,
                          service.last_object_);
  };
  EXPECT_EQ(run(5), run(5));
}

TEST_F(StationPoolTest, ZeroWindowCountsEverything) {
  FakeService service(&sim_, SimTime::Seconds(10));
  StationPool pool(&sim_, &service, dist_.get(), 1, 1);
  pool.Start();
  sim_.RunUntil(SimTime::Seconds(35));
  EXPECT_EQ(pool.metrics().displays_completed,
            pool.metrics().displays_completed_in_window);
}

}  // namespace
}  // namespace stagger
