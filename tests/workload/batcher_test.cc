// StreamBatcher unit tests against a scripted downstream: a fake
// physical-issue hook records submissions and lets the test fire
// start/complete/interrupt at chosen instants, pinning the window-join,
// piggyback, fanout-cap, pass-through, and teardown semantics without a
// server in the loop.

#include "workload/batcher.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace stagger {
namespace {

/// One physical stream the fake downstream accepted.
struct Physical {
  ObjectId object;
  MediaService::StartedFn on_started;
  MediaService::CompletedFn on_completed;
  MediaService::InterruptedFn on_interrupted;
  SimTime issued_at;
};

/// Per-logical-request outcome recorder.
struct Station {
  int started = 0;
  int completed = 0;
  int interrupted = 0;
  SimTime latency = SimTime::Max();

  void Request(StreamBatcher* batcher, ObjectId object) {
    batcher->Request(
        object,
        [this](SimTime lat) {
          ++started;
          latency = lat;
        },
        [this] { ++completed; }, [this] { ++interrupted; });
  }
};

class BatcherTest : public ::testing::Test {
 protected:
  StreamBatcher MakeBatcher(SimTime window, int32_t max_fanout = 0) {
    BatcherConfig config;
    config.window = window;
    config.max_fanout = max_fanout;
    return StreamBatcher(
        &sim_, config,
        [this](ObjectId object, MediaService::StartedFn started,
               MediaService::CompletedFn completed,
               MediaService::InterruptedFn interrupted) {
          physicals_.push_back(Physical{object, std::move(started),
                                        std::move(completed),
                                        std::move(interrupted), sim_.Now()});
        });
  }

  Simulator sim_;
  std::vector<Physical> physicals_;
};

TEST_F(BatcherTest, WindowJoinersShareOneStreamFromTheStart) {
  StreamBatcher batcher = MakeBatcher(SimTime::Seconds(30));
  Station a, b, c;
  a.Request(&batcher, 5);
  sim_.RunUntil(SimTime::Seconds(10));
  b.Request(&batcher, 5);
  sim_.RunUntil(SimTime::Seconds(20));
  c.Request(&batcher, 5);
  EXPECT_TRUE(physicals_.empty());  // still gathering

  sim_.RunUntil(SimTime::Seconds(31));
  ASSERT_EQ(physicals_.size(), 1u);  // one stream for three stations
  EXPECT_EQ(physicals_[0].object, 5);
  EXPECT_EQ(physicals_[0].issued_at, SimTime::Seconds(30));

  // Stream starts 5 s after issue (mock scheduler admission).
  sim_.RunUntil(SimTime::Seconds(35));
  physicals_[0].on_started(SimTime::Seconds(5));
  EXPECT_EQ(a.started, 1);
  EXPECT_EQ(a.latency, SimTime::Seconds(35));  // waited the full window
  EXPECT_EQ(b.latency, SimTime::Seconds(25));
  EXPECT_EQ(c.latency, SimTime::Seconds(15));

  physicals_[0].on_completed();
  EXPECT_EQ(a.completed + b.completed + c.completed, 3);
  EXPECT_EQ(batcher.open_batches(), 0);
  EXPECT_EQ(batcher.metrics().physical_streams, 1);
  EXPECT_EQ(batcher.metrics().window_joins, 2);
  EXPECT_DOUBLE_EQ(batcher.metrics().fanout.max(), 3.0);
}

TEST_F(BatcherTest, PiggybackWithinWindowOnly) {
  StreamBatcher batcher = MakeBatcher(SimTime::Seconds(30));
  Station first, rider, late;
  first.Request(&batcher, 2);
  sim_.RunUntil(SimTime::Seconds(30));  // flush fires
  ASSERT_EQ(physicals_.size(), 1u);
  physicals_[0].on_started(SimTime::Zero());  // starts at t = 30

  // t = 50: 20 s into the stream, inside the window -> piggyback.
  sim_.RunUntil(SimTime::Seconds(50));
  rider.Request(&batcher, 2);
  EXPECT_EQ(rider.started, 1);  // instant start
  EXPECT_EQ(rider.latency, SimTime::Zero());
  EXPECT_EQ(batcher.metrics().piggyback_joins, 1);
  EXPECT_DOUBLE_EQ(batcher.metrics().start_offset_sec.max(), 20.0);

  // t = 70: 40 s into the stream, outside the window -> fresh batch.
  sim_.RunUntil(SimTime::Seconds(70));
  late.Request(&batcher, 2);
  EXPECT_EQ(late.started, 0);
  EXPECT_EQ(batcher.open_batches(), 2);

  physicals_[0].on_completed();
  EXPECT_EQ(first.completed, 1);
  EXPECT_EQ(rider.completed, 1);
  EXPECT_EQ(late.completed, 0);  // its own stream still gathering

  sim_.RunUntil(SimTime::Seconds(101));
  ASSERT_EQ(physicals_.size(), 2u);
  physicals_[1].on_started(SimTime::Zero());
  physicals_[1].on_completed();
  EXPECT_EQ(late.completed, 1);
  EXPECT_EQ(batcher.open_batches(), 0);
}

TEST_F(BatcherTest, FanoutCapOpensAFreshBatch) {
  StreamBatcher batcher = MakeBatcher(SimTime::Seconds(30), /*max_fanout=*/2);
  Station s[5];
  for (int i = 0; i < 5; ++i) s[i].Request(&batcher, 9);
  // 5 stations / cap 2 -> ceil(5/2) = 3 batches.
  EXPECT_EQ(batcher.open_batches(), 3);
  sim_.RunUntil(SimTime::Seconds(31));
  ASSERT_EQ(physicals_.size(), 3u);
  for (Physical& p : physicals_) {
    p.on_started(SimTime::Zero());
    p.on_completed();
  }
  int completed = 0;
  for (const Station& st : s) completed += st.completed;
  EXPECT_EQ(completed, 5);
  EXPECT_LE(batcher.metrics().fanout.max(), 2.0);
}

TEST_F(BatcherTest, InterruptionFansOutToEveryStation) {
  StreamBatcher batcher = MakeBatcher(SimTime::Seconds(10));
  Station a, b;
  a.Request(&batcher, 1);
  b.Request(&batcher, 1);
  sim_.RunUntil(SimTime::Seconds(11));
  ASSERT_EQ(physicals_.size(), 1u);
  physicals_[0].on_started(SimTime::Zero());
  physicals_[0].on_interrupted();
  EXPECT_EQ(a.interrupted, 1);
  EXPECT_EQ(b.interrupted, 1);
  EXPECT_EQ(a.completed + b.completed, 0);
  EXPECT_EQ(batcher.metrics().interrupted, 2);
  EXPECT_EQ(batcher.open_batches(), 0);  // stations back in the pool
}

TEST_F(BatcherTest, ZeroWindowIsSynchronousPassThrough) {
  StreamBatcher batcher = MakeBatcher(SimTime::Zero());
  Station a, b;
  a.Request(&batcher, 3);
  ASSERT_EQ(physicals_.size(), 1u);  // forwarded inside Request
  b.Request(&batcher, 3);            // same object, still no merging
  ASSERT_EQ(physicals_.size(), 2u);
  EXPECT_EQ(batcher.open_batches(), 0);  // no batch state at all
  physicals_[0].on_started(SimTime::Seconds(1));
  EXPECT_EQ(a.latency, SimTime::Seconds(1));  // latency passed through
  physicals_[0].on_completed();
  physicals_[1].on_started(SimTime::Seconds(2));
  physicals_[1].on_interrupted();
  EXPECT_EQ(a.completed, 1);
  EXPECT_EQ(b.interrupted, 1);
  EXPECT_EQ(batcher.metrics().physical_streams, 2);
  EXPECT_EQ(batcher.metrics().window_joins, 0);
  EXPECT_EQ(batcher.metrics().piggyback_joins, 0);
}

TEST_F(BatcherTest, AdmissionLatencyPercentilesCoverEveryRequest) {
  StreamBatcher batcher = MakeBatcher(SimTime::Seconds(10));
  Station s[4];
  s[0].Request(&batcher, 1);
  sim_.RunUntil(SimTime::Seconds(5));
  s[1].Request(&batcher, 1);
  sim_.RunUntil(SimTime::Seconds(11));
  ASSERT_EQ(physicals_.size(), 1u);
  physicals_[0].on_started(SimTime::Zero());  // starts at t = 11
  sim_.RunUntil(SimTime::Seconds(15));
  s[2].Request(&batcher, 1);  // piggyback, latency 0
  physicals_[0].on_completed();
  s[3].Request(&batcher, 7);  // lone stream
  sim_.RunUntil(SimTime::Seconds(26));
  ASSERT_EQ(physicals_.size(), 2u);
  physicals_[1].on_started(SimTime::Zero());
  physicals_[1].on_completed();

  const QuantileTracker& q = batcher.metrics().admission_latency_sec;
  EXPECT_EQ(q.count(), 4);
  EXPECT_DOUBLE_EQ(q.min(), 0.0);    // the piggyback join
  EXPECT_DOUBLE_EQ(q.max(), 11.0);   // the first gatherer
}

TEST_F(BatcherTest, DestructorCancelsPendingFlushes) {
  {
    StreamBatcher batcher = MakeBatcher(SimTime::Seconds(30));
    Station a;
    a.Request(&batcher, 4);
    EXPECT_EQ(batcher.open_batches(), 1);
  }
  // The flush timer must not fire into the dead batcher.
  sim_.RunUntil(SimTime::Minutes(2));
  EXPECT_TRUE(physicals_.empty());
}

}  // namespace
}  // namespace stagger
