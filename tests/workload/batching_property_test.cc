// Property tests for stream batching under a hot-object flash-crowd
// load: a seeded sweep drives a real StripedServer with a positive
// admission window and asserts the batching invariants —
//  * bandwidth: a merged stream is ONE physical stream however many
//    stations ride it, so no disk ever transfers two fragments in one
//    interval (ScheduleTracer collision count stays zero, delivery
//    stays hiccup-free) and the per-interval scheduler audit passes
//    throughout — an admitted batch can never exceed the stripe's
//    bandwidth;
//  * start-offset bound: every piggybacked station's start offset is
//    <= the admission window, and nothing exceeds the fanout cap;
//  * teardown: once arrivals stop and streams drain, every logical
//    request has resolved (completed or interrupted — no starved
//    stations, mirroring the PR 2 on_interrupted fix), no batch stays
//    open, and batching actually merged work (fanout > 1 somewhere,
//    fewer physical streams than requests).
//
// The seed count defaults to 6 and is widened by the CI sweep through
// STAGGER_BATCH_SEEDS (see .github/workflows).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/invariants.h"
#include "core/schedule_trace.h"
#include "disk/disk_array.h"
#include "server/striped_server.h"
#include "sim/simulator.h"
#include "storage/catalog.h"
#include "tertiary/tertiary_manager.h"
#include "workload/open_arrivals.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Micros(604800);
constexpr int32_t kDisks = 50;

std::vector<uint64_t> MakeSeeds() {
  int64_t seeds = 6;
  if (const char* env = std::getenv("STAGGER_BATCH_SEEDS")) {
    seeds = std::max<int64_t>(1, std::atoll(env));
  }
  std::vector<uint64_t> cases;
  for (int64_t s = 1; s <= seeds; ++s) {
    cases.push_back(static_cast<uint64_t>(s));
  }
  return cases;
}

class BatchingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchingPropertyTest, FlashCrowdKeepsEveryInvariant) {
  const uint64_t seed = GetParam();
  const SimTime window = SimTime::Seconds(30);
  const int32_t max_fanout = 8;

  Simulator sim;
  Catalog catalog = Catalog::Uniform(20, 100, Bandwidth::Mbps(100));
  auto disks = DiskArray::Create(kDisks, DiskParameters::Evaluation());
  ASSERT_TRUE(disks.ok());
  TertiaryManager tertiary(&sim, TertiaryDevice(TertiaryParameters{}));

  ScheduleTracer tracer(kDisks, /*max_intervals=*/-1);
  StripedConfig config;
  config.stride = 5;
  config.interval = kInterval;
  config.preload_objects = catalog.size();
  config.batch = true;
  config.batch_window = window;
  config.max_batch_fanout = max_fanout;
  config.read_observer = [&tracer](int64_t interval, ObjectId object,
                                   int64_t subobject, int32_t fragment,
                                   int32_t disk) {
    tracer.Record(interval, object, subobject, fragment, disk);
  };
  auto server =
      StripedServer::Create(&sim, &catalog, &*disks, &tertiary, config);
  ASSERT_TRUE(server.ok()) << server.status();

  auto popularity = TruncatedGeometric::FromMean(20, 5);
  ASSERT_TRUE(popularity.ok());

  // A crowd hammering object 0: most arrivals in the spike want the
  // same object, which is what the window and piggyback paths absorb.
  OpenArrivalsConfig oc;
  oc.mean_interarrival = SimTime::Seconds(6);
  oc.seed = seed;
  FlashCrowd crowd;
  crowd.start = SimTime::Minutes(10);
  crowd.duration = SimTime::Minutes(15);
  crowd.object = 0;
  crowd.hot_fraction = 0.9;
  crowd.rate_multiplier = 4.0;
  oc.flash_crowds.push_back(crowd);
  oc.pause_probability = 0.2;  // repeat same-object traffic
  oc.mean_pause = SimTime::Minutes(1);
  OpenArrivals arrivals(&sim, server->get(), &*popularity, std::move(oc));
  arrivals.Start();

  // Step interval by interval with the full scheduler audit on, through
  // the crowd and past it.
  const SimTime horizon = SimTime::Minutes(40);
  for (SimTime t = kInterval; t <= horizon; t = t + kInterval) {
    sim.RunUntil(t);
    ASSERT_TRUE(InvariantAuditor::AuditScheduler(*(*server)->scheduler()).ok());
  }
  arrivals.Stop();
  sim.RunUntil(horizon + SimTime::Hours(1));  // drain

  const StreamBatcher* batcher = (*server)->batcher();
  ASSERT_NE(batcher, nullptr);
  const BatcherMetrics& bm = batcher->metrics();

  // The run exercised both merge paths.
  ASSERT_GT(bm.requests, 0);
  EXPECT_GT(bm.window_joins, 0) << "seed " << seed;
  EXPECT_GT(bm.piggyback_joins, 0) << "seed " << seed;

  // Bandwidth: one stripe per physical stream, no disk overcommitted,
  // no hiccups, fewer streams than logical requests.
  EXPECT_EQ(tracer.num_collisions(), 0);
  EXPECT_EQ((*server)->scheduler_metrics().hiccups, 0);
  EXPECT_LT(bm.physical_streams, bm.requests);
  EXPECT_GT(bm.fanout.max(), 1.0);
  EXPECT_LE(bm.fanout.max(), static_cast<double>(max_fanout));

  // Start-offset bound: piggyback joins never miss more than the window.
  if (bm.start_offset_sec.count() > 0) {
    EXPECT_LE(bm.start_offset_sec.max(), window.seconds() + 1e-9);
    EXPECT_GE(bm.start_offset_sec.min(), 0.0);
  }

  // Teardown: every station returns to the pool — all logical requests
  // resolved, nothing starved, no batch left open.
  EXPECT_EQ(bm.requests, bm.completed + bm.interrupted);
  EXPECT_EQ(arrivals.in_flight(), 0);
  EXPECT_EQ(batcher->open_batches(), 0);
  // Physical accounting closes too: every issued stream ended.
  const SchedulerMetrics& sm = (*server)->scheduler_metrics();
  EXPECT_EQ(sm.displays_requested, bm.physical_streams);
  EXPECT_EQ(sm.displays_completed + sm.displays_cancelled,
            sm.displays_requested);
  // Admission latency is bounded by window + scheduler admission; the
  // tracker saw every logical request.
  EXPECT_EQ(bm.admission_latency_sec.count(), bm.requests);
  EXPECT_GE(bm.admission_latency_sec.p99(), bm.admission_latency_sec.p50());
}

std::string CaseName(const ::testing::TestParamInfo<uint64_t>& info) {
  std::ostringstream os;
  os << "s" << info.param;
  return os.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchingPropertyTest,
                         ::testing::ValuesIn(MakeSeeds()), CaseName);

}  // namespace
}  // namespace stagger
