#include "workload/open_arrivals.h"

#include <gtest/gtest.h>

#include <memory>

#include "server/striped_server.h"
#include "sim/simulator.h"

namespace stagger {
namespace {

class DelayService : public MediaService {
 public:
  DelayService(Simulator* sim, SimTime duration)
      : sim_(sim), duration_(duration) {}
  Status RequestDisplay(ObjectId, StartedFn on_started,
                        CompletedFn on_completed,
                        InterruptedFn /*on_interrupted*/ = nullptr) override {
    if (on_started) on_started(SimTime::Millis(250));
    sim_->ScheduleAfter(duration_, [done = std::move(on_completed)] {
      if (done) done();
    });
    return Status::OK();
  }

 private:
  Simulator* sim_;
  SimTime duration_;
};

TEST(OpenArrivalsTest, PoissonRateApproximatelyLambda) {
  Simulator sim;
  DelayService service(&sim, SimTime::Seconds(1));
  auto dist = UniformDistribution::Create(50);
  ASSERT_TRUE(dist.ok());
  OpenArrivals arrivals(&sim, &service, &*dist, SimTime::Seconds(10), 3);
  arrivals.Start();
  sim.RunUntil(SimTime::Hours(10));
  // Expected 3600 arrivals over 10 h; Poisson sigma = 60.
  EXPECT_NEAR(static_cast<double>(arrivals.requests_issued()), 3600.0, 300.0);
  EXPECT_NEAR(arrivals.OfferedRatePerHour(), 360.0, 1e-9);
}

TEST(OpenArrivalsTest, CompletionsTrailArrivals) {
  Simulator sim;
  DelayService service(&sim, SimTime::Minutes(5));
  auto dist = UniformDistribution::Create(50);
  ASSERT_TRUE(dist.ok());
  OpenArrivals arrivals(&sim, &service, &*dist, SimTime::Seconds(30), 4);
  arrivals.Start();
  sim.RunUntil(SimTime::Hours(1));
  EXPECT_GT(arrivals.requests_issued(), arrivals.displays_completed());
  // Little's law sanity: occupancy ~ lambda * service = 10.
  EXPECT_NEAR(static_cast<double>(arrivals.in_flight()), 10.0, 8.0);
  EXPECT_GT(arrivals.startup_latency_sec().count(), 0);
}

TEST(OpenArrivalsTest, StopHaltsTheStream) {
  Simulator sim;
  DelayService service(&sim, SimTime::Seconds(1));
  auto dist = UniformDistribution::Create(10);
  ASSERT_TRUE(dist.ok());
  OpenArrivals arrivals(&sim, &service, &*dist, SimTime::Seconds(5), 5);
  arrivals.Start();
  sim.RunUntil(SimTime::Minutes(5));
  const int64_t at_stop = arrivals.requests_issued();
  arrivals.Stop();
  sim.RunUntil(SimTime::Minutes(30));
  EXPECT_EQ(arrivals.requests_issued(), at_stop);
}

TEST(OpenArrivalsTest, DrivesTheRealServerHiccupFree) {
  Simulator sim;
  Catalog catalog = Catalog::Uniform(30, 100, Bandwidth::Mbps(100));
  auto disks = DiskArray::Create(50, DiskParameters::Evaluation());
  ASSERT_TRUE(disks.ok());
  TertiaryParameters tp;
  TertiaryManager tertiary(&sim, TertiaryDevice(tp));
  StripedConfig config;
  config.stride = 5;
  config.interval = SimTime::Micros(604800);
  config.preload_objects = 30;
  auto server =
      StripedServer::Create(&sim, &catalog, &*disks, &tertiary, config);
  ASSERT_TRUE(server.ok());

  auto dist = TruncatedGeometric::FromMean(30, 5);
  ASSERT_TRUE(dist.ok());
  OpenArrivals arrivals(&sim, server->get(), &*dist, SimTime::Seconds(20), 6);
  arrivals.Start();
  sim.RunUntil(SimTime::Hours(2));
  EXPECT_GT(arrivals.displays_completed(), 0);
  EXPECT_EQ((*server)->scheduler_metrics().hiccups, 0);
}

TEST(CatalogMixedTest, BuildsHeterogeneousDatabase) {
  Catalog catalog = Catalog::Mixed({
      {"Y", 2, 12, Bandwidth::Mbps(80)},
      {"X", 3, 12, Bandwidth::Mbps(60)},
      {"Z", 1, 12, Bandwidth::Mbps(40)},
  });
  EXPECT_EQ(catalog.size(), 6);
  EXPECT_EQ(catalog.Get(0).name, "Y0");
  EXPECT_EQ(catalog.Get(2).name, "X0");
  EXPECT_EQ(catalog.Get(5).name, "Z0");
  const Bandwidth disk = Bandwidth::Mbps(20);
  EXPECT_EQ(catalog.Get(0).DegreeOfDeclustering(disk), 4);
  EXPECT_EQ(catalog.Get(2).DegreeOfDeclustering(disk), 3);
  EXPECT_EQ(catalog.Get(5).DegreeOfDeclustering(disk), 2);
}

TEST(CatalogMixedTest, ServerHandlesMixedDegrees) {
  // Figure 5's database on 12 disks, stride 1: objects of degree 4 / 3
  // / 2 displayed together, hiccup-free.
  Simulator sim;
  Catalog catalog = Catalog::Mixed({
      {"Y", 2, 24, Bandwidth::Mbps(80)},
      {"X", 2, 24, Bandwidth::Mbps(60)},
      {"Z", 2, 24, Bandwidth::Mbps(40)},
  });
  auto disks = DiskArray::Create(12, DiskParameters::Evaluation());
  ASSERT_TRUE(disks.ok());
  TertiaryManager tertiary(&sim, TertiaryDevice(TertiaryParameters{}));
  StripedConfig config;
  config.stride = 1;
  config.interval = SimTime::Micros(604800);
  config.preload_objects = 6;
  config.align_start_to_stride = true;
  auto server =
      StripedServer::Create(&sim, &catalog, &*disks, &tertiary, config);
  ASSERT_TRUE(server.ok()) << server.status();

  int completed = 0;
  for (ObjectId id = 0; id < 6; ++id) {
    ASSERT_TRUE((*server)
                    ->RequestDisplay(id, nullptr, [&] { ++completed; })
                    .ok());
  }
  sim.RunUntil(SimTime::Minutes(10));
  EXPECT_EQ(completed, 6);
  EXPECT_EQ((*server)->scheduler_metrics().hiccups, 0);
}

}  // namespace
}  // namespace stagger
