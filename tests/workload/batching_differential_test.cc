// Differential test for the stream batcher's zero-window pass-through
// (in the style of tests/sim/event_queue_equivalence_test.cc): a
// StripedServer with batching enabled at batch_window = 0 must be
// BIT-IDENTICAL to a server with no batcher at all — the same fragment
// lands on the same disk in the same interval for every event of the
// run, and every workload/scheduler/server counter matches exactly.
// That proves batching is a strict opt-in extension: the pass-through
// inserts no timers, no reordering, and no extra events.
//
// Each seed drives the full workload surface through both servers —
// Poisson open arrivals, a flash crowd, VCR scan-then-play sessions
// (fast-forward replicas) and pause/resume re-requests — so follow-up
// requests issued from completion callbacks cross the batcher too.
//
// The seed count defaults to 20 (the acceptance bar) and is widened by
// the CI sweep through STAGGER_BATCH_SEEDS.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/fast_forward.h"
#include "disk/disk_array.h"
#include "server/striped_server.h"
#include "sim/simulator.h"
#include "storage/catalog.h"
#include "tertiary/tertiary_manager.h"
#include "workload/open_arrivals.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Micros(604800);

std::vector<uint64_t> MakeSeeds() {
  int64_t seeds = 20;
  if (const char* env = std::getenv("STAGGER_BATCH_SEEDS")) {
    seeds = std::max<int64_t>(1, std::atoll(env));
  }
  std::vector<uint64_t> cases;
  for (int64_t s = 1; s <= seeds; ++s) {
    cases.push_back(static_cast<uint64_t>(s));
  }
  return cases;
}

/// Everything observable about one run, rendered comparably.
struct Fingerprint {
  std::string schedule;  ///< every (interval, object, subobject, fragment, disk)
  int64_t requests = 0;
  int64_t completed = 0;
  int64_t interrupted = 0;
  int64_t completed_in_window = 0;
  int64_t vcr_scans = 0;
  int64_t vcr_resumes = 0;
  int64_t flash_redirects = 0;
  int64_t latency_count = 0;
  double latency_mean = 0.0;
  double admission_p50 = 0.0;
  double admission_p99 = 0.0;
  int64_t sched_requested = 0;
  int64_t sched_admitted = 0;
  int64_t sched_completed = 0;
  int64_t hiccups = 0;
  int64_t server_requests = 0;
  int64_t resident_hits = 0;
};

Fingerprint RunOnce(uint64_t seed, bool with_batcher) {
  Fingerprint fp;
  Simulator sim;
  Catalog catalog = Catalog::Uniform(24, 100, Bandwidth::Mbps(100));
  auto replicas = AddFastForwardReplicas(&catalog, 16);
  EXPECT_TRUE(replicas.ok());

  auto disks = DiskArray::Create(50, DiskParameters::Evaluation());
  EXPECT_TRUE(disks.ok());
  TertiaryManager tertiary(&sim, TertiaryDevice(TertiaryParameters{}));

  std::ostringstream schedule;
  StripedConfig config;
  config.stride = 5;
  config.interval = kInterval;
  config.preload_objects = catalog.size();
  config.batch = with_batcher;
  config.batch_window = SimTime::Zero();  // the pass-through under test
  config.read_observer = [&schedule](int64_t interval, ObjectId object,
                                     int64_t subobject, int32_t fragment,
                                     int32_t disk) {
    schedule << interval << ':' << object << '.' << subobject << '/'
             << fragment << '@' << disk << '\n';
  };
  auto server =
      StripedServer::Create(&sim, &catalog, &*disks, &tertiary, config);
  EXPECT_TRUE(server.ok()) << server.status();

  auto popularity = TruncatedGeometric::FromMean(24, 6);
  EXPECT_TRUE(popularity.ok());

  OpenArrivalsConfig oc;
  oc.mean_interarrival = SimTime::Seconds(15);
  oc.seed = seed;
  oc.diurnal_amplitude = 0.3;
  oc.diurnal_period = SimTime::Hours(1);
  FlashCrowd crowd;
  crowd.start = SimTime::Minutes(20);
  crowd.duration = SimTime::Minutes(10);
  crowd.object = 0;
  crowd.hot_fraction = 0.8;
  crowd.rate_multiplier = 3.0;
  oc.flash_crowds.push_back(crowd);
  oc.scan_probability = 0.3;
  oc.pause_probability = 0.2;
  oc.mean_pause = SimTime::Minutes(2);
  oc.scan_replica = *replicas;
  oc.measure_start = SimTime::Minutes(10);
  OpenArrivals arrivals(&sim, server->get(), &*popularity, std::move(oc));
  arrivals.Start();
  sim.RunUntil(SimTime::Minutes(90));
  arrivals.Stop();
  sim.RunUntil(SimTime::Minutes(120));  // drain in-flight displays

  fp.schedule = schedule.str();
  fp.requests = arrivals.requests_issued();
  fp.completed = arrivals.displays_completed();
  fp.interrupted = arrivals.displays_interrupted();
  fp.completed_in_window = arrivals.completed_in_window();
  fp.vcr_scans = arrivals.vcr_scans();
  fp.vcr_resumes = arrivals.vcr_resumes();
  fp.flash_redirects = arrivals.flash_redirects();
  fp.latency_count = arrivals.startup_latency_sec().count();
  fp.latency_mean = arrivals.startup_latency_sec().mean();
  fp.admission_p50 = arrivals.admission_latency_sec().p50();
  fp.admission_p99 = arrivals.admission_latency_sec().p99();
  const SchedulerMetrics& sm = (*server)->scheduler_metrics();
  fp.sched_requested = sm.displays_requested;
  fp.sched_admitted = sm.displays_admitted;
  fp.sched_completed = sm.displays_completed;
  fp.hiccups = sm.hiccups;
  fp.server_requests = (*server)->metrics().requests;
  fp.resident_hits = (*server)->metrics().resident_hits;

  // The window-0 batcher must leave nothing open once drained.
  if (const StreamBatcher* batcher = (*server)->batcher()) {
    EXPECT_EQ(batcher->open_batches(), 0);
    EXPECT_EQ(batcher->metrics().requests, fp.requests);
    EXPECT_EQ(batcher->metrics().physical_streams, fp.requests);
    EXPECT_EQ(batcher->metrics().window_joins, 0);
    EXPECT_EQ(batcher->metrics().piggyback_joins, 0);
  }
  return fp;
}

class BatchingDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchingDifferentialTest, WindowZeroIsBitIdenticalToNoBatcher) {
  const uint64_t seed = GetParam();
  const Fingerprint batched = RunOnce(seed, /*with_batcher=*/true);
  const Fingerprint plain = RunOnce(seed, /*with_batcher=*/false);

  // The whole run produced work (the comparison is not vacuous).
  ASSERT_GT(plain.requests, 0);
  ASSERT_GT(plain.completed, 0);
  ASSERT_FALSE(plain.schedule.empty());

  EXPECT_EQ(batched.schedule, plain.schedule);
  EXPECT_EQ(batched.requests, plain.requests);
  EXPECT_EQ(batched.completed, plain.completed);
  EXPECT_EQ(batched.interrupted, plain.interrupted);
  EXPECT_EQ(batched.completed_in_window, plain.completed_in_window);
  EXPECT_EQ(batched.vcr_scans, plain.vcr_scans);
  EXPECT_EQ(batched.vcr_resumes, plain.vcr_resumes);
  EXPECT_EQ(batched.flash_redirects, plain.flash_redirects);
  EXPECT_EQ(batched.latency_count, plain.latency_count);
  EXPECT_EQ(batched.latency_mean, plain.latency_mean);  // bit-exact
  EXPECT_EQ(batched.admission_p50, plain.admission_p50);
  EXPECT_EQ(batched.admission_p99, plain.admission_p99);
  EXPECT_EQ(batched.sched_requested, plain.sched_requested);
  EXPECT_EQ(batched.sched_admitted, plain.sched_admitted);
  EXPECT_EQ(batched.sched_completed, plain.sched_completed);
  EXPECT_EQ(batched.hiccups, 0);
  EXPECT_EQ(plain.hiccups, 0);
  EXPECT_EQ(batched.server_requests, plain.server_requests);
  EXPECT_EQ(batched.resident_hits, plain.resident_hits);
}

std::string CaseName(const ::testing::TestParamInfo<uint64_t>& info) {
  std::ostringstream os;
  os << "s" << info.param;
  return os.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchingDifferentialTest,
                         ::testing::ValuesIn(MakeSeeds()), CaseName);

}  // namespace
}  // namespace stagger
