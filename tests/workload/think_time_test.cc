// Think-time and replication features added around the paper's
// zero-think-time stress workload.

#include <gtest/gtest.h>

#include <memory>

#include "server/experiment.h"
#include "sim/simulator.h"
#include "util/distributions.h"
#include "workload/display_station.h"

namespace stagger {
namespace {

class InstantService : public MediaService {
 public:
  explicit InstantService(Simulator* sim) : sim_(sim) {}
  Status RequestDisplay(ObjectId, StartedFn on_started,
                        CompletedFn on_completed,
                        InterruptedFn /*on_interrupted*/ = nullptr) override {
    ++requests_;
    if (on_started) on_started(SimTime::Zero());
    sim_->ScheduleAfter(SimTime::Seconds(10), [done = std::move(on_completed)] {
      if (done) done();
    });
    return Status::OK();
  }
  int64_t requests_ = 0;

 private:
  Simulator* sim_;
};

TEST(ThinkTimeTest, ZeroThinkTimeMaximizesRequestRate) {
  Simulator sim;
  InstantService service(&sim);
  auto dist = UniformDistribution::Create(10);
  ASSERT_TRUE(dist.ok());
  StationPool pool(&sim, &service, &*dist, 1, 1);
  pool.Start();
  sim.RunUntil(SimTime::Seconds(100));
  // 10 completed + 1 outstanding.
  EXPECT_EQ(service.requests_, 11);
}

TEST(ThinkTimeTest, ThinkTimeSlowsCycle) {
  Simulator sim;
  InstantService service(&sim);
  auto dist = UniformDistribution::Create(10);
  ASSERT_TRUE(dist.ok());
  StationPool pool(&sim, &service, &*dist, 1, 1);
  pool.SetMeanThinkTime(SimTime::Seconds(10));  // ~20 s per cycle
  pool.Start();
  sim.RunUntil(SimTime::Seconds(1000));
  // Expected cycles ~ 1000 / 20 = 50; allow generous stochastic slack.
  EXPECT_GT(service.requests_, 30);
  EXPECT_LT(service.requests_, 75);
}

TEST(ThinkTimeTest, ThinkTimeDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    InstantService service(&sim);
    auto dist = UniformDistribution::Create(10);
    StationPool pool(&sim, &service, &*dist, 2, seed);
    pool.SetMeanThinkTime(SimTime::Seconds(5));
    pool.Start();
    sim.RunUntil(SimTime::Minutes(20));
    return service.requests_;
  };
  EXPECT_EQ(run(3), run(3));
}

TEST(RunReplicatedTest, AggregatesAcrossSeeds) {
  ExperimentConfig cfg;
  cfg.scheme = Scheme::kSimpleStriping;
  cfg.num_disks = 50;
  cfg.num_objects = 60;
  cfg.subobjects_per_object = 150;
  cfg.preload_objects = 12;
  cfg.stations = 12;
  cfg.geometric_mean = 4.0;
  cfg.warmup = SimTime::Minutes(15);
  cfg.measure = SimTime::Hours(1);
  auto result = RunReplicated(cfg, 3);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->replications, 3);
  EXPECT_EQ(result->displays_per_hour.count(), 3);
  EXPECT_GT(result->displays_per_hour.mean(), 0.0);
  // Different seeds give (slightly) different runs, so across-run
  // spread exists but is small relative to the mean.
  EXPECT_LT(result->displays_per_hour.stddev(),
            0.25 * result->displays_per_hour.mean());
}

TEST(RunReplicatedTest, RejectsZeroReplications) {
  ExperimentConfig cfg;
  EXPECT_FALSE(RunReplicated(cfg, 0).ok());
}

TEST(ThinkTimeTest, ExperimentThinkTimeReducesThroughput) {
  ExperimentConfig cfg;
  cfg.scheme = Scheme::kSimpleStriping;
  cfg.num_disks = 50;
  cfg.num_objects = 60;
  cfg.subobjects_per_object = 150;
  cfg.preload_objects = 12;
  cfg.stations = 30;
  cfg.geometric_mean = 4.0;
  cfg.warmup = SimTime::Minutes(15);
  cfg.measure = SimTime::Hours(2);
  auto busy = RunExperiment(cfg);
  cfg.mean_think_time = SimTime::Minutes(5);  // >> display time
  auto idle = RunExperiment(cfg);
  ASSERT_TRUE(busy.ok() && idle.ok());
  EXPECT_LT(idle->displays_per_hour, busy->displays_per_hour);
}

}  // namespace
}  // namespace stagger
