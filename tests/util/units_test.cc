#include "util/units.h"

#include <gtest/gtest.h>

namespace stagger {
namespace {

TEST(SimTimeTest, Factories) {
  EXPECT_EQ(SimTime::Micros(5).micros(), 5);
  EXPECT_EQ(SimTime::Millis(3).micros(), 3000);
  EXPECT_EQ(SimTime::Seconds(2.5).micros(), 2500000);
  EXPECT_EQ(SimTime::Minutes(1).micros(), 60000000);
  EXPECT_EQ(SimTime::Hours(1).seconds(), 3600.0);
  EXPECT_EQ(SimTime::Zero().micros(), 0);
}

TEST(SimTimeTest, Arithmetic) {
  SimTime a = SimTime::Seconds(1);
  SimTime b = SimTime::Millis(500);
  EXPECT_EQ((a + b).micros(), 1500000);
  EXPECT_EQ((a - b).micros(), 500000);
  EXPECT_EQ((b * 4).seconds(), 2.0);
  a += b;
  EXPECT_EQ(a.micros(), 1500000);
  a -= b;
  EXPECT_EQ(a.micros(), 1000000);
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(SimTime::Millis(1), SimTime::Millis(2));
  EXPECT_EQ(SimTime::Seconds(1), SimTime::Millis(1000));
  EXPECT_GE(SimTime::Max(), SimTime::Hours(1000000));
}

TEST(SimTimeTest, DivFloor) {
  EXPECT_EQ(SimTime::Seconds(10).DivFloor(SimTime::Seconds(3)), 3);
  EXPECT_EQ(SimTime::Seconds(9).DivFloor(SimTime::Seconds(3)), 3);
  EXPECT_EQ(SimTime::Micros(-1).DivFloor(SimTime::Seconds(1)), -1);
}

TEST(SimTimeTest, ToStringPicksUnits) {
  EXPECT_EQ(SimTime::Seconds(2).ToString(), "2s");
  EXPECT_EQ(SimTime::Millis(250).ToString(), "250ms");
  EXPECT_EQ(SimTime::Micros(7).ToString(), "7us");
}

TEST(DataSizeTest, FactoriesAndAccessors) {
  EXPECT_EQ(DataSize::Bytes(10).bytes(), 10);
  EXPECT_EQ(DataSize::KB(2).bytes(), 2000);
  EXPECT_EQ(DataSize::MB(1.512).bytes(), 1512000);
  EXPECT_EQ(DataSize::GB(4.5).bytes(), 4500000000LL);
  EXPECT_DOUBLE_EQ(DataSize::MB(1).megabits(), 8.0);
}

TEST(DataSizeTest, Arithmetic) {
  EXPECT_EQ((DataSize::MB(1) + DataSize::MB(2)).megabytes(), 3.0);
  EXPECT_EQ((DataSize::MB(3) - DataSize::MB(2)).megabytes(), 1.0);
  EXPECT_EQ((DataSize::MB(1.5) * 2).bytes(), 3000000);
}

TEST(BandwidthTest, MbpsRoundTrips) {
  EXPECT_DOUBLE_EQ(Bandwidth::Mbps(20).bits_per_sec(), 20e6);
  EXPECT_DOUBLE_EQ(Bandwidth::Mbps(20).mbps(), 20.0);
  EXPECT_DOUBLE_EQ(Bandwidth::Mbps(100) / Bandwidth::Mbps(20), 5.0);
}

TEST(TransferTimeTest, PaperCylinderRead) {
  // A 1.512 MB cylinder at an effective 20 mbps takes 604.8 ms — the
  // paper's time interval (3000 of them = the 1814 s display time).
  SimTime t = TransferTime(DataSize::MB(1.512), Bandwidth::Mbps(20));
  EXPECT_EQ(t.micros(), 604800);
  EXPECT_NEAR((t * 3000).seconds(), 1814.0, 0.5);
}

TEST(TransferTimeTest, SabreCylinderReadIs250Ms) {
  // Section 3.1: 756000-byte cylinder at 24.19 mbps ≈ 250 ms.
  SimTime t = TransferTime(DataSize::Bytes(756000), Bandwidth::Mbps(24.19));
  EXPECT_NEAR(t.millis(), 250.0, 0.5);
}

TEST(TransferTimeTest, RoundsUpToWholeMicroseconds) {
  // 1 byte at 8 Gbit/s is 1 ns; transfers must never finish early.
  SimTime t = TransferTime(DataSize::Bytes(1), Bandwidth::BitsPerSec(8e9));
  EXPECT_EQ(t.micros(), 1);
}

TEST(DataMovedTest, Inverse) {
  DataSize moved = DataMoved(Bandwidth::Mbps(40), SimTime::Seconds(2));
  EXPECT_EQ(moved.bytes(), 10000000);
}

TEST(CeilDivTest, Basics) {
  EXPECT_EQ(CeilDiv(10, 5), 2);
  EXPECT_EQ(CeilDiv(11, 5), 3);
  EXPECT_EQ(CeilDiv(1, 5), 1);
  EXPECT_EQ(CeilDiv(0, 5), 0);
}

TEST(PositiveModTest, NegativeOperands) {
  EXPECT_EQ(PositiveMod(-1, 10), 9);
  EXPECT_EQ(PositiveMod(-10, 10), 0);
  EXPECT_EQ(PositiveMod(-11, 10), 9);
  EXPECT_EQ(PositiveMod(23, 10), 3);
}

}  // namespace
}  // namespace stagger
