#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace stagger {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedApproximatelyUniform) {
  Rng rng(42);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);  // ~5 sigma
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.NextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    double x = rng.NextExponential(5.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 5.0, 0.15);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // Child differs from a parent clone's continuation.
  Rng clone(23);
  (void)clone.Next();  // parent advanced once by Fork
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.Next() != clone.Next()) ++differing;
  }
  EXPECT_GT(differing, 95);
}

}  // namespace
}  // namespace stagger
