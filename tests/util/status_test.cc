#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "util/result.h"

namespace stagger {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, MessagePreserved) {
  Status st = Status::InvalidArgument("stride must be in [1, D]");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "stride must be in [1, D]");
  EXPECT_EQ(st.ToString(), "invalid-argument: stride must be in [1, D]");
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  Status st = Status::NotFound("object 7");
  Status copy = st;
  EXPECT_EQ(copy, st);
  EXPECT_TRUE(copy.IsNotFound());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    STAGGER_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsInternal());

  auto succeeds = [] { return Status::OK(); };
  auto wrapper2 = [&]() -> Status {
    STAGGER_RETURN_NOT_OK(succeeds());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_TRUE(wrapper2().IsAlreadyExists());
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "resource-exhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 9);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto provider = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::Internal("no value");
  };
  auto consumer = [&](bool ok) -> Result<int> {
    STAGGER_ASSIGN_OR_RETURN(int v, provider(ok));
    return v * 2;
  };
  EXPECT_EQ(*consumer(true), 10);
  EXPECT_TRUE(consumer(false).status().IsInternal());
}

}  // namespace
}  // namespace stagger
