#include "util/check.h"

#include <gtest/gtest.h>

namespace stagger {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kWarning); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotEmit) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  STAGGER_LOG(Info) << "should not appear";
  STAGGER_LOG(Error) << "should appear";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_NE(err.find("should appear"), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesSilently) {
  ::testing::internal::CaptureStderr();
  STAGGER_CHECK(1 + 1 == 2) << "never evaluated";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, ComparisonMacros) {
  STAGGER_CHECK_EQ(2, 2);
  STAGGER_CHECK_NE(2, 3);
  STAGGER_CHECK_LT(2, 3);
  STAGGER_CHECK_LE(3, 3);
  STAGGER_CHECK_GT(4, 3);
  STAGGER_CHECK_GE(4, 4);
}

using LoggingDeathTest = LoggingTest;

TEST_F(LoggingDeathTest, CheckFailureAbortsWithMessage) {
  EXPECT_DEATH(STAGGER_CHECK(false) << "context 123",
               "Check failed: false.*context 123");
}

TEST_F(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH(STAGGER_LOG(Fatal) << "fatal message", "fatal message");
}

}  // namespace
}  // namespace stagger
