#include "util/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace stagger {
namespace {

TEST(AliasSamplerTest, RejectsBadWeights) {
  EXPECT_FALSE(AliasSampler::Create({}).ok());
  EXPECT_FALSE(AliasSampler::Create({0.0, 0.0}).ok());
  EXPECT_FALSE(AliasSampler::Create({1.0, -0.5}).ok());
  EXPECT_FALSE(AliasSampler::Create({1.0, std::nan("")}).ok());
}

TEST(AliasSamplerTest, MatchesWeights) {
  auto sampler = AliasSampler::Create({1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(sampler.ok());
  Rng rng(5);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<size_t>(sampler->Sample(&rng))];
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(counts[static_cast<size_t>(i)] / static_cast<double>(kDraws),
                (i + 1) / 10.0, 0.01);
  }
}

TEST(AliasSamplerTest, ZeroWeightOutcomeNeverSampled) {
  auto sampler = AliasSampler::Create({1.0, 0.0, 1.0});
  ASSERT_TRUE(sampler.ok());
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(sampler->Sample(&rng), 1);
  }
}

TEST(TruncatedGeometricTest, RejectsBadParameters) {
  EXPECT_FALSE(TruncatedGeometric::FromMean(0, 10).ok());
  EXPECT_FALSE(TruncatedGeometric::FromMean(10, 0).ok());
  EXPECT_FALSE(TruncatedGeometric::FromMean(10, -1).ok());
  EXPECT_FALSE(TruncatedGeometric::FromP(10, 0.0).ok());
  EXPECT_FALSE(TruncatedGeometric::FromP(10, 1.5).ok());
}

TEST(TruncatedGeometricTest, ProbabilitiesSumToOne) {
  auto d = TruncatedGeometric::FromMean(2000, 10);
  ASSERT_TRUE(d.ok());
  double sum = 0;
  for (int64_t i = 0; i < d->num_outcomes(); ++i) sum += d->Probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TruncatedGeometricTest, MonotoneDecreasing) {
  auto d = TruncatedGeometric::FromMean(100, 20);
  ASSERT_TRUE(d.ok());
  for (int64_t i = 1; i < 100; ++i) {
    EXPECT_LT(d->Probability(i), d->Probability(i - 1));
  }
}

TEST(TruncatedGeometricTest, MeanParameterSetsP) {
  auto d = TruncatedGeometric::FromMean(2000, 10);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->p(), 1.0 / 11.0, 1e-12);
}

// The paper: means 10 / 20 / 43.5 reference "approximately 100, 200,
// and 400 unique objects".  Check the 99.99% working set.
TEST(TruncatedGeometricTest, PaperWorkingSetSizes) {
  const struct {
    double mean;
    int64_t lo, hi;
  } cases[] = {{10.0, 70, 110}, {20.0, 150, 210}, {43.5, 330, 440}};
  for (const auto& c : cases) {
    auto d = TruncatedGeometric::FromMean(2000, c.mean);
    ASSERT_TRUE(d.ok());
    const int64_t ws = d->WorkingSetSize(0.9999);
    EXPECT_GE(ws, c.lo) << "mean " << c.mean;
    EXPECT_LE(ws, c.hi) << "mean " << c.mean;
  }
}

TEST(TruncatedGeometricTest, SampleMatchesProbability) {
  auto d = TruncatedGeometric::FromMean(50, 5);
  ASSERT_TRUE(d.ok());
  Rng rng(99);
  std::vector<int64_t> counts(50, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[static_cast<size_t>(d->Sample(&rng))];
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(counts[static_cast<size_t>(i)] / static_cast<double>(kDraws),
                d->Probability(i), 0.005);
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  auto d = ZipfDistribution::Create(10, 0.0);
  ASSERT_TRUE(d.ok());
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(d->Probability(i), 0.1, 1e-12);
  }
}

TEST(ZipfTest, ClassicRatios) {
  auto d = ZipfDistribution::Create(100, 1.0);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->Probability(0) / d->Probability(1), 2.0, 1e-9);
  EXPECT_NEAR(d->Probability(0) / d->Probability(9), 10.0, 1e-9);
}

TEST(UniformTest, SamplesEverything) {
  auto d = UniformDistribution::Create(5);
  ASSERT_TRUE(d.ok());
  Rng rng(1);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[static_cast<size_t>(d->Sample(&rng))];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(WorkingSetSizeTest, FullMassIsWholeSupport) {
  auto d = UniformDistribution::Create(10);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->WorkingSetSize(1.0), 10);
  EXPECT_EQ(d->WorkingSetSize(0.05), 1);
  EXPECT_EQ(d->WorkingSetSize(0.55), 6);
}

}  // namespace
}  // namespace stagger
