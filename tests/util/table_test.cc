#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace stagger {
namespace {

TEST(TableTest, FormatsNumbers) {
  EXPECT_EQ(Table::Format(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Format(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::Format(static_cast<int64_t>(42)), "42");
  EXPECT_EQ(Table::Format(-7.5, 1), "-7.5");
  EXPECT_EQ(Table::Format("text"), "text");
}

TEST(TableTest, AlignedOutputContainsAllCells) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRowValues("beta", 2.5);
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRowValues(static_cast<int64_t>(1), static_cast<int64_t>(2));
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableDeathTest, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "Check failed");
}

}  // namespace
}  // namespace stagger
