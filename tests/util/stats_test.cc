#include "util/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace stagger {
namespace {

// Naive sort-based oracle: same closest-ranks linear interpolation,
// computed from scratch on a fresh copy each call.
double OracleQuantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples.size() - 1);
  const size_t lower = static_cast<size_t>(pos);
  if (lower + 1 >= samples.size()) return samples.back();
  const double frac = pos - static_cast<double>(lower);
  return samples[lower] + frac * (samples[lower + 1] - samples[lower]);
}

TEST(StreamingStatsTest, EmptyDefaults) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StreamingStatsTest, BasicMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(StreamingStatsTest, SingleSampleVarianceZero) {
  StreamingStats s;
  s.Add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.0);
}

TEST(StreamingStatsTest, MergeEqualsCombinedStream) {
  StreamingStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(i) * 10;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, MergeWithEmpty) {
  StreamingStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  StreamingStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(StreamingStatsTest, ResetClears) {
  StreamingStats s;
  s.Add(5.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, CountsAndMean) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 10; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.count(), 10);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(HistogramTest, QuantilesInterpolate) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.95), 95.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.5);
  EXPECT_NEAR(h.Quantile(1.0), 100.0, 1.5);
}

TEST(HistogramTest, OverflowAndUnderflowBuckets) {
  Histogram h(0, 10, 5);
  h.Add(-5.0);
  h.Add(100.0);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.min(), -5.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 0.0);   // underflow reported at lo
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 10.0);  // overflow reported at hi
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h(0, 1, 4);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(QuantileTrackerTest, EmptyIsZero) {
  QuantileTracker q;
  EXPECT_EQ(q.count(), 0);
  EXPECT_EQ(q.Quantile(0.5), 0.0);
  EXPECT_EQ(q.p99(), 0.0);
}

TEST(QuantileTrackerTest, SingleSampleEveryQuantile) {
  QuantileTracker q;
  q.Add(42.0);
  for (double p : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(q.Quantile(p), 42.0) << "q=" << p;
  }
  EXPECT_EQ(q.count(), 1);
}

TEST(QuantileTrackerTest, MatchesSortOracleOnRandomStreams) {
  const double probes[] = {0.0, 0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0};
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    QuantileTracker tracker;
    std::vector<double> samples;
    const int n = 1 + static_cast<int>(rng.NextBounded(2000));
    for (int i = 0; i < n; ++i) {
      const double x = rng.NextDouble() * 1e3 - 500.0;
      tracker.Add(x);
      samples.push_back(x);
    }
    for (double p : probes) {
      EXPECT_DOUBLE_EQ(tracker.Quantile(p), OracleQuantile(samples, p))
          << "seed=" << seed << " n=" << n << " q=" << p;
    }
  }
}

TEST(QuantileTrackerTest, DuplicateHeavyInput) {
  // 90% of the stream is the same value; percentiles must land on it
  // exactly, and the tail must still be found.
  QuantileTracker tracker;
  std::vector<double> samples;
  for (int i = 0; i < 900; ++i) {
    tracker.Add(7.0);
    samples.push_back(7.0);
  }
  for (int i = 0; i < 100; ++i) {
    tracker.Add(100.0 + i);
    samples.push_back(100.0 + i);
  }
  EXPECT_DOUBLE_EQ(tracker.p50(), 7.0);
  EXPECT_DOUBLE_EQ(tracker.Quantile(0.89), 7.0);
  for (double p : {0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(tracker.Quantile(p), OracleQuantile(samples, p));
  }
  EXPECT_EQ(tracker.max(), 199.0);
}

TEST(QuantileTrackerTest, InterleavedAddAndQueryStaysExact) {
  // Queries between Adds force repeated lazy re-sorts; the answer must
  // track the oracle at every step.
  QuantileTracker tracker;
  std::vector<double> samples;
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextDouble() * 10.0;
    tracker.Add(x);
    samples.push_back(x);
    if (i % 37 == 0) {
      EXPECT_DOUBLE_EQ(tracker.p95(), OracleQuantile(samples, 0.95));
    }
  }
  EXPECT_DOUBLE_EQ(tracker.p50(), OracleQuantile(samples, 0.5));
}

TEST(QuantileTrackerTest, MergeEqualsCombinedStream) {
  QuantileTracker a, b;
  std::vector<double> all;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.NextDouble() * 50.0;
    (i % 3 == 0 ? a : b).Add(x);
    all.push_back(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 400);
  for (double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.Quantile(p), OracleQuantile(all, p));
  }
}

TEST(QuantileTrackerTest, ResetClears) {
  QuantileTracker q;
  q.Add(1.0);
  q.Add(2.0);
  q.Reset();
  EXPECT_EQ(q.count(), 0);
  EXPECT_EQ(q.p50(), 0.0);
  q.Add(5.0);
  EXPECT_DOUBLE_EQ(q.p50(), 5.0);
}

TEST(QuantileTrackerTest, ClampsOutOfRangeQuantiles) {
  QuantileTracker q;
  q.Add(1.0);
  q.Add(9.0);
  EXPECT_DOUBLE_EQ(q.Quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(1.5), 9.0);
}

TEST(TimeWeightedTest, ConstantSignal) {
  TimeWeighted tw;
  tw.Set(SimTime::Seconds(0), 4.0);
  EXPECT_DOUBLE_EQ(tw.Average(SimTime::Seconds(10)), 4.0);
}

TEST(TimeWeightedTest, StepSignal) {
  TimeWeighted tw;
  tw.Set(SimTime::Seconds(0), 0.0);
  tw.Set(SimTime::Seconds(5), 10.0);
  // 5 s at 0, 5 s at 10 -> average 5.
  EXPECT_DOUBLE_EQ(tw.Average(SimTime::Seconds(10)), 5.0);
  EXPECT_DOUBLE_EQ(tw.current(), 10.0);
}

TEST(TimeWeightedTest, BeforeFirstSetIsZero) {
  TimeWeighted tw;
  EXPECT_EQ(tw.Average(SimTime::Seconds(5)), 0.0);
}

TEST(TimeWeightedTest, RepeatedSetsSameTime) {
  TimeWeighted tw;
  tw.Set(SimTime::Seconds(0), 1.0);
  tw.Set(SimTime::Seconds(0), 3.0);
  EXPECT_DOUBLE_EQ(tw.Average(SimTime::Seconds(2)), 3.0);
}

}  // namespace
}  // namespace stagger
