#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace stagger {
namespace {

TEST(StreamingStatsTest, EmptyDefaults) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StreamingStatsTest, BasicMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(StreamingStatsTest, SingleSampleVarianceZero) {
  StreamingStats s;
  s.Add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.0);
}

TEST(StreamingStatsTest, MergeEqualsCombinedStream) {
  StreamingStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(i) * 10;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, MergeWithEmpty) {
  StreamingStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  StreamingStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(StreamingStatsTest, ResetClears) {
  StreamingStats s;
  s.Add(5.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, CountsAndMean) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 10; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.count(), 10);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(HistogramTest, QuantilesInterpolate) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.95), 95.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.5);
  EXPECT_NEAR(h.Quantile(1.0), 100.0, 1.5);
}

TEST(HistogramTest, OverflowAndUnderflowBuckets) {
  Histogram h(0, 10, 5);
  h.Add(-5.0);
  h.Add(100.0);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.min(), -5.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 0.0);   // underflow reported at lo
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 10.0);  // overflow reported at hi
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h(0, 1, 4);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(TimeWeightedTest, ConstantSignal) {
  TimeWeighted tw;
  tw.Set(SimTime::Seconds(0), 4.0);
  EXPECT_DOUBLE_EQ(tw.Average(SimTime::Seconds(10)), 4.0);
}

TEST(TimeWeightedTest, StepSignal) {
  TimeWeighted tw;
  tw.Set(SimTime::Seconds(0), 0.0);
  tw.Set(SimTime::Seconds(5), 10.0);
  // 5 s at 0, 5 s at 10 -> average 5.
  EXPECT_DOUBLE_EQ(tw.Average(SimTime::Seconds(10)), 5.0);
  EXPECT_DOUBLE_EQ(tw.current(), 10.0);
}

TEST(TimeWeightedTest, BeforeFirstSetIsZero) {
  TimeWeighted tw;
  EXPECT_EQ(tw.Average(SimTime::Seconds(5)), 0.0);
}

TEST(TimeWeightedTest, RepeatedSetsSameTime) {
  TimeWeighted tw;
  tw.Set(SimTime::Seconds(0), 1.0);
  tw.Set(SimTime::Seconds(0), 3.0);
  EXPECT_DOUBLE_EQ(tw.Average(SimTime::Seconds(2)), 3.0);
}

}  // namespace
}  // namespace stagger
