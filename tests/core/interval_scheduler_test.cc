#include "core/interval_scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "disk/disk_array.h"
#include "sim/simulator.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Millis(605);

class SchedulerTest : public ::testing::Test {
 protected:
  void Init(int32_t num_disks, int32_t stride,
            AdmissionPolicy policy = AdmissionPolicy::kContiguous,
            bool coalesce = false, int64_t buffer_cap = 0,
            bool backfill = true) {
    auto disks = DiskArray::Create(num_disks, DiskParameters::Evaluation());
    ASSERT_TRUE(disks.ok());
    disks_ = std::make_unique<DiskArray>(*std::move(disks));
    SchedulerConfig config;
    config.stride = stride;
    config.interval = kInterval;
    config.policy = policy;
    config.coalesce = coalesce;
    config.buffer_capacity_fragments = buffer_cap;
    config.allow_backfill = backfill;
    auto sched = IntervalScheduler::Create(&sim_, disks_.get(), config);
    ASSERT_TRUE(sched.ok()) << sched.status();
    sched_ = *std::move(sched);
  }

  struct Probe {
    bool started = false;
    bool completed = false;
    SimTime latency;
    SimTime completed_at;
  };

  RequestId Request(ObjectId object, int32_t start_disk, int32_t degree,
                    int64_t subobjects, Probe* probe) {
    DisplayRequest req;
    req.object = object;
    req.start_disk = start_disk;
    req.degree = degree;
    req.num_subobjects = subobjects;
    req.on_started = [this, probe](SimTime latency) {
      probe->started = true;
      probe->latency = latency;
    };
    req.on_completed = [this, probe] {
      probe->completed = true;
      probe->completed_at = sim_.Now();
    };
    auto id = sched_->Submit(std::move(req));
    STAGGER_CHECK(id.ok()) << id.status();
    return *id;
  }

  Simulator sim_;
  std::unique_ptr<DiskArray> disks_;
  std::unique_ptr<IntervalScheduler> sched_;
};

TEST_F(SchedulerTest, SubmitValidatesRequests) {
  Init(10, 1);
  DisplayRequest bad;
  bad.degree = 0;
  bad.num_subobjects = 5;
  EXPECT_TRUE(sched_->Submit(bad).status().IsInvalidArgument());
  bad.degree = 11;
  EXPECT_TRUE(sched_->Submit(bad).status().IsInvalidArgument());
  bad.degree = 2;
  bad.num_subobjects = 0;
  EXPECT_TRUE(sched_->Submit(bad).status().IsInvalidArgument());
  bad.num_subobjects = 5;
  bad.start_disk = 10;
  EXPECT_TRUE(sched_->Submit(bad).status().IsInvalidArgument());
}

TEST_F(SchedulerTest, CreateValidatesConfig) {
  auto disks = DiskArray::Create(4, DiskParameters::Evaluation());
  SchedulerConfig config;
  config.stride = 0;
  EXPECT_FALSE(IntervalScheduler::Create(&sim_, &*disks, config).ok());
  config.stride = 1;
  config.interval = SimTime::Zero();
  EXPECT_FALSE(IntervalScheduler::Create(&sim_, &*disks, config).ok());
  config.interval = kInterval;
  config.fragmented_lookahead = -1;
  EXPECT_FALSE(IntervalScheduler::Create(&sim_, &*disks, config).ok());
}

TEST_F(SchedulerTest, SingleDisplayDeliversAllSubobjects) {
  Init(10, 1);
  Probe probe;
  Request(0, 0, 3, 20, &probe);
  sim_.RunUntil(SimTime::Minutes(2));
  EXPECT_TRUE(probe.started);
  EXPECT_TRUE(probe.completed);
  EXPECT_EQ(probe.latency, SimTime::Zero());  // aligned run free at t=0
  // Delivery spans intervals 0..19; completion at interval 19's tick.
  EXPECT_EQ(probe.completed_at, kInterval * 19);
  EXPECT_EQ(sched_->metrics().displays_completed, 1);
  EXPECT_EQ(sched_->metrics().hiccups, 0);
  EXPECT_EQ(sched_->active_streams(), 0u);
  EXPECT_EQ(sched_->idle_virtual_disks(), 10);
}

TEST_F(SchedulerTest, DiskUtilizationMatchesLoad) {
  Init(10, 1);
  Probe probe;
  Request(0, 0, 5, 100, &probe);
  sim_.RunUntil(kInterval * 100);
  EXPECT_TRUE(probe.completed);
  // 5 of 10 disks busy for 100 of ~100 intervals.
  EXPECT_NEAR(disks_->MeanUtilization(), 0.5, 0.02);
}

// Figure 3: three cluster-aligned displays on 9 disks (M = 3, k = 3)
// run concurrently, one cluster each per interval.
TEST_F(SchedulerTest, Figure3ThreeConcurrentDisplays) {
  Init(9, 3);
  Probe x, y, z;
  Request(0, 0, 3, 30, &x);
  Request(1, 3, 3, 30, &y);
  Request(2, 6, 3, 30, &z);
  sim_.RunUntil(kInterval * 2);
  // All three admitted immediately: every disk busy, no idle slots.
  EXPECT_EQ(sched_->active_streams(), 3u);
  EXPECT_EQ(sched_->idle_virtual_disks(), 0);
  sim_.RunUntil(SimTime::Minutes(2));
  EXPECT_TRUE(x.completed && y.completed && z.completed);
  EXPECT_EQ(x.completed_at, y.completed_at);
  EXPECT_EQ(sched_->metrics().hiccups, 0);
  EXPECT_NEAR(disks_->MeanUtilization(), 30.0 * 9 / 9 / 198, 0.05);
}

// A fourth request waits until the cluster holding its first subobject
// comes free — the simple-striping admission rule.
TEST_F(SchedulerTest, RequestWaitsForAlignedCluster) {
  Init(9, 3);
  Probe x, y, z, w;
  Request(0, 0, 3, 10, &x);
  Request(1, 3, 3, 10, &y);
  Request(2, 6, 3, 10, &z);
  sim_.RunUntil(kInterval);
  Request(3, 0, 3, 10, &w);
  sim_.RunUntil(SimTime::Minutes(2));
  EXPECT_TRUE(w.completed);
  // X's stream reads through interval 9; W admitted at interval 10,
  // having arrived during interval 1.
  EXPECT_NEAR(w.latency.seconds(), (kInterval * 9).seconds(), 0.7);
  EXPECT_EQ(sched_->metrics().hiccups, 0);
}

TEST_F(SchedulerTest, BackfillServesLaterRequests) {
  // Two degree-3 displays leave only 3 free virtual disks; a degree-4
  // head request cannot fit, but a degree-3 request behind it can.
  Init(9, 1);
  Probe a, b, blocked, later;
  Request(0, 0, 3, 50, &a);
  Request(1, 3, 3, 50, &b);
  sim_.RunUntil(kInterval);
  Request(2, 0, 4, 10, &blocked);
  Request(3, 0, 3, 10, &later);
  sim_.RunUntil(kInterval * 30);
  EXPECT_FALSE(blocked.started);
  EXPECT_TRUE(later.completed);
}

TEST_F(SchedulerTest, NoBackfillPreservesStrictFifo) {
  Init(9, 1, AdmissionPolicy::kContiguous, false, 0, /*backfill=*/false);
  Probe a, b, blocked, later;
  Request(0, 0, 3, 50, &a);
  Request(1, 3, 3, 50, &b);
  sim_.RunUntil(kInterval);
  Request(2, 0, 4, 10, &blocked);
  Request(3, 0, 3, 10, &later);
  sim_.RunUntil(kInterval * 30);
  EXPECT_FALSE(blocked.started);
  EXPECT_FALSE(later.started);  // strict FIFO: held behind the head
}

TEST_F(SchedulerTest, FragmentedAdmissionStartsEarlier) {
  // Degree-1 blockers on even disks: adjacency never available, but
  // Algorithm 1 assembles non-adjacent free disks.
  Init(8, 1, AdmissionPolicy::kFragmented);
  std::vector<Probe> blockers(4);
  for (int b = 0; b < 4; ++b) {
    Request(b, 2 * b, 1, 12, &blockers[static_cast<size_t>(b)]);
  }
  Probe x;
  Request(9, 0, 2, 12, &x);
  sim_.RunUntil(kInterval * 40);
  EXPECT_TRUE(x.completed);
  EXPECT_LT(x.latency, kInterval * 8);  // well before the blockers end
  EXPECT_GE(sched_->metrics().fragmented_admissions, 1);
  EXPECT_GT(sched_->metrics().peak_buffered_fragments, 0);
  EXPECT_EQ(sched_->metrics().hiccups, 0);
}

TEST_F(SchedulerTest, BufferCapacityGatesFragmentedAdmission) {
  // Same scenario but the buffer pool holds a single lead fragment
  // (capacity 0 would mean unlimited): multi-fragment leads are
  // rejected and the request degrades toward waiting for adjacency.
  Init(8, 1, AdmissionPolicy::kFragmented, false, /*buffer_cap=*/1);
  std::vector<Probe> blockers(4);
  for (int b = 0; b < 4; ++b) {
    Request(b, 2 * b, 1, 12, &blockers[static_cast<size_t>(b)]);
  }
  Probe x;
  Request(9, 0, 3, 12, &x);  // needs >= 2 lead fragments when fragmented
  sim_.RunUntil(kInterval * 60);
  EXPECT_TRUE(x.completed);
  EXPECT_LE(sched_->metrics().peak_buffered_fragments, 1);
  EXPECT_EQ(sched_->metrics().hiccups, 0);
}

TEST_F(SchedulerTest, CoalescingMigratesAndDrainsBuffers) {
  Init(16, 1, AdmissionPolicy::kFragmented, /*coalesce=*/true);
  std::vector<Probe> blockers(8);
  for (int b = 0; b < 8; ++b) {
    Request(b, 2 * b, 1, 20, &blockers[static_cast<size_t>(b)]);
  }
  Probe x;
  Request(9, 0, 4, 60, &x);
  sim_.RunUntil(kInterval * 100);
  EXPECT_TRUE(x.completed);
  EXPECT_GT(sched_->metrics().coalesce_migrations, 0);
  EXPECT_EQ(sched_->metrics().hiccups, 0);
  // After everything drains, no buffers remain reserved.
  EXPECT_EQ(sched_->active_streams(), 0u);
  EXPECT_EQ(sched_->idle_virtual_disks(), 16);
}

TEST_F(SchedulerTest, CancelPendingRequest) {
  Init(9, 3);
  Probe x, pending;
  Request(0, 0, 3, 30, &x);
  sim_.RunUntil(kInterval);
  RequestId id = Request(1, 0, 3, 10, &pending);
  EXPECT_EQ(sched_->pending_requests(), 1u);
  EXPECT_TRUE(sched_->Cancel(id).ok());
  EXPECT_EQ(sched_->pending_requests(), 0u);
  sim_.RunUntil(SimTime::Minutes(2));
  EXPECT_FALSE(pending.started);
  EXPECT_FALSE(pending.completed);
  EXPECT_EQ(sched_->metrics().displays_cancelled, 1);
}

TEST_F(SchedulerTest, CancelActiveStreamFreesDisks) {
  Init(9, 3);
  Probe x;
  RequestId id = Request(0, 0, 3, 100, &x);
  sim_.RunUntil(kInterval * 5);
  EXPECT_EQ(sched_->active_streams(), 1u);
  EXPECT_TRUE(sched_->Cancel(id).ok());
  EXPECT_EQ(sched_->active_streams(), 0u);
  EXPECT_EQ(sched_->idle_virtual_disks(), 9);
  sim_.RunUntil(SimTime::Minutes(2));
  EXPECT_FALSE(x.completed);
  EXPECT_TRUE(sched_->Cancel(id).IsNotFound());
}

TEST_F(SchedulerTest, SeekRestartsAtNewPosition) {
  Init(10, 1);
  Probe x;
  RequestId id = Request(0, 0, 2, 100, &x);
  sim_.RunUntil(kInterval * 10);
  // Fast-forward to subobject 80: first fragment on disk (0 + 80*1).
  auto new_id = sched_->Seek(id, /*new_start_disk=*/disks_->Wrap(80),
                             /*new_num_subobjects=*/20);
  ASSERT_TRUE(new_id.ok()) << new_id.status();
  sim_.RunUntil(SimTime::Minutes(2));
  EXPECT_TRUE(x.completed);  // callbacks carried over
  EXPECT_EQ(sched_->metrics().hiccups, 0);
  EXPECT_EQ(sched_->active_streams(), 0u);
}

TEST_F(SchedulerTest, SeekRequiresActiveStream) {
  Init(10, 1);
  Probe x;
  Request(0, 0, 2, 100, &x);
  EXPECT_TRUE(sched_->Seek(9999, 0, 10).status().IsFailedPrecondition());
}

TEST_F(SchedulerTest, StartupLatencyMetricMatchesCallback) {
  Init(9, 3);
  Probe x, w;
  Request(0, 0, 3, 10, &x);
  sim_.RunUntil(kInterval);
  Request(1, 0, 3, 10, &w);
  sim_.RunUntil(SimTime::Minutes(2));
  EXPECT_EQ(sched_->metrics().startup_latency_sec.count(), 2);
  EXPECT_NEAR(sched_->metrics().startup_latency_sec.max(),
              w.latency.seconds(), 1e-9);
}

TEST_F(SchedulerTest, ManySequentialDisplaysReuseDisks) {
  Init(6, 2);
  std::vector<Probe> probes(9);
  for (int i = 0; i < 9; ++i) {
    Request(i, (2 * i) % 6, 2, 8, &probes[static_cast<size_t>(i)]);
  }
  sim_.RunUntil(SimTime::Minutes(3));
  for (const Probe& p : probes) EXPECT_TRUE(p.completed);
  EXPECT_EQ(sched_->metrics().displays_completed, 9);
  EXPECT_EQ(sched_->metrics().hiccups, 0);
  EXPECT_EQ(sched_->idle_virtual_disks(), 6);
}

TEST_F(SchedulerTest, DegreeEqualsDUsesWholeArray) {
  Init(4, 1);
  Probe x;
  Request(0, 0, 4, 10, &x);
  sim_.RunUntil(kInterval * 2);
  EXPECT_EQ(sched_->idle_virtual_disks(), 0);
  sim_.RunUntil(SimTime::Minutes(1));
  EXPECT_TRUE(x.completed);
}

}  // namespace
}  // namespace stagger
