#include "core/logical_scheduler.h"

#include <gtest/gtest.h>

#include <memory>

#include "disk/disk_array.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Millis(605);

class LogicalSchedulerTest : public ::testing::Test {
 protected:
  void Init(int32_t num_disks, int32_t logical_per_disk, int32_t stride = 1) {
    LogicalSchedulerConfig config;
    config.num_disks = num_disks;
    config.logical_per_disk = logical_per_disk;
    config.stride = stride;
    config.interval = kInterval;
    auto sched = LogicalDiskScheduler::Create(&sim_, config);
    ASSERT_TRUE(sched.ok()) << sched.status();
    sched_ = *std::move(sched);
  }

  /// Health-aware variant: wires a DiskArray of `num_disks` as the
  /// physical-health source.
  void InitWithDisks(int32_t num_disks, int32_t logical_per_disk,
                     int32_t stride = 1) {
    auto disks = DiskArray::Create(num_disks, DiskParameters::Evaluation());
    ASSERT_TRUE(disks.ok());
    disks_ = std::make_unique<DiskArray>(*std::move(disks));
    LogicalSchedulerConfig config;
    config.num_disks = num_disks;
    config.logical_per_disk = logical_per_disk;
    config.stride = stride;
    config.interval = kInterval;
    auto sched = LogicalDiskScheduler::Create(&sim_, config, disks_.get());
    ASSERT_TRUE(sched.ok()) << sched.status();
    sched_ = *std::move(sched);
  }

  struct Probe {
    bool started = false;
    bool completed = false;
    SimTime latency;
  };

  RequestId Request(int64_t units, int32_t start_disk, int64_t subobjects,
                    Probe* probe, bool partial_first = false) {
    LogicalRequest req;
    req.object = 0;
    req.units = units;
    req.start_disk = start_disk;
    req.num_subobjects = subobjects;
    req.partial_lane_first = partial_first;
    req.on_started = [probe](SimTime latency) {
      probe->started = true;
      probe->latency = latency;
    };
    req.on_completed = [probe] { probe->completed = true; };
    auto id = sched_->Submit(std::move(req));
    STAGGER_CHECK(id.ok()) << id.status();
    return *id;
  }

  Simulator sim_;
  std::unique_ptr<DiskArray> disks_;
  std::unique_ptr<LogicalDiskScheduler> sched_;
};

TEST_F(LogicalSchedulerTest, ConfigValidation) {
  LogicalSchedulerConfig config;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());  // no disks
  config.num_disks = 4;
  EXPECT_TRUE(config.Validate().ok());
  config.logical_per_disk = 0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.logical_per_disk = 2;
  config.stride = 5;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
}

TEST_F(LogicalSchedulerTest, SubmitValidation) {
  Init(4, 2);
  LogicalRequest req;
  req.units = 0;
  req.num_subobjects = 5;
  EXPECT_TRUE(sched_->Submit(req).status().IsInvalidArgument());
  req.units = 9;  // > D * L = 8
  EXPECT_TRUE(sched_->Submit(req).status().IsInvalidArgument());
  req.units = 2;
  req.num_subobjects = 0;
  EXPECT_TRUE(sched_->Submit(req).status().IsInvalidArgument());
  req.num_subobjects = 5;
  req.start_disk = 4;
  EXPECT_TRUE(sched_->Submit(req).status().IsInvalidArgument());
}

// Figure 7: two half-rate objects share one disk within an interval.
TEST_F(LogicalSchedulerTest, TwoHalfRateObjectsShareOneDisk) {
  Init(1, 2);
  Probe a, b;
  Request(1, 0, 10, &a);
  Request(1, 0, 10, &b);
  sim_.RunUntil(kInterval * 12);
  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(b.completed);
  // Both started in the first interval — concurrent on one disk.
  EXPECT_EQ(a.latency, SimTime::Zero());
  EXPECT_EQ(b.latency, SimTime::Zero());
}

TEST_F(LogicalSchedulerTest, WholeDiskAllocationSerializes) {
  Init(1, 1);
  Probe a, b;
  Request(1, 0, 10, &a);
  Request(1, 0, 10, &b);
  sim_.RunUntil(kInterval * 25);
  EXPECT_TRUE(a.completed && b.completed);
  // The second display had to wait for the first to finish.
  EXPECT_GE(b.latency, kInterval * 9);
}

TEST_F(LogicalSchedulerTest, PartialLanesBuffer) {
  Init(2, 2);
  Probe a;
  Request(3, 0, 10, &a);  // 1.5 disks: one full lane + one half lane
  sim_.RunUntil(kInterval * 12);
  EXPECT_TRUE(a.completed);
  // The half lane buffers (1 - 1/2) of its data each interval.
  EXPECT_GT(sched_->metrics().buffered_fraction.Average(sim_.Now()), 0.0);
}

TEST_F(LogicalSchedulerTest, FullLanesDoNotBuffer) {
  Init(2, 2);
  Probe a;
  Request(4, 0, 10, &a);  // exactly two whole disks
  sim_.RunUntil(kInterval * 12);
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(sched_->metrics().buffered_fraction.Average(sim_.Now()), 0.0);
}

TEST_F(LogicalSchedulerTest, UtilizationAccountsUnits) {
  Init(2, 2);
  Probe a;
  Request(2, 0, 10, &a);  // half the farm's units
  sim_.RunUntil(kInterval * 10);
  EXPECT_NEAR(sched_->Utilization(), 0.5, 0.05);
}

// The Section 3.2.3 capacity claim, measured: 30 mbps objects
// (1.5 disks at B_Disk = 20) on a 6-disk farm.  Whole-disk allocation
// rounds each display up to 2 disks (3 concurrent); with L = 2 and the
// Figure 7 pairing ([full, half] next to [half, full]) four displays
// fit — 33% more concurrency from the same disks.
TEST_F(LogicalSchedulerTest, LogicalUnitsRaiseConcurrency) {
  Init(6, 1);
  Probe whole[4];
  for (int i = 0; i < 4; ++i) {
    Request(2, (2 * i) % 6, 20, &whole[i]);  // ceil(30/20) = 2 disks
  }
  sim_.RunUntil(kInterval);
  int started_whole = 0;
  for (const Probe& p : whole) {
    if (p.started) ++started_whole;
  }
  EXPECT_EQ(started_whole, 3);  // 6 disks / 2 = 3 at once

  // Logical halves, paired: X=[full@0,half@1], Y=[half@1,full@2],
  // Z=[full@3,half@4], W=[half@4,full@5].
  Init(6, 2);
  Probe half[4];
  Request(3, 0, 20, &half[0], /*partial_first=*/false);
  Request(3, 1, 20, &half[1], /*partial_first=*/true);
  Request(3, 3, 20, &half[2], /*partial_first=*/false);
  Request(3, 4, 20, &half[3], /*partial_first=*/true);
  sim_.RunUntil(kInterval);
  int started_half = 0;
  for (const Probe& p : half) {
    if (p.started) ++started_half;
  }
  EXPECT_EQ(started_half, 4);
}

TEST_F(LogicalSchedulerTest, StrideShiftsLanes) {
  // Stride > 1 with gcd(D, k) = 1 still delivers (frame invariance).
  Init(5, 2, /*stride=*/3);
  Probe a, b;
  Request(3, 0, 15, &a);
  Request(3, 2, 15, &b);
  sim_.RunUntil(kInterval * 20);
  EXPECT_TRUE(a.completed && b.completed);
}

// ---------------------------------------------------------------------
// Disk-health awareness: a physical disk takes every logical unit it
// hosts down with it (a half-disk cannot outlive its spindle).
// ---------------------------------------------------------------------

// Figure 7's pairing under a failure: both half-rate streams sharing
// the failed spindle stall together and recover together.
TEST_F(LogicalSchedulerTest, BothLogicalHalvesFailAndRecoverTogether) {
  InitWithDisks(1, 2);
  Probe a, b;
  Request(1, 0, 10, &a);
  Request(1, 0, 10, &b);

  // Healthy through tick 3 (4 subobjects each), then 3 failed ticks.
  sim_.RunUntil(kInterval * 3 + SimTime::Millis(1));
  disks_->FailDisk(0);
  sim_.RunUntil(kInterval * 6 + SimTime::Millis(1));
  disks_->RecoverDisk(0);

  // A healthy run would have completed both at tick 9; the shared
  // spindle's outage held *both* halves back.
  sim_.RunUntil(kInterval * 9 + SimTime::Millis(1));
  EXPECT_FALSE(a.completed);
  EXPECT_FALSE(b.completed);
  EXPECT_EQ(sched_->metrics().stalled_stream_intervals, 6);  // 3 ticks x 2

  // Both resume in lockstep and finish 3 intervals late.
  sim_.RunUntil(kInterval * 12 + SimTime::Millis(1));
  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(b.completed);
  EXPECT_EQ(sched_->metrics().displays_completed, 2);
}

// Admission refuses lanes over a down spindle; the queued requests (all
// logical units of the disk) start together after recovery.
TEST_F(LogicalSchedulerTest, AdmissionWaitsOutDownSpindle) {
  InitWithDisks(1, 2);
  disks_->FailDisk(0);
  Probe a, b;
  Request(1, 0, 5, &a);
  Request(1, 0, 5, &b);

  sim_.RunUntil(kInterval * 2 + SimTime::Millis(1));
  EXPECT_FALSE(a.started);
  EXPECT_FALSE(b.started);
  EXPECT_EQ(sched_->pending_requests(), 2u);

  disks_->RecoverDisk(0);
  sim_.RunUntil(kInterval * 10);
  EXPECT_TRUE(a.started);
  EXPECT_TRUE(b.started);
  EXPECT_TRUE(a.completed && b.completed);
  EXPECT_EQ(a.latency, b.latency);  // both halves came back at once
}

// A multi-lane stream stalls when *any* of its lanes' physical disks is
// down, even though the other lane's disk is healthy.
TEST_F(LogicalSchedulerTest, OneDownLaneStallsTheWholeStream) {
  InitWithDisks(2, 2);
  Probe a;
  Request(3, 0, 10, &a);  // full lane on disk 0, half lane on disk 1
  sim_.RunUntil(kInterval * 2 + SimTime::Millis(1));
  disks_->FailDisk(1);
  sim_.RunUntil(kInterval * 4 + SimTime::Millis(1));
  disks_->RecoverDisk(1);
  sim_.RunUntil(kInterval * 20);
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(sched_->metrics().stalled_stream_intervals, 2);
}

TEST_F(LogicalSchedulerTest, HealthSourceMustCoverAllDisks) {
  auto disks = DiskArray::Create(2, DiskParameters::Evaluation());
  ASSERT_TRUE(disks.ok());
  LogicalSchedulerConfig config;
  config.num_disks = 4;
  config.interval = kInterval;
  EXPECT_TRUE(LogicalDiskScheduler::Create(&sim_, config, &*disks)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(LogicalSchedulerTest, MetricsCountRequests) {
  Init(2, 2);
  Probe a;
  Request(1, 0, 5, &a);
  sim_.RunUntil(kInterval * 8);
  EXPECT_EQ(sched_->metrics().displays_requested, 1);
  EXPECT_EQ(sched_->metrics().displays_completed, 1);
  EXPECT_EQ(sched_->metrics().startup_latency_sec.count(), 1);
  EXPECT_EQ(sched_->active_streams(), 0u);
}

}  // namespace
}  // namespace stagger
