// Property tests for the logical-disk scheduler: randomized unit
// demands must never oversubscribe a disk's units, always complete, and
// conserve unit-interval accounting.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/logical_scheduler.h"
#include "util/rng.h"

namespace stagger {
namespace {

struct LogicalCase {
  int32_t num_disks;
  int32_t logical_per_disk;
  int32_t stride;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<LogicalCase>& info) {
  std::ostringstream os;
  os << "D" << info.param.num_disks << "_L" << info.param.logical_per_disk
     << "_k" << info.param.stride << "_s" << info.param.seed;
  return os.str();
}

class LogicalPropertyTest : public ::testing::TestWithParam<LogicalCase> {};

TEST_P(LogicalPropertyTest, RandomLoadConservesUnits) {
  const LogicalCase& c = GetParam();
  Simulator sim;
  LogicalSchedulerConfig config;
  config.num_disks = c.num_disks;
  config.logical_per_disk = c.logical_per_disk;
  config.stride = c.stride;
  config.interval = SimTime::Millis(605);
  auto sched = LogicalDiskScheduler::Create(&sim, config);
  ASSERT_TRUE(sched.ok()) << sched.status();

  Rng rng(c.seed);
  constexpr int kRequests = 30;
  int completed = 0;
  int64_t expected_unit_intervals = 0;
  SimTime at = SimTime::Zero();
  for (int i = 0; i < kRequests; ++i) {
    LogicalRequest req;
    req.object = i;
    // Demand between one unit and half the farm.
    const int64_t max_units =
        std::max<int64_t>(1, static_cast<int64_t>(c.num_disks) *
                                 c.logical_per_disk / 2);
    req.units = static_cast<int64_t>(
        1 + rng.NextBounded(static_cast<uint64_t>(max_units)));
    req.start_disk = static_cast<int32_t>(
        rng.NextBounded(static_cast<uint64_t>(c.num_disks)));
    req.num_subobjects = static_cast<int64_t>(1 + rng.NextBounded(25));
    req.partial_lane_first = rng.NextBool(0.5);
    expected_unit_intervals += req.units * req.num_subobjects;
    req.on_completed = [&completed] { ++completed; };
    at += SimTime::Micros(static_cast<int64_t>(rng.NextBounded(2000000)));
    sim.ScheduleAt(at, [&sched, req = std::move(req)]() mutable {
      auto id = (*sched)->Submit(std::move(req));
      STAGGER_CHECK(id.ok()) << id.status();
    });
  }
  sim.RunUntil(SimTime::Hours(2));

  EXPECT_EQ(completed, kRequests);
  EXPECT_EQ((*sched)->metrics().displays_completed, kRequests);
  EXPECT_EQ((*sched)->active_streams(), 0u);
  EXPECT_EQ((*sched)->pending_requests(), 0u);
  // Exact unit-interval conservation: every admitted stream consumed
  // units * subobjects unit-intervals, nothing more.
  EXPECT_EQ((*sched)->metrics().unit_intervals_used, expected_unit_intervals);
  // All units returned.
  for (int32_t v = 0; v < c.num_disks; ++v) {
    EXPECT_EQ((*sched)->FreeUnits(v), c.logical_per_disk);
  }
  EXPECT_LE((*sched)->Utilization(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LogicalPropertyTest,
    ::testing::Values(LogicalCase{4, 1, 1, 1}, LogicalCase{4, 2, 1, 2},
                      LogicalCase{6, 2, 5, 3}, LogicalCase{8, 4, 3, 4},
                      LogicalCase{9, 3, 3, 5}, LogicalCase{12, 2, 7, 6},
                      LogicalCase{5, 8, 2, 7}),
    CaseName);

}  // namespace
}  // namespace stagger
