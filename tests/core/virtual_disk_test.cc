#include "core/virtual_disk.h"

#include <gtest/gtest.h>

#include <numeric>

namespace stagger {
namespace {

TEST(ModMathTest, ExtendedGcd) {
  int64_t x, y;
  EXPECT_EQ(ExtendedGcd(240, 46, &x, &y), 2);
  EXPECT_EQ(240 * x + 46 * y, 2);
  EXPECT_EQ(ExtendedGcd(7, 0, &x, &y), 7);
}

TEST(ModMathTest, ModInverse) {
  auto inv = ModInverse(3, 10);
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ((3 * *inv) % 10, 1);
  EXPECT_EQ(*ModInverse(1, 7), 1);
  EXPECT_EQ(*ModInverse(-3, 10), *ModInverse(7, 10));
  EXPECT_TRUE(ModInverse(2, 10).status().IsNotFound());
  EXPECT_TRUE(ModInverse(5, 0).status().IsInvalidArgument());
  EXPECT_EQ(*ModInverse(4, 1), 0);
}

TEST(VirtualDiskFrameTest, CreateValidates) {
  EXPECT_FALSE(VirtualDiskFrame::Create(0, 1).ok());
  EXPECT_FALSE(VirtualDiskFrame::Create(10, 0).ok());
  EXPECT_FALSE(VirtualDiskFrame::Create(10, 11).ok());
  EXPECT_TRUE(VirtualDiskFrame::Create(10, 10).ok());
}

// The paper's definition: virtual disk i at time t is physical disk
// (i - kt) mod D — i.e. VirtualOf(p, t) recovers the virtual index.
TEST(VirtualDiskFrameTest, PaperDefinitionRoundTrip) {
  auto frame = VirtualDiskFrame::Create(8, 3);
  ASSERT_TRUE(frame.ok());
  for (int32_t v = 0; v < 8; ++v) {
    for (int64_t t = 0; t < 20; ++t) {
      const int32_t p = frame->PhysicalOf(v, t);
      EXPECT_EQ(frame->VirtualOf(p, t), v);
      EXPECT_EQ(p, static_cast<int32_t>(PositiveMod(v + 3 * t, 8)));
    }
  }
}

// "The virtual disk that reads the first fragment of a subobject at one
// time interval would read the first fragment of the next consecutive
// subobject in the next time interval."
TEST(VirtualDiskFrameTest, VirtualDiskTracksStride) {
  auto frame = VirtualDiskFrame::Create(12, 5);
  ASSERT_TRUE(frame.ok());
  // Layout: subobject s starts on disk (p0 + 5 s) mod 12.
  const int32_t p0 = 3;
  const int32_t v = frame->VirtualOf(p0, 0);
  for (int64_t s = 0; s < 30; ++s) {
    EXPECT_EQ(frame->PhysicalOf(v, s),
              static_cast<int32_t>(PositiveMod(p0 + 5 * s, 12)));
  }
}

TEST(VirtualDiskFrameTest, GcdAndPeriod) {
  EXPECT_EQ(VirtualDiskFrame::Create(1000, 5)->gcd(), 5);
  EXPECT_EQ(VirtualDiskFrame::Create(1000, 5)->period(), 200);
  EXPECT_EQ(VirtualDiskFrame::Create(10, 3)->gcd(), 1);
  EXPECT_EQ(VirtualDiskFrame::Create(10, 3)->period(), 10);
  EXPECT_EQ(VirtualDiskFrame::Create(10, 10)->period(), 1);
}

TEST(VirtualDiskFrameTest, AlignmentDelayIsMinimalAndCorrect) {
  for (int32_t d : {7, 8, 12}) {
    for (int32_t k = 1; k <= d; ++k) {
      auto frame = VirtualDiskFrame::Create(d, k);
      ASSERT_TRUE(frame.ok());
      for (int32_t v = 0; v < d; ++v) {
        for (int32_t p = 0; p < d; ++p) {
          auto delay = frame->AlignmentDelay(v, p, /*t=*/5);
          // Brute force the minimal delay.
          int64_t expected = -1;
          for (int64_t delta = 0; delta < d; ++delta) {
            if (frame->PhysicalOf(v, 5 + delta) == p) {
              expected = delta;
              break;
            }
          }
          if (expected < 0) {
            EXPECT_FALSE(delay.has_value()) << d << " " << k << " " << v;
          } else {
            ASSERT_TRUE(delay.has_value());
            EXPECT_EQ(*delay, expected) << d << " " << k << " " << v;
          }
        }
      }
    }
  }
}

TEST(VirtualDiskFrameTest, UnreachableResidueClass) {
  auto frame = VirtualDiskFrame::Create(10, 5);  // gcd 5
  ASSERT_TRUE(frame.ok());
  // Virtual disk 0 only ever visits physical disks 0 and 5.
  EXPECT_TRUE(frame->AlignmentDelay(0, 0, 0).has_value());
  EXPECT_TRUE(frame->AlignmentDelay(0, 5, 0).has_value());
  EXPECT_FALSE(frame->AlignmentDelay(0, 1, 0).has_value());
  EXPECT_FALSE(frame->AlignmentDelay(0, 7, 0).has_value());
}

// Ownership invariance: streams moving in lockstep never collide — if
// two virtual disks are distinct, their physical disks are distinct at
// every interval.
TEST(VirtualDiskFrameTest, FrameIsBijectiveAtEveryInterval) {
  auto frame = VirtualDiskFrame::Create(9, 4);
  ASSERT_TRUE(frame.ok());
  for (int64_t t = 0; t < 18; ++t) {
    std::vector<bool> seen(9, false);
    for (int32_t v = 0; v < 9; ++v) {
      const int32_t p = frame->PhysicalOf(v, t);
      EXPECT_FALSE(seen[static_cast<size_t>(p)]);
      seen[static_cast<size_t>(p)] = true;
    }
  }
}

}  // namespace
}  // namespace stagger
