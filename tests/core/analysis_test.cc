#include "core/analysis.h"

#include <gtest/gtest.h>

#include "server/experiment.h"

namespace stagger {
namespace {

SystemModel Table3Model() {
  SystemModel m;
  m.num_disks = 1000;
  m.disk = DiskParameters::Evaluation();
  m.fragment_cylinders = 1;
  m.display_bandwidth = Bandwidth::Mbps(100);
  m.subobjects_per_object = 3000;
  m.transfer_rate_is_effective = true;  // Table 3's 20 mbps is net
  return m;
}

TEST(SystemModelTest, Validation) {
  EXPECT_TRUE(Table3Model().Validate().ok());
  SystemModel m = Table3Model();
  m.num_disks = 0;
  EXPECT_FALSE(m.Validate().ok());
  m = Table3Model();
  m.display_bandwidth = Bandwidth::Mbps(0);
  EXPECT_FALSE(m.Validate().ok());
  m = Table3Model();
  m.num_disks = 4;  // degree 5 > D
  EXPECT_FALSE(m.Validate().ok());
}

TEST(SystemModelTest, Table3DerivedQuantities) {
  const SystemModel m = Table3Model();
  EXPECT_EQ(m.Degree(), 5);
  EXPECT_EQ(m.NumClusters(), 200);
  EXPECT_EQ(m.MaxConcurrentDisplays(), 200);
  EXPECT_NEAR(m.DisplayTime().seconds(), 1814.0, 0.5);
  EXPECT_NEAR(m.ObjectSize().gigabytes(), 22.68, 0.01);
  EXPECT_EQ(m.MaxResidentObjects(), 200);
  // Throughput ceiling: 200 / (1814 s / 3600) ~ 397 displays/hour.
  EXPECT_NEAR(m.MaxDisplaysPerHour(), 396.9, 1.0);
  // Worst-case initiation delay: 199 intervals ~ 120 s.
  EXPECT_NEAR(m.WorstCaseInitiationDelay().seconds(), 199 * 0.6048, 0.5);
}

TEST(SystemModelTest, SabreSection31Numbers) {
  SystemModel m;
  m.num_disks = 90;
  m.disk = DiskParameters::Sabre1_2GB();
  m.fragment_cylinders = 1;
  // Media type with M = 3 on the Sabre's ~20 mbps effective bandwidth.
  m.display_bandwidth = Bandwidth::Mbps(60);
  m.subobjects_per_object = 500;
  ASSERT_TRUE(m.Validate().ok());
  EXPECT_EQ(m.Degree(), 3);
  EXPECT_EQ(m.NumClusters(), 30);
  // "the worst case transfer initiation delay would be about 9 seconds"
  EXPECT_NEAR(m.WorstCaseInitiationDelay().seconds(), 8.75, 0.1);
  m.fragment_cylinders = 2;
  EXPECT_NEAR(m.WorstCaseInitiationDelay().seconds(), 16.1, 0.1);
}

// Cross-validation: the simulator approaches the analytical throughput
// ceiling when stations outnumber cluster slots.
TEST(SystemModelTest, SimulatorApproachesAnalyticalCeiling) {
  ExperimentConfig cfg;
  cfg.scheme = Scheme::kSimpleStriping;
  cfg.num_disks = 50;           // 10 clusters
  cfg.num_objects = 50;
  cfg.subobjects_per_object = 200;  // ~2 min displays
  cfg.preload_objects = 10;
  cfg.stations = 40;            // 4x oversubscribed
  cfg.geometric_mean = 3.0;
  cfg.warmup = SimTime::Minutes(30);
  cfg.measure = SimTime::Hours(2);
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();

  SystemModel m;
  m.num_disks = cfg.num_disks;
  m.disk = cfg.disk;
  m.fragment_cylinders = cfg.fragment_cylinders;
  m.display_bandwidth = cfg.display_bandwidth;
  m.subobjects_per_object = cfg.subobjects_per_object;
  // Note: the experiment treats Table 3's 20 mbps as already effective,
  // so compare against the raw-rate interval the experiment uses.
  const double ceiling =
      (cfg.num_disks / cfg.Degree()) /
      (cfg.Interval() * cfg.subobjects_per_object).hours();
  EXPECT_LE(result->displays_per_hour, ceiling * 1.01);
  EXPECT_GE(result->displays_per_hour, ceiling * 0.85);
  (void)m;
}

TEST(SystemModelTest, BufferMemoryScalesWithDisks) {
  SystemModel m = Table3Model();
  const DataSize per_disk =
      m.disk.MinBufferMemory(m.disk.cylinder_capacity * m.fragment_cylinders);
  EXPECT_EQ(m.MinTotalBufferMemory().bytes(), per_disk.bytes() * 1000);
}

}  // namespace
}  // namespace stagger
