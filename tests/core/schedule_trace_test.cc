#include "core/schedule_trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/interval_scheduler.h"
#include "disk/disk_array.h"
#include "sim/simulator.h"

namespace stagger {
namespace {

TEST(ScheduleTracerTest, RecordsAndRenders) {
  ScheduleTracer tracer(4);
  tracer.Name(7, "X");
  tracer.Record(0, 7, 0, 0, 1);
  tracer.Record(0, 7, 0, 1, 2);
  tracer.Record(1, 9, 3, 0, 0);
  EXPECT_EQ(tracer.num_events(), 3);
  EXPECT_EQ(tracer.last_interval(), 1);

  std::ostringstream os;
  tracer.RenderDisks().Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("X0.0"), std::string::npos);
  EXPECT_NE(out.find("X0.1"), std::string::npos);
  EXPECT_NE(out.find("#93.0"), std::string::npos);  // unnamed object
}

TEST(ScheduleTracerTest, MaxIntervalsBoundsRecording) {
  ScheduleTracer tracer(2, /*max_intervals=*/3);
  for (int64_t t = 0; t < 10; ++t) tracer.Record(t, 0, t, 0, 0);
  EXPECT_EQ(tracer.num_events(), 3);
  EXPECT_EQ(tracer.last_interval(), 2);
}

// End-to-end Figure 3: the traced schedule of three cluster-aligned
// displays rotates clusters exactly as the paper's table.
TEST(ScheduleTracerTest, Figure3Rotation) {
  Simulator sim;
  auto disks = DiskArray::Create(9, DiskParameters::Evaluation());
  ASSERT_TRUE(disks.ok());

  ScheduleTracer tracer(9, 6);
  SchedulerConfig config;
  config.stride = 3;
  config.interval = SimTime::Millis(605);
  config.read_observer = [&tracer](int64_t t, ObjectId o, int64_t s,
                                   int32_t f, int32_t d) {
    tracer.Record(t, o, s, f, d);
  };
  auto sched = IntervalScheduler::Create(&sim, &*disks, config);
  ASSERT_TRUE(sched.ok());

  for (int i = 0; i < 3; ++i) {
    DisplayRequest req;
    req.object = i;
    req.degree = 3;
    req.start_disk = 3 * i;
    req.num_subobjects = 6;
    req.on_completed = [] {};
    ASSERT_TRUE((*sched)->Submit(std::move(req)).ok());
  }
  sim.RunUntil(SimTime::Seconds(10));

  // 3 displays x 6 subobjects x 3 fragments = 54 reads in 6 intervals.
  EXPECT_EQ(tracer.num_events(), 54);

  std::ostringstream os;
  tracer.RenderClusters(3).Print(os);
  const std::string out = os.str();
  // Interval 0: object i on cluster i.  Interval 1: each shifted right.
  EXPECT_NE(out.find("read #0(0)"), std::string::npos);
  EXPECT_NE(out.find("read #2(1)"), std::string::npos);  // Z wraps to c0
  EXPECT_EQ(out.find("idle"), std::string::npos);  // fully busy trace
}

TEST(ScheduleTracerTest, IdleCellsRendered) {
  ScheduleTracer tracer(6, 4);
  tracer.Record(0, 0, 0, 0, 0);
  tracer.Record(1, 0, 1, 0, 3);  // cluster 0 idle at interval 1
  std::ostringstream os;
  tracer.RenderClusters(3).Print(os);
  EXPECT_NE(os.str().find("idle"), std::string::npos);
}

}  // namespace
}  // namespace stagger
