#include "core/buffer_pool.h"

#include <gtest/gtest.h>

#include "core/fast_forward.h"
#include "core/low_bandwidth.h"

namespace stagger {
namespace {

TEST(BufferPoolTest, UnlimitedWhenCapacityNonPositive) {
  BufferPool pool(0);
  EXPECT_TRUE(pool.unlimited());
  EXPECT_TRUE(pool.TryReserve(1 << 30));
  EXPECT_EQ(pool.reserved(), 1 << 30);
}

TEST(BufferPoolTest, EnforcesBudget) {
  BufferPool pool(10);
  EXPECT_TRUE(pool.TryReserve(6));
  EXPECT_TRUE(pool.TryReserve(4));
  EXPECT_FALSE(pool.TryReserve(1));
  EXPECT_EQ(pool.reserved(), 10);
  pool.Release(5);
  EXPECT_TRUE(pool.TryReserve(5));
}

TEST(BufferPoolTest, TracksPeak) {
  BufferPool pool(100);
  pool.TryReserve(30);
  pool.Release(20);
  pool.TryReserve(5);
  EXPECT_EQ(pool.peak_reserved(), 30);
  pool.TryReserve(50);
  EXPECT_EQ(pool.peak_reserved(), 65);
}

TEST(BufferPoolTest, ZeroReservationAlwaysSucceeds) {
  BufferPool pool(1);
  pool.TryReserve(1);
  EXPECT_TRUE(pool.TryReserve(0));
}

TEST(BufferPoolDeathTest, OverReleaseAborts) {
  BufferPool pool(10);
  pool.TryReserve(3);
  EXPECT_DEATH(pool.Release(4), "more than reserved");
}

TEST(FastForwardTest, ReplicaSizing) {
  MediaObject movie;
  movie.name = "m";
  movie.display_bandwidth = Bandwidth::Mbps(100);
  movie.num_subobjects = 3000;
  auto replica = MakeFastForwardReplica(movie, 16);
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ(replica->object.num_subobjects, 188);  // ceil(3000/16)
  EXPECT_EQ(replica->object.name, "m.ff16");
  EXPECT_EQ(replica->object.id, kInvalidObject);
  EXPECT_NEAR(replica->StorageOverhead(movie), 188.0 / 3000.0, 1e-12);
  EXPECT_DOUBLE_EQ(replica->object.display_bandwidth.mbps(), 100.0);
}

TEST(FastForwardTest, PositionMapping) {
  MediaObject movie;
  movie.num_subobjects = 3000;
  movie.display_bandwidth = Bandwidth::Mbps(100);
  auto replica = MakeFastForwardReplica(movie, 16);
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ(replica->ToReplica(0), 0);
  EXPECT_EQ(replica->ToReplica(15), 0);
  EXPECT_EQ(replica->ToReplica(16), 1);
  EXPECT_EQ(replica->FromReplica(1), 16);
  // Round trip lands at the covering frame.
  for (int64_t i : {0, 99, 1777, 2999}) {
    const int64_t mapped = replica->FromReplica(replica->ToReplica(i));
    EXPECT_LE(mapped, i);
    EXPECT_GT(mapped + 16, i);
  }
}

TEST(FastForwardTest, SpeedupOneIsIdentity) {
  MediaObject movie;
  movie.num_subobjects = 100;
  movie.display_bandwidth = Bandwidth::Mbps(100);
  auto replica = MakeFastForwardReplica(movie, 1);
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ(replica->object.num_subobjects, 100);
  EXPECT_EQ(replica->ToReplica(42), 42);
}

TEST(FastForwardTest, RejectsBadInput) {
  MediaObject movie;
  movie.num_subobjects = 100;
  EXPECT_FALSE(MakeFastForwardReplica(movie, 0).ok());
  movie.num_subobjects = 0;
  EXPECT_FALSE(MakeFastForwardReplica(movie, 16).ok());
}

TEST(LowBandwidthTest, IntegralWasteExamples) {
  const Bandwidth disk = Bandwidth::Mbps(20);
  // Paper: 30 mbps on 20 mbps disks wastes 25% of two disks.
  EXPECT_NEAR(IntegralDiskWaste(Bandwidth::Mbps(30), disk), 0.25, 1e-12);
  EXPECT_NEAR(IntegralDiskWaste(Bandwidth::Mbps(20), disk), 0.0, 1e-12);
  EXPECT_NEAR(IntegralDiskWaste(Bandwidth::Mbps(10), disk), 0.5, 1e-12);
  EXPECT_NEAR(IntegralDiskWaste(Bandwidth::Mbps(100), disk), 0.0, 1e-12);
  EXPECT_NEAR(IntegralDiskWaste(Bandwidth::Mbps(110), disk), 1.0 / 12.0, 1e-12);
}

TEST(LowBandwidthTest, LogicalAllocationExactFit) {
  // Paper: B_Display = 3/2 B_Disk fits exactly with L = 2.
  auto alloc = AllocateLogical(Bandwidth::Mbps(30), Bandwidth::Mbps(20), 2);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->units, 3);
  EXPECT_EQ(alloc->disks, 2);
  EXPECT_NEAR(alloc->wasted_fraction, 0.0, 1e-12);
}

TEST(LowBandwidthTest, HalfRateLaneBuffersHalfSubobject) {
  auto alloc = AllocateLogical(Bandwidth::Mbps(10), Bandwidth::Mbps(20), 2);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->units, 1);
  EXPECT_EQ(alloc->disks, 1);
  EXPECT_NEAR(alloc->buffer_subobject_fraction, 0.5, 1e-12);
}

TEST(LowBandwidthTest, WholeDiskLanesBufferNothing) {
  auto alloc = AllocateLogical(Bandwidth::Mbps(40), Bandwidth::Mbps(20), 2);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->units, 4);
  EXPECT_NEAR(alloc->buffer_subobject_fraction, 0.0, 1e-12);
}

TEST(LowBandwidthTest, LIsOneMatchesIntegralAllocation) {
  for (double mbps : {5.0, 15.0, 30.0, 45.0}) {
    auto alloc = AllocateLogical(Bandwidth::Mbps(mbps), Bandwidth::Mbps(20), 1);
    ASSERT_TRUE(alloc.ok());
    EXPECT_EQ(alloc->units, alloc->disks);
    EXPECT_NEAR(alloc->wasted_fraction,
                IntegralDiskWaste(Bandwidth::Mbps(mbps), Bandwidth::Mbps(20)),
                1e-12);
  }
}

TEST(LowBandwidthTest, FinerSplitsNeverIncreaseWaste) {
  for (double mbps : {3.0, 7.0, 13.0, 27.0, 55.0}) {
    double prev = 2.0;
    for (int32_t l : {1, 2, 4, 8}) {
      auto alloc = AllocateLogical(Bandwidth::Mbps(mbps), Bandwidth::Mbps(20), l);
      ASSERT_TRUE(alloc.ok());
      EXPECT_LE(alloc->wasted_fraction, prev + 1e-12);
      prev = alloc->wasted_fraction;
    }
  }
}

TEST(LowBandwidthTest, RejectsBadInput) {
  EXPECT_FALSE(AllocateLogical(Bandwidth::Mbps(0), Bandwidth::Mbps(20), 2).ok());
  EXPECT_FALSE(AllocateLogical(Bandwidth::Mbps(10), Bandwidth::Mbps(0), 2).ok());
  EXPECT_FALSE(AllocateLogical(Bandwidth::Mbps(10), Bandwidth::Mbps(20), 0).ok());
}

}  // namespace
}  // namespace stagger
