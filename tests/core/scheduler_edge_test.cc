// Edge cases of the interval scheduler beyond the main suite: extreme
// strides, degree-1 streams, observer accounting, pending-request
// control operations, and exact completion timing.

#include <gtest/gtest.h>

#include <memory>

#include "core/interval_scheduler.h"
#include "disk/disk_array.h"
#include "sim/simulator.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Millis(605);

class SchedulerEdgeTest : public ::testing::Test {
 protected:
  void Init(int32_t num_disks, int32_t stride, SchedulerConfig base = {}) {
    auto disks = DiskArray::Create(num_disks, DiskParameters::Evaluation());
    ASSERT_TRUE(disks.ok());
    disks_ = std::make_unique<DiskArray>(*std::move(disks));
    base.stride = stride;
    base.interval = kInterval;
    auto sched = IntervalScheduler::Create(&sim_, disks_.get(), base);
    ASSERT_TRUE(sched.ok()) << sched.status();
    sched_ = *std::move(sched);
  }

  Simulator sim_;
  std::unique_ptr<DiskArray> disks_;
  std::unique_ptr<IntervalScheduler> sched_;
};

TEST_F(SchedulerEdgeTest, CancelUnknownIdIsNotFound) {
  Init(4, 1);
  EXPECT_TRUE(sched_->Cancel(12345).IsNotFound());
}

TEST_F(SchedulerEdgeTest, SeekOnPendingRequestFails) {
  Init(4, 1);
  DisplayRequest blocker;
  blocker.degree = 4;
  blocker.num_subobjects = 50;
  blocker.on_completed = [] {};
  ASSERT_TRUE(sched_->Submit(std::move(blocker)).ok());
  sim_.RunUntil(kInterval);
  DisplayRequest queued;
  queued.degree = 2;
  queued.num_subobjects = 5;
  queued.on_completed = [] {};
  auto id = sched_->Submit(std::move(queued));
  ASSERT_TRUE(id.ok());
  sim_.RunUntil(kInterval * 2);
  EXPECT_TRUE(sched_->Seek(*id, 0, 3).status().IsFailedPrecondition());
}

TEST_F(SchedulerEdgeTest, DegreeOneStream) {
  Init(3, 1);
  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    DisplayRequest req;
    req.object = i;
    req.degree = 1;
    req.start_disk = i;
    req.num_subobjects = 10;
    req.on_completed = [&completed] { ++completed; };
    ASSERT_TRUE(sched_->Submit(std::move(req)).ok());
  }
  sim_.RunUntil(kInterval * 12);
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(sched_->metrics().hiccups, 0);
}

TEST_F(SchedulerEdgeTest, StrideDPinsDisplaysToFixedDisks) {
  // k = D: virtual disks never move; two displays on disjoint disk sets
  // coexist, and their reads always hit the same physical disks.
  int64_t reads = 0;
  bool disjoint = true;
  SchedulerConfig config;
  config.read_observer = [&](int64_t, ObjectId o, int64_t, int32_t,
                             int32_t d) {
    ++reads;
    // Object 0 must only read disks 0..3; object 1 only 4..7.
    if ((o == 0) != (d < 4)) disjoint = false;
  };
  Init(8, 8, config);
  int completed = 0;
  for (int i = 0; i < 2; ++i) {
    DisplayRequest req;
    req.object = i;
    req.degree = 4;
    req.start_disk = 4 * i;
    req.num_subobjects = 6;
    req.on_completed = [&completed] { ++completed; };
    ASSERT_TRUE(sched_->Submit(std::move(req)).ok());
  }
  sim_.RunUntil(kInterval * 10);
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(reads, 2 * 4 * 6);
  EXPECT_TRUE(disjoint);
}

TEST_F(SchedulerEdgeTest, ObserverSeesEveryFragmentRead) {
  int64_t reads = 0;
  SchedulerConfig config;
  config.read_observer = [&reads](int64_t, ObjectId, int64_t, int32_t,
                                  int32_t) { ++reads; };
  Init(10, 1, config);
  DisplayRequest req;
  req.degree = 4;
  req.num_subobjects = 25;
  req.on_completed = [] {};
  ASSERT_TRUE(sched_->Submit(std::move(req)).ok());
  sim_.RunUntil(SimTime::Minutes(1));
  EXPECT_EQ(reads, 4 * 25);
}

TEST_F(SchedulerEdgeTest, QueueLengthMetricTracksContention) {
  Init(4, 1);
  for (int i = 0; i < 3; ++i) {
    DisplayRequest req;
    req.object = i;
    req.degree = 4;  // whole array: strictly serialized
    req.num_subobjects = 10;
    req.on_completed = [] {};
    ASSERT_TRUE(sched_->Submit(std::move(req)).ok());
  }
  sim_.RunUntil(kInterval * 15);  // second display mid-flight
  EXPECT_GT(sched_->metrics().queue_length.Average(sim_.Now()), 0.5);
  sim_.RunUntil(SimTime::Minutes(2));
  EXPECT_EQ(sched_->metrics().displays_completed, 3);
}

TEST_F(SchedulerEdgeTest, FragmentedPrefersContiguousWhenAvailable) {
  SchedulerConfig config;
  config.policy = AdmissionPolicy::kFragmented;
  Init(10, 1, config);
  DisplayRequest req;
  req.degree = 5;
  req.num_subobjects = 10;
  req.on_completed = [] {};
  ASSERT_TRUE(sched_->Submit(std::move(req)).ok());
  sim_.RunUntil(SimTime::Minutes(1));
  EXPECT_EQ(sched_->metrics().displays_completed, 1);
  EXPECT_EQ(sched_->metrics().fragmented_admissions, 0);
  EXPECT_EQ(sched_->metrics().peak_buffered_fragments, 0);
}

TEST_F(SchedulerEdgeTest, CompletionTimeIsExact) {
  Init(6, 1);
  SimTime completed_at;
  DisplayRequest req;
  req.degree = 2;
  req.num_subobjects = 7;
  req.on_completed = [&] { completed_at = sim_.Now(); };
  ASSERT_TRUE(sched_->Submit(std::move(req)).ok());
  sim_.RunUntil(SimTime::Minutes(1));
  // Admitted at interval 0 with delta 0: last subobject delivered at
  // interval 6's tick.
  EXPECT_EQ(completed_at, kInterval * 6);
}

TEST_F(SchedulerEdgeTest, DisksReusableImmediatelyAfterCancel) {
  Init(4, 1);
  DisplayRequest a;
  a.degree = 4;
  a.num_subobjects = 100;
  a.on_completed = [] {};
  auto id = sched_->Submit(std::move(a));
  ASSERT_TRUE(id.ok());
  sim_.RunUntil(kInterval * 3);
  ASSERT_TRUE(sched_->Cancel(*id).ok());

  int completed = 0;
  DisplayRequest b;
  b.degree = 4;
  b.num_subobjects = 5;
  b.on_completed = [&completed] { ++completed; };
  ASSERT_TRUE(sched_->Submit(std::move(b)).ok());
  sim_.RunUntil(kInterval * 12);
  EXPECT_EQ(completed, 1);
}

TEST_F(SchedulerEdgeTest, ZeroLookaheadMatchesContiguousLatency) {
  // With lookahead 0 the fragmented policy can only pick the disks that
  // are aligned right now — exactly the contiguous rule.
  for (bool fragmented : {false, true}) {
    SchedulerConfig config;
    config.policy = fragmented ? AdmissionPolicy::kFragmented
                               : AdmissionPolicy::kContiguous;
    config.fragmented_lookahead = 0;
    Simulator sim;
    auto disks = DiskArray::Create(6, DiskParameters::Evaluation());
    config.stride = 1;
    config.interval = kInterval;
    auto sched = IntervalScheduler::Create(&sim, &*disks, config);
    ASSERT_TRUE(sched.ok());
    SimTime latency_a, latency_b;
    DisplayRequest a;
    a.degree = 4;
    a.num_subobjects = 8;
    a.on_started = [&latency_a](SimTime l) { latency_a = l; };
    a.on_completed = [] {};
    ASSERT_TRUE((*sched)->Submit(std::move(a)).ok());
    DisplayRequest b;
    b.degree = 4;
    b.num_subobjects = 8;
    b.on_started = [&latency_b](SimTime l) { latency_b = l; };
    b.on_completed = [] {};
    ASSERT_TRUE((*sched)->Submit(std::move(b)).ok());
    sim.RunUntil(SimTime::Minutes(1));
    EXPECT_EQ(latency_a, SimTime::Zero());
    EXPECT_GT(latency_b, SimTime::Zero());
  }
}

}  // namespace
}  // namespace stagger
