// Fast-forward replicas under load (closes the "untested under load"
// note in ROADMAP item 5): scan replicas built by AddFastForwardReplicas
// join the catalog and are displayed through a real StripedServer by an
// open-arrivals VCR workload — scan-then-play sessions (replica first,
// original after) interleaved with pause/resume re-requests and a flash
// crowd — with the per-interval scheduler audit on throughout.  The
// mixed-degree schedule (7-subobject replicas next to 100-subobject
// originals on the same stripes) must stay hiccup-free with every
// invariant intact.

#include <gtest/gtest.h>

#include <memory>

#include "core/fast_forward.h"
#include "core/invariants.h"
#include "disk/disk_array.h"
#include "server/striped_server.h"
#include "sim/simulator.h"
#include "storage/catalog.h"
#include "tertiary/tertiary_manager.h"
#include "workload/open_arrivals.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Micros(604800);

TEST(FastForwardLoadTest, ReplicaCatalogMapsOriginalsToScans) {
  Catalog catalog = Catalog::Uniform(10, 100, Bandwidth::Mbps(100));
  auto replicas = AddFastForwardReplicas(&catalog, 16);
  ASSERT_TRUE(replicas.ok());
  ASSERT_EQ(replicas->size(), 10u);
  EXPECT_EQ(catalog.size(), 20);
  for (ObjectId id = 0; id < 10; ++id) {
    const ObjectId rid = (*replicas)[static_cast<size_t>(id)];
    ASSERT_TRUE(catalog.Contains(rid));
    const MediaObject& replica = catalog.Get(rid);
    EXPECT_EQ(replica.num_subobjects, 7);  // ceil(100 / 16)
    EXPECT_EQ(replica.name, catalog.Get(id).name + ".ff16");
    EXPECT_EQ(replica.display_bandwidth.bits_per_sec(),
              catalog.Get(id).display_bandwidth.bits_per_sec());
  }
}

TEST(FastForwardLoadTest, ReplicaPositionMappingRoundTrips) {
  MediaObject original;
  original.num_subobjects = 100;
  auto replica = MakeFastForwardReplica(original, 16);
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ(replica->object.num_subobjects, 7);
  EXPECT_EQ(replica->ToReplica(0), 0);
  EXPECT_EQ(replica->ToReplica(99), 6);
  EXPECT_EQ(replica->FromReplica(6), 96);
  // Every normal position maps into a valid replica subobject.
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_LT(replica->ToReplica(i), replica->object.num_subobjects);
    EXPECT_LE(replica->FromReplica(replica->ToReplica(i)), i);
  }
  EXPECT_NEAR(replica->StorageOverhead(original), 0.07, 1e-9);
}

TEST(FastForwardLoadTest, ScanSessionsUnderOpenArrivalsStayAuditClean) {
  Simulator sim;
  Catalog catalog = Catalog::Uniform(20, 100, Bandwidth::Mbps(100));
  auto replicas = AddFastForwardReplicas(&catalog, 16);
  ASSERT_TRUE(replicas.ok());

  auto disks = DiskArray::Create(50, DiskParameters::Evaluation());
  ASSERT_TRUE(disks.ok());
  TertiaryManager tertiary(&sim, TertiaryDevice(TertiaryParameters{}));

  StripedConfig config;
  config.stride = 5;
  config.interval = kInterval;
  config.preload_objects = catalog.size();  // originals + replicas resident
  auto server =
      StripedServer::Create(&sim, &catalog, &*disks, &tertiary, config);
  ASSERT_TRUE(server.ok()) << server.status();

  auto popularity = TruncatedGeometric::FromMean(20, 5);
  ASSERT_TRUE(popularity.ok());

  OpenArrivalsConfig oc;
  oc.mean_interarrival = SimTime::Seconds(10);
  oc.seed = 42;
  oc.scan_probability = 0.5;   // half the sessions scan first
  oc.pause_probability = 0.3;  // and re-request after a pause
  oc.mean_pause = SimTime::Minutes(1);
  oc.scan_replica = *replicas;
  FlashCrowd crowd;
  crowd.start = SimTime::Minutes(15);
  crowd.duration = SimTime::Minutes(10);
  crowd.object = 0;
  crowd.hot_fraction = 0.7;
  crowd.rate_multiplier = 2.0;
  oc.flash_crowds.push_back(crowd);
  OpenArrivals arrivals(&sim, server->get(), &*popularity, std::move(oc));
  arrivals.Start();

  // Interval-by-interval with the scheduler audit on; the full server
  // sweep (catalog + every resident layout) every 64 intervals.
  const SimTime horizon = SimTime::Minutes(45);
  int64_t step = 0;
  for (SimTime t = kInterval; t <= horizon; t = t + kInterval, ++step) {
    sim.RunUntil(t);
    ASSERT_TRUE(InvariantAuditor::AuditScheduler(*(*server)->scheduler()).ok());
    if (step % 64 == 0) {
      ASSERT_TRUE((*server)->AuditInvariants().ok());
    }
  }
  arrivals.Stop();
  sim.RunUntil(horizon + SimTime::Hours(1));  // drain
  ASSERT_TRUE((*server)->AuditInvariants().ok());

  // The VCR surface was actually exercised.
  EXPECT_GT(arrivals.vcr_scans(), 0);
  EXPECT_GT(arrivals.vcr_resumes(), 0);
  EXPECT_GT(arrivals.flash_redirects(), 0);
  EXPECT_GT(arrivals.displays_completed(), 0);
  // Every session leg resolved; a scan adds its play leg, so completed
  // displays exceed the scan count.
  EXPECT_EQ(arrivals.in_flight(), 0);
  EXPECT_GT(arrivals.displays_completed(), arrivals.vcr_scans());
  // Delivery stayed clean across mixed replica/original degrees.
  EXPECT_EQ((*server)->scheduler_metrics().hiccups, 0);
  EXPECT_EQ(arrivals.displays_interrupted(), 0);
}

TEST(FastForwardLoadTest, BatchedScanSessionsMergeReplicaStreams) {
  // Scans through the batcher: crowds of stations scanning the same hot
  // object share replica and original streams alike.
  Simulator sim;
  Catalog catalog = Catalog::Uniform(12, 100, Bandwidth::Mbps(100));
  auto replicas = AddFastForwardReplicas(&catalog, 16);
  ASSERT_TRUE(replicas.ok());
  auto disks = DiskArray::Create(50, DiskParameters::Evaluation());
  ASSERT_TRUE(disks.ok());
  TertiaryManager tertiary(&sim, TertiaryDevice(TertiaryParameters{}));

  StripedConfig config;
  config.stride = 5;
  config.interval = kInterval;
  config.preload_objects = catalog.size();
  config.batch = true;
  config.batch_window = SimTime::Seconds(30);
  auto server =
      StripedServer::Create(&sim, &catalog, &*disks, &tertiary, config);
  ASSERT_TRUE(server.ok()) << server.status();

  auto popularity = TruncatedGeometric::FromMean(12, 3);
  ASSERT_TRUE(popularity.ok());
  OpenArrivalsConfig oc;
  oc.mean_interarrival = SimTime::Seconds(5);
  oc.seed = 7;
  oc.scan_probability = 0.6;
  oc.scan_replica = *replicas;
  OpenArrivals arrivals(&sim, server->get(), &*popularity, std::move(oc));
  arrivals.Start();
  sim.RunUntil(SimTime::Minutes(30));
  arrivals.Stop();
  sim.RunUntil(SimTime::Minutes(90));

  const StreamBatcher* batcher = (*server)->batcher();
  ASSERT_NE(batcher, nullptr);
  EXPECT_GT(arrivals.vcr_scans(), 0);
  EXPECT_GT(batcher->metrics().window_joins, 0);
  EXPECT_LT(batcher->metrics().physical_streams,
            batcher->metrics().requests);
  EXPECT_EQ(batcher->open_batches(), 0);
  EXPECT_EQ(arrivals.in_flight(), 0);
  EXPECT_EQ((*server)->scheduler_metrics().hiccups, 0);
}

}  // namespace
}  // namespace stagger
