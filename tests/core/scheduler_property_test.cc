// Property tests over the interval scheduler: for a sweep of array
// sizes, strides, degrees, and admission policies, a randomized (but
// seeded) request load must always satisfy the scheme's invariants —
// hiccup-free delivery, conservation of virtual disks and buffers, and
// completion of every request.  The per-read physical-alignment
// invariant is enforced by a STAGGER_CHECK inside the scheduler, so
// simply driving the load exercises it.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <tuple>
#include <vector>

#include "core/interval_scheduler.h"
#include "disk/disk_array.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace stagger {
namespace {

struct PropertyCase {
  int32_t num_disks;
  int32_t stride;
  int32_t max_degree;
  AdmissionPolicy policy;
  bool coalesce;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  std::ostringstream os;
  os << "D" << c.num_disks << "_k" << c.stride << "_M" << c.max_degree << "_"
     << (c.policy == AdmissionPolicy::kContiguous ? "contig" : "frag")
     << (c.coalesce ? "_coal" : "") << "_s" << c.seed;
  return os.str();
}

class SchedulerPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SchedulerPropertyTest, RandomLoadKeepsInvariants) {
  const PropertyCase& c = GetParam();
  Simulator sim;
  auto disks = DiskArray::Create(c.num_disks, DiskParameters::Evaluation());
  ASSERT_TRUE(disks.ok());
  SchedulerConfig config;
  config.stride = c.stride;
  config.interval = SimTime::Millis(605);
  config.policy = c.policy;
  config.coalesce = c.coalesce;
  auto sched = IntervalScheduler::Create(&sim, &*disks, config);
  ASSERT_TRUE(sched.ok()) << sched.status();

  Rng rng(c.seed);
  int completed = 0;
  constexpr int kRequests = 40;
  // Submit randomized requests at randomized times.
  SimTime at = SimTime::Zero();
  for (int i = 0; i < kRequests; ++i) {
    DisplayRequest req;
    req.object = i;
    req.degree = static_cast<int32_t>(
        1 + rng.NextBounded(static_cast<uint64_t>(c.max_degree)));
    req.start_disk = static_cast<int32_t>(
        rng.NextBounded(static_cast<uint64_t>(c.num_disks)));
    req.num_subobjects = static_cast<int64_t>(1 + rng.NextBounded(40));
    req.on_completed = [&completed] { ++completed; };
    at += SimTime::Micros(static_cast<int64_t>(rng.NextBounded(3000000)));
    sim.ScheduleAt(at, [&sched, req = std::move(req)]() mutable {
      auto id = (*sched)->Submit(std::move(req));
      STAGGER_CHECK(id.ok()) << id.status();
    });
  }

  sim.RunUntil(SimTime::Hours(2));

  const SchedulerMetrics& m = (*sched)->metrics();
  EXPECT_EQ(completed, kRequests) << "not all displays finished";
  EXPECT_EQ(m.displays_completed, kRequests);
  EXPECT_EQ(m.hiccups, 0) << "continuous display violated";
  EXPECT_EQ((*sched)->active_streams(), 0u);
  EXPECT_EQ((*sched)->pending_requests(), 0u);
  EXPECT_EQ((*sched)->idle_virtual_disks(), c.num_disks)
      << "virtual disks leaked";
  // All buffers returned.
  int64_t buffered = 0;
  (void)buffered;
  EXPECT_EQ(m.buffered_fragments.current(), 0.0);
  // Startup latency was recorded for every display.
  EXPECT_EQ(m.startup_latency_sec.count(), kRequests);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerPropertyTest,
    ::testing::Values(
        // Coprime and non-coprime (D, k), contiguous policy.
        PropertyCase{8, 1, 3, AdmissionPolicy::kContiguous, false, 1},
        PropertyCase{8, 3, 4, AdmissionPolicy::kContiguous, false, 2},
        PropertyCase{9, 3, 3, AdmissionPolicy::kContiguous, false, 3},
        PropertyCase{12, 4, 4, AdmissionPolicy::kContiguous, false, 4},
        PropertyCase{15, 5, 5, AdmissionPolicy::kContiguous, false, 5},
        PropertyCase{16, 7, 5, AdmissionPolicy::kContiguous, false, 6},
        PropertyCase{20, 1, 6, AdmissionPolicy::kContiguous, false, 7},
        // Fragmented admission (Algorithm 1).
        PropertyCase{8, 1, 3, AdmissionPolicy::kFragmented, false, 8},
        PropertyCase{12, 5, 4, AdmissionPolicy::kFragmented, false, 9},
        PropertyCase{16, 3, 5, AdmissionPolicy::kFragmented, false, 10},
        PropertyCase{20, 4, 6, AdmissionPolicy::kFragmented, false, 11},
        // Fragmented + coalescing (Algorithm 2).
        PropertyCase{8, 1, 3, AdmissionPolicy::kFragmented, true, 12},
        PropertyCase{12, 5, 4, AdmissionPolicy::kFragmented, true, 13},
        PropertyCase{16, 3, 5, AdmissionPolicy::kFragmented, true, 14},
        PropertyCase{20, 4, 6, AdmissionPolicy::kFragmented, true, 15},
        PropertyCase{24, 11, 6, AdmissionPolicy::kFragmented, true, 16}),
    CaseName);

// Determinism: identical seeds produce bit-identical schedules.
TEST(SchedulerDeterminismTest, SameSeedSameOutcome) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    auto disks = DiskArray::Create(12, DiskParameters::Evaluation());
    SchedulerConfig config;
    config.stride = 1;
    config.interval = SimTime::Millis(605);
    config.policy = AdmissionPolicy::kFragmented;
    config.coalesce = true;
    auto sched = IntervalScheduler::Create(&sim, &*disks, config);
    Rng rng(seed);
    std::vector<double> latencies;
    SimTime at = SimTime::Zero();
    for (int i = 0; i < 25; ++i) {
      DisplayRequest req;
      req.object = i;
      req.degree = static_cast<int32_t>(1 + rng.NextBounded(4));
      req.start_disk = static_cast<int32_t>(rng.NextBounded(12));
      req.num_subobjects = static_cast<int64_t>(1 + rng.NextBounded(30));
      req.on_started = [&latencies](SimTime l) {
        latencies.push_back(l.seconds());
      };
      at += SimTime::Micros(static_cast<int64_t>(rng.NextBounded(2000000)));
      sim.ScheduleAt(at, [&sched, req = std::move(req)]() mutable {
        (void)(*sched)->Submit(std::move(req));
      });
    }
    sim.RunUntil(SimTime::Hours(1));
    latencies.push_back(static_cast<double>((*sched)->metrics().coalesce_migrations));
    latencies.push_back(static_cast<double>((*sched)->metrics().displays_completed));
    return latencies;
  };
  EXPECT_EQ(run(424242), run(424242));
  EXPECT_NE(run(424242), run(424243));
}

// The lockstep fast path (contiguous streams advanced with one
// range-reserve) is disabled whenever a read observer is installed, so
// running the same load with and without a no-op observer pits the fast
// path against the per-lane reference path.  Every externally visible
// outcome must match exactly.
TEST(SchedulerFastPathTest, MatchesPerLanePathExactly) {
  auto run = [](bool force_per_lane_path, uint64_t seed) {
    Simulator sim;
    auto disks = DiskArray::Create(16, DiskParameters::Evaluation());
    SchedulerConfig config;
    config.stride = 3;
    config.interval = SimTime::Millis(605);
    config.policy = AdmissionPolicy::kFragmented;
    config.coalesce = true;
    int64_t observed_reads = 0;
    if (force_per_lane_path) {
      config.read_observer = [&observed_reads](int64_t, ObjectId, int64_t,
                                               int32_t, int32_t) {
        ++observed_reads;
      };
    }
    auto sched = IntervalScheduler::Create(&sim, &*disks, config);
    Rng rng(seed);
    SimTime at = SimTime::Zero();
    for (int i = 0; i < 30; ++i) {
      DisplayRequest req;
      req.object = i;
      req.degree = static_cast<int32_t>(1 + rng.NextBounded(5));
      req.start_disk = static_cast<int32_t>(rng.NextBounded(16));
      req.num_subobjects = static_cast<int64_t>(1 + rng.NextBounded(30));
      at += SimTime::Micros(static_cast<int64_t>(rng.NextBounded(2000000)));
      sim.ScheduleAt(at, [&sched, req = std::move(req)]() mutable {
        (void)(*sched)->Submit(std::move(req));
      });
    }
    sim.RunUntil(SimTime::Hours(1));
    const SchedulerMetrics& m = (*sched)->metrics();
    std::vector<double> fingerprint = {
        static_cast<double>(m.displays_completed),
        static_cast<double>(m.fragmented_admissions),
        static_cast<double>(m.coalesce_migrations),
        static_cast<double>(m.hiccups),
        m.buffered_fragments.current(),
        m.startup_latency_sec.mean(),
        disks->MeanUtilization(),
        disks->MaxUtilization(),
        disks->MinUtilization(),
    };
    return fingerprint;
  };
  for (uint64_t seed : {1ull, 7ull, 99ull, 31415ull}) {
    EXPECT_EQ(run(false, seed), run(true, seed)) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace stagger
