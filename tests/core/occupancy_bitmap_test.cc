// Property tests for the O(active-work) occupancy machinery: the
// word-masked Bitmap window queries and the single-bit-per-delay
// virtual-disk searches must agree exactly with brute-force O(D)
// references, across many seeds and (D, M, k) shapes — including
// wrap-around windows and non-coprime strides (gcd(D, k) > 1).

#include "util/bitmap.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/virtual_disk.h"
#include "util/rng.h"

namespace stagger {
namespace {

// ---------------------------------------------------------------------
// Bitmap unit tests.

TEST(BitmapTest, SetTestClear) {
  Bitmap b(130);  // spans three words
  EXPECT_EQ(b.size(), 130);
  EXPECT_EQ(b.CountSet(), 0);
  for (int32_t i : {0, 63, 64, 127, 128, 129}) {
    EXPECT_FALSE(b.Test(i));
    b.Set(i);
    EXPECT_TRUE(b.Test(i));
  }
  EXPECT_EQ(b.CountSet(), 6);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.CountSet(), 5);
  b.ClearAll();
  EXPECT_EQ(b.CountSet(), 0);
  EXPECT_FALSE(b.Test(0));
}

TEST(BitmapTest, ResizeClears) {
  Bitmap b(64);
  b.Set(10);
  b.Resize(100);
  EXPECT_EQ(b.size(), 100);
  EXPECT_EQ(b.CountSet(), 0);
}

TEST(BitmapTest, ForEachSetVisitsAscending) {
  Bitmap b(200);
  const std::vector<int32_t> bits = {0, 1, 63, 64, 65, 126, 128, 199};
  // Insert in scrambled order; iteration must still ascend.
  for (int32_t i : {128, 0, 65, 199, 63, 1, 126, 64}) b.Set(i);
  std::vector<int32_t> seen;
  b.ForEachSet([&](int32_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, bits);
}

TEST(BitmapTest, WindowClearBasics) {
  Bitmap b(100);
  EXPECT_TRUE(b.WindowClear(0, 100));  // empty map: everything clear
  EXPECT_TRUE(b.WindowClear(42, 0));   // zero-length window
  b.Set(70);
  EXPECT_FALSE(b.WindowClear(0, 100));
  EXPECT_TRUE(b.WindowClear(0, 70));
  EXPECT_FALSE(b.WindowClear(0, 71));
  EXPECT_TRUE(b.WindowClear(71, 29));
  // Wrap-around: [95, 5) crosses the boundary but misses bit 70...
  EXPECT_TRUE(b.WindowClear(95, 10));
  // ...while [60, 15) covers it.
  EXPECT_FALSE(b.WindowClear(60, 15));
  b.Clear(70);
  b.Set(2);
  EXPECT_FALSE(b.WindowClear(95, 10));  // wrap catches the low bit
}

TEST(BitmapTest, SetRangeAndSetWindow) {
  Bitmap b(100);
  b.SetRange(10, 10);  // empty range is a no-op
  EXPECT_EQ(b.CountSet(), 0);
  b.SetRange(60, 70);  // straddles the word boundary
  EXPECT_EQ(b.CountSet(), 10);
  EXPECT_FALSE(b.Test(59));
  EXPECT_TRUE(b.Test(60));
  EXPECT_TRUE(b.Test(69));
  EXPECT_FALSE(b.Test(70));
  b.ClearAll();
  b.SetWindow(95, 10);  // wraps: bits 95..99 and 0..4
  EXPECT_EQ(b.CountSet(), 10);
  EXPECT_TRUE(b.Test(99));
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(4));
  EXPECT_FALSE(b.Test(5));
  EXPECT_FALSE(b.Test(94));
}

TEST(BitmapPropertyTest, SetWindowMatchesNaive) {
  const int32_t sizes[] = {1, 7, 63, 64, 65, 100, 128, 200, 1000};
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed + 1);
    for (int32_t size : sizes) {
      const int32_t start =
          static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(size)));
      const int32_t len = static_cast<int32_t>(
          rng.NextBounded(static_cast<uint64_t>(size) + 1));
      Bitmap fast(size);
      fast.SetWindow(start, len);
      Bitmap naive(size);
      for (int32_t i = 0; i < len; ++i) naive.Set((start + i) % size);
      EXPECT_EQ(fast.CountSet(), naive.CountSet())
          << "seed=" << seed << " size=" << size << " start=" << start
          << " len=" << len;
      for (int32_t i = 0; i < size; ++i) {
        ASSERT_EQ(fast.Test(i), naive.Test(i))
            << "seed=" << seed << " size=" << size << " start=" << start
            << " len=" << len << " bit=" << i;
      }
    }
  }
}

// Reference for FindNextSet: scan bits one by one.
int32_t FindNextSetNaive(const Bitmap& b, int32_t from) {
  for (int32_t i = std::max(from, 0); i < b.size(); ++i) {
    if (b.Test(i)) return i;
  }
  return -1;
}

TEST(BitmapPropertyTest, FindNextSetMatchesNaive) {
  const int32_t sizes[] = {1, 7, 63, 64, 65, 100, 128, 256, 1000};
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed + 1);
    for (int32_t size : sizes) {
      Bitmap b(size);
      // Density varies per seed: empty, sparse, and dense patterns.
      const uint64_t density = 1 + seed % 8;
      for (int32_t i = 0; i < size; ++i) {
        if (rng.NextBounded(8) < density) b.Set(i);
      }
      for (int32_t from : {-3, 0, 1, size / 2, size - 1, size, size + 5}) {
        ASSERT_EQ(b.FindNextSet(from), FindNextSetNaive(b, from))
            << "seed=" << seed << " size=" << size << " from=" << from;
      }
      const int32_t random_from = static_cast<int32_t>(
          rng.NextBounded(static_cast<uint64_t>(size) + 2));
      ASSERT_EQ(b.FindNextSet(random_from), FindNextSetNaive(b, random_from))
          << "seed=" << seed << " size=" << size << " from=" << random_from;
    }
  }
}

TEST(BitmapTest, FindNextSetEdgeCases) {
  Bitmap empty(200);
  EXPECT_EQ(empty.FindNextSet(0), -1);
  EXPECT_EQ(empty.FindNextSet(-10), -1);
  EXPECT_EQ(empty.FindNextSet(199), -1);
  EXPECT_EQ(empty.FindNextSet(200), -1);

  Bitmap b(200);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.FindNextSet(-1), 0);
  EXPECT_EQ(b.FindNextSet(0), 0);
  EXPECT_EQ(b.FindNextSet(1), 63);
  EXPECT_EQ(b.FindNextSet(63), 63);
  EXPECT_EQ(b.FindNextSet(64), 64);
  EXPECT_EQ(b.FindNextSet(65), 199);
  EXPECT_EQ(b.FindNextSet(199), 199);
  EXPECT_EQ(b.FindNextSet(200), -1);

  Bitmap zero_sized;
  EXPECT_EQ(zero_sized.FindNextSet(0), -1);
}

// Reference for WindowClear: test bits one by one.
bool WindowClearNaive(const Bitmap& b, int32_t start, int32_t len) {
  for (int32_t i = 0; i < len; ++i) {
    if (b.Test((start + i) % b.size())) return false;
  }
  return true;
}

TEST(BitmapPropertyTest, WindowClearMatchesNaive) {
  const int32_t sizes[] = {1, 7, 63, 64, 65, 100, 128, 200, 1000};
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed + 1);
    for (int32_t size : sizes) {
      Bitmap b(size);
      // Sparse to mid-density occupancy, like a partly loaded farm.
      const double density = rng.NextDouble() * 0.5;
      for (int32_t i = 0; i < size; ++i) {
        if (rng.NextBool(density)) b.Set(i);
      }
      for (int32_t probe = 0; probe < 20; ++probe) {
        const int32_t start =
            static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(size)));
        const int32_t len = static_cast<int32_t>(
            rng.NextBounded(static_cast<uint64_t>(size) + 1));
        EXPECT_EQ(b.WindowClear(start, len), WindowClearNaive(b, start, len))
            << "seed=" << seed << " size=" << size << " start=" << start
            << " len=" << len;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Virtual-disk search property tests.  The bitmap searches probe one
// bit per delay; the references below minimize/maximize over all D
// virtual disks with AlignmentDelay, the way the pre-optimization
// scheduler did.

struct Shape {
  int32_t d;  ///< disks
  int32_t k;  ///< stride
};

// Mixes coprime, divisor, and shared-factor strides (P = D/gcd varies).
constexpr Shape kShapes[] = {{10, 1},  {10, 4},   {12, 8},    {13, 5},
                             {64, 16}, {100, 7},  {100, 30},  {101, 101},
                             {128, 6}, {1000, 5}, {1000, 48}, {1000, 999}};

std::optional<std::pair<int32_t, int64_t>> EarliestFreeNaive(
    const VirtualDiskFrame& frame, const Bitmap& occupied, const Bitmap& taken,
    int64_t t, int32_t target, int64_t max_delay, bool skip_zero) {
  std::optional<std::pair<int32_t, int64_t>> best;
  for (int32_t v = 0; v < frame.num_disks(); ++v) {
    if (occupied.Test(v) || taken.Test(v)) continue;
    const auto delay = frame.AlignmentDelay(v, target, t);
    if (!delay.has_value()) continue;
    const int64_t d = *delay;
    // skip_zero excludes the currently-aligned virtual disk outright:
    // the search never revisits it one period later.
    if (skip_zero && d == 0) continue;
    if (d > max_delay) continue;
    if (!best.has_value() || d < best->second) best = {v, d};
  }
  return best;
}

std::optional<std::pair<int32_t, int64_t>> LatestFreeNaive(
    const VirtualDiskFrame& frame, const Bitmap& occupied, int64_t t,
    int32_t target, int64_t tau, int64_t max_resume) {
  std::optional<std::pair<int32_t, int64_t>> best;
  for (int32_t v = 0; v < frame.num_disks(); ++v) {
    if (occupied.Test(v)) continue;
    const auto delay = frame.AlignmentDelay(v, target, t);
    if (!delay.has_value()) continue;
    int64_t resume = tau + *delay;
    if (resume > max_resume) continue;
    // Later alignments of the same virtual disk, in whole periods.
    resume += ((max_resume - resume) / frame.period()) * frame.period();
    if (!best.has_value() || resume > best->second) best = {v, resume};
  }
  return best;
}

TEST(VirtualDiskSearchPropertyTest, EarliestFreeMatchesNaive) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed * 977 + 13);
    for (const Shape& shape : kShapes) {
      auto frame = VirtualDiskFrame::Create(shape.d, shape.k);
      ASSERT_TRUE(frame.ok());
      Bitmap occupied(shape.d);
      Bitmap taken(shape.d);
      const double density = rng.NextDouble() * 0.9;
      for (int32_t v = 0; v < shape.d; ++v) {
        if (rng.NextBool(density)) occupied.Set(v);
        if (rng.NextBool(0.1)) taken.Set(v);
      }
      const int64_t t = rng.NextInRange(0, 10000);
      const int32_t target =
          static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(shape.d)));
      const int64_t max_delay = rng.NextInRange(0, 2 * frame->period());
      const bool skip_zero = rng.NextBool(0.5);

      const auto got = frame->FindEarliestFreeVdisk(occupied, taken, t, target,
                                                    max_delay, skip_zero);
      const auto want = EarliestFreeNaive(*frame, occupied, taken, t, target,
                                          max_delay, skip_zero);
      ASSERT_EQ(got.has_value(), want.has_value())
          << "seed=" << seed << " D=" << shape.d << " k=" << shape.k;
      if (got.has_value()) {
        EXPECT_EQ(got->first, want->first);
        EXPECT_EQ(got->second, want->second);
      }
    }
  }
}

TEST(VirtualDiskSearchPropertyTest, LatestFreeMatchesNaive) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed * 131 + 7);
    for (const Shape& shape : kShapes) {
      auto frame = VirtualDiskFrame::Create(shape.d, shape.k);
      ASSERT_TRUE(frame.ok());
      Bitmap occupied(shape.d);
      const double density = rng.NextDouble() * 0.9;
      for (int32_t v = 0; v < shape.d; ++v) {
        if (rng.NextBool(density)) occupied.Set(v);
      }
      const int64_t t = rng.NextInRange(0, 10000);
      const int32_t target =
          static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(shape.d)));
      const int64_t tau = rng.NextInRange(0, 500);
      // Below, at, and beyond tau + P, to cover the overshoot-reject arm.
      const int64_t max_resume = tau + rng.NextInRange(-2, 3 * frame->period());

      const auto got =
          frame->FindLatestFreeVdisk(occupied, t, target, tau, max_resume);
      const auto want =
          LatestFreeNaive(*frame, occupied, t, target, tau, max_resume);
      ASSERT_EQ(got.has_value(), want.has_value())
          << "seed=" << seed << " D=" << shape.d << " k=" << shape.k
          << " tau=" << tau << " max_resume=" << max_resume;
      if (got.has_value()) {
        EXPECT_EQ(got->first, want->first);
        EXPECT_EQ(got->second, want->second);
      }
    }
  }
}

// Full-occupancy and empty-occupancy edges for both searches.
TEST(VirtualDiskSearchTest, DegenerateOccupancies) {
  auto frame = VirtualDiskFrame::Create(100, 7);
  ASSERT_TRUE(frame.ok());
  Bitmap none(100);
  Bitmap all(100);
  for (int32_t v = 0; v < 100; ++v) all.Set(v);

  EXPECT_FALSE(
      frame->FindEarliestFreeVdisk(all, none, 3, 42, 1000, false).has_value());
  EXPECT_FALSE(frame->FindLatestFreeVdisk(all, 3, 42, 0, 1000).has_value());

  // Empty map, delta 0 allowed: the aligned disk itself wins.
  const auto earliest =
      frame->FindEarliestFreeVdisk(none, none, 3, 42, 1000, false);
  ASSERT_TRUE(earliest.has_value());
  EXPECT_EQ(earliest->second, 0);
  EXPECT_EQ(frame->PhysicalOf(earliest->first, 3), 42);

  // Empty map: the latest resume is exactly max_resume.
  const auto latest = frame->FindLatestFreeVdisk(none, 3, 42, 5, 500);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->second, 500);
}

}  // namespace
}  // namespace stagger
