#include "core/invariants.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "core/interval_scheduler.h"
#include "core/logical_scheduler.h"
#include "core/schedule_trace.h"
#include "disk/disk_array.h"
#include "sim/simulator.h"
#include "storage/catalog.h"
#include "storage/layout.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Millis(605);

StaggeredLayout MakeLayout(int32_t num_disks, int32_t start_disk,
                           int32_t stride, int32_t degree) {
  auto layout = StaggeredLayout::Create(num_disks, start_disk, stride, degree);
  STAGGER_CHECK_OK(layout.status());
  return *layout;
}

// --- static placement audits ---------------------------------------------

TEST(InvariantsPlacementTest, ValidStaggeredLayoutPasses) {
  // The paper's running example: D=20, k=3.
  const StaggeredLayout layout = MakeLayout(20, 5, 3, 4);
  for (int64_t n : {1, 7, 20, 61}) {
    EXPECT_TRUE(InvariantAuditor::AuditLayout(layout, n).ok()) << "n=" << n;
  }
}

TEST(InvariantsPlacementTest, ValidLayoutsAcrossGcdRegimesPass) {
  for (int32_t stride : {1, 2, 3, 4, 5, 10}) {
    for (int32_t degree : {1, 3, 10}) {
      const StaggeredLayout layout = MakeLayout(10, 7, stride, degree);
      EXPECT_TRUE(InvariantAuditor::AuditLayout(layout, 25).ok())
          << "stride=" << stride << " degree=" << degree;
    }
  }
}

TEST(InvariantsPlacementTest, RejectsNonContiguousFragments) {
  const StaggeredLayout layout = MakeLayout(20, 0, 3, 4);
  PlacementTable placement = MaterializePlacement(layout, 6);
  ASSERT_TRUE(InvariantAuditor::AuditPlacement(placement, 20, 3).ok());

  // Fragment X_{2.2} jumps off its subobject's consecutive-disk run.
  placement[2][2] = (placement[2][2] + 5) % 20;
  const Status status = InvariantAuditor::AuditPlacement(placement, 20, 3);
  EXPECT_TRUE(status.IsInternal()) << status;
}

TEST(InvariantsPlacementTest, RejectsStrideViolation) {
  const StaggeredLayout layout = MakeLayout(20, 0, 3, 4);
  PlacementTable placement = MaterializePlacement(layout, 6);

  // Subobject 4 starts one disk early: contiguity within the row still
  // holds, but the row-to-row progression is no longer stride k.
  for (auto& disk : placement[4]) disk = (disk + 19) % 20;
  const Status status = InvariantAuditor::AuditPlacement(placement, 20, 3);
  EXPECT_TRUE(status.IsInternal()) << status;
}

TEST(InvariantsPlacementTest, RejectsRaggedAndOutOfRangeTables) {
  const StaggeredLayout layout = MakeLayout(8, 1, 2, 3);
  PlacementTable ragged = MaterializePlacement(layout, 4);
  ragged[1].pop_back();
  EXPECT_TRUE(InvariantAuditor::AuditPlacement(ragged, 8, 2).IsInternal());

  PlacementTable out_of_range = MaterializePlacement(layout, 4);
  out_of_range[0][0] = 8;  // valid disks are [0, 8)
  EXPECT_TRUE(
      InvariantAuditor::AuditPlacement(out_of_range, 8, 2).IsInternal());
}

TEST(InvariantsSkewTest, RejectsOverloadedDisk) {
  // D=4, k=2 => g=2, period P=2.  Four subobjects of degree 2 must
  // alternate between {0,1} and {2,3}; piling every row onto disks
  // {0,1} quadruples the load on disk 0 and starves disks 2-3, outside
  // the paper's ceil/floor window bounds.
  const PlacementTable piled = {{0, 1}, {0, 1}, {0, 1}, {0, 1}};
  const Status status = InvariantAuditor::AuditSkew(piled, 4, 2);
  EXPECT_TRUE(status.IsInternal()) << status;
}

TEST(InvariantsSkewTest, RejectsStartDiskOutsideResidueClass) {
  // With g = gcd(6, 2) = 2 every subobject start must share the start
  // disk's residue mod 2; subobject 2 starting on an odd disk breaks
  // the reachable-residue-class invariant even though its row is
  // internally contiguous.
  const PlacementTable mixed_residues = {{0, 1}, {2, 3}, {5, 0}, {0, 1}};
  const Status status = InvariantAuditor::AuditSkew(mixed_residues, 6, 2);
  EXPECT_TRUE(status.IsInternal()) << status;
}

TEST(InvariantsCatalogTest, UniformCatalogPassesAndOversizedDegreeFails) {
  Catalog catalog = Catalog::Uniform(/*count=*/8, /*num_subobjects=*/100,
                                     /*display_bandwidth=*/Bandwidth::Mbps(60));
  // M_X = ceil(60/20) = 3 <= D.
  EXPECT_TRUE(
      InvariantAuditor::AuditCatalog(catalog, Bandwidth::Mbps(20), 10).ok());
  // Same database on a 2-disk array: M_X = 3 > D, undisplayable.
  EXPECT_TRUE(InvariantAuditor::AuditCatalog(catalog, Bandwidth::Mbps(20), 2)
                  .IsInternal());
}

// --- recorded schedule audits --------------------------------------------

class TraceAuditTest : public ::testing::Test {
 protected:
  TraceAuditTest() : layout_(MakeLayout(10, 2, 3, 2)) {
    layouts_.emplace(kObject, layout_);
  }

  /// Records the legal schedule: subobject i read whole in interval i.
  void RecordValidRun(ScheduleTracer* trace, int64_t num_subobjects) {
    for (int64_t i = 0; i < num_subobjects; ++i) {
      for (int32_t j = 0; j < layout_.degree(); ++j) {
        trace->Record(i, kObject, i, j, layout_.DiskFor(i, j));
      }
    }
  }

  static constexpr ObjectId kObject = 0;
  StaggeredLayout layout_;
  std::map<ObjectId, StaggeredLayout> layouts_;
};

TEST_F(TraceAuditTest, ValidTracePasses) {
  ScheduleTracer trace(10);
  RecordValidRun(&trace, 5);
  EXPECT_TRUE(InvariantAuditor::AuditTrace(trace, layouts_).ok());
}

TEST_F(TraceAuditTest, RejectsOverCommittedDisk) {
  ScheduleTracer trace(10);
  RecordValidRun(&trace, 3);
  // A second fragment lands on subobject 0's first disk in interval 0:
  // that disk is asked for two transfers in one time interval.
  trace.Record(0, kObject, 1, 0, layout_.DiskFor(0, 0));
  EXPECT_EQ(trace.num_collisions(), 1);
  const Status status = InvariantAuditor::AuditTrace(trace, layouts_);
  EXPECT_TRUE(status.IsInternal()) << status;
}

TEST_F(TraceAuditTest, RejectsPlacementMismatch) {
  ScheduleTracer trace(10);
  // Fragment 0.1 read from the wrong disk (one past its layout slot).
  trace.Record(0, kObject, 0, 0, layout_.DiskFor(0, 0));
  trace.Record(0, kObject, 0, 1, (layout_.DiskFor(0, 1) + 1) % 10);
  const Status status = InvariantAuditor::AuditTrace(trace, layouts_);
  EXPECT_TRUE(status.IsInternal()) << status;
}

TEST_F(TraceAuditTest, RejectsDuplicateFragmentRead) {
  ScheduleTracer trace(10);
  trace.Record(0, kObject, 0, 0, layout_.DiskFor(0, 0));
  trace.Record(0, kObject, 0, 1, layout_.DiskFor(0, 1));
  trace.Record(1, kObject, 0, 0, layout_.DiskFor(0, 0));  // read again
  const Status status =
      InvariantAuditor::AuditTrace(trace, layouts_, {.allow_time_fragmentation = true});
  EXPECT_TRUE(status.IsInternal()) << status;
}

TEST_F(TraceAuditTest, TimeSplitRequiresAlgorithmOneBuffering) {
  ScheduleTracer trace(10);
  // Subobject 0's two fragments arrive one interval apart — legal only
  // when Algorithm-1 buffering absorbs the stagger.
  trace.Record(0, kObject, 0, 0, layout_.DiskFor(0, 0));
  trace.Record(1, kObject, 0, 1, layout_.DiskFor(0, 1));
  EXPECT_TRUE(InvariantAuditor::AuditTrace(trace, layouts_).IsInternal());
  EXPECT_TRUE(InvariantAuditor::AuditTrace(trace, layouts_,
                                           {.allow_time_fragmentation = true})
                  .ok());
}

TEST_F(TraceAuditTest, RejectsIncompleteSubobjectOnUntruncatedTrace) {
  ScheduleTracer trace(10);
  trace.Record(0, kObject, 0, 0, layout_.DiskFor(0, 0));  // fragment 1 missing
  const Status status = InvariantAuditor::AuditTrace(trace, layouts_);
  EXPECT_TRUE(status.IsInternal()) << status;
}

TEST_F(TraceAuditTest, SkipsCompletenessOnTruncatedTrace) {
  ScheduleTracer trace(10, /*max_intervals=*/2);
  RecordValidRun(&trace, 5);  // intervals 2..4 dropped
  EXPECT_TRUE(trace.truncated());
  EXPECT_TRUE(InvariantAuditor::AuditTrace(trace, layouts_).ok());
}

// --- live scheduler audits ------------------------------------------------

class LiveSchedulerAuditTest : public ::testing::Test {
 protected:
  void Init(int32_t num_disks, int32_t stride,
            AdmissionPolicy policy = AdmissionPolicy::kContiguous,
            bool coalesce = false, int64_t buffer_cap = 0) {
    auto disks = DiskArray::Create(num_disks, DiskParameters::Evaluation());
    ASSERT_TRUE(disks.ok());
    disks_ = std::make_unique<DiskArray>(*std::move(disks));
    SchedulerConfig config;
    config.stride = stride;
    config.interval = kInterval;
    config.policy = policy;
    config.coalesce = coalesce;
    config.buffer_capacity_fragments = buffer_cap;
    auto sched = IntervalScheduler::Create(&sim_, disks_.get(), config);
    ASSERT_TRUE(sched.ok()) << sched.status();
    sched_ = *std::move(sched);
  }

  void Submit(ObjectId object, int32_t start_disk, int32_t degree,
              int64_t subobjects) {
    DisplayRequest req;
    req.object = object;
    req.start_disk = start_disk;
    req.degree = degree;
    req.num_subobjects = subobjects;
    auto id = sched_->Submit(std::move(req));
    ASSERT_TRUE(id.ok()) << id.status();
  }

  Simulator sim_;
  std::unique_ptr<DiskArray> disks_;
  std::unique_ptr<IntervalScheduler> sched_;
};

TEST_F(LiveSchedulerAuditTest, ContiguousRunStaysInvariant) {
  Init(10, 2);
  Submit(0, 0, 3, 12);
  Submit(1, 4, 2, 8);
  for (int step = 1; step <= 20; ++step) {
    sim_.RunUntil(kInterval * step);
    ASSERT_TRUE(InvariantAuditor::AuditScheduler(*sched_).ok())
        << "after interval " << step;
  }
}

TEST_F(LiveSchedulerAuditTest, FragmentedCoalescingRunStaysInvariant) {
  Init(10, 2, AdmissionPolicy::kFragmented, /*coalesce=*/true,
       /*buffer_cap=*/64);
  Submit(0, 0, 3, 16);
  Submit(1, 5, 3, 16);
  Submit(2, 2, 2, 10);
  for (int step = 1; step <= 30; ++step) {
    sim_.RunUntil(kInterval * step);
    ASSERT_TRUE(InvariantAuditor::AuditScheduler(*sched_).ok())
        << "after interval " << step;
  }
}

TEST(LiveLogicalSchedulerAuditTest, LogicalRunStaysInvariant) {
  Simulator sim;
  LogicalSchedulerConfig config;
  config.num_disks = 6;
  config.logical_per_disk = 2;
  config.stride = 1;
  config.interval = kInterval;
  auto sched = LogicalDiskScheduler::Create(&sim, config);
  ASSERT_TRUE(sched.ok()) << sched.status();

  LogicalRequest req;
  req.object = 0;
  req.units = 3;
  req.start_disk = 0;
  req.num_subobjects = 10;
  ASSERT_TRUE((*sched)->Submit(req).ok());
  req.object = 1;
  req.units = 4;
  req.start_disk = 3;
  ASSERT_TRUE((*sched)->Submit(req).ok());

  for (int step = 1; step <= 15; ++step) {
    sim.RunUntil(kInterval * step);
    ASSERT_TRUE(InvariantAuditor::AuditLogicalScheduler(**sched).ok())
        << "after interval " << step;
  }
}

}  // namespace
}  // namespace stagger
