// Fixture: a STAGGER_HOT_PATH function that heap-allocates three ways.
#include <memory>
#include <vector>

#define STAGGER_HOT_PATH

struct Tracker {
  std::vector<int> samples;
};

STAGGER_HOT_PATH void RecordSample(Tracker* t, int v) {
  t->samples.push_back(v);
  int* leak = new int(v);
  auto owned = std::make_unique<int>(*leak);
  (void)owned;
}

// Control: the same operations outside a tagged function are fine.
void RecordSampleCold(Tracker* t, int v) { t->samples.push_back(v); }
