// Fixture: everything the determinism rules ban, in one replay TU.
#include <chrono>
#include <cstdlib>
#include <map>
#include <random>
#include <unordered_map>

struct Stream;

struct Replay {
  std::unordered_map<int, int> lanes_;
  std::map<Stream*, int> by_stream_;
};

int Draw(Replay* r) {
  int total = rand();
  std::random_device entropy;
  total += static_cast<int>(entropy());
  auto now = std::chrono::system_clock::now();
  (void)now;
  for (const auto& [lane, count] : r->lanes_) total += lane + count;
  return total;
}
