// Fixture: core may not reach up into node — the scheduler depends on
// the ShardExecutor seam, never on the pool behind it.
#ifndef FIXTURE_CORE_TICK_H_
#define FIXTURE_CORE_TICK_H_

#include "node/ring.h"

inline int Tick() { return 0; }

#endif
