// Fixture: node sits above core in the DAG, so this dependency is the
// declared direction and must stay clean.
#ifndef FIXTURE_NODE_RING_H_
#define FIXTURE_NODE_RING_H_

#include "core/tick.h"

inline int ShardOf(int key) { return key % 2; }

#endif
