// Fixture: STAGGER_CHECK arguments must not mutate state — audit-only
// builds compile the checks out, so side effects here change behavior
// between build modes.
#define STAGGER_CHECK(cond) \
  do {                      \
    if (!(cond)) throw 1;   \
  } while (0)

int Audit(int pending) {
  STAGGER_CHECK(--pending >= 0);
  STAGGER_CHECK(pending >= 0);  // control: pure read is fine
  return pending;
}
