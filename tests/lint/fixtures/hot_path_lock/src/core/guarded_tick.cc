// Fixture: a STAGGER_HOT_PATH function that takes a lock and does I/O.
#include <iostream>
#include <mutex>

#define STAGGER_HOT_PATH

struct State {
  std::mutex mu;
  int ticks = 0;
};

STAGGER_HOT_PATH void GuardedTick(State* s) {
  std::lock_guard<std::mutex> hold(s->mu);
  ++s->ticks;
  std::cout << s->ticks;
}
