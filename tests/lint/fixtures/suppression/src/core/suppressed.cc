// Fixture: the suppression grammar itself — one valid and used, one
// missing its reason, one naming an unknown rule, one matching nothing.
#include <cstdlib>

int Roll() {
  // stagger-lint: allow(determinism-random) -- fixture exercises a used suppression
  int a = rand();
  // stagger-lint: allow(determinism-random)
  int b = rand();
  // stagger-lint: allow(not-a-rule) -- misspelled rule name
  int c = 0;
  // stagger-lint: allow(determinism-wallclock) -- nothing on the next line uses the clock
  return a + b + c;
}
