#ifndef FIXTURE_UTIL_HELPERS_H_
#define FIXTURE_UTIL_HELPERS_H_
inline int Helper() { return 0; }
#endif
