// Fixture: util is the bottom layer, so including core from here is a
// back-edge in the module DAG.
#ifndef FIXTURE_UTIL_CLOCK_H_
#define FIXTURE_UTIL_CLOCK_H_

#include "core/scheduler.h"

inline int TickLength() { return 42; }

#endif
