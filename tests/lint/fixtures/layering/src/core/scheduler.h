// Fixture: core may include util (declared dependency) — this file is
// clean and exists so the back-edge above has a real target.
#ifndef FIXTURE_CORE_SCHEDULER_H_
#define FIXTURE_CORE_SCHEDULER_H_

#include "util/helpers.h"

inline int NextTick() { return 1; }

#endif
