#include <gtest/gtest.h>

#include <vector>

#include "tertiary/tertiary_device.h"
#include "tertiary/tertiary_manager.h"

namespace stagger {
namespace {

TEST(TertiaryParametersTest, DefaultsValidate) {
  EXPECT_TRUE(TertiaryParameters{}.Validate().ok());
}

TEST(TertiaryParametersTest, RejectsBadValues) {
  TertiaryParameters p;
  p.bandwidth = Bandwidth::Mbps(0);
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = TertiaryParameters{};
  p.reposition = SimTime::Seconds(-1);
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(TertiaryDeviceTest, TransferAtBandwidth) {
  TertiaryParameters p;
  p.bandwidth = Bandwidth::Mbps(40);
  TertiaryDevice device(p);
  // Table 3 object: 22.68 GB at 40 mbps = 4536 s.
  EXPECT_NEAR(device.TransferTime(DataSize::GB(22.68)).seconds(), 4536.0, 1.0);
}

TEST(TertiaryDeviceTest, StripedLayoutPaysOneReposition) {
  TertiaryParameters p;
  p.bandwidth = Bandwidth::Mbps(40);
  p.reposition = SimTime::Seconds(3);
  TertiaryDevice device(p);
  EXPECT_EQ(device.StripedLayoutTime(DataSize::MB(100)),
            SimTime::Seconds(3) + device.TransferTime(DataSize::MB(100)));
}

TEST(TertiaryDeviceTest, SequentialLayoutPaysPerBurst) {
  TertiaryParameters p;
  p.bandwidth = Bandwidth::Mbps(40);
  p.reposition = SimTime::Seconds(2);
  TertiaryDevice device(p);
  // 100 MB in 10 MB bursts: 10 repositions.
  const SimTime t = device.SequentialLayoutTime(DataSize::MB(100),
                                                DataSize::MB(10));
  EXPECT_EQ(t, device.TransferTime(DataSize::MB(100)) + SimTime::Seconds(20));
  // Partial last burst still costs a reposition.
  const SimTime t2 = device.SequentialLayoutTime(DataSize::MB(95),
                                                 DataSize::MB(10));
  EXPECT_EQ(t2, device.TransferTime(DataSize::MB(95)) + SimTime::Seconds(20));
}

TEST(TertiaryDeviceTest, EfficiencyDropsWithReposition) {
  TertiaryParameters p;
  p.bandwidth = Bandwidth::Mbps(40);
  p.reposition = SimTime::Seconds(0);
  EXPECT_DOUBLE_EQ(TertiaryDevice(p).SequentialLayoutEfficiency(
                       DataSize::MB(100), DataSize::MB(10)),
                   1.0);
  p.reposition = SimTime::Seconds(2);
  const double eff = TertiaryDevice(p).SequentialLayoutEfficiency(
      DataSize::MB(100), DataSize::MB(10));
  EXPECT_GT(eff, 0.0);
  EXPECT_LT(eff, 1.0);
}

class TertiaryManagerTest : public ::testing::Test {
 protected:
  TertiaryManagerTest() {
    TertiaryParameters p;
    p.bandwidth = Bandwidth::Mbps(40);
    p.reposition = SimTime::Zero();
    manager_ = std::make_unique<TertiaryManager>(&sim_, TertiaryDevice(p));
  }
  Simulator sim_;
  std::unique_ptr<TertiaryManager> manager_;
};

TEST_F(TertiaryManagerTest, ServesFifo) {
  std::vector<ObjectId> done;
  // 40 mbps: 5 MB/s; a 50 MB object takes 10 s.
  manager_->Enqueue(1, DataSize::MB(50), [&](ObjectId id) { done.push_back(id); });
  manager_->Enqueue(2, DataSize::MB(50), [&](ObjectId id) { done.push_back(id); });
  manager_->Enqueue(3, DataSize::MB(50), [&](ObjectId id) { done.push_back(id); });
  EXPECT_TRUE(manager_->busy());
  EXPECT_EQ(manager_->queue_length(), 2u);

  sim_.RunUntil(SimTime::Seconds(10));
  EXPECT_EQ(done, (std::vector<ObjectId>{1}));
  sim_.RunUntil(SimTime::Seconds(30));
  EXPECT_EQ(done, (std::vector<ObjectId>{1, 2, 3}));
  EXPECT_FALSE(manager_->busy());
  EXPECT_EQ(manager_->completed(), 3);
}

TEST_F(TertiaryManagerTest, UtilizationTracksBusyTime) {
  manager_->Enqueue(1, DataSize::MB(50), nullptr);  // 10 s of service
  sim_.RunUntil(SimTime::Seconds(5));
  EXPECT_NEAR(manager_->Utilization(sim_.Now()), 1.0, 1e-9);  // mid-service
  sim_.RunUntil(SimTime::Seconds(20));
  EXPECT_NEAR(manager_->Utilization(sim_.Now()), 0.5, 1e-9);
  EXPECT_EQ(manager_->BusyTime(sim_.Now()), SimTime::Seconds(10));
}

TEST_F(TertiaryManagerTest, LatencyIncludesQueueing) {
  manager_->Enqueue(1, DataSize::MB(50), nullptr);  // served 0-10 s
  manager_->Enqueue(2, DataSize::MB(50), nullptr);  // served 10-20 s
  sim_.RunUntil(SimTime::Seconds(30));
  EXPECT_EQ(manager_->latency_stats().count(), 2);
  EXPECT_NEAR(manager_->latency_stats().min(), 10.0, 1e-6);
  EXPECT_NEAR(manager_->latency_stats().max(), 20.0, 1e-6);
}

TEST_F(TertiaryManagerTest, IdleDeviceStartsImmediately) {
  sim_.RunUntil(SimTime::Seconds(100));
  int64_t completed_at = 0;
  manager_->Enqueue(7, DataSize::MB(5), [&](ObjectId) {
    completed_at = sim_.Now().micros();
  });
  sim_.RunUntil(SimTime::Seconds(200));
  EXPECT_EQ(completed_at, SimTime::Seconds(101).micros());
}

}  // namespace
}  // namespace stagger
