#include "tertiary/tertiary_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "server/experiment.h"

namespace stagger {
namespace {

TertiaryDevice FastDevice() {
  TertiaryParameters p;
  p.bandwidth = Bandwidth::Mbps(40);  // 5 MB/s
  p.reposition = SimTime::Zero();
  return TertiaryDevice(p);
}

TEST(TertiaryPoolTest, CreateValidates) {
  Simulator sim;
  EXPECT_FALSE(TertiaryPool::Create(&sim, FastDevice(), 0).ok());
  EXPECT_TRUE(TertiaryPool::Create(&sim, FastDevice(), 1).ok());
  EXPECT_TRUE(TertiaryPool::Create(&sim, FastDevice(), 4).ok());
}

TEST(TertiaryPoolTest, ParallelDevicesServeConcurrently) {
  Simulator sim;
  auto pool = TertiaryPool::Create(&sim, FastDevice(), 2);
  ASSERT_TRUE(pool.ok());
  std::vector<SimTime> done_at;
  for (int i = 0; i < 2; ++i) {
    (*pool)->Enqueue(i, DataSize::MB(50),
                     [&done_at, &sim](ObjectId) { done_at.push_back(sim.Now()); },
                     nullptr);
  }
  sim.RunUntil(SimTime::Seconds(30));
  // Both 10 s transfers ran in parallel on separate devices.
  ASSERT_EQ(done_at.size(), 2u);
  EXPECT_EQ(done_at[0], SimTime::Seconds(10));
  EXPECT_EQ(done_at[1], SimTime::Seconds(10));
  EXPECT_EQ((*pool)->completed(), 2);
}

TEST(TertiaryPoolTest, LeastLoadedRouting) {
  Simulator sim;
  auto pool = TertiaryPool::Create(&sim, FastDevice(), 2);
  ASSERT_TRUE(pool.ok());
  // Three requests: devices get 2 and 1.
  for (int i = 0; i < 3; ++i) {
    (*pool)->Enqueue(i, DataSize::MB(50), nullptr, nullptr);
  }
  EXPECT_EQ((*pool)->queue_length(), 1u);  // one waits behind a device
  sim.RunUntil(SimTime::Seconds(25));
  EXPECT_EQ((*pool)->completed(), 3);
}

TEST(TertiaryPoolTest, UtilizationAveragesDevices) {
  Simulator sim;
  auto pool = TertiaryPool::Create(&sim, FastDevice(), 2);
  ASSERT_TRUE(pool.ok());
  (*pool)->Enqueue(0, DataSize::MB(50), nullptr, nullptr);  // 10 s on 1 of 2
  sim.RunUntil(SimTime::Seconds(20));
  EXPECT_NEAR((*pool)->Utilization(sim.Now()), 0.25, 1e-9);
}

// The Section 4.2 bottleneck ablation: under near-uniform access the
// tertiary saturates; doubling the devices raises throughput.
TEST(TertiaryPoolTest, MoreDevicesRelieveUniformBottleneck) {
  ExperimentConfig cfg;
  cfg.scheme = Scheme::kSimpleStriping;
  cfg.num_disks = 100;
  cfg.num_objects = 300;
  cfg.subobjects_per_object = 200;
  cfg.preload_objects = 20;
  cfg.stations = 30;
  cfg.geometric_mean = 60.0;  // wide working set -> tertiary-bound
  cfg.warmup = SimTime::Hours(1);
  cfg.measure = SimTime::Hours(4);
  auto one = RunExperiment(cfg);
  cfg.num_tertiary_devices = 4;
  auto four = RunExperiment(cfg);
  ASSERT_TRUE(one.ok() && four.ok());
  EXPECT_GT(four->displays_per_hour, one->displays_per_hour * 1.15);
}

}  // namespace
}  // namespace stagger
