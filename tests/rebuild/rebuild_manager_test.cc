#include "rebuild/rebuild_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "disk/disk_array.h"
#include "storage/layout.h"

namespace stagger {
namespace {

TEST(FragmentWordTest, DeterministicAndDistinct) {
  EXPECT_EQ(FragmentWord(3, 7, 1), FragmentWord(3, 7, 1));
  EXPECT_NE(FragmentWord(3, 7, 1), FragmentWord(3, 7, 2));
  EXPECT_NE(FragmentWord(3, 7, 1), FragmentWord(3, 8, 1));
  EXPECT_NE(FragmentWord(3, 7, 1), FragmentWord(4, 7, 1));
}

TEST(FragmentWordTest, ParityIsStripeXor) {
  const ObjectId object = 11;
  const int64_t subobject = 5;
  const int32_t degree = 4;
  uint64_t x = 0;
  for (int32_t j = 0; j < degree; ++j) {
    x ^= FragmentWord(object, subobject, j);
  }
  EXPECT_EQ(ParityWord(object, subobject, degree), x);
  // XORing parity with all-but-one data word re-derives the missing one
  // — the identity the rebuild relies on.
  uint64_t rederived = ParityWord(object, subobject, degree);
  for (int32_t j = 0; j < degree; ++j) {
    if (j != 2) rederived ^= FragmentWord(object, subobject, j);
  }
  EXPECT_EQ(rederived, FragmentWord(object, subobject, 2));
}

class RebuildManagerTest : public ::testing::Test {
 protected:
  void Init(int32_t num_disks, int32_t num_spares,
            int64_t intervals_per_fragment = 1) {
    auto disks =
        DiskArray::Create(num_disks, DiskParameters::Evaluation(), num_spares);
    ASSERT_TRUE(disks.ok());
    disks_ = std::make_unique<DiskArray>(*std::move(disks));
    RebuildConfig config;
    config.rebuild_intervals_per_fragment = intervals_per_fragment;
    auto rebuild = RebuildManager::Create(disks_.get(), config);
    ASSERT_TRUE(rebuild.ok()) << rebuild.status();
    rebuild_ = *std::move(rebuild);
  }

  /// Every fragment of `layout` (data and parity) that lives on `slot`,
  /// for an object of `n` subobjects.
  std::vector<LostFragment> LostOn(const StaggeredLayout& layout,
                                   ObjectId object, int64_t n, DiskId slot) {
    std::vector<LostFragment> lost;
    for (int64_t i = 0; i < n; ++i) {
      for (int32_t j = 0; j < layout.degree(); ++j) {
        if (layout.DiskFor(i, j) == slot) {
          lost.push_back(LostFragment{object, i, j, layout.FirstDiskFor(i),
                                      layout.degree()});
        }
      }
      if (layout.has_parity() && layout.ParityDiskFor(i) == slot) {
        lost.push_back(LostFragment{object, i, layout.degree(),
                                    layout.FirstDiskFor(i), layout.degree()});
      }
    }
    return lost;
  }

  /// Runs `n` idle intervals, closing each like the scheduler would.
  void RunIdleIntervals(int64_t n, int64_t start = 0) {
    for (int64_t t = start; t < start + n; ++t) {
      rebuild_->OnIdleInterval(t);
      disks_->EndInterval();
    }
  }

  std::unique_ptr<DiskArray> disks_;
  std::unique_ptr<RebuildManager> rebuild_;
};

TEST_F(RebuildManagerTest, StartValidates) {
  Init(6, 1);
  disks_->FailDisk(2);
  EXPECT_TRUE(rebuild_->StartRebuild(2, {}).ok());  // empty: instant promote
  EXPECT_FALSE(rebuild_->rebuilding(2));
  EXPECT_TRUE(disks_->IsAvailable(2));
  EXPECT_EQ(rebuild_->metrics().rebuilds_completed, 1);
}

TEST_F(RebuildManagerTest, NoFreeSpareIsResourceExhausted) {
  Init(6, 1);
  auto layout = StaggeredLayout::Create(6, 0, 1, 3, /*parity=*/true);
  ASSERT_TRUE(layout.ok());
  disks_->FailDisk(1);
  disks_->FailDisk(2);
  EXPECT_TRUE(rebuild_->StartRebuild(1, LostOn(*layout, 0, 12, 1)).ok());
  EXPECT_TRUE(rebuild_->StartRebuild(2, LostOn(*layout, 0, 12, 2))
                  .IsResourceExhausted());
  // Restarting an in-flight rebuild is a caller bug.
  EXPECT_TRUE(rebuild_->StartRebuild(1, {}).IsFailedPrecondition());
}

TEST_F(RebuildManagerTest, RebuildsAllFragmentsAndPromotes) {
  Init(6, 1);
  auto layout = StaggeredLayout::Create(6, 0, 1, 3, /*parity=*/true);
  ASSERT_TRUE(layout.ok());
  const int64_t n = 12;
  const DiskId slot = 2;
  const auto lost = LostOn(*layout, /*object=*/0, n, slot);
  // gcd(6,1)=1, window M+1=4: slot 2 carries 4 of every 6 stripes'
  // fragments -> 8 lost fragments over 12 stripes.
  ASSERT_EQ(lost.size(), 8u);

  disks_->FailDisk(slot);
  ASSERT_TRUE(rebuild_->StartRebuild(slot, lost).ok());
  EXPECT_TRUE(rebuild_->rebuilding(slot));
  EXPECT_EQ(rebuild_->EtaIntervals(slot), 8);
  EXPECT_DOUBLE_EQ(rebuild_->Progress(slot), 0.0);

  RunIdleIntervals(4);
  EXPECT_DOUBLE_EQ(rebuild_->Progress(slot), 0.5);
  EXPECT_EQ(rebuild_->EtaIntervals(slot), 4);
  EXPECT_FALSE(disks_->IsAvailable(slot));  // not promoted yet

  RunIdleIntervals(4, /*start=*/4);
  EXPECT_FALSE(rebuild_->rebuilding(slot));
  EXPECT_TRUE(disks_->IsAvailable(slot));  // spare promoted into the slot
  EXPECT_EQ(rebuild_->metrics().rebuilds_completed, 1);
  EXPECT_EQ(rebuild_->metrics().fragments_rebuilt, 8);
  // Each data rebuild reads M-1 survivors + parity; each parity rebuild
  // reads M data fragments — M reads either way.
  EXPECT_EQ(rebuild_->metrics().source_reads, 8 * 3);
  EXPECT_EQ(rebuild_->metrics().mismatches, 0);
  EXPECT_TRUE(rebuild_->AuditState().ok());
}

TEST_F(RebuildManagerTest, RateCapThrottlesProgress) {
  Init(6, 1, /*intervals_per_fragment=*/3);
  auto layout = StaggeredLayout::Create(6, 0, 1, 3, /*parity=*/true);
  ASSERT_TRUE(layout.ok());
  const DiskId slot = 0;
  disks_->FailDisk(slot);
  const auto lost = LostOn(*layout, 0, 6, slot);
  ASSERT_EQ(lost.size(), 4u);
  ASSERT_TRUE(rebuild_->StartRebuild(slot, lost).ok());
  EXPECT_EQ(rebuild_->EtaIntervals(slot), 12);

  RunIdleIntervals(7);
  // Fragments at intervals 0, 3, 6 — the cap holds even with slack
  // every interval (throttled waits are not stalls).
  EXPECT_EQ(rebuild_->metrics().fragments_rebuilt, 3);
  EXPECT_EQ(rebuild_->metrics().stalled_intervals, 0);

  RunIdleIntervals(3, /*start=*/7);
  EXPECT_FALSE(rebuild_->rebuilding(slot));
}

TEST_F(RebuildManagerTest, BusySourcesStallOrSkipWithoutStealing) {
  Init(6, 1);
  auto layout = StaggeredLayout::Create(6, 0, 1, 3, /*parity=*/true);
  ASSERT_TRUE(layout.ok());
  const DiskId slot = 2;
  disks_->FailDisk(slot);
  const auto lost = LostOn(*layout, 0, 6, slot);
  ASSERT_TRUE(rebuild_->StartRebuild(slot, lost).ok());

  // Display traffic owns every surviving disk: no stripe has slack, so
  // the rebuild yields the whole interval (idle bandwidth only).
  for (DiskId d = 0; d < 6; ++d) {
    if (d != slot) disks_->ReserveSlot(d);
  }
  rebuild_->OnIdleInterval(0);
  EXPECT_EQ(rebuild_->metrics().fragments_rebuilt, 0);
  EXPECT_EQ(rebuild_->metrics().stalled_intervals, 1);
  disks_->EndInterval();

  // Traffic pinning only a source disk of the *first* lost stripe makes
  // the rebuild skip past it and spend the slack on a later stripe.
  const auto& f = lost.front();
  const DiskId busy = disks_->Wrap(f.stripe_first_disk +
                                   (f.fragment == 0 ? 1 : 0));
  disks_->ReserveSlot(busy);
  rebuild_->OnIdleInterval(1);
  EXPECT_EQ(rebuild_->metrics().fragments_rebuilt, 1);
  EXPECT_EQ(rebuild_->metrics().stalled_intervals, 1);
  disks_->EndInterval();

  // With all disks released, the skipped stripe rebuilds next.
  rebuild_->OnIdleInterval(2);
  EXPECT_EQ(rebuild_->metrics().fragments_rebuilt, 2);
  disks_->EndInterval();
}

TEST_F(RebuildManagerTest, CancelReturnsSpare) {
  Init(6, 1);
  auto layout = StaggeredLayout::Create(6, 0, 1, 3, /*parity=*/true);
  ASSERT_TRUE(layout.ok());
  disks_->FailDisk(3);
  ASSERT_TRUE(rebuild_->StartRebuild(3, LostOn(*layout, 0, 6, 3)).ok());
  EXPECT_EQ(disks_->FreeSpareCount(), 0);

  // The original drive comes back: abandon the rebuild mid-flight.
  RunIdleIntervals(2);
  disks_->RecoverDisk(3);
  EXPECT_TRUE(rebuild_->CancelRebuild(3).ok());
  EXPECT_FALSE(rebuild_->rebuilding(3));
  EXPECT_EQ(disks_->FreeSpareCount(), 1);
  EXPECT_EQ(rebuild_->metrics().rebuilds_cancelled, 1);
  EXPECT_TRUE(rebuild_->AuditState().ok());
}

TEST_F(RebuildManagerTest, TwoConcurrentRebuilds) {
  Init(8, 2);
  auto layout = StaggeredLayout::Create(8, 0, 1, 3, /*parity=*/true);
  ASSERT_TRUE(layout.ok());
  disks_->FailDisk(1);
  disks_->FailDisk(5);
  const auto lost1 = LostOn(*layout, 0, 8, 1);
  const auto lost5 = LostOn(*layout, 0, 8, 5);
  ASSERT_TRUE(rebuild_->StartRebuild(1, lost1).ok());
  ASSERT_TRUE(rebuild_->StartRebuild(5, lost5).ok());
  EXPECT_EQ(rebuild_->active_jobs(), 2u);

  RunIdleIntervals(32);
  EXPECT_EQ(rebuild_->active_jobs(), 0u);
  EXPECT_TRUE(disks_->IsAvailable(1));
  EXPECT_TRUE(disks_->IsAvailable(5));
  EXPECT_EQ(rebuild_->metrics().rebuilds_completed, 2);
  EXPECT_EQ(rebuild_->metrics().mismatches, 0);
}

TEST_F(RebuildManagerTest, StalledSourcePausesAtTheCursor) {
  Init(6, 1);
  auto layout = StaggeredLayout::Create(6, 0, 1, 3, /*parity=*/true);
  ASSERT_TRUE(layout.ok());
  disks_->FailDisk(2);
  const auto lost = LostOn(*layout, /*object=*/0, 12, 2);
  ASSERT_TRUE(rebuild_->StartRebuild(2, lost).ok());

  RunIdleIntervals(2);  // one fragment per interval: cursor at 2
  const size_t cursor = rebuild_->NextFragmentIndex(2);
  ASSERT_GT(cursor, 0u);
  ASSERT_LT(cursor, lost.size());

  // A stalled source freezes the job: the cursor must hold still (no
  // re-scan churn) until the source comes back.
  disks_->StallDisk(0);
  rebuild_->OnSourceDown(0, disks_->disk(0).health());
  EXPECT_TRUE(rebuild_->paused(2));
  const int64_t stalled_before = rebuild_->metrics().stalled_intervals;
  RunIdleIntervals(5, /*start=*/2);
  EXPECT_EQ(rebuild_->NextFragmentIndex(2), cursor);
  EXPECT_GE(rebuild_->metrics().paused_intervals, 5);
  // Paused is not stalled: the job never scanned for sources.
  EXPECT_EQ(rebuild_->metrics().stalled_intervals, stalled_before);

  // Resume: same cursor, runs to completion.
  disks_->RecoverDisk(0);
  rebuild_->OnSourceUp(0);
  EXPECT_FALSE(rebuild_->paused(2));
  RunIdleIntervals(32, /*start=*/7);
  EXPECT_FALSE(rebuild_->rebuilding(2));
  EXPECT_TRUE(disks_->IsAvailable(2));
  EXPECT_EQ(rebuild_->metrics().rebuilds_completed, 1);
  EXPECT_EQ(rebuild_->metrics().mismatches, 0);
}

TEST_F(RebuildManagerTest, FailedSourceDoesNotPause) {
  // A FAILED source must not freeze the job — remaining stripes that
  // avoid it are still rebuildable, and the in-job scan skips the rest.
  Init(6, 1);
  auto layout = StaggeredLayout::Create(6, 0, 1, 3, /*parity=*/true);
  ASSERT_TRUE(layout.ok());
  disks_->FailDisk(2);
  ASSERT_TRUE(rebuild_->StartRebuild(2, LostOn(*layout, 0, 12, 2)).ok());
  disks_->FailDisk(4);
  rebuild_->OnSourceDown(4, disks_->disk(4).health());
  EXPECT_FALSE(rebuild_->paused(2));
}

TEST_F(RebuildManagerTest, CorruptSourceIsSurfacedAndSkipped) {
  Init(6, 1);
  auto layout = StaggeredLayout::Create(6, 0, 1, 3, /*parity=*/true);
  ASSERT_TRUE(layout.ok());
  // One lost fragment: stripe 0's data on disk 2; sources 0, 1, parity 3.
  disks_->FailDisk(2);
  const auto lost = LostOn(*layout, /*object=*/0, /*n=*/1, 2);
  ASSERT_EQ(lost.size(), 1u);
  disks_->latent_errors().Inject(0, 0, 0);  // corrupt a source cell
  ASSERT_TRUE(rebuild_->StartRebuild(2, lost).ok());

  RunIdleIntervals(3);
  // XORing a corrupt word onto the spare would propagate garbage: the
  // rebuild surfaces the cell and leaves the stripe alone.
  EXPECT_TRUE(rebuild_->rebuilding(2));
  EXPECT_GE(rebuild_->metrics().corrupt_source_skips, 1);
  EXPECT_EQ(disks_->latent_errors().metrics().detected, 1);
  EXPECT_EQ(rebuild_->metrics().fragments_rebuilt, 0);

  // Once the cell is repaired the rebuild goes through clean.
  disks_->latent_errors().Repair(0, 0);
  RunIdleIntervals(4, /*start=*/3);
  EXPECT_FALSE(rebuild_->rebuilding(2));
  EXPECT_EQ(rebuild_->metrics().mismatches, 0);
}

}  // namespace
}  // namespace stagger
