// Property tests for online rebuild under display load: randomized
// request mixes against unrecovered disk failures on a parity-striped
// server with hot spares.  Checked per seed:
//  * the full invariant sweep (layout + parity placement + scheduler +
//    rebuild state) passes after every interval;
//  * every failed slot is rebuilt onto a spare and promoted — the array
//    ends bit-identical to the pre-failure placement in slot space,
//    with zero content-model mismatches;
//  * the stream population drains: every pause resolves and every
//    admitted display completes or is interrupted by the pause cap.
//
// The seed count defaults to 4 and is widened by the CI sweep through
// STAGGER_FAULT_SEEDS (see .github/workflows).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <vector>

#include "core/invariants.h"
#include "disk/disk_array.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "server/striped_server.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace stagger {
namespace {

constexpr SimTime kInterval = SimTime::Millis(605);

struct RebuildCase {
  uint64_t seed;
  int32_t failures;  ///< unrecovered disk failures injected
};

std::string CaseName(const ::testing::TestParamInfo<RebuildCase>& info) {
  std::ostringstream os;
  os << "f" << info.param.failures << "_s" << info.param.seed;
  return os.str();
}

std::vector<RebuildCase> MakeCases() {
  int64_t seeds = 4;
  if (const char* env = std::getenv("STAGGER_FAULT_SEEDS")) {
    seeds = std::max<int64_t>(1, std::atoll(env));
  }
  std::vector<RebuildCase> cases;
  for (int64_t s = 1; s <= seeds; ++s) {
    cases.push_back({static_cast<uint64_t>(s), s % 2 == 0 ? 2 : 1});
  }
  return cases;
}

class RebuildPropertyTest : public ::testing::TestWithParam<RebuildCase> {};

TEST_P(RebuildPropertyTest, FailuresRebuildUnderLoadEveryInvariantHolds) {
  const RebuildCase& c = GetParam();
  Rng rng(c.seed);

  constexpr int32_t kDisks = 8;
  constexpr int32_t kSpares = 2;
  constexpr int32_t kObjects = 4;
  constexpr int64_t kSubobjects = 32;

  Simulator sim;
  // 30 mbps objects over ~20 mbps effective disks: M = 2, so stripes
  // (with parity) span 3 consecutive slots and up to four 2-lane
  // streams display concurrently while rebuilds hunt for slack.
  Catalog catalog =
      Catalog::Uniform(kObjects, kSubobjects, Bandwidth::Mbps(30));
  auto disks =
      DiskArray::Create(kDisks, DiskParameters::Evaluation(), kSpares);
  ASSERT_TRUE(disks.ok());
  TertiaryParameters tp;
  tp.bandwidth = Bandwidth::Mbps(40);
  tp.reposition = SimTime::Zero();
  TertiaryManager tertiary(&sim, TertiaryDevice(tp));

  StripedConfig config;
  config.stride = static_cast<int32_t>(1 + rng.NextBounded(3));
  config.interval = kInterval;
  config.fragment_size = DataSize::MB(1.512);
  config.preload_objects = kObjects;
  config.parity = true;
  config.degraded_policy = DegradedPolicy::kReconstruct;
  // Bound the pause runway so displays caught without a substitute
  // resolve within the simulated horizon.
  config.max_pause_intervals = 64;
  auto server =
      StripedServer::Create(&sim, &catalog, &*disks, &tertiary, config);
  ASSERT_TRUE(server.ok()) << server.status();

  // Unrecovered failures on distinct disks — each one must end in a
  // completed rebuild, not a recovery.  One parity fragment per stripe
  // tolerates one lost fragment, so the second failed disk is placed at
  // circular distance >= 3 from the first: no stripe (window M+1 = 3)
  // contains both, and the two rebuilds may overlap freely.
  FaultPlan plan;
  const auto first_disk = static_cast<int32_t>(rng.NextBounded(kDisks));
  plan.FailAt(first_disk,
              kInterval * static_cast<int64_t>(5 + rng.NextBounded(55)) +
                  SimTime::Millis(1));
  if (c.failures > 1) {
    const int32_t second_disk =
        (first_disk + 3 + static_cast<int32_t>(rng.NextBounded(3))) % kDisks;
    plan.FailAt(second_disk,
                kInterval * static_cast<int64_t>(80 + rng.NextBounded(20)) +
                    SimTime::Millis(1));
  }
  ASSERT_TRUE(plan.Validate(kDisks).ok()) << plan.Validate(kDisks);
  auto injector = FaultInjector::Create(&sim, &*disks, plan);
  ASSERT_TRUE(injector.ok()) << injector.status();
  StripedServer* srv = server->get();
  (*injector)->OnDown([srv](DiskId d, SimTime now) { srv->OnDiskDown(d, now); });
  (*injector)->OnUp([srv](DiskId d, SimTime now) { srv->OnDiskUp(d, now); });

  // A randomized display mix over the resident objects, concurrent with
  // the failures and the rebuilds they trigger.
  constexpr int kRequests = 8;
  int completed = 0;
  int interrupted = 0;
  for (int i = 0; i < kRequests; ++i) {
    const auto object = static_cast<ObjectId>(i % kObjects);
    const SimTime at = kInterval * static_cast<int64_t>(rng.NextBounded(100));
    sim.ScheduleAt(at, [srv, object, &completed, &interrupted] {
      STAGGER_CHECK_OK(srv->RequestDisplay(
          object, /*on_started=*/nullptr, [&completed] { ++completed; },
          [&interrupted] { ++interrupted; }));
    });
  }

  // Failures land by interval ~100 and each lost slot carries
  // ~kObjects * kSubobjects * (M+1) / D = 48 fragments; display load
  // drains by ~200, so the rebuild tail plus pause backoff settles
  // well before 400.
  constexpr int64_t kHorizonIntervals = 400;
  for (int64_t step = 1; step <= kHorizonIntervals; ++step) {
    sim.RunUntil(kInterval * step);
    ASSERT_TRUE(srv->AuditInvariants().ok())
        << srv->AuditInvariants() << " after interval " << step;
  }

  // Every failure was injected and every slot came back through a
  // promoted spare — never a natural recovery.
  ASSERT_NE(srv->rebuild(), nullptr);
  const RebuildMetrics& rm = srv->rebuild()->metrics();
  EXPECT_EQ((*injector)->metrics().failures_injected, c.failures);
  EXPECT_EQ((*injector)->metrics().recoveries_injected, 0);
  EXPECT_EQ(rm.rebuilds_started, c.failures);
  EXPECT_EQ(rm.rebuilds_completed, c.failures);
  EXPECT_EQ(rm.rebuilds_cancelled, 0);
  EXPECT_EQ(rm.mismatches, 0);
  EXPECT_EQ(srv->rebuild()->active_jobs(), 0u);
  EXPECT_EQ(disks->AvailableCount(), kDisks);

  // The stream population drained and every pause resolved.
  const SchedulerMetrics& m = srv->scheduler_metrics();
  EXPECT_EQ(srv->scheduler()->active_streams(), 0u);
  EXPECT_EQ(srv->scheduler()->pending_requests(), 0u);
  EXPECT_EQ(srv->scheduler()->paused_streams(), 0u);
  EXPECT_EQ(m.streams_paused, m.streams_resumed + m.displays_interrupted);
  EXPECT_EQ(m.displays_requested, kRequests);
  EXPECT_EQ(m.displays_admitted, kRequests);
  EXPECT_EQ(m.displays_completed + m.displays_cancelled, kRequests);
  EXPECT_EQ(m.displays_completed, completed);
  EXPECT_EQ(m.displays_interrupted, interrupted);
  EXPECT_EQ(m.hiccups, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebuildPropertyTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

}  // namespace
}  // namespace stagger
