#include "disk/disk_sim.h"

#include <gtest/gtest.h>

#include <vector>

namespace stagger {
namespace {

class SimulatedDiskTest : public ::testing::Test {
 protected:
  SimulatedDiskTest() : disk_(&sim_, DiskParameters::Sabre1_2GB(), 42) {}
  Simulator sim_;
  SimulatedDisk disk_;
};

TEST_F(SimulatedDiskTest, RejectsOutOfRangeReads) {
  EXPECT_TRUE(disk_.SubmitRead(-1, 1, nullptr).IsInvalidArgument());
  EXPECT_TRUE(disk_.SubmitRead(0, 0, nullptr).IsInvalidArgument());
  EXPECT_TRUE(disk_.SubmitRead(1634, 2, nullptr).IsInvalidArgument());
  EXPECT_TRUE(disk_.SubmitRead(1635, 1, nullptr).IsInvalidArgument());
  EXPECT_TRUE(disk_.SubmitRead(1634, 1, nullptr).ok());
}

TEST_F(SimulatedDiskTest, ServiceTimeWithinModelBounds) {
  std::vector<double> services;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(disk_
                    .SubmitRead((i * 37) % 1600, 1,
                                [&](SimTime s) { services.push_back(s.seconds()); })
                    .ok());
  }
  sim_.Run();
  ASSERT_EQ(services.size(), 50u);
  const DiskParameters p = DiskParameters::Sabre1_2GB();
  for (double s : services) {
    EXPECT_GE(s, p.CylinderReadTime().seconds());      // at least transfer
    EXPECT_LE(s, p.ServiceTime(1).seconds() + 1e-9);   // at most worst case
  }
}

TEST_F(SimulatedDiskTest, FifoCompletionOrder) {
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        disk_.SubmitRead(i * 100, 1, [&order, i](SimTime) { order.push_back(i); })
            .ok());
  }
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(disk_.completed_reads(), 5);
  EXPECT_FALSE(disk_.busy());
}

TEST_F(SimulatedDiskTest, HeadTracksLastCylinder) {
  ASSERT_TRUE(disk_.SubmitRead(100, 3, nullptr).ok());
  sim_.Run();
  EXPECT_EQ(disk_.head_position(), 102);
}

TEST_F(SimulatedDiskTest, ZeroSeekWhenHeadInPlace) {
  ASSERT_TRUE(disk_.SubmitRead(0, 1, nullptr).ok());
  sim_.Run();
  EXPECT_EQ(disk_.seek_time(), SimTime::Zero());  // head starts at 0
  EXPECT_GT(disk_.transfer_time(), SimTime::Zero());
}

TEST_F(SimulatedDiskTest, MeasuredBandwidthBetweenModels) {
  // Random single-cylinder reads: effective bandwidth must land between
  // the worst-case analytical model and the raw transfer rate.
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        disk_.SubmitRead(static_cast<int64_t>(rng.NextBounded(1635)), 1, nullptr)
            .ok());
  }
  sim_.Run();
  const DiskParameters p = DiskParameters::Sabre1_2GB();
  const double measured = disk_.MeasuredEffectiveBandwidth().mbps();
  EXPECT_GT(measured, p.EffectiveBandwidthCylinders(1).mbps());
  EXPECT_LT(measured, p.transfer_rate.mbps());
}

TEST_F(SimulatedDiskTest, SequentialReadsApproachRawRate) {
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(disk_.SubmitRead(i * 4, 4, nullptr).ok());
  }
  sim_.Run();
  const DiskParameters p = DiskParameters::Sabre1_2GB();
  // 4-cylinder sequential reads: overhead is one short seek + rotation.
  EXPECT_GT(disk_.MeasuredEffectiveBandwidth().mbps(),
            0.95 * p.EffectiveBandwidthCylinders(4).mbps());
}

TEST_F(SimulatedDiskTest, DeterministicForSeed) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    SimulatedDisk disk(&sim, DiskParameters::Sabre1_2GB(), seed);
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
      (void)disk.SubmitRead(static_cast<int64_t>(rng.NextBounded(1600)), 1,
                            nullptr);
    }
    sim.Run();
    return disk.MeasuredEffectiveBandwidth().mbps();
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

}  // namespace
}  // namespace stagger
