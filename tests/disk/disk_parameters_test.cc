#include "disk/disk_parameters.h"

#include <gtest/gtest.h>

namespace stagger {
namespace {

TEST(DiskParametersTest, PresetsValidate) {
  EXPECT_TRUE(DiskParameters::Sabre1_2GB().Validate().ok());
  EXPECT_TRUE(DiskParameters::Evaluation().Validate().ok());
}

TEST(DiskParametersTest, ValidateRejectsBadValues) {
  DiskParameters p = DiskParameters::Evaluation();
  p.num_cylinders = 0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());

  p = DiskParameters::Evaluation();
  p.cylinder_capacity = DataSize::Bytes(0);
  EXPECT_TRUE(p.Validate().IsInvalidArgument());

  p = DiskParameters::Evaluation();
  p.transfer_rate = Bandwidth::Mbps(0);
  EXPECT_TRUE(p.Validate().IsInvalidArgument());

  p = DiskParameters::Evaluation();
  p.min_seek = SimTime::Millis(50);  // min > avg
  EXPECT_TRUE(p.Validate().IsInvalidArgument());

  p = DiskParameters::Evaluation();
  p.avg_latency = SimTime::Millis(20);  // avg > max
  EXPECT_TRUE(p.Validate().IsInvalidArgument());

  p = DiskParameters::Evaluation();
  p.sector_size = p.cylinder_capacity + DataSize::Bytes(1);
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

// Section 3.1, verbatim: "a typical 1.2 gigabyte disk drive consists of
// 1635 cylinders, each with a capacity of 756000 bytes."
TEST(DiskParametersTest, SabreGeometry) {
  const DiskParameters p = DiskParameters::Sabre1_2GB();
  EXPECT_EQ(p.num_cylinders, 1635);
  EXPECT_EQ(p.cylinder_capacity.bytes(), 756000);
  EXPECT_NEAR(p.Capacity().gigabytes(), 1.236, 0.001);
}

TEST(DiskParametersTest, SabreTSwitchIs51_83Ms) {
  // "the highest overhead due to seeks and latency is 16.83 + 35 =
  // 51.83 milliseconds"
  EXPECT_NEAR(DiskParameters::Sabre1_2GB().TSwitch().millis(), 51.83, 0.01);
}

TEST(DiskParametersTest, SabreCylinderReadIs250Ms) {
  // "the time to read one cylinder is 250 milliseconds"
  EXPECT_NEAR(DiskParameters::Sabre1_2GB().CylinderReadTime().millis(), 250.0,
              0.5);
}

TEST(DiskParametersTest, SabreServiceTimes) {
  // "S(C_i) = 301.83 msec" (1 cylinder); "S(C_i) = 555.83" (2 cylinders,
  // including the single-track seek between them).
  const DiskParameters p = DiskParameters::Sabre1_2GB();
  EXPECT_NEAR(p.ServiceTime(1).millis(), 301.83, 0.5);
  EXPECT_NEAR(p.ServiceTime(2).millis(), 555.83, 0.5);
}

TEST(DiskParametersTest, SabreWastedBandwidth) {
  // "on the average, 17.2 percentage of disk bandwidth is wasted";
  // "the wasted bandwidth will be only about 10 percent".
  const DiskParameters p = DiskParameters::Sabre1_2GB();
  EXPECT_NEAR(p.WastedBandwidthFraction(1), 0.172, 0.002);
  EXPECT_NEAR(p.WastedBandwidthFraction(2), 0.100, 0.002);
}

TEST(DiskParametersTest, EvaluationIntervalIs604_8Ms) {
  // Table 3 disk: 1.512 MB cylinder at effective 20 mbps; 3000
  // subobjects display in 1814 s.
  const DiskParameters p = DiskParameters::Evaluation();
  EXPECT_EQ(p.CylinderReadTime().micros(), 604800);
  EXPECT_NEAR((p.CylinderReadTime() * 3000).seconds(), 1814.0, 0.5);
  EXPECT_NEAR(p.Capacity().gigabytes(), 4.536, 0.001);
}

TEST(DiskParametersTest, EffectiveBandwidthFormula) {
  // B_disk = tfr * size / (size + T_switch * tfr), Section 3.1.
  const DiskParameters p = DiskParameters::Sabre1_2GB();
  const DataSize cylinder = p.cylinder_capacity;
  const double size_bits = cylinder.bits();
  const double overhead = p.TSwitch().seconds() * p.transfer_rate.bits_per_sec();
  const double expected = p.transfer_rate.bits_per_sec() * size_bits /
                          (size_bits + overhead);
  EXPECT_NEAR(p.EffectiveBandwidth(cylinder).bits_per_sec(), expected, 1.0);
}

TEST(DiskParametersTest, EffectiveBandwidthIncreasesWithFragmentSize) {
  const DiskParameters p = DiskParameters::Sabre1_2GB();
  double prev = 0;
  for (int64_t cyl = 1; cyl <= 10; ++cyl) {
    const double bw = p.EffectiveBandwidthCylinders(cyl).bits_per_sec();
    EXPECT_GT(bw, prev);
    EXPECT_LT(bw, p.transfer_rate.bits_per_sec());
    prev = bw;
  }
}

TEST(DiskParametersTest, MinBufferMemoryEquation1) {
  // Equation (1): B_disk * (T_switch + T_sector).
  const DiskParameters p = DiskParameters::Sabre1_2GB();
  const DataSize frag = p.cylinder_capacity;
  const double b_disk = p.EffectiveBandwidth(frag).bits_per_sec();
  const double seconds = (p.TSwitch() + p.TSector()).seconds();
  EXPECT_NEAR(static_cast<double>(p.MinBufferMemory(frag).bytes()),
              b_disk * seconds / 8.0, 2.0);
}

TEST(DiskParametersTest, SeekTimeModel) {
  const DiskParameters p = DiskParameters::Sabre1_2GB();
  EXPECT_EQ(p.SeekTime(0), SimTime::Zero());
  EXPECT_EQ(p.SeekTime(1), p.min_seek);
  EXPECT_EQ(p.SeekTime(p.num_cylinders - 1), p.max_seek);
  EXPECT_EQ(p.SeekTime(-1), p.min_seek);  // distance is absolute
  // Monotone nondecreasing in distance.
  SimTime prev = SimTime::Zero();
  for (int64_t d = 1; d < p.num_cylinders; d += 100) {
    EXPECT_GE(p.SeekTime(d), prev);
    prev = p.SeekTime(d);
  }
}

}  // namespace
}  // namespace stagger
