#include "disk/disk_array.h"

#include <gtest/gtest.h>

#include "disk/disk.h"

namespace stagger {
namespace {

DiskArray MakeArray(int32_t n) {
  auto array = DiskArray::Create(n, DiskParameters::Evaluation());
  STAGGER_CHECK(array.ok());
  return *std::move(array);
}

TEST(DiskTest, StorageAllocation) {
  Disk d(0, DiskParameters::Evaluation());
  EXPECT_EQ(d.total_cylinders(), 3000);
  EXPECT_EQ(d.free_cylinders(), 3000);
  EXPECT_TRUE(d.AllocateStorage(1000).ok());
  EXPECT_EQ(d.free_cylinders(), 2000);
  EXPECT_EQ(d.used_cylinders(), 1000);
  d.FreeStorage(500);
  EXPECT_EQ(d.free_cylinders(), 2500);
}

TEST(DiskTest, AllocationFailsWhenFull) {
  Disk d(0, DiskParameters::Evaluation());
  EXPECT_TRUE(d.AllocateStorage(3000).ok());
  Status st = d.AllocateStorage(1);
  EXPECT_TRUE(st.IsResourceExhausted());
  // Failed allocation does not change accounting.
  EXPECT_EQ(d.free_cylinders(), 0);
}

TEST(DiskDeathTest, OverFreeingAborts) {
  Disk d(0, DiskParameters::Evaluation());
  EXPECT_DEATH(d.FreeStorage(1), "freed more storage");
}

TEST(DiskTest, UtilizationCountsBusyIntervals) {
  Disk d(0, DiskParameters::Evaluation());
  d.Reserve();
  d.EndInterval();  // busy
  d.EndInterval();  // idle
  d.Reserve();
  d.EndInterval();  // busy
  d.EndInterval();  // idle
  EXPECT_EQ(d.busy_intervals(), 2);
  EXPECT_EQ(d.total_intervals(), 4);
  EXPECT_DOUBLE_EQ(d.Utilization(), 0.5);
}

TEST(DiskDeathTest, DoubleReserveAborts) {
  Disk d(0, DiskParameters::Evaluation());
  d.Reserve();
  EXPECT_DEATH(d.Reserve(), "reserved twice");
}

TEST(DiskArrayTest, CreateValidates) {
  EXPECT_FALSE(DiskArray::Create(0, DiskParameters::Evaluation()).ok());
  DiskParameters bad = DiskParameters::Evaluation();
  bad.num_cylinders = -1;
  EXPECT_FALSE(DiskArray::Create(10, bad).ok());
}

TEST(DiskArrayTest, WrapIsModular) {
  DiskArray array = MakeArray(10);
  EXPECT_EQ(array.Wrap(3), 3);
  EXPECT_EQ(array.Wrap(13), 3);
  EXPECT_EQ(array.Wrap(-1), 9);
  EXPECT_EQ(array.Wrap(10), 0);
}

TEST(DiskArrayTest, RunIsIdleAndReserve) {
  DiskArray array = MakeArray(8);
  EXPECT_TRUE(array.RunIsIdle(6, 4));  // wraps over 6,7,0,1
  array.ReserveRun(6, 4);
  EXPECT_FALSE(array.RunIsIdle(0, 1));
  EXPECT_FALSE(array.RunIsIdle(5, 2));
  EXPECT_TRUE(array.RunIsIdle(2, 4));
  EXPECT_EQ(array.IdleCount(), 4);
  array.EndInterval();
  EXPECT_EQ(array.IdleCount(), 8);
}

TEST(DiskArrayTest, AggregateCapacity) {
  DiskArray array = MakeArray(4);
  EXPECT_EQ(array.TotalCylinders(), 12000);
  EXPECT_TRUE(array.disk(2).AllocateStorage(100).ok());
  EXPECT_EQ(array.FreeCylinders(), 11900);
  EXPECT_NEAR(array.TotalCapacity().gigabytes(), 4 * 4.536, 0.01);
}

TEST(DiskArrayTest, UtilizationSkewReporting) {
  DiskArray array = MakeArray(4);
  for (int t = 0; t < 10; ++t) {
    array.ReserveSlot(0);
    if (t < 5) array.ReserveSlot(1);
    array.EndInterval();
  }
  EXPECT_DOUBLE_EQ(array.MaxUtilization(), 1.0);
  EXPECT_DOUBLE_EQ(array.MinUtilization(), 0.0);
  EXPECT_DOUBLE_EQ(array.MeanUtilization(), (1.0 + 0.5) / 4.0);
}

TEST(DiskArrayTest, StorageSkewReporting) {
  DiskArray array = MakeArray(3);
  EXPECT_TRUE(array.disk(0).AllocateStorage(300).ok());
  EXPECT_TRUE(array.disk(1).AllocateStorage(100).ok());
  EXPECT_EQ(array.MaxUsedCylinders(), 300);
  EXPECT_EQ(array.MinUsedCylinders(), 0);
}

// ---------------------------------------------------------------------
// Hot-spare pool (online rebuild).
// ---------------------------------------------------------------------

DiskArray MakeArrayWithSpares(int32_t n, int32_t spares) {
  auto array = DiskArray::Create(n, DiskParameters::Evaluation(), spares);
  STAGGER_CHECK(array.ok());
  return *std::move(array);
}

TEST(DiskArraySpareTest, SparesAreInvisibleToSlotQueries) {
  DiskArray array = MakeArrayWithSpares(4, 2);
  EXPECT_EQ(array.num_disks(), 4);
  EXPECT_EQ(array.num_spares(), 2);
  EXPECT_EQ(array.FreeSpareCount(), 2);
  // Slot-space accounting ignores spares entirely.
  EXPECT_EQ(array.IdleCount(), 4);
  EXPECT_EQ(array.AvailableCount(), 4);
  EXPECT_EQ(array.TotalCylinders(), MakeArray(4).TotalCylinders());
}

TEST(DiskArraySpareTest, AcquireReturnCycle) {
  DiskArray array = MakeArrayWithSpares(4, 1);
  auto drive = array.AcquireSpare();
  ASSERT_TRUE(drive.ok());
  EXPECT_EQ(array.FreeSpareCount(), 0);
  EXPECT_TRUE(array.AcquireSpare().status().IsResourceExhausted());
  array.ReturnSpare(*drive);
  EXPECT_EQ(array.FreeSpareCount(), 1);
}

TEST(DiskArraySpareTest, PromotionRewiresSlotAndTransfersStorage) {
  DiskArray array = MakeArrayWithSpares(4, 1);
  EXPECT_TRUE(array.disk(2).AllocateStorage(700).ok());
  array.FailDisk(2);
  EXPECT_FALSE(array.IsAvailable(2));

  auto drive = array.AcquireSpare();
  ASSERT_TRUE(drive.ok());
  array.PromoteSpare(2, *drive);

  // The slot is healthy again, addressed identically, and carries the
  // failed drive's storage accounting — bit-identical in slot space.
  EXPECT_TRUE(array.IsAvailable(2));
  EXPECT_EQ(array.disk(2).used_cylinders(), 700);
  EXPECT_EQ(array.FreeCylinders(), array.TotalCylinders() - 700);
  EXPECT_EQ(array.FreeSpareCount(), 0);  // the dead drive is retired
}

TEST(DiskArraySpareTest, PromotedSlotServesReads) {
  DiskArray array = MakeArrayWithSpares(3, 1);
  array.FailDisk(1);
  auto drive = array.AcquireSpare();
  ASSERT_TRUE(drive.ok());
  array.PromoteSpare(1, *drive);
  EXPECT_TRUE(array.RunIsIdle(0, 3));
  array.ReserveRun(0, 3);
  EXPECT_EQ(array.IdleCount(), 0);
  array.EndInterval();
  EXPECT_EQ(array.IdleCount(), 3);
}

TEST(DiskArraySpareDeathTest, PromoteRequiresFailedSlot) {
  DiskArray array = MakeArrayWithSpares(2, 1);
  auto drive = array.AcquireSpare();
  ASSERT_TRUE(drive.ok());
  EXPECT_DEATH(array.PromoteSpare(0, *drive), "");
}

// ---------------------------------------------------------------------
// Degraded drives (stragglers): Bresenham duty cycle over intervals.
// ---------------------------------------------------------------------

TEST(DiskArrayDegradeTest, DutyCycleMatchesPercent) {
  DiskArray array = MakeArray(4);
  array.DegradeDisk(1, 50);
  EXPECT_EQ(array.disk(1).health(), DiskHealth::kDegraded);
  EXPECT_FALSE(array.IsAvailable(1));  // the credit counter starts empty
  int32_t serving = 0;
  for (int i = 0; i < 10; ++i) {
    array.EndInterval();
    if (array.IsAvailable(1)) ++serving;
  }
  EXPECT_EQ(serving, 5);  // exactly percent% of intervals, no drift
}

TEST(DiskArrayDegradeTest, LowPercentServesSparsely) {
  DiskArray array = MakeArray(4);
  array.DegradeDisk(0, 25);
  int32_t serving = 0;
  for (int i = 0; i < 100; ++i) {
    array.EndInterval();
    if (array.IsAvailable(0)) ++serving;
  }
  EXPECT_EQ(serving, 25);
}

TEST(DiskArrayDegradeTest, DegradedIntervalAccountingStopsAtRecover) {
  DiskArray array = MakeArray(4);
  array.DegradeDisk(2, 40);
  for (int i = 0; i < 8; ++i) array.EndInterval();
  EXPECT_EQ(array.degraded_disk_intervals(), 8);
  array.RecoverDisk(2);
  EXPECT_TRUE(array.IsAvailable(2));
  EXPECT_EQ(array.disk(2).health(), DiskHealth::kHealthy);
  for (int i = 0; i < 3; ++i) array.EndInterval();
  EXPECT_EQ(array.degraded_disk_intervals(), 8);
}

TEST(DiskArrayDegradeTest, NonServingStragglerIsNotIdleAvailable) {
  DiskArray array = MakeArray(4);
  array.DegradeDisk(3, 50);
  array.EndInterval();  // credit 50: not serving this interval
  EXPECT_EQ(array.IdleAvailableCount(), 3);
  array.EndInterval();  // credit 100: serving
  EXPECT_EQ(array.IdleAvailableCount(), 4);
}

TEST(DiskArrayDegradeTest, FailEscalatesAndClearsTheDutyCycle) {
  DiskArray array = MakeArray(4);
  array.DegradeDisk(1, 50);
  array.FailDisk(1);
  EXPECT_EQ(array.disk(1).health(), DiskHealth::kFailed);
  EXPECT_FALSE(array.IsAvailable(1));
  // The slot left the degraded walk list: intervals no longer accrue.
  const int64_t before = array.degraded_disk_intervals();
  array.EndInterval();
  EXPECT_EQ(array.degraded_disk_intervals(), before);
  array.RecoverDisk(1);
  EXPECT_TRUE(array.IsAvailable(1));
  EXPECT_EQ(array.disk(1).degraded_percent(), 0);
}

// ---------------------------------------------------------------------
// Latent sector errors: the array-owned media-cell registry.
// ---------------------------------------------------------------------

TEST(DiskArrayLatentTest, InjectDetectRepairLifecycle) {
  DiskArray array = MakeArray(4);
  LatentErrorMap& latent = array.latent_errors();
  EXPECT_FALSE(latent.active());
  EXPECT_EQ(latent.Inject(2, 10, 12), 3);
  EXPECT_TRUE(latent.active());
  EXPECT_EQ(latent.ActiveCells(), 3);
  EXPECT_TRUE(latent.IsCorrupt(2, 11));
  EXPECT_FALSE(latent.IsCorrupt(2, 13));
  EXPECT_FALSE(latent.IsCorrupt(1, 11));
  // Media-level: the disk keeps serving.
  EXPECT_TRUE(array.IsAvailable(2));

  EXPECT_TRUE(latent.MarkDetected(2, 11));
  EXPECT_FALSE(latent.MarkDetected(2, 11));  // only the first counts
  latent.Repair(2, 11);
  EXPECT_FALSE(latent.IsCorrupt(2, 11));
  EXPECT_EQ(latent.ActiveCells(), 2);
  EXPECT_EQ(latent.metrics().injected, 3);
  EXPECT_EQ(latent.metrics().detected, 1);
  EXPECT_EQ(latent.metrics().repaired, 1);
}

TEST(DiskArrayLatentTest, ReinjectionKeepsTheOriginalCell) {
  DiskArray array = MakeArray(2);
  LatentErrorMap& latent = array.latent_errors();
  EXPECT_EQ(latent.Inject(0, 5, 7), 3);
  EXPECT_EQ(latent.Inject(0, 6, 8), 1);  // rows 6 and 7 already corrupt
  EXPECT_EQ(latent.ActiveCells(), 4);
  EXPECT_EQ(latent.metrics().injected, 4);
}

TEST(DiskArrayLatentTest, TimeToRepairIsStampedInIntervals) {
  DiskArray array = MakeArray(2);
  LatentErrorMap& latent = array.latent_errors();
  latent.Inject(1, 3, 3);
  for (int i = 0; i < 7; ++i) array.EndInterval();
  latent.MarkDetected(1, 3);
  latent.Repair(1, 3);
  ASSERT_EQ(latent.metrics().time_to_repair_intervals.count(), 1);
  EXPECT_DOUBLE_EQ(latent.metrics().time_to_repair_intervals.mean(), 7.0);
}

TEST(DiskArrayLatentTest, CellsSurviveFailAndRecover) {
  DiskArray array = MakeArray(4);
  array.latent_errors().Inject(1, 0, 0);
  array.FailDisk(1);
  array.RecoverDisk(1);
  // The platters come back as they were: still corrupt.
  EXPECT_TRUE(array.latent_errors().IsCorrupt(1, 0));
}

TEST(DiskArrayLatentTest, SparePromotionDropsTheSlotsCells) {
  DiskArray array = MakeArrayWithSpares(4, 1);
  array.latent_errors().Inject(2, 4, 6);
  array.latent_errors().Inject(3, 9, 9);
  array.FailDisk(2);
  auto drive = array.AcquireSpare();
  ASSERT_TRUE(drive.ok());
  array.PromoteSpare(2, *drive);
  // The promoted slot got a fresh medium; other disks' cells stand.
  EXPECT_FALSE(array.latent_errors().IsCorrupt(2, 5));
  EXPECT_TRUE(array.latent_errors().IsCorrupt(3, 9));
  EXPECT_EQ(array.latent_errors().metrics().repaired_by_rebuild, 3);
  EXPECT_EQ(array.latent_errors().ActiveCells(), 1);
}

}  // namespace
}  // namespace stagger
