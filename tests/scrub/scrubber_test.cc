#include "scrub/scrubber.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "disk/disk_array.h"

namespace stagger {
namespace {

class ScrubberTest : public ::testing::Test {
 protected:
  void Init(int32_t num_disks, std::vector<ScrubTarget> targets,
            int64_t intervals_per_stripe = 1) {
    auto disks = DiskArray::Create(num_disks, DiskParameters::Evaluation());
    ASSERT_TRUE(disks.ok());
    disks_ = std::make_unique<DiskArray>(*std::move(disks));
    targets_ = std::move(targets);
    ScrubConfig config;
    config.intervals_per_stripe = intervals_per_stripe;
    auto scrubber = Scrubber::Create(disks_.get(), config,
                                     [this] { return targets_; });
    ASSERT_TRUE(scrubber.ok()) << scrubber.status();
    scrubber_ = *std::move(scrubber);
  }

  /// One resident object striped over all disks: row s's data fragment
  /// j on (s + j) mod D, parity on (s + degree) mod D.
  static ScrubTarget Target(ObjectId object, int64_t n, int32_t degree,
                            bool parity) {
    ScrubTarget t;
    t.object = object;
    t.num_subobjects = n;
    t.degree = degree;
    t.first_disk = 0;
    t.stride = 1;
    t.parity = parity;
    return t;
  }

  /// Runs `n` idle intervals with an uncapped grant, closing each like
  /// the scheduler would.
  void RunIdleIntervals(int64_t n, int64_t start = 0) {
    for (int64_t t = start; t < start + n; ++t) {
      BackgroundGrant grant(disks_.get(), /*max_reads=*/0);
      scrubber_->RunIdle(t, &grant);
      disks_->EndInterval();
    }
  }

  std::unique_ptr<DiskArray> disks_;
  std::unique_ptr<Scrubber> scrubber_;
  std::vector<ScrubTarget> targets_;
};

TEST(ScrubberCreateTest, Validates) {
  auto disks = DiskArray::Create(4, DiskParameters::Evaluation());
  ASSERT_TRUE(disks.ok());
  ScrubConfig bad_rate;
  bad_rate.intervals_per_stripe = 0;
  EXPECT_TRUE(Scrubber::Create(&*disks, bad_rate,
                               [] { return std::vector<ScrubTarget>{}; })
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Scrubber::Create(&*disks, ScrubConfig{}, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ScrubberTest, CleanPassVerifiesEveryStripe) {
  Init(6, {Target(1, 12, 3, /*parity=*/true)});
  RunIdleIntervals(20);
  EXPECT_GE(scrubber_->metrics().passes_completed, 1);
  EXPECT_GE(scrubber_->metrics().stripes_scrubbed, 12);
  // 4 members per stripe, all verified.
  EXPECT_EQ(scrubber_->metrics().verify_reads,
            scrubber_->metrics().stripes_scrubbed * 4);
  EXPECT_EQ(scrubber_->metrics().mismatches, 0);
  EXPECT_EQ(scrubber_->metrics().latent_errors_found, 0);
  EXPECT_TRUE(scrubber_->AuditState().ok());
}

TEST_F(ScrubberTest, SingleCorruptFragmentIsParityRepaired) {
  Init(6, {Target(1, 12, 3, /*parity=*/true)});
  // Stripe 4's data fragment j=1 lives on disk (4+1) mod 6 = 5.
  disks_->latent_errors().Inject(5, 4, 4);
  RunIdleIntervals(20);
  EXPECT_FALSE(disks_->latent_errors().IsCorrupt(5, 4));
  EXPECT_EQ(scrubber_->metrics().latent_errors_found, 1);
  EXPECT_EQ(scrubber_->metrics().parity_repairs, 1);
  EXPECT_EQ(scrubber_->metrics().latent_errors_repaired, 1);
  EXPECT_EQ(scrubber_->metrics().archive_restores, 0);
  EXPECT_EQ(disks_->latent_errors().metrics().repaired, 1);
}

TEST_F(ScrubberTest, DoubleCorruptionEscalatesToArchiveRestore) {
  Init(6, {Target(1, 12, 3, /*parity=*/true)});
  // Stripe 0's data fragments j=0 and j=1: disks 0 and 1, row 0 —
  // single parity cannot reconstruct two losses.
  disks_->latent_errors().Inject(0, 0, 0);
  disks_->latent_errors().Inject(1, 0, 0);
  RunIdleIntervals(20);
  EXPECT_FALSE(disks_->latent_errors().active());
  EXPECT_EQ(scrubber_->metrics().archive_restores, 1);
  EXPECT_EQ(scrubber_->metrics().parity_repairs, 0);
  EXPECT_EQ(scrubber_->metrics().latent_errors_repaired, 2);
}

TEST_F(ScrubberTest, NoParityStripeRestoresFromArchive) {
  Init(6, {Target(1, 8, 3, /*parity=*/false)});
  disks_->latent_errors().Inject(2, 2, 2);  // stripe 2, fragment j=0
  RunIdleIntervals(16);
  EXPECT_FALSE(disks_->latent_errors().active());
  EXPECT_EQ(scrubber_->metrics().archive_restores, 1);
  EXPECT_EQ(scrubber_->metrics().parity_repairs, 0);
}

TEST_F(ScrubberTest, OrphanCellsAreSweptWithoutTargets) {
  Init(6, {});
  disks_->latent_errors().Inject(3, 50, 51);
  EXPECT_TRUE(scrubber_->HasWork());
  RunIdleIntervals(4);
  EXPECT_FALSE(disks_->latent_errors().active());
  EXPECT_EQ(scrubber_->metrics().orphans_repaired, 2);
  EXPECT_EQ(scrubber_->metrics().latent_errors_found, 2);
  EXPECT_FALSE(scrubber_->HasWork());
}

TEST_F(ScrubberTest, DetectedCellIsRepairedOutOfCursorOrder) {
  // A huge rate floor freezes the background cursor, so only the
  // targeted path can reach the cell within the test window.
  Init(6, {Target(1, 200, 3, /*parity=*/true)}, /*intervals_per_stripe=*/1000);
  disks_->latent_errors().Inject(4, 100, 100);  // stripe 100, j=?, disk 4
  // A display read's checksum surfaces the cell.
  disks_->latent_errors().MarkDetected(4, 100);
  RunIdleIntervals(3);
  EXPECT_FALSE(disks_->latent_errors().IsCorrupt(4, 100));
  EXPECT_GE(scrubber_->metrics().targeted_repairs, 1);
  EXPECT_EQ(scrubber_->metrics().parity_repairs, 1);
  // The cursor barely moved: the repair did not ride a full pass.
  EXPECT_LE(scrubber_->metrics().passes_completed, 0);
}

TEST_F(ScrubberTest, UndetectedCellWaitsForTheCursor) {
  // Same setup, but nobody detected the cell: the rate floor paces the
  // cursor, so the cell stays corrupt within the short window.
  Init(6, {Target(1, 200, 3, /*parity=*/true)}, /*intervals_per_stripe=*/1000);
  disks_->latent_errors().Inject(4, 100, 100);
  RunIdleIntervals(3);
  EXPECT_TRUE(disks_->latent_errors().IsCorrupt(4, 100));
  EXPECT_EQ(scrubber_->metrics().targeted_repairs, 0);
}

TEST_F(ScrubberTest, RateFloorPacesTheCursor) {
  Init(6, {Target(1, 100, 3, /*parity=*/true)}, /*intervals_per_stripe=*/4);
  RunIdleIntervals(9);
  // One stripe at interval 0, then every 4th interval: 0, 4, 8 -> 3.
  EXPECT_EQ(scrubber_->metrics().stripes_scrubbed, 3);
}

TEST_F(ScrubberTest, UnavailableMemberDefersTheStripeNotThePass) {
  Init(6, {Target(1, 6, 3, /*parity=*/true)});
  disks_->FailDisk(0);
  // Disk 0 carries stripe 0's j=0, stripe 5's j=1, stripe 4's j=2, and
  // stripe 3's parity; stripes 1 and 2 avoid it and must still verify.
  RunIdleIntervals(4);
  EXPECT_GT(scrubber_->metrics().skipped_unavailable, 0);
  EXPECT_GE(scrubber_->metrics().stripes_scrubbed, 2);
  EXPECT_GE(scrubber_->metrics().passes_completed, 1);
  EXPECT_TRUE(scrubber_->AuditState().ok());

  // Once the disk is back the deferred stripes verify on the next pass.
  disks_->RecoverDisk(0);
  const int64_t skipped = scrubber_->metrics().skipped_unavailable;
  RunIdleIntervals(6, /*start=*/4);
  EXPECT_EQ(scrubber_->metrics().skipped_unavailable, skipped);
  EXPECT_GE(scrubber_->metrics().stripes_scrubbed, 6);
}

TEST_F(ScrubberTest, InvalidateRequeriesTheWorkSource) {
  Init(6, {Target(1, 4, 3, /*parity=*/true)});
  RunIdleIntervals(2);
  // The catalog churned: object 1 evicted, object 2 landed.
  targets_ = {Target(2, 4, 3, /*parity=*/true)};
  scrubber_->Invalidate();
  EXPECT_TRUE(scrubber_->HasWork());
  RunIdleIntervals(8, /*start=*/2);
  EXPECT_GE(scrubber_->metrics().passes_completed, 2);
  EXPECT_EQ(scrubber_->metrics().mismatches, 0);
}

TEST_F(ScrubberTest, BlockedGrantHoldsTheCursorStill) {
  Init(6, {Target(1, 8, 3, /*parity=*/true)});
  // A grant too small for one stripe (4 members) cannot scrub at all.
  for (int64_t t = 0; t < 3; ++t) {
    BackgroundGrant grant(disks_.get(), /*max_reads=*/2);
    scrubber_->RunIdle(t, &grant);
    disks_->EndInterval();
  }
  EXPECT_EQ(scrubber_->metrics().stripes_scrubbed, 0);
  EXPECT_EQ(scrubber_->metrics().stalled_intervals, 3);
  // With a full grant the pass proceeds from stripe 0.
  RunIdleIntervals(12, /*start=*/3);
  EXPECT_GE(scrubber_->metrics().passes_completed, 1);
  EXPECT_EQ(scrubber_->metrics().mismatches, 0);
}

}  // namespace
}  // namespace stagger
