// stagger_sim — command-line driver for the Table 3 experiment runner.
//
//   $ stagger_sim --scheme=striping --stations=64 --mean=10
//   $ stagger_sim --scheme=vdr --stations=256 --mean=43.5 --csv
//   $ stagger_sim --help
//
// Every knob of ExperimentConfig is exposed; defaults reproduce the
// paper's Table 3 system.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "server/experiment.h"
#include "util/rng.h"
#include "util/table.h"

namespace stagger {
namespace {

void PrintUsage() {
  std::printf(R"(stagger_sim — staggered-striping media-server simulator

Usage: stagger_sim [flags]

  --scheme=NAME       striping | staggered | vdr        [striping]
  --stations=N        closed-loop display stations      [16]
  --mean=X            geometric popularity mean         [10]
  --disks=N           number of disks D                 [1000]
  --objects=N         catalog size                      [2000]
  --subobjects=N      subobjects per object             [3000]
  --display-mbps=X    B_Display                         [100]
  --tertiary-mbps=X   B_Tertiary                        [40]
  --stride=N          stride k (staggered scheme)       [5]
  --fragmented        enable Algorithm-1 admission
  --coalesce          enable Algorithm-2 coalescing
  --no-replication    disable VDR dynamic replication
  --preload=N         objects resident at t=0           [200]
  --warmup-hours=X    excluded from throughput          [2]
  --measure-hours=X   measurement window                [10]
  --seed=N            workload seed                     [20240101]
  --replications=N    independent runs, seeds seed..seed+N-1  [1]
  --threads=N         concurrent replications; with --shards and a
                      single run, parallel tick workers [1]
  --shards=N          storage-node shards (parallel per-shard ticks;
                      bit-identical to --shards=1)      [1]
  --shard-min-active  streams below which ticks stay serial  [256]
  --ring-placement    route placement through the coordinator ring
  --ring-replicas=N   replica shards per object         [2]
  --rpc-latency-ms=X  modeled coordinator hop latency (implies
                      --ring-placement)                 [0]
  --parity            store per-subobject parity fragments
  --spares=N          hot-spare drives (enables rebuild with --parity)
  --scrub             run the background latent-error scrubber
  --degraded=NAME     none | pause | remap | reconstruct  [remap]
  --chaos-seed=N      generate a chaos fault plan (prints it for replay)
  --chaos-mtbf-hours=X   per-disk failure MTBF           [200]
  --chaos-mttr-hours=X   mean repair/outage duration     [0.5]
  --chaos-domains=N   correlated failure domains        [0]
  --csv               machine-readable one-line output
  --help              this text

With --replications=N > 1 the tool reports mean and sample stddev
across the runs; --threads=N runs replications concurrently.  Results
are bit-identical whatever the thread count.
)");
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = "";
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int Run(int argc, char** argv) {
  ExperimentConfig cfg;
  bool csv = false;
  int32_t replications = 1;
  int32_t threads = 1;
  bool chaos = false;
  uint64_t chaos_seed = 0;
  double chaos_mtbf_hours = 200.0;
  double chaos_mttr_hours = 0.5;
  int32_t chaos_domains = 0;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--help", &v)) {
      PrintUsage();
      return 0;
    } else if (ParseFlag(argv[i], "--scheme", &v)) {
      if (v == "striping") {
        cfg.scheme = Scheme::kSimpleStriping;
      } else if (v == "staggered") {
        cfg.scheme = Scheme::kStaggered;
      } else if (v == "vdr") {
        cfg.scheme = Scheme::kVdr;
      } else {
        std::fprintf(stderr, "unknown scheme '%s'\n", v.c_str());
        return 2;
      }
    } else if (ParseFlag(argv[i], "--stations", &v)) {
      cfg.stations = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--mean", &v)) {
      cfg.geometric_mean = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--disks", &v)) {
      cfg.num_disks = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--objects", &v)) {
      cfg.num_objects = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--subobjects", &v)) {
      cfg.subobjects_per_object = std::atoll(v.c_str());
    } else if (ParseFlag(argv[i], "--display-mbps", &v)) {
      cfg.display_bandwidth = Bandwidth::Mbps(std::atof(v.c_str()));
    } else if (ParseFlag(argv[i], "--tertiary-mbps", &v)) {
      cfg.tertiary.bandwidth = Bandwidth::Mbps(std::atof(v.c_str()));
    } else if (ParseFlag(argv[i], "--stride", &v)) {
      cfg.stride = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--fragmented", &v)) {
      cfg.policy = AdmissionPolicy::kFragmented;
    } else if (ParseFlag(argv[i], "--coalesce", &v)) {
      cfg.policy = AdmissionPolicy::kFragmented;
      cfg.coalesce = true;
    } else if (ParseFlag(argv[i], "--no-replication", &v)) {
      cfg.enable_replication = false;
    } else if (ParseFlag(argv[i], "--preload", &v)) {
      cfg.preload_objects = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--warmup-hours", &v)) {
      cfg.warmup = SimTime::Hours(std::atof(v.c_str()));
    } else if (ParseFlag(argv[i], "--measure-hours", &v)) {
      cfg.measure = SimTime::Hours(std::atof(v.c_str()));
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      cfg.seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(argv[i], "--replications", &v)) {
      replications = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--threads", &v)) {
      threads = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--parity", &v)) {
      cfg.parity = true;
    } else if (ParseFlag(argv[i], "--spares", &v)) {
      cfg.num_spares = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--scrub", &v)) {
      cfg.scrub = true;
    } else if (ParseFlag(argv[i], "--degraded", &v)) {
      if (v == "none") {
        cfg.degraded_policy = DegradedPolicy::kNone;
      } else if (v == "pause") {
        cfg.degraded_policy = DegradedPolicy::kPause;
      } else if (v == "remap") {
        cfg.degraded_policy = DegradedPolicy::kRemapOrPause;
      } else if (v == "reconstruct") {
        cfg.degraded_policy = DegradedPolicy::kReconstruct;
      } else {
        std::fprintf(stderr, "unknown degraded policy '%s'\n", v.c_str());
        return 2;
      }
    } else if (ParseFlag(argv[i], "--chaos-seed", &v)) {
      chaos = true;
      chaos_seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(argv[i], "--chaos-mtbf-hours", &v)) {
      chaos = true;
      chaos_mtbf_hours = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--chaos-mttr-hours", &v)) {
      chaos = true;
      chaos_mttr_hours = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--chaos-domains", &v)) {
      chaos = true;
      chaos_domains = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--shards", &v)) {
      cfg.num_shards = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--shard-min-active", &v)) {
      cfg.shard_min_active_streams = std::atoll(v.c_str());
    } else if (ParseFlag(argv[i], "--ring-placement", &v)) {
      cfg.ring_placement = true;
    } else if (ParseFlag(argv[i], "--ring-replicas", &v)) {
      cfg.ring_replicas = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--rpc-latency-ms", &v)) {
      cfg.ring_placement = true;
      cfg.rpc_latency = SimTime::Micros(
          static_cast<int64_t>(std::atof(v.c_str()) * 1000.0));
    } else if (ParseFlag(argv[i], "--csv", &v)) {
      csv = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }

  if (chaos) {
    // Seeded chaos plan over the whole run; the serialized form is
    // printed so any run can be replayed exactly by pasting the plan
    // back through FaultPlan::Parse.
    ChaosParams cp;
    cp.horizon = cfg.warmup + cfg.measure;
    cp.mtbf = SimTime::Hours(chaos_mtbf_hours);
    cp.mttr = SimTime::Hours(chaos_mttr_hours);
    cp.stall_mtbf = SimTime::Hours(chaos_mtbf_hours);
    cp.mean_stall = SimTime::Hours(chaos_mttr_hours / 4.0);
    cp.degrade_mtbf = SimTime::Hours(chaos_mtbf_hours);
    cp.mean_degrade = SimTime::Hours(chaos_mttr_hours);
    cp.latent_mtbf = SimTime::Hours(chaos_mtbf_hours / 2.0);
    cp.subobject_space = cfg.subobjects_per_object;
    cp.num_domains = chaos_domains;
    Rng rng(chaos_seed);
    cfg.fault_plan = FaultPlan::Generate(&rng, cfg.num_disks, cp);
    std::fprintf(stderr, "# chaos plan (seed %llu) — replayable:\n%s",
                 static_cast<unsigned long long>(chaos_seed),
                 cfg.fault_plan.ToString().c_str());
  }

  if (replications <= 1 && cfg.num_shards > 1) {
    // Single-run mode: --threads drives the sharded tick pool instead
    // of the replication sweep.  Results stay bit-identical whatever
    // the thread or shard count (see src/node/).
    cfg.tick_threads = threads;
  }

  if (replications > 1) {
    auto replicated = RunReplicated(cfg, replications, threads);
    if (!replicated.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   replicated.status().ToString().c_str());
      return 1;
    }
    if (csv) {
      Table table({"scheme", "stations", "mean", "replications", "threads",
                   "displays_per_hour_mean", "displays_per_hour_stddev",
                   "latency_s_mean", "latency_s_stddev", "disk_util_mean",
                   "disk_util_stddev"});
      table.AddRowValues(SchemeName(cfg.scheme),
                         static_cast<int64_t>(cfg.stations),
                         cfg.geometric_mean,
                         static_cast<int64_t>(replicated->replications),
                         static_cast<int64_t>(threads),
                         replicated->displays_per_hour.mean(),
                         replicated->displays_per_hour.stddev(),
                         replicated->mean_startup_latency_sec.mean(),
                         replicated->mean_startup_latency_sec.stddev(),
                         replicated->disk_utilization.mean(),
                         replicated->disk_utilization.stddev());
      table.PrintCsv(std::cout);
      return 0;
    }
    std::printf("scheme                %s\n", SchemeName(cfg.scheme).c_str());
    std::printf("stations              %d\n", cfg.stations);
    std::printf("popularity mean       %.1f\n", cfg.geometric_mean);
    std::printf("replications          %d (seeds %llu..%llu, %d thread%s)\n",
                replicated->replications,
                static_cast<unsigned long long>(cfg.seed),
                static_cast<unsigned long long>(
                    cfg.seed + static_cast<uint64_t>(replications) - 1),
                threads, threads == 1 ? "" : "s");
    std::printf("throughput            %.1f +/- %.1f displays/hour\n",
                replicated->displays_per_hour.mean(),
                replicated->displays_per_hour.stddev());
    std::printf("mean startup latency  %.1f +/- %.1f s\n",
                replicated->mean_startup_latency_sec.mean(),
                replicated->mean_startup_latency_sec.stddev());
    std::printf("disk utilization      %.1f +/- %.1f %%\n",
                100.0 * replicated->disk_utilization.mean(),
                100.0 * replicated->disk_utilization.stddev());
    return 0;
  }

  auto result = RunExperiment(cfg);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  if (csv) {
    Table table({"scheme", "stations", "mean", "displays_per_hour",
                 "mean_latency_s", "disk_util", "tertiary_util",
                 "materializations", "replications", "evictions", "hiccups",
                 "resident"});
    table.AddRowValues(SchemeName(cfg.scheme),
                       static_cast<int64_t>(cfg.stations), cfg.geometric_mean,
                       result->displays_per_hour,
                       result->mean_startup_latency_sec,
                       result->disk_utilization, result->tertiary_utilization,
                       result->materializations, result->replications,
                       result->evictions, result->hiccups,
                       static_cast<int64_t>(result->resident_objects_end));
    table.PrintCsv(std::cout);
    return 0;
  }

  std::printf("scheme                %s\n", SchemeName(cfg.scheme).c_str());
  std::printf("stations              %d\n", cfg.stations);
  std::printf("popularity mean       %.1f (unique referenced: %lld)\n",
              cfg.geometric_mean,
              static_cast<long long>(result->unique_objects_referenced));
  std::printf("throughput            %.1f displays/hour\n",
              result->displays_per_hour);
  std::printf("completed displays    %lld\n",
              static_cast<long long>(result->displays_completed));
  std::printf("mean startup latency  %.1f s\n",
              result->mean_startup_latency_sec);
  std::printf("disk utilization      %.1f %%\n",
              100.0 * result->disk_utilization);
  std::printf("tertiary utilization  %.1f %% (%lld materializations, queue "
              "%lld)\n",
              100.0 * result->tertiary_utilization,
              static_cast<long long>(result->materializations),
              static_cast<long long>(result->tertiary_queue_end));
  std::printf("replications          %lld\n",
              static_cast<long long>(result->replications));
  std::printf("evictions             %lld\n",
              static_cast<long long>(result->evictions));
  std::printf("resident objects      %d\n", result->resident_objects_end);
  std::printf("hiccups               %lld\n",
              static_cast<long long>(result->hiccups));
  if (!cfg.fault_plan.events().empty()) {
    std::printf("degraded reads        %lld (+%lld reconstructed)\n",
                static_cast<long long>(result->degraded_reads),
                static_cast<long long>(result->reconstructed_reads));
    std::printf("degraded intervals    %lld disk-intervals\n",
                static_cast<long long>(result->degraded_disk_intervals));
    std::printf("latent errors         %lld injected, %lld detected, %lld "
                "repaired, %lld unrepaired\n",
                static_cast<long long>(result->latent_errors_injected),
                static_cast<long long>(result->latent_errors_detected),
                static_cast<long long>(result->latent_errors_repaired),
                static_cast<long long>(result->latent_errors_unrepaired));
    std::printf("corrupt frames        %lld delivered, %lld caught\n",
                static_cast<long long>(result->corrupt_frames_delivered),
                static_cast<long long>(result->corrupt_reads_detected));
    std::printf("mean time to repair   %.1f s\n",
                result->mean_time_to_repair_sec);
  }
  if (cfg.scrub) {
    std::printf("scrub                 %lld stripes verified, %lld passes\n",
                static_cast<long long>(result->scrub_stripes_verified),
                static_cast<long long>(result->scrub_passes));
    std::printf("background budget     %lld reads granted, %lld violations\n",
                static_cast<long long>(result->background_reads_granted),
                static_cast<long long>(result->background_budget_violations));
  }
  return result->hiccups == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stagger

int main(int argc, char** argv) { return stagger::Run(argc, argv); }
