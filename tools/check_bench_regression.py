#!/usr/bin/env python3
"""Gate benchmark reports against a checked-in baseline.

Usage:
  check_bench_regression.py BASELINE.json CURRENT.json [--max-regression 0.25]
                            [--update]

Both files are stagger-bench-report-v1 JSON (bench/bench_report.h).  The
check fails when

  * any benchmark present in the baseline regresses by more than
    --max-regression (default 25%) in ns_per_item, or
  * the current report was produced with invariant audits compiled in
    (audit_enabled true) or assertions enabled — those runs measure the
    wrong binary and must never refresh or pass the perf gate.

Benchmarks only present in the current report are listed but do not
fail the check (new benchmarks need a baseline refresh, not a red CI).
With --update, the baseline file is rewritten from the current report
after the sanity checks, preserving nothing but the measured entries.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    if report.get("schema") != "stagger-bench-report-v1":
        sys.exit(f"{path}: not a stagger-bench-report-v1 file")
    return report


def entries(report):
    return {b["name"]: b for b in report.get("benchmarks", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional ns_per_item increase")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current report")
    args = parser.parse_args()

    current = load(args.current)
    if current.get("audit_enabled"):
        sys.exit("FAIL: current report measured with STAGGER_AUDIT compiled "
                 "in; rebuild with the release preset")
    if current.get("assertions_enabled"):
        sys.exit("FAIL: current report measured with assertions enabled; "
                 "rebuild with the release preset")

    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(current, f, indent=2)
            f.write("\n")
        print(f"baseline {args.baseline} updated from {args.current}")
        return

    baseline = load(args.baseline)
    base, cur = entries(baseline), entries(current)

    failures = []
    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            failures.append(f"{name}: missing from current report")
            continue
        allowed = b["ns_per_item"] * (1.0 + args.max_regression)
        ratio = c["ns_per_item"] / b["ns_per_item"] if b["ns_per_item"] else 0
        verdict = "FAIL" if c["ns_per_item"] > allowed else "ok"
        print(f"{verdict:4} {name}: {c['ns_per_item']:.1f} ns/item vs "
              f"baseline {b['ns_per_item']:.1f} ({ratio:+.1%} of baseline)")
        if verdict == "FAIL":
            failures.append(
                f"{name}: {c['ns_per_item']:.1f} ns/item exceeds "
                f"{allowed:.1f} (baseline {b['ns_per_item']:.1f} "
                f"+{args.max_regression:.0%})")

    for name in sorted(set(cur) - set(base)):
        print(f"new  {name}: {cur[name]['ns_per_item']:.1f} ns/item "
              "(no baseline; refresh with --update)")

    if failures:
        print("\nPerformance regression gate failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        sys.exit(1)
    print("\nperf gate passed")


if __name__ == "__main__":
    main()
