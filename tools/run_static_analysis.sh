#!/usr/bin/env bash
# Runs clang-tidy and cppcheck over src/ using the repo's .clang-tidy
# configuration and a CMake-exported compile_commands.json.
#
# Usage:
#   tools/run_static_analysis.sh [build-dir]
#
# Environment:
#   STRICT=1        fail (exit 2) when an analyzer is not installed;
#                   default is to skip missing tools with a notice so the
#                   script stays usable on minimal containers.
#   CLANG_TIDY=...  override the clang-tidy binary.
#   CPPCHECK=...    override the cppcheck binary.
#   JOBS=N          parallelism (default: nproc).

set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
strict="${STRICT:-0}"
jobs="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
status=0

find_tool() {
  # Echoes the first available binary among "$@", or nothing.
  for candidate in "$@"; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      echo "${candidate}"
      return 0
    fi
  done
  return 1
}

missing_tool() {
  local name="$1"
  if [ "${strict}" = "1" ]; then
    echo "error: ${name} not found (STRICT=1)" >&2
    exit 2
  fi
  echo "notice: ${name} not installed; skipping (set STRICT=1 to require it)"
}

# --- compile database ---------------------------------------------------
if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "No compile_commands.json in ${build_dir}; configuring..."
  cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 1
fi

mapfile -t sources < <(find "${repo_root}/src" -name '*.cc' | sort)
echo "Analyzing ${#sources[@]} translation units under src/"

# --- clang-tidy ---------------------------------------------------------
tidy="$(find_tool "${CLANG_TIDY:-clang-tidy}" clang-tidy-19 clang-tidy-18 \
                  clang-tidy-17 clang-tidy-16 clang-tidy-15 || true)"
if [ -n "${tidy}" ]; then
  echo "== ${tidy} (config: .clang-tidy) =="
  runner="$(find_tool run-clang-tidy run-clang-tidy-19 run-clang-tidy-18 \
                      run-clang-tidy-17 run-clang-tidy-16 || true)"
  if [ -n "${runner}" ]; then
    "${runner}" -clang-tidy-binary "${tidy}" -p "${build_dir}" -j "${jobs}" \
        -quiet "${repo_root}/src/.*" || status=1
  else
    "${tidy}" -p "${build_dir}" --quiet "${sources[@]}" || status=1
  fi
else
  missing_tool clang-tidy
fi

# --- cppcheck -----------------------------------------------------------
cppcheck_bin="$(find_tool "${CPPCHECK:-cppcheck}" || true)"
if [ -n "${cppcheck_bin}" ]; then
  echo "== ${cppcheck_bin} =="
  # unusedFunction is off: libraries legitimately export API the binaries
  # in this repo do not call.  missingIncludeSystem quiets stdlib noise.
  "${cppcheck_bin}" \
      --enable=warning,performance,portability \
      --suppress=missingIncludeSystem \
      --inline-suppr \
      --error-exitcode=1 \
      --std=c++20 \
      -j "${jobs}" \
      -I "${repo_root}/src" \
      "${repo_root}/src" || status=1
else
  missing_tool cppcheck
fi

if [ "${status}" -ne 0 ]; then
  echo "Static analysis found issues." >&2
else
  echo "Static analysis clean."
fi
exit "${status}"
