#!/usr/bin/env bash
# Runs the repo's static analyzers:
#   1. stagger_lint  — repo-specific rules (module layering, hot-path
#                      purity, determinism, CHECK hygiene); stdlib-only,
#                      so it always runs — built from source on the spot
#                      if the build tree hasn't produced it yet.
#   2. clang-tidy    — generic bug-pattern checks (.clang-tidy config).
#   3. cppcheck      — portability/performance checks.
#
# Usage:
#   tools/run_static_analysis.sh [build-dir]
#
# Environment:
#   STRICT=1        fail (exit 2) when clang-tidy/cppcheck is not
#                   installed; default is to skip missing tools with a
#                   notice so the script stays usable on minimal
#                   containers.  stagger_lint is never skippable.
#   CLANG_TIDY=...  override the clang-tidy binary.
#   CPPCHECK=...    override the cppcheck binary.
#   JOBS=N          parallelism (default: nproc).

set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
strict="${STRICT:-0}"
jobs="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
status=0

find_tool() {
  # Echoes the first available binary among "$@", or nothing.
  for candidate in "$@"; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      echo "${candidate}"
      return 0
    fi
  done
  return 1
}

missing_tool() {
  local name="$1"
  if [ "${strict}" = "1" ]; then
    echo "error: ${name} not found (STRICT=1)" >&2
    exit 2
  fi
  echo "notice: ${name} not installed; skipping (set STRICT=1 to require it)"
}

# --- compile database ---------------------------------------------------
if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "No compile_commands.json in ${build_dir}; configuring..."
  cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 1
fi

mapfile -t sources < <(find "${repo_root}/src" -name '*.cc' | sort)
echo "Analyzing ${#sources[@]} translation units under src/"

# --- stagger_lint (repo-specific rules) ---------------------------------
# Prefer the binary the build tree already produced; otherwise compile
# it directly — it is standard-library-only by design, so a bare C++
# compiler suffices and this section never needs to be skipped.
lint_bin="${build_dir}/tools/stagger_lint/stagger_lint"
if [ ! -x "${lint_bin}" ]; then
  lint_bin="$(mktemp -d)/stagger_lint"
  echo "Building stagger_lint from source..."
  c++ -std=c++20 -O2 -o "${lint_bin}" "${repo_root}"/tools/stagger_lint/*.cc \
    || exit 2
fi
echo "== stagger_lint =="
"${lint_bin}" --config "${repo_root}/tools/stagger_lint/layering.txt" \
    --root "${repo_root}" src tests bench || status=1

# --- clang-tidy ---------------------------------------------------------
tidy="$(find_tool "${CLANG_TIDY:-clang-tidy}" clang-tidy-19 clang-tidy-18 \
                  clang-tidy-17 clang-tidy-16 clang-tidy-15 || true)"
if [ -n "${tidy}" ]; then
  echo "== ${tidy} (config: .clang-tidy) =="
  runner="$(find_tool run-clang-tidy run-clang-tidy-19 run-clang-tidy-18 \
                      run-clang-tidy-17 run-clang-tidy-16 || true)"
  if [ -n "${runner}" ]; then
    "${runner}" -clang-tidy-binary "${tidy}" -p "${build_dir}" -j "${jobs}" \
        -quiet "${repo_root}/src/.*" || status=1
  else
    "${tidy}" -p "${build_dir}" --quiet "${sources[@]}" || status=1
  fi
else
  missing_tool clang-tidy
fi

# --- cppcheck -----------------------------------------------------------
cppcheck_bin="$(find_tool "${CPPCHECK:-cppcheck}" || true)"
if [ -n "${cppcheck_bin}" ]; then
  echo "== ${cppcheck_bin} =="
  # unusedFunction is off: libraries legitimately export API the binaries
  # in this repo do not call.  missingIncludeSystem quiets stdlib noise.
  "${cppcheck_bin}" \
      --enable=warning,performance,portability \
      --suppress=missingIncludeSystem \
      --inline-suppr \
      --error-exitcode=1 \
      --std=c++20 \
      -j "${jobs}" \
      -I "${repo_root}/src" \
      "${repo_root}/src" || status=1
else
  missing_tool cppcheck
fi

if [ "${status}" -ne 0 ]; then
  echo "Static analysis found issues." >&2
else
  echo "Static analysis clean."
fi
exit "${status}"
