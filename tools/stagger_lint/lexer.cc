#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace stagger_lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators, longest first so maximal munch works.
/// Only the ones the rules care to see as single tokens are listed;
/// everything else falls through to one-character puncts.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->", "::",
};

struct Cursor {
  const std::string& s;
  size_t i = 0;
  int line = 1;

  bool done() const { return i >= s.size(); }
  char peek(size_t off = 0) const {
    return i + off < s.size() ? s[i + off] : '\0';
  }
  char next() {
    char c = s[i++];
    if (c == '\n') ++line;
    return c;
  }
};

/// Parses the tail of a `stagger-lint:` comment.  Grammar:
///   stagger-lint: allow(<rule>) -- <non-empty reason>
void ParseSuppression(const std::string& body, int line, LexedFile* out) {
  const auto fail = [&](const std::string& detail) {
    out->bad_suppressions.push_back({detail, line});
  };
  size_t p = body.find("stagger-lint:");
  p += std::string("stagger-lint:").size();
  while (p < body.size() && body[p] == ' ') ++p;
  if (body.compare(p, 6, "allow(") != 0) {
    fail("expected `allow(<rule>)` after `stagger-lint:`");
    return;
  }
  p += 6;
  const size_t close = body.find(')', p);
  if (close == std::string::npos) {
    fail("unterminated `allow(`");
    return;
  }
  const std::string rule = body.substr(p, close - p);
  if (rule.empty() ||
      rule.find_first_not_of(
          "abcdefghijklmnopqrstuvwxyz-") != std::string::npos) {
    fail("bad rule name `" + rule + "` (lowercase-with-dashes expected)");
    return;
  }
  size_t q = close + 1;
  while (q < body.size() && body[q] == ' ') ++q;
  if (body.compare(q, 2, "--") != 0) {
    fail("missing ` -- <reason>` after allow(" + rule + ")");
    return;
  }
  q += 2;
  while (q < body.size() && body[q] == ' ') ++q;
  if (q >= body.size()) {
    fail("empty reason after ` -- ` for allow(" + rule + ")");
    return;
  }
  out->suppressions.push_back({rule, line, false});
}

void HandleComment(const std::string& body, int line, LexedFile* out) {
  if (body.find("stagger-lint:") != std::string::npos) {
    ParseSuppression(body, line, out);
  }
}

}  // namespace

LexedFile Lex(const std::string& source) {
  LexedFile out;
  Cursor c{source};

  while (!c.done()) {
    const char ch = c.peek();

    // Whitespace.
    if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n' || ch == '\v' ||
        ch == '\f') {
      c.next();
      continue;
    }

    // Line comment.
    if (ch == '/' && c.peek(1) == '/') {
      const int line = c.line;
      std::string body;
      while (!c.done() && c.peek() != '\n') body.push_back(c.next());
      HandleComment(body, line, &out);
      continue;
    }

    // Block comment.
    if (ch == '/' && c.peek(1) == '*') {
      const int line = c.line;
      std::string body;
      c.next();
      c.next();
      while (!c.done() && !(c.peek() == '*' && c.peek(1) == '/')) {
        body.push_back(c.next());
      }
      if (!c.done()) {
        c.next();
        c.next();
      }
      HandleComment(body, line, &out);
      continue;
    }

    // Preprocessor directive: record #include, otherwise skip the whole
    // logical line (so macro *definitions* never trip the rules), minding
    // backslash continuations.
    if (ch == '#') {
      const int line = c.line;
      std::string text;
      while (!c.done()) {
        if (c.peek() == '\\' && (c.peek(1) == '\n' ||
                                 (c.peek(1) == '\r' && c.peek(2) == '\n'))) {
          c.next();  // backslash
          while (!c.done() && c.peek() != '\n') c.next();
          if (!c.done()) c.next();  // newline: continue the logical line
          continue;
        }
        if (c.peek() == '\n') break;
        // Comments end a directive's interesting part but may hide a
        // suppression; let the main loop see them by stopping early
        // only for line comments (block comments inside directives are
        // vanishingly rare in this tree).
        if (c.peek() == '/' && c.peek(1) == '/') break;
        text.push_back(c.next());
      }
      // Extract `#include "..."` / `#include <...>`.
      size_t p = text.find_first_not_of(" \t", 1);
      if (p != std::string::npos && text.compare(p, 7, "include") == 0) {
        p = text.find_first_not_of(" \t", p + 7);
        if (p != std::string::npos && (text[p] == '"' || text[p] == '<')) {
          const char open = text[p];
          const char close_ch = open == '"' ? '"' : '>';
          const size_t end = text.find(close_ch, p + 1);
          if (end != std::string::npos) {
            out.includes.push_back(
                {text.substr(p + 1, end - p - 1), open == '<', line});
          }
        }
      }
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (ch == 'R' && c.peek(1) == '"') {
      const int line = c.line;
      c.next();
      c.next();
      std::string delim;
      while (!c.done() && c.peek() != '(') delim.push_back(c.next());
      if (!c.done()) c.next();  // '('
      const std::string terminator = ")" + delim + "\"";
      std::string body;
      while (!c.done()) {
        if (source.compare(c.i, terminator.size(), terminator) == 0) {
          for (size_t k = 0; k < terminator.size(); ++k) c.next();
          break;
        }
        body.push_back(c.next());
      }
      out.tokens.push_back({TokenKind::kString, body, line});
      continue;
    }

    // String / char literal.
    if (ch == '"' || ch == '\'') {
      const int line = c.line;
      const char quote = c.next();
      std::string body;
      while (!c.done() && c.peek() != quote) {
        if (c.peek() == '\\') body.push_back(c.next());
        if (!c.done()) body.push_back(c.next());
      }
      if (!c.done()) c.next();  // closing quote
      out.tokens.push_back({TokenKind::kString, body, line});
      continue;
    }

    // Identifier / keyword.
    if (IsIdentStart(ch)) {
      const int line = c.line;
      std::string text;
      while (!c.done() && IsIdentChar(c.peek())) text.push_back(c.next());
      out.tokens.push_back({TokenKind::kIdentifier, text, line});
      continue;
    }

    // Number (the rules never look inside; consume greedily including
    // exponent signs and digit separators).
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      const int line = c.line;
      std::string text;
      while (!c.done()) {
        const char d = c.peek();
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          text.push_back(c.next());
        } else if ((d == '+' || d == '-') && !text.empty() &&
                   (text.back() == 'e' || text.back() == 'E' ||
                    text.back() == 'p' || text.back() == 'P')) {
          text.push_back(c.next());
        } else {
          break;
        }
      }
      out.tokens.push_back({TokenKind::kNumber, text, line});
      continue;
    }

    // Punctuation, longest match first.
    {
      const int line = c.line;
      std::string matched;
      for (const char* p : kPuncts) {
        const size_t len = std::char_traits<char>::length(p);
        if (source.compare(c.i, len, p) == 0) {
          matched = p;
          break;
        }
      }
      if (matched.empty()) matched = std::string(1, ch);
      for (size_t k = 0; k < matched.size(); ++k) c.next();
      out.tokens.push_back({TokenKind::kPunct, matched, line});
    }
  }
  return out;
}

}  // namespace stagger_lint
