// Rule implementations for stagger_lint.  Every rule is a token-stream
// scan over the lexer's output; the cross-file state (which names are
// unordered containers, std::function members, or virtual methods) is
// gathered in a first pass over the whole tree so per-file checks can
// flag, e.g., iteration over an unordered member declared in a header.

#ifndef STAGGER_LINT_RULES_H_
#define STAGGER_LINT_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "config.h"
#include "lexer.h"

namespace stagger_lint {

struct Diagnostic {
  std::string file;  // display path, relative to the lint root
  int line;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
};

/// Names of every rule a suppression may reference.
const std::set<std::string>& KnownRules();

/// Cross-file symbol knowledge, built before any rule runs.
struct SymbolTable {
  /// Variables/members declared as std::unordered_{map,set,multi*}.
  std::set<std::string> unordered_names;
  /// Variables/members declared as std::function<...>.
  std::set<std::string> function_names;
  /// Methods declared `virtual`.
  std::set<std::string> virtual_names;
};

void CollectSymbols(const LexedFile& file, SymbolTable* table);

/// Per-file rule scoping, derived from the file's path by the driver.
struct FileContext {
  std::string display_path;
  /// Module name when the file lives under src/<module>/, else empty.
  std::string module;
  /// False for tests/bench/examples: they may include any module.
  bool layering_checked = false;
  /// True when the file lies under a `deterministic-root`.
  bool deterministic = false;
};

/// Runs every applicable rule over one lexed file, appending raw
/// (pre-suppression) diagnostics.
void CheckFile(const FileContext& ctx, const LexedFile& lexed,
               const Config& config, const SymbolTable& symbols,
               std::vector<Diagnostic>* diags);

}  // namespace stagger_lint

#endif  // STAGGER_LINT_RULES_H_
