// Lightweight C++ lexer for stagger_lint.  Deliberately not a full
// front end: it tokenizes one file at a time, skips preprocessor
// directives (recording #include targets), strips comments (recording
// `// stagger-lint: allow(<rule>) -- reason` suppressions), and handles
// string/char/raw-string literals so rule scans never fire inside
// literal text.  No libclang, no external dependencies — the tool must
// build anywhere the repo builds.

#ifndef STAGGER_LINT_LEXER_H_
#define STAGGER_LINT_LEXER_H_

#include <string>
#include <vector>

namespace stagger_lint {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords (new, for, virtual, ...)
  kNumber,
  kString,      // string or char literal (text excludes quotes)
  kPunct,       // operators and punctuation, longest-match (e.g. "->*")
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
};

/// One `#include` directive.
struct Include {
  std::string path;  // between the quotes / angle brackets
  bool angled;       // <...> rather than "..."
  int line;
};

/// One `// stagger-lint: allow(<rule>) -- reason` comment.
struct Suppression {
  std::string rule;
  int line;        // line the comment sits on
  bool used = false;
};

/// A stagger-lint comment that does not parse (missing rule, missing
/// `-- reason`, ...).
struct BadSuppression {
  std::string detail;
  int line;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Include> includes;
  std::vector<Suppression> suppressions;
  std::vector<BadSuppression> bad_suppressions;
};

/// Tokenizes `source`.  Never fails: unrecognized bytes become
/// single-character punct tokens.
LexedFile Lex(const std::string& source);

}  // namespace stagger_lint

#endif  // STAGGER_LINT_LEXER_H_
