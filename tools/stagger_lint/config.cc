#include "config.h"

#include <fstream>
#include <sstream>

namespace stagger_lint {
namespace {

/// Splits on runs of spaces/tabs.
std::vector<std::string> Fields(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string field;
  while (in >> field) out.push_back(field);
  return out;
}

}  // namespace

bool LoadConfig(const std::string& path, Config* config, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open config file: " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::vector<std::string> fields = Fields(line);
    if (fields.empty()) continue;
    const std::string& directive = fields[0];

    if (directive == "module") {
      // module <name>: [dep...]   (the ':' may stick to the name)
      if (fields.size() < 2) {
        *error = path + ":" + std::to_string(lineno) + ": module needs a name";
        return false;
      }
      std::string name = fields[1];
      if (!name.empty() && name.back() == ':') name.pop_back();
      if (name.empty()) {
        *error = path + ":" + std::to_string(lineno) + ": empty module name";
        return false;
      }
      if (config->allowed_deps.count(name)) {
        *error = path + ":" + std::to_string(lineno) + ": module `" + name +
                 "` declared twice";
        return false;
      }
      std::set<std::string> deps(fields.begin() + 2, fields.end());
      deps.erase(":");
      config->allowed_deps.emplace(name, std::move(deps));
      config->module_order.push_back(name);
    } else if (directive == "hotpath-allow-dispatch") {
      for (size_t i = 1; i < fields.size(); ++i) {
        config->dispatch_whitelist.insert(fields[i]);
      }
    } else if (directive == "deterministic-root") {
      for (size_t i = 1; i < fields.size(); ++i) {
        config->deterministic_roots.push_back(fields[i]);
      }
    } else if (directive == "layering-exempt") {
      for (size_t i = 1; i < fields.size(); ++i) {
        config->layering_exempt.push_back(fields[i]);
      }
    } else {
      *error = path + ":" + std::to_string(lineno) + ": unknown directive `" +
               directive + "`";
      return false;
    }
  }
  // Every declared dependency must itself be a declared module, and may
  // not form a cycle: deps must appear strictly earlier in declaration
  // order (the file *is* the topological order of the DAG).
  std::set<std::string> seen;
  for (const std::string& name : config->module_order) {
    for (const std::string& dep : config->allowed_deps[name]) {
      if (!config->allowed_deps.count(dep)) {
        *error = path + ": module `" + name + "` depends on undeclared `" +
                 dep + "`";
        return false;
      }
      if (!seen.count(dep)) {
        *error = path + ": module `" + name + "` depends on `" + dep +
                 "`, which is declared later — not a layering order";
        return false;
      }
    }
    seen.insert(name);
  }
  return true;
}

}  // namespace stagger_lint
