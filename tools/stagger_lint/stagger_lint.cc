// stagger_lint: repo-specific static analysis for the staggered-striping
// codebase.  Enforces, as compile-gating diagnostics:
//
//   * layering                 — the module include DAG in layering.txt
//   * hot-path-{alloc,lock,io,dispatch}
//                              — purity of STAGGER_HOT_PATH functions
//   * determinism-{random,wallclock,unordered-iter,pointer-key}
//                              — bit-identical replay guarantees
//   * check-side-effect        — side effects inside STAGGER_CHECK args
//
// Per-line suppressions (same line or the line above the finding):
//   // stagger-lint: allow(<rule>) -- reason
// A suppression without a reason, naming an unknown rule, or matching
// nothing is itself an error, so the suppression inventory stays honest.
//
// Usage:
//   stagger_lint --config tools/stagger_lint/layering.txt
//                [--root <dir>] [--expect <golden>] <paths...>
//
// Paths are files or directories (searched for *.h / *.cc / *.cpp),
// relative to --root.  Anything under a `lint/fixtures` directory is
// skipped: fixtures violate the rules on purpose and are linted by the
// fixture tests through --expect, which compares the emitted
// diagnostics against a golden file instead of gating on them.
//
// No dependencies beyond the C++ standard library — this must build and
// run on minimal containers and in CI alike.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "config.h"
#include "lexer.h"
#include "rules.h"

namespace stagger_lint {
namespace {

namespace fs = std::filesystem;

struct SourceFile {
  fs::path full_path;
  std::string display_path;  // relative to root, '/'-separated
  LexedFile lexed;
};

bool IsSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool IsFixturePath(const std::string& display_path) {
  return display_path.find("lint/fixtures/") != std::string::npos;
}

std::string ToDisplay(const fs::path& full, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(full, root, ec);
  std::string s = (ec || rel.empty()) ? full.string() : rel.string();
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

FileContext ContextFor(const std::string& display_path,
                       const Config& config) {
  FileContext ctx;
  ctx.display_path = display_path;
  if (StartsWith(display_path, "src/")) {
    const size_t second = display_path.find('/', 4);
    if (second != std::string::npos) {
      ctx.module = display_path.substr(4, second - 4);
      ctx.layering_checked = true;
    }
  }
  for (const std::string& prefix : config.layering_exempt) {
    if (StartsWith(display_path, prefix)) ctx.layering_checked = false;
  }
  for (const std::string& prefix : config.deterministic_roots) {
    if (StartsWith(display_path, prefix)) ctx.deterministic = true;
  }
  return ctx;
}

int Usage() {
  std::cerr
      << "usage: stagger_lint --config <layering.txt> [--root <dir>]\n"
         "                    [--expect <golden>] <paths...>\n";
  return 2;
}

}  // namespace

int Run(int argc, char** argv) {
  std::string config_path;
  std::string root_str = ".";
  std::string expect_path;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      root_str = argv[++i];
    } else if (arg == "--expect" && i + 1 < argc) {
      expect_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return Usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (config_path.empty() || inputs.empty()) return Usage();

  const fs::path root = fs::absolute(root_str).lexically_normal();

  Config config;
  std::string error;
  if (!LoadConfig(config_path, &config, &error)) {
    std::cerr << "stagger_lint: " << error << "\n";
    return 2;
  }

  // --- gather files -----------------------------------------------------
  std::vector<fs::path> paths;
  for (const std::string& input : inputs) {
    fs::path p = fs::path(input).is_absolute() ? fs::path(input)
                                               : root / input;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (!ec && it->is_regular_file() && IsSourceExtension(it->path())) {
          paths.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      paths.push_back(p);
    } else {
      std::cerr << "stagger_lint: no such file or directory: " << p.string()
                << "\n";
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<SourceFile> files;
  for (const fs::path& p : paths) {
    std::string display = ToDisplay(p, root);
    if (IsFixturePath(display)) continue;
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "stagger_lint: cannot read " << p.string() << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    files.push_back({p, std::move(display), Lex(buf.str())});
  }

  // --- pass 1: cross-file symbols ---------------------------------------
  SymbolTable symbols;
  for (const SourceFile& f : files) CollectSymbols(f.lexed, &symbols);

  // --- pass 2: rules ----------------------------------------------------
  std::vector<Diagnostic> raw;
  for (const SourceFile& f : files) {
    CheckFile(ContextFor(f.display_path, config), f.lexed, config, symbols,
              &raw);
  }

  // --- suppressions -----------------------------------------------------
  // A suppression covers findings of its rule on its own line and the
  // line directly below (so it can sit above the flagged statement).
  std::vector<Diagnostic> final_diags;
  std::map<std::string, std::vector<Suppression>> suppressions;
  for (SourceFile& f : files) {
    suppressions[f.display_path] = f.lexed.suppressions;
    for (const BadSuppression& bad : f.lexed.bad_suppressions) {
      final_diags.push_back({f.display_path, bad.line, "suppression-syntax",
                             bad.detail});
    }
  }
  for (auto& [file, list] : suppressions) {
    for (Suppression& s : list) {
      if (!KnownRules().count(s.rule)) {
        final_diags.push_back(
            {file, s.line, "suppression-syntax",
             "allow(" + s.rule + ") names no known rule"});
        s.used = true;  // don't double-report as unused
      }
    }
  }
  for (const Diagnostic& d : raw) {
    bool suppressed = false;
    auto it = suppressions.find(d.file);
    if (it != suppressions.end()) {
      for (Suppression& s : it->second) {
        if (s.rule == d.rule && (s.line == d.line || s.line == d.line - 1)) {
          s.used = true;
          suppressed = true;
        }
      }
    }
    if (!suppressed) final_diags.push_back(d);
  }
  for (const auto& [file, list] : suppressions) {
    for (const Suppression& s : list) {
      if (!s.used) {
        final_diags.push_back(
            {file, s.line, "unused-suppression",
             "allow(" + s.rule + ") matches no finding; remove it"});
      }
    }
  }

  std::sort(final_diags.begin(), final_diags.end());
  final_diags.erase(std::unique(final_diags.begin(), final_diags.end(),
                                [](const Diagnostic& a, const Diagnostic& b) {
                                  return !(a < b) && !(b < a);
                                }),
                    final_diags.end());

  // --- report -----------------------------------------------------------
  std::ostringstream report;
  for (const Diagnostic& d : final_diags) {
    report << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message
           << "\n";
  }

  if (!expect_path.empty()) {
    std::ifstream golden(expect_path);
    if (!golden) {
      std::cerr << "stagger_lint: cannot read golden file " << expect_path
                << "\n";
      return 2;
    }
    std::ostringstream want;
    want << golden.rdbuf();
    if (want.str() == report.str()) {
      std::cout << "stagger_lint: diagnostics match " << expect_path << " ("
                << final_diags.size() << " expected findings)\n";
      return 0;
    }
    std::cerr << "stagger_lint: diagnostics differ from " << expect_path
              << "\n--- expected ---\n"
              << want.str() << "--- actual ---\n"
              << report.str();
    return 1;
  }

  std::cout << report.str();
  if (final_diags.empty()) {
    std::cout << "stagger_lint: clean (" << files.size() << " files)\n";
    return 0;
  }
  std::cerr << "stagger_lint: " << final_diags.size() << " finding(s) in "
            << files.size() << " files\n";
  return 1;
}

}  // namespace stagger_lint

int main(int argc, char** argv) { return stagger_lint::Run(argc, argv); }
