#include "rules.h"

#include <cstddef>

namespace stagger_lint {
namespace {

bool Contains(const std::set<std::string>& set, const std::string& key) {
  return set.count(key) > 0;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}
bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

// --- token-walk helpers -------------------------------------------------

/// Index just past the `>` matching the `<` at `open` (tokens[open] must
/// be "<").  Treats ">>" as two closes.  Returns open + 1 when
/// unmatched (never loops forever).
size_t SkipTemplateArgs(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "<") ++depth;
    if (t.text == "<<") depth += 2;  // never valid in a type, but safe
    if (t.text == ">") --depth;
    if (t.text == ">>") depth -= 2;
    // Angle brackets cannot straddle these in a type position; bail so a
    // stray comparison operator cannot swallow the rest of the file.
    if (t.text == ";" || t.text == "{" || t.text == "}") return open + 1;
    if (depth <= 0) return i + 1;
  }
  return open + 1;
}

/// Index of the `)` matching the `(` at `open`, or tokens.size().
size_t MatchParen(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i;
  }
  return toks.size();
}

/// Index of the `}` matching the `{` at `open`, or tokens.size().
size_t MatchBrace(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}" && --depth == 0) return i;
  }
  return toks.size();
}

// --- rule vocabularies --------------------------------------------------

const std::set<std::string>& UnorderedTypes() {
  static const std::set<std::string> kSet = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kSet;
}

const std::set<std::string>& OrderedPointerKeyTypes() {
  static const std::set<std::string> kSet = {"map", "set", "multimap",
                                             "multiset"};
  return kSet;
}

const std::set<std::string>& RandomBanned() {
  static const std::set<std::string> kSet = {"rand",    "srand",  "rand_r",
                                             "drand48", "lrand48",
                                             "random_device"};
  return kSet;
}

const std::set<std::string>& WallClockBanned() {
  static const std::set<std::string> kSet = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "localtime",
      "gmtime",       "strftime"};
  return kSet;
}

const std::set<std::string>& AllocCalls() {
  static const std::set<std::string> kSet = {"make_unique", "make_shared",
                                             "malloc", "calloc", "realloc",
                                             "strdup"};
  return kSet;
}

const std::set<std::string>& GrowingMemberCalls() {
  static const std::set<std::string> kSet = {
      "push_back", "emplace_back", "push_front", "emplace_front",
      "emplace",   "resize",       "reserve",    "insert",
      "append",    "assign"};
  return kSet;
}

const std::set<std::string>& LockTypes() {
  static const std::set<std::string> kSet = {
      "mutex",       "recursive_mutex", "shared_mutex",       "timed_mutex",
      "lock_guard",  "unique_lock",     "scoped_lock",        "shared_lock",
      "Mutex",       "MutexLock",       "condition_variable"};
  return kSet;
}

const std::set<std::string>& LockMemberCalls() {
  static const std::set<std::string> kSet = {"lock", "unlock", "try_lock"};
  return kSet;
}

const std::set<std::string>& IoNames() {
  static const std::set<std::string> kSet = {
      "cout",     "cerr",     "clog",   "cin",    "printf", "fprintf",
      "vfprintf", "puts",     "fputs",  "putchar", "fopen",  "fclose",
      "fread",    "fwrite",   "fflush", "getline", "ofstream",
      "ifstream", "fstream",  "STAGGER_LOG"};
  return kSet;
}

const std::set<std::string>& CheckMacros() {
  // STAGGER_CHECK_OK is excluded: it expands its argument exactly once
  // into a local, so side effects there are well-defined.
  static const std::set<std::string> kSet = {
      "STAGGER_CHECK",    "STAGGER_CHECK_EQ", "STAGGER_CHECK_NE",
      "STAGGER_CHECK_LT", "STAGGER_CHECK_LE", "STAGGER_CHECK_GT",
      "STAGGER_CHECK_GE", "STAGGER_DCHECK",   "STAGGER_DCHECK_EQ",
      "STAGGER_DCHECK_NE", "STAGGER_DCHECK_LT", "STAGGER_DCHECK_LE",
      "STAGGER_DCHECK_GT", "STAGGER_DCHECK_GE", "STAGGER_AUDIT_VERIFY",
      "STAGGER_UNREACHABLE"};
  return kSet;
}

const std::set<std::string>& SideEffectOps() {
  static const std::set<std::string> kSet = {"++", "--", "=",  "+=", "-=",
                                             "*=", "/=", "%=", "&=", "|=",
                                             "^=", "<<=", ">>="};
  return kSet;
}

}  // namespace

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kSet = {
      "layering",
      "hot-path-alloc",
      "hot-path-lock",
      "hot-path-io",
      "hot-path-dispatch",
      "determinism-random",
      "determinism-wallclock",
      "determinism-unordered-iter",
      "determinism-pointer-key",
      "check-side-effect",
  };
  return kSet;
}

void CollectSymbols(const LexedFile& file, SymbolTable* table) {
  const std::vector<Token>& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;

    // `unordered_map<...> name` / `function<...> name` — the declared
    // name is the identifier right after the closing angle bracket.
    if ((Contains(UnorderedTypes(), t.text) || t.text == "function") &&
        i + 1 < toks.size() && IsPunct(toks[i + 1], "<")) {
      const size_t after = SkipTemplateArgs(toks, i + 1);
      if (after < toks.size() &&
          toks[after].kind == TokenKind::kIdentifier) {
        if (t.text == "function") {
          table->function_names.insert(toks[after].text);
        } else {
          table->unordered_names.insert(toks[after].text);
        }
      }
      continue;
    }

    // `virtual <ret> Name(...)` — record Name, the identifier directly
    // before the parameter list's `(`.
    if (t.text == "virtual") {
      std::string last_ident;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        const Token& u = toks[j];
        if (u.kind == TokenKind::kIdentifier) {
          last_ident = u.text;
        } else if (IsPunct(u, "(")) {
          if (!last_ident.empty()) table->virtual_names.insert(last_ident);
          break;
        } else if (IsPunct(u, ";") || IsPunct(u, "{") || IsPunct(u, "}")) {
          break;
        }
      }
    }
  }
}

namespace {

// --- layering -----------------------------------------------------------

void CheckLayering(const FileContext& ctx, const LexedFile& lexed,
                   const Config& config, std::vector<Diagnostic>* diags) {
  if (!ctx.layering_checked || ctx.module.empty()) return;
  const auto it = config.allowed_deps.find(ctx.module);
  for (const Include& inc : lexed.includes) {
    if (inc.angled) continue;
    const size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;  // not a module-form include
    const std::string target = inc.path.substr(0, slash);
    if (target == ctx.module) continue;
    if (!config.allowed_deps.count(target)) continue;  // not a module
    if (it == config.allowed_deps.end()) {
      diags->push_back({ctx.display_path, inc.line, "layering",
                        "module `" + ctx.module +
                            "` is not declared in the layering config but "
                            "includes \"" +
                            inc.path + "\""});
      continue;
    }
    if (!it->second.count(target)) {
      diags->push_back(
          {ctx.display_path, inc.line, "layering",
           "back-edge include: module `" + ctx.module +
               "` may not depend on `" + target + "` (\"" + inc.path +
               "\")"});
    }
  }
}

// --- determinism --------------------------------------------------------

void CheckDeterminism(const FileContext& ctx, const LexedFile& lexed,
                      const SymbolTable& symbols,
                      std::vector<Diagnostic>* diags) {
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];

    // Pointer-keyed ordered containers: banned everywhere (iteration
    // order is address order — nondeterministic across runs).
    if (t.kind == TokenKind::kIdentifier &&
        Contains(OrderedPointerKeyTypes(), t.text) && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "<")) {
      const size_t end = SkipTemplateArgs(toks, i + 1);
      // First template argument: up to the first top-level comma.
      int depth = 0;
      bool pointer_key = false;
      for (size_t j = i + 1; j < end; ++j) {
        const Token& u = toks[j];
        if (u.kind != TokenKind::kPunct) continue;
        if (u.text == "<") ++depth;
        if (u.text == ">") --depth;
        if (u.text == ">>") depth -= 2;
        if (u.text == "," && depth == 1) break;
        if (u.text == "*") pointer_key = true;
      }
      if (pointer_key) {
        diags->push_back(
            {ctx.display_path, t.line, "determinism-pointer-key",
             "`std::" + t.text +
                 "` keyed by a pointer orders elements by address; key by "
                 "a stable id instead"});
      }
    }

    if (!ctx.deterministic) continue;

    if (t.kind == TokenKind::kIdentifier &&
        Contains(RandomBanned(), t.text)) {
      diags->push_back({ctx.display_path, t.line, "determinism-random",
                        "`" + t.text +
                            "` is ambient randomness; draw from the "
                            "experiment's seeded Random (util/rng.h)"});
      continue;
    }
    if (t.kind == TokenKind::kIdentifier &&
        (Contains(WallClockBanned(), t.text) ||
         (t.text == "time" && i + 1 < toks.size() &&
          IsPunct(toks[i + 1], "(")))) {
      diags->push_back({ctx.display_path, t.line, "determinism-wallclock",
                        "`" + t.text +
                            "` reads the wall clock; simulated time comes "
                            "from the Simulator (sim/simulator.h)"});
      continue;
    }

    // Range-for over a name declared as an unordered container.
    if (IsIdent(t, "for") && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "(")) {
      const size_t close = MatchParen(toks, i + 1);
      // Locate the range-for `:` at parenthesis depth 1 (a `;` first
      // means a classic for loop).
      size_t colon = 0;
      int depth = 0;
      int bracket = 0;
      for (size_t j = i + 1; j < close && colon == 0; ++j) {
        const Token& u = toks[j];
        if (u.kind != TokenKind::kPunct) continue;
        if (u.text == "(") ++depth;
        if (u.text == ")") --depth;
        if (u.text == "[") ++bracket;
        if (u.text == "]") --bracket;
        if (u.text == ";" && depth == 1) break;
        if (u.text == ":" && depth == 1 && bracket == 0) colon = j;
      }
      if (colon != 0) {
        std::string last_ident;
        for (size_t j = colon + 1; j < close; ++j) {
          if (toks[j].kind == TokenKind::kIdentifier) last_ident = toks[j].text;
        }
        if (!last_ident.empty() &&
            Contains(symbols.unordered_names, last_ident)) {
          diags->push_back(
              {ctx.display_path, t.line, "determinism-unordered-iter",
               "iteration over unordered container `" + last_ident +
                   "` has hash-order, not deterministic order; iterate a "
                   "sorted view or switch the container"});
        }
      }
    }
  }
}

// --- hot-path purity ----------------------------------------------------

void CheckHotPathBody(const FileContext& ctx, const std::vector<Token>& toks,
                      size_t begin, size_t end, const std::string& fn_name,
                      const Config& config, const SymbolTable& symbols,
                      std::vector<Diagnostic>* diags) {
  const std::string suffix = " in STAGGER_HOT_PATH function `" + fn_name + "`";
  for (size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    const bool member_call =
        i > begin && i + 1 < end &&
        (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->")) &&
        IsPunct(toks[i + 1], "(");

    if (t.kind == TokenKind::kIdentifier) {
      // Heap allocation.
      if (t.text == "new") {
        diags->push_back({ctx.display_path, t.line, "hot-path-alloc",
                          "`new` allocates" + suffix});
        continue;
      }
      if (Contains(AllocCalls(), t.text) && i + 1 < end &&
          (IsPunct(toks[i + 1], "(") || IsPunct(toks[i + 1], "<"))) {
        diags->push_back({ctx.display_path, t.line, "hot-path-alloc",
                          "`" + t.text + "` allocates" + suffix});
        continue;
      }
      if (member_call && Contains(GrowingMemberCalls(), t.text)) {
        diags->push_back({ctx.display_path, t.line, "hot-path-alloc",
                          "`." + t.text +
                              "()` may grow a container" + suffix});
        continue;
      }
      // Locks.
      if (Contains(LockTypes(), t.text)) {
        diags->push_back({ctx.display_path, t.line, "hot-path-lock",
                          "`" + t.text + "` takes a lock" + suffix});
        continue;
      }
      if (member_call && Contains(LockMemberCalls(), t.text)) {
        diags->push_back({ctx.display_path, t.line, "hot-path-lock",
                          "`." + t.text + "()` takes a lock" + suffix});
        continue;
      }
      // I/O.
      if (Contains(IoNames(), t.text)) {
        diags->push_back({ctx.display_path, t.line, "hot-path-io",
                          "`" + t.text + "` performs I/O" + suffix});
        continue;
      }
      // Indirect dispatch.
      if (t.text == "dynamic_cast") {
        diags->push_back({ctx.display_path, t.line, "hot-path-dispatch",
                          "`dynamic_cast` walks the vtable" + suffix});
        continue;
      }
      if (i + 1 < end && IsPunct(toks[i + 1], "(") &&
          !Contains(config.dispatch_whitelist, t.text)) {
        if (Contains(symbols.function_names, t.text)) {
          diags->push_back(
              {ctx.display_path, t.line, "hot-path-dispatch",
               "call through std::function `" + t.text +
                   "` is indirect dispatch" + suffix +
                   "; whitelist it in layering.txt if it is a sanctioned "
                   "interface"});
          continue;
        }
        if (Contains(symbols.virtual_names, t.text)) {
          diags->push_back(
              {ctx.display_path, t.line, "hot-path-dispatch",
               "call of virtual method `" + t.text + "`" + suffix +
                   "; whitelist it in layering.txt if it is a sanctioned "
                   "interface"});
          continue;
        }
      }
    }
    if (t.kind == TokenKind::kPunct &&
        (t.text == "->*" ||
         (t.text == "." && i + 1 < end && IsPunct(toks[i + 1], "*")))) {
      diags->push_back({ctx.display_path, t.line, "hot-path-dispatch",
                        "pointer-to-member call is indirect dispatch" +
                            suffix});
    }
  }
}

void CheckHotPaths(const FileContext& ctx, const LexedFile& lexed,
                   const Config& config, const SymbolTable& symbols,
                   std::vector<Diagnostic>* diags) {
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "STAGGER_HOT_PATH")) continue;
    // Find the function name (last identifier before the parameter
    // list) and the body's opening brace.  A `;` first means this is a
    // pure declaration: the definition elsewhere carries its own tag.
    std::string fn_name = "?";
    size_t body_open = 0;
    for (size_t j = i + 1; j < toks.size(); ++j) {
      const Token& u = toks[j];
      if (u.kind == TokenKind::kIdentifier) {
        if (j + 1 < toks.size() && IsPunct(toks[j + 1], "(") &&
            fn_name == "?") {
          fn_name = u.text;
        }
        continue;
      }
      if (IsPunct(u, "(")) {
        j = MatchParen(toks, j);
        continue;
      }
      if (IsPunct(u, ";")) break;
      if (IsPunct(u, "{")) {
        body_open = j;
        break;
      }
    }
    if (body_open == 0) continue;
    const size_t body_close = MatchBrace(toks, body_open);
    CheckHotPathBody(ctx, toks, body_open + 1, body_close, fn_name, config,
                     symbols, diags);
    i = body_open;  // bodies of nested tags (none in practice) re-scan
  }
}

// --- CHECK-macro side effects -------------------------------------------

void CheckCheckMacros(const FileContext& ctx, const LexedFile& lexed,
                      std::vector<Diagnostic>* diags) {
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        !Contains(CheckMacros(), toks[i].text)) {
      continue;
    }
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;
    const size_t close = MatchParen(toks, i + 1);
    for (size_t j = i + 2; j < close; ++j) {
      const Token& u = toks[j];
      if (u.kind != TokenKind::kPunct ||
          !Contains(SideEffectOps(), u.text)) {
        continue;
      }
      // `[=]` is a lambda capture default, not an assignment.
      if (u.text == "=" && j > 0 && IsPunct(toks[j - 1], "[")) continue;
      diags->push_back(
          {ctx.display_path, u.line, "check-side-effect",
           "side effect `" + u.text + "` inside " + toks[i].text +
               " argument; checks may be compiled out or evaluate their "
               "operands twice"});
    }
    i = close;
  }
}

}  // namespace

void CheckFile(const FileContext& ctx, const LexedFile& lexed,
               const Config& config, const SymbolTable& symbols,
               std::vector<Diagnostic>* diags) {
  CheckLayering(ctx, lexed, config, diags);
  CheckDeterminism(ctx, lexed, symbols, diags);
  CheckHotPaths(ctx, lexed, config, symbols, diags);
  CheckCheckMacros(ctx, lexed, diags);
}

}  // namespace stagger_lint
