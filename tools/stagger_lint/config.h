// Configuration for stagger_lint: the checked-in module layering DAG
// plus rule scoping knobs, parsed from tools/stagger_lint/layering.txt
// (or a fixture's own copy).

#ifndef STAGGER_LINT_CONFIG_H_
#define STAGGER_LINT_CONFIG_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace stagger_lint {

struct Config {
  /// module name -> modules it may include from (its own name is always
  /// implicitly allowed).  Declaration order is the layer order used in
  /// diagnostics.
  std::map<std::string, std::set<std::string>> allowed_deps;
  std::vector<std::string> module_order;

  /// Callback interfaces a STAGGER_HOT_PATH body may invoke even though
  /// they dispatch indirectly (std::function members, virtual methods).
  std::set<std::string> dispatch_whitelist;

  /// Path prefixes (relative to the lint root, '/'-separated) whose
  /// translation units must be deterministic: no wall clocks, no
  /// ambient randomness, no unordered-container iteration.
  std::vector<std::string> deterministic_roots;

  /// Path prefixes exempt from the layering rule (tests, benches, and
  /// examples may include any module).
  std::vector<std::string> layering_exempt;
};

/// Parses `path`.  On success fills `config` and returns true; on
/// failure writes a message to `error` and returns false.
bool LoadConfig(const std::string& path, Config* config, std::string* error);

}  // namespace stagger_lint

#endif  // STAGGER_LINT_CONFIG_H_
