# Empty dependencies file for bench_table4_improvement.
# This may be replaced when dependencies are built.
