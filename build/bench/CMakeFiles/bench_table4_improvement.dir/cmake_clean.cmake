file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_improvement.dir/bench_table4_improvement.cc.o"
  "CMakeFiles/bench_table4_improvement.dir/bench_table4_improvement.cc.o.d"
  "bench_table4_improvement"
  "bench_table4_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
