file(REMOVE_RECURSE
  "CMakeFiles/bench_tertiary_layout.dir/bench_tertiary_layout.cc.o"
  "CMakeFiles/bench_tertiary_layout.dir/bench_tertiary_layout.cc.o.d"
  "bench_tertiary_layout"
  "bench_tertiary_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tertiary_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
