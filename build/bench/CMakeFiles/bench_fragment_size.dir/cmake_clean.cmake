file(REMOVE_RECURSE
  "CMakeFiles/bench_fragment_size.dir/bench_fragment_size.cc.o"
  "CMakeFiles/bench_fragment_size.dir/bench_fragment_size.cc.o.d"
  "bench_fragment_size"
  "bench_fragment_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fragment_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
