# Empty dependencies file for bench_fragment_size.
# This may be replaced when dependencies are built.
