file(REMOVE_RECURSE
  "CMakeFiles/bench_stride.dir/bench_stride.cc.o"
  "CMakeFiles/bench_stride.dir/bench_stride.cc.o.d"
  "bench_stride"
  "bench_stride.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
