# Empty compiler generated dependencies file for bench_stride.
# This may be replaced when dependencies are built.
