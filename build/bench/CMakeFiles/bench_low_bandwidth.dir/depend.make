# Empty dependencies file for bench_low_bandwidth.
# This may be replaced when dependencies are built.
