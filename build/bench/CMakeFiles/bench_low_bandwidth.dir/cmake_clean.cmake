file(REMOVE_RECURSE
  "CMakeFiles/bench_low_bandwidth.dir/bench_low_bandwidth.cc.o"
  "CMakeFiles/bench_low_bandwidth.dir/bench_low_bandwidth.cc.o.d"
  "bench_low_bandwidth"
  "bench_low_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_low_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
