file(REMOVE_RECURSE
  "CMakeFiles/bench_seek_model.dir/bench_seek_model.cc.o"
  "CMakeFiles/bench_seek_model.dir/bench_seek_model.cc.o.d"
  "bench_seek_model"
  "bench_seek_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seek_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
