file(REMOVE_RECURSE
  "CMakeFiles/stagger_sim_cli.dir/stagger_sim.cc.o"
  "CMakeFiles/stagger_sim_cli.dir/stagger_sim.cc.o.d"
  "stagger_sim"
  "stagger_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagger_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
