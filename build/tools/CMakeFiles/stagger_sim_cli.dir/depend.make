# Empty dependencies file for stagger_sim_cli.
# This may be replaced when dependencies are built.
