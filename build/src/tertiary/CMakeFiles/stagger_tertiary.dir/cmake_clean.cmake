file(REMOVE_RECURSE
  "CMakeFiles/stagger_tertiary.dir/tertiary_device.cc.o"
  "CMakeFiles/stagger_tertiary.dir/tertiary_device.cc.o.d"
  "CMakeFiles/stagger_tertiary.dir/tertiary_manager.cc.o"
  "CMakeFiles/stagger_tertiary.dir/tertiary_manager.cc.o.d"
  "CMakeFiles/stagger_tertiary.dir/tertiary_pool.cc.o"
  "CMakeFiles/stagger_tertiary.dir/tertiary_pool.cc.o.d"
  "libstagger_tertiary.a"
  "libstagger_tertiary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagger_tertiary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
