
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tertiary/tertiary_device.cc" "src/tertiary/CMakeFiles/stagger_tertiary.dir/tertiary_device.cc.o" "gcc" "src/tertiary/CMakeFiles/stagger_tertiary.dir/tertiary_device.cc.o.d"
  "/root/repo/src/tertiary/tertiary_manager.cc" "src/tertiary/CMakeFiles/stagger_tertiary.dir/tertiary_manager.cc.o" "gcc" "src/tertiary/CMakeFiles/stagger_tertiary.dir/tertiary_manager.cc.o.d"
  "/root/repo/src/tertiary/tertiary_pool.cc" "src/tertiary/CMakeFiles/stagger_tertiary.dir/tertiary_pool.cc.o" "gcc" "src/tertiary/CMakeFiles/stagger_tertiary.dir/tertiary_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/stagger_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/stagger_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stagger_util.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/stagger_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
