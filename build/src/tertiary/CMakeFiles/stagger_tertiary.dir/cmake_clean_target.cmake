file(REMOVE_RECURSE
  "libstagger_tertiary.a"
)
