# Empty dependencies file for stagger_tertiary.
# This may be replaced when dependencies are built.
