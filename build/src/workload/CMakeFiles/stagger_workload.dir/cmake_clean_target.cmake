file(REMOVE_RECURSE
  "libstagger_workload.a"
)
