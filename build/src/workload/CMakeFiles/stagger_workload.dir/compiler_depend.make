# Empty compiler generated dependencies file for stagger_workload.
# This may be replaced when dependencies are built.
