file(REMOVE_RECURSE
  "CMakeFiles/stagger_workload.dir/display_station.cc.o"
  "CMakeFiles/stagger_workload.dir/display_station.cc.o.d"
  "CMakeFiles/stagger_workload.dir/open_arrivals.cc.o"
  "CMakeFiles/stagger_workload.dir/open_arrivals.cc.o.d"
  "libstagger_workload.a"
  "libstagger_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagger_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
