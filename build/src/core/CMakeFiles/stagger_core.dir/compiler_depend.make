# Empty compiler generated dependencies file for stagger_core.
# This may be replaced when dependencies are built.
