
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/stagger_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/stagger_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/fast_forward.cc" "src/core/CMakeFiles/stagger_core.dir/fast_forward.cc.o" "gcc" "src/core/CMakeFiles/stagger_core.dir/fast_forward.cc.o.d"
  "/root/repo/src/core/interval_scheduler.cc" "src/core/CMakeFiles/stagger_core.dir/interval_scheduler.cc.o" "gcc" "src/core/CMakeFiles/stagger_core.dir/interval_scheduler.cc.o.d"
  "/root/repo/src/core/logical_scheduler.cc" "src/core/CMakeFiles/stagger_core.dir/logical_scheduler.cc.o" "gcc" "src/core/CMakeFiles/stagger_core.dir/logical_scheduler.cc.o.d"
  "/root/repo/src/core/low_bandwidth.cc" "src/core/CMakeFiles/stagger_core.dir/low_bandwidth.cc.o" "gcc" "src/core/CMakeFiles/stagger_core.dir/low_bandwidth.cc.o.d"
  "/root/repo/src/core/schedule_trace.cc" "src/core/CMakeFiles/stagger_core.dir/schedule_trace.cc.o" "gcc" "src/core/CMakeFiles/stagger_core.dir/schedule_trace.cc.o.d"
  "/root/repo/src/core/virtual_disk.cc" "src/core/CMakeFiles/stagger_core.dir/virtual_disk.cc.o" "gcc" "src/core/CMakeFiles/stagger_core.dir/virtual_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/stagger_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/stagger_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/stagger_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stagger_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
