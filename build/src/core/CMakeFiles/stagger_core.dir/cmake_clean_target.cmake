file(REMOVE_RECURSE
  "libstagger_core.a"
)
