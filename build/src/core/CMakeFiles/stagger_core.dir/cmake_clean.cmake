file(REMOVE_RECURSE
  "CMakeFiles/stagger_core.dir/analysis.cc.o"
  "CMakeFiles/stagger_core.dir/analysis.cc.o.d"
  "CMakeFiles/stagger_core.dir/fast_forward.cc.o"
  "CMakeFiles/stagger_core.dir/fast_forward.cc.o.d"
  "CMakeFiles/stagger_core.dir/interval_scheduler.cc.o"
  "CMakeFiles/stagger_core.dir/interval_scheduler.cc.o.d"
  "CMakeFiles/stagger_core.dir/logical_scheduler.cc.o"
  "CMakeFiles/stagger_core.dir/logical_scheduler.cc.o.d"
  "CMakeFiles/stagger_core.dir/low_bandwidth.cc.o"
  "CMakeFiles/stagger_core.dir/low_bandwidth.cc.o.d"
  "CMakeFiles/stagger_core.dir/schedule_trace.cc.o"
  "CMakeFiles/stagger_core.dir/schedule_trace.cc.o.d"
  "CMakeFiles/stagger_core.dir/virtual_disk.cc.o"
  "CMakeFiles/stagger_core.dir/virtual_disk.cc.o.d"
  "libstagger_core.a"
  "libstagger_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagger_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
