file(REMOVE_RECURSE
  "CMakeFiles/stagger_disk.dir/disk.cc.o"
  "CMakeFiles/stagger_disk.dir/disk.cc.o.d"
  "CMakeFiles/stagger_disk.dir/disk_array.cc.o"
  "CMakeFiles/stagger_disk.dir/disk_array.cc.o.d"
  "CMakeFiles/stagger_disk.dir/disk_parameters.cc.o"
  "CMakeFiles/stagger_disk.dir/disk_parameters.cc.o.d"
  "CMakeFiles/stagger_disk.dir/disk_sim.cc.o"
  "CMakeFiles/stagger_disk.dir/disk_sim.cc.o.d"
  "libstagger_disk.a"
  "libstagger_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagger_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
