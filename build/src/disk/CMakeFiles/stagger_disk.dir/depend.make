# Empty dependencies file for stagger_disk.
# This may be replaced when dependencies are built.
