file(REMOVE_RECURSE
  "libstagger_disk.a"
)
