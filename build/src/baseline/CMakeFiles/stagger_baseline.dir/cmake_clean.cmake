file(REMOVE_RECURSE
  "CMakeFiles/stagger_baseline.dir/vdr_server.cc.o"
  "CMakeFiles/stagger_baseline.dir/vdr_server.cc.o.d"
  "libstagger_baseline.a"
  "libstagger_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagger_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
