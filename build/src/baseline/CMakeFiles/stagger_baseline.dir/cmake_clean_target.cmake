file(REMOVE_RECURSE
  "libstagger_baseline.a"
)
