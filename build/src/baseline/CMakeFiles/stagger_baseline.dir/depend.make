# Empty dependencies file for stagger_baseline.
# This may be replaced when dependencies are built.
