file(REMOVE_RECURSE
  "libstagger_sim.a"
)
