file(REMOVE_RECURSE
  "CMakeFiles/stagger_sim.dir/event_queue.cc.o"
  "CMakeFiles/stagger_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/stagger_sim.dir/simulator.cc.o"
  "CMakeFiles/stagger_sim.dir/simulator.cc.o.d"
  "libstagger_sim.a"
  "libstagger_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagger_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
