# Empty dependencies file for stagger_sim.
# This may be replaced when dependencies are built.
