file(REMOVE_RECURSE
  "CMakeFiles/stagger_server.dir/experiment.cc.o"
  "CMakeFiles/stagger_server.dir/experiment.cc.o.d"
  "CMakeFiles/stagger_server.dir/striped_server.cc.o"
  "CMakeFiles/stagger_server.dir/striped_server.cc.o.d"
  "libstagger_server.a"
  "libstagger_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagger_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
