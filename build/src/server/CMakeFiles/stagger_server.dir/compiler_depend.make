# Empty compiler generated dependencies file for stagger_server.
# This may be replaced when dependencies are built.
