file(REMOVE_RECURSE
  "libstagger_server.a"
)
