file(REMOVE_RECURSE
  "CMakeFiles/stagger_util.dir/distributions.cc.o"
  "CMakeFiles/stagger_util.dir/distributions.cc.o.d"
  "CMakeFiles/stagger_util.dir/logging.cc.o"
  "CMakeFiles/stagger_util.dir/logging.cc.o.d"
  "CMakeFiles/stagger_util.dir/rng.cc.o"
  "CMakeFiles/stagger_util.dir/rng.cc.o.d"
  "CMakeFiles/stagger_util.dir/stats.cc.o"
  "CMakeFiles/stagger_util.dir/stats.cc.o.d"
  "CMakeFiles/stagger_util.dir/status.cc.o"
  "CMakeFiles/stagger_util.dir/status.cc.o.d"
  "CMakeFiles/stagger_util.dir/table.cc.o"
  "CMakeFiles/stagger_util.dir/table.cc.o.d"
  "CMakeFiles/stagger_util.dir/units.cc.o"
  "CMakeFiles/stagger_util.dir/units.cc.o.d"
  "libstagger_util.a"
  "libstagger_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagger_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
