# Empty compiler generated dependencies file for stagger_util.
# This may be replaced when dependencies are built.
