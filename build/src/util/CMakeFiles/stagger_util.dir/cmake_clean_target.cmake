file(REMOVE_RECURSE
  "libstagger_util.a"
)
