# Empty compiler generated dependencies file for stagger_storage.
# This may be replaced when dependencies are built.
