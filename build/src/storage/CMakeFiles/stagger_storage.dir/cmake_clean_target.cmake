file(REMOVE_RECURSE
  "libstagger_storage.a"
)
