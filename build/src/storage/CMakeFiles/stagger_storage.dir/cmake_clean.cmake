file(REMOVE_RECURSE
  "CMakeFiles/stagger_storage.dir/catalog.cc.o"
  "CMakeFiles/stagger_storage.dir/catalog.cc.o.d"
  "CMakeFiles/stagger_storage.dir/layout.cc.o"
  "CMakeFiles/stagger_storage.dir/layout.cc.o.d"
  "CMakeFiles/stagger_storage.dir/object_manager.cc.o"
  "CMakeFiles/stagger_storage.dir/object_manager.cc.o.d"
  "libstagger_storage.a"
  "libstagger_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagger_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
