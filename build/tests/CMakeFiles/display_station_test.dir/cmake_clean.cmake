file(REMOVE_RECURSE
  "CMakeFiles/display_station_test.dir/workload/display_station_test.cc.o"
  "CMakeFiles/display_station_test.dir/workload/display_station_test.cc.o.d"
  "display_station_test"
  "display_station_test.pdb"
  "display_station_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/display_station_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
