# Empty dependencies file for display_station_test.
# This may be replaced when dependencies are built.
