file(REMOVE_RECURSE
  "CMakeFiles/vdr_server_test.dir/baseline/vdr_server_test.cc.o"
  "CMakeFiles/vdr_server_test.dir/baseline/vdr_server_test.cc.o.d"
  "vdr_server_test"
  "vdr_server_test.pdb"
  "vdr_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdr_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
