# Empty dependencies file for vdr_server_test.
# This may be replaced when dependencies are built.
