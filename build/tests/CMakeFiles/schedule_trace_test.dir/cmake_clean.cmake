file(REMOVE_RECURSE
  "CMakeFiles/schedule_trace_test.dir/core/schedule_trace_test.cc.o"
  "CMakeFiles/schedule_trace_test.dir/core/schedule_trace_test.cc.o.d"
  "schedule_trace_test"
  "schedule_trace_test.pdb"
  "schedule_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
