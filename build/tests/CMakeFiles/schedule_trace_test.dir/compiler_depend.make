# Empty compiler generated dependencies file for schedule_trace_test.
# This may be replaced when dependencies are built.
