file(REMOVE_RECURSE
  "CMakeFiles/disk_parameters_test.dir/disk/disk_parameters_test.cc.o"
  "CMakeFiles/disk_parameters_test.dir/disk/disk_parameters_test.cc.o.d"
  "disk_parameters_test"
  "disk_parameters_test.pdb"
  "disk_parameters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_parameters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
