# Empty dependencies file for disk_parameters_test.
# This may be replaced when dependencies are built.
