file(REMOVE_RECURSE
  "CMakeFiles/open_arrivals_test.dir/workload/open_arrivals_test.cc.o"
  "CMakeFiles/open_arrivals_test.dir/workload/open_arrivals_test.cc.o.d"
  "open_arrivals_test"
  "open_arrivals_test.pdb"
  "open_arrivals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_arrivals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
