# Empty dependencies file for open_arrivals_test.
# This may be replaced when dependencies are built.
