# Empty compiler generated dependencies file for tertiary_pool_test.
# This may be replaced when dependencies are built.
