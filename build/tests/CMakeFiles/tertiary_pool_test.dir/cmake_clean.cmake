file(REMOVE_RECURSE
  "CMakeFiles/tertiary_pool_test.dir/tertiary/tertiary_pool_test.cc.o"
  "CMakeFiles/tertiary_pool_test.dir/tertiary/tertiary_pool_test.cc.o.d"
  "tertiary_pool_test"
  "tertiary_pool_test.pdb"
  "tertiary_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tertiary_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
