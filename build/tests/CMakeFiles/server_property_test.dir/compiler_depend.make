# Empty compiler generated dependencies file for server_property_test.
# This may be replaced when dependencies are built.
