file(REMOVE_RECURSE
  "CMakeFiles/server_property_test.dir/server/server_property_test.cc.o"
  "CMakeFiles/server_property_test.dir/server/server_property_test.cc.o.d"
  "server_property_test"
  "server_property_test.pdb"
  "server_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
