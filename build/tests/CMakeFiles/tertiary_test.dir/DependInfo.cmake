
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tertiary/tertiary_test.cc" "tests/CMakeFiles/tertiary_test.dir/tertiary/tertiary_test.cc.o" "gcc" "tests/CMakeFiles/tertiary_test.dir/tertiary/tertiary_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/server/CMakeFiles/stagger_server.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/stagger_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/stagger_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stagger_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tertiary/CMakeFiles/stagger_tertiary.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/stagger_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/stagger_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stagger_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stagger_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
