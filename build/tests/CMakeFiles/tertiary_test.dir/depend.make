# Empty dependencies file for tertiary_test.
# This may be replaced when dependencies are built.
