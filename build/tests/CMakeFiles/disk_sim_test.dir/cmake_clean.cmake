file(REMOVE_RECURSE
  "CMakeFiles/disk_sim_test.dir/disk/disk_sim_test.cc.o"
  "CMakeFiles/disk_sim_test.dir/disk/disk_sim_test.cc.o.d"
  "disk_sim_test"
  "disk_sim_test.pdb"
  "disk_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
