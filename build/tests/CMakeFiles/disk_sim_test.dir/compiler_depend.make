# Empty compiler generated dependencies file for disk_sim_test.
# This may be replaced when dependencies are built.
