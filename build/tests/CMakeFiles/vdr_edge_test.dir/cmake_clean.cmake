file(REMOVE_RECURSE
  "CMakeFiles/vdr_edge_test.dir/baseline/vdr_edge_test.cc.o"
  "CMakeFiles/vdr_edge_test.dir/baseline/vdr_edge_test.cc.o.d"
  "vdr_edge_test"
  "vdr_edge_test.pdb"
  "vdr_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdr_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
