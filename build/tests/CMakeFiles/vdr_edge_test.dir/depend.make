# Empty dependencies file for vdr_edge_test.
# This may be replaced when dependencies are built.
