file(REMOVE_RECURSE
  "CMakeFiles/interval_scheduler_test.dir/core/interval_scheduler_test.cc.o"
  "CMakeFiles/interval_scheduler_test.dir/core/interval_scheduler_test.cc.o.d"
  "interval_scheduler_test"
  "interval_scheduler_test.pdb"
  "interval_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
