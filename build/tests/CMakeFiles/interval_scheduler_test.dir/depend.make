# Empty dependencies file for interval_scheduler_test.
# This may be replaced when dependencies are built.
