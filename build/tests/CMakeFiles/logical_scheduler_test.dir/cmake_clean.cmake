file(REMOVE_RECURSE
  "CMakeFiles/logical_scheduler_test.dir/core/logical_scheduler_test.cc.o"
  "CMakeFiles/logical_scheduler_test.dir/core/logical_scheduler_test.cc.o.d"
  "logical_scheduler_test"
  "logical_scheduler_test.pdb"
  "logical_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
