# Empty compiler generated dependencies file for materialization_writes_test.
# This may be replaced when dependencies are built.
