file(REMOVE_RECURSE
  "CMakeFiles/materialization_writes_test.dir/server/materialization_writes_test.cc.o"
  "CMakeFiles/materialization_writes_test.dir/server/materialization_writes_test.cc.o.d"
  "materialization_writes_test"
  "materialization_writes_test.pdb"
  "materialization_writes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/materialization_writes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
