file(REMOVE_RECURSE
  "CMakeFiles/striped_server_test.dir/server/striped_server_test.cc.o"
  "CMakeFiles/striped_server_test.dir/server/striped_server_test.cc.o.d"
  "striped_server_test"
  "striped_server_test.pdb"
  "striped_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/striped_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
