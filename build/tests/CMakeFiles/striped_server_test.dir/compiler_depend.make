# Empty compiler generated dependencies file for striped_server_test.
# This may be replaced when dependencies are built.
