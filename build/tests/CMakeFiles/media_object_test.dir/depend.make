# Empty dependencies file for media_object_test.
# This may be replaced when dependencies are built.
