file(REMOVE_RECURSE
  "CMakeFiles/media_object_test.dir/storage/media_object_test.cc.o"
  "CMakeFiles/media_object_test.dir/storage/media_object_test.cc.o.d"
  "media_object_test"
  "media_object_test.pdb"
  "media_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
