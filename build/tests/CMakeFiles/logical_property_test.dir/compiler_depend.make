# Empty compiler generated dependencies file for logical_property_test.
# This may be replaced when dependencies are built.
