file(REMOVE_RECURSE
  "CMakeFiles/logical_property_test.dir/core/logical_property_test.cc.o"
  "CMakeFiles/logical_property_test.dir/core/logical_property_test.cc.o.d"
  "logical_property_test"
  "logical_property_test.pdb"
  "logical_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
