# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;stagger_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_media_server "/root/repo/build/examples/media_server")
set_tests_properties(example_media_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;stagger_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vcr_controls "/root/repo/build/examples/vcr_controls")
set_tests_properties(example_vcr_controls PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;stagger_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planner "/root/repo/build/examples/capacity_planner")
set_tests_properties(example_capacity_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;stagger_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_schedule_trace "/root/repo/build/examples/schedule_trace")
set_tests_properties(example_schedule_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;stagger_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_audio_library "/root/repo/build/examples/audio_library")
set_tests_properties(example_audio_library PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;15;stagger_example;/root/repo/examples/CMakeLists.txt;0;")
