file(REMOVE_RECURSE
  "CMakeFiles/audio_library.dir/audio_library.cpp.o"
  "CMakeFiles/audio_library.dir/audio_library.cpp.o.d"
  "audio_library"
  "audio_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
