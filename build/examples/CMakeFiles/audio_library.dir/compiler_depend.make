# Empty compiler generated dependencies file for audio_library.
# This may be replaced when dependencies are built.
