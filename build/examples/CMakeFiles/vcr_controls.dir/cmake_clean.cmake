file(REMOVE_RECURSE
  "CMakeFiles/vcr_controls.dir/vcr_controls.cpp.o"
  "CMakeFiles/vcr_controls.dir/vcr_controls.cpp.o.d"
  "vcr_controls"
  "vcr_controls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcr_controls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
