# Empty compiler generated dependencies file for vcr_controls.
# This may be replaced when dependencies are built.
