// Quickstart: build a small staggered-striping system (the 12-disk
// mixed-media scenario of Figure 5), request displays of three objects
// with different bandwidth requirements, and watch them stream
// hiccup-free while the disk sets shift by the stride each interval.
//
//   $ ./quickstart

#include <cstdio>

#include "core/interval_scheduler.h"
#include "disk/disk_array.h"
#include "sim/simulator.h"
#include "storage/layout.h"
#include "util/check.h"

using namespace stagger;  // NOLINT — example brevity

int main() {
  // A 12-disk farm of the paper's evaluation drives.
  Simulator sim;
  auto disks = DiskArray::Create(12, DiskParameters::Evaluation());
  STAGGER_CHECK(disks.ok()) << disks.status();

  // Stride k = 1, as in Figure 5.  The interval is one fragment (one
  // cylinder) at the effective 20 mbps disk bandwidth.
  SchedulerConfig config;
  config.stride = 1;
  config.interval = DiskParameters::Evaluation().CylinderReadTime();
  auto scheduler = IntervalScheduler::Create(&sim, &*disks, config);
  STAGGER_CHECK(scheduler.ok()) << scheduler.status();

  // Three objects: Z (40 mbps -> 2 disks), X (60 -> 3), Y (80 -> 4),
  // placed as in Figure 5.
  struct Spec {
    const char* name;
    int degree;
    int start_disk;
    int subobjects;
  };
  const Spec specs[] = {
      {"Y (80 mbps, M=4)", 4, 0, 12},
      {"X (60 mbps, M=3)", 3, 4, 12},
      {"Z (40 mbps, M=2)", 2, 7, 12},
  };

  int completed = 0;
  for (const Spec& spec : specs) {
    DisplayRequest req;
    req.object = 0;
    req.degree = spec.degree;
    req.start_disk = spec.start_disk;
    req.num_subobjects = spec.subobjects;
    req.on_started = [&spec](SimTime latency) {
      std::printf("%-20s started after %7.3f s\n", spec.name,
                  latency.seconds());
    };
    req.on_completed = [&spec, &completed] {
      ++completed;
      std::printf("%-20s completed\n", spec.name);
    };
    auto id = (*scheduler)->Submit(std::move(req));
    STAGGER_CHECK(id.ok()) << id.status();
  }

  // The scheduler ticks forever; run long enough for all displays.
  sim.RunUntil(SimTime::Minutes(5));

  std::printf("\n%d displays delivered, %lld hiccups, "
              "mean disk utilization %.1f%%\n",
              completed,
              static_cast<long long>((*scheduler)->metrics().hiccups),
              100.0 * disks->MeanUtilization());
  return completed == 3 ? 0 : 1;
}
