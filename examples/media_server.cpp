// A video-on-demand service on the paper's Table 3 hardware: 1000
// disks, one 40 mbps tertiary device, 2000 half-hour 100 mbps videos,
// and a closed population of subscribers with skewed tastes.  Runs six
// simulated hours under simple striping and reports throughput,
// startup latency, and resource utilizations hour by hour.
//
//   $ ./media_server [stations] [geometric_mean]

#include <cstdio>
#include <cstdlib>

#include "baseline/vdr_server.h"
#include "disk/disk_array.h"
#include "server/striped_server.h"
#include "sim/simulator.h"
#include "storage/catalog.h"
#include "tertiary/tertiary_manager.h"
#include "util/distributions.h"
#include "workload/display_station.h"

using namespace stagger;  // NOLINT — example brevity

int main(int argc, char** argv) {
  const int32_t stations = argc > 1 ? std::atoi(argv[1]) : 64;
  const double mean = argc > 2 ? std::atof(argv[2]) : 10.0;

  Simulator sim;
  const DiskParameters disk = DiskParameters::Evaluation();
  auto disks = DiskArray::Create(1000, disk);
  STAGGER_CHECK(disks.ok()) << disks.status();

  Catalog catalog = Catalog::Uniform(/*count=*/2000, /*num_subobjects=*/3000,
                                     Bandwidth::Mbps(100));
  TertiaryManager tertiary(&sim, TertiaryDevice(TertiaryParameters{}));

  StripedConfig config;
  config.stride = 5;  // k = M: simple striping
  config.interval = disk.CylinderReadTime();
  config.fragment_size = disk.cylinder_capacity;
  config.preload_objects = 200;
  auto server = StripedServer::Create(&sim, &catalog, &*disks, &tertiary,
                                      config);
  STAGGER_CHECK(server.ok()) << server.status();

  auto popularity = TruncatedGeometric::FromMean(catalog.size(), mean);
  STAGGER_CHECK(popularity.ok()) << popularity.status();
  StationPool pool(&sim, server->get(), &*popularity, stations, /*seed=*/7);
  pool.Start();

  std::printf("video-on-demand: %d stations, popularity mean %.1f, "
              "M=%d, interval=%.1f ms\n\n",
              stations, mean, catalog.Get(0).DegreeOfDeclustering(
                                  (*server)->EffectiveDiskBandwidth()),
              config.interval.millis());
  std::printf("hour  completed  throughput/h  mean_latency_s  disk_util  "
              "tertiary_util  resident\n");

  int64_t prev_completed = 0;
  for (int hour = 1; hour <= 6; ++hour) {
    sim.RunUntil(SimTime::Hours(hour));
    const WorkloadMetrics& m = pool.metrics();
    std::printf("%4d  %9lld  %12.1f  %14.1f  %9.3f  %13.3f  %8d\n", hour,
                static_cast<long long>(m.displays_completed),
                static_cast<double>(m.displays_completed - prev_completed),
                m.startup_latency_sec.mean(), disks->MeanUtilization(),
                tertiary.Utilization(sim.Now()),
                (*server)->object_manager().ResidentCount());
    prev_completed = m.displays_completed;
  }

  const SchedulerMetrics& sm = (*server)->scheduler_metrics();
  std::printf("\nfinal: %lld displays, %lld hiccups (must be 0), "
              "%lld unique titles watched\n",
              static_cast<long long>(pool.metrics().displays_completed),
              static_cast<long long>(sm.hiccups),
              static_cast<long long>(pool.UniqueObjectsReferenced()));
  return sm.hiccups == 0 ? 0 : 1;
}
