// Reproduces Figure 3's cluster schedule: three displays (X, Y, Z) on
// 9 disks organized as three clusters of three (simple striping,
// k = M = 3), traced interval by interval.  As displays end, idle
// slots appear exactly as in the figure; a new request then fills them.
//
//   $ ./schedule_trace

#include <cstdio>
#include <iostream>

#include "core/interval_scheduler.h"
#include "core/schedule_trace.h"
#include "disk/disk_array.h"
#include "sim/simulator.h"

using namespace stagger;  // NOLINT — example brevity

int main() {
  Simulator sim;
  auto disks = DiskArray::Create(9, DiskParameters::Evaluation());
  STAGGER_CHECK(disks.ok()) << disks.status();

  ScheduleTracer tracer(9, /*max_intervals=*/14);
  tracer.Name(0, "X");
  tracer.Name(1, "Y");
  tracer.Name(2, "Z");
  tracer.Name(3, "W");

  SchedulerConfig config;
  config.stride = 3;  // k = M: simple striping, physical clusters
  config.interval = SimTime::Millis(605);
  config.read_observer = [&tracer](int64_t t, ObjectId o, int64_t s,
                                   int32_t f, int32_t d) {
    tracer.Record(t, o, s, f, d);
  };
  auto scheduler = IntervalScheduler::Create(&sim, &*disks, config);
  STAGGER_CHECK(scheduler.ok()) << scheduler.status();

  // X, Y, Z in flight, with X the shortest (it ends mid-trace, opening
  // the idle slots of Figure 3); a new request W arrives and takes the
  // idle cluster, as the paper describes.
  struct Spec {
    ObjectId object;
    int start_disk;
    int subobjects;
  };
  for (const Spec& s :
       {Spec{0, 0, 5}, Spec{1, 3, 14}, Spec{2, 6, 14}}) {
    DisplayRequest req;
    req.object = s.object;
    req.degree = 3;
    req.start_disk = s.start_disk;
    req.num_subobjects = s.subobjects;
    req.on_completed = [] {};
    STAGGER_CHECK((*scheduler)->Submit(std::move(req)).ok());
  }
  // W arrives while X is still running; it waits for X's cluster slot.
  sim.RunUntil(SimTime::Millis(605) * 3);
  DisplayRequest w;
  w.object = 3;
  w.degree = 3;
  w.start_disk = 0;
  w.num_subobjects = 8;
  w.on_completed = [] {};
  STAGGER_CHECK((*scheduler)->Submit(std::move(w)).ok());

  sim.RunUntil(SimTime::Minutes(1));

  std::printf("Figure 3: cluster schedule (9 disks, 3 clusters, k = M = 3)\n"
              "X reads 5 subobjects then ends; W arrives at interval 3 and "
              "takes the idle slots.\n\n");
  tracer.RenderClusters(3).Print(std::cout);
  std::printf("\nPer-disk fragment trace (first intervals):\n\n");
  tracer.RenderDisks().Print(std::cout);
  std::printf("\n%lld hiccups (must be 0)\n",
              static_cast<long long>((*scheduler)->metrics().hiccups));
  return 0;
}
