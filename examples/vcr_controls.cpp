// VCR-style interactivity (Section 3.2.5): rewind / fast-forward
// without scan by repositioning the stream, and fast-forward *with*
// scan through a 1/16th-size replica object.  Shows the position
// mapping, the replica's storage overhead, and the transfer-initiation
// delays a viewer observes around each control action.
//
//   $ ./vcr_controls

#include <cstdio>

#include "core/fast_forward.h"
#include "core/interval_scheduler.h"
#include "disk/disk_array.h"
#include "sim/simulator.h"
#include "storage/layout.h"

using namespace stagger;  // NOLINT — example brevity

int main() {
  Simulator sim;
  auto disks = DiskArray::Create(100, DiskParameters::Evaluation());
  STAGGER_CHECK(disks.ok()) << disks.status();

  SchedulerConfig config;
  config.stride = 5;
  config.interval = SimTime::Millis(605);
  auto scheduler = IntervalScheduler::Create(&sim, &*disks, config);
  STAGGER_CHECK(scheduler.ok()) << scheduler.status();

  // The feature presentation: 600 subobjects (~6 minutes), M = 5.
  MediaObject movie;
  movie.name = "feature";
  movie.display_bandwidth = Bandwidth::Mbps(100);
  movie.num_subobjects = 600;
  auto layout = StaggeredLayout::Create(100, /*start_disk=*/0, /*stride=*/5,
                                        /*degree=*/5);
  STAGGER_CHECK(layout.ok());

  // Its fast-forward replica: every 16th frame, 1/16 the subobjects.
  auto replica = MakeFastForwardReplica(movie, /*speedup=*/16);
  STAGGER_CHECK(replica.ok()) << replica.status();
  auto replica_layout = StaggeredLayout::Create(100, /*start_disk=*/50,
                                                /*stride=*/5, /*degree=*/5);
  STAGGER_CHECK(replica_layout.ok());
  std::printf("replica '%s': %lld subobjects, %.1f%% storage overhead\n\n",
              replica->object.name.c_str(),
              static_cast<long long>(replica->object.num_subobjects),
              100.0 * replica->StorageOverhead(movie));

  // 1. Start watching the movie.
  DisplayRequest play;
  play.object = 0;
  play.degree = 5;
  play.start_disk = layout->FirstDiskFor(0);
  play.num_subobjects = movie.num_subobjects;
  play.on_started = [&sim](SimTime latency) {
    std::printf("[%8.1fs] playback started (waited %.2fs)\n",
                sim.Now().seconds(), latency.seconds());
  };
  play.on_completed = [&sim] {
    std::printf("[%8.1fs] playback finished\n", sim.Now().seconds());
  };
  auto handle = (*scheduler)->Submit(std::move(play));
  STAGGER_CHECK(handle.ok());

  // 2. After one minute, the viewer fast-forwards *with scan*: switch
  //    to the replica at the mapped position for ~2 timeline minutes.
  RequestId live = *handle;
  sim.RunUntil(SimTime::Minutes(1));
  {
    const int64_t paused_at = 99;  // subobject reached after ~1 min
    const int64_t from = replica->ToReplica(paused_at);
    const int64_t scan_len = replica->ToReplica(400);  // scan 400 subobjects
    std::printf("[%8.1fs] FF-scan: movie position %lld -> replica "
                "subobject %lld (%lld replica stripes)\n",
                sim.Now().seconds(), static_cast<long long>(paused_at),
                static_cast<long long>(from), static_cast<long long>(scan_len));
    STAGGER_CHECK((*scheduler)->Cancel(live).ok());
    DisplayRequest scan;
    scan.object = 1;
    scan.degree = 5;
    scan.start_disk = replica_layout->FirstDiskFor(from);
    scan.num_subobjects = scan_len;
    scan.on_started = [&sim](SimTime latency) {
      std::printf("[%8.1fs] stream started (switch delay %.2fs)\n",
                  sim.Now().seconds(), latency.seconds());
    };
    scan.on_completed = [&sim] {
      std::printf("[%8.1fs] stream finished\n", sim.Now().seconds());
    };
    auto scan_handle = (*scheduler)->Submit(std::move(scan));
    STAGGER_CHECK(scan_handle.ok());
    live = *scan_handle;
  }

  // 3. Ten seconds into the scan the viewer presses play: resume normal
  //    playback at the scanned-to position (rewind/FF without scan =
  //    Seek on the live stream).
  sim.RunUntil(SimTime::Minutes(1) + SimTime::Seconds(10));
  {
    // ~16 replica stripes scanned by now; each covers 16 subobjects.
    const int64_t resume_at =
        replica->FromReplica(replica->ToReplica(99) + 16);
    std::printf("[%8.1fs] resume normal playback at subobject %lld\n",
                sim.Now().seconds(), static_cast<long long>(resume_at));
    auto resumed = (*scheduler)->Seek(live, layout->FirstDiskFor(resume_at),
                                      movie.num_subobjects - resume_at);
    STAGGER_CHECK(resumed.ok()) << resumed.status();
  }

  sim.RunUntil(SimTime::Minutes(10));
  std::printf("\n%lld hiccups (must be 0)\n",
              static_cast<long long>((*scheduler)->metrics().hiccups));
  return (*scheduler)->metrics().hiccups == 0 ? 0 : 1;
}
