// A digital audio library (Section 3.2.3's low-bandwidth regime): CD
// tracks at 1.4 mbps on 20 mbps disks.  Whole-disk allocation wastes
// 93 % of every disk a track touches; splitting each disk into L
// logical disks serves many listeners per physical disk.  Runs both
// configurations and reports listeners served and buffer overhead.
//
//   $ ./audio_library

#include <cstdio>
#include <functional>
#include <iostream>

#include "core/logical_scheduler.h"
#include "core/low_bandwidth.h"
#include "sim/simulator.h"
#include "util/table.h"

using namespace stagger;  // NOLINT — example brevity

int main() {
  const Bandwidth track_bw = Bandwidth::Mbps(1.4);
  const Bandwidth disk_bw = Bandwidth::Mbps(20);

  std::printf("audio library: 1.4 mbps tracks on 8 x 20 mbps disks, "
              "40 listeners, 1 h\n\n");

  Table table({"logical_per_disk", "units_per_track", "waste_%",
               "tracks_per_hour", "avg_buffer_frac"});
  double prev_throughput = 0.0;
  for (int32_t l : {1, 2, 4, 8, 14}) {
    auto alloc = AllocateLogical(track_bw, disk_bw, l);
    STAGGER_CHECK(alloc.ok()) << alloc.status();

    Simulator sim;
    LogicalSchedulerConfig config;
    config.num_disks = 8;
    config.stride = 1;
    config.logical_per_disk = l;
    config.interval = SimTime::Millis(605);
    auto sched = LogicalDiskScheduler::Create(&sim, config);
    STAGGER_CHECK(sched.ok()) << sched.status();

    int64_t completed = 0;
    std::function<void(int32_t)> listen = [&](int32_t listener) {
      LogicalRequest req;
      req.object = listener;
      req.units = alloc->units;
      req.start_disk = listener % config.num_disks;
      req.num_subobjects = 300;  // ~3 min track
      req.on_completed = [&, listener] {
        ++completed;
        listen(listener);
      };
      STAGGER_CHECK((*sched)->Submit(std::move(req)).ok());
    };
    for (int32_t s = 0; s < 40; ++s) listen(s);
    sim.RunUntil(SimTime::Hours(1));

    table.AddRowValues(
        static_cast<int64_t>(l), alloc->units, 100.0 * alloc->wasted_fraction,
        static_cast<double>(completed),
        (*sched)->metrics().buffered_fraction.Average(sim.Now()));
    prev_throughput = static_cast<double>(completed);
  }
  table.Print(std::cout);

  std::printf("\nFiner logical splits serve more concurrent listeners per "
              "disk, at the cost of\nper-lane buffering (Figure 7).  "
              "Final configuration sustained %.0f tracks/hour.\n",
              prev_throughput);
  return 0;
}
