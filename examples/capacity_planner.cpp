// Capacity planning with the library's analytical API: given a drive
// model, a media mix, and a target station count, choose the fragment
// size and stride, and report how many disks the deployment needs —
// the back-of-envelope workflow of Sections 3.1-3.3 as code.
//
//   $ ./capacity_planner

#include <cstdio>
#include <iostream>

#include "core/low_bandwidth.h"
#include "disk/disk_parameters.h"
#include "storage/layout.h"
#include "util/table.h"

using namespace stagger;  // NOLINT — example brevity

int main() {
  const DiskParameters drive = DiskParameters::Sabre1_2GB();

  // Step 1: pick a fragment size.  Bigger fragments waste less
  // bandwidth but lengthen the time interval, and with it the
  // worst-case display-initiation delay.
  std::printf("Step 1 — fragment size (drive: %.2f GB, tfr %.2f mbps, "
              "T_switch %.1f ms)\n\n",
              drive.Capacity().gigabytes(), drive.transfer_rate.mbps(),
              drive.TSwitch().millis());
  Table frag({"cylinders", "eff_bw_mbps", "wasted_%", "interval_ms"});
  for (int64_t cyl = 1; cyl <= 4; ++cyl) {
    frag.AddRowValues(cyl, drive.EffectiveBandwidthCylinders(cyl).mbps(),
                      100.0 * drive.WastedBandwidthFraction(cyl),
                      drive.ServiceTime(cyl).millis());
  }
  frag.Print(std::cout);
  const int64_t fragment_cyl = 2;  // the paper's choice: ~10% waste
  const Bandwidth b_disk = drive.EffectiveBandwidthCylinders(fragment_cyl);

  // Step 2: degrees of declustering for the media mix.
  std::printf("\nStep 2 — media mix at B_disk = %.2f mbps\n\n", b_disk.mbps());
  struct Media {
    const char* name;
    Bandwidth display;
    double hours;  // content length
  };
  const Media mix[] = {
      {"CD audio", Bandwidth::Mbps(1.4), 1.0},
      {"MPEG-1 video", Bandwidth::Mbps(15), 1.5},
      {"NTSC network video", Bandwidth::Mbps(45), 1.5},
      {"CCIR-601 video", Bandwidth::Mbps(216), 2.0},
  };
  Table degrees({"media", "B_display_mbps", "whole_disks", "waste_%",
                 "L=2_units", "L=2_waste_%", "size_GB"});
  for (const Media& m : mix) {
    MediaObject obj;
    obj.display_bandwidth = m.display;
    const int32_t whole = obj.DegreeOfDeclustering(b_disk);
    auto logical = AllocateLogical(m.display, b_disk, 2);
    STAGGER_CHECK(logical.ok());
    const double size_gb =
        m.display.bits_per_sec() * m.hours * 3600.0 / 8e9;
    degrees.AddRowValues(m.name, m.display.mbps(), static_cast<int64_t>(whole),
                         100.0 * IntegralDiskWaste(m.display, b_disk),
                         logical->units, 100.0 * logical->wasted_fraction,
                         size_gb);
  }
  degrees.Print(std::cout);

  // Step 3: stride.  Relatively prime (D, k) guarantees no data skew;
  // k = 1 always qualifies.
  std::printf("\nStep 3 — stride choice for D = 90\n\n");
  Table stride({"k", "skew_free_any_n", "disks_touched_by_2GB_object"});
  for (int32_t k : {1, 2, 3, 5, 7, 90}) {
    auto layout = StaggeredLayout::Create(90, 0, k, 11);
    STAGGER_CHECK(layout.ok());
    // A 2 GB CCIR object: ~2GB / (11 * 2 cylinders) subobjects.
    const int64_t n = 2000000000 /
                      (11 * fragment_cyl * drive.cylinder_capacity.bytes());
    stride.AddRowValues(
        static_cast<int64_t>(k),
        std::gcd(90, k) == 1 ? "yes" : "no",
        static_cast<int64_t>(layout->UniqueDisksUsed(n)));
  }
  stride.Print(std::cout);

  std::printf("\nRecommendation: 2-cylinder fragments (%.0f%% waste), "
              "k = 1, logical half-disks for audio.\n",
              100.0 * drive.WastedBandwidthFraction(fragment_cyl));
  return 0;
}
