// E7 — Section 3.2.3 / Figure 7: low-bandwidth objects.  Rounding a
// request up to an integral number of whole disks wastes bandwidth; the
// paper splits each disk into L logical disks of B_Disk / L and
// multiplexes subobjects within a time interval, at the cost of a
// little buffer space.  This bench sweeps object bandwidths and logical
// splits, reporting the wasted fraction and buffer overhead, and
// verifies the paper's two worked numbers:
//   * a 30 mbps object on 20 mbps disks wastes 25 % of two disks;
//   * B_Display = 3/2 B_Disk is served exactly with L = 2.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/logical_scheduler.h"
#include "core/low_bandwidth.h"
#include "sim/simulator.h"
#include "util/table.h"

namespace stagger {
namespace {

/// Closed-loop throughput of 30 mbps displays on a 12-disk farm of
/// 20 mbps disks over two simulated hours, at a given logical split.
/// With L = 1 each display rounds up to 2 whole disks (6 concurrent);
/// with L = 2 it takes exactly 3 half-disk units and displays pair up
/// Figure 7-style (8 concurrent).
double SimulateThroughput(int32_t logical_per_disk, int32_t stations) {
  Simulator sim;
  LogicalSchedulerConfig config;
  config.num_disks = 12;
  config.stride = 1;
  config.logical_per_disk = logical_per_disk;
  config.interval = SimTime::Millis(605);
  auto sched = LogicalDiskScheduler::Create(&sim, config);
  STAGGER_CHECK(sched.ok()) << sched.status();

  auto alloc = AllocateLogical(Bandwidth::Mbps(30), Bandwidth::Mbps(20),
                               logical_per_disk);
  STAGGER_CHECK(alloc.ok());

  int64_t completed = 0;
  std::function<void(int32_t)> issue = [&](int32_t station) {
    LogicalRequest req;
    req.object = station;
    req.units = alloc->units;
    req.start_disk = (station * 3) % config.num_disks;
    req.num_subobjects = 100;  // ~60 s displays
    // Alternate the partial-lane side so fractional displays pair up.
    req.partial_lane_first = (station % 2) == 1;
    req.on_completed = [&, station] {
      ++completed;
      issue(station);
    };
    STAGGER_CHECK((*sched)->Submit(std::move(req)).ok());
  };
  for (int32_t s = 0; s < stations; ++s) issue(s);
  sim.RunUntil(SimTime::Hours(2));
  return static_cast<double>(completed) / 2.0;  // displays per hour
}

int Run() {
  const Bandwidth disk = Bandwidth::Mbps(20);

  std::printf("Section 3.2.3: integral-disk waste vs logical-disk "
              "allocation (B_Disk = 20 mbps)\n\n");
  Table table({"B_Display_mbps", "whole-disk_waste_%", "L=2_units",
               "L=2_waste_%", "L=2_buffer_subobj", "L=4_waste_%"});
  const double bandwidths[] = {5, 10, 15, 30, 45, 50, 70, 90, 110};
  for (double mbps : bandwidths) {
    const Bandwidth display = Bandwidth::Mbps(mbps);
    const double whole = 100.0 * IntegralDiskWaste(display, disk);
    auto l2 = AllocateLogical(display, disk, 2);
    auto l4 = AllocateLogical(display, disk, 4);
    STAGGER_CHECK(l2.ok() && l4.ok());
    table.AddRowValues(mbps, whole, l2->units, 100.0 * l2->wasted_fraction,
                       l2->buffer_subobject_fraction,
                       100.0 * l4->wasted_fraction);
  }
  table.Print(std::cout);

  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("[%s] %s\n", ok ? "OK  " : "FAIL", what);
    if (!ok) ++failures;
  };
  // "an object requiring 30 mbps when B_Disk = 20 would waste 25
  // percent of the bandwidth of the two disks used per interval"
  expect(std::abs(IntegralDiskWaste(Bandwidth::Mbps(30), disk) - 0.25) < 1e-9,
         "30 mbps object wastes 25% of two whole disks");
  // "an object that has B_Display = 3/2 B_Disk can be exactly
  // accommodated with no loss due to rounding up"
  auto exact = AllocateLogical(Bandwidth::Mbps(30), disk, 2);
  expect(exact.ok() && exact->wasted_fraction < 1e-9,
         "L=2 serves 30 mbps with zero rounding waste");
  expect(exact->units == 3, "30 mbps needs exactly 3 half-disk units");
  // Figure 7: two half-bandwidth objects share one disk; each buffers
  // half of its subobject while the other is being read.
  auto half = AllocateLogical(Bandwidth::Mbps(10), disk, 2);
  expect(half.ok() && half->units == 1 && half->disks == 1,
         "10 mbps object occupies one half-disk unit");
  expect(std::abs(half->buffer_subobject_fraction - 0.5) < 1e-9,
         "a half-rate lane buffers half a subobject (Figure 7)");
  // Logical splitting never increases waste.
  for (double mbps : bandwidths) {
    auto l2 = AllocateLogical(Bandwidth::Mbps(mbps), disk, 2);
    expect(l2->wasted_fraction <=
               IntegralDiskWaste(Bandwidth::Mbps(mbps), disk) + 1e-9,
           "L=2 waste <= whole-disk waste");
  }

  // Simulated throughput: 30 mbps displays on 12 x 20 mbps disks.
  std::printf("\nSimulated closed-loop throughput (30 mbps displays, "
              "12 disks, 10 stations):\n\n");
  Table sim_table({"logical_per_disk", "displays_per_hour",
                   "concurrency_bound"});
  const double l1 = SimulateThroughput(1, 10);
  const double l2 = SimulateThroughput(2, 10);
  sim_table.AddRowValues(static_cast<int64_t>(1), l1,
                         static_cast<int64_t>(6));
  sim_table.AddRowValues(static_cast<int64_t>(2), l2,
                         static_cast<int64_t>(8));
  sim_table.Print(std::cout);
  expect(l2 > l1 * 1.2,
         "logical half-disks raise measured throughput by > 20%");
  std::printf("\n%s\n", failures == 0 ? "All low-bandwidth checks passed."
                                      : "Some low-bandwidth checks FAILED.");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stagger

int main() { return stagger::Run(); }
