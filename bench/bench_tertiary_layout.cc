// E8 — Section 3.2.4: materializing objects from the tertiary store.
// If the tape stores an object sequentially, the layout mismatch with
// the staggered disk order forces a head reposition per burst of
// (B_Tertiary / B_Display) x subobject bytes, wasting device time.
// Recording the tape in delivery order (X0.0 X0.1 X1.0 X1.1 ...)
// removes the repositioning entirely.
//
// Sweeps the reposition penalty and reports materialization time and
// device efficiency for both layouts, using the paper's example
// (B_Display = 80 mbps, B_Tertiary = 40 mbps) and the Table 3 object.

#include <cstdio>
#include <iostream>

#include "tertiary/tertiary_device.h"
#include "util/table.h"

namespace stagger {
namespace {

int Run() {
  // Paper example: 80 mbps object, 40 mbps tertiary, 20 mbps disks.
  // Each burst delivers (40/80) of a subobject before the head must
  // reposition under the sequential layout.
  const DataSize fragment = DataSize::MB(1.512);
  const int32_t degree = 4;                       // 80 / 20
  const int64_t subobjects = 3000;
  const DataSize subobject = fragment * degree;
  const DataSize object = subobject * subobjects;
  const DataSize burst = DataSize::Bytes(subobject.bytes() / 2);  // 40/80

  std::printf("Section 3.2.4: tape layout vs materialization cost\n"
              "(object: %lld subobjects x %.3f MB, tertiary 40 mbps)\n\n",
              static_cast<long long>(subobjects), subobject.megabytes());

  Table table({"reposition_s", "striped_layout_s", "sequential_layout_s",
               "sequential_efficiency_%", "slowdown_x"});
  int failures = 0;
  for (double repo_s : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    TertiaryParameters params;
    params.bandwidth = Bandwidth::Mbps(40);
    params.reposition = SimTime::Seconds(repo_s);
    TertiaryDevice device(params);

    const SimTime striped = device.StripedLayoutTime(object);
    const SimTime sequential = device.SequentialLayoutTime(object, burst);
    const double efficiency =
        100.0 * device.SequentialLayoutEfficiency(object, burst);
    table.AddRowValues(repo_s, striped.seconds(), sequential.seconds(),
                       efficiency, sequential.seconds() / striped.seconds());
    if (sequential < striped) ++failures;
  }
  table.Print(std::cout);

  auto expect = [&](bool ok, const char* what) {
    std::printf("[%s] %s\n", ok ? "OK  " : "FAIL", what);
    if (!ok) ++failures;
  };
  TertiaryParameters params;  // defaults: 40 mbps, 2 s reposition
  TertiaryDevice device(params);
  // The striped layout transfers at full device bandwidth: the Table 3
  // object (100 mbps, M = 5) materializes in size / B_Tertiary.
  const DataSize table3_object = fragment * (3000 * 5);
  expect(std::abs(device.StripedLayoutTime(table3_object).seconds() -
                  (2.0 + table3_object.bits() / 40e6)) < 0.1,
         "striped layout = reposition + size / B_Tertiary");
  // With a 2 s reposition per half-subobject burst the sequential
  // layout spends the majority of its time seeking.
  expect(device.SequentialLayoutEfficiency(object, burst) < 0.5,
         "sequential layout wastes most of the device at 2 s repositions");
  std::printf("\n%s\n", failures == 0 ? "All tertiary-layout checks passed."
                                      : "Some tertiary-layout checks FAILED.");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stagger

int main() { return stagger::Run(); }
