// E13 — graceful degradation under disk faults, on the 1/10-scale
// Table 3 system (100 disks, 200 objects, ~2-minute displays, skewed
// access).  Three fault scenarios —
//
//   * healthy:     no faults (the paper's operating assumption);
//   * single-loss: one disk fails mid-measurement and recovers 30 min
//                  later (the canonical RAID-style outage);
//   * storm:       three staggered failures plus transient stalls;
//
// — crossed with the striped schemes' degraded policies (remap vs
// pause-only) and the VDR baseline's cluster failover.  Rows report
// throughput alongside the degraded-mode outcome counters: remapped
// reads, pauses/resumes, interrupted displays, resume latency, and
// (for VDR) failovers.  The headline checks: with remapping enabled a
// single-disk outage costs a few percent of throughput, parks far fewer
// streams than the pause-only ablation, and interrupts only a small
// tail of displays (the farm runs at 40-station saturation, so some
// paused streams cannot re-admit before the outage ends).

#include <cstdio>
#include <iostream>

#include "server/experiment.h"
#include "util/table.h"

namespace stagger {
namespace {

ExperimentConfig Base(Scheme scheme) {
  ExperimentConfig cfg;
  cfg.scheme = scheme;
  cfg.num_disks = 100;
  cfg.num_objects = 200;
  cfg.subobjects_per_object = 200;  // ~121 s displays
  cfg.preload_objects = 30;
  cfg.stations = 40;
  cfg.geometric_mean = 8.0;
  cfg.warmup = SimTime::Minutes(30);
  cfg.measure = SimTime::Hours(2);
  return cfg;
}

// One disk lost for 30 minutes, mid-measurement.
FaultPlan SingleLoss() {
  FaultPlan plan;
  plan.FailAt(13, SimTime::Minutes(60)).RecoverAt(13, SimTime::Minutes(90));
  return plan;
}

// Three staggered outages plus short stalls across the farm.
FaultPlan Storm() {
  FaultPlan plan;
  plan.FailAt(13, SimTime::Minutes(45)).RecoverAt(13, SimTime::Minutes(75));
  plan.FailAt(47, SimTime::Minutes(60)).RecoverAt(47, SimTime::Minutes(100));
  plan.FailAt(81, SimTime::Minutes(90)).RecoverAt(81, SimTime::Minutes(110));
  plan.StallAt(5, SimTime::Minutes(50), SimTime::Seconds(30));
  plan.StallAt(29, SimTime::Minutes(70), SimTime::Seconds(45));
  plan.StallAt(62, SimTime::Minutes(95), SimTime::Seconds(30));
  return plan;
}

int Run() {
  Table table({"scheme", "scenario", "policy", "displays_per_hour",
               "degraded_reads", "reconstructed", "paused", "resumed",
               "interrupted", "resume_lat_s", "failovers", "rebuilds"});
  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("[%s] %s\n", ok ? "OK  " : "FAIL", what);
    if (!ok) ++failures;
  };
  auto run = [&](const char* scenario, const char* policy,
                 const ExperimentConfig& cfg) {
    auto result = RunExperiment(cfg);
    STAGGER_CHECK(result.ok()) << result.status();
    table.AddRowValues(SchemeName(cfg.scheme), scenario, policy,
                       result->displays_per_hour, result->degraded_reads,
                       result->reconstructed_reads, result->streams_paused,
                       result->streams_resumed, result->displays_interrupted,
                       result->mean_resume_latency_sec, result->failovers,
                       result->rebuilds_completed);
    return *result;
  };

  std::printf("Degraded-mode behavior under disk faults (1/10-scale Table 3: "
              "D=100, 200\nobjects, 40 stations, geometric mean 8, 2 h "
              "window)\n\n");

  // Striped scheme, three scenarios under the remap-first policy.
  ExperimentConfig cfg = Base(Scheme::kSimpleStriping);
  auto healthy = run("healthy", "remap", cfg);
  cfg.fault_plan = SingleLoss();
  auto single_remap = run("single-loss", "remap", cfg);
  cfg.fault_plan = Storm();
  auto storm_remap = run("storm", "remap", cfg);

  // Pause-only ablation: what remapping buys.
  cfg = Base(Scheme::kSimpleStriping);
  cfg.degraded_policy = DegradedPolicy::kPause;
  cfg.fault_plan = SingleLoss();
  auto single_pause = run("single-loss", "pause", cfg);
  cfg.fault_plan = Storm();
  auto storm_pause = run("storm", "pause", cfg);

  // Parity + reconstruction: degraded reads re-derive the lost fragment
  // from survivors + parity inside the same interval, and failed slots
  // rebuild onto hot spares on idle bandwidth.
  cfg = Base(Scheme::kSimpleStriping);
  cfg.parity = true;
  cfg.num_spares = 2;
  cfg.degraded_policy = DegradedPolicy::kReconstruct;
  cfg.fault_plan = SingleLoss();
  auto single_recon = run("single-loss", "reconstruct", cfg);
  cfg.fault_plan = Storm();
  auto storm_recon = run("storm", "reconstruct", cfg);

  // VDR baseline: the same outages become cluster failovers.
  cfg = Base(Scheme::kVdr);
  auto vdr_healthy = run("healthy", "failover", cfg);
  cfg.fault_plan = SingleLoss();
  auto vdr_single = run("single-loss", "failover", cfg);
  cfg.fault_plan = Storm();
  auto vdr_storm = run("storm", "failover", cfg);

  table.Print(std::cout);
  std::printf("\n");

  expect(healthy.degraded_reads == 0 && healthy.streams_paused == 0 &&
             healthy.displays_interrupted == 0,
         "healthy run shows zero degraded activity");
  expect(single_remap.degraded_reads > 0,
         "single-disk loss is absorbed by remapped reads");
  expect(single_remap.streams_paused < single_pause.streams_paused,
         "remapping absorbs the outage in-flight: fewer pauses than the "
         "pause-only policy");
  expect(static_cast<double>(single_remap.displays_interrupted) <=
             0.05 * static_cast<double>(single_remap.displays_completed),
         "single-disk loss interrupts under 5% of completed displays");
  expect(single_remap.displays_per_hour >= healthy.displays_per_hour * 0.9,
         "single-disk loss costs at most 10% throughput with remapping");
  expect(single_remap.hiccups == 0 && storm_remap.hiccups == 0 &&
             single_pause.hiccups == 0 && storm_pause.hiccups == 0,
         "delivery stays hiccup-free in every degraded run");
  expect(storm_remap.displays_per_hour >= storm_pause.displays_per_hour,
         "remapping sustains at least the pause-only throughput in a storm");
  // A handful of reconstruct-policy pauses can still be parked when the
  // measurement window closes (the high churn of short pauses under
  // saturation); everything else must balance exactly.
  auto unresolved = [](const ExperimentResult& r) {
    return r.streams_paused - r.streams_resumed - r.displays_interrupted;
  };
  expect(unresolved(single_remap) == 0 && unresolved(storm_remap) == 0 &&
             unresolved(single_pause) == 0 && unresolved(storm_pause) == 0,
         "every pause resolves into a resume or a clean interruption");
  expect(unresolved(single_recon) >= 0 && unresolved(single_recon) <= 8 &&
             unresolved(storm_recon) >= 0 && unresolved(storm_recon) <= 8,
         "reconstruct-policy pauses resolve, modulo a window-close tail");
  expect(single_recon.reconstructed_reads > 0,
         "parity reconstruction substitutes reads during the outage");
  expect(single_recon.mean_resume_latency_sec <
             single_pause.mean_resume_latency_sec,
         "reconstruction's fallback pauses are far shorter than pause-only "
         "parks");
  expect(single_recon.displays_per_hour >= single_pause.displays_per_hour,
         "reconstruct sustains at least pause-only throughput on a single "
         "loss");
  expect(vdr_single.failovers > 0,
         "VDR fails displays over to surviving replicas");
  expect(vdr_single.displays_per_hour >= vdr_healthy.displays_per_hour * 0.8,
         "VDR failover holds 80% of healthy throughput on a single loss");
  expect(vdr_storm.displays_completed > 0,
         "VDR keeps completing displays through the storm");

  std::printf("\n%s\n", failures == 0 ? "All degradation checks passed."
                                      : "Some degradation checks FAILED.");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stagger

int main() { return stagger::Run(); }
