// E13 — graceful degradation under disk faults, on the 1/10-scale
// Table 3 system (100 disks, 200 objects, ~2-minute displays, skewed
// access).  Three fault scenarios —
//
//   * healthy:     no faults (the paper's operating assumption);
//   * single-loss: one disk fails mid-measurement and recovers 30 min
//                  later (the canonical RAID-style outage);
//   * storm:       three staggered failures plus transient stalls;
//
// — crossed with the striped schemes' degraded policies (remap vs
// pause-only) and the VDR baseline's cluster failover.  Rows report
// throughput alongside the degraded-mode outcome counters: remapped
// reads, pauses/resumes, interrupted displays, resume latency, and
// (for VDR) failovers.  The headline checks: with remapping enabled a
// single-disk outage costs a few percent of throughput, parks far fewer
// streams than the pause-only ablation, and interrupts only a small
// tail of displays (the farm runs at 40-station saturation, so some
// paused streams cannot re-admit before the outage ends).
//
// E15 — latent sector errors, scrub on vs. off.  The same system takes
// a burst of media corruptions early in the measurement window.  With
// the scrubber off the errors sit in the media forever (the display
// path detects the ones viewers happen to read, but nothing repairs
// them); with the scrubber on every error is found and repaired on
// idle bandwidth, the run reports a finite mean time-to-repair, and
// throughput is statistically unchanged — scrubbing rides the shared
// background budget below rebuild priority, never display bandwidth.
//
// Flags:  --quick   shorter warmup/measure windows
//         --csv     machine-readable tables
//         --report  append E15 wall-clock rows to the scheduler bench
//                   report (the perf-smoke regression gate)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "bench_report.h"
#include "server/experiment.h"
#include "util/table.h"

namespace stagger {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

ExperimentConfig Base(Scheme scheme, bool quick) {
  ExperimentConfig cfg;
  cfg.scheme = scheme;
  cfg.num_disks = 100;
  cfg.num_objects = 200;
  cfg.subobjects_per_object = 200;  // ~121 s displays
  cfg.preload_objects = 30;
  cfg.stations = 40;
  cfg.geometric_mean = 8.0;
  cfg.warmup = quick ? SimTime::Minutes(15) : SimTime::Minutes(30);
  cfg.measure = quick ? SimTime::Hours(1) : SimTime::Hours(2);
  return cfg;
}

// One disk lost for 30 minutes, mid-measurement.
FaultPlan SingleLoss() {
  FaultPlan plan;
  plan.FailAt(13, SimTime::Minutes(60)).RecoverAt(13, SimTime::Minutes(90));
  return plan;
}

// Three staggered outages plus short stalls across the farm.
FaultPlan Storm() {
  FaultPlan plan;
  plan.FailAt(13, SimTime::Minutes(45)).RecoverAt(13, SimTime::Minutes(75));
  plan.FailAt(47, SimTime::Minutes(60)).RecoverAt(47, SimTime::Minutes(100));
  plan.FailAt(81, SimTime::Minutes(90)).RecoverAt(81, SimTime::Minutes(110));
  plan.StallAt(5, SimTime::Minutes(50), SimTime::Seconds(30));
  plan.StallAt(29, SimTime::Minutes(70), SimTime::Seconds(45));
  plan.StallAt(62, SimTime::Minutes(95), SimTime::Seconds(30));
  return plan;
}

// A burst of media corruptions shortly after warmup: twenty cells on
// twenty disks, spread across the subobject space.  No outages — the
// scenario isolates the latent-error path.
FaultPlan LatentBurst() {
  FaultPlan plan;
  for (int32_t i = 0; i < 20; ++i) {
    const DiskId disk = (7 * i + 3) % 100;
    const int64_t row = (17 * i) % 200;
    plan.LatentAt(disk, SimTime::Minutes(20) + SimTime::Seconds(30 * i), row,
                  row);
  }
  return plan;
}

// E15: the same saturated system with latent sector errors, scrub off
// vs. on (plus a verification-off ablation that ships corrupt frames).
int RunLatentScenario(bool quick, bool csv, bool report_json) {
  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("[%s] %s\n", ok ? "OK  " : "FAIL", what);
    if (!ok) ++failures;
  };

  std::printf("\nE15: latent sector errors, scrub on vs. off (same system, "
              "20 corrupt\ncells injected ~20 min in, reconstruct policy, "
              "parity + 2 spares)\n\n");

  auto base = [&] {
    ExperimentConfig cfg = Base(Scheme::kSimpleStriping, quick);
    // Moderate load, not the E13 saturation point: a scrubber confined
    // to idle bandwidth needs idle bandwidth to exist.  (At 40-station
    // saturation every disk-slot is taken every interval and scrub
    // progress truthfully drops toward zero — that starvation behavior
    // is covered by the budget-arbiter unit tests, not measured here.)
    cfg.stations = 16;
    cfg.parity = true;
    cfg.num_spares = 2;
    cfg.degraded_policy = DegradedPolicy::kReconstruct;
    cfg.fault_plan = LatentBurst();
    return cfg;
  };

  const auto sweep_start = std::chrono::steady_clock::now();

  ExperimentConfig cfg = base();
  auto scrub_off = RunExperiment(cfg);
  STAGGER_CHECK(scrub_off.ok()) << scrub_off.status();

  cfg = base();
  cfg.scrub = true;
  auto scrub_on = RunExperiment(cfg);
  STAGGER_CHECK(scrub_on.ok()) << scrub_on.status();

  // Ablation: no verification at all — corrupt fragments reach viewers.
  cfg = base();
  cfg.parity = false;
  cfg.num_spares = 0;
  cfg.degraded_policy = DegradedPolicy::kNone;
  auto unverified = RunExperiment(cfg);
  STAGGER_CHECK(unverified.ok()) << unverified.status();

  const double sweep_seconds = SecondsSince(sweep_start);

  Table table({"row", "displays_per_hour", "injected", "detected", "repaired",
               "unrepaired", "mttr_s", "corrupt_caught", "corrupt_delivered",
               "scrub_stripes", "budget_viol"});
  auto add = [&](const char* row, const ExperimentResult& r) {
    table.AddRowValues(row, r.displays_per_hour, r.latent_errors_injected,
                       r.latent_errors_detected, r.latent_errors_repaired,
                       r.latent_errors_unrepaired, r.mean_time_to_repair_sec,
                       r.corrupt_reads_detected, r.corrupt_frames_delivered,
                       r.scrub_stripes_verified,
                       r.background_budget_violations);
  };
  add("scrub-off", *scrub_off);
  add("scrub-on", *scrub_on);
  add("unverified", *unverified);
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");

  expect(scrub_off->latent_errors_injected == 20 &&
             scrub_on->latent_errors_injected == 20,
         "both runs take the same 20 corrupt cells");
  expect(scrub_off->latent_errors_unrepaired > 0,
         "scrub-off leaves latent errors in the media");
  expect(scrub_off->mean_time_to_repair_sec == 0.0,
         "scrub-off repairs nothing (detection without repair)");
  expect(scrub_on->latent_errors_unrepaired == 0 &&
             scrub_on->latent_errors_repaired ==
                 scrub_on->latent_errors_injected,
         "scrub-on repairs every injected error");
  expect(scrub_on->mean_time_to_repair_sec > 0.0,
         "scrub-on reports a finite mean time-to-repair");
  expect(scrub_off->corrupt_frames_delivered == 0 &&
             scrub_on->corrupt_frames_delivered == 0,
         "fault-aware policies never ship a corrupt frame");
  expect(unverified->corrupt_frames_delivered > 0,
         "the no-verification ablation does ship corrupt frames");
  expect(scrub_on->background_budget_violations == 0,
         "scrub + rebuild stay inside the idle-bandwidth budget");
  expect(scrub_on->hiccups == 0 && scrub_off->hiccups == 0,
         "delivery stays hiccup-free with the scrubber running");
  expect(scrub_on->displays_per_hour >= scrub_off->displays_per_hour * 0.97,
         "scrubbing costs at most 3% throughput (idle bandwidth only)");

  if (report_json) {
    BenchReport report("scheduler");
    report.MergeFromJsonFile(report.DefaultPath());
    // MTTR as a latency row (1 item, seconds of wall time) plus the
    // sweep's wall clock; both land in the perf-smoke regression gate.
    report.AddWallClock("E15_LatentMTTR_ScrubOn", 1,
                        scrub_on->mean_time_to_repair_sec);
    report.AddWallClock("E15_LatentSweep", 3, sweep_seconds);
    std::printf("sweep wall clock: %.3f s for 3 experiments\n",
                sweep_seconds);
    if (!report.WriteJson(report.DefaultPath())) return 1;
    std::printf("wrote %s\n", report.DefaultPath().c_str());
  }
  return failures;
}

int Run(bool quick, bool csv, bool report_json) {
  // --quick runs only the E15 latent-error scenario (with shortened
  // windows) — the part the perf-smoke gate exercises.  The full E13
  // degradation matrix needs the 2 h windows its fault plans assume.
  if (quick) {
    const int failures = RunLatentScenario(quick, csv, report_json);
    std::printf("\n%s\n", failures == 0 ? "All degradation checks passed."
                                        : "Some degradation checks FAILED.");
    return failures == 0 ? 0 : 1;
  }
  Table table({"scheme", "scenario", "policy", "displays_per_hour",
               "degraded_reads", "reconstructed", "paused", "resumed",
               "interrupted", "resume_lat_s", "failovers", "rebuilds"});
  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("[%s] %s\n", ok ? "OK  " : "FAIL", what);
    if (!ok) ++failures;
  };
  auto run = [&](const char* scenario, const char* policy,
                 const ExperimentConfig& cfg) {
    auto result = RunExperiment(cfg);
    STAGGER_CHECK(result.ok()) << result.status();
    table.AddRowValues(SchemeName(cfg.scheme), scenario, policy,
                       result->displays_per_hour, result->degraded_reads,
                       result->reconstructed_reads, result->streams_paused,
                       result->streams_resumed, result->displays_interrupted,
                       result->mean_resume_latency_sec, result->failovers,
                       result->rebuilds_completed);
    return *result;
  };

  std::printf("Degraded-mode behavior under disk faults (1/10-scale Table 3: "
              "D=100, 200\nobjects, 40 stations, geometric mean 8, 2 h "
              "window)\n\n");

  // Striped scheme, three scenarios under the remap-first policy.  The
  // E13 scenario plans pin events to absolute minutes, so this matrix
  // always runs the full windows.
  ExperimentConfig cfg = Base(Scheme::kSimpleStriping, /*quick=*/false);
  auto healthy = run("healthy", "remap", cfg);
  cfg.fault_plan = SingleLoss();
  auto single_remap = run("single-loss", "remap", cfg);
  cfg.fault_plan = Storm();
  auto storm_remap = run("storm", "remap", cfg);

  // Pause-only ablation: what remapping buys.
  cfg = Base(Scheme::kSimpleStriping, /*quick=*/false);
  cfg.degraded_policy = DegradedPolicy::kPause;
  cfg.fault_plan = SingleLoss();
  auto single_pause = run("single-loss", "pause", cfg);
  cfg.fault_plan = Storm();
  auto storm_pause = run("storm", "pause", cfg);

  // Parity + reconstruction: degraded reads re-derive the lost fragment
  // from survivors + parity inside the same interval, and failed slots
  // rebuild onto hot spares on idle bandwidth.
  cfg = Base(Scheme::kSimpleStriping, /*quick=*/false);
  cfg.parity = true;
  cfg.num_spares = 2;
  cfg.degraded_policy = DegradedPolicy::kReconstruct;
  cfg.fault_plan = SingleLoss();
  auto single_recon = run("single-loss", "reconstruct", cfg);
  cfg.fault_plan = Storm();
  auto storm_recon = run("storm", "reconstruct", cfg);

  // VDR baseline: the same outages become cluster failovers.
  cfg = Base(Scheme::kVdr, /*quick=*/false);
  auto vdr_healthy = run("healthy", "failover", cfg);
  cfg.fault_plan = SingleLoss();
  auto vdr_single = run("single-loss", "failover", cfg);
  cfg.fault_plan = Storm();
  auto vdr_storm = run("storm", "failover", cfg);

  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");

  expect(healthy.degraded_reads == 0 && healthy.streams_paused == 0 &&
             healthy.displays_interrupted == 0,
         "healthy run shows zero degraded activity");
  expect(single_remap.degraded_reads > 0,
         "single-disk loss is absorbed by remapped reads");
  expect(single_remap.streams_paused < single_pause.streams_paused,
         "remapping absorbs the outage in-flight: fewer pauses than the "
         "pause-only policy");
  expect(static_cast<double>(single_remap.displays_interrupted) <=
             0.05 * static_cast<double>(single_remap.displays_completed),
         "single-disk loss interrupts under 5% of completed displays");
  expect(single_remap.displays_per_hour >= healthy.displays_per_hour * 0.9,
         "single-disk loss costs at most 10% throughput with remapping");
  expect(single_remap.hiccups == 0 && storm_remap.hiccups == 0 &&
             single_pause.hiccups == 0 && storm_pause.hiccups == 0,
         "delivery stays hiccup-free in every degraded run");
  expect(storm_remap.displays_per_hour >= storm_pause.displays_per_hour,
         "remapping sustains at least the pause-only throughput in a storm");
  // A handful of reconstruct-policy pauses can still be parked when the
  // measurement window closes (the high churn of short pauses under
  // saturation); everything else must balance exactly.
  auto unresolved = [](const ExperimentResult& r) {
    return r.streams_paused - r.streams_resumed - r.displays_interrupted;
  };
  expect(unresolved(single_remap) == 0 && unresolved(storm_remap) == 0 &&
             unresolved(single_pause) == 0 && unresolved(storm_pause) == 0,
         "every pause resolves into a resume or a clean interruption");
  expect(unresolved(single_recon) >= 0 && unresolved(single_recon) <= 8 &&
             unresolved(storm_recon) >= 0 && unresolved(storm_recon) <= 8,
         "reconstruct-policy pauses resolve, modulo a window-close tail");
  expect(single_recon.reconstructed_reads > 0,
         "parity reconstruction substitutes reads during the outage");
  expect(single_recon.mean_resume_latency_sec <
             single_pause.mean_resume_latency_sec,
         "reconstruction's fallback pauses are far shorter than pause-only "
         "parks");
  expect(single_recon.displays_per_hour >= single_pause.displays_per_hour,
         "reconstruct sustains at least pause-only throughput on a single "
         "loss");
  expect(vdr_single.failovers > 0,
         "VDR fails displays over to surviving replicas");
  expect(vdr_single.displays_per_hour >= vdr_healthy.displays_per_hour * 0.8,
         "VDR failover holds 80% of healthy throughput on a single loss");
  expect(vdr_storm.displays_completed > 0,
         "VDR keeps completing displays through the storm");

  failures += RunLatentScenario(quick, csv, report_json);

  std::printf("\n%s\n", failures == 0 ? "All degradation checks passed."
                                      : "Some degradation checks FAILED.");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stagger

int main(int argc, char** argv) {
  bool quick = false, csv = false, report_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--report") == 0) report_json = true;
  }
  return stagger::Run(quick, csv, report_json);
}
