#include "bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

namespace stagger {
namespace {

// Benchmark names are ASCII identifiers plus '/' and ':'; escape the
// few JSON-significant characters anyway so the writer is safe for any
// name.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string JsonNumber(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", x);
  return buf;
}

}  // namespace

BenchReport::BenchReport(std::string suite) : suite_(std::move(suite)) {}

void BenchReport::SetBaseline(const std::string& benchmark,
                              double ns_per_item) {
  baselines_[benchmark] = ns_per_item;
}

void BenchReport::AddRun(const std::string& name, int64_t iterations,
                         double real_ns_per_iter, double cpu_ns_per_iter,
                         double items_per_second) {
  BenchEntry candidate;
  candidate.iterations = iterations;
  candidate.repetitions = 1;
  candidate.real_ns_per_iter = real_ns_per_iter;
  candidate.cpu_ns_per_iter = cpu_ns_per_iter;
  candidate.items_per_second = items_per_second;

  auto [it, inserted] = entries_.emplace(name, candidate);
  if (inserted) return;
  const int32_t reps = it->second.repetitions + 1;
  if (candidate.NsPerItem() < it->second.NsPerItem()) it->second = candidate;
  it->second.repetitions = reps;
}

std::string BenchReport::DefaultPath() const {
  if (const char* env = std::getenv("STAGGER_BENCH_REPORT");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return "BENCH_" + suite_ + ".json";
}

bool BenchReport::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    return false;
  }

  out << "{\n";
  out << "  \"schema\": \"stagger-bench-report-v1\",\n";
  out << "  \"suite\": \"" << JsonEscape(suite_) << "\",\n";
#ifdef STAGGER_AUDIT
  out << "  \"audit_enabled\": true,\n";
#else
  out << "  \"audit_enabled\": false,\n";
#endif
#ifdef NDEBUG
  out << "  \"assertions_enabled\": false,\n";
#else
  out << "  \"assertions_enabled\": true,\n";
#endif
  out << "  \"benchmarks\": [";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\n";
    out << "      \"name\": \"" << JsonEscape(name) << "\",\n";
    out << "      \"iterations\": " << entry.iterations << ",\n";
    out << "      \"repetitions\": " << entry.repetitions << ",\n";
    out << "      \"real_ns_per_iter\": " << JsonNumber(entry.real_ns_per_iter)
        << ",\n";
    out << "      \"cpu_ns_per_iter\": " << JsonNumber(entry.cpu_ns_per_iter)
        << ",\n";
    out << "      \"items_per_second\": " << JsonNumber(entry.items_per_second)
        << ",\n";
    out << "      \"ns_per_item\": " << JsonNumber(entry.NsPerItem());
    if (const auto base = baselines_.find(name); base != baselines_.end()) {
      out << ",\n      \"baseline_ns_per_item\": "
          << JsonNumber(base->second);
      if (entry.NsPerItem() > 0) {
        out << ",\n      \"speedup_vs_baseline\": "
            << JsonNumber(base->second / entry.NsPerItem());
      }
    }
    out << "\n    }";
  }
  out << "\n  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace stagger
