#include "bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <utility>

namespace stagger {
namespace {

// Benchmark names are ASCII identifiers plus '/' and ':'; escape the
// few JSON-significant characters anyway so the writer is safe for any
// name.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string JsonNumber(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", x);
  return buf;
}

}  // namespace

BenchReport::BenchReport(std::string suite) : suite_(std::move(suite)) {}

void BenchReport::SetBaseline(const std::string& benchmark,
                              double ns_per_item) {
  baselines_[benchmark] = ns_per_item;
}

void BenchReport::AddRun(const std::string& name, int64_t iterations,
                         double real_ns_per_iter, double cpu_ns_per_iter,
                         double items_per_second) {
  BenchEntry candidate;
  candidate.iterations = iterations;
  candidate.repetitions = 1;
  candidate.real_ns_per_iter = real_ns_per_iter;
  candidate.cpu_ns_per_iter = cpu_ns_per_iter;
  candidate.items_per_second = items_per_second;

  auto [it, inserted] = entries_.emplace(name, candidate);
  if (inserted) return;
  const int32_t reps = it->second.repetitions + 1;
  if (candidate.NsPerItem() < it->second.NsPerItem()) it->second = candidate;
  it->second.repetitions = reps;
}

void BenchReport::AddWallClock(const std::string& name, int64_t items,
                               double wall_seconds) {
  const double wall_ns = wall_seconds * 1e9;
  AddRun(name, /*iterations=*/1, wall_ns, wall_ns,
         wall_seconds > 0 ? static_cast<double>(items) / wall_seconds : 0.0);
}

bool BenchReport::MergeFromJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (text.find("\"stagger-bench-report-v1\"") == std::string::npos) {
    std::fprintf(stderr, "bench_report: %s is not a v1 report, not merging\n",
                 path.c_str());
    return false;
  }

  // The writer emits one flat object per benchmark with a fixed field
  // set; a targeted scan is enough (and keeps this dependency-free).
  auto number_after = [&text](size_t from, size_t until, const char* key,
                              double fallback) {
    const size_t k = text.find(key, from);
    if (k == std::string::npos || k >= until) return fallback;
    return std::strtod(text.c_str() + k + std::strlen(key), nullptr);
  };

  size_t pos = text.find("\"benchmarks\"");
  if (pos == std::string::npos) return false;
  bool merged_any = false;
  while ((pos = text.find("\"name\": \"", pos)) != std::string::npos) {
    const size_t name_begin = pos + std::strlen("\"name\": \"");
    const size_t name_end = text.find('"', name_begin);
    if (name_end == std::string::npos) break;
    const std::string name = text.substr(name_begin, name_end - name_begin);
    const size_t block_end = text.find('}', name_end);
    if (block_end == std::string::npos) break;

    BenchEntry e;
    e.iterations = static_cast<int64_t>(
        number_after(name_end, block_end, "\"iterations\": ", 0));
    e.repetitions = static_cast<int32_t>(
        number_after(name_end, block_end, "\"repetitions\": ", 1));
    e.real_ns_per_iter =
        number_after(name_end, block_end, "\"real_ns_per_iter\": ", 0);
    e.cpu_ns_per_iter =
        number_after(name_end, block_end, "\"cpu_ns_per_iter\": ", 0);
    e.items_per_second =
        number_after(name_end, block_end, "\"items_per_second\": ", 0);

    auto [it, inserted] = entries_.emplace(name, e);
    if (!inserted) {
      const int32_t reps = it->second.repetitions + e.repetitions;
      if (e.NsPerItem() < it->second.NsPerItem()) it->second = e;
      it->second.repetitions = reps;
    }
    const double baseline =
        number_after(name_end, block_end, "\"baseline_ns_per_item\": ", 0);
    if (baseline > 0 && baselines_.find(name) == baselines_.end()) {
      baselines_[name] = baseline;
    }
    merged_any = true;
    pos = block_end;
  }
  return merged_any;
}

std::string BenchReport::DefaultPath() const {
  if (const char* env = std::getenv("STAGGER_BENCH_REPORT");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return "BENCH_" + suite_ + ".json";
}

bool BenchReport::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path.c_str());
    return false;
  }

  out << "{\n";
  out << "  \"schema\": \"stagger-bench-report-v1\",\n";
  out << "  \"suite\": \"" << JsonEscape(suite_) << "\",\n";
#ifdef STAGGER_AUDIT
  out << "  \"audit_enabled\": true,\n";
#else
  out << "  \"audit_enabled\": false,\n";
#endif
#ifdef NDEBUG
  out << "  \"assertions_enabled\": false,\n";
#else
  out << "  \"assertions_enabled\": true,\n";
#endif
  out << "  \"benchmarks\": [";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\n";
    out << "      \"name\": \"" << JsonEscape(name) << "\",\n";
    out << "      \"iterations\": " << entry.iterations << ",\n";
    out << "      \"repetitions\": " << entry.repetitions << ",\n";
    out << "      \"real_ns_per_iter\": " << JsonNumber(entry.real_ns_per_iter)
        << ",\n";
    out << "      \"cpu_ns_per_iter\": " << JsonNumber(entry.cpu_ns_per_iter)
        << ",\n";
    out << "      \"items_per_second\": " << JsonNumber(entry.items_per_second)
        << ",\n";
    out << "      \"ns_per_item\": " << JsonNumber(entry.NsPerItem());
    if (const auto base = baselines_.find(name); base != baselines_.end()) {
      out << ",\n      \"baseline_ns_per_item\": "
          << JsonNumber(base->second);
      if (entry.NsPerItem() > 0) {
        out << ",\n      \"speedup_vs_baseline\": "
            << JsonNumber(base->second / entry.NsPerItem());
      }
    }
    out << "\n    }";
  }
  out << "\n  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace stagger
