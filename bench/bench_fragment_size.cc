// E4 — Section 3.1 fragment-size analysis on the IMPRIMIS Sabre 1.2 GB
// drive: cluster service time S(C_i), wasted-bandwidth fraction,
// effective disk bandwidth, minimum buffer memory (Equation 1), and the
// worst-case transfer-initiation delay on a 90-disk / 30-cluster
// system, as a function of fragment size in cylinders.
//
// Paper checkpoints: one cylinder reads in 250 ms; S = 301.83 ms /
// 555.83 ms for 1 / 2 cylinders; 17.2 % / ~10 % wasted bandwidth; ~9 s /
// ~16 s worst-case initiation delay.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "disk/disk_parameters.h"
#include "util/table.h"

namespace stagger {
namespace {

int Run() {
  const DiskParameters sabre = DiskParameters::Sabre1_2GB();

  std::printf("Section 3.1 analysis — IMPRIMIS Sabre 1.2 GB "
              "(1635 cyl x 756 kB, tfr = 24.19 mbps)\n");
  std::printf("T_switch = max seek + max latency = %.2f ms, "
              "cylinder read = %.2f ms\n\n",
              sabre.TSwitch().millis(), sabre.CylinderReadTime().millis());

  Table table({"fragment_cyl", "S(Ci)_ms", "wasted_bw_%", "eff_bw_mbps",
               "min_buffer_kB", "worst_init_delay_s_30cl"});
  for (int64_t cyl = 1; cyl <= 8; ++cyl) {
    const SimTime service = sabre.ServiceTime(cyl);
    const double wasted = 100.0 * sabre.WastedBandwidthFraction(cyl);
    const Bandwidth effective = sabre.EffectiveBandwidthCylinders(cyl);
    const DataSize buffer =
        sabre.MinBufferMemory(sabre.cylinder_capacity * cyl);
    // 90 disks / 30 clusters: a new request waits at most (R-1)
    // service times for the cluster holding X_0 (Section 3.1).
    const double worst_delay = service.seconds() * (30 - 1);
    table.AddRowValues(cyl, service.millis(), wasted, effective.mbps(),
                       static_cast<double>(buffer.bytes()) / 1000.0,
                       worst_delay);
  }
  table.Print(std::cout);

  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("[%s] %s\n", ok ? "OK  " : "FAIL", what);
    if (!ok) ++failures;
  };
  expect(std::abs(sabre.CylinderReadTime().millis() - 250.0) < 1.0,
         "one cylinder reads in ~250 ms");
  expect(std::abs(sabre.ServiceTime(1).millis() - 301.83) < 1.0,
         "S(Ci) ~ 301.83 ms at 1 cylinder");
  expect(std::abs(sabre.ServiceTime(2).millis() - 555.83) < 1.0,
         "S(Ci) ~ 555.83 ms at 2 cylinders");
  expect(std::abs(100.0 * sabre.WastedBandwidthFraction(1) - 17.2) < 0.5,
         "~17.2% of bandwidth wasted at 1 cylinder");
  expect(std::abs(100.0 * sabre.WastedBandwidthFraction(2) - 10.0) < 0.5,
         "~10% wasted at 2 cylinders");
  expect(std::abs(sabre.ServiceTime(1).seconds() * 29 - 9.0) < 0.5,
         "~9 s worst-case initiation delay at 1 cylinder (30 clusters)");
  expect(std::abs(sabre.ServiceTime(2).seconds() * 29 - 16.0) < 0.5,
         "~16 s worst-case initiation delay at 2 cylinders");
  std::printf("\n%s\n", failures == 0 ? "All paper checkpoints matched."
                                      : "Some checkpoints FAILED.");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stagger

int main() { return stagger::Run(); }
