// Machine-readable benchmark reports.  BenchReport collects
// per-benchmark timings (typically from a google-benchmark run via
// CapturingReporter) and writes a small JSON file — BENCH_<suite>.json —
// that CI archives and diffs against a checked-in baseline
// (tools/check_bench_regression.py).
//
// Repetitions collapse to the minimum observed time per benchmark: on a
// shared box the minimum is the least-contended sample and by far the
// most reproducible statistic (bursty host load only ever inflates a
// run, never deflates it).

#ifndef STAGGER_BENCH_BENCH_REPORT_H_
#define STAGGER_BENCH_BENCH_REPORT_H_

#include <cstdint>
#include <map>
#include <string>

namespace stagger {

/// \brief One captured benchmark line, reduced over repetitions.
struct BenchEntry {
  int64_t iterations = 0;       ///< of the kept (fastest) repetition
  int32_t repetitions = 0;      ///< runs collapsed into this entry
  double real_ns_per_iter = 0;  ///< wall time per iteration
  double cpu_ns_per_iter = 0;   ///< CPU time per iteration
  /// Throughput in benchmark "items" (e.g. scheduler intervals) per
  /// second; 0 when the benchmark reports no item count.
  double items_per_second = 0;

  /// CPU nanoseconds per item: the per-item cost when the benchmark
  /// counts items, otherwise the per-iteration cost.
  double NsPerItem() const {
    return items_per_second > 0 ? 1e9 / items_per_second : cpu_ns_per_iter;
  }
};

/// \brief Accumulates benchmark results and serializes them to JSON.
class BenchReport {
 public:
  explicit BenchReport(std::string suite);

  /// Registers the pre-change reference cost for `benchmark` so the
  /// report can state a speedup next to the fresh measurement.
  void SetBaseline(const std::string& benchmark, double ns_per_item);

  /// Records one repetition; an existing entry for `name` is replaced
  /// only if this repetition ran faster (per item).
  void AddRun(const std::string& name, int64_t iterations,
              double real_ns_per_iter, double cpu_ns_per_iter,
              double items_per_second);

  /// Records a single end-to-end wall-clock measurement: `wall_seconds`
  /// spent processing `items` items (one "iteration" overall).  Keeps
  /// the faster of repeated records, like AddRun.
  void AddWallClock(const std::string& name, int64_t items,
                    double wall_seconds);

  /// Merges the entries of an existing stagger-bench-report-v1 file
  /// (as written by WriteJson) into this report, so a wall-clock driver
  /// can extend the microbenchmark report instead of clobbering it.
  /// Per benchmark the faster sample wins.  Returns false when the file
  /// is absent or not a report; the report is left usable either way.
  bool MergeFromJsonFile(const std::string& path);

  /// BENCH_<suite>.json, or $STAGGER_BENCH_REPORT when set.
  std::string DefaultPath() const;

  /// Writes the report; returns false (with a message on stderr) on I/O
  /// failure.
  bool WriteJson(const std::string& path) const;

  const std::map<std::string, BenchEntry>& entries() const {
    return entries_;
  }

 private:
  std::string suite_;
  std::map<std::string, BenchEntry> entries_;
  std::map<std::string, double> baselines_;
};

}  // namespace stagger

#ifdef BENCHMARK_BENCHMARK_H_  // google-benchmark included first: offer the bridge.
namespace stagger {

/// \brief ConsoleReporter that also feeds every iteration run into a
/// BenchReport.  Aggregate rows (mean/median/stddev) pass through to
/// the console but are not captured; the report keeps the per-run
/// minimum instead.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const auto items = run.counters.find("items_per_second");
      report_->AddRun(run.benchmark_name(),
                      static_cast<int64_t>(run.iterations),
                      run.GetAdjustedRealTime(), run.GetAdjustedCPUTime(),
                      items == run.counters.end() ? 0.0
                                                  : items->second.value);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
};

}  // namespace stagger
#endif  // BENCHMARK_H_

#endif  // STAGGER_BENCH_BENCH_REPORT_H_
