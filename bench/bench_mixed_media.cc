// E10 — the Section 3.1/3.2 mixed-media motivation, measured.  With
// objects Y (120 mbps, M = 6) and Z (60 mbps, M = 3) on 20 mbps disks,
// a naive design sizes physical clusters for the most demanding type
// (6 disks) and serves Z with half of each cluster idle, "sacrificing
// 50% of the available disk bandwidth".  Staggered striping allocates
// each display exactly its own degree, so no bandwidth is wasted.
//
// Both designs run on the same scheduler: the naive one simply rounds
// every request's degree up to 6 (cluster-aligned), staggered striping
// uses the true degrees.

#include <cstdio>
#include <functional>
#include <iostream>

#include "core/interval_scheduler.h"
#include "disk/disk_array.h"
#include "sim/simulator.h"
#include "util/table.h"

namespace stagger {
namespace {

struct RunResult {
  int64_t y_displays = 0;
  int64_t z_displays = 0;
  double disk_utilization = 0.0;
  double delivered_mbit_per_disk_sec = 0.0;
  int64_t hiccups = 0;
};

/// Closed loop: `y_stations` stations watching Y and `z_stations`
/// watching Z for two hours on 36 disks.
RunResult RunScenario(bool naive_clusters, int32_t y_stations,
                      int32_t z_stations) {
  constexpr int32_t kDisks = 36;
  constexpr int64_t kSubobjects = 120;  // ~73 s displays
  const SimTime interval = SimTime::Millis(605);

  Simulator sim;
  auto disks = DiskArray::Create(kDisks, DiskParameters::Evaluation());
  STAGGER_CHECK(disks.ok());
  SchedulerConfig config;
  config.stride = naive_clusters ? 6 : 3;  // gcd with degrees stays clean
  config.interval = interval;
  auto sched = IntervalScheduler::Create(&sim, &*disks, config);
  STAGGER_CHECK(sched.ok());

  RunResult result;
  std::function<void(int32_t, bool)> issue = [&](int32_t station, bool is_y) {
    DisplayRequest req;
    req.object = station;
    // True degrees: Y = 6, Z = 3.  The naive design reserves a whole
    // 6-disk cluster either way.
    req.degree = is_y ? 6 : (naive_clusters ? 6 : 3);
    req.start_disk = (station * config.stride) % kDisks;
    req.num_subobjects = kSubobjects;
    req.on_completed = [&, station, is_y] {
      ++(is_y ? result.y_displays : result.z_displays);
      issue(station, is_y);
    };
    STAGGER_CHECK((*sched)->Submit(std::move(req)).ok());
  };
  for (int32_t s = 0; s < y_stations; ++s) issue(s, true);
  for (int32_t s = 0; s < z_stations; ++s) issue(100 + s, false);

  sim.RunUntil(SimTime::Hours(2));
  result.disk_utilization = disks->MeanUtilization();
  result.hiccups = (*sched)->metrics().hiccups;
  // Useful bandwidth actually delivered to stations, per disk.
  const double mbits =
      (static_cast<double>(result.y_displays) * 6 +
       static_cast<double>(result.z_displays) * 3) *
      static_cast<double>(kSubobjects) * DataSize::MB(1.512).megabits();
  result.delivered_mbit_per_disk_sec =
      mbits / kDisks / SimTime::Hours(2).seconds();
  return result;
}

int Run() {
  std::printf("Mixed media types (Y: 120 mbps M=6, Z: 60 mbps M=3) on 36 "
              "disks,\nnaive max-degree clusters vs staggered striping "
              "(2 h closed loop)\n\n");

  Table table({"design", "Y_stations", "Z_stations", "Y_displays",
               "Z_displays", "useful_mbps_per_disk", "hiccups"});
  int failures = 0;
  RunResult naive_result{}, staggered_result{};
  for (const auto& [y, z] : {std::pair<int32_t, int32_t>{3, 8},
                             std::pair<int32_t, int32_t>{0, 12},
                             std::pair<int32_t, int32_t>{6, 0}}) {
    RunResult naive = RunScenario(true, y, z);
    RunResult staggered = RunScenario(false, y, z);
    table.AddRowValues("naive-6-disk-clusters", y, z, naive.y_displays,
                       naive.z_displays, naive.delivered_mbit_per_disk_sec,
                       naive.hiccups);
    table.AddRowValues("staggered-striping", y, z, staggered.y_displays,
                       staggered.z_displays,
                       staggered.delivered_mbit_per_disk_sec,
                       staggered.hiccups);
    if (naive.hiccups || staggered.hiccups) ++failures;
    if (y == 0) {
      naive_result = naive;
      staggered_result = staggered;
    }
  }
  table.Print(std::cout);

  auto expect = [&](bool ok, const char* what) {
    std::printf("[%s] %s\n", ok ? "OK  " : "FAIL", what);
    if (!ok) ++failures;
  };
  // Paper: serving Z from max-degree clusters sacrifices 50% of the
  // disk bandwidth — an all-Z workload should roughly double its
  // throughput under staggered striping.
  expect(static_cast<double>(staggered_result.z_displays) >=
             1.8 * static_cast<double>(naive_result.z_displays),
         "all-Z workload: staggered striping ~2x the naive throughput");
  std::printf("\n%s\n", failures == 0 ? "All mixed-media checks passed."
                                      : "Some mixed-media checks FAILED.");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stagger

int main() { return stagger::Run(); }
