// E11 — the paper's Section 5 future-work question: "How can we avoid
// using the maximum seek and latency times?  We need simulation ...
// results that show how much we can increase our effective bandwidth."
//
// The interval scheduler budgets every activation at the worst case
// (T_switch = max seek + max rotation).  This bench drives the
// event-level disk simulator with three placement policies and compares
// the measured effective bandwidth against the worst-case and
// average-case analytical models, plus the buffer a schedule needs if
// it budgets at the measured mean instead of the worst case.

#include <cstdio>
#include <iostream>

#include "disk/disk_sim.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/table.h"

namespace stagger {
namespace {

struct Measured {
  double effective_mbps;
  double mean_service_ms;
  double max_service_ms;
};

/// Runs `reads` 1-cylinder reads with the given placement policy:
///  "random"   — uniform cylinders (staggered striping's steady state),
///  "half"     — uniform over half the platter (partitioned layout),
///  "adjacent" — sequential cylinders (k = D clustering).
Measured Drive(const DiskParameters& params, const char* policy, int reads,
               int64_t fragment_cylinders) {
  Simulator sim;
  SimulatedDisk disk(&sim, params, /*seed=*/7);
  Rng rng(13);
  int64_t next = 0;
  std::function<void()> submit = [&] {
    int64_t cylinder = 0;
    if (std::string(policy) == "random") {
      cylinder = static_cast<int64_t>(rng.NextBounded(
          static_cast<uint64_t>(params.num_cylinders - fragment_cylinders)));
    } else if (std::string(policy) == "half") {
      cylinder = static_cast<int64_t>(rng.NextBounded(
          static_cast<uint64_t>(params.num_cylinders / 2)));
    } else {  // adjacent
      cylinder = next;
      next = (next + fragment_cylinders) %
             (params.num_cylinders - fragment_cylinders);
    }
    Status st = disk.SubmitRead(cylinder, fragment_cylinders, nullptr);
    STAGGER_CHECK(st.ok()) << st;
  };
  for (int i = 0; i < reads; ++i) submit();
  sim.Run();
  return Measured{disk.MeasuredEffectiveBandwidth().mbps(),
                  disk.service_stats().mean() * 1e3,
                  disk.service_stats().max() * 1e3};
}

int Run() {
  const DiskParameters sabre = DiskParameters::Sabre1_2GB();
  constexpr int kReads = 20000;

  std::printf("Section 5 future work: effective bandwidth without "
              "worst-case seek budgeting\n(IMPRIMIS Sabre, %d one-cylinder "
              "reads per policy)\n\n",
              kReads);

  const double worst_case = sabre.EffectiveBandwidthCylinders(1).mbps();
  // Average-case analytical model: avg seek + avg latency per read.
  const double avg_overhead =
      (sabre.avg_seek + sabre.avg_latency).seconds();
  const double cyl_sec = sabre.CylinderReadTime().seconds();
  const double avg_case = sabre.cylinder_capacity.megabits() /
                          (cyl_sec + avg_overhead);

  Table table({"placement", "measured_mbps", "gain_vs_worst_case_%",
               "mean_service_ms", "max_service_ms"});
  int failures = 0;
  Measured random_m{}, adjacent_m{};
  for (const char* policy : {"random", "half", "adjacent"}) {
    Measured m = Drive(sabre, policy, kReads, 1);
    table.AddRowValues(policy, m.effective_mbps,
                       100.0 * (m.effective_mbps / worst_case - 1.0),
                       m.mean_service_ms, m.max_service_ms);
    if (std::string(policy) == "random") random_m = m;
    if (std::string(policy) == "adjacent") adjacent_m = m;
  }
  table.Print(std::cout);
  std::printf("\nanalytical worst-case (T_switch budget): %.2f mbps\n",
              worst_case);
  std::printf("analytical average-case (avg seek+latency): %.2f mbps\n",
              avg_case);

  auto expect = [&](bool ok, const char* what) {
    std::printf("[%s] %s\n", ok ? "OK  " : "FAIL", what);
    if (!ok) ++failures;
  };
  expect(random_m.effective_mbps > worst_case,
         "measured random-placement bandwidth beats the worst-case budget");
  expect(random_m.effective_mbps < sabre.transfer_rate.mbps(),
         "and stays below the raw transfer rate");
  expect(adjacent_m.effective_mbps > random_m.effective_mbps,
         "adjacent placement (k = D clustering) is the fastest — the "
         "paper's 'saves less than 10%' observation");
  expect(random_m.max_service_ms <=
             sabre.ServiceTime(1).millis() + 0.5,
         "no observed service exceeds the worst-case interval — the "
         "T_switch budget is safe (zero hiccup risk)");
  const double gain = 100.0 * (random_m.effective_mbps / worst_case - 1.0);
  std::printf("\nAnswer to the paper's question: budgeting at measured "
              "random-seek cost instead of\nthe worst case frees ~%.1f%% "
              "additional effective bandwidth, at the price of per-read\n"
              "variance that the Equation-1 buffer (one T_switch of data) "
              "absorbs.\n",
              gain);
  std::printf("\n%s\n", failures == 0 ? "All seek-model checks passed."
                                      : "Some seek-model checks FAILED.");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stagger

int main() { return stagger::Run(); }
