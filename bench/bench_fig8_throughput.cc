// E1 — Figure 8: system throughput (displays per hour) vs. number of
// display stations, simple striping vs. virtual data replication, for
// the three object-popularity distributions of Section 4.1 (truncated
// geometric with means 10 / 20 / 43.5 — highly skewed, skewed, and
// near-uniform).  One sub-table per distribution, like Figure 8's
// panels (a), (b), (c).
//
// Flags:  --quick   fewer station points and a shorter run
//         --csv     machine-readable output

#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "server/experiment.h"
#include "util/table.h"

namespace stagger {
namespace {

int Run(bool quick, bool csv) {
  const std::vector<int32_t> stations =
      quick ? std::vector<int32_t>{4, 16, 64, 256}
            : std::vector<int32_t>{1, 2, 4, 8, 16, 32, 64, 128, 256};
  const double means[] = {10.0, 20.0, 43.5};
  const char* labels[] = {"(a) mean 10, highly skewed", "(b) mean 20, skewed",
                          "(c) mean 43.5, near-uniform"};

  std::printf("Figure 8: throughput vs display stations "
              "(Table 3 system: D=1000, M=5, B_Display=100 mbps,\n"
              "B_Disk=20 mbps, B_Tertiary=40 mbps, 2000 objects x 3000 "
              "subobjects, closed workload)\n\n");

  for (int g = 0; g < 3; ++g) {
    Table table({"stations", "striping_dph", "vdr_dph", "improvement_%",
                 "striping_lat_s", "vdr_lat_s", "vdr_replicas"});
    for (int32_t n : stations) {
      ExperimentConfig base;
      base.geometric_mean = means[g];
      base.stations = n;
      if (quick) {
        base.warmup = SimTime::Hours(1);
        base.measure = SimTime::Hours(5);
      }

      base.scheme = Scheme::kSimpleStriping;
      auto striping = RunExperiment(base);
      STAGGER_CHECK(striping.ok()) << striping.status();

      base.scheme = Scheme::kVdr;
      auto vdr = RunExperiment(base);
      STAGGER_CHECK(vdr.ok()) << vdr.status();

      const double improvement =
          vdr->displays_per_hour <= 0.0
              ? 0.0
              : 100.0 * (striping->displays_per_hour / vdr->displays_per_hour -
                         1.0);
      table.AddRowValues(n, striping->displays_per_hour, vdr->displays_per_hour,
                         improvement, striping->mean_startup_latency_sec,
                         vdr->mean_startup_latency_sec, vdr->replications);
      STAGGER_CHECK(striping->hiccups == 0)
          << "striping produced hiccups — scheduler bug";
    }
    std::printf("--- %s ---\n", labels[g]);
    if (csv) {
      table.PrintCsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace stagger

int main(int argc, char** argv) {
  bool quick = false, csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
  }
  return stagger::Run(quick, csv);
}
