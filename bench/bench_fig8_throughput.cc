// E1 — Figure 8: system throughput (displays per hour) vs. number of
// display stations, simple striping vs. virtual data replication, for
// the three object-popularity distributions of Section 4.1 (truncated
// geometric with means 10 / 20 / 43.5 — highly skewed, skewed, and
// near-uniform).  One sub-table per distribution, like Figure 8's
// panels (a), (b), (c).
//
// Flags:  --quick   fewer station points and a shorter run
//         --csv     machine-readable output
//         --report  append end-to-end wall-clock rows to the scheduler
//                   bench report (BENCH_scheduler.json or
//                   $STAGGER_BENCH_REPORT), merging with any existing
//                   microbenchmark entries; implies an extra D=10000
//                   scale point so the event-kernel cost is measured at
//                   ten times the paper's array size

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "server/experiment.h"
#include "util/table.h"

namespace stagger {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int Run(bool quick, bool csv, bool report_json) {
  const std::vector<int32_t> stations =
      quick ? std::vector<int32_t>{4, 16, 64, 256}
            : std::vector<int32_t>{1, 2, 4, 8, 16, 32, 64, 128, 256};
  const double means[] = {10.0, 20.0, 43.5};
  const char* labels[] = {"(a) mean 10, highly skewed", "(b) mean 20, skewed",
                          "(c) mean 43.5, near-uniform"};

  const auto matrix_start = std::chrono::steady_clock::now();
  int64_t matrix_cells = 0;
  double admission_p50 = 0.0, admission_p95 = 0.0, admission_p99 = 0.0;

  // Striping cells timed on their own so the sharded replay below can
  // state its speedup against the serial matrix measured in this same
  // invocation (never against a number from another machine).
  struct StripingCell {
    double mean;
    int32_t stations;
    double displays_per_hour;
  };
  std::vector<StripingCell> striping_cells;
  double striping_seconds = 0.0;

  std::printf("Figure 8: throughput vs display stations "
              "(Table 3 system: D=1000, M=5, B_Display=100 mbps,\n"
              "B_Disk=20 mbps, B_Tertiary=40 mbps, 2000 objects x 3000 "
              "subobjects, closed workload)\n\n");

  for (int g = 0; g < 3; ++g) {
    Table table({"stations", "striping_dph", "vdr_dph", "improvement_%",
                 "striping_lat_s", "vdr_lat_s", "vdr_replicas"});
    for (int32_t n : stations) {
      ExperimentConfig base;
      base.geometric_mean = means[g];
      base.stations = n;
      if (quick) {
        base.warmup = SimTime::Hours(1);
        base.measure = SimTime::Hours(5);
      }

      base.scheme = Scheme::kSimpleStriping;
      const auto striping_start = std::chrono::steady_clock::now();
      auto striping = RunExperiment(base);
      striping_seconds += SecondsSince(striping_start);
      STAGGER_CHECK(striping.ok()) << striping.status();
      striping_cells.push_back({means[g], n, striping->displays_per_hour});
      // Keep the 256-station highly-skewed cell's admission-latency
      // percentiles for the report: the most contended point of the
      // matrix, where queueing (not transfer) dominates startup.
      if (report_json && g == 0 && n == 256) {
        admission_p50 = striping->admission_latency_p50_sec;
        admission_p95 = striping->admission_latency_p95_sec;
        admission_p99 = striping->admission_latency_p99_sec;
      }

      base.scheme = Scheme::kVdr;
      auto vdr = RunExperiment(base);
      STAGGER_CHECK(vdr.ok()) << vdr.status();

      const double improvement =
          vdr->displays_per_hour <= 0.0
              ? 0.0
              : 100.0 * (striping->displays_per_hour / vdr->displays_per_hour -
                         1.0);
      matrix_cells += 2;  // one striping + one VDR experiment
      table.AddRowValues(n, striping->displays_per_hour, vdr->displays_per_hour,
                         improvement, striping->mean_startup_latency_sec,
                         vdr->mean_startup_latency_sec, vdr->replications);
      STAGGER_CHECK(striping->hiccups == 0)
          << "striping produced hiccups — scheduler bug";
    }
    std::printf("--- %s ---\n", labels[g]);
    if (csv) {
      table.PrintCsv(std::cout);
    } else {
      table.Print(std::cout);
    }
    std::printf("\n");
  }
  const double matrix_seconds = SecondsSince(matrix_start);

  if (!report_json) return 0;

  // End-to-end wall clock: simulated experiments per second of host
  // time.  This is the number the event-kernel work ultimately has to
  // move — microbenchmark wins that do not show up here are noise.
  BenchReport report("scheduler");
  report.MergeFromJsonFile(report.DefaultPath());
  report.AddWallClock(quick ? "E2E_Fig8QuickMatrix" : "E2E_Fig8FullMatrix",
                      matrix_cells, matrix_seconds);
  std::printf("matrix wall clock: %.3f s for %lld experiments\n",
              matrix_seconds, static_cast<long long>(matrix_cells));

  // Admission-latency percentiles of the most contended striping cell
  // (256 stations, highly skewed), encoded as one item taking the
  // percentile's latency of wall time — ns_per_item == latency in ns.
  // The simulation is deterministic, so these reproduce exactly.
  report.AddWallClock("Fig8_AdmissionP50_256Stations", 1, admission_p50);
  report.AddWallClock("Fig8_AdmissionP95_256Stations", 1, admission_p95);
  report.AddWallClock("Fig8_AdmissionP99_256Stations", 1, admission_p99);
  std::printf("admission latency @256 stations: p50 %.3f s  p95 %.3f s  "
              "p99 %.3f s\n",
              admission_p50, admission_p95, admission_p99);

  // Scale point beyond the paper: D = 10000 disks, one striping cell.
  // Exercises the calendar ring with 10x the per-interval event cohort.
  {
    ExperimentConfig big;
    big.num_disks = 10000;
    big.stations = 64;
    big.geometric_mean = 10.0;
    big.warmup = SimTime::Hours(1);
    big.measure = SimTime::Hours(5);
    big.scheme = Scheme::kSimpleStriping;
    const auto start = std::chrono::steady_clock::now();
    auto result = RunExperiment(big);
    const double seconds = SecondsSince(start);
    STAGGER_CHECK(result.ok()) << result.status();
    STAGGER_CHECK(result->hiccups == 0) << "D=10k striping produced hiccups";
    report.AddWallClock("E2E_Fig8_D10k", /*items=*/1, seconds);
    std::printf("D=10000 striping cell: %.3f s (%.1f displays/hour)\n",
                seconds, result->displays_per_hour);
  }

  const int32_t tick_threads = static_cast<int32_t>(std::min(
      8u, std::max(1u, std::thread::hardware_concurrency())));

  // Scale point for the sharded execution path: D = 100000 disks with
  // 2000 concurrent stations, run serial and then with --shards 8.
  // Sharding is a pure execution knob, so the two runs must agree
  // exactly; the serial time becomes the sharded row's baseline AT
  // RUNTIME, so speedup_vs_baseline always states this machine's own
  // plan-phase scaling (~1x on a single-core builder, where only the
  // journal overhead shows; the fan-out win needs real cores).
  {
    ExperimentConfig big;
    big.num_disks = 100000;
    big.stations = 2000;
    big.geometric_mean = 10.0;
    big.warmup = SimTime::Hours(1);
    big.measure = SimTime::Hours(5);
    big.scheme = Scheme::kSimpleStriping;

    auto start = std::chrono::steady_clock::now();
    auto serial = RunExperiment(big);
    const double serial_seconds = SecondsSince(start);
    STAGGER_CHECK(serial.ok()) << serial.status();
    STAGGER_CHECK(serial->hiccups == 0) << "D=100k striping produced hiccups";
    report.AddWallClock("E2E_Fig8_D100k", /*items=*/1, serial_seconds);

    big.num_shards = 8;
    big.tick_threads = tick_threads;
    big.shard_min_active_streams = 0;
    start = std::chrono::steady_clock::now();
    auto sharded = RunExperiment(big);
    const double sharded_seconds = SecondsSince(start);
    STAGGER_CHECK(sharded.ok()) << sharded.status();
    STAGGER_CHECK(sharded->hiccups == 0) << "D=100k sharded produced hiccups";
#ifndef STAGGER_AUDIT  // audit builds compile the parallel path out
    STAGGER_CHECK(sharded->sharded_ticks > 0)
        << "D=100k sharded run never took the parallel path";
#endif
    STAGGER_CHECK(sharded->displays_per_hour == serial->displays_per_hour)
        << "sharded execution diverged from serial at D=100k: "
        << sharded->displays_per_hour << " vs " << serial->displays_per_hour;
    report.SetBaseline("E2E_Fig8_D100k_Sharded8", serial_seconds * 1e9);
    report.AddWallClock("E2E_Fig8_D100k_Sharded8", /*items=*/1,
                        sharded_seconds);
    std::printf("D=100000 striping cell: serial %.3f s, sharded 8x%d %.3f s "
                "(%.1f displays/hour, identical)\n",
                serial_seconds, tick_threads, sharded_seconds,
                sharded->displays_per_hour);
  }

  // Sharded replay of the full striping matrix: every cell rerun with
  // --shards 8 --threads tick_threads, checked bit-identical on
  // displays/hour, timed as one row whose runtime baseline is the
  // serial striping matrix measured above.
  {
    const auto start = std::chrono::steady_clock::now();
    for (const StripingCell& cell : striping_cells) {
      ExperimentConfig cfg;
      cfg.geometric_mean = cell.mean;
      cfg.stations = cell.stations;
      if (quick) {
        cfg.warmup = SimTime::Hours(1);
        cfg.measure = SimTime::Hours(5);
      }
      cfg.scheme = Scheme::kSimpleStriping;
      cfg.num_shards = 8;
      cfg.tick_threads = tick_threads;
      cfg.shard_min_active_streams = 0;
      auto replay = RunExperiment(cfg);
      STAGGER_CHECK(replay.ok()) << replay.status();
#ifndef STAGGER_AUDIT  // audit builds compile the parallel path out
      STAGGER_CHECK(replay->sharded_ticks > 0)
          << "sharded replay never took the parallel path (stations="
          << cell.stations << ")";
#endif
      STAGGER_CHECK(replay->displays_per_hour == cell.displays_per_hour)
          << "sharded replay diverged at mean " << cell.mean << ", stations "
          << cell.stations << ": " << replay->displays_per_hour << " vs "
          << cell.displays_per_hour;
    }
    const double sharded_seconds = SecondsSince(start);
    const char* row = quick ? "E2E_Fig8QuickStripingSharded8"
                            : "E2E_Fig8FullStripingSharded8";
    const int64_t cells = static_cast<int64_t>(striping_cells.size());
    report.SetBaseline(row, striping_seconds * 1e9 / cells);
    report.AddWallClock(row, cells, sharded_seconds);
    std::printf("striping matrix replay (shards=8 threads=%d): %.3f s vs "
                "%.3f s serial for %lld cells, all identical\n",
                tick_threads, sharded_seconds, striping_seconds,
                static_cast<long long>(cells));
  }

  if (!report.WriteJson(report.DefaultPath())) return 1;
  std::printf("wrote %s\n", report.DefaultPath().c_str());
  return 0;
}

}  // namespace
}  // namespace stagger

int main(int argc, char** argv) {
  bool quick = false, csv = false, report_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--report") == 0) report_json = true;
  }
  return stagger::Run(quick, csv, report_json);
}
