// E6 — Section 3.2.1 / Figure 6: time fragmentation, buffered
// (Algorithm 1) admission, and dynamic coalescing (Algorithm 2).
//
// Scenario: a 16-disk farm (stride 1) where eight degree-1 displays
// occupy every second virtual disk, so the free disks are never
// adjacent.  A degree-4 request then arrives:
//   * contiguous-only admission must wait for the blockers to finish;
//   * Algorithm 1 admits it immediately over non-adjacent disks,
//     buffering early reads;
//   * Algorithm 2 additionally migrates lanes onto later-aligned disks
//     as the blockers drain, shrinking buffer residency.

#include <cstdio>
#include <iostream>

#include "core/interval_scheduler.h"
#include "disk/disk_array.h"
#include "sim/simulator.h"
#include "util/table.h"

namespace stagger {
namespace {

struct RunResult {
  double x_latency_sec = -1.0;
  int64_t peak_buffer = 0;
  double avg_buffer = 0.0;
  int64_t migrations = 0;
  int64_t hiccups = 0;
  int64_t completed = 0;
};

RunResult RunScenario(AdmissionPolicy policy, bool coalesce) {
  constexpr int32_t kDisks = 16;
  constexpr int64_t kBlockerLen = 20;
  constexpr int64_t kXLen = 60;

  Simulator sim;
  auto disks = DiskArray::Create(kDisks, DiskParameters::Evaluation());
  STAGGER_CHECK(disks.ok());
  SchedulerConfig config;
  config.stride = 1;
  config.interval = SimTime::Millis(605);
  config.policy = policy;
  config.coalesce = coalesce;
  config.fragmented_lookahead = 16;
  auto sched = IntervalScheduler::Create(&sim, &*disks, config);
  STAGGER_CHECK(sched.ok());

  RunResult result;
  // Eight degree-1 blockers on even disks.
  for (int32_t b = 0; b < 8; ++b) {
    DisplayRequest req;
    req.object = b;
    req.degree = 1;
    req.start_disk = 2 * b;
    req.num_subobjects = kBlockerLen;
    req.on_completed = [&result] { ++result.completed; };
    STAGGER_CHECK((*sched)->Submit(std::move(req)).ok());
  }
  // The degree-4 request X.
  DisplayRequest x;
  x.object = 100;
  x.degree = 4;
  x.start_disk = 0;
  x.num_subobjects = kXLen;
  x.on_started = [&result](SimTime latency) {
    result.x_latency_sec = latency.seconds();
  };
  x.on_completed = [&result] { ++result.completed; };
  STAGGER_CHECK((*sched)->Submit(std::move(x)).ok());

  sim.RunUntil(SimTime::Minutes(5));
  const SchedulerMetrics& m = (*sched)->metrics();
  result.peak_buffer = m.peak_buffered_fragments;
  result.avg_buffer = m.buffered_fragments.Average(sim.Now());
  result.migrations = m.coalesce_migrations;
  result.hiccups = m.hiccups;
  return result;
}

int Run() {
  std::printf("Figure 6 scenario: degree-4 request over time-fragmented "
              "disks (D=16, k=1,\n8 degree-1 blockers on even disks for 20 "
              "intervals; X reads 60 subobjects)\n\n");

  struct Row {
    const char* label;
    AdmissionPolicy policy;
    bool coalesce;
  };
  const Row rows[] = {
      {"contiguous-only", AdmissionPolicy::kContiguous, false},
      {"algorithm-1 (fragmented)", AdmissionPolicy::kFragmented, false},
      {"algorithms-1+2 (coalescing)", AdmissionPolicy::kFragmented, true},
  };

  Table table({"policy", "X_startup_s", "peak_buffer_frag", "avg_buffer_frag",
               "migrations", "hiccups"});
  RunResult results[3];
  for (int i = 0; i < 3; ++i) {
    results[i] = RunScenario(rows[i].policy, rows[i].coalesce);
    table.AddRowValues(rows[i].label, results[i].x_latency_sec,
                       results[i].peak_buffer, results[i].avg_buffer,
                       results[i].migrations, results[i].hiccups);
  }
  table.Print(std::cout);

  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("[%s] %s\n", ok ? "OK  " : "FAIL", what);
    if (!ok) ++failures;
  };
  expect(results[0].x_latency_sec > results[1].x_latency_sec,
         "Algorithm 1 starts X earlier than contiguous-only admission");
  expect(results[1].peak_buffer > 0,
         "fragmented delivery consumes buffers");
  expect(results[0].peak_buffer == 0,
         "contiguous delivery uses no buffers");
  expect(results[2].migrations > 0, "Algorithm 2 performs migrations");
  expect(results[2].avg_buffer < results[1].avg_buffer,
         "coalescing reduces average buffer residency");
  for (const RunResult& r : results) {
    expect(r.hiccups == 0, "hiccup-free delivery");
    expect(r.completed == 9, "all displays completed");
  }
  std::printf("\n%s\n", failures == 0 ? "All coalescing checks passed."
                                      : "Some coalescing checks FAILED.");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stagger

int main() { return stagger::Run(); }
