// E12 — ablations of the design choices DESIGN.md calls out, on a
// 1/10-scale Table 3 system (100 disks, 200 objects, ~2-minute
// displays, 40 stations, skewed access):
//
//   * admission policy: contiguous vs Algorithm 1 vs Algorithms 1+2;
//   * queue discipline: FIFO with vs without backfill;
//   * VDR dynamic replication: on vs off;
//   * warm start: preloaded residency vs cold disks.
//
// Each row reports throughput, startup latency, and (where relevant)
// buffering — the quantities each mechanism trades.

#include <cstdio>
#include <iostream>

#include "server/experiment.h"
#include "util/table.h"

namespace stagger {
namespace {

ExperimentConfig Base() {
  ExperimentConfig cfg;
  cfg.scheme = Scheme::kSimpleStriping;
  cfg.num_disks = 100;
  cfg.num_objects = 200;
  cfg.subobjects_per_object = 200;  // ~121 s displays
  cfg.preload_objects = 30;         // farm capacity: 100*3000/1000 = 300
  cfg.stations = 40;
  cfg.geometric_mean = 8.0;
  cfg.warmup = SimTime::Minutes(30);
  cfg.measure = SimTime::Hours(3);
  return cfg;
}

int Run() {
  Table table({"ablation", "variant", "displays_per_hour", "mean_latency_s",
               "hiccups"});
  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("[%s] %s\n", ok ? "OK  " : "FAIL", what);
    if (!ok) ++failures;
  };
  auto run = [&](const char* ablation, const char* variant,
                 const ExperimentConfig& cfg) {
    auto result = RunExperiment(cfg);
    STAGGER_CHECK(result.ok()) << result.status();
    table.AddRowValues(ablation, variant, result->displays_per_hour,
                       result->mean_startup_latency_sec, result->hiccups);
    return *result;
  };

  std::printf("Design-choice ablations (1/10-scale Table 3: D=100, 200 "
              "objects, 40 stations,\ngeometric mean 8, 3 h window)\n\n");

  // Admission policy.
  ExperimentConfig cfg = Base();
  auto contiguous = run("admission", "contiguous", cfg);
  cfg.policy = AdmissionPolicy::kFragmented;
  auto fragmented = run("admission", "algorithm-1", cfg);
  cfg.coalesce = true;
  auto coalesced = run("admission", "algorithms-1+2", cfg);

  // Backfill.  (Strict FIFO is exposed through the scheduler config;
  // the experiment runner always uses the server default, so ablate via
  // staggered stride-1 where head-of-line blocking actually bites.)
  // Replication (VDR).
  cfg = Base();
  cfg.scheme = Scheme::kVdr;
  auto vdr_repl = run("vdr-replication", "enabled", cfg);
  cfg.enable_replication = false;
  auto vdr_norepl = run("vdr-replication", "disabled", cfg);

  // Warm vs cold start.
  cfg = Base();
  cfg.preload_objects = 0;
  cfg.warmup = SimTime::Hours(3);  // give the cold farm time to fill
  cfg.measure = SimTime::Hours(3);
  auto cold = run("start", "cold", cfg);
  cfg = Base();
  auto warm = run("start", "warm", cfg);

  table.Print(std::cout);
  std::printf("\n");

  expect(contiguous.hiccups == 0 && fragmented.hiccups == 0 &&
             coalesced.hiccups == 0,
         "all admission variants hiccup-free");
  // At k = M saturation the idle disks are always adjacent cluster
  // slots, so Algorithm 1 has no fragmentation to fix; its eager
  // reservation (claiming disks up to `lookahead` intervals before they
  // align) costs a small latency premium here.  Its payoff is the
  // time-fragmented regime measured in bench_coalescing.
  expect(fragmented.mean_startup_latency_sec <=
             contiguous.mean_startup_latency_sec * 1.25,
         "Algorithm 1's eager-reservation premium stays below 25%");
  expect(vdr_repl.displays_per_hour >= vdr_norepl.displays_per_hour,
         "dynamic replication helps the VDR baseline under skew");
  expect(warm.displays_per_hour >= cold.displays_per_hour * 0.95,
         "warm start reaches at least the cold steady state");
  std::printf("\n%s\n", failures == 0 ? "All ablation checks passed."
                                      : "Some ablation checks FAILED.");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stagger

int main() { return stagger::Run(); }
