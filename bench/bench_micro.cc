// E9: engine microbenchmarks — event-queue throughput, placement math,
// and a full scheduler tick — using google-benchmark.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

#include "bench_report.h"
#include "core/interval_scheduler.h"
#include "core/virtual_disk.h"
#include "disk/disk_array.h"
#include "node/shard_pool.h"
#include "sim/simulator.h"
#include "storage/layout.h"
#include "util/rng.h"

namespace stagger {
namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(1);
  for (auto _ : state) {
    EventQueue q;
    for (int64_t i = 0; i < batch; ++i) {
      q.Schedule(SimTime::Micros(static_cast<int64_t>(rng.NextBounded(1 << 20))),
                 [] {});
    }
    while (!q.empty()) {
      auto fired = q.PopNext();
      benchmark::DoNotOptimize(fired.time);
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(4096)->Arg(16384);

// The interval-synchronous shape: events cluster on a small number of
// distinct instants (1024 over ~1 s), drained batch-at-a-time the way
// Simulator::Run does.  Baselines are the old binary-heap kernel's
// PopNext drain of the identical workload.
void BM_EventQueueBatchedPop(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(1);
  for (auto _ : state) {
    EventQueue q;
    for (int64_t i = 0; i < batch; ++i) {
      q.Schedule(SimTime::Micros(
                     static_cast<int64_t>(rng.NextBounded(1 << 10)) * 1024),
                 [] {});
    }
    while (!q.empty()) {
      (void)q.PopInterval();
      EventQueue::Fired fired;
      while (q.PopStaged(&fired)) benchmark::DoNotOptimize(fired.time);
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueBatchedPop)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_LayoutDiskFor(benchmark::State& state) {
  auto layout = StaggeredLayout::Create(1000, 17, 5, 5);
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout->DiskFor(i, static_cast<int32_t>(i % 5)));
    ++i;
  }
}
BENCHMARK(BM_LayoutDiskFor);

void BM_AlignmentDelay(benchmark::State& state) {
  auto frame = VirtualDiskFrame::Create(1000, 5);
  int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        frame->AlignmentDelay(static_cast<int32_t>(t % 1000), 123, t));
    ++t;
  }
}
BENCHMARK(BM_AlignmentDelay);

void BM_SchedulerIntervalTick(benchmark::State& state) {
  const int32_t num_streams = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    auto disks = DiskArray::Create(1000, DiskParameters::Evaluation());
    SchedulerConfig config;
    config.stride = 5;
    config.interval = SimTime::Millis(605);
    auto sched = IntervalScheduler::Create(&sim, &*disks, config);
    for (int32_t i = 0; i < num_streams; ++i) {
      DisplayRequest req;
      req.object = i;
      req.degree = 5;
      req.start_disk = (i * 5) % 1000;
      req.num_subobjects = 1 << 20;  // effectively endless
      req.on_completed = [] {};
      (void)(*sched)->Submit(std::move(req));
    }
    state.ResumeTiming();
    sim.RunUntil(SimTime::Millis(605) * 256);  // 256 intervals
  }
  state.SetItemsProcessed(state.iterations() * 256);
  state.SetLabel("intervals; streams=" + std::to_string(num_streams));
}
BENCHMARK(BM_SchedulerIntervalTick)->Arg(50)->Arg(200);

// Same tick loop under Algorithm-1 fragmented admission: non-adjacent
// start disks force fragmented streams, exercising the buffered-lane
// bookkeeping in the advance loop.
void BM_SchedulerIntervalTickFragmented(benchmark::State& state) {
  const int32_t num_streams = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    auto disks = DiskArray::Create(1000, DiskParameters::Evaluation());
    SchedulerConfig config;
    config.stride = 5;
    config.interval = SimTime::Millis(605);
    config.policy = AdmissionPolicy::kFragmented;
    auto sched = IntervalScheduler::Create(&sim, &*disks, config);
    for (int32_t i = 0; i < num_streams; ++i) {
      DisplayRequest req;
      req.object = i;
      req.degree = 5;
      // Overlapping starts: contiguous windows are mostly taken, so
      // admission scatters lanes across non-adjacent virtual disks.
      req.start_disk = (i * 3) % 1000;
      req.num_subobjects = 1 << 20;
      req.on_completed = [] {};
      (void)(*sched)->Submit(std::move(req));
    }
    state.ResumeTiming();
    sim.RunUntil(SimTime::Millis(605) * 256);
  }
  state.SetItemsProcessed(state.iterations() * 256);
  state.SetLabel("intervals; streams=" + std::to_string(num_streams));
}
BENCHMARK(BM_SchedulerIntervalTickFragmented)->Arg(200);

// Admission/eviction churn: short displays that resubmit on completion,
// so every measured interval mixes stream retirement (slot free-list
// recycling, window release) with fresh admissions (window probing).
void BM_SchedulerAdmissionChurn(benchmark::State& state) {
  const int32_t num_streams = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    auto disks = DiskArray::Create(1000, DiskParameters::Evaluation());
    SchedulerConfig config;
    config.stride = 5;
    config.interval = SimTime::Millis(605);
    auto sched = IntervalScheduler::Create(&sim, &*disks, config);
    IntervalScheduler* s = sched->get();
    int32_t next_start = 0;
    // Self-perpetuating short displays: each completion immediately
    // resubmits at a shifted start disk.
    std::function<void()> resubmit = [&] {
      DisplayRequest req;
      req.object = next_start;
      req.degree = 5;
      req.start_disk = next_start;
      next_start = (next_start + 7) % 1000;
      req.num_subobjects = 16;  // ~16-interval displays: constant churn
      req.on_completed = resubmit;
      (void)s->Submit(std::move(req));
    };
    for (int32_t i = 0; i < num_streams; ++i) resubmit();
    state.ResumeTiming();
    sim.RunUntil(SimTime::Millis(605) * 256);
  }
  state.SetItemsProcessed(state.iterations() * 256);
  state.SetLabel("intervals; streams=" + std::to_string(num_streams));
}
BENCHMARK(BM_SchedulerAdmissionChurn)->Arg(100);

// Sharded tick at ten times the paper's array: the plan phase of
// AdvanceStreams fans out across `shards` slices on a small EpochPool
// and the journals replay serially.  The pool is pinned to at most 4
// threads for CI stability; a single-core box measures the journal's
// constant overhead (the price of the bit-identical split), a
// multi-core box additionally shows the plan-phase scaling.
void BM_ShardedTick(benchmark::State& state) {
  const int32_t shards = static_cast<int32_t>(state.range(0));
  const int32_t threads = static_cast<int32_t>(std::min(
      4u, std::max(1u, std::thread::hardware_concurrency())));
  EpochPool pool(threads);
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    auto disks = DiskArray::Create(10000, DiskParameters::Evaluation());
    SchedulerConfig config;
    config.stride = 5;
    config.interval = SimTime::Millis(605);
    config.num_shards = shards;
    config.shard_min_active_streams = 0;  // shard every tick
    auto sched = IntervalScheduler::Create(&sim, &*disks, config);
    (*sched)->SetShardExecutor(&pool);
    for (int32_t i = 0; i < 2000; ++i) {
      DisplayRequest req;
      req.object = i;
      req.degree = 5;
      req.start_disk = (i * 5) % 10000;
      req.num_subobjects = 1 << 20;  // effectively endless
      req.on_completed = [] {};
      (void)(*sched)->Submit(std::move(req));
    }
    state.ResumeTiming();
    sim.RunUntil(SimTime::Millis(605) * 64);  // 64 intervals
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel("intervals; D=10000 streams=2000 shards=" +
                 std::to_string(shards) + " threads=" +
                 std::to_string(threads));
}
BENCHMARK(BM_ShardedTick)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace stagger

// Custom main instead of BENCHMARK_MAIN(): every run also writes
// BENCH_scheduler.json (override with STAGGER_BENCH_REPORT) for CI's
// regression gate.  The baselines below are the measured pre-change
// costs on the reference box — kept so the report states the speedup of
// the O(active-work) tick rework next to each fresh number.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

#ifdef STAGGER_AUDIT
  // Audit hooks run inside the tick loop; such a build measures the
  // wrong thing.  The JSON report marks it and the CI regression gate
  // (tools/check_bench_regression.py) rejects it outright.
  std::fprintf(stderr,
               "bench_micro: WARNING: STAGGER_AUDIT compiled in; timings "
               "include per-interval invariant audits\n");
#endif

  stagger::BenchReport report("scheduler");
  report.SetBaseline("BM_SchedulerIntervalTick/50", 8250.0);
  report.SetBaseline("BM_SchedulerIntervalTick/200", 22437.0);
  report.SetBaseline("BM_LayoutDiskFor", 3.90);
  // Binary-heap event kernel (pre-calendar-queue), same workloads.
  report.SetBaseline("BM_EventQueueScheduleAndPop/1024", 196.4);
  report.SetBaseline("BM_EventQueueScheduleAndPop/4096", 257.2);
  report.SetBaseline("BM_EventQueueScheduleAndPop/16384", 279.3);
  report.SetBaseline("BM_EventQueueBatchedPop/1024", 151.0);
  report.SetBaseline("BM_EventQueueBatchedPop/4096", 219.6);
  report.SetBaseline("BM_EventQueueBatchedPop/16384", 237.7);

  stagger::CapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!report.entries().empty() && !report.WriteJson(report.DefaultPath())) {
    return 1;
  }
  return 0;
}
