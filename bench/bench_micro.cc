// E9: engine microbenchmarks — event-queue throughput, placement math,
// and a full scheduler tick — using google-benchmark.

#include <benchmark/benchmark.h>

#include "core/interval_scheduler.h"
#include "core/virtual_disk.h"
#include "disk/disk_array.h"
#include "sim/simulator.h"
#include "storage/layout.h"
#include "util/rng.h"

namespace stagger {
namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(1);
  for (auto _ : state) {
    EventQueue q;
    for (int64_t i = 0; i < batch; ++i) {
      q.Schedule(SimTime::Micros(static_cast<int64_t>(rng.NextBounded(1 << 20))),
                 [] {});
    }
    while (!q.empty()) {
      auto fired = q.PopNext();
      benchmark::DoNotOptimize(fired.time);
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_LayoutDiskFor(benchmark::State& state) {
  auto layout = StaggeredLayout::Create(1000, 17, 5, 5);
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout->DiskFor(i, static_cast<int32_t>(i % 5)));
    ++i;
  }
}
BENCHMARK(BM_LayoutDiskFor);

void BM_AlignmentDelay(benchmark::State& state) {
  auto frame = VirtualDiskFrame::Create(1000, 5);
  int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        frame->AlignmentDelay(static_cast<int32_t>(t % 1000), 123, t));
    ++t;
  }
}
BENCHMARK(BM_AlignmentDelay);

void BM_SchedulerIntervalTick(benchmark::State& state) {
  const int32_t num_streams = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    auto disks = DiskArray::Create(1000, DiskParameters::Evaluation());
    SchedulerConfig config;
    config.stride = 5;
    config.interval = SimTime::Millis(605);
    auto sched = IntervalScheduler::Create(&sim, &*disks, config);
    for (int32_t i = 0; i < num_streams; ++i) {
      DisplayRequest req;
      req.object = i;
      req.degree = 5;
      req.start_disk = (i * 5) % 1000;
      req.num_subobjects = 1 << 20;  // effectively endless
      req.on_completed = [] {};
      (void)(*sched)->Submit(std::move(req));
    }
    state.ResumeTiming();
    sim.RunUntil(SimTime::Millis(605) * 256);  // 256 intervals
  }
  state.SetItemsProcessed(state.iterations() * 256);
  state.SetLabel("intervals; streams=" + std::to_string(num_streams));
}
BENCHMARK(BM_SchedulerIntervalTick)->Arg(50)->Arg(200);

}  // namespace
}  // namespace stagger

BENCHMARK_MAIN();
