// E14 — stream batching under a hot-object flash crowd: effective
// (logical) throughput vs. admission window.  The Table 3 system tops
// out near 397 physical displays per hour (E1's D/M ceiling: 200
// concurrent streams x ~30 min per display).  A flash crowd asking for
// the same object faster than that can only be served by merging: the
// batcher holds same-object arrivals for an admission window and rides
// late ones piggyback on an already-playing stream, so one physical
// stream fans out to N stations and the *logical* completion rate
// climbs past the physical ceiling while the stripe schedule stays
// hiccup-free.  Window 0 is the pass-through control and must match the
// unbatched server row for row.
//
// Flags:  --quick   shorter warmup/measure and fewer windows
//         --csv     machine-readable output
//         --report  append admission-latency percentile and wall-clock
//                   rows to the scheduler bench report
//                   (BENCH_scheduler.json or $STAGGER_BENCH_REPORT),
//                   merging with any existing entries

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_report.h"
#include "server/experiment.h"
#include "util/table.h"

namespace stagger {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

ExperimentConfig CrowdConfig(bool quick) {
  ExperimentConfig config;
  config.scheme = Scheme::kSimpleStriping;
  config.open_arrivals = true;
  // Demand beyond the physical ceiling: one logical request every 6 s
  // is 600/hour against a ~397/hour stripe capacity.
  config.mean_interarrival = SimTime::Seconds(6);
  // A crowd spanning the whole run sends 80% of arrivals to object 0
  // (rate_multiplier 1: the *mix* is hot, the rate is the base rate).
  FlashCrowd crowd;
  crowd.start = SimTime::Zero();
  crowd.duration = SimTime::Hours(48);
  crowd.object = 0;
  crowd.hot_fraction = 0.8;
  crowd.rate_multiplier = 1.0;
  config.flash_crowds.push_back(crowd);
  config.warmup = quick ? SimTime::Hours(1) : SimTime::Hours(2);
  config.measure = quick ? SimTime::Hours(3) : SimTime::Hours(8);
  return config;
}

int Run(bool quick, bool csv, bool report_json) {
  const std::vector<double> windows_sec =
      quick ? std::vector<double>{0.0, 120.0, 300.0}
            : std::vector<double>{0.0, 30.0, 120.0, 300.0};

  std::printf(
      "E14: stream batching under a hot-object flash crowd (Table 3 "
      "system,\nopen arrivals 600/h, 80%% of arrivals on one object; "
      "physical ceiling ~397/h)\n\n");

  Table table({"window_s", "eff_dph", "phys_streams", "mean_fanout",
               "win_joins", "piggyback", "max_offset_s", "adm_p50_s",
               "adm_p95_s", "adm_p99_s", "hiccups"});

  const auto sweep_start = std::chrono::steady_clock::now();
  int64_t cells = 0;

  // Unbatched control first: the ceiling the merge has to beat.
  ExperimentConfig control = CrowdConfig(quick);
  auto unbatched = RunExperiment(control);
  STAGGER_CHECK(unbatched.ok()) << unbatched.status();
  ++cells;
  table.AddRowValues(-1, unbatched->displays_per_hour,
                     unbatched->requests_issued, 1.0, 0, 0, 0.0,
                     unbatched->admission_latency_p50_sec,
                     unbatched->admission_latency_p95_sec,
                     unbatched->admission_latency_p99_sec,
                     unbatched->hiccups);

  ExperimentResult widest;
  for (double window : windows_sec) {
    ExperimentConfig config = CrowdConfig(quick);
    config.batch = true;
    config.batch_window = SimTime::Seconds(window);
    auto result = RunExperiment(config);
    STAGGER_CHECK(result.ok()) << result.status();
    STAGGER_CHECK(result->hiccups == 0)
        << "batched schedule produced hiccups — merge broke the stripe";
    STAGGER_CHECK(result->max_start_offset_sec <= window + 1e-9)
        << "piggyback start offset exceeded the admission window";
    ++cells;
    table.AddRowValues(window, result->displays_per_hour,
                       result->physical_streams, result->mean_fanout,
                       result->window_joins, result->piggyback_joins,
                       result->max_start_offset_sec,
                       result->admission_latency_p50_sec,
                       result->admission_latency_p95_sec,
                       result->admission_latency_p99_sec, result->hiccups);
    widest = *result;
  }
  const double sweep_seconds = SecondsSince(sweep_start);

  // The widest window must lift effective throughput past both the
  // unbatched run and the physical one-stream-per-station ceiling.
  STAGGER_CHECK(widest.displays_per_hour > unbatched->displays_per_hour)
      << "batching did not improve on the unbatched crowd";
  STAGGER_CHECK(widest.displays_per_hour > 397.0)
      << "batching did not clear the E1 physical ceiling";

  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n(window_s -1 = batching off; eff_dph counts logical "
              "displays completed per hour)\n");

  if (!report_json) return 0;

  // Percentile rows land in the same report the perf gate diffs: the
  // simulation is deterministic, so these reproduce exactly.  Encoded
  // as one "item" taking the percentile's latency of wall time, i.e.
  // ns_per_item == latency in nanoseconds.
  BenchReport report("scheduler");
  report.MergeFromJsonFile(report.DefaultPath());
  report.AddWallClock("E14_AdmissionP50_Unbatched", 1,
                      unbatched->admission_latency_p50_sec);
  report.AddWallClock("E14_AdmissionP99_Unbatched", 1,
                      unbatched->admission_latency_p99_sec);
  report.AddWallClock("E14_AdmissionP50_WidestWindow", 1,
                      widest.admission_latency_p50_sec);
  report.AddWallClock("E14_AdmissionP99_WidestWindow", 1,
                      widest.admission_latency_p99_sec);
  report.AddWallClock("E2E_BatchingSweep", cells, sweep_seconds);
  std::printf("sweep wall clock: %.3f s for %lld experiments\n",
              sweep_seconds, static_cast<long long>(cells));
  if (!report.WriteJson(report.DefaultPath())) return 1;
  std::printf("wrote %s\n", report.DefaultPath().c_str());
  return 0;
}

}  // namespace
}  // namespace stagger

int main(int argc, char** argv) {
  bool quick = false, csv = false, report_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--report") == 0) report_json = true;
  }
  return stagger::Run(quick, csv, report_json);
}
