// E2 — Table 4: percentage improvement in throughput (displays per
// hour) of simple striping over virtual data replication, at 16 / 64 /
// 128 / 256 display stations for the three access distributions.
// Prints our measured matrix next to the paper's values; absolute
// percentages depend on unpublished baseline-policy details, but the
// qualitative claims (striping wins; the margin grows with load under
// skew; the tertiary bottleneck caps both under near-uniform access)
// must hold — the harness checks them.

#include <cstdio>
#include <iostream>

#include "server/experiment.h"
#include "util/table.h"

namespace stagger {
namespace {

struct Cell {
  double striping = 0.0;
  double vdr = 0.0;
  double improvement() const {
    return vdr <= 0.0 ? 0.0 : 100.0 * (striping / vdr - 1.0);
  }
};

int Run() {
  const int32_t stations[] = {16, 64, 128, 256};
  const double means[] = {10.0, 20.0, 43.5};
  // Table 4 of the paper, same layout.
  const double paper[4][3] = {{5.10, 2.15, 114.75},
                              {11.06, 131.86, 508.79},
                              {52.67, 350.73, 469.94},
                              {126.10, 602.49, 413.10}};

  Cell cells[4][3];
  for (int s = 0; s < 4; ++s) {
    for (int g = 0; g < 3; ++g) {
      ExperimentConfig cfg;
      cfg.stations = stations[s];
      cfg.geometric_mean = means[g];

      cfg.scheme = Scheme::kSimpleStriping;
      auto striping = RunExperiment(cfg);
      STAGGER_CHECK(striping.ok()) << striping.status();
      cells[s][g].striping = striping->displays_per_hour;

      cfg.scheme = Scheme::kVdr;
      auto vdr = RunExperiment(cfg);
      STAGGER_CHECK(vdr.ok()) << vdr.status();
      cells[s][g].vdr = vdr->displays_per_hour;
    }
  }

  std::printf("Table 4: %% improvement in throughput with simple striping "
              "vs virtual data replication\n\n");
  Table table({"stations", "mean10_measured", "mean10_paper",
               "mean20_measured", "mean20_paper", "mean43.5_measured",
               "mean43.5_paper"});
  for (int s = 0; s < 4; ++s) {
    table.AddRowValues(static_cast<int64_t>(stations[s]),
                       cells[s][0].improvement(), paper[s][0],
                       cells[s][1].improvement(), paper[s][1],
                       cells[s][2].improvement(), paper[s][2]);
  }
  table.Print(std::cout);

  // Qualitative checks from Section 4.2.
  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("[%s] %s\n", ok ? "OK  " : "FAIL", what);
    if (!ok) ++failures;
  };
  // Striping never loses at moderate-to-high load.
  for (int s = 1; s < 4; ++s) {
    for (int g = 0; g < 3; ++g) {
      expect(cells[s][g].improvement() > 0.0,
             "striping beats VDR at >= 64 stations");
    }
  }
  // Under skew the margin grows with load.
  expect(cells[3][0].improvement() > cells[0][0].improvement(),
         "mean 10: improvement grows from 16 to 256 stations");
  expect(cells[3][1].improvement() > cells[0][1].improvement(),
         "mean 20: improvement grows from 16 to 256 stations");
  std::printf("\n%s\n", failures == 0 ? "All qualitative checks passed."
                                      : "Some qualitative checks FAILED.");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stagger

int main() { return stagger::Run(); }
