// E5 — Section 3.2.2 stride analysis.
//
// Part 1: the collision example — requests for X and Y whose first
// fragments share a disk.  With k = 1 the second request starts within
// a few intervals; with k = D it waits for X's entire display.
//
// Part 2: the D = 100 spread example — a 100-cylinder object (25
// subobjects, M = 4) touches 28 disks with k = 1 and all 100 with
// k = M.
//
// Part 3: data skew — per-disk fragment balance as a function of
// gcd(D, k); relatively prime D and k guarantee no skew.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <numeric>

#include "core/interval_scheduler.h"
#include "disk/disk_array.h"
#include "sim/simulator.h"
#include "storage/layout.h"
#include "util/table.h"

namespace stagger {
namespace {

/// Submits X then Y with the same start disk; returns Y's startup
/// latency and X's display time.
struct CollisionResult {
  double y_latency_sec = -1.0;
  double x_display_sec = 0.0;
};

CollisionResult MeasureCollision(int32_t stride, AdmissionPolicy policy) {
  constexpr int32_t kDisks = 10;
  constexpr int32_t kDegree = 4;
  constexpr int64_t kSubobjects = 50;

  Simulator sim;
  auto disks = DiskArray::Create(kDisks, DiskParameters::Evaluation());
  STAGGER_CHECK(disks.ok());
  SchedulerConfig config;
  config.stride = stride;
  config.interval = SimTime::Millis(605);
  config.policy = policy;
  auto sched = IntervalScheduler::Create(&sim, &*disks, config);
  STAGGER_CHECK(sched.ok());

  CollisionResult result;
  result.x_display_sec = (config.interval * kSubobjects).seconds();
  for (int i = 0; i < 2; ++i) {
    DisplayRequest req;
    req.object = i;
    req.degree = kDegree;
    req.start_disk = 0;
    req.num_subobjects = kSubobjects;
    if (i == 1) {
      req.on_started = [&result](SimTime latency) {
        result.y_latency_sec = latency.seconds();
      };
    }
    req.on_completed = [] {};
    auto id = (*sched)->Submit(std::move(req));
    STAGGER_CHECK(id.ok());
  }
  sim.RunUntil(SimTime::Hours(1));
  return result;
}

int Run() {
  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("[%s] %s\n", ok ? "OK  " : "FAIL", what);
    if (!ok) ++failures;
  };

  std::printf("Part 1: colliding requests (D=10, M=4, X and Y share a "
              "start disk, 50 subobjects)\n\n");
  Table part1({"stride_k", "policy", "Y_wait_s", "X_display_s"});
  for (int32_t k : {1, 4, 10}) {
    for (AdmissionPolicy policy :
         {AdmissionPolicy::kContiguous, AdmissionPolicy::kFragmented}) {
      CollisionResult r = MeasureCollision(k, policy);
      part1.AddRowValues(
          static_cast<int64_t>(k),
          policy == AdmissionPolicy::kContiguous ? "contiguous" : "fragmented",
          r.y_latency_sec, r.x_display_sec);
      if (k == 1 && policy == AdmissionPolicy::kContiguous) {
        expect(r.y_latency_sec >= 0 && r.y_latency_sec < 5.0,
               "k=1: Y starts within a few intervals");
      }
      if (k == 10 && policy == AdmissionPolicy::kContiguous) {
        expect(r.y_latency_sec >= r.x_display_sec * 0.95,
               "k=D: Y waits for X's entire display");
      }
    }
  }
  part1.Print(std::cout);

  std::printf("\nPart 2: disks touched by a 100-cylinder object "
              "(D=100, M=4, 25 subobjects)\n\n");
  Table part2({"stride_k", "unique_disks"});
  for (int32_t k : {1, 2, 4, 100}) {
    auto layout = StaggeredLayout::Create(100, 0, k, 4);
    STAGGER_CHECK(layout.ok());
    part2.AddRowValues(static_cast<int64_t>(k),
                       static_cast<int64_t>(layout->UniqueDisksUsed(25)));
  }
  part2.Print(std::cout);
  expect(StaggeredLayout::Create(100, 0, 1, 4)->UniqueDisksUsed(25) == 28,
         "k=1 spreads a 100-cylinder object over 28 disks (paper)");
  expect(StaggeredLayout::Create(100, 0, 4, 4)->UniqueDisksUsed(25) == 100,
         "k=M spreads it over all 100 disks (paper)");

  std::printf("\nPart 3: data skew vs gcd(D, k) — D=10, M=4, 40 "
              "subobjects\n\n");
  Table part3({"stride_k", "gcd(D,k)", "min_frags/disk", "max_frags/disk",
               "skew_free"});
  for (int32_t k = 1; k <= 10; ++k) {
    auto layout = StaggeredLayout::Create(10, 0, k, 4);
    STAGGER_CHECK(layout.ok());
    auto counts = layout->FragmentsPerDisk(40);
    const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
    part3.AddRowValues(static_cast<int64_t>(k),
                       std::gcd(static_cast<int64_t>(10), static_cast<int64_t>(k)),
                       *lo, *hi, layout->IsSkewFree(40) ? "yes" : "no");
    if (std::gcd(10, k) == 1) {
      expect(layout->IsSkewFree(40), "gcd(D,k)=1 guarantees no skew");
    }
  }
  part3.Print(std::cout);

  std::printf("\n%s\n", failures == 0 ? "All stride checks passed."
                                      : "Some stride checks FAILED.");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stagger

int main() { return stagger::Run(); }
