#include "tertiary/tertiary_pool.h"

#include <limits>
#include <utility>

namespace stagger {

Result<std::unique_ptr<TertiaryPool>> TertiaryPool::Create(
    Simulator* sim, TertiaryDevice device, int32_t devices) {
  if (devices < 1) {
    return Status::InvalidArgument("tertiary pool needs at least one device");
  }
  STAGGER_RETURN_NOT_OK(device.params().Validate());
  std::vector<std::unique_ptr<TertiaryManager>> managers;
  managers.reserve(static_cast<size_t>(devices));
  for (int32_t i = 0; i < devices; ++i) {
    managers.push_back(std::make_unique<TertiaryManager>(sim, device));
  }
  return std::unique_ptr<TertiaryPool>(new TertiaryPool(std::move(managers)));
}

void TertiaryPool::Enqueue(ObjectId object, DataSize size,
                           MaterializationCompletionFn on_complete,
                           MaterializationStartFn on_start) {
  // Least-loaded routing: fewest waiting requests, idle devices first.
  TertiaryManager* best = devices_[0].get();
  size_t best_load = std::numeric_limits<size_t>::max();
  for (const auto& device : devices_) {
    const size_t load = device->queue_length() + (device->busy() ? 1 : 0);
    if (load < best_load) {
      best_load = load;
      best = device.get();
    }
  }
  best->Enqueue(object, size, std::move(on_complete), std::move(on_start));
}

int64_t TertiaryPool::completed() const {
  int64_t total = 0;
  for (const auto& device : devices_) total += device->completed();
  return total;
}

size_t TertiaryPool::queue_length() const {
  size_t total = 0;
  for (const auto& device : devices_) total += device->queue_length();
  return total;
}

double TertiaryPool::Utilization(SimTime now) const {
  double total = 0.0;
  for (const auto& device : devices_) total += device->Utilization(now);
  return total / static_cast<double>(devices_.size());
}

}  // namespace stagger
