#include "tertiary/tertiary_manager.h"

#include <utility>

namespace stagger {

void TertiaryManager::Enqueue(ObjectId object, DataSize size,
                              CompletionFn on_complete,
                              ServiceStartFn on_start) {
  queue_.push_back(Request{object, size, std::move(on_complete),
                           std::move(on_start), sim_->Now()});
  if (!busy_) StartNext();
}

SimTime TertiaryManager::BusyTime(SimTime now) const {
  SimTime busy = completed_busy_time_;
  if (busy_) {
    const SimTime elapsed = now - current_service_start_;
    busy += elapsed < current_service_duration_ ? elapsed
                                                : current_service_duration_;
  }
  return busy;
}

void TertiaryManager::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Request req = std::move(queue_.front());
  queue_.pop_front();

  const SimTime service = device_.StripedLayoutTime(req.size);
  current_service_start_ = sim_->Now();
  current_service_duration_ = service;
  if (req.on_start) req.on_start(req.object, service);
  sim_->ScheduleAfter(service, [this, req = std::move(req)]() mutable {
    ++completed_;
    completed_busy_time_ += current_service_duration_;
    latency_stats_.Add((sim_->Now() - req.enqueued_at).seconds());
    if (req.on_complete) req.on_complete(req.object);
    StartNext();
  });
}

}  // namespace stagger
