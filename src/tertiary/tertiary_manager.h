// The Tertiary Manager of the paper's Centralized Scheduler: "maintains
// a queue of requests waiting to be serviced by the tertiary storage
// device".  Requests are served FIFO, one at a time; completion fires a
// caller-supplied callback on the simulator.

#ifndef STAGGER_TERTIARY_TERTIARY_MANAGER_H_
#define STAGGER_TERTIARY_TERTIARY_MANAGER_H_

#include <deque>
#include <functional>

#include "sim/simulator.h"
#include "storage/media_object.h"
#include "tertiary/tertiary_device.h"
#include "util/stats.h"

namespace stagger {

/// Invoked when a materialization finishes (object fully on disk).
using MaterializationCompletionFn = std::function<void(ObjectId)>;
/// Invoked when a device begins serving a materialization, with the
/// service duration — lets the caller overlay the disk-side write
/// stream (Section 3.2.4).
using MaterializationStartFn = std::function<void(ObjectId, SimTime)>;

/// \brief Interface shared by a single tertiary manager and a pool of
/// them (tertiary_pool.h), so servers work with either.
class MaterializationService {
 public:
  virtual ~MaterializationService() = default;
  virtual void Enqueue(ObjectId object, DataSize size,
                       MaterializationCompletionFn on_complete,
                       MaterializationStartFn on_start) = 0;
  /// Materializations completed so far.
  virtual int64_t completed() const = 0;
  /// Requests waiting (excluding the one in service).
  virtual size_t queue_length() const = 0;
  /// Mean device utilization over [0, now].
  virtual double Utilization(SimTime now) const = 0;
};

/// \brief FIFO scheduler for one tertiary device.
class TertiaryManager : public MaterializationService {
 public:
  /// \param sim     simulation kernel; must outlive the manager.
  /// \param device  device timing model (copied).
  TertiaryManager(Simulator* sim, TertiaryDevice device)
      : sim_(sim), device_(device) {}

  using CompletionFn = MaterializationCompletionFn;
  using ServiceStartFn = MaterializationStartFn;

  /// Queues a materialization of `size` bytes for `object`.  Service
  /// time is the striped-layout time (the system records tapes in
  /// delivery order, Section 3.2.4).
  void Enqueue(ObjectId object, DataSize size, CompletionFn on_complete,
               ServiceStartFn on_start) override;
  void Enqueue(ObjectId object, DataSize size, CompletionFn on_complete) {
    Enqueue(object, size, std::move(on_complete), nullptr);
  }

  bool busy() const { return busy_; }
  size_t queue_length() const override { return queue_.size(); }
  int64_t completed() const override { return completed_; }
  /// Device time spent serving (reposition + transfer) through `now`,
  /// counting only the elapsed part of an in-flight service.
  SimTime BusyTime(SimTime now) const;
  /// Device utilization over [0, now].
  double Utilization(SimTime now) const override {
    return now <= SimTime::Zero() ? 0.0
                                  : BusyTime(now).seconds() / now.seconds();
  }
  /// Queueing + service latency of completed materializations (seconds).
  const StreamingStats& latency_stats() const { return latency_stats_; }

 private:
  struct Request {
    ObjectId object;
    DataSize size;
    CompletionFn on_complete;
    ServiceStartFn on_start;
    SimTime enqueued_at;
  };

  void StartNext();

  Simulator* sim_;
  TertiaryDevice device_;
  std::deque<Request> queue_;
  bool busy_ = false;
  int64_t completed_ = 0;
  SimTime completed_busy_time_;
  SimTime current_service_start_;
  SimTime current_service_duration_;
  StreamingStats latency_stats_;
};

}  // namespace stagger

#endif  // STAGGER_TERTIARY_TERTIARY_MANAGER_H_
