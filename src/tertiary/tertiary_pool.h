// A pool of tertiary devices.  Table 3 carries "Number of Tertiary
// Devices" as a system parameter (1 in the paper's runs); the pool
// routes each materialization to the least-loaded device, which is how
// the Section 4.2 tertiary bottleneck is relieved in practice.

#ifndef STAGGER_TERTIARY_TERTIARY_POOL_H_
#define STAGGER_TERTIARY_TERTIARY_POOL_H_

#include <memory>
#include <vector>

#include "tertiary/tertiary_manager.h"
#include "util/result.h"

namespace stagger {

/// \brief N identical tertiary devices behind least-queue routing.
class TertiaryPool : public MaterializationService {
 public:
  /// \param sim      simulation kernel; outlives the pool.
  /// \param device   device model replicated across the pool.
  /// \param devices  number of drives (>= 1).
  static Result<std::unique_ptr<TertiaryPool>> Create(Simulator* sim,
                                                      TertiaryDevice device,
                                                      int32_t devices);

  void Enqueue(ObjectId object, DataSize size,
               TertiaryManager::CompletionFn on_complete,
               TertiaryManager::ServiceStartFn on_start) override;

  int64_t completed() const override;
  size_t queue_length() const override;
  double Utilization(SimTime now) const override;

  int32_t num_devices() const { return static_cast<int32_t>(devices_.size()); }
  const TertiaryManager& device(int32_t i) const { return *devices_[static_cast<size_t>(i)]; }

 private:
  explicit TertiaryPool(std::vector<std::unique_ptr<TertiaryManager>> devices)
      : devices_(std::move(devices)) {}
  std::vector<std::unique_ptr<TertiaryManager>> devices_;
};

}  // namespace stagger

#endif  // STAGGER_TERTIARY_TERTIARY_POOL_H_
