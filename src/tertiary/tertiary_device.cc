#include "tertiary/tertiary_device.h"

namespace stagger {

Status TertiaryParameters::Validate() const {
  if (bandwidth.bits_per_sec() <= 0) {
    return Status::InvalidArgument("tertiary bandwidth must be positive");
  }
  if (reposition < SimTime::Zero()) {
    return Status::InvalidArgument("tertiary reposition time must be >= 0");
  }
  return Status::OK();
}

SimTime TertiaryDevice::SequentialLayoutTime(DataSize object_size,
                                             DataSize burst) const {
  STAGGER_CHECK(burst.bytes() > 0) << "burst must be positive";
  const int64_t bursts = CeilDiv(object_size.bytes(), burst.bytes());
  return TransferTime(object_size) + params_.reposition * bursts;
}

double TertiaryDevice::SequentialLayoutEfficiency(DataSize object_size,
                                                  DataSize burst) const {
  const double useful = TransferTime(object_size).seconds();
  const double total = SequentialLayoutTime(object_size, burst).seconds();
  return total == 0.0 ? 1.0 : useful / total;
}

}  // namespace stagger
