// Tertiary storage device model (Section 3.2.4 and Table 3).  The
// evaluation uses only its bandwidth (40 mbps) and a FIFO service queue;
// the Section 3.2.4 analysis additionally needs the head-reposition
// penalty that a layout mismatch between tape order and disk order
// incurs, which we expose through the two *LayoutTime estimators.

#ifndef STAGGER_TERTIARY_TERTIARY_DEVICE_H_
#define STAGGER_TERTIARY_TERTIARY_DEVICE_H_

#include <cstdint>

#include "util/result.h"
#include "util/units.h"

namespace stagger {

/// \brief Static description of the tertiary device.
struct TertiaryParameters {
  /// Sustained transfer bandwidth (B_Tertiary).
  Bandwidth bandwidth = Bandwidth::Mbps(40);
  /// Head-reposition (seek) delay, paid once per positioning.  "This
  /// reposition time is typically very high for tertiary storage
  /// devices and may exceed the duration of a time interval."
  SimTime reposition = SimTime::Seconds(2.0);

  Status Validate() const;
};

/// \brief Timing model of one tertiary drive.
class TertiaryDevice {
 public:
  explicit TertiaryDevice(const TertiaryParameters& params) : params_(params) {}

  const TertiaryParameters& params() const { return params_; }

  /// Raw transfer time for `size` at B_Tertiary.
  SimTime TransferTime(DataSize size) const {
    return stagger::TransferTime(size, params_.bandwidth);
  }

  /// Materialization time when the tape is recorded in disk-delivery
  /// order (Section 3.2.4's proposed layout): one initial reposition,
  /// then a single sequential pass — no per-subobject repositioning.
  SimTime StripedLayoutTime(DataSize object_size) const {
    return params_.reposition + TransferTime(object_size);
  }

  /// Materialization time when the tape stores the object sequentially:
  /// the device produces `burst` contiguous bytes, then must reposition
  /// before the next burst (the layout mismatch of Section 3.2.4).
  /// \param object_size total object size.
  /// \param burst       contiguous bytes produced per positioning; the
  ///                    paper's (B_Tertiary / B_Display) x subobject.
  SimTime SequentialLayoutTime(DataSize object_size, DataSize burst) const;

  /// Fraction of device time doing useful transfer (vs repositioning)
  /// under the sequential layout.
  double SequentialLayoutEfficiency(DataSize object_size, DataSize burst) const;

 private:
  TertiaryParameters params_;
};

}  // namespace stagger

#endif  // STAGGER_TERTIARY_TERTIARY_DEVICE_H_
