// Stream batching/merging (ROADMAP item 5; cf. Viennot et al.,
// arXiv:0804.0743): N requests for the same object within an admission
// window share ONE physical stream, multiplying effective throughput
// past the D/M ceiling for hot objects (flash crowds).
//
// Two merge modes, both bounded by the same window W:
//   window join  — the first request for an object opens a "gathering"
//                  batch and a flush timer W later; same-object requests
//                  arriving before the physical stream *starts* join it
//                  and see the display from the beginning (start offset
//                  zero, admission latency <= W + scheduler admission).
//   piggyback    — a request arriving after the stream started but
//                  within W of the start attaches mid-stream: it starts
//                  instantly (admission latency zero) at a start offset
//                  of (arrival - stream start) <= W, i.e. it misses at
//                  most W of the opening.  Later than that, a fresh
//                  batch is opened instead.
//
// The start-offset bound: every batched station's start offset is
// <= the admission window.  Gathering joiners have offset zero by
// construction; piggyback joins are gated on (now - started_at) <= W.
//
// A window of zero is a strict pass-through: requests are forwarded
// synchronously with no timers, no batch objects, and no piggybacking,
// so a window-0 batcher is event-for-event identical to no batcher at
// all (pinned by tests/workload/batching_differential_test.cc).
//
// The batcher lives in workload/ and never sees the server: the owner
// injects a PhysicalIssueFn that submits one physical display and
// reports its lifecycle back, keeping the module DAG acyclic.

#ifndef STAGGER_WORKLOAD_BATCHER_H_
#define STAGGER_WORKLOAD_BATCHER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/simulator.h"
#include "storage/media_object.h"
#include "util/stats.h"
#include "util/units.h"
#include "workload/media_service.h"

namespace stagger {

/// \brief Stream-batching knobs.
struct BatcherConfig {
  /// Admission window W: how long the first request for an object is
  /// held to gather companions, and how far into a playing stream a
  /// piggyback join may attach.  Zero disables batching (pass-through).
  SimTime window = SimTime::Zero();
  /// Stations per physical stream; joins past the cap open a fresh
  /// batch.  0 = unlimited.
  int32_t max_fanout = 0;
};

/// \brief Batching counters and distributions.
struct BatcherMetrics {
  int64_t requests = 0;          ///< logical requests routed through
  int64_t physical_streams = 0;  ///< streams actually issued downstream
  int64_t window_joins = 0;      ///< joins before the stream started
  int64_t piggyback_joins = 0;   ///< mid-stream attaches within the window
  int64_t completed = 0;         ///< logical completions fanned out
  int64_t interrupted = 0;       ///< logical interruptions fanned out
  /// Stations per torn-down physical stream.
  StreamingStats fanout;
  /// Piggyback start offsets (seconds missed); max is the documented
  /// <= window bound.
  StreamingStats start_offset_sec;
  /// Per logical request: arrival -> display start (exact percentiles).
  QuantileTracker admission_latency_sec;
};

/// \brief Holds same-object requests in an admission window and fans
/// one physical stream out to all of them.
class StreamBatcher {
 public:
  /// Submits one physical display downstream; the callbacks report the
  /// stream's start (with its own admission latency), completion, and
  /// interruption, exactly like MediaService::RequestDisplay.
  using PhysicalIssueFn = std::function<void(
      ObjectId, MediaService::StartedFn, MediaService::CompletedFn,
      MediaService::InterruptedFn)>;

  /// \param sim    kernel; outlives the batcher.
  /// \param config window/fanout knobs (window zero = pass-through).
  /// \param issue  downstream submission hook.
  StreamBatcher(Simulator* sim, const BatcherConfig& config,
                PhysicalIssueFn issue);
  ~StreamBatcher();

  StreamBatcher(const StreamBatcher&) = delete;
  StreamBatcher& operator=(const StreamBatcher&) = delete;

  /// Routes one logical display request.  Exactly one of on_completed /
  /// on_interrupted eventually fires (when its physical stream ends),
  /// and on_started fires with the request's own admission latency.
  void Request(ObjectId object, MediaService::StartedFn on_started,
               MediaService::CompletedFn on_completed,
               MediaService::InterruptedFn on_interrupted);

  const BatcherMetrics& metrics() const { return metrics_; }
  /// Batches not yet torn down (gathering, issued, or playing) — zero
  /// once every physical stream has completed or been interrupted.
  int64_t open_batches() const { return static_cast<int64_t>(batches_.size()); }

 private:
  struct Member {
    MediaService::StartedFn on_started;
    MediaService::CompletedFn on_completed;
    MediaService::InterruptedFn on_interrupted;
    SimTime arrival;
  };

  struct Batch {
    ObjectId object = kInvalidObject;
    bool issued = false;   ///< physical stream submitted downstream
    bool started = false;  ///< physical stream's first interval delivered
    SimTime started_at;    ///< valid once started
    std::vector<Member> members;
    EventHandle flush;     ///< pending flush timer (until issued)
  };

  /// Picks the open batch a new request for `object` may join, or
  /// nullptr when it must open a fresh one.
  Batch* JoinableBatch(ObjectId object, SimTime now);
  void Flush(int64_t batch_id);
  void OnStarted(int64_t batch_id, SimTime physical_latency);
  void OnCompleted(int64_t batch_id);
  void OnInterrupted(int64_t batch_id);
  void Teardown(int64_t batch_id, bool completed);

  Simulator* sim_;
  BatcherConfig config_;
  PhysicalIssueFn issue_;
  // Ordered containers keep iteration deterministic (stagger_lint).
  std::map<int64_t, Batch> batches_;
  std::map<ObjectId, std::vector<int64_t>> by_object_;
  int64_t next_batch_id_ = 0;
  BatcherMetrics metrics_;
};

}  // namespace stagger

#endif  // STAGGER_WORKLOAD_BATCHER_H_
