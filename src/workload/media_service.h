// The service interface a media server exposes to display stations.
// Implemented by the staggered/simple-striping server (src/server) and
// the virtual-data-replication baseline (src/baseline), so the same
// workload drives both in the Section 4 comparison.

#ifndef STAGGER_WORKLOAD_MEDIA_SERVICE_H_
#define STAGGER_WORKLOAD_MEDIA_SERVICE_H_

#include <functional>

#include "storage/media_object.h"
#include "util/status.h"
#include "util/units.h"

namespace stagger {

/// \brief Asynchronous display service.
class MediaService {
 public:
  virtual ~MediaService() = default;

  /// Invoked when the display's first subobject is delivered; the
  /// argument is the startup latency (request arrival to display start).
  using StartedFn = std::function<void(SimTime)>;
  /// Invoked when the display's last subobject is delivered.
  using CompletedFn = std::function<void()>;
  /// Invoked when the service abandons the display mid-stream (a
  /// degraded-mode interruption that exhausted its retry budget).
  /// Exactly one of on_completed / on_interrupted eventually fires for
  /// an accepted request; a service that never abandons displays simply
  /// never invokes it.
  using InterruptedFn = std::function<void()>;

  /// Requests one complete display of `object`.  The call returns
  /// immediately; progress is reported through the callbacks.  Errors
  /// (unknown object, invalid state) surface as a non-OK Status and no
  /// callbacks fire.
  virtual Status RequestDisplay(ObjectId object, StartedFn on_started,
                                CompletedFn on_completed,
                                InterruptedFn on_interrupted = nullptr) = 0;
};

}  // namespace stagger

#endif  // STAGGER_WORKLOAD_MEDIA_SERVICE_H_
