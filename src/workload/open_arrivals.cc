#include "workload/open_arrivals.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace stagger {

namespace {
constexpr double kTwoPi = 6.283185307179586476925287;
}  // namespace

Status OpenArrivalsConfig::Validate() const {
  if (mean_interarrival <= SimTime::Zero()) {
    return Status::InvalidArgument("mean interarrival must be positive");
  }
  if (diurnal_amplitude < 0.0 || diurnal_amplitude > 1.0) {
    return Status::InvalidArgument("diurnal amplitude must be in [0, 1]");
  }
  if (diurnal_amplitude > 0.0 && diurnal_period <= SimTime::Zero()) {
    return Status::InvalidArgument("diurnal period must be positive");
  }
  for (const FlashCrowd& crowd : flash_crowds) {
    if (crowd.duration <= SimTime::Zero()) {
      return Status::InvalidArgument("flash crowd duration must be positive");
    }
    if (crowd.object < 0) {
      return Status::InvalidArgument("flash crowd needs a valid hot object");
    }
    if (crowd.hot_fraction < 0.0 || crowd.hot_fraction > 1.0) {
      return Status::InvalidArgument("hot fraction must be in [0, 1]");
    }
    if (crowd.rate_multiplier < 1.0) {
      return Status::InvalidArgument("crowd rate multiplier must be >= 1");
    }
  }
  if (scan_probability < 0.0 || scan_probability > 1.0) {
    return Status::InvalidArgument("scan probability must be in [0, 1]");
  }
  if (pause_probability < 0.0 || pause_probability > 1.0) {
    return Status::InvalidArgument("pause probability must be in [0, 1]");
  }
  if (pause_probability > 0.0 && mean_pause < SimTime::Zero()) {
    return Status::InvalidArgument("mean pause must be >= 0");
  }
  return Status::OK();
}

OpenArrivals::OpenArrivals(Simulator* sim, MediaService* service,
                           const DiscreteDistribution* distribution,
                           SimTime mean_interarrival, uint64_t seed)
    : OpenArrivals(sim, service, distribution, [&] {
        OpenArrivalsConfig config;
        config.mean_interarrival = mean_interarrival;
        config.seed = seed;
        return config;
      }()) {}

OpenArrivals::OpenArrivals(Simulator* sim, MediaService* service,
                           const DiscreteDistribution* distribution,
                           OpenArrivalsConfig config)
    : sim_(sim), service_(service), distribution_(distribution),
      config_(std::move(config)), rng_(config_.seed) {
  STAGGER_CHECK_OK(config_.Validate());
  // Thinning envelope: an upper bound on the instantaneous multiplier.
  // The product over crowds bounds any overlap; exactly 1.0 when every
  // extension is off, which disables the thinning draw so legacy seeds
  // reproduce the original plain-Poisson stream bit-identically.
  peak_multiplier_ = 1.0 + config_.diurnal_amplitude;
  for (const FlashCrowd& crowd : config_.flash_crowds) {
    peak_multiplier_ *= crowd.rate_multiplier;
  }
}

double OpenArrivals::RateMultiplierAt(SimTime t) const {
  double multiplier = 1.0;
  if (config_.diurnal_amplitude > 0.0) {
    multiplier *= 1.0 + config_.diurnal_amplitude *
                            std::sin(kTwoPi * t.seconds() /
                                     config_.diurnal_period.seconds());
  }
  for (const FlashCrowd& crowd : config_.flash_crowds) {
    if (t >= crowd.start && t < crowd.start + crowd.duration) {
      multiplier *= crowd.rate_multiplier;
    }
  }
  return multiplier;
}

void OpenArrivals::Start() {
  STAGGER_CHECK(!running_) << "arrival stream already running";
  running_ = true;
  ScheduleNext();
}

void OpenArrivals::ScheduleNext() {
  // Candidates arrive at the peak rate; each is accepted with
  // probability multiplier(now) / peak, which thins the stream to the
  // exact time-varying rate while staying deterministic per seed.
  const SimTime gap = SimTime::Seconds(rng_.NextExponential(
      config_.mean_interarrival.seconds() / peak_multiplier_));
  sim_->ScheduleAfter(gap, [this] {
    if (!running_) return;
    if (peak_multiplier_ == 1.0 ||
        rng_.NextDouble() * peak_multiplier_ <= RateMultiplierAt(sim_->Now())) {
      Issue();
    }
    ScheduleNext();
  });
}

ObjectId OpenArrivals::SampleObject() {
  ObjectId object = static_cast<ObjectId>(distribution_->Sample(&rng_));
  const SimTime now = sim_->Now();
  for (const FlashCrowd& crowd : config_.flash_crowds) {
    if (now < crowd.start || now >= crowd.start + crowd.duration) continue;
    if (rng_.NextDouble() < crowd.hot_fraction) {
      ++flash_redirects_;
      object = crowd.object;
      break;
    }
  }
  return object;
}

void OpenArrivals::Issue() {
  const ObjectId object = SampleObject();

  // Fixed draw order (scan, then pause) keeps the stream deterministic;
  // a probability of zero consumes no draw at all.
  bool scan = false;
  if (config_.scan_probability > 0.0) {
    const bool drew_scan = rng_.NextDouble() < config_.scan_probability;
    const ObjectId replica =
        static_cast<size_t>(object) < config_.scan_replica.size()
            ? config_.scan_replica[static_cast<size_t>(object)]
            : kInvalidObject;
    scan = drew_scan && replica != kInvalidObject;
  }
  bool pause = false;
  if (config_.pause_probability > 0.0) {
    pause = rng_.NextDouble() < config_.pause_probability;
  }

  // Session tail: after the normal-speed display completes, an optional
  // pause/resume re-requests the same object — the repeat same-object
  // traffic stream batching absorbs.
  std::function<void()> tail;
  if (pause) {
    tail = [this, object] {
      const SimTime pause_gap = SimTime::Seconds(
          rng_.NextExponential(config_.mean_pause.seconds()));
      sim_->ScheduleAfter(pause_gap, [this, object] {
        if (!running_) return;
        ++vcr_resumes_;
        IssueDisplay(object, {});
      });
    };
  }

  if (scan) {
    // Scan-then-play: the fast-forward replica covers the timeline
    // `speedup` times faster; when it completes the station plays the
    // original from the start.
    ++vcr_scans_;
    const ObjectId replica = config_.scan_replica[static_cast<size_t>(object)];
    IssueDisplay(replica, [this, object, tail = std::move(tail)]() mutable {
      IssueDisplay(object, std::move(tail));
    });
  } else {
    IssueDisplay(object, std::move(tail));
  }
}

void OpenArrivals::IssueDisplay(ObjectId object,
                                std::function<void()> next_leg) {
  ++requests_;
  const bool in_window = sim_->Now() >= config_.measure_start;
  Status st = service_->RequestDisplay(
      object,
      [this, in_window](SimTime latency) {
        latency_.Add(latency.seconds());
        if (in_window) admission_latency_.Add(latency.seconds());
      },
      [this, in_window, next = std::move(next_leg)] {
        ++completed_;
        if (in_window) ++completed_in_window_;
        if (next) next();
      },
      [this] { ++interrupted_; });
  STAGGER_CHECK(st.ok()) << "RequestDisplay failed: " << st.ToString();
}

}  // namespace stagger
