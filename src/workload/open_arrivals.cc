#include "workload/open_arrivals.h"

namespace stagger {

OpenArrivals::OpenArrivals(Simulator* sim, MediaService* service,
                           const DiscreteDistribution* distribution,
                           SimTime mean_interarrival, uint64_t seed)
    : sim_(sim), service_(service), distribution_(distribution),
      mean_interarrival_(mean_interarrival), rng_(seed) {
  STAGGER_CHECK(mean_interarrival_ > SimTime::Zero())
      << "mean interarrival must be positive";
}

void OpenArrivals::Start() {
  STAGGER_CHECK(!running_) << "arrival stream already running";
  running_ = true;
  ScheduleNext();
}

void OpenArrivals::ScheduleNext() {
  const SimTime gap =
      SimTime::Seconds(rng_.NextExponential(mean_interarrival_.seconds()));
  sim_->ScheduleAfter(gap, [this] {
    if (!running_) return;
    Issue();
    ScheduleNext();
  });
}

void OpenArrivals::Issue() {
  const ObjectId object = static_cast<ObjectId>(distribution_->Sample(&rng_));
  ++requests_;
  Status st = service_->RequestDisplay(
      object,
      [this](SimTime latency) { latency_.Add(latency.seconds()); },
      [this] { ++completed_; });
  STAGGER_CHECK(st.ok()) << "RequestDisplay failed: " << st.ToString();
}

}  // namespace stagger
