// Display stations (Section 4.1): "a closed system where once a display
// station issues a request, it does not issue another until the first
// one is serviced", with zero think time between requests.  Each station
// draws object references from a shared popularity distribution.

#ifndef STAGGER_WORKLOAD_DISPLAY_STATION_H_
#define STAGGER_WORKLOAD_DISPLAY_STATION_H_

#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "util/distributions.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/media_service.h"

namespace stagger {

/// \brief Aggregate workload counters, with a measurement window that
/// excludes warm-up (throughput is reported over the window only).
struct WorkloadMetrics {
  int64_t requests_issued = 0;
  int64_t displays_completed = 0;
  /// Displays the server abandoned mid-stream (degraded-mode give-up);
  /// the station moves on to its next request without a completion.
  int64_t displays_interrupted = 0;
  /// Completions with start time inside the measurement window.
  int64_t displays_completed_in_window = 0;
  StreamingStats startup_latency_sec;
  StreamingStats startup_latency_sec_in_window;
  /// Exact in-window startup-latency samples, for p50/p95/p99 reporting.
  QuantileTracker startup_latency_quantiles_sec;

  /// Displays per hour over [window_start, now].
  double ThroughputPerHour(SimTime window_start, SimTime now) const {
    const double hours = (now - window_start).hours();
    return hours <= 0.0
               ? 0.0
               : static_cast<double>(displays_completed_in_window) / hours;
  }
};

/// \brief A pool of closed-loop display stations driving one service.
class StationPool {
 public:
  /// \param sim           simulation kernel; outlives the pool.
  /// \param service       server under test; outlives the pool.
  /// \param distribution  object popularity; outlives the pool.
  /// \param num_stations  stations issuing requests (>= 1).
  /// \param seed          workload RNG seed.
  StationPool(Simulator* sim, MediaService* service,
              const DiscreteDistribution* distribution, int32_t num_stations,
              uint64_t seed);

  StationPool(const StationPool&) = delete;
  StationPool& operator=(const StationPool&) = delete;

  /// Starts every station (issues the first round of requests at the
  /// current simulated time).
  void Start();

  /// Completions whose *start* falls at or after `start` count toward
  /// windowed throughput.  Defaults to 0 (no warm-up exclusion).
  void SetMeasurementWindowStart(SimTime start) { window_start_ = start; }
  SimTime window_start() const { return window_start_; }

  /// Mean think time between a completion and the next request
  /// (exponentially distributed; the paper's stress configuration is
  /// the zero default).  Call before Start().
  void SetMeanThinkTime(SimTime mean) { mean_think_ = mean; }

  const WorkloadMetrics& metrics() const { return metrics_; }
  int32_t num_stations() const { return num_stations_; }

  /// Distinct objects referenced so far (the paper's working-set size).
  int64_t UniqueObjectsReferenced() const;

 private:
  void IssueRequest(int32_t station);
  /// Schedules the station's next request (immediately, or after an
  /// exponential think time).
  void NextRequest(int32_t station);

  Simulator* sim_;
  MediaService* service_;
  const DiscreteDistribution* distribution_;
  int32_t num_stations_;
  Rng rng_;
  SimTime window_start_;
  SimTime mean_think_;
  WorkloadMetrics metrics_;
  std::vector<char> referenced_;
};

}  // namespace stagger

#endif  // STAGGER_WORKLOAD_DISPLAY_STATION_H_
