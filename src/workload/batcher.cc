#include "workload/batcher.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace stagger {

StreamBatcher::StreamBatcher(Simulator* sim, const BatcherConfig& config,
                             PhysicalIssueFn issue)
    : sim_(sim), config_(config), issue_(std::move(issue)) {
  STAGGER_CHECK(sim_ != nullptr) << "batcher needs a simulator";
  STAGGER_CHECK(issue_ != nullptr) << "batcher needs an issue hook";
  STAGGER_CHECK(config_.window >= SimTime::Zero())
      << "admission window must be >= 0";
  STAGGER_CHECK(config_.max_fanout >= 0) << "max fanout must be >= 0";
}

StreamBatcher::~StreamBatcher() {
  // Unflushed gathering batches hold live timers into `this`; cancel
  // them so a batcher torn down mid-simulation leaves no dangling
  // callbacks in the queue.  (Cancel on an already-fired handle is a
  // generation-checked no-op.)
  for (auto& [id, batch] : batches_) {
    if (!batch.issued) sim_->Cancel(batch.flush);
  }
}

void StreamBatcher::Request(ObjectId object,
                            MediaService::StartedFn on_started,
                            MediaService::CompletedFn on_completed,
                            MediaService::InterruptedFn on_interrupted) {
  ++metrics_.requests;

  if (config_.window == SimTime::Zero()) {
    // Pass-through: forward synchronously — no timers, no batch state,
    // no piggybacking — so the event order downstream is identical to
    // running without a batcher at all.
    ++metrics_.physical_streams;
    issue_(
        object,
        [this, started = std::move(on_started)](SimTime latency) {
          metrics_.admission_latency_sec.Add(latency.seconds());
          if (started) started(latency);
        },
        [this, done = std::move(on_completed)] {
          ++metrics_.completed;
          metrics_.fanout.Add(1.0);
          if (done) done();
        },
        [this, gave_up = std::move(on_interrupted)] {
          ++metrics_.interrupted;
          metrics_.fanout.Add(1.0);
          if (gave_up) gave_up();
        });
    return;
  }

  const SimTime now = sim_->Now();
  if (Batch* batch = JoinableBatch(object, now)) {
    if (batch->started) {
      // Piggyback: attach mid-stream.  The join is instantaneous
      // (admission latency zero) at a start offset of at most the
      // window — the content missed since the stream began.
      ++metrics_.piggyback_joins;
      metrics_.start_offset_sec.Add((now - batch->started_at).seconds());
      metrics_.admission_latency_sec.Add(0.0);
      if (on_started) on_started(SimTime::Zero());
      batch->members.push_back(Member{nullptr, std::move(on_completed),
                                      std::move(on_interrupted), now});
    } else {
      // Window join: the stream has not started, so this station will
      // see the display from the beginning (start offset zero).
      ++metrics_.window_joins;
      batch->members.push_back(Member{std::move(on_started),
                                      std::move(on_completed),
                                      std::move(on_interrupted), now});
    }
    return;
  }

  const int64_t id = next_batch_id_++;
  Batch& batch = batches_[id];
  batch.object = object;
  batch.members.push_back(Member{std::move(on_started),
                                 std::move(on_completed),
                                 std::move(on_interrupted), now});
  by_object_[object].push_back(id);
  batch.flush = sim_->ScheduleAfter(config_.window, [this, id] { Flush(id); });
}

StreamBatcher::Batch* StreamBatcher::JoinableBatch(ObjectId object,
                                                   SimTime now) {
  auto it = by_object_.find(object);
  if (it == by_object_.end()) return nullptr;
  Batch* playing = nullptr;
  for (const int64_t id : it->second) {
    Batch& batch = batches_.at(id);
    if (config_.max_fanout > 0 &&
        static_cast<int32_t>(batch.members.size()) >= config_.max_fanout) {
      continue;
    }
    // A batch that has not started (gathering, or issued and waiting on
    // scheduler admission) is the best join: the station sees the whole
    // display.  Otherwise fall back to the earliest playing stream
    // still within the piggyback window.
    if (!batch.started) return &batch;
    if (playing == nullptr && now - batch.started_at <= config_.window) {
      playing = &batch;
    }
  }
  return playing;
}

void StreamBatcher::Flush(int64_t batch_id) {
  Batch& batch = batches_.at(batch_id);
  batch.issued = true;
  ++metrics_.physical_streams;
  issue_(
      batch.object,
      [this, batch_id](SimTime latency) { OnStarted(batch_id, latency); },
      [this, batch_id] { OnCompleted(batch_id); },
      [this, batch_id] { OnInterrupted(batch_id); });
}

void StreamBatcher::OnStarted(int64_t batch_id, SimTime /*physical_latency*/) {
  Batch& batch = batches_.at(batch_id);
  batch.started = true;
  batch.started_at = sim_->Now();
  // Fire only the members present at start: a started callback may
  // re-enter Request() and piggyback into this very batch, and those
  // joiners already had their start reported.
  const size_t at_start = batch.members.size();
  for (size_t i = 0; i < at_start; ++i) {
    Member& member = batch.members[i];
    const SimTime latency = batch.started_at - member.arrival;
    metrics_.admission_latency_sec.Add(latency.seconds());
    if (member.on_started) {
      MediaService::StartedFn started = std::move(member.on_started);
      member.on_started = nullptr;
      started(latency);
    }
  }
}

void StreamBatcher::OnCompleted(int64_t batch_id) { Teardown(batch_id, true); }

void StreamBatcher::OnInterrupted(int64_t batch_id) {
  Teardown(batch_id, false);
}

void StreamBatcher::Teardown(int64_t batch_id, bool completed) {
  auto it = batches_.find(batch_id);
  STAGGER_CHECK(it != batches_.end()) << "physical stream ended twice";
  // Extract the batch before firing anything: completion callbacks may
  // re-enter Request() and must not find a dead batch joinable.
  Batch batch = std::move(it->second);
  batches_.erase(it);
  auto by = by_object_.find(batch.object);
  STAGGER_CHECK(by != by_object_.end());
  std::vector<int64_t>& open = by->second;
  open.erase(std::find(open.begin(), open.end(), batch_id));
  if (open.empty()) by_object_.erase(by);

  metrics_.fanout.Add(static_cast<double>(batch.members.size()));
  for (Member& member : batch.members) {
    if (completed) {
      ++metrics_.completed;
      if (member.on_completed) member.on_completed();
    } else {
      ++metrics_.interrupted;
      if (member.on_interrupted) member.on_interrupted();
    }
  }
}

}  // namespace stagger
