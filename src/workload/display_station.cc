#include "workload/display_station.h"

#include <algorithm>

#include "util/check.h"

namespace stagger {

StationPool::StationPool(Simulator* sim, MediaService* service,
                         const DiscreteDistribution* distribution,
                         int32_t num_stations, uint64_t seed)
    : sim_(sim), service_(service), distribution_(distribution),
      num_stations_(num_stations), rng_(seed),
      referenced_(static_cast<size_t>(distribution->num_outcomes()), 0) {
  STAGGER_CHECK(num_stations_ >= 1) << "need at least one station";
}

void StationPool::Start() {
  for (int32_t i = 0; i < num_stations_; ++i) IssueRequest(i);
}

int64_t StationPool::UniqueObjectsReferenced() const {
  return static_cast<int64_t>(
      std::count(referenced_.begin(), referenced_.end(), 1));
}

void StationPool::IssueRequest(int32_t station) {
  const ObjectId object = static_cast<ObjectId>(distribution_->Sample(&rng_));
  referenced_[static_cast<size_t>(object)] = 1;
  ++metrics_.requests_issued;
  const SimTime issued_at = sim_->Now();

  Status st = service_->RequestDisplay(
      object,
      [this, issued_at](SimTime latency) {
        metrics_.startup_latency_sec.Add(latency.seconds());
        if (issued_at >= window_start_) {
          metrics_.startup_latency_sec_in_window.Add(latency.seconds());
          metrics_.startup_latency_quantiles_sec.Add(latency.seconds());
        }
      },
      [this, station, issued_at] {
        ++metrics_.displays_completed;
        if (issued_at >= window_start_) ++metrics_.displays_completed_in_window;
        NextRequest(station);
      },
      [this, station] {
        // The server gave up on this display (degraded-mode
        // interruption).  The viewer walks away unserved, but the
        // station stays in the closed loop: count it and move on.
        ++metrics_.displays_interrupted;
        NextRequest(station);
      });
  STAGGER_CHECK(st.ok()) << "RequestDisplay failed: " << st.ToString();
}

void StationPool::NextRequest(int32_t station) {
  if (mean_think_ <= SimTime::Zero()) {
    // Closed loop, zero think time: request again immediately.
    IssueRequest(station);
  } else {
    const SimTime think =
        SimTime::Seconds(rng_.NextExponential(mean_think_.seconds()));
    sim_->ScheduleAfter(think, [this, station] { IssueRequest(station); });
  }
}

}  // namespace stagger
