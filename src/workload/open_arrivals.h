// Open workload: requests arrive in a Poisson stream at rate lambda,
// independent of completions — the complement of the paper's closed
// station model, used for latency-vs-load studies where the offered
// load must not throttle itself.
//
// Beyond the plain Poisson stream, the generator models the
// millions-of-users workload shapes of ROADMAP item 5:
//   - a diurnal cycle: lambda(t) = lambda0 * (1 + A sin(2 pi t / P)),
//     realized by thinning a Poisson stream at the peak rate, so runs
//     stay deterministic per seed;
//   - flash crowds: timed windows that multiply the arrival rate and
//     redirect a fraction of arrivals to one hot object — the workload
//     stream batching (workload/batcher.h) exists to absorb;
//   - VCR sessions: with probability scan_probability a station first
//     scans the object's fast-forward replica (core/fast_forward) and
//     then plays the original; with probability pause_probability it
//     pauses after the display and resumes — modeled as a re-request of
//     the same object after an exponential pause, which creates the
//     repeat same-object traffic batching merges.
//
// When every extension is disabled the generator draws exactly the same
// random stream as the original plain-Poisson implementation, so legacy
// seeds reproduce bit-identically.

#ifndef STAGGER_WORKLOAD_OPEN_ARRIVALS_H_
#define STAGGER_WORKLOAD_OPEN_ARRIVALS_H_

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "util/distributions.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/media_service.h"

namespace stagger {

/// \brief One timed flash-crowd spike.
struct FlashCrowd {
  SimTime start;                ///< when the crowd forms
  SimTime duration;             ///< how long it lasts (> 0)
  ObjectId object = 0;          ///< the object everyone wants
  /// Fraction of arrivals inside the window redirected to `object`.
  double hot_fraction = 0.8;
  /// Arrival-rate multiplier while the crowd is active (>= 1).
  double rate_multiplier = 1.0;
};

/// \brief Arrival-stream configuration; defaults reproduce the plain
/// Poisson stream.
struct OpenArrivalsConfig {
  SimTime mean_interarrival;    ///< base mean gap (> 0)
  uint64_t seed = 1;

  /// Diurnal amplitude A in [0, 1]: rate swings between
  /// lambda0 * (1 - A) and lambda0 * (1 + A).  Zero disables the cycle.
  double diurnal_amplitude = 0.0;
  SimTime diurnal_period = SimTime::Hours(24);

  std::vector<FlashCrowd> flash_crowds;

  /// Probability a session scans (fast-forward replica first, then the
  /// original).  Needs `scan_replica` entries to take effect.
  double scan_probability = 0.0;
  /// Probability a session pauses after its display and resumes —
  /// re-requesting the same object after an exponential pause.
  double pause_probability = 0.0;
  SimTime mean_pause = SimTime::Minutes(5);
  /// scan_replica[original] = catalog id of the fast-forward replica,
  /// or kInvalidObject when the object has none.  May be shorter than
  /// the catalog (missing entries = no replica).  Build it with
  /// AddFastForwardReplicas (core/fast_forward.h).
  std::vector<ObjectId> scan_replica;

  /// Latency samples and in-window counters only accrue for requests
  /// issued at or after this time (warmup exclusion).
  SimTime measure_start = SimTime::Zero();

  Status Validate() const;
};

/// \brief Poisson request generator over a MediaService.
class OpenArrivals {
 public:
  /// Plain Poisson stream (legacy shape; equivalent to a default
  /// config with just the gap and seed filled in).
  /// \param sim              kernel; outlives the generator.
  /// \param service          server under test; outlives it.
  /// \param distribution     object popularity; outlives it.
  /// \param mean_interarrival  mean time between requests (> 0).
  /// \param seed             arrival/popularity RNG seed.
  OpenArrivals(Simulator* sim, MediaService* service,
               const DiscreteDistribution* distribution,
               SimTime mean_interarrival, uint64_t seed);

  /// Full workload-shape control.
  OpenArrivals(Simulator* sim, MediaService* service,
               const DiscreteDistribution* distribution,
               OpenArrivalsConfig config);

  OpenArrivals(const OpenArrivals&) = delete;
  OpenArrivals& operator=(const OpenArrivals&) = delete;

  /// Schedules the first arrival; the stream then runs until Stop().
  void Start();
  void Stop() { running_ = false; }

  int64_t requests_issued() const { return requests_; }
  int64_t displays_completed() const { return completed_; }
  int64_t displays_interrupted() const { return interrupted_; }
  /// Requests issued but not yet resolved (system occupancy).
  int64_t in_flight() const { return requests_ - completed_ - interrupted_; }
  const StreamingStats& startup_latency_sec() const { return latency_; }

  // --- measurement-window views (requests issued >= measure_start) ----
  int64_t completed_in_window() const { return completed_in_window_; }
  /// Exact admission-latency percentiles (request arrival to display
  /// start), measurement window only.
  const QuantileTracker& admission_latency_sec() const {
    return admission_latency_;
  }

  // --- workload-shape counters ----------------------------------------
  int64_t vcr_scans() const { return vcr_scans_; }
  int64_t vcr_resumes() const { return vcr_resumes_; }
  int64_t flash_redirects() const { return flash_redirects_; }

  /// Offered load rate (requests per hour) at the base rate.
  double OfferedRatePerHour() const {
    return 3600.0 / config_.mean_interarrival.seconds();
  }
  /// Instantaneous rate multiplier (diurnal x active flash crowds) —
  /// exposed for tests.
  double RateMultiplierAt(SimTime t) const;

 private:
  void ScheduleNext();
  void Issue();
  ObjectId SampleObject();
  /// Issues one display leg; `next_leg` (may be empty) runs on
  /// completion to chain scan -> play -> pause -> resume.
  void IssueDisplay(ObjectId object, std::function<void()> next_leg);

  Simulator* sim_;
  MediaService* service_;
  const DiscreteDistribution* distribution_;
  OpenArrivalsConfig config_;
  /// Upper bound on RateMultiplierAt over all t; the thinning envelope.
  double peak_multiplier_ = 1.0;
  Rng rng_;
  bool running_ = false;
  int64_t requests_ = 0;
  int64_t completed_ = 0;
  int64_t interrupted_ = 0;
  int64_t completed_in_window_ = 0;
  int64_t vcr_scans_ = 0;
  int64_t vcr_resumes_ = 0;
  int64_t flash_redirects_ = 0;
  StreamingStats latency_;
  QuantileTracker admission_latency_;
};

}  // namespace stagger

#endif  // STAGGER_WORKLOAD_OPEN_ARRIVALS_H_
