// Open workload: requests arrive in a Poisson stream at rate lambda,
// independent of completions — the complement of the paper's closed
// station model, used for latency-vs-load studies where the offered
// load must not throttle itself.

#ifndef STAGGER_WORKLOAD_OPEN_ARRIVALS_H_
#define STAGGER_WORKLOAD_OPEN_ARRIVALS_H_

#include <memory>

#include "sim/simulator.h"
#include "util/distributions.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/media_service.h"

namespace stagger {

/// \brief Poisson request generator over a MediaService.
class OpenArrivals {
 public:
  /// \param sim              kernel; outlives the generator.
  /// \param service          server under test; outlives it.
  /// \param distribution     object popularity; outlives it.
  /// \param mean_interarrival  mean time between requests (> 0).
  /// \param seed             arrival/popularity RNG seed.
  OpenArrivals(Simulator* sim, MediaService* service,
               const DiscreteDistribution* distribution,
               SimTime mean_interarrival, uint64_t seed);

  OpenArrivals(const OpenArrivals&) = delete;
  OpenArrivals& operator=(const OpenArrivals&) = delete;

  /// Schedules the first arrival; the stream then runs until Stop().
  void Start();
  void Stop() { running_ = false; }

  int64_t requests_issued() const { return requests_; }
  int64_t displays_completed() const { return completed_; }
  /// Requests issued but not yet completed (system occupancy).
  int64_t in_flight() const { return requests_ - completed_; }
  const StreamingStats& startup_latency_sec() const { return latency_; }
  /// Offered load rate (requests per hour).
  double OfferedRatePerHour() const {
    return 3600.0 / mean_interarrival_.seconds();
  }

 private:
  void ScheduleNext();
  void Issue();

  Simulator* sim_;
  MediaService* service_;
  const DiscreteDistribution* distribution_;
  SimTime mean_interarrival_;
  Rng rng_;
  bool running_ = false;
  int64_t requests_ = 0;
  int64_t completed_ = 0;
  StreamingStats latency_;
};

}  // namespace stagger

#endif  // STAGGER_WORKLOAD_OPEN_ARRIVALS_H_
