#include "rebuild/rebuild_manager.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace stagger {

uint64_t FragmentWord(ObjectId object, int64_t subobject, int32_t fragment) {
  // splitmix64 over the packed coordinates: cheap, deterministic, and
  // distinct words for distinct fragments with overwhelming probability.
  uint64_t x = static_cast<uint64_t>(object) * 0x9e3779b97f4a7c15ULL;
  x ^= static_cast<uint64_t>(subobject) + 0xbf58476d1ce4e5b9ULL +
       (x << 6) + (x >> 2);
  x ^= static_cast<uint64_t>(fragment) + 0x94d049bb133111ebULL +
       (x << 6) + (x >> 2);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t ParityWord(ObjectId object, int64_t subobject, int32_t degree) {
  uint64_t parity = 0;
  for (int32_t j = 0; j < degree; ++j) {
    parity ^= FragmentWord(object, subobject, j);
  }
  return parity;
}

Result<std::unique_ptr<RebuildManager>> RebuildManager::Create(
    DiskArray* disks, const RebuildConfig& config) {
  if (config.rebuild_intervals_per_fragment < 1) {
    return Status::InvalidArgument(
        "rebuild rate cap must be >= 1 interval per fragment");
  }
  return std::unique_ptr<RebuildManager>(new RebuildManager(disks, config));
}

RebuildManager::RebuildManager(DiskArray* disks, RebuildConfig config)
    : disks_(disks), config_(config) {}

Status RebuildManager::StartRebuild(DiskId slot, std::vector<LostFragment> lost) {
  MutexLock lock(&mu_);
  if (jobs_.count(slot) > 0) {
    return Status::FailedPrecondition("slot " + std::to_string(slot) +
                                      " is already rebuilding");
  }
  for (const LostFragment& f : lost) {
    if (f.degree < 1 || f.fragment < 0 || f.fragment > f.degree) {
      return Status::InvalidArgument("lost fragment index outside [0, M]");
    }
  }
  STAGGER_ASSIGN_OR_RETURN(int32_t spare, disks_->AcquireSpare());
  Job job;
  job.spare = spare;
  job.lost = std::move(lost);
  ++metrics_.rebuilds_started;
  if (job.lost.empty()) {
    // Nothing stored on the slot: the blank spare already matches.
    jobs_.emplace(slot, std::move(job));
    Promote(slot);
    return Status::OK();
  }
  jobs_.emplace(slot, std::move(job));
  return Status::OK();
}

Status RebuildManager::CancelRebuild(DiskId slot) {
  MutexLock lock(&mu_);
  auto it = jobs_.find(slot);
  if (it == jobs_.end()) {
    return Status::NotFound("slot " + std::to_string(slot) +
                            " is not rebuilding");
  }
  disks_->ReturnSpare(it->second.spare);
  jobs_.erase(it);
  ++metrics_.rebuilds_cancelled;
  return Status::OK();
}

void RebuildManager::OnIdleInterval(int64_t interval) {
  BackgroundGrant grant(disks_, /*max_reads=*/0);
  RunIdle(interval, &grant);
}

int64_t RebuildManager::RunIdle(int64_t interval, BackgroundGrant* grant) {
  MutexLock lock(&mu_);
  int64_t rebuilt = 0;
  std::vector<DiskId> done;
  for (auto& [slot, job] : jobs_) {
    if (!job.paused_on.empty()) {
      // A source disk is stalled: hold the cursor until OnSourceUp
      // instead of burning scans (and churning the list order) on a
      // job that cannot finish its remaining stripes anyway.
      ++metrics_.paused_intervals;
      continue;
    }
    if (job.last_rebuild_interval >= 0 &&
        interval - job.last_rebuild_interval <
            config_.rebuild_intervals_per_fragment) {
      continue;  // throttled; not a stall
    }
    if (TryRebuildOne(&job, interval, grant)) {
      ++rebuilt;
      if (job.next >= job.lost.size()) done.push_back(slot);
    } else {
      ++metrics_.stalled_intervals;
    }
  }
  for (DiskId slot : done) Promote(slot);
  return rebuilt;
}

void RebuildManager::OnSourceDown(DiskId disk, DiskHealth health) {
  if (health != DiskHealth::kStalled) return;
  MutexLock lock(&mu_);
  for (auto& [slot, job] : jobs_) {
    if (JobReadsFrom(job, disk)) job.paused_on.insert(disk);
  }
}

void RebuildManager::OnSourceUp(DiskId disk) {
  MutexLock lock(&mu_);
  for (auto& [slot, job] : jobs_) job.paused_on.erase(disk);
}

bool RebuildManager::JobReadsFrom(const Job& job, DiskId disk) const {
  const int32_t d = disks_->num_disks();
  for (size_t idx = job.next; idx < job.lost.size(); ++idx) {
    const LostFragment& f = job.lost[idx];
    for (int32_t j = 0; j <= f.degree; ++j) {
      if (j == f.fragment) continue;
      const DiskId src = static_cast<DiskId>(
          PositiveMod(static_cast<int64_t>(f.stripe_first_disk) + j, d));
      if (src == disk) return true;
    }
  }
  return false;
}

bool RebuildManager::TryRebuildOne(Job* job, int64_t interval,
                                   BackgroundGrant* grant) {
  STAGGER_CHECK(job->next < job->lost.size());
  const int32_t d = disks_->num_disks();
  if (!grant->CanWriteDrive(job->spare)) return false;
  const bool latent_active = disks_->latent_errors().active();

  // Scan the remaining list for the first fragment whose whole source
  // set has slack this interval.  Display traffic pins a moving window
  // of disks, and a second outage can make individual stripes
  // temporarily (or, for doubly-lost stripes, indefinitely)
  // unreadable — skipping past them keeps the idle bandwidth working
  // instead of serializing behind one blocked stripe.
  for (size_t idx = job->next; idx < job->lost.size(); ++idx) {
    const LostFragment& f = job->lost[idx];
    // The whole stripe reads in one interval, all or nothing; a cap
    // with less than a stripe's headroom left ends this consumer's
    // interval.
    if (grant->reads_remaining() < f.degree) return false;
    // Source set: every fragment of the stripe except the lost one —
    // the surviving data disks plus (for a lost data fragment) the
    // parity disk.  Stripe disks are consecutive mod D starting at the
    // stripe's first data disk, parity on the (M+1)-th.
    bool sources_free = true;
    for (int32_t j = 0; j <= f.degree && sources_free; ++j) {
      if (j == f.fragment) continue;
      const DiskId src = static_cast<DiskId>(
          PositiveMod(static_cast<int64_t>(f.stripe_first_disk) + j, d));
      sources_free = grant->CanRead(src);
    }
    if (!sources_free) continue;

    if (latent_active) {
      // A corrupt source word would XOR garbage onto the spare.  The
      // checksum on the source read catches it; surface the cell and
      // leave the stripe for the scrubber to repair first.
      bool corrupt = false;
      for (int32_t j = 0; j <= f.degree; ++j) {
        if (j == f.fragment) continue;
        const DiskId src = static_cast<DiskId>(
            PositiveMod(static_cast<int64_t>(f.stripe_first_disk) + j, d));
        if (disks_->latent_errors().IsCorrupt(src, f.subobject)) {
          disks_->latent_errors().MarkDetected(src, f.subobject);
          corrupt = true;
        }
      }
      if (corrupt) {
        ++metrics_.corrupt_source_skips;
        continue;
      }
    }

    // All sources have slack: take the reservations and reconstruct.
    uint64_t word = 0;
    for (int32_t j = 0; j <= f.degree; ++j) {
      if (j == f.fragment) continue;
      const DiskId src = static_cast<DiskId>(
          PositiveMod(static_cast<int64_t>(f.stripe_first_disk) + j, d));
      grant->ReadSlot(src);
      ++metrics_.source_reads;
      word ^= j == f.degree ? ParityWord(f.object, f.subobject, f.degree)
                            : FragmentWord(f.object, f.subobject, j);
    }
    grant->WriteDrive(job->spare);  // the rebuilt fragment's write transfer

    const uint64_t expected =
        f.fragment == f.degree
            ? ParityWord(f.object, f.subobject, f.degree)
            : FragmentWord(f.object, f.subobject, f.fragment);
    if (word != expected) ++metrics_.mismatches;

    std::swap(job->lost[job->next], job->lost[idx]);
    ++job->next;
    ++metrics_.fragments_rebuilt;
    job->last_rebuild_interval = interval;
    return true;
  }
  return false;
}

void RebuildManager::Promote(DiskId slot) {
  auto it = jobs_.find(slot);
  STAGGER_CHECK(it != jobs_.end());
  disks_->PromoteSpare(slot, it->second.spare);
  jobs_.erase(it);
  ++metrics_.rebuilds_completed;
}

double RebuildManager::Progress(DiskId slot) const {
  MutexLock lock(&mu_);
  auto it = jobs_.find(slot);
  STAGGER_CHECK(it != jobs_.end()) << "slot " << slot << " is not rebuilding";
  if (it->second.lost.empty()) return 1.0;
  return static_cast<double>(it->second.next) /
         static_cast<double>(it->second.lost.size());
}

int64_t RebuildManager::EtaIntervals(DiskId slot) const {
  MutexLock lock(&mu_);
  auto it = jobs_.find(slot);
  STAGGER_CHECK(it != jobs_.end()) << "slot " << slot << " is not rebuilding";
  const int64_t remaining =
      static_cast<int64_t>(it->second.lost.size() - it->second.next);
  return remaining * config_.rebuild_intervals_per_fragment;
}

size_t RebuildManager::NextFragmentIndex(DiskId slot) const {
  MutexLock lock(&mu_);
  auto it = jobs_.find(slot);
  STAGGER_CHECK(it != jobs_.end()) << "slot " << slot << " is not rebuilding";
  return it->second.next;
}

bool RebuildManager::paused(DiskId slot) const {
  MutexLock lock(&mu_);
  auto it = jobs_.find(slot);
  STAGGER_CHECK(it != jobs_.end()) << "slot " << slot << " is not rebuilding";
  return !it->second.paused_on.empty();
}

Status RebuildManager::AuditState() const {
  MutexLock lock(&mu_);
  for (const auto& [slot, job] : jobs_) {
    STAGGER_AUDIT_VERIFY(slot >= 0 && slot < disks_->num_disks())
        << "; rebuild job on nonexistent slot " << slot;
    STAGGER_AUDIT_VERIFY(job.spare >= 0)
        << "; rebuild job on slot " << slot << " holds no spare";
    STAGGER_AUDIT_VERIFY(job.next < job.lost.size() || job.lost.empty())
        << "; rebuild job on slot " << slot
        << " is complete but was not promoted";
  }
  STAGGER_AUDIT_VERIFY(metrics_.mismatches == 0)
      << "; " << metrics_.mismatches
      << " reconstructed fragments failed the parity content check";
  return Status::OK();
}

}  // namespace stagger
