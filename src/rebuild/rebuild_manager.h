// Online rebuild of lost fragments onto hot spares.
//
// When a disk fails for good, every fragment it held is re-derivable
// from its stripe: the M-1 surviving data fragments XORed with the
// stripe's parity fragment reproduce the lost data word (and the M data
// words reproduce a lost parity word).  The rebuild manager walks the
// failed slot's lost-fragment list, re-derives each fragment onto a
// claimed hot-spare drive using only *idle* disk bandwidth — it runs
// from the interval scheduler's idle-bandwidth hook, after display
// reads have taken their reservations — and, once the list is
// exhausted, promotes the spare into the slot (DiskArray::PromoteSpare).
// Because layouts address slots, the promoted array is bit-identical to
// the pre-failure placement; tests verify this through the layout
// audits and the FragmentWord content model below.
//
// Content model: fragments carry no real bytes in this simulator, so
// reconstruction correctness is checked against a deterministic 64-bit
// word per fragment.  Parity is the XOR of its stripe's data words; a
// reconstruction that does not reproduce the expected word increments
// `mismatches`, which must stay zero.

#ifndef STAGGER_REBUILD_REBUILD_MANAGER_H_
#define STAGGER_REBUILD_REBUILD_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "background/background_budget.h"
#include "disk/disk_array.h"
#include "storage/media_object.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace stagger {

/// Deterministic content word of data fragment X_{subobject.fragment}
/// of `object` (splitmix-style hash of the coordinates).
uint64_t FragmentWord(ObjectId object, int64_t subobject, int32_t fragment);

/// Parity word of one stripe: XOR of its `degree` data words.
uint64_t ParityWord(ObjectId object, int64_t subobject, int32_t degree);

/// \brief One fragment lost with a failed disk, addressed by its stripe
/// so the rebuild knows which surviving disks to read.
struct LostFragment {
  ObjectId object = kInvalidObject;
  int64_t subobject = 0;
  /// Fragment index within the stripe; `degree` denotes the stripe's
  /// parity fragment.
  int32_t fragment = 0;
  /// Physical slot of the stripe's first data fragment X_{subobject.0}.
  int32_t stripe_first_disk = 0;
  /// M_X of the owning object.
  int32_t degree = 0;
};

/// \brief Rebuild pacing.
struct RebuildConfig {
  /// A job rebuilds at most one fragment every this many intervals —
  /// the configurable rebuild rate cap (1 = every idle interval).
  int64_t rebuild_intervals_per_fragment = 1;
};

/// \brief Counters reported by the rebuild manager.
struct RebuildMetrics {
  int64_t rebuilds_started = 0;
  int64_t rebuilds_completed = 0;   ///< spare promoted into the slot
  int64_t rebuilds_cancelled = 0;   ///< slot recovered naturally
  int64_t fragments_rebuilt = 0;
  /// Survivor + parity reads issued on behalf of rebuilds.
  int64_t source_reads = 0;
  /// Intervals where a job was due to rebuild but some source disk (or
  /// the throttle) had no slack.
  int64_t stalled_intervals = 0;
  /// Job-intervals spent paused because a source disk was stalled
  /// (OnSourceDown); the cursor holds still instead of re-scanning.
  int64_t paused_intervals = 0;
  /// Stripes skipped because a source fragment's media cell is corrupt
  /// (latent error): rebuilding through it would write garbage onto the
  /// spare, so the stripe waits for the scrubber to repair the source.
  int64_t corrupt_source_skips = 0;
  /// Reconstructed words that failed to match the content model.  Any
  /// non-zero value is a reconstruction bug.
  int64_t mismatches = 0;
};

/// \brief Walks lost fragments of failed slots and re-derives them onto
/// hot spares from parity, on idle bandwidth only.
///
/// As a BackgroundConsumer the manager draws its source reads and
/// spare writes from a BackgroundGrant handed out by the shared
/// BackgroundBudget arbiter (src/background/), which caps its
/// per-interval rate and arbitrates against the scrubber.  The legacy
/// OnIdleInterval entry point remains for single-consumer setups and
/// self-issues an uncapped grant.
class RebuildManager : public BackgroundConsumer {
 public:
  /// \param disks  disk farm with a hot-spare pool; must outlive the
  ///               manager.
  static Result<std::unique_ptr<RebuildManager>> Create(
      DiskArray* disks, const RebuildConfig& config);

  /// Claims a spare and starts rebuilding `lost` (the fragments that
  /// lived on `slot`) onto it.  An empty list promotes immediately.
  /// Fails with ResourceExhausted when no spare is free, or
  /// FailedPrecondition when the slot is already rebuilding.
  Status StartRebuild(DiskId slot, std::vector<LostFragment> lost)
      STAGGER_EXCLUDES(mu_);

  /// Abandons the rebuild of `slot` (its original drive recovered) and
  /// returns the spare to the pool.
  Status CancelRebuild(DiskId slot) STAGGER_EXCLUDES(mu_);

  /// Consumes leftover slack of one interval: for each active job whose
  /// throttle allows it, picks the first pending fragment whose whole
  /// source set is idle (display traffic and other outages can block
  /// individual stripes — they are skipped, not waited on), reads the
  /// stripe's surviving fragments plus parity (reserving those disks),
  /// XOR-reconstructs the lost word onto the spare, and promotes the
  /// spare when the job's list is exhausted.  A stripe that lost two
  /// fragments is unrecoverable from single parity: its job holds the
  /// spare and keeps stalling until the other slot comes back.  Install
  /// via IntervalScheduler::SetIdleBandwidthHook (single consumer) or
  /// register with a BackgroundBudget; this wrapper self-issues an
  /// uncapped grant and forwards to RunIdle.
  void OnIdleInterval(int64_t interval) STAGGER_EXCLUDES(mu_);

  // BackgroundConsumer:
  const char* name() const override { return "rebuild"; }
  bool HasWork() const override STAGGER_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return !jobs_.empty();
  }
  /// One interval's rebuild work within `grant`; returns fragments
  /// rebuilt.
  int64_t RunIdle(int64_t interval, BackgroundGrant* grant) override
      STAGGER_EXCLUDES(mu_);

  /// A stall on a rebuild *source* disk: every job whose pending
  /// fragments read from `disk` pauses — the stripe cursor holds still
  /// until OnSourceUp — instead of fruitlessly re-scanning (and
  /// re-ordering) its remaining list each interval.  Only stalls pause:
  /// they always end, while pausing on a *failure* could deadlock two
  /// jobs whose source sets cross (each waiting on the other's lost
  /// disk); failures keep the scan-and-skip behavior.
  void OnSourceDown(DiskId disk, DiskHealth health) STAGGER_EXCLUDES(mu_);
  /// Clears `disk` from every job's paused set.
  void OnSourceUp(DiskId disk) STAGGER_EXCLUDES(mu_);

  bool rebuilding(DiskId slot) const STAGGER_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return jobs_.count(slot) > 0;
  }
  size_t active_jobs() const STAGGER_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return jobs_.size();
  }
  /// Fraction of `slot`'s lost fragments already rebuilt, in [0, 1].
  double Progress(DiskId slot) const STAGGER_EXCLUDES(mu_);
  /// Intervals still needed for `slot` at the configured rate cap,
  /// assuming every interval offers slack.
  int64_t EtaIntervals(DiskId slot) const STAGGER_EXCLUDES(mu_);
  /// Position of `slot`'s job cursor: fragments already rebuilt.
  size_t NextFragmentIndex(DiskId slot) const STAGGER_EXCLUDES(mu_);
  /// True when `slot`'s job is paused on a stalled source disk.
  bool paused(DiskId slot) const STAGGER_EXCLUDES(mu_);

  const RebuildMetrics& metrics() const { return metrics_; }
  const RebuildConfig& config() const { return config_; }

  /// Internal-consistency audit: job cursors within bounds, one job per
  /// slot, and zero reconstruction mismatches.
  Status AuditState() const STAGGER_EXCLUDES(mu_);

 private:
  struct Job {
    int32_t spare = -1;  ///< claimed spare drive index
    std::vector<LostFragment> lost;
    size_t next = 0;     ///< first fragment not yet rebuilt
    int64_t last_rebuild_interval = -1;
    /// Stalled disks some pending fragment reads from; non-empty
    /// freezes the job (see OnSourceDown).
    std::set<DiskId> paused_on;
  };

  RebuildManager(DiskArray* disks, RebuildConfig config);

  /// Attempts one fragment of `job` this interval; true on progress.
  bool TryRebuildOne(Job* job, int64_t interval, BackgroundGrant* grant)
      STAGGER_REQUIRES(mu_);
  /// True when some pending fragment of `job` reads from `disk`.
  bool JobReadsFrom(const Job& job, DiskId disk) const STAGGER_REQUIRES(mu_);
  void Promote(DiskId slot) STAGGER_REQUIRES(mu_);

  DiskArray* disks_;
  RebuildConfig config_;
  /// Serializes job mutation: PR-5's sharded deployment drives
  /// StartRebuild/CancelRebuild from the coordinator thread while the
  /// storage-node tick calls OnIdleInterval.  mutable so const readers
  /// can lock.
  mutable Mutex mu_;
  /// Active jobs keyed by failed slot; std::map for deterministic
  /// per-interval iteration order.
  std::map<DiskId, Job> jobs_ STAGGER_GUARDED_BY(mu_);
  /// Written only by mu_-holding methods but deliberately unannotated:
  /// metrics() hands out a const reference, which the thread-safety
  /// analysis cannot prove safe for a guarded member.  Cross-thread
  /// readers must synchronize externally (quiesce the manager).
  RebuildMetrics metrics_;
};

}  // namespace stagger

#endif  // STAGGER_REBUILD_REBUILD_MANAGER_H_
