// Result<T>: value-or-Status, in the style of arrow::Result.

#ifndef STAGGER_UTIL_RESULT_H_
#define STAGGER_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/check.h"
#include "util/status.h"

namespace stagger {

/// \brief Holds either a value of type T or a non-OK Status explaining why
/// the value could not be produced.
///
/// Accessors mirror arrow::Result: `ok()`, `status()`, `ValueOrDie()`,
/// `operator*`.  Use STAGGER_ASSIGN_OR_RETURN to unwrap inside functions
/// that themselves return Status/Result.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs from a non-OK status (implicit, enables
  /// `return Status::InvalidArgument(...)`).  Passing an OK status is a
  /// programmer error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    STAGGER_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error Status, or OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The held value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    STAGGER_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    STAGGER_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    STAGGER_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// The value if present, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns its Status from the
/// enclosing function, otherwise moves the value into `lhs`.
#define STAGGER_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  STAGGER_ASSIGN_OR_RETURN_IMPL_(                                  \
      STAGGER_CONCAT_(_stagger_result_, __COUNTER__), lhs, rexpr)

#define STAGGER_CONCAT_INNER_(a, b) a##b
#define STAGGER_CONCAT_(a, b) STAGGER_CONCAT_INNER_(a, b)
#define STAGGER_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).ValueOrDie()

}  // namespace stagger

#endif  // STAGGER_UTIL_RESULT_H_
