// Object-popularity distributions.  The paper models reference
// probabilities with a truncated geometric distribution whose mean is
// varied (10 / 20 / 43.5) to move between highly skewed and near-uniform
// access.  Zipf and uniform are provided for sensitivity studies.

#ifndef STAGGER_UTIL_DISTRIBUTIONS_H_
#define STAGGER_UTIL_DISTRIBUTIONS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"

namespace stagger {

/// \brief A discrete distribution over object indices [0, n).
class DiscreteDistribution {
 public:
  virtual ~DiscreteDistribution() = default;

  /// Number of distinct outcomes.  (Named to stay disjoint from the
  /// container method so stagger_lint's name-based virtual-dispatch scan
  /// does not taint every `.size()` call on the hot path.)
  virtual int64_t num_outcomes() const = 0;

  /// Probability of outcome i (i in [0, num_outcomes())).
  virtual double Probability(int64_t i) const = 0;

  /// Draws one outcome.
  virtual int64_t Sample(Rng* rng) const = 0;

  /// Smallest m such that outcomes [0, m) carry at least `mass`
  /// probability — the paper's "number of unique objects referenced".
  int64_t WorkingSetSize(double mass) const;
};

/// \brief Samples any DiscreteDistribution in O(1) via the alias method.
///
/// Used as the sampling engine by the concrete distributions below; also
/// usable directly from an explicit weight vector.
class AliasSampler {
 public:
  /// `weights` must be non-empty with non-negative entries and positive sum.
  static Result<AliasSampler> Create(const std::vector<double>& weights);

  int64_t Sample(Rng* rng) const;
  int64_t size() const { return static_cast<int64_t>(prob_.size()); }

 private:
  AliasSampler(std::vector<double> prob, std::vector<int64_t> alias)
      : prob_(std::move(prob)), alias_(std::move(alias)) {}
  std::vector<double> prob_;
  std::vector<int64_t> alias_;
};

/// \brief Truncated geometric distribution: P(i) ∝ (1-p)^i for i in [0, n).
///
/// The paper parameterizes by the mean of the *untruncated* geometric;
/// `FromMean` sets p = 1/(mean+1) so that an untruncated draw has the
/// requested mean, then renormalizes over the n objects.
class TruncatedGeometric : public DiscreteDistribution {
 public:
  /// \param n     number of outcomes (objects); must be >= 1.
  /// \param mean  mean of the untruncated geometric; must be > 0.
  static Result<TruncatedGeometric> FromMean(int64_t n, double mean);

  /// Directly from success probability p in (0, 1].
  static Result<TruncatedGeometric> FromP(int64_t n, double p);

  int64_t num_outcomes() const override { return n_; }
  double Probability(int64_t i) const override;
  int64_t Sample(Rng* rng) const override;

  double p() const { return p_; }

 private:
  TruncatedGeometric(int64_t n, double p, AliasSampler sampler)
      : n_(n), p_(p), sampler_(std::move(sampler)) {}
  int64_t n_;
  double p_;
  AliasSampler sampler_;
};

/// \brief Zipf distribution: P(i) ∝ 1/(i+1)^theta for i in [0, n).
class ZipfDistribution : public DiscreteDistribution {
 public:
  static Result<ZipfDistribution> Create(int64_t n, double theta);

  int64_t num_outcomes() const override { return n_; }
  double Probability(int64_t i) const override;
  int64_t Sample(Rng* rng) const override;

 private:
  ZipfDistribution(int64_t n, double theta, double norm, AliasSampler sampler)
      : n_(n), theta_(theta), norm_(norm), sampler_(std::move(sampler)) {}
  int64_t n_;
  double theta_;
  double norm_;
  AliasSampler sampler_;
};

/// \brief Uniform distribution over [0, n).
class UniformDistribution : public DiscreteDistribution {
 public:
  static Result<UniformDistribution> Create(int64_t n);

  int64_t num_outcomes() const override { return n_; }
  double Probability(int64_t) const override { return 1.0 / static_cast<double>(n_); }
  int64_t Sample(Rng* rng) const override {
    return static_cast<int64_t>(rng->NextBounded(static_cast<uint64_t>(n_)));
  }

 private:
  explicit UniformDistribution(int64_t n) : n_(n) {}
  int64_t n_;
};

}  // namespace stagger

#endif  // STAGGER_UTIL_DISTRIBUTIONS_H_
