// Fixed-size bitmap over 64-bit words, built for the scheduler's
// occupancy sets: testing whether an M-wide window of virtual disks
// (modulo D) is entirely free must cost O(M/64), not O(M), and single
// bit flips must cost O(1).  Wrap-around windows split into at most two
// linear ranges; each linear range is checked with word-level masks.

#ifndef STAGGER_UTIL_BITMAP_H_
#define STAGGER_UTIL_BITMAP_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/hot_path.h"

namespace stagger {

/// \brief Dense bitset of `size` bits with modular window queries.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(int32_t size) { Resize(size); }

  /// Resizes to `size` bits, clearing every bit.
  void Resize(int32_t size) {
    STAGGER_CHECK(size >= 0);
    size_ = size;
    // The uint32_t hop bounds the word count for the optimizer (GCC 12
    // otherwise reports a bogus stringop-overflow through std::fill).
    words_.assign((static_cast<uint32_t>(size) + 63u) / 64u, 0);
  }

  int32_t size() const { return size_; }

  STAGGER_HOT_PATH bool Test(int32_t i) const {
    STAGGER_DCHECK(i >= 0 && i < size_);
    return (words_[static_cast<size_t>(i >> 6)] >>
            (static_cast<uint32_t>(i) & 63)) & 1;
  }

  STAGGER_HOT_PATH void Set(int32_t i) {
    STAGGER_DCHECK(i >= 0 && i < size_);
    words_[static_cast<size_t>(i >> 6)] |=
        uint64_t{1} << (static_cast<uint32_t>(i) & 63);
  }

  STAGGER_HOT_PATH void Clear(int32_t i) {
    STAGGER_DCHECK(i >= 0 && i < size_);
    words_[static_cast<size_t>(i >> 6)] &=
        ~(uint64_t{1} << (static_cast<uint32_t>(i) & 63));
  }

  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

  /// Sets every bit in the linear range [begin, end).  O(range/64).
  STAGGER_HOT_PATH void SetRange(int32_t begin, int32_t end) {
    STAGGER_DCHECK(begin >= 0 && begin <= end && end <= size_);
    if (begin >= end) return;
    const int32_t first_word = begin >> 6;
    const int32_t last_word = (end - 1) >> 6;  // inclusive
    const uint64_t head_mask = ~uint64_t{0}
                               << (static_cast<uint32_t>(begin) & 63);
    const uint64_t tail_mask =
        ~uint64_t{0} >> (63 - ((static_cast<uint32_t>(end - 1)) & 63));
    if (first_word == last_word) {
      words_[static_cast<size_t>(first_word)] |= head_mask & tail_mask;
      return;
    }
    words_[static_cast<size_t>(first_word)] |= head_mask;
    for (int32_t w = first_word + 1; w < last_word; ++w) {
      words_[static_cast<size_t>(w)] = ~uint64_t{0};
    }
    words_[static_cast<size_t>(last_word)] |= tail_mask;
  }

  /// Sets every bit in the modular window [start, start + len)
  /// (mod size).  len in [0, size].
  STAGGER_HOT_PATH void SetWindow(int32_t start, int32_t len) {
    STAGGER_DCHECK(start >= 0 && start < size_);
    STAGGER_DCHECK(len >= 0 && len <= size_);
    const int32_t tail = size_ - start;
    if (len <= tail) {
      SetRange(start, start + len);
      return;
    }
    SetRange(start, size_);
    SetRange(0, len - tail);
  }

  /// Number of set bits.
  int32_t CountSet() const {
    int32_t count = 0;
    for (uint64_t w : words_) count += std::popcount(w);
    return count;
  }

  /// Calls `fn(i)` for every set bit, in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        fn(static_cast<int32_t>((w << 6) +
                                static_cast<size_t>(std::countr_zero(bits))));
        bits &= bits - 1;
      }
    }
  }

  /// Index of the first set bit at or after `from` (clamped to 0), or
  /// -1 if none.  O(size/64) worst case, one word scan typically.
  STAGGER_HOT_PATH int32_t FindNextSet(int32_t from) const {
    if (from < 0) from = 0;
    if (from >= size_) return -1;
    size_t w = static_cast<size_t>(from >> 6);
    uint64_t bits = words_[w] & (~uint64_t{0} << (static_cast<uint32_t>(from) & 63));
    while (bits == 0) {
      if (++w == words_.size()) return -1;
      bits = words_[w];
    }
    return static_cast<int32_t>((w << 6) +
                                static_cast<size_t>(std::countr_zero(bits)));
  }

  /// True when none of the bits in the modular window
  /// [start, start + len) (mod size) is set.  len in [0, size].
  STAGGER_HOT_PATH bool WindowClear(int32_t start, int32_t len) const {
    STAGGER_DCHECK(start >= 0 && start < size_);
    STAGGER_DCHECK(len >= 0 && len <= size_);
    const int32_t tail = size_ - start;
    if (len <= tail) return RangeClear(start, start + len);
    return RangeClear(start, size_) && RangeClear(0, len - tail);
  }

 private:
  /// True when no bit in the linear range [begin, end) is set.
  STAGGER_HOT_PATH bool RangeClear(int32_t begin, int32_t end) const {
    if (begin >= end) return true;
    const int32_t first_word = begin >> 6;
    const int32_t last_word = (end - 1) >> 6;  // inclusive
    const uint64_t head_mask = ~uint64_t{0} << (static_cast<uint32_t>(begin) & 63);
    const uint64_t tail_mask =
        ~uint64_t{0} >> (63 - ((static_cast<uint32_t>(end - 1)) & 63));
    if (first_word == last_word) {
      return (words_[static_cast<size_t>(first_word)] & head_mask &
              tail_mask) == 0;
    }
    if (words_[static_cast<size_t>(first_word)] & head_mask) return false;
    for (int32_t w = first_word + 1; w < last_word; ++w) {
      if (words_[static_cast<size_t>(w)]) return false;
    }
    return (words_[static_cast<size_t>(last_word)] & tail_mask) == 0;
  }

  std::vector<uint64_t> words_;
  int32_t size_ = 0;
};

}  // namespace stagger

#endif  // STAGGER_UTIL_BITMAP_H_
