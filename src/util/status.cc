#include "util/status.h"

namespace stagger {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kAlreadyExists: return "already-exists";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kOutOfRange: return "out-of-range";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace stagger
