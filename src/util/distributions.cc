#include "util/distributions.h"

#include <cmath>
#include <deque>
#include <numeric>

namespace stagger {

int64_t DiscreteDistribution::WorkingSetSize(double mass) const {
  double acc = 0.0;
  for (int64_t i = 0; i < num_outcomes(); ++i) {
    acc += Probability(i);
    if (acc >= mass) return i + 1;
  }
  return num_outcomes();
}

Result<AliasSampler> AliasSampler::Create(const std::vector<double>& weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("AliasSampler: empty weight vector");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument("AliasSampler: weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("AliasSampler: weights must have positive sum");
  }

  const int64_t n = static_cast<int64_t>(weights.size());
  std::vector<double> prob(weights.size());
  std::vector<int64_t> alias(weights.size(), 0);
  std::vector<double> scaled(weights.size());
  for (int64_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] / total * static_cast<double>(n);
  }

  std::deque<int64_t> small, large;
  for (int64_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    int64_t s = small.front();
    small.pop_front();
    int64_t l = large.front();
    large.pop_front();
    prob[s] = scaled[s];
    alias[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (int64_t i : small) prob[i] = 1.0;
  for (int64_t i : large) prob[i] = 1.0;

  return AliasSampler(std::move(prob), std::move(alias));
}

int64_t AliasSampler::Sample(Rng* rng) const {
  const int64_t n = size();
  int64_t i = static_cast<int64_t>(rng->NextBounded(static_cast<uint64_t>(n)));
  return rng->NextDouble() < prob_[i] ? i : alias_[i];
}

Result<TruncatedGeometric> TruncatedGeometric::FromMean(int64_t n, double mean) {
  if (mean <= 0.0) {
    return Status::InvalidArgument("TruncatedGeometric: mean must be > 0");
  }
  return FromP(n, 1.0 / (mean + 1.0));
}

Result<TruncatedGeometric> TruncatedGeometric::FromP(int64_t n, double p) {
  if (n < 1) {
    return Status::InvalidArgument("TruncatedGeometric: n must be >= 1");
  }
  if (p <= 0.0 || p > 1.0) {
    return Status::InvalidArgument("TruncatedGeometric: p must be in (0, 1]");
  }
  // Weights (1-p)^i; the shared geometric factor makes the absolute scale
  // irrelevant (AliasSampler normalizes).  Very deep tails underflow to 0,
  // which is the correct truncated behaviour.
  std::vector<double> weights(static_cast<size_t>(n));
  double w = 1.0;
  const double q = 1.0 - p;
  for (int64_t i = 0; i < n; ++i) {
    weights[static_cast<size_t>(i)] = w;
    w *= q;
  }
  STAGGER_ASSIGN_OR_RETURN(AliasSampler sampler, AliasSampler::Create(weights));
  return TruncatedGeometric(n, p, std::move(sampler));
}

double TruncatedGeometric::Probability(int64_t i) const {
  STAGGER_CHECK(i >= 0 && i < n_);
  const double q = 1.0 - p_;
  // Normalizing constant of the truncation: sum_{j<n} q^j = (1-q^n)/(1-q).
  const double norm = (p_ == 1.0) ? 1.0 : (1.0 - std::pow(q, static_cast<double>(n_))) / p_;
  return std::pow(q, static_cast<double>(i)) / norm;
}

int64_t TruncatedGeometric::Sample(Rng* rng) const { return sampler_.Sample(rng); }

Result<ZipfDistribution> ZipfDistribution::Create(int64_t n, double theta) {
  if (n < 1) return Status::InvalidArgument("Zipf: n must be >= 1");
  if (theta < 0.0) return Status::InvalidArgument("Zipf: theta must be >= 0");
  std::vector<double> weights(static_cast<size_t>(n));
  double norm = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    weights[static_cast<size_t>(i)] = 1.0 / std::pow(static_cast<double>(i + 1), theta);
    norm += weights[static_cast<size_t>(i)];
  }
  STAGGER_ASSIGN_OR_RETURN(AliasSampler sampler, AliasSampler::Create(weights));
  return ZipfDistribution(n, theta, norm, std::move(sampler));
}

double ZipfDistribution::Probability(int64_t i) const {
  STAGGER_CHECK(i >= 0 && i < n_);
  return 1.0 / std::pow(static_cast<double>(i + 1), theta_) / norm_;
}

int64_t ZipfDistribution::Sample(Rng* rng) const { return sampler_.Sample(rng); }

Result<UniformDistribution> UniformDistribution::Create(int64_t n) {
  if (n < 1) return Status::InvalidArgument("Uniform: n must be >= 1");
  return UniformDistribution(n);
}

}  // namespace stagger
