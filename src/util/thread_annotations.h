// Clang -Wthread-safety annotations, spelled STAGGER_* and expanding to
// nothing on GCC/MSVC (the sibling of abseil's thread_annotations.h).
// The clang CI job compiles the concurrent translation units —
// server/experiment.cc, util/logging.cc, rebuild/rebuild_manager.cc —
// with -Wthread-safety -Werror, turning lock-discipline violations into
// build failures.
//
// std::mutex itself carries no capability attributes in libstdc++ or
// libc++, so the analysis cannot see through it.  Annotated code must
// therefore use the `Mutex` / `MutexLock` wrappers below, whose methods
// declare their acquire/release behaviour to the analyzer.
//
// Quick reference:
//   Mutex mu_;
//   int x_ STAGGER_GUARDED_BY(mu_);          // reads/writes need mu_
//   void Tidy() STAGGER_REQUIRES(mu_);       // caller already holds mu_
//   void Poke() STAGGER_EXCLUDES(mu_);       // caller must NOT hold mu_
//   { MutexLock lock(&mu_); ... }            // scoped acquire/release

#ifndef STAGGER_UTIL_THREAD_ANNOTATIONS_H_
#define STAGGER_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__)
#define STAGGER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define STAGGER_THREAD_ANNOTATION(x)
#endif

#define STAGGER_CAPABILITY(x) STAGGER_THREAD_ANNOTATION(capability(x))
#define STAGGER_SCOPED_CAPABILITY STAGGER_THREAD_ANNOTATION(scoped_lockable)
#define STAGGER_GUARDED_BY(x) STAGGER_THREAD_ANNOTATION(guarded_by(x))
#define STAGGER_PT_GUARDED_BY(x) STAGGER_THREAD_ANNOTATION(pt_guarded_by(x))
#define STAGGER_ACQUIRED_BEFORE(...) \
  STAGGER_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define STAGGER_ACQUIRED_AFTER(...) \
  STAGGER_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define STAGGER_REQUIRES(...) \
  STAGGER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define STAGGER_REQUIRES_SHARED(...) \
  STAGGER_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define STAGGER_ACQUIRE(...) \
  STAGGER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define STAGGER_ACQUIRE_SHARED(...) \
  STAGGER_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define STAGGER_RELEASE(...) \
  STAGGER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define STAGGER_TRY_ACQUIRE(...) \
  STAGGER_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define STAGGER_EXCLUDES(...) \
  STAGGER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define STAGGER_RETURN_CAPABILITY(x) \
  STAGGER_THREAD_ANNOTATION(lock_returned(x))
#define STAGGER_NO_THREAD_SAFETY_ANALYSIS \
  STAGGER_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace stagger {

/// \brief std::mutex with capability annotations the analysis can see.
class STAGGER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() STAGGER_ACQUIRE() { mu_.lock(); }
  void Unlock() STAGGER_RELEASE() { mu_.unlock(); }
  bool TryLock() STAGGER_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling, so std::condition_variable_any can wait on
  // a Mutex directly without shedding the capability annotations.
  void lock() STAGGER_ACQUIRE() { mu_.lock(); }
  void unlock() STAGGER_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// \brief RAII lock over `Mutex`; the scoped capability the analysis
/// tracks through a block.
class STAGGER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) STAGGER_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() STAGGER_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace stagger

#endif  // STAGGER_UTIL_THREAD_ANNOTATIONS_H_
