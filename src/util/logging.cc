#include "util/logging.h"

#include <atomic>

#include "util/thread_annotations.h"

namespace stagger {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

// LogMessage destructors run concurrently on the RunMany worker
// threads; emission goes through this guarded sink so each log line
// lands on stderr whole instead of interleaved mid-character.
Mutex g_sink_mu;
std::ostream* g_sink STAGGER_GUARDED_BY(g_sink_mu) = &std::cerr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) { g_log_level.store(level, std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= GetLogLevel() || level == LogLevel::kFatal) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    MutexLock lock(&g_sink_mu);
    (*g_sink) << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace stagger
