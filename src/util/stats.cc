#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace stagger {

void StreamingStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) / static_cast<double>(total);
  count_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StreamingStats::Reset() { *this = StreamingStats(); }

double StreamingStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / buckets),
      buckets_(static_cast<size_t>(buckets) + 2, 0) {
  STAGGER_CHECK(hi > lo) << "Histogram: hi must exceed lo";
  STAGGER_CHECK(buckets >= 1) << "Histogram: need at least one bucket";
}

void Histogram::Add(double x) {
  ++count_;
  stats_.Add(x);
  size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = buckets_.size() - 1;
  } else {
    idx = 1 + static_cast<size_t>((x - lo_) / width_);
    idx = std::min(idx, buckets_.size() - 2);
  }
  ++buckets_[idx];
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double acc = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double next = acc + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      if (i == 0) return lo_;                       // underflow bucket
      if (i == buckets_.size() - 1) return hi_;     // overflow bucket
      const double frac = (target - acc) / static_cast<double>(buckets_[i]);
      return lo_ + width_ * (static_cast<double>(i - 1) + frac);
    }
    acc = next;
  }
  return hi_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "Histogram(n=" << count_ << ", mean=" << mean() << ", p50=" << Quantile(0.5)
     << ", p95=" << Quantile(0.95) << ", p99=" << Quantile(0.99) << ", max=" << max()
     << ")";
  return os.str();
}

void QuantileTracker::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void QuantileTracker::Merge(const QuantileTracker& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void QuantileTracker::Reset() {
  samples_.clear();
  sorted_ = true;
}

void QuantileTracker::EnsureSorted() const {
  if (sorted_) return;
  std::sort(samples_.begin(), samples_.end());
  sorted_ = true;
}

double QuantileTracker::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lower = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= samples_.size()) return samples_.back();
  return samples_[lower] + frac * (samples_[lower + 1] - samples_[lower]);
}

void TimeWeighted::Set(SimTime now, double value) {
  if (!started_) {
    started_ = true;
    start_ = now;
    last_change_ = now;
    value_ = value;
    return;
  }
  STAGGER_CHECK(now >= last_change_) << "TimeWeighted: time went backwards";
  weighted_sum_ += value_ * (now - last_change_).seconds();
  last_change_ = now;
  value_ = value;
}

double TimeWeighted::Average(SimTime now) const {
  if (!started_ || now <= start_) return 0.0;
  const double total =
      weighted_sum_ + value_ * (now - last_change_).seconds();
  return total / (now - start_).seconds();
}

}  // namespace stagger
