#include "util/rng.h"

#include <cmath>

namespace stagger {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  STAGGER_CHECK(bound > 0) << "NextBounded(0)";
  // Lemire's nearly-divisionless bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  STAGGER_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  STAGGER_CHECK(mean > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace stagger
