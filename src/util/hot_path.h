// STAGGER_HOT_PATH: marker for functions on the scheduler's per-interval
// tick path (the PR-4 O(active-work) contract).  The marker does two
// things:
//
//   1. stagger_lint (tools/stagger_lint/) scans the body of every tagged
//      function and fails the build on heap allocation, locks, I/O, and
//      indirect dispatch through non-whitelisted interfaces — the purity
//      rules in docs/static_analysis.md.  Sanctioned exceptions carry an
//      inline allow(<rule>) suppression comment; see the suppression
//      policy in that document for the exact spelling.
//
//   2. On GCC/Clang it expands to the `hot` attribute, grouping the
//      tagged functions' text for locality.
//
// Tag the *definition* (the linter checks bodies where it sees the
// marker); tagging a declaration as well is harmless.  Place it before
// the return type:
//
//   STAGGER_HOT_PATH void Tick(int64_t tick_index);

#ifndef STAGGER_UTIL_HOT_PATH_H_
#define STAGGER_UTIL_HOT_PATH_H_

#if defined(__GNUC__) || defined(__clang__)
#define STAGGER_HOT_PATH __attribute__((hot))
#else
#define STAGGER_HOT_PATH
#endif

#endif  // STAGGER_UTIL_HOT_PATH_H_
