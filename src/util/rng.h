// Deterministic pseudo-random number generation.  All stochastic
// components of the simulator draw from an explicitly seeded Rng so
// every experiment is reproducible bit-for-bit.
//
// The generator is xoshiro256**, seeded via splitmix64 — fast, high
// quality, and independent of the standard library's unspecified
// distributions (we implement our own in distributions.h).

#ifndef STAGGER_UTIL_RNG_H_
#define STAGGER_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace stagger {

/// \brief Deterministic 64-bit PRNG (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound).  `bound` must be positive.  Uses rejection
  /// sampling (Lemire) to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability p.
  bool NextBool(double p);

  /// Exponential variate with the given mean (> 0).
  double NextExponential(double mean);

  /// Forks an independently-seeded child stream; children of the same
  /// parent state are distinct, and the parent advances by one draw.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace stagger

#endif  // STAGGER_UTIL_RNG_H_
