#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace stagger {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  STAGGER_CHECK(!header_.empty()) << "Table needs at least one column";
}

void Table::AddRow(std::vector<std::string> cells) {
  STAGGER_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Format(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::Format(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c == 0 ? 0 : 2);
  for (size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace stagger
