#include "util/units.h"

#include <cmath>
#include <sstream>

namespace stagger {

std::string SimTime::ToString() const {
  std::ostringstream os;
  if (micros_ % 1000000 == 0) {
    os << micros_ / 1000000 << "s";
  } else if (micros_ % 1000 == 0) {
    os << micros_ / 1000 << "ms";
  } else {
    os << micros_ << "us";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, SimTime t) { return os << t.ToString(); }

std::string DataSize::ToString() const {
  std::ostringstream os;
  if (bytes_ >= 1000000000 && bytes_ % 1000000 == 0) {
    os << static_cast<double>(bytes_) / 1e9 << "GB";
  } else if (bytes_ >= 1000000) {
    os << static_cast<double>(bytes_) / 1e6 << "MB";
  } else {
    os << bytes_ << "B";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, DataSize s) { return os << s.ToString(); }

std::string Bandwidth::ToString() const {
  std::ostringstream os;
  os << mbps() << "mbps";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, Bandwidth b) { return os << b.ToString(); }

SimTime TransferTime(DataSize size, Bandwidth bw) {
  STAGGER_CHECK(bw.bits_per_sec() > 0) << "transfer at zero bandwidth";
  double seconds = size.bits() / bw.bits_per_sec();
  return SimTime::Micros(static_cast<int64_t>(std::ceil(seconds * 1e6)));
}

DataSize DataMoved(Bandwidth bw, SimTime t) {
  double bits = bw.bits_per_sec() * t.seconds();
  return DataSize::Bytes(static_cast<int64_t>(bits / 8.0));
}

}  // namespace stagger
