// Contract macros: the canonical home of STAGGER_CHECK / STAGGER_DCHECK
// and friends.  Violated checks are programmer errors: the failure
// message is formatted through the streaming logger (logging.h) at
// kFatal severity and the process aborts.  Recoverable conditions use
// Status / Result (status.h, result.h) instead.
//
// The audit subsystem (core/invariants.h) needs the same predicates but
// must *report* rather than abort, so corrupted state can be surfaced to
// tests and callers: STAGGER_AUDIT_VERIFY returns a Status::Internal
// carrying the formatted failure from the enclosing function.

#ifndef STAGGER_UTIL_CHECK_H_
#define STAGGER_UTIL_CHECK_H_

#include <sstream>
#include <string>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

/// Aborts with a diagnostic if `condition` is false.  Additional context
/// may be streamed: STAGGER_CHECK(x > 0) << "x=" << x;
#define STAGGER_CHECK(condition)                                         \
  (condition) ? static_cast<void>(0)                                     \
              : ::stagger::internal::FatalStreamVoidify() &              \
                    ::stagger::internal::LogMessage(                     \
                        ::stagger::LogLevel::kFatal, __FILE__, __LINE__) \
                        << "Check failed: " #condition " "

/// Binary comparisons that print both operands on failure, e.g.
/// "Check failed: a == b (3 vs. 5)".  Operands are evaluated twice on
/// the failure path; keep them side-effect free.
#define STAGGER_CHECK_OP_(a, b, op)                         \
  STAGGER_CHECK((a)op(b)) << "(" << (a) << " vs. " << (b) << ") "

#define STAGGER_CHECK_EQ(a, b) STAGGER_CHECK_OP_(a, b, ==)
#define STAGGER_CHECK_NE(a, b) STAGGER_CHECK_OP_(a, b, !=)
#define STAGGER_CHECK_LT(a, b) STAGGER_CHECK_OP_(a, b, <)
#define STAGGER_CHECK_LE(a, b) STAGGER_CHECK_OP_(a, b, <=)
#define STAGGER_CHECK_GT(a, b) STAGGER_CHECK_OP_(a, b, >)
#define STAGGER_CHECK_GE(a, b) STAGGER_CHECK_OP_(a, b, >=)

/// Aborts if a Status expression is not OK, printing the status.
#define STAGGER_CHECK_OK(expr)                                          \
  STAGGER_CHECK_OK_IMPL_(STAGGER_CHECK_CONCAT_(_stagger_check_status_,  \
                                               __COUNTER__),            \
                         expr)
#define STAGGER_CHECK_CONCAT_INNER_(a, b) a##b
#define STAGGER_CHECK_CONCAT_(a, b) STAGGER_CHECK_CONCAT_INNER_(a, b)
#define STAGGER_CHECK_OK_IMPL_(tmp, expr)                               \
  do {                                                                  \
    const ::stagger::Status tmp = (expr);                               \
    STAGGER_CHECK(tmp.ok()) << tmp.ToString() << " ";                   \
  } while (false)

/// Marks code that must be unreachable.
#define STAGGER_UNREACHABLE() \
  STAGGER_CHECK(false) << "unreachable code reached "

/// Debug-only checks: active unless NDEBUG, compiled away (but still
/// type-checked) in optimized builds.
#ifndef NDEBUG
#define STAGGER_DCHECK(condition) STAGGER_CHECK(condition)
#define STAGGER_DCHECK_EQ(a, b) STAGGER_CHECK_EQ(a, b)
#define STAGGER_DCHECK_NE(a, b) STAGGER_CHECK_NE(a, b)
#define STAGGER_DCHECK_LT(a, b) STAGGER_CHECK_LT(a, b)
#define STAGGER_DCHECK_LE(a, b) STAGGER_CHECK_LE(a, b)
#define STAGGER_DCHECK_GT(a, b) STAGGER_CHECK_GT(a, b)
#define STAGGER_DCHECK_GE(a, b) STAGGER_CHECK_GE(a, b)
#else
#define STAGGER_DCHECK(condition) \
  while (false) STAGGER_CHECK(condition)
#define STAGGER_DCHECK_EQ(a, b) \
  while (false) STAGGER_CHECK_EQ(a, b)
#define STAGGER_DCHECK_NE(a, b) \
  while (false) STAGGER_CHECK_NE(a, b)
#define STAGGER_DCHECK_LT(a, b) \
  while (false) STAGGER_CHECK_LT(a, b)
#define STAGGER_DCHECK_LE(a, b) \
  while (false) STAGGER_CHECK_LE(a, b)
#define STAGGER_DCHECK_GT(a, b) \
  while (false) STAGGER_CHECK_GT(a, b)
#define STAGGER_DCHECK_GE(a, b) \
  while (false) STAGGER_CHECK_GE(a, b)
#endif

namespace stagger {
namespace internal {

/// Accumulates a formatted audit-failure message and converts to a
/// Status::Internal; used by STAGGER_AUDIT_VERIFY.
class AuditFailure {
 public:
  AuditFailure(const char* file, int line, const char* expr) {
    stream_ << "audit violation at " << file << ":" << line << ": "
            << expr;
  }

  template <typename T>
  AuditFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  // NOLINTNEXTLINE(google-explicit-constructor): enables `return builder;`.
  operator Status() const { return Status::Internal(stream_.str()); }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace stagger

/// Inside a function returning Status (or Result<T>): verifies an
/// invariant and, on violation, returns Status::Internal with a
/// formatted message.  Context may be streamed:
///
///   STAGGER_AUDIT_VERIFY(disk == expected)
///       << "; fragment " << j << " landed on disk " << disk;
#define STAGGER_AUDIT_VERIFY(condition)           \
  if (condition) {                                \
  } else /* NOLINT(readability-else-after-return) */ \
    return ::stagger::internal::AuditFailure(__FILE__, __LINE__, #condition)

#endif  // STAGGER_UTIL_CHECK_H_
