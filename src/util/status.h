// Lightweight Status type for recoverable-error reporting, in the style of
// Arrow / RocksDB: functions that can fail return a Status (or Result<T>,
// see result.h) instead of throwing.  Exceptions are reserved for
// programmer errors surfaced through STAGGER_CHECK (see logging.h).

#ifndef STAGGER_UTIL_STATUS_H_
#define STAGGER_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace stagger {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a value outside the valid domain.
  kNotFound = 2,          ///< A named entity (object, disk, replica) is absent.
  kAlreadyExists = 3,     ///< Attempt to create an entity that exists.
  kResourceExhausted = 4, ///< Out of disk space, bandwidth, or buffers.
  kFailedPrecondition = 5,///< Operation is not valid in the current state.
  kOutOfRange = 6,        ///< Index past the end of a collection.
  kUnimplemented = 7,     ///< Feature intentionally not provided.
  kInternal = 8,          ///< Invariant violation inside the library.
};

/// \brief Returns the canonical lower-case name of a status code
/// (e.g. "invalid-argument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// Status is cheap to copy in the OK case (a null pointer); error states
/// allocate a small shared payload.  All factory helpers are static, e.g.
/// `Status::InvalidArgument("stride must be in [1, D]")`.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }
  bool IsFailedPrecondition() const { return code() == StatusCode::kFailedPrecondition; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;  // null == OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller of the enclosing function.
#define STAGGER_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::stagger::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace stagger

#endif  // STAGGER_UTIL_STATUS_H_
