// Plain-text and CSV table rendering for the benchmark harnesses, so
// every bench prints paper-style rows without ad-hoc formatting code.

#ifndef STAGGER_UTIL_TABLE_H_
#define STAGGER_UTIL_TABLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace stagger {

/// \brief Accumulates rows of string cells and renders them as an
/// aligned ASCII table or as CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; its width must match the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with `Format`.
  template <typename... Ts>
  void AddRowValues(const Ts&... values) {
    AddRow({Format(values)...});
  }

  /// Fixed-point with `digits` decimals, e.g. Format(3.14159, 2) == "3.14".
  static std::string Format(double v, int digits = 2);
  static std::string Format(int64_t v);
  static std::string Format(int v) { return Format(static_cast<int64_t>(v)); }
  static std::string Format(size_t v) { return Format(static_cast<int64_t>(v)); }
  static std::string Format(const std::string& v) { return v; }
  static std::string Format(const char* v) { return v; }

  /// Renders an aligned table with a separator under the header.
  void Print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (no quoting of commas — cells are numeric
  /// or simple identifiers by construction).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stagger

#endif  // STAGGER_UTIL_TABLE_H_
