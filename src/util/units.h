// Strongly-typed physical quantities used throughout the simulator:
// simulated time (integer microseconds), data sizes (bytes), and
// bandwidths (bits per second).  Keeping time integral makes event
// ordering exact and runs reproducible.
//
// Conventions follow the paper: "mbps" means 1e6 bits per second,
// "megabyte" means 1e6 bytes (the paper's 1.512 megabyte cylinder).

#ifndef STAGGER_UTIL_UNITS_H_
#define STAGGER_UTIL_UNITS_H_

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

#include "util/check.h"

namespace stagger {

/// \brief Simulated time as a count of microseconds since simulation start.
///
/// Arithmetic (+, -, scaling) is supported; multiplication of two times is
/// deliberately not.  Use the factory helpers (Micros/Millis/Seconds) rather
/// than raw constructors in application code.
class SimTime {
 public:
  constexpr SimTime() : micros_(0) {}
  constexpr explicit SimTime(int64_t micros) : micros_(micros) {}

  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Micros(int64_t us) { return SimTime(us); }
  static constexpr SimTime Millis(int64_t ms) { return SimTime(ms * 1000); }
  static constexpr SimTime Seconds(double s) {
    return SimTime(static_cast<int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimTime Minutes(double m) { return Seconds(m * 60.0); }
  static constexpr SimTime Hours(double h) { return Seconds(h * 3600.0); }
  /// Largest representable time; used as "never" for deadlines.
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double millis() const { return static_cast<double>(micros_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }
  constexpr double hours() const { return seconds() / 3600.0; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime other) const { return SimTime(micros_ + other.micros_); }
  constexpr SimTime operator-(SimTime other) const { return SimTime(micros_ - other.micros_); }
  constexpr SimTime operator*(int64_t n) const { return SimTime(micros_ * n); }
  SimTime& operator+=(SimTime other) { micros_ += other.micros_; return *this; }
  SimTime& operator-=(SimTime other) { micros_ -= other.micros_; return *this; }

  /// Integer division: how many whole `unit`s fit in this duration.
  constexpr int64_t DivFloor(SimTime unit) const {
    STAGGER_DCHECK(unit.micros_ > 0);
    int64_t q = micros_ / unit.micros_;
    if ((micros_ % unit.micros_ != 0) && ((micros_ < 0) != (unit.micros_ < 0))) --q;
    return q;
  }

  std::string ToString() const;

 private:
  int64_t micros_;
};

std::ostream& operator<<(std::ostream& os, SimTime t);

/// \brief Data size in bytes (decimal units: 1 MB = 1e6 bytes, as the paper).
class DataSize {
 public:
  constexpr DataSize() : bytes_(0) {}
  constexpr explicit DataSize(int64_t bytes) : bytes_(bytes) {}

  static constexpr DataSize Bytes(int64_t b) { return DataSize(b); }
  static constexpr DataSize KB(double kb) {
    return DataSize(static_cast<int64_t>(kb * 1e3 + 0.5));
  }
  static constexpr DataSize MB(double mb) {
    return DataSize(static_cast<int64_t>(mb * 1e6 + 0.5));
  }
  static constexpr DataSize GB(double gb) {
    return DataSize(static_cast<int64_t>(gb * 1e9 + 0.5));
  }

  constexpr int64_t bytes() const { return bytes_; }
  constexpr double megabytes() const { return static_cast<double>(bytes_) / 1e6; }
  constexpr double gigabytes() const { return static_cast<double>(bytes_) / 1e9; }
  constexpr double bits() const { return static_cast<double>(bytes_) * 8.0; }
  constexpr double megabits() const { return bits() / 1e6; }

  constexpr auto operator<=>(const DataSize&) const = default;
  constexpr DataSize operator+(DataSize o) const { return DataSize(bytes_ + o.bytes_); }
  constexpr DataSize operator-(DataSize o) const { return DataSize(bytes_ - o.bytes_); }
  constexpr DataSize operator*(int64_t n) const { return DataSize(bytes_ * n); }
  DataSize& operator+=(DataSize o) { bytes_ += o.bytes_; return *this; }
  DataSize& operator-=(DataSize o) { bytes_ -= o.bytes_; return *this; }

  std::string ToString() const;

 private:
  int64_t bytes_;
};

std::ostream& operator<<(std::ostream& os, DataSize s);

/// \brief Bandwidth in bits per second.  `Bandwidth::Mbps(20)` is the
/// paper's B_Disk.
class Bandwidth {
 public:
  constexpr Bandwidth() : bits_per_sec_(0) {}
  constexpr explicit Bandwidth(double bits_per_sec) : bits_per_sec_(bits_per_sec) {}

  static constexpr Bandwidth BitsPerSec(double bps) { return Bandwidth(bps); }
  static constexpr Bandwidth Mbps(double mbps) { return Bandwidth(mbps * 1e6); }

  constexpr double bits_per_sec() const { return bits_per_sec_; }
  constexpr double mbps() const { return bits_per_sec_ / 1e6; }

  constexpr auto operator<=>(const Bandwidth&) const = default;
  constexpr Bandwidth operator+(Bandwidth o) const {
    return Bandwidth(bits_per_sec_ + o.bits_per_sec_);
  }
  constexpr Bandwidth operator-(Bandwidth o) const {
    return Bandwidth(bits_per_sec_ - o.bits_per_sec_);
  }
  constexpr Bandwidth operator*(double f) const { return Bandwidth(bits_per_sec_ * f); }
  constexpr double operator/(Bandwidth o) const { return bits_per_sec_ / o.bits_per_sec_; }

  std::string ToString() const;

 private:
  double bits_per_sec_;
};

std::ostream& operator<<(std::ostream& os, Bandwidth b);

/// Time to move `size` at rate `bw`; rounds up to whole microseconds so
/// transfers never finish early.
SimTime TransferTime(DataSize size, Bandwidth bw);

/// Data moved in `t` at rate `bw` (rounded down to whole bytes).
DataSize DataMoved(Bandwidth bw, SimTime t);

/// ceil(a / b) for positive integers.
constexpr int64_t CeilDiv(int64_t a, int64_t b) {
  STAGGER_DCHECK(b > 0);
  return (a + b - 1) / b;
}

/// Non-negative remainder: PositiveMod(-1, 10) == 9.
constexpr int64_t PositiveMod(int64_t a, int64_t m) {
  STAGGER_DCHECK(m > 0);
  int64_t r = a % m;
  return r < 0 ? r + m : r;
}

}  // namespace stagger

#endif  // STAGGER_UTIL_UNITS_H_
