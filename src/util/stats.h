// Streaming statistics helpers used by the metrics layer: running
// mean/variance (Welford), min/max, fixed-bucket histograms with
// percentile queries, and time-weighted averages for utilizations.

#ifndef STAGGER_UTIL_STATS_H_
#define STAGGER_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/units.h"

namespace stagger {

/// \brief Running count/mean/variance/min/max over a stream of doubles.
class StreamingStats {
 public:
  void Add(double x);
  /// Merges another accumulator into this one.
  void Merge(const StreamingStats& other);
  void Reset();

  int64_t count() const { return count_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  /// Mean of added samples; 0 if empty.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 if fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Fixed-width-bucket histogram over [lo, hi) with overflow buckets.
class Histogram {
 public:
  /// \param lo       lower bound of the tracked range.
  /// \param hi       upper bound of the tracked range (must exceed lo).
  /// \param buckets  number of equal-width buckets (>= 1).
  Histogram(double lo, double hi, int buckets);

  void Add(double x);
  int64_t count() const { return count_; }
  double mean() const { return stats_.mean(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }

  /// Value at quantile q in [0, 1], interpolated within a bucket.
  /// Returns 0 for an empty histogram.
  double Quantile(double q) const;

  /// Multi-line textual rendering, for debug output.
  std::string ToString() const;

 private:
  double lo_, hi_, width_;
  std::vector<int64_t> buckets_;  // [underflow, b0..bN-1, overflow]
  int64_t count_ = 0;
  StreamingStats stats_;
};

/// \brief Exact streaming quantiles: stores every sample and sorts
/// lazily on the first query after an Add/Merge, so a hot Add path pays
/// one amortized push_back and queries pay O(n log n) only when the
/// sample set actually changed.  Intended for admission-latency
/// percentile reporting (p50/p95/p99), where sample counts are bounded
/// by the number of requests in a run — use Histogram when an
/// approximate, bounded-memory answer is enough.
class QuantileTracker {
 public:
  void Add(double x);
  /// Merges another tracker's samples into this one.
  void Merge(const QuantileTracker& other);
  void Reset();

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }

  /// Exact value at quantile q in [0, 1] with linear interpolation
  /// between closest ranks (position q * (n - 1)); 0 for an empty
  /// tracker.  q is clamped to [0, 1].
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }
  double min() const { return Quantile(0.0); }
  double max() const { return Quantile(1.0); }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// \brief Time-weighted average of a piecewise-constant signal, e.g. the
/// number of busy disks.  Call `Set(t, value)` at every change; `Average`
/// integrates value over time between changes.
class TimeWeighted {
 public:
  void Set(SimTime now, double value);
  /// Time-average of the signal from the first Set through `now`.
  double Average(SimTime now) const;
  double current() const { return value_; }

 private:
  bool started_ = false;
  SimTime last_change_;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
  SimTime start_;
};

}  // namespace stagger

#endif  // STAGGER_UTIL_STATS_H_
