// Minimal streaming logger plus CHECK macros, in the style of
// glog / arrow::util::logging.  STAGGER_CHECK aborts on violated
// invariants (programmer errors); recoverable errors use Status.

#ifndef STAGGER_UTIL_LOGGING_H_
#define STAGGER_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace stagger {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are discarded.
/// Defaults to kWarning so library consumers are quiet by default.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression when a log statement is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) { return *this; }
};

/// Gives a streamed LogMessage expression type void inside the CHECK
/// ternary.  `&` binds looser than `<<`, so user-streamed context chains
/// onto the LogMessage before voidification.
struct FatalStreamVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace stagger

#define STAGGER_LOG(level)                                               \
  ::stagger::internal::LogMessage(::stagger::LogLevel::k##level, __FILE__, __LINE__)

/// Aborts with a diagnostic if `condition` is false.  Additional context
/// may be streamed: STAGGER_CHECK(x > 0) << "x=" << x;
#define STAGGER_CHECK(condition)                                         \
  (condition) ? static_cast<void>(0)                                     \
              : ::stagger::internal::FatalStreamVoidify() &              \
                    ::stagger::internal::LogMessage(                     \
                        ::stagger::LogLevel::kFatal, __FILE__, __LINE__) \
                        << "Check failed: " #condition " "

#define STAGGER_CHECK_EQ(a, b) STAGGER_CHECK((a) == (b))
#define STAGGER_CHECK_NE(a, b) STAGGER_CHECK((a) != (b))
#define STAGGER_CHECK_LT(a, b) STAGGER_CHECK((a) < (b))
#define STAGGER_CHECK_LE(a, b) STAGGER_CHECK((a) <= (b))
#define STAGGER_CHECK_GT(a, b) STAGGER_CHECK((a) > (b))
#define STAGGER_CHECK_GE(a, b) STAGGER_CHECK((a) >= (b))

#ifndef NDEBUG
#define STAGGER_DCHECK(condition) STAGGER_CHECK(condition)
#else
#define STAGGER_DCHECK(condition) \
  while (false) STAGGER_CHECK(condition)
#endif

#endif  // STAGGER_UTIL_LOGGING_H_
