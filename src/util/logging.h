// Minimal streaming logger in the style of glog / arrow::util::logging.
// The contract macros (STAGGER_CHECK and friends) that route fatal
// diagnostics through this logger live in util/check.h.

#ifndef STAGGER_UTIL_LOGGING_H_
#define STAGGER_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace stagger {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are discarded.
/// Defaults to kWarning so library consumers are quiet by default.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression when a log statement is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) { return *this; }
};

/// Gives a streamed LogMessage expression type void inside the CHECK
/// ternary.  `&` binds looser than `<<`, so user-streamed context chains
/// onto the LogMessage before voidification.
struct FatalStreamVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace stagger

#define STAGGER_LOG(level)                                               \
  ::stagger::internal::LogMessage(::stagger::LogLevel::k##level, __FILE__, __LINE__)

#endif  // STAGGER_UTIL_LOGGING_H_
