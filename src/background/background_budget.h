// A shared idle-bandwidth budget for background subsystems.
//
// The interval scheduler exposes one idle-bandwidth hook per interval:
// whatever disks display traffic left idle may be used for maintenance
// work.  Historically the rebuild manager was the only taker and did
// its own availability checks; with scrubbing (src/scrub/) joining —
// and GC/replication expected later (ROADMAP item 3) — the accounting
// moves here so consumers cannot fight over the same idle disk or
// starve one another.
//
// Per interval the arbiter measures the idle bandwidth
// (DiskArray::IdleAvailableCount), then offers each registered consumer
// a BackgroundGrant in priority order (rebuild before scrub).  A grant
// enforces the consumer's per-interval read cap and routes every
// reservation through the array's busy bitmap, so a disk a high-
// priority consumer takes is simply no longer grantable to the next —
// the combined draw structurally cannot exceed the measured idle
// bandwidth, and the arbiter audits exactly that every interval.
//
// Starvation avoidance: a consumer with a positive floor that has work
// but has made no progress for `starvation_floor_intervals` intervals
// is served *first* the next interval, ahead of higher priorities, for
// one interval.  This bounds scrub latency under a rebuild storm
// without giving scrub steady-state priority.

#ifndef STAGGER_BACKGROUND_BACKGROUND_BUDGET_H_
#define STAGGER_BACKGROUND_BACKGROUND_BUDGET_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "disk/disk_array.h"
#include "util/status.h"

namespace stagger {

/// \brief One interval's allowance for one background consumer.
///
/// All background I/O must go through a grant: CanRead/ReadSlot check
/// and take slot reservations against the array's live busy bitmap plus
/// this consumer's read cap; CanWriteDrive/WriteDrive do the same for
/// spare-drive writes (uncapped — a spare serves no display traffic, so
/// its bandwidth is not part of the foreground budget).
class BackgroundGrant {
 public:
  /// \param max_reads per-interval read cap; 0 means uncapped.
  BackgroundGrant(DiskArray* disks, int64_t max_reads)
      : disks_(disks),
        max_reads_(max_reads == 0 ? std::numeric_limits<int64_t>::max()
                                  : max_reads) {}

  /// True when `slot` may be read this interval: budget left, the slot
  /// available, and nobody (foreground or a higher-priority consumer)
  /// already reserved it.
  bool CanRead(DiskId slot) const {
    return reads_ < max_reads_ && disks_->IsAvailable(slot) &&
           !disks_->SlotBusy(slot);
  }
  /// Takes the read reservation.  Precondition: CanRead(slot).
  void ReadSlot(DiskId slot) {
    disks_->ReserveSlot(slot);
    ++reads_;
    if (shard_starts_ != nullptr) {
      // Charge the read to the node group owning the slot.  The shard
      // tallies PARTITION the same reservations the global counter
      // sees — one bitmap, one charge per read — so per-shard
      // arbitration can never double-count the global budget (audited:
      // the tallies must sum to reads_granted).
      const auto it = std::upper_bound(shard_starts_->begin(),
                                       shard_starts_->end(), slot);
      ++(*shard_reads_)[static_cast<size_t>(it - shard_starts_->begin()) - 1];
    }
  }

  /// Routes per-shard read accounting (see BackgroundBudget::
  /// SetShardBoundaries); both pointees must outlive the grant.
  void SetShardAccounting(const std::vector<DiskId>* shard_starts,
                          std::vector<int64_t>* shard_reads) {
    shard_starts_ = shard_starts;
    shard_reads_ = shard_reads;
  }

  bool CanWriteDrive(int32_t drive) const { return !disks_->DriveBusy(drive); }
  /// Takes a spare-drive write reservation.  Precondition:
  /// CanWriteDrive(drive).
  void WriteDrive(int32_t drive) {
    disks_->ReserveDrive(drive);
    ++spare_writes_;
  }

  int64_t reads_remaining() const { return max_reads_ - reads_; }
  int64_t reads() const { return reads_; }
  int64_t spare_writes() const { return spare_writes_; }

 private:
  DiskArray* disks_;
  int64_t max_reads_;
  int64_t reads_ = 0;
  int64_t spare_writes_ = 0;
  const std::vector<DiskId>* shard_starts_ = nullptr;  // not owned
  std::vector<int64_t>* shard_reads_ = nullptr;        // not owned
};

/// \brief A background subsystem that drains idle bandwidth.
class BackgroundConsumer {
 public:
  virtual ~BackgroundConsumer() = default;
  /// Stable name for stats lookup and reporting.
  virtual const char* name() const = 0;
  /// True when the consumer would use a grant this interval.
  virtual bool HasWork() const = 0;
  /// Runs one interval's work within `grant`; returns the number of
  /// work units completed (fragments rebuilt, stripes scrubbed, ...).
  virtual int64_t RunIdle(int64_t interval, BackgroundGrant* grant) = 0;
};

/// \brief Registration-time policy for one consumer.
struct BackgroundConsumerConfig {
  /// Lower serves first (rebuild 0, scrub 1); ties in registration
  /// order.
  int32_t priority = 0;
  /// Per-interval read cap; 0 = uncapped.
  int64_t max_reads_per_interval = 0;
  /// > 0: if the consumer has work but makes no progress for this many
  /// intervals, it is served first for one interval.  0 disables.
  int64_t starvation_floor_intervals = 0;
};

/// \brief Per-consumer progress accounting.
struct BackgroundConsumerStats {
  int64_t granted_intervals = 0;   ///< intervals offered a grant with work
  int64_t progress_intervals = 0;  ///< intervals with > 0 work units
  int64_t starved_intervals = 0;   ///< had work, got nothing done
  int64_t boosted_runs = 0;        ///< starvation-floor priority boosts
  int64_t ops = 0;                 ///< total work units completed
  int64_t reads = 0;
  int64_t spare_writes = 0;
};

/// \brief Arbiter-wide counters.
struct BackgroundBudgetMetrics {
  int64_t intervals = 0;
  /// Sum over intervals of the measured idle available bandwidth.
  int64_t idle_capacity = 0;
  int64_t reads_granted = 0;
  int64_t spare_writes_granted = 0;
  /// Intervals where combined consumer reads exceeded the measured
  /// idle bandwidth.  Any non-zero value is an arbiter bug; audited.
  int64_t budget_violations = 0;
};

/// \brief Priority arbiter over the idle-bandwidth hook.
///
/// Install exactly one per scheduler via
/// IntervalScheduler::SetIdleBandwidthHook; consumers register once at
/// setup.  Single-threaded like the scheduler tick that drives it.
class BackgroundBudget {
 public:
  explicit BackgroundBudget(DiskArray* disks) : disks_(disks) {}

  /// Registers `consumer`; `consumer` must outlive the budget.
  void Register(BackgroundConsumer* consumer,
                const BackgroundConsumerConfig& config);

  /// Serves every consumer for one interval (see file comment for the
  /// boost-then-priority order).
  void OnIdleInterval(int64_t interval);

  const BackgroundBudgetMetrics& metrics() const { return metrics_; }
  /// Stats of a registered consumer; CHECK-fails for strangers.
  const BackgroundConsumerStats& stats(const BackgroundConsumer* consumer) const;

  /// Enables per-node-group read accounting for a sharded array:
  /// `shard_starts` holds each shard's first global disk index,
  /// ascending, starting at 0 (the contiguous-slice topology of
  /// node/shard_map.h, passed as plain boundaries because this layer
  /// sits below node/).  Every grant read is additionally tallied
  /// against the shard owning the slot — same reservation, same global
  /// counter, one extra partitioned tally — so the audit can pin
  /// sum(per-shard reads) == reads_granted.
  void SetShardBoundaries(std::vector<DiskId> shard_starts);

  /// Cumulative grant reads per shard; empty unless SetShardBoundaries
  /// was called.
  const std::vector<int64_t>& shard_reads_granted() const {
    return shard_reads_granted_;
  }

  /// Internal-consistency audit: zero budget violations, and (when
  /// sharded accounting is on) the per-shard tallies partition the
  /// global read count exactly.
  Status AuditState() const;

 private:
  struct Entry {
    BackgroundConsumer* consumer = nullptr;
    BackgroundConsumerConfig config;
    BackgroundConsumerStats stats;
    int64_t last_progress_interval = -1;
  };

  DiskArray* disks_;
  /// Sorted by (priority, registration order) at Register time.
  std::vector<Entry> entries_;
  /// Scratch serve order, rebuilt per interval; index into entries_.
  std::vector<size_t> serve_order_;
  /// Shard slice starts (ascending, [0] == 0) and cumulative per-shard
  /// grant reads; both empty unless SetShardBoundaries was called.
  std::vector<DiskId> shard_starts_;
  std::vector<int64_t> shard_reads_granted_;
  BackgroundBudgetMetrics metrics_;
};

}  // namespace stagger

#endif  // STAGGER_BACKGROUND_BACKGROUND_BUDGET_H_
