#include "background/background_budget.h"

#include <algorithm>

#include "util/check.h"

namespace stagger {

void BackgroundBudget::Register(BackgroundConsumer* consumer,
                                const BackgroundConsumerConfig& config) {
  STAGGER_CHECK(consumer != nullptr);
  for (const Entry& e : entries_) {
    STAGGER_CHECK(e.consumer != consumer)
        << "background consumer '" << consumer->name()
        << "' registered twice";
  }
  Entry entry;
  entry.consumer = consumer;
  entry.config = config;
  // Stable insert keeps entries_ ordered by (priority, registration
  // order), so the steady-state serve order needs no per-interval sort.
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) {
                           return e.config.priority > config.priority;
                         });
  entries_.insert(it, std::move(entry));
}

void BackgroundBudget::SetShardBoundaries(std::vector<DiskId> shard_starts) {
  STAGGER_CHECK(!shard_starts.empty() && shard_starts.front() == 0)
      << "shard boundaries must start at disk 0";
  STAGGER_CHECK(std::is_sorted(shard_starts.begin(), shard_starts.end()))
      << "shard boundaries must be ascending";
  shard_starts_ = std::move(shard_starts);
  shard_reads_granted_.assign(shard_starts_.size(), 0);
}

void BackgroundBudget::OnIdleInterval(int64_t interval) {
  if (entries_.empty()) return;
  const int64_t idle_before = disks_->IdleAvailableCount();
  ++metrics_.intervals;
  metrics_.idle_capacity += idle_before;

  // Starvation-boosted consumers jump the priority queue for one
  // interval; everyone else follows in (priority, registration) order.
  serve_order_.clear();
  for (size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (e.config.starvation_floor_intervals > 0 && e.consumer->HasWork() &&
        interval - e.last_progress_interval >=
            e.config.starvation_floor_intervals) {
      serve_order_.push_back(i);
      ++e.stats.boosted_runs;
    }
  }
  const size_t boosted = serve_order_.size();
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (std::find(serve_order_.begin(), serve_order_.begin() + boosted, i) ==
        serve_order_.begin() + boosted) {
      serve_order_.push_back(i);
    }
  }

  int64_t total_reads = 0;
  for (const size_t i : serve_order_) {
    Entry& e = entries_[i];
    if (!e.consumer->HasWork()) continue;
    BackgroundGrant grant(disks_, e.config.max_reads_per_interval);
    if (!shard_starts_.empty()) {
      grant.SetShardAccounting(&shard_starts_, &shard_reads_granted_);
    }
    const int64_t ops = e.consumer->RunIdle(interval, &grant);
    ++e.stats.granted_intervals;
    if (ops > 0) {
      ++e.stats.progress_intervals;
      e.last_progress_interval = interval;
    } else {
      ++e.stats.starved_intervals;
    }
    e.stats.ops += ops;
    e.stats.reads += grant.reads();
    e.stats.spare_writes += grant.spare_writes();
    total_reads += grant.reads();
    metrics_.reads_granted += grant.reads();
    metrics_.spare_writes_granted += grant.spare_writes();
  }

  // Every grant read flipped a previously idle, available slot busy, so
  // this can only trip if the grant accounting itself breaks.
  if (total_reads > idle_before) {
    ++metrics_.budget_violations;
#ifdef STAGGER_AUDIT
    STAGGER_CHECK(false) << "background consumers read " << total_reads
                         << " slots in an interval with only " << idle_before
                         << " idle";
#endif
  }
}

const BackgroundConsumerStats& BackgroundBudget::stats(
    const BackgroundConsumer* consumer) const {
  for (const Entry& e : entries_) {
    if (e.consumer == consumer) return e.stats;
  }
  STAGGER_CHECK(false) << "consumer is not registered with this budget";
  static const BackgroundConsumerStats kEmpty;
  return kEmpty;
}

Status BackgroundBudget::AuditState() const {
  STAGGER_AUDIT_VERIFY(metrics_.budget_violations == 0)
      << "; background consumers exceeded the idle-bandwidth budget in "
      << metrics_.budget_violations << " intervals";
  if (!shard_reads_granted_.empty()) {
    int64_t shard_total = 0;
    for (const int64_t reads : shard_reads_granted_) shard_total += reads;
    STAGGER_AUDIT_VERIFY(shard_total == metrics_.reads_granted)
        << "; per-shard read tallies sum to " << shard_total << " but "
        << metrics_.reads_granted
        << " reads were granted globally (double-counted or dropped charge)";
  }
  return Status::OK();
}

}  // namespace stagger
