#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace stagger {
namespace {

// A bucket is compacted when at least this many cancelled entries have
// accumulated AND they make up half the unconsumed region, so compaction
// cost is amortized against the cancellations that caused it.
constexpr uint32_t kCompactDeadMin = 64;

}  // namespace

EventQueue::EventQueue() : ring_(kNumDays), ring_occupied_(kNumDays) {}

uint32_t EventQueue::AllocSlot() {
  if (free_head_ != kNoSlot) {
    const uint32_t slot = free_head_;
    free_head_ = SlotAt(slot).next_free;
    return slot;
  }
  if ((num_slots_ & (kSlotsPerChunk - 1)) == 0) {
    slot_chunks_.emplace_back(new Slot[kSlotsPerChunk]);
  }
  return num_slots_++;
}

void EventQueue::FreeSlot(uint32_t slot) {
  Slot& s = SlotAt(slot);
  s.fn = nullptr;  // destroy the closure eagerly (no lazy-deletion leak)
  s.live = false;
  // gen 0 is reserved: a (slot 0, gen 0) handle would alias the invalid
  // default-constructed EventHandle.
  if (++s.gen == 0) s.gen = 1;
  s.next_free = free_head_;
  free_head_ = slot;
}

EventQueue::Day* EventQueue::ResolveDay(int64_t day, bool create) {
  if (InRing(day)) {
    // ring_base_ is a multiple of kNumDays, so day & (kNumDays-1) is the
    // ring offset even for negative day numbers (two's complement).
    const int32_t off = static_cast<int32_t>(day & (kNumDays - 1));
    Day* d = &ring_[static_cast<size_t>(off)];
    if (!ring_occupied_.Test(off)) {
      if (!create) return nullptr;
      ring_occupied_.Set(off);
    }
    return d;
  }
  if (!create) {
    auto it = overflow_.find(day);
    return it == overflow_.end() ? nullptr : &it->second;
  }
  return &overflow_[day];
}

void EventQueue::InsertEntry(const Entry& e) {
  const int64_t day = DayOf(e.time_us);
  Day* d;
  if (InRing(day)) {
    // Ring fast path: marking an already-occupied day is idempotent, so
    // skip ResolveDay's test-and-branch.
    const int32_t off = static_cast<int32_t>(day & (kNumDays - 1));
    ring_occupied_.Set(off);
    d = &ring_[static_cast<size_t>(off)];
  } else {
    d = ResolveDay(day, /*create=*/true);
  }
  if (d->consumed == d->entries.size() && d->consumed != 0) {
    // Every buffered entry was already popped or staged; restart the
    // bucket instead of growing behind a fully-consumed prefix.
    d->entries.clear();
    d->consumed = 0;
    d->dead = 0;
    d->sorted = false;
  }
  if (d->sorted) {
    // The active front bucket stays sorted: place the entry by full
    // (time, priority, seq) key.  Equal-key entries differ in seq, so
    // upper_bound yields a unique deterministic position.
    auto it = std::upper_bound(
        d->entries.begin() + static_cast<ptrdiff_t>(d->consumed),
        d->entries.end(), e, KeyLess);
    d->entries.insert(it, e);
  } else {
    d->entries.push_back(e);
  }
  if (day < cursor_) cursor_ = day;
  // An earlier day outranks the memoized front; a same-day insert lands
  // behind (or, sorted, at) the consumption point, keeping it valid.
  if (front_day_ != nullptr && day < front_day_num_) front_day_ = nullptr;
}

void EventQueue::ReleaseDay(int64_t day, Day* d) {
  if (d == front_day_) front_day_ = nullptr;
  if (InRing(day)) {
    // Keep the vector's capacity: the ring slot will host this
    // allocation again one year from now.
    d->entries.clear();
    d->consumed = 0;
    d->dead = 0;
    d->sorted = false;
    ring_occupied_.Clear(static_cast<int32_t>(day & (kNumDays - 1)));
  } else {
    overflow_.erase(day);  // invalidates *d
  }
}

void EventQueue::RebaseRing(int64_t day) {
  STAGGER_DCHECK(ring_occupied_.FindNextSet(0) < 0);
  STAGGER_DCHECK(day >= ring_base_ + kNumDays);
  front_day_ = nullptr;
  ring_base_ = day & ~int64_t{kNumDays - 1};
  cursor_ = ring_base_;
  // Migrate every overflow day that now falls inside the ring's year.
  auto it = overflow_.begin();
  while (it != overflow_.end() && it->first < ring_base_ + kNumDays) {
    const int32_t off = static_cast<int32_t>(it->first & (kNumDays - 1));
    ring_[static_cast<size_t>(off)] = std::move(it->second);
    ring_occupied_.Set(off);
    it = overflow_.erase(it);
  }
}

STAGGER_HOT_PATH EventQueue::Day* EventQueue::EnsureFront(int64_t* day_index) {
  // Memoized front: the common case is a run of pops from one sorted
  // bucket, so skip the overflow probe + bitmap walk + sort check.
  if (front_day_ != nullptr && front_day_->consumed < front_day_->entries.size() &&
      EntryLive(front_day_->entries[front_day_->consumed])) {
    if (day_index != nullptr) *day_index = front_day_num_;
    return front_day_;
  }
  for (;;) {
    int64_t day;
    Day* d;
    if (!overflow_.empty() && overflow_.begin()->first < ring_base_) {
      // Days before the ring's year (events scheduled in the relative
      // past) are served straight from the ordered map.
      day = overflow_.begin()->first;
      d = &overflow_.begin()->second;
    } else {
      const int64_t from = cursor_ - ring_base_;
      const int32_t off =
          ring_occupied_.FindNextSet(from > 0 ? static_cast<int32_t>(from) : 0);
      if (off >= 0) {
        day = ring_base_ + off;
        d = &ring_[static_cast<size_t>(off)];
      } else if (!overflow_.empty()) {
        RebaseRing(overflow_.begin()->first);
        continue;
      } else {
        return nullptr;  // every live event is staged, or none exist
      }
    }
    cursor_ = day;
    if (!d->sorted) SortBucket(d);
    while (d->consumed < d->entries.size()) {
      const Entry& e = d->entries[d->consumed];
      if (EntryLive(e)) {
        front_day_ = d;
        front_day_num_ = day;
        if (day_index != nullptr) *day_index = day;
        return d;
      }
      ++d->consumed;  // cancelled: its closure is long freed, skip
      if (d->dead > 0) --d->dead;
    }
    ReleaseDay(day, d);
  }
}

void EventQueue::SortBucket(Day* d) {
  auto begin = d->entries.begin() + static_cast<ptrdiff_t>(d->consumed);
  const size_t n = static_cast<size_t>(d->entries.end() - begin);
  d->sorted = true;
  if (n < 2) return;
  if (n >= (size_t{1} << 19)) {
    // Packed keys below reserve 19 bits for the position; a larger
    // range falls back to the direct three-field comparison sort.
    std::sort(begin, d->entries.end(), KeyLess);
    return;
  }
  // Sort packed 8-byte keys instead of 32-byte entries, then apply the
  // permutation: the sort's data-dependent swaps move a quarter of the
  // bytes, and each comparison is one integer compare instead of up to
  // three.  Key layout, most significant first:
  //   offset : 13  time within the day (time_us & (kDayMicros-1))
  //   pri    : 32  priority, biased to preserve order unsigned
  //   index  : 19  position in the unsorted suffix
  // The suffix is normally appended in schedule order, so index order
  // IS seq order and the key sort reproduces (time, priority, seq)
  // exactly (ties are impossible: index is unique).  UnstageRemainder
  // can violate that by appending an *older* entry behind newer ones;
  // the packing pass watches for a seq inversion and falls back to the
  // direct comparison sort.
  sort_keys_.clear();
  uint64_t prev_seq = 0;
  for (size_t i = 0; i < n; ++i) {
    const Entry& e = begin[i];
    if (e.seq < prev_seq) {
      std::sort(begin, d->entries.end(), KeyLess);
      return;
    }
    prev_seq = e.seq;
    const uint64_t offset =
        static_cast<uint64_t>(e.time_us) & (kDayMicros - 1);
    const uint64_t pri =
        static_cast<uint32_t>(e.priority) ^ (uint32_t{1} << 31);
    sort_keys_.push_back((offset << 51) | (pri << 19) | i);
  }
  std::sort(sort_keys_.begin(), sort_keys_.end());
  sort_scratch_.clear();
  for (const uint64_t key : sort_keys_) {
    sort_scratch_.push_back(begin[key & ((size_t{1} << 19) - 1)]);
  }
  std::copy(sort_scratch_.begin(), sort_scratch_.end(), begin);
}

EventHandle EventQueue::Schedule(SimTime when, EventFn fn, int priority) {
  const uint32_t slot = AllocSlot();
  Slot& s = SlotAt(slot);
  s.fn = std::move(fn);
  s.time_us = when.micros();
  s.priority = priority;
  s.live = true;
  const Entry e{s.time_us, next_seq_++, priority, slot, s.gen};
  if (stage_open_ &&
      (e.time_us < stage_time_us_ ||
       (e.time_us == stage_time_us_ && e.priority < stage_priority_))) {
    // The new event outranks the open batch, so the batch's remaining
    // events no longer form the queue's minimum; put them back in their
    // bucket and let the next PopInterval() re-derive the front.  (An
    // equal-key schedule needs nothing: its seq is larger than every
    // staged entry's, so bucket insertion already orders it after them.)
    UnstageRemainder();
  }
  InsertEntry(e);
  ++size_;
  return EventHandle((uint64_t{slot} << 32) | s.gen);
}

bool EventQueue::Cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  const uint32_t slot = static_cast<uint32_t>(handle.id_ >> 32);
  const uint32_t gen = static_cast<uint32_t>(handle.id_);
  // Only live (scheduled, unfired, uncancelled) events can be
  // cancelled; a stale generation means the event already fired or was
  // cancelled (and the slot possibly reused), a no-op returning false.
  if (slot >= num_slots_) return false;
  Slot& s = SlotAt(slot);
  if (!s.live || s.gen != gen) return false;
  NoteDead(s);
  FreeSlot(slot);
  --size_;
  return true;
}

void EventQueue::NoteDead(const Slot& s) {
  if (stage_open_ && s.time_us == stage_time_us_ &&
      s.priority == stage_priority_) {
    // The entry is (most likely) staged: the stage gen-checks at fire
    // time and its buffer dies with the batch, so no bucket accounting.
    // (A same-key entry still in the bucket merely goes uncounted —
    // `dead` is a compaction heuristic, not an invariant.)
    return;
  }
  const int64_t day = DayOf(s.time_us);
  Day* d = ResolveDay(day, /*create=*/false);
  if (d == nullptr) return;
  ++d->dead;
  const size_t remaining = d->entries.size() - d->consumed;
  if (d->dead >= kCompactDeadMin && d->dead * 2 >= remaining) {
    // Keep only live entries (order-preserving, so sortedness holds).
    size_t out = 0;
    for (size_t i = d->consumed; i < d->entries.size(); ++i) {
      if (EntryLive(d->entries[i])) d->entries[out++] = d->entries[i];
    }
    d->entries.resize(out);
    d->consumed = 0;
    d->dead = 0;
    if (d->entries.empty()) ReleaseDay(day, d);
  }
}

STAGGER_HOT_PATH SimTime EventQueue::NextTime() const {
  if (size_ == 0) return SimTime::Max();
  // Advancing past dead (cancelled) entries does not change observable
  // state, so it is safe behind const.
  auto* self = const_cast<EventQueue*>(this);
  if (self->stage_open_) {
    self->SkipDeadStaged();
    if (self->stage_pos_ < self->stage_.size()) return SimTime(stage_time_us_);
    self->CloseStage();
  }
  Day* d = self->EnsureFront(nullptr);
  STAGGER_CHECK(d != nullptr);
  return SimTime(d->entries[d->consumed].time_us);
}

STAGGER_HOT_PATH EventQueue::Fired EventQueue::PopNext() {
  STAGGER_CHECK(size_ != 0) << "PopNext on empty event queue";
  Fired fired;
  if (PopStaged(&fired)) return fired;
  int64_t day;
  Day* d = EnsureFront(&day);
  STAGGER_CHECK(d != nullptr);
  const Entry e = d->entries[d->consumed];
  // Slots are visited in key order — random w.r.t. the slot array — so
  // pull a later entry's slot in now; by the time the pops reach it the
  // line has arrived (same idiom as the scheduler's stream walk).
  if (d->consumed + 4 < d->entries.size()) {
    __builtin_prefetch(&SlotAt(d->entries[d->consumed + 4].slot));
  }
  ++d->consumed;
  if (d->consumed == d->entries.size()) ReleaseDay(day, d);
  Slot& s = SlotAt(e.slot);
  fired.time = SimTime(e.time_us);
  fired.fn = std::move(s.fn);
  FreeSlot(e.slot);
  --size_;
  return fired;
}

STAGGER_HOT_PATH EventQueue::Batch EventQueue::PopInterval() {
  STAGGER_CHECK(size_ != 0) << "PopInterval on empty event queue";
  if (stage_open_) {
    SkipDeadStaged();
    if (stage_pos_ < stage_.size()) {
      size_t live = 0;
      for (size_t i = stage_pos_; i < stage_.size(); ++i) {
        if (EntryLive(stage_[i])) ++live;
      }
      return Batch{SimTime(stage_time_us_), stage_priority_, live};
    }
    CloseStage();
  }
  int64_t day;
  Day* d = EnsureFront(&day);
  STAGGER_CHECK(d != nullptr);
  const Entry& front = d->entries[d->consumed];
  stage_time_us_ = front.time_us;
  stage_priority_ = front.priority;
  // Move the whole same-(time, priority) run — one scheduler interval's
  // cohort — into the stage in one pass.
  size_t live = 0;
  uint32_t i = d->consumed;
  stage_.clear();
  for (; i < d->entries.size(); ++i) {
    const Entry& e = d->entries[i];
    if (e.time_us != stage_time_us_ || e.priority != stage_priority_) break;
    // stagger-lint: allow(hot-path-alloc) -- stage buffer reuses retained capacity across batches
    stage_.push_back(e);
    if (EntryLive(e)) {
      ++live;
    } else if (d->dead > 0) {
      --d->dead;  // the dead entry leaves the bucket with the stage
    }
  }
  d->consumed = i;
  if (d->consumed == d->entries.size()) ReleaseDay(day, d);
  stage_pos_ = 0;
  stage_open_ = true;
  return Batch{SimTime(stage_time_us_), stage_priority_, live};
}

STAGGER_HOT_PATH bool EventQueue::PopStaged(Fired* out) {
  if (!stage_open_) return false;
  while (stage_pos_ < stage_.size()) {
    const Entry e = stage_[stage_pos_];
    ++stage_pos_;
    if (stage_pos_ < stage_.size()) {
      __builtin_prefetch(&SlotAt(stage_[stage_pos_].slot));
    }
    Slot& s = SlotAt(e.slot);
    if (!s.live || s.gen != e.gen) continue;  // cancelled while staged
    out->time = SimTime(e.time_us);
    out->fn = std::move(s.fn);
    FreeSlot(e.slot);
    --size_;
    return true;
  }
  CloseStage();
  return false;
}

void EventQueue::CloseStage() {
  stage_.clear();
  stage_pos_ = 0;
  stage_open_ = false;
}

void EventQueue::SkipDeadStaged() {
  while (stage_pos_ < stage_.size() && !EntryLive(stage_[stage_pos_])) {
    ++stage_pos_;
  }
}

void EventQueue::UnstageRemainder() {
  // The staged remainder holds the smallest keys in the queue, so each
  // live entry lands at its bucket's consumption point (sorted insert);
  // dead ones are dropped here instead of being skipped later.
  for (size_t i = stage_pos_; i < stage_.size(); ++i) {
    if (EntryLive(stage_[i])) InsertEntry(stage_[i]);
  }
  CloseStage();
}

size_t EventQueue::buffered_entries() const {
  size_t n = stage_.size() - stage_pos_;
  for (const Day& d : ring_) n += d.entries.size() - d.consumed;
  for (const auto& [day, d] : overflow_) {
    (void)day;
    n += d.entries.size() - d.consumed;
  }
  return n;
}

}  // namespace stagger
