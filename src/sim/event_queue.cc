#include "sim/event_queue.h"

#include <utility>

#include "util/check.h"

namespace stagger {

EventHandle EventQueue::Schedule(SimTime when, EventFn fn, int priority) {
  const uint64_t id = next_seq_++;
  heap_.push(Entry{when, priority, id, id, std::move(fn)});
  live_ids_.insert(id);
  return EventHandle(id);
}

bool EventQueue::Cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  // Lazy deletion: the heap entry stays put and is skipped when it
  // surfaces.  Only live (scheduled, unfired, uncancelled) ids can be
  // cancelled; anything else is a no-op returning false.
  if (live_ids_.erase(handle.id_) == 0) return false;
  cancelled_ids_.insert(handle.id_);
  return true;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_ids_.find(heap_.top().id);
    if (it == cancelled_ids_.end()) return;
    cancelled_ids_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() const {
  // Purging dead (cancelled) heap entries does not change observable
  // state, so it is safe behind const.
  auto* self = const_cast<EventQueue*>(this);
  self->SkipCancelled();
  if (heap_.empty()) return SimTime::Max();
  return heap_.top().time;
}

EventQueue::Fired EventQueue::PopNext() {
  SkipCancelled();
  STAGGER_CHECK(!heap_.empty()) << "PopNext on empty event queue";
  // priority_queue::top() is const; moving the callback out is safe
  // because the entry is popped immediately after.
  Entry& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, std::move(top.fn)};
  live_ids_.erase(top.id);
  heap_.pop();
  return fired;
}

}  // namespace stagger
