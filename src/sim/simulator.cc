#include "sim/simulator.h"

#include <utility>

#include "util/check.h"

namespace stagger {

EventHandle Simulator::ScheduleAt(SimTime when, EventFn fn, int priority) {
  STAGGER_CHECK(when >= now_) << "event scheduled in the past: " << when
                              << " < now " << now_;
  return events_.Schedule(when, std::move(fn), priority);
}

EventHandle Simulator::ScheduleAfter(SimTime delay, EventFn fn, int priority) {
  STAGGER_CHECK(delay >= SimTime::Zero()) << "negative delay";
  return ScheduleAt(now_ + delay, std::move(fn), priority);
}

bool Simulator::Step() {
  if (events_.empty()) return false;
  EventQueue::Fired fired = events_.PopNext();
  STAGGER_DCHECK(fired.time >= now_);
  now_ = fired.time;
  ++events_executed_;
  fired.fn();
  return true;
}

void Simulator::DispatchBatch() {
  const EventQueue::Batch batch = events_.PopInterval();
  STAGGER_DCHECK(batch.time >= now_);
  now_ = batch.time;
  ++batches_dispatched_;
  // Staged events stay cancellable until popped, and a schedule that
  // outranks the batch closes it early, so this loop fires exactly the
  // events (in exactly the order) a Step() loop would.
  EventQueue::Fired fired;
  while (!stop_requested_ && events_.PopStaged(&fired)) {
    ++events_executed_;
    fired.fn();
  }
}

SimTime Simulator::Run() {
  stop_requested_ = false;
  while (!stop_requested_ && !events_.empty()) {
    DispatchBatch();
  }
  return now_;
}

SimTime Simulator::RunUntil(SimTime deadline) {
  stop_requested_ = false;
  while (!stop_requested_ && !events_.empty() && events_.NextTime() <= deadline) {
    DispatchBatch();
  }
  // Clock semantics: RunUntil advances to the deadline even if the model
  // went quiet earlier, so utilization denominators are exact.  A
  // RequestStop() leaves the clock where the stopping event fired.
  if (!stop_requested_ && now_ < deadline) now_ = deadline;
  return now_;
}

PeriodicTicker::PeriodicTicker(Simulator* sim, SimTime start, SimTime period,
                               std::function<void(int64_t)> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  STAGGER_CHECK(period_ > SimTime::Zero()) << "ticker period must be positive";
  Arm(start);
}

void PeriodicTicker::Arm(SimTime when) {
  next_ = sim_->ScheduleAt(when, [this] {
    const int64_t index = tick_++;
    // Re-arm before invoking so the callback can Stop() the ticker.
    Arm(sim_->Now() + period_);
    fn_(index);
  });
}

void PeriodicTicker::Stop() {
  if (!running_) return;
  running_ = false;
  sim_->Cancel(next_);
}

}  // namespace stagger
