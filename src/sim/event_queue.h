// Pending-event set for the discrete-event kernel: a binary heap keyed
// by (time, priority, sequence number) so simultaneous events fire in a
// deterministic, FIFO order.  Events can be cancelled in O(1) via
// handles (lazy deletion).

#ifndef STAGGER_SIM_EVENT_QUEUE_H_
#define STAGGER_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.h"

namespace stagger {

/// Callback executed when an event fires.
using EventFn = std::function<void()>;

/// \brief Opaque handle to a scheduled event; used to cancel it.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(uint64_t id) : id_(id) {}
  uint64_t id_ = 0;
};

/// \brief Time-ordered pending-event set.
///
/// Not thread-safe — the simulation is single-threaded by design
/// (determinism over parallelism; see DESIGN.md).
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`.  Ties fire in ascending
  /// `priority`, then insertion order.
  EventHandle Schedule(SimTime when, EventFn fn, int priority = 0);

  /// Cancels a previously scheduled event; a handle that already fired
  /// or was cancelled is ignored.  Returns true if the event was live.
  bool Cancel(EventHandle handle);

  bool empty() const { return live_ids_.empty(); }
  size_t size() const { return live_ids_.size(); }

  /// Time of the earliest live event; Max() if empty.
  SimTime NextTime() const;

  /// Removes and returns the earliest live event.
  /// Precondition: !empty().
  struct Fired {
    SimTime time;
    EventFn fn;
  };
  Fired PopNext();

 private:
  struct Entry {
    SimTime time;
    int priority;
    uint64_t seq;
    uint64_t id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<uint64_t> live_ids_;
  std::unordered_set<uint64_t> cancelled_ids_;
  uint64_t next_seq_ = 1;
};

}  // namespace stagger

#endif  // STAGGER_SIM_EVENT_QUEUE_H_
