// Pending-event set for the discrete-event kernel: a calendar (bucket)
// queue keyed by time, ordered by (time, priority, sequence number) so
// simultaneous events fire in a deterministic, FIFO order.
//
// The model is interval-synchronous, so events cluster heavily on a
// small number of distinct instants.  The calendar exploits that:
//
//   * Time is divided into fixed-width "days" of 2^13 us (~8.2 ms); a
//     ring of 256 days (one "year", ~2.1 s) holds the near future, with
//     an ordered overflow map for anything beyond the current year.
//     Scheduling is an O(1) amortized append; each far-future event
//     migrates from the overflow map into the ring at most once.
//   * A day is sorted lazily, only when it becomes the earliest
//     non-empty bucket; a bitmap over the ring finds that bucket with a
//     handful of word scans instead of a heap sift.
//   * All events sharing the earliest (time, priority) — one scheduler
//     interval's worth of work — can be drained as a single batch
//     (PopInterval / PopStaged) instead of one ordered pop per event.
//     Staged events remain cancellable until the instant they fire, so
//     batching is invisible to the model.
//   * Cancellation is O(1) through generation-checked slots and frees
//     the callback eagerly; only a 32-byte trivially-copyable entry
//     stays behind (reclaimed by compaction before it can accumulate).
//
// See docs/performance.md §9 for the ordering proof sketch and the
// measured speedups over the binary-heap kernel this replaces.

#ifndef STAGGER_SIM_EVENT_QUEUE_H_
#define STAGGER_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "util/bitmap.h"
#include "util/hot_path.h"
#include "util/units.h"

namespace stagger {

/// Callback executed when an event fires.
using EventFn = std::function<void()>;

/// \brief Opaque handle to a scheduled event; used to cancel it.
///
/// valid() distinguishes a handle obtained from Schedule() from a
/// default-constructed one; it stays true after the event fires or is
/// cancelled (Cancel() reports liveness, the handle cannot).
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(uint64_t id) : id_(id) {}
  uint64_t id_ = 0;
};

/// \brief Time-ordered pending-event set (calendar queue).
///
/// Not thread-safe — the simulation is single-threaded by design
/// (determinism over parallelism; see DESIGN.md).
class EventQueue {
 public:
  /// Calendar geometry: days of 2^kDayShift microseconds, kNumDays days
  /// per ring year.  Exposed so stress tests can construct pathological
  /// bucket patterns (one event per day, one event per year, ...).
  static constexpr int kDayShift = 13;
  static constexpr int64_t kDayMicros = int64_t{1} << kDayShift;
  static constexpr int32_t kNumDays = 256;

  EventQueue();

  /// Schedules `fn` at absolute time `when`.  Ties fire in ascending
  /// `priority`, then insertion order.
  EventHandle Schedule(SimTime when, EventFn fn, int priority = 0);

  /// Cancels a previously scheduled event; a handle that already fired
  /// or was cancelled is ignored.  Returns true if the event was live.
  /// The callback (and anything it captured) is destroyed immediately.
  bool Cancel(EventHandle handle);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Time of the earliest live event; Max() if empty.
  SimTime NextTime() const;

  /// Removes and returns the earliest live event.
  /// Precondition: !empty().
  struct Fired {
    SimTime time;
    EventFn fn;
  };
  Fired PopNext();

  /// \brief One batch of same-(time, priority) events.
  struct Batch {
    SimTime time;
    int priority = 0;
    /// Live events in the batch when it was opened (events cancelled
    /// after PopInterval() returns still will not fire).
    size_t count = 0;
  };

  /// Opens a batch over every live event sharing the earliest
  /// (time, priority) — typically one scheduler interval's worth — and
  /// returns its key.  Drain it with PopStaged(); events in the batch
  /// stay cancellable until the call that actually pops them, so a
  /// PopInterval/PopStaged loop is observably identical to a PopNext
  /// loop.  Calling PopInterval() with a batch already open returns the
  /// open batch.  Precondition: !empty().
  Batch PopInterval();

  /// Pops the next live event of the open batch into *out; returns
  /// false (closing the batch) when it is exhausted.  With no open
  /// batch, returns false.
  bool PopStaged(Fired* out);

  // --- introspection (tests) --------------------------------------------

  /// Entries buffered across all days, the overflow map, and the open
  /// batch, live or cancelled.  Bounds the lazy-deletion debt: a
  /// cancelled event's callback is freed eagerly, and the 32-byte entry
  /// left behind is compacted away before it can accumulate.
  size_t buffered_entries() const;

  /// Callback slots currently allocated (live events + free-list).
  size_t allocated_slots() const { return num_slots_; }

 private:
  /// 32-byte trivially-copyable ordering record; the callback itself
  /// lives in the slot so sorting and compaction move plain bytes and
  /// cancellation can free the closure without finding the entry.
  struct Entry {
    int64_t time_us;
    uint64_t seq;
    int32_t priority;
    uint32_t slot;
    uint32_t gen;
  };

  /// 64-byte aligned so every slot occupies exactly one cache line:
  /// pops visit slots in key order (random w.r.t. allocation order), and
  /// a straddling slot would cost two misses per visit.
  struct alignas(64) Slot {
    EventFn fn;
    int64_t time_us = 0;
    int32_t priority = 0;
    uint32_t gen = 1;        ///< bumped on free; stale handles/entries mismatch
    uint32_t next_free = kNoSlot;
    bool live = false;
  };

  /// One calendar day: entries append unsorted and are sorted once,
  /// lazily, when the day becomes the earliest non-empty bucket.
  struct Day {
    std::vector<Entry> entries;
    uint32_t consumed = 0;  ///< sorted prefix already popped/staged
    uint32_t dead = 0;      ///< cancelled entries still buffered (approximate)
    bool sorted = false;
  };

  static constexpr uint32_t kNoSlot = ~uint32_t{0};
  /// Slots live in fixed 64 KB chunks (1024 slots): growing the table
  /// never reallocates, so no std::function move-copies the way a flat
  /// vector's growth would, and slot addresses stay stable.
  static constexpr uint32_t kSlotChunkShift = 10;
  static constexpr uint32_t kSlotsPerChunk = 1u << kSlotChunkShift;

  static int64_t DayOf(int64_t time_us) { return time_us >> kDayShift; }
  static bool KeyLess(const Entry& a, const Entry& b) {
    if (a.time_us != b.time_us) return a.time_us < b.time_us;
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq < b.seq;
  }

  bool InRing(int64_t day) const {
    return day >= ring_base_ && day < ring_base_ + kNumDays;
  }
  Slot& SlotAt(uint32_t slot) {
    return slot_chunks_[slot >> kSlotChunkShift][slot & (kSlotsPerChunk - 1)];
  }
  const Slot& SlotAt(uint32_t slot) const {
    return slot_chunks_[slot >> kSlotChunkShift][slot & (kSlotsPerChunk - 1)];
  }

  bool EntryLive(const Entry& e) const {
    const Slot& s = SlotAt(e.slot);
    return s.live && s.gen == e.gen;
  }

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);

  /// Day `day`'s bucket, creating it on demand (`create`); nullptr when
  /// absent and !create.
  Day* ResolveDay(int64_t day, bool create);
  /// Sorts the unsorted suffix [consumed, end) by (time, priority, seq).
  void SortBucket(Day* d);
  void InsertEntry(const Entry& e);
  /// Releases an exhausted bucket: ring days keep their capacity for
  /// the next year, overflow days are erased.
  void ReleaseDay(int64_t day, Day* d);
  /// Moves the ring onto the year containing `day` and migrates every
  /// overflow day inside the new year into it.  Precondition: the ring
  /// is empty and `day` >= ring_base_ + kNumDays.
  void RebaseRing(int64_t day);
  /// The earliest bucket holding a live event, sorted with its dead
  /// prefix skipped; nullptr when every live event is staged (or none).
  Day* EnsureFront(int64_t* day_index);

  void CloseStage();
  /// Puts the open batch's remaining live entries back into their
  /// bucket (used when a schedule preempts the batch with a smaller
  /// (time, priority) key).
  void UnstageRemainder();
  /// Advances stage_pos_ past cancelled entries.
  void SkipDeadStaged();
  /// Cancellation bookkeeping: count the dead entry against its bucket
  /// and compact when cancelled debt dominates the bucket.
  void NoteDead(const Slot& s);

  std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
  uint32_t num_slots_ = 0;
  uint32_t free_head_ = kNoSlot;

  std::vector<Day> ring_;       ///< kNumDays buckets, year-aligned
  Bitmap ring_occupied_;        ///< one bit per non-empty ring day
  std::map<int64_t, Day> overflow_;  ///< days outside the ring window
  int64_t ring_base_ = 0;       ///< first day of the ring year (multiple of kNumDays)
  int64_t cursor_ = 0;          ///< no day below this holds a live entry

  /// Memoized EnsureFront result: the sorted bucket holding the queue's
  /// minimum, so consecutive pops skip the bitmap walk.  Invalidated
  /// when an insert lands on an earlier day (same-day inserts keep the
  /// sorted front intact), when the bucket is released, and on rebase;
  /// a dead front entry is detected per-pop and falls back to the walk.
  Day* front_day_ = nullptr;
  int64_t front_day_num_ = 0;

  std::vector<uint64_t> sort_keys_;  ///< SortBucket scratch (packed keys)
  std::vector<Entry> sort_scratch_;  ///< SortBucket scratch (permutation)

  std::vector<Entry> stage_;    ///< the open batch (PopInterval)
  size_t stage_pos_ = 0;
  bool stage_open_ = false;
  int64_t stage_time_us_ = 0;
  int stage_priority_ = 0;

  size_t size_ = 0;             ///< live events (scheduled or staged, unfired)
  uint64_t next_seq_ = 1;
};

}  // namespace stagger

#endif  // STAGGER_SIM_EVENT_QUEUE_H_
