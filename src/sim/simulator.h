// The discrete-event simulation kernel.  This is our substitute for the
// CSIM simulation language the paper used: a single-threaded event loop
// with an exact integer clock, deterministic tie-breaking, and a small
// set of conveniences (relative scheduling, periodic tickers, stop
// conditions).

#ifndef STAGGER_SIM_SIMULATOR_H_
#define STAGGER_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "util/status.h"
#include "util/units.h"

namespace stagger {

/// \brief Single-threaded discrete-event simulator.
///
/// Usage:
/// \code
///   Simulator sim;
///   sim.ScheduleAt(SimTime::Seconds(1), [&]{ ... });
///   sim.RunUntil(SimTime::Hours(24));
/// \endcode
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (must be >= Now()).
  EventHandle ScheduleAt(SimTime when, EventFn fn, int priority = 0);

  /// Schedules `fn` after `delay` (must be >= 0).
  EventHandle ScheduleAfter(SimTime delay, EventFn fn, int priority = 0);

  bool Cancel(EventHandle handle) { return events_.Cancel(handle); }

  /// Runs until the event set drains.  Returns the final clock value.
  SimTime Run();

  /// Runs until the clock would pass `deadline` or the event set drains,
  /// whichever is first.  Events exactly at `deadline` are executed.
  /// Returns the final clock value.
  SimTime RunUntil(SimTime deadline);

  /// Executes at most one event; returns false if none are pending.
  bool Step();

  /// Requests that Run/RunUntil return after the current event.
  void RequestStop() { stop_requested_ = true; }

  /// Number of events executed so far (for tests and microbenchmarks).
  uint64_t events_executed() const { return events_executed_; }

  /// Number of same-(time, priority) batches dispatched by Run/RunUntil.
  /// The interval-synchronous model fires many events per instant, so
  /// this is typically far below events_executed().
  uint64_t batches_dispatched() const { return batches_dispatched_; }

  size_t pending_events() const { return events_.size(); }

 private:
  /// Executes one batch of same-(time, priority) events: a single
  /// ordered front lookup (EventQueue::PopInterval) followed by O(1)
  /// staged pops, instead of one ordered pop per event.  Firing order
  /// is identical to a Step() loop; see EventQueue::PopInterval.
  void DispatchBatch();

  EventQueue events_;
  SimTime now_ = SimTime::Zero();
  bool stop_requested_ = false;
  uint64_t events_executed_ = 0;
  uint64_t batches_dispatched_ = 0;
};

/// \brief Repeats a callback every `period`, starting at `start`.
/// The callback may call Stop() to cancel further ticks.
class PeriodicTicker {
 public:
  /// \param sim     simulator to schedule on; must outlive the ticker.
  /// \param start   absolute time of the first tick.
  /// \param period  strictly positive tick spacing.
  /// \param fn      invoked once per tick with the tick index (0-based).
  PeriodicTicker(Simulator* sim, SimTime start, SimTime period,
                 std::function<void(int64_t)> fn);
  ~PeriodicTicker() { Stop(); }

  PeriodicTicker(const PeriodicTicker&) = delete;
  PeriodicTicker& operator=(const PeriodicTicker&) = delete;

  void Stop();
  bool running() const { return running_; }
  int64_t ticks_fired() const { return tick_; }

 private:
  void Arm(SimTime when);

  Simulator* sim_;
  SimTime period_;
  std::function<void(int64_t)> fn_;
  EventHandle next_;
  int64_t tick_ = 0;
  bool running_ = true;
};

}  // namespace stagger

#endif  // STAGGER_SIM_SIMULATOR_H_
