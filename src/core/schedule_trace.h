// Records the per-interval read schedule and renders it as the paper's
// Figure 3 ("read Z(k+1) / read X(i+1) / idle" per cluster per
// interval) or as a raw disk-by-interval grid.  Attach via
// SchedulerConfig::read_observer.

#ifndef STAGGER_CORE_SCHEDULE_TRACE_H_
#define STAGGER_CORE_SCHEDULE_TRACE_H_

#include <map>
#include <string>
#include <vector>

#include "storage/media_object.h"
#include "util/table.h"

namespace stagger {

/// \brief Accumulates (interval, object, subobject, fragment, disk)
/// read events.
class ScheduleTracer {
 public:
  /// \brief One recorded fragment read.
  struct Event {
    ObjectId object;
    int64_t subobject;
    int32_t fragment;
  };

  /// \param num_disks      D.
  /// \param max_intervals  recording stops after this many intervals
  ///                       (keeps traces bounded); <= 0 records forever.
  explicit ScheduleTracer(int32_t num_disks, int64_t max_intervals = 64);

  /// The observer to install in SchedulerConfig::read_observer — bind
  /// with a lambda: `[&tracer](auto... a) { tracer.Record(a...); }`.
  void Record(int64_t interval, ObjectId object, int64_t subobject,
              int32_t fragment, int32_t disk);

  /// Assigns a display name to an object id (defaults to "#<id>").
  void Name(ObjectId object, std::string name);

  int64_t num_events() const { return num_events_; }
  int64_t last_interval() const { return last_interval_; }
  /// Events recorded onto an already-occupied (interval, disk) cell: a
  /// disk asked to transfer two fragments in one interval, i.e. a
  /// B_Disk bandwidth-conservation violation.  The auditor requires 0.
  int64_t num_collisions() const { return num_collisions_; }
  /// True when events past `max_intervals` were dropped; completeness
  /// audits are skipped on truncated traces.
  bool truncated() const { return truncated_; }
  /// Raw recorded schedule: events()[interval][disk].
  const std::map<int64_t, std::map<int32_t, Event>>& events() const {
    return events_;
  }

  /// Figure 3 rendering: one row per interval, one column per cluster
  /// of `cluster_size` adjacent disks; each cell is "read X(s)" for the
  /// subobject read from that cluster, or "idle".  Only meaningful when
  /// displays are cluster-aligned (k = M).
  Table RenderClusters(int32_t cluster_size) const;

  /// Raw rendering: one row per interval, one column per disk; cells
  /// are "X0.2"-style fragment names (Figures 1/4/5 orientation).
  Table RenderDisks() const;

 private:
  std::string NameOf(ObjectId object) const;

  int32_t num_disks_;
  int64_t max_intervals_;
  int64_t num_events_ = 0;
  int64_t num_collisions_ = 0;
  bool truncated_ = false;
  int64_t last_interval_ = -1;
  /// events_[interval][disk]
  std::map<int64_t, std::map<int32_t, Event>> events_;
  std::map<ObjectId, std::string> names_;
};

}  // namespace stagger

#endif  // STAGGER_CORE_SCHEDULE_TRACE_H_
