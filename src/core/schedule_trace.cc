#include "core/schedule_trace.h"

#include <sstream>

#include "util/check.h"

namespace stagger {

ScheduleTracer::ScheduleTracer(int32_t num_disks, int64_t max_intervals)
    : num_disks_(num_disks), max_intervals_(max_intervals) {
  STAGGER_CHECK(num_disks_ >= 1);
}

void ScheduleTracer::Record(int64_t interval, ObjectId object,
                            int64_t subobject, int32_t fragment,
                            int32_t disk) {
  if (max_intervals_ > 0 && interval >= max_intervals_) {
    truncated_ = true;
    return;
  }
  STAGGER_CHECK(disk >= 0 && disk < num_disks_);
  auto& cell = events_[interval];
  if (cell.find(disk) != cell.end()) ++num_collisions_;
  cell[disk] = Event{object, subobject, fragment};
  ++num_events_;
  if (interval > last_interval_) last_interval_ = interval;
}

void ScheduleTracer::Name(ObjectId object, std::string name) {
  names_[object] = std::move(name);
}

std::string ScheduleTracer::NameOf(ObjectId object) const {
  auto it = names_.find(object);
  if (it != names_.end()) return it->second;
  std::ostringstream os;
  os << "#" << object;
  return os.str();
}

Table ScheduleTracer::RenderClusters(int32_t cluster_size) const {
  STAGGER_CHECK(cluster_size >= 1 && cluster_size <= num_disks_);
  const int32_t clusters = num_disks_ / cluster_size;
  std::vector<std::string> header;
  header.push_back("interval");
  for (int32_t c = 0; c < clusters; ++c) {
    std::ostringstream os;
    os << "cluster " << c;
    header.push_back(os.str());
  }
  Table table(std::move(header));

  for (int64_t t = 0; t <= last_interval_; ++t) {
    std::vector<std::string> row;
    row.push_back(std::to_string(t));
    auto it = events_.find(t);
    for (int32_t c = 0; c < clusters; ++c) {
      std::string cell = "idle";
      if (it != events_.end()) {
        // The cluster's first disk carries fragment 0 of the subobject
        // read this interval (cluster-aligned displays).
        auto disk_it = it->second.find(c * cluster_size);
        if (disk_it != it->second.end()) {
          const Event& e = disk_it->second;
          std::ostringstream os;
          os << "read " << NameOf(e.object) << "(" << e.subobject << ")";
          cell = os.str();
        }
      }
      row.push_back(std::move(cell));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

Table ScheduleTracer::RenderDisks() const {
  std::vector<std::string> header;
  header.push_back("interval");
  for (int32_t d = 0; d < num_disks_; ++d) {
    std::ostringstream os;
    os << "d" << d;
    header.push_back(os.str());
  }
  Table table(std::move(header));
  for (int64_t t = 0; t <= last_interval_; ++t) {
    std::vector<std::string> row;
    row.push_back(std::to_string(t));
    auto it = events_.find(t);
    for (int32_t d = 0; d < num_disks_; ++d) {
      std::string cell = ".";
      if (it != events_.end()) {
        auto disk_it = it->second.find(d);
        if (disk_it != it->second.end()) {
          const Event& e = disk_it->second;
          std::ostringstream os;
          os << NameOf(e.object) << e.subobject << "." << e.fragment;
          cell = os.str();
        }
      }
      row.push_back(std::move(cell));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace stagger
