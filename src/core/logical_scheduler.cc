#include "core/logical_scheduler.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/invariants.h"
#include "util/check.h"

namespace stagger {

Status LogicalSchedulerConfig::Validate() const {
  if (num_disks < 1) {
    return Status::InvalidArgument("logical scheduler needs disks");
  }
  if (stride < 1 || stride > num_disks) {
    return Status::InvalidArgument("stride must be in [1, D]");
  }
  if (logical_per_disk < 1) {
    return Status::InvalidArgument("need >= 1 logical disk per physical");
  }
  if (interval <= SimTime::Zero()) {
    return Status::InvalidArgument("interval must be positive");
  }
  return Status::OK();
}

Result<std::unique_ptr<LogicalDiskScheduler>> LogicalDiskScheduler::Create(
    Simulator* sim, const LogicalSchedulerConfig& config,
    const DiskArray* disks) {
  STAGGER_RETURN_NOT_OK(config.Validate());
  if (disks != nullptr && disks->num_disks() < config.num_disks) {
    return Status::InvalidArgument(
        "health source covers fewer disks than the scheduler drives");
  }
  STAGGER_ASSIGN_OR_RETURN(
      VirtualDiskFrame frame,
      VirtualDiskFrame::Create(config.num_disks, config.stride));
  return std::unique_ptr<LogicalDiskScheduler>(
      new LogicalDiskScheduler(sim, config, frame, disks));
}

LogicalDiskScheduler::LogicalDiskScheduler(Simulator* sim,
                                           LogicalSchedulerConfig config,
                                           VirtualDiskFrame frame,
                                           const DiskArray* disks)
    : sim_(sim), config_(config), frame_(frame), disks_(disks),
      epoch_(sim->Now()),
      used_units_(static_cast<size_t>(config.num_disks), 0) {
  ticker_ = std::make_unique<PeriodicTicker>(
      sim_, epoch_, config_.interval, [this](int64_t tick) { Tick(tick); });
}

LogicalDiskScheduler::~LogicalDiskScheduler() = default;

int32_t LogicalDiskScheduler::UnitsOnLane(int64_t units, int32_t lane,
                                          bool partial_first) const {
  const int32_t width = WidthOf(units);
  STAGGER_DCHECK(lane >= 0 && lane < width);
  const int32_t partial_lane = partial_first ? 0 : width - 1;
  if (lane != partial_lane) return config_.logical_per_disk;
  // The single possibly-partial lane takes whatever the full lanes
  // leave over (equal to L when units divide evenly).
  return static_cast<int32_t>(
      units - static_cast<int64_t>(config_.logical_per_disk) * (width - 1));
}

Result<RequestId> LogicalDiskScheduler::Submit(LogicalRequest request) {
  const int64_t max_units = static_cast<int64_t>(config_.num_disks) *
                            config_.logical_per_disk;
  if (request.units < 1 || request.units > max_units) {
    return Status::InvalidArgument("units must be in [1, D*L]");
  }
  if (request.num_subobjects < 1) {
    return Status::InvalidArgument("need at least one subobject");
  }
  if (request.start_disk < 0 || request.start_disk >= config_.num_disks) {
    return Status::InvalidArgument("start disk out of range");
  }
  const RequestId id = next_id_++;
  queue_.push_back(Pending{id, std::move(request), sim_->Now()});
  ++metrics_.displays_requested;
  return id;
}

void LogicalDiskScheduler::Reserve(int32_t first_vdisk, int64_t units,
                                   bool partial_first, int32_t sign) {
  const int32_t width = WidthOf(units);
  for (int32_t lane = 0; lane < width; ++lane) {
    const int32_t v = static_cast<int32_t>(
        PositiveMod(static_cast<int64_t>(first_vdisk) + lane,
                    config_.num_disks));
    used_units_[static_cast<size_t>(v)] +=
        sign * UnitsOnLane(units, lane, partial_first);
    STAGGER_DCHECK(used_units_[static_cast<size_t>(v)] >= 0);
    STAGGER_DCHECK(used_units_[static_cast<size_t>(v)] <=
                   config_.logical_per_disk);
  }
}

bool LogicalDiskScheduler::StreamHealthy(const ActiveStream& s) const {
  if (disks_ == nullptr) return true;
  const int32_t width = WidthOf(s.req.units);
  for (int32_t lane = 0; lane < width; ++lane) {
    const int32_t v = static_cast<int32_t>(PositiveMod(
        static_cast<int64_t>(s.first_vdisk) + lane, config_.num_disks));
    if (!disks_->IsAvailable(frame_.PhysicalOf(v, interval_index_))) {
      return false;
    }
  }
  return true;
}

bool LogicalDiskScheduler::TryAdmit(const Pending& p) {
  const int32_t v0 = frame_.VirtualOf(p.req.start_disk, interval_index_);
  const int32_t width = WidthOf(p.req.units);
  if (width > config_.num_disks) return false;
  for (int32_t lane = 0; lane < width; ++lane) {
    const int32_t v = static_cast<int32_t>(
        PositiveMod(static_cast<int64_t>(v0) + lane, config_.num_disks));
    if (FreeUnits(v) <
        UnitsOnLane(p.req.units, lane, p.req.partial_lane_first)) {
      return false;
    }
    // Health-aware mode: no lane may start over a down spindle — the
    // physical disk takes all L of its logical units down with it.
    if (disks_ != nullptr &&
        !disks_->IsAvailable(frame_.PhysicalOf(v, interval_index_))) {
      return false;
    }
  }
  Reserve(v0, p.req.units, p.req.partial_lane_first, +1);

  ActiveStream stream;
  stream.id = p.id;
  stream.req = p.req;
  stream.arrival = p.arrival;
  stream.first_vdisk = v0;
  const SimTime latency = sim_->Now() - p.arrival;
  metrics_.startup_latency_sec.Add(latency.seconds());
  if (stream.req.on_started) stream.req.on_started(latency);
  streams_.emplace(p.id, std::move(stream));
  return true;
}

void LogicalDiskScheduler::Tick(int64_t tick_index) {
  interval_index_ = tick_index;

  // Admissions (FIFO with backfill).
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (TryAdmit(*it)) {
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }

  // Advance streams: one subobject per interval each.
  std::vector<RequestId> ids;
  ids.reserve(streams_.size());
  // stagger-lint: allow(determinism-unordered-iter) -- collects ids and sorts them before any stateful work; hash order never reaches the schedule
  for (const auto& [id, s] : streams_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  double buffered = 0.0;
  for (RequestId id : ids) {
    ActiveStream& s = streams_.at(id);
    // A stream over a down physical disk stalls in place: its logical
    // units stay reserved (resuming must not re-fight admission) but no
    // subobject is delivered this interval.  Both halves of a split
    // disk stall and recover together.
    if (!StreamHealthy(s)) {
      ++metrics_.stalled_stream_intervals;
      continue;
    }
    metrics_.unit_intervals_used += s.req.units;
    // A lane holding u < L units reads at full rate for u/L of the
    // interval but transmits throughout: it buffers (1 - u/L) of its
    // per-interval data (Figure 7's half-subobject for u/L = 1/2).
    const int32_t width = WidthOf(s.req.units);
    const int32_t partial_lane = s.req.partial_lane_first ? 0 : width - 1;
    const int32_t partial =
        UnitsOnLane(s.req.units, partial_lane, s.req.partial_lane_first);
    if (partial < config_.logical_per_disk) {
      buffered +=
          1.0 - static_cast<double>(partial) / config_.logical_per_disk;
    }
    ++s.delivered;
  }
  metrics_.buffered_fraction.Set(sim_->Now(), buffered);

  // Completions.
  for (RequestId id : ids) {
    auto it = streams_.find(id);
    ActiveStream& s = it->second;
    if (s.delivered >= s.req.num_subobjects) {
      Reserve(s.first_vdisk, s.req.units, s.req.partial_lane_first, -1);
      auto done = std::move(s.req.on_completed);
      streams_.erase(it);
      ++metrics_.displays_completed;
      if (done) done();
    }
  }
  ++metrics_.intervals_elapsed;
#ifdef STAGGER_AUDIT
  // Self-check every simulated interval: logical-unit occupancy must
  // stay within [0, L] per disk and balance against active streams.
  STAGGER_CHECK_OK(InvariantAuditor::AuditLogicalScheduler(*this));
#endif
}

double LogicalDiskScheduler::Utilization() const {
  const double capacity = static_cast<double>(metrics_.intervals_elapsed) *
                          config_.num_disks * config_.logical_per_disk;
  return capacity <= 0.0
             ? 0.0
             : static_cast<double>(metrics_.unit_intervals_used) / capacity;
}

}  // namespace stagger
