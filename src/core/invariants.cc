#include "core/invariants.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <numeric>
#include <set>
#include <utility>

#include "core/interval_scheduler.h"
#include "core/logical_scheduler.h"
#include "util/check.h"

namespace stagger {

PlacementTable MaterializePlacement(const StaggeredLayout& layout,
                                    int64_t num_subobjects,
                                    bool include_parity) {
  STAGGER_CHECK_GE(num_subobjects, 0);
  STAGGER_CHECK(!include_parity || layout.has_parity());
  PlacementTable table(static_cast<size_t>(num_subobjects));
  for (int64_t i = 0; i < num_subobjects; ++i) {
    auto& row = table[static_cast<size_t>(i)];
    row.reserve(static_cast<size_t>(layout.degree()) + (include_parity ? 1 : 0));
    row.resize(static_cast<size_t>(layout.degree()));
    for (int32_t j = 0; j < layout.degree(); ++j) {
      row[static_cast<size_t>(j)] = layout.DiskFor(i, j);
    }
    if (include_parity) row.push_back(layout.ParityDiskFor(i));
  }
  return table;
}

Status InvariantAuditor::AuditPlacement(const PlacementTable& placement,
                                        int32_t num_disks, int32_t stride) {
  STAGGER_AUDIT_VERIFY(num_disks >= 1) << " (D=" << num_disks << ")";
  STAGGER_AUDIT_VERIFY(stride >= 1 && stride <= num_disks)
      << " (k=" << stride << ", D=" << num_disks << ")";
  if (placement.empty()) return Status::OK();

  const size_t degree = placement.front().size();
  STAGGER_AUDIT_VERIFY(degree >= 1 &&
                       degree <= static_cast<size_t>(num_disks))
      << " (M=" << degree << ", D=" << num_disks << ")";

  const int32_t first_start = placement.front().front();
  for (size_t i = 0; i < placement.size(); ++i) {
    const auto& row = placement[i];
    STAGGER_AUDIT_VERIFY(row.size() == degree)
        << "; subobject " << i << " has " << row.size()
        << " fragments, expected M=" << degree;
    for (size_t j = 0; j < row.size(); ++j) {
      STAGGER_AUDIT_VERIFY(row[j] >= 0 && row[j] < num_disks)
          << "; fragment " << i << "." << j << " on nonexistent disk "
          << row[j];
    }
    // Mod-D contiguity: fragments j = 0..M-1 of one subobject occupy
    // M consecutive disks starting at the subobject's first disk.
    for (size_t j = 1; j < row.size(); ++j) {
      const int32_t expected = static_cast<int32_t>(
          PositiveMod(static_cast<int64_t>(row[0]) + static_cast<int64_t>(j),
                      num_disks));
      STAGGER_AUDIT_VERIFY(row[j] == expected)
          << "; fragment " << i << "." << j << " on disk " << row[j]
          << ", breaks mod-" << num_disks << " contiguity (expected "
          << expected << ")";
    }
    // Stride-k progression: subobject i starts k*i disks after
    // subobject 0.
    const int32_t expected_start = static_cast<int32_t>(PositiveMod(
        static_cast<int64_t>(first_start) +
            static_cast<int64_t>(stride) * static_cast<int64_t>(i),
        num_disks));
    STAGGER_AUDIT_VERIFY(row[0] == expected_start)
        << "; subobject " << i << " starts on disk " << row[0]
        << ", violates stride k=" << stride << " (expected "
        << expected_start << ")";
  }
  return Status::OK();
}

Status InvariantAuditor::AuditSkew(const PlacementTable& placement,
                                   int32_t num_disks, int32_t stride) {
  STAGGER_AUDIT_VERIFY(num_disks >= 1) << " (D=" << num_disks << ")";
  STAGGER_AUDIT_VERIFY(stride >= 1 && stride <= num_disks)
      << " (k=" << stride << ", D=" << num_disks << ")";
  if (placement.empty()) return Status::OK();

  const int64_t n = static_cast<int64_t>(placement.size());
  const int64_t degree = static_cast<int64_t>(placement.front().size());
  const int64_t g = std::gcd(static_cast<int64_t>(num_disks),
                             static_cast<int64_t>(stride));
  const int64_t period = num_disks / g;

  // Start disks stay in one residue class modulo gcd(D, k): the walk
  // {p + i*k mod D} can never leave it.
  const int64_t start_residue = placement.front().front() % g;
  std::vector<int64_t> counts(static_cast<size_t>(num_disks), 0);
  for (size_t i = 0; i < placement.size(); ++i) {
    const auto& row = placement[i];
    STAGGER_AUDIT_VERIFY(static_cast<int64_t>(row.size()) == degree)
        << "; subobject " << i << " has " << row.size()
        << " fragments, expected M=" << degree;
    STAGGER_AUDIT_VERIFY(row.front() % g == start_residue)
        << "; subobject " << i << " starts on disk " << row.front()
        << ", outside residue class " << start_residue << " mod gcd(D,k)="
        << g;
    for (int32_t disk : row) {
      STAGGER_AUDIT_VERIFY(disk >= 0 && disk < num_disks)
          << "; fragment of subobject " << i << " on nonexistent disk "
          << disk;
      ++counts[static_cast<size_t>(disk)];
    }
  }

  // GCD balance bounds: over n subobjects the start walk visits each of
  // the D/g reachable residues floor(n/P) or ceil(n/P) times, and any
  // window of M consecutive disks covers floor(M/g)..ceil(M/g) reachable
  // residues — so per-disk fragment counts are boxed accordingly.
  const int64_t max_bound = CeilDiv(degree, g) * CeilDiv(n, period);
  const int64_t min_bound = (degree / g) * (n / period);
  const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
  STAGGER_AUDIT_VERIFY(*hi <= max_bound)
      << "; disk " << (hi - counts.begin()) << " holds " << *hi
      << " fragments, above the gcd bound " << max_bound << " (g=" << g
      << ", P=" << period << ")";
  STAGGER_AUDIT_VERIFY(*lo >= min_bound)
      << "; disk " << (lo - counts.begin()) << " holds " << *lo
      << " fragments, below the gcd bound " << min_bound << " (g=" << g
      << ", P=" << period << ")";
  return Status::OK();
}

Status InvariantAuditor::AuditLayout(const StaggeredLayout& layout,
                                     int64_t num_subobjects) {
  STAGGER_AUDIT_VERIFY(num_subobjects >= 0)
      << " (n=" << num_subobjects << ")";
  // With parity the augmented row is exactly a staggered stripe of
  // window M+1, so contiguity, stride progression, and the gcd skew
  // bounds are audited over the wider window unchanged.
  const PlacementTable table = MaterializePlacement(
      layout, num_subobjects, /*include_parity=*/layout.has_parity());
  STAGGER_RETURN_NOT_OK(
      AuditPlacement(table, layout.num_disks(), layout.stride()));
  STAGGER_RETURN_NOT_OK(AuditSkew(table, layout.num_disks(), layout.stride()));
  if (layout.has_parity()) {
    STAGGER_RETURN_NOT_OK(AuditParityPlacement(layout, num_subobjects));
  }

  // Cross-check the closed-form skew analysis against the materialized
  // placement.
  std::vector<int64_t> counts(static_cast<size_t>(layout.num_disks()), 0);
  std::set<int32_t> touched;
  for (const auto& row : table) {
    for (int32_t disk : row) {
      ++counts[static_cast<size_t>(disk)];
      touched.insert(disk);
    }
  }
  const std::vector<int64_t> closed_form =
      layout.FragmentsPerDisk(num_subobjects);
  STAGGER_AUDIT_VERIFY(closed_form == counts)
      << "; FragmentsPerDisk disagrees with the materialized placement";
  STAGGER_AUDIT_VERIFY(layout.UniqueDisksUsed(num_subobjects) ==
                       static_cast<int32_t>(touched.size()))
      << "; UniqueDisksUsed=" << layout.UniqueDisksUsed(num_subobjects)
      << " but the placement touches " << touched.size() << " disks";
  return Status::OK();
}

Status InvariantAuditor::AuditParityPlacement(const StaggeredLayout& layout,
                                              int64_t num_subobjects) {
  STAGGER_AUDIT_VERIFY(layout.has_parity())
      << "; layout carries no parity fragment";
  STAGGER_AUDIT_VERIFY(layout.degree() + 1 <= layout.num_disks())
      << "; parity needs M+1 <= D (M=" << layout.degree()
      << ", D=" << layout.num_disks() << ")";
  // The parity walk has the same period as the start-disk walk; checking
  // one full period covers every distinct stripe.
  const int64_t g = std::gcd(static_cast<int64_t>(layout.num_disks()),
                             static_cast<int64_t>(layout.stride()));
  const int64_t period = layout.num_disks() / g;
  const int64_t check = std::min<int64_t>(num_subobjects, period);
  for (int64_t i = 0; i < check; ++i) {
    const int32_t parity = layout.ParityDiskFor(i);
    const int32_t expected = static_cast<int32_t>(PositiveMod(
        static_cast<int64_t>(layout.start_disk()) + i * layout.stride() +
            layout.degree(),
        layout.num_disks()));
    STAGGER_AUDIT_VERIFY(parity == expected)
        << "; subobject " << i << " parity on disk " << parity
        << ", expected " << expected;
    for (int32_t j = 0; j < layout.degree(); ++j) {
      STAGGER_AUDIT_VERIFY(parity != layout.DiskFor(i, j))
          << "; subobject " << i << " parity disk " << parity
          << " co-resides with its own data fragment " << j;
    }
  }
  return Status::OK();
}

Status InvariantAuditor::AuditCatalog(const Catalog& catalog,
                                      Bandwidth disk_bandwidth,
                                      int32_t num_disks) {
  STAGGER_AUDIT_VERIFY(disk_bandwidth.bits_per_sec() > 0)
      << " (B_Disk=" << disk_bandwidth.bits_per_sec() << ")";
  STAGGER_AUDIT_VERIFY(num_disks >= 1) << " (D=" << num_disks << ")";
  for (ObjectId id = 0; id < catalog.size(); ++id) {
    const MediaObject& object = catalog.Get(id);
    STAGGER_AUDIT_VERIFY(object.id == id)
        << "; catalog slot " << id << " holds object id " << object.id;
    STAGGER_AUDIT_VERIFY(object.num_subobjects >= 1)
        << "; object " << id << " has no subobjects";
    STAGGER_AUDIT_VERIFY(object.display_bandwidth.bits_per_sec() > 0)
        << "; object " << id << " has non-positive display bandwidth";
    const int32_t degree = object.DegreeOfDeclustering(disk_bandwidth);
    STAGGER_AUDIT_VERIFY(degree >= 1 && degree <= num_disks)
        << "; object " << id << " needs M_X=" << degree
        << " disks, outside [1, " << num_disks << "]";
  }
  return Status::OK();
}

Status InvariantAuditor::AuditTrace(
    const ScheduleTracer& trace,
    const std::map<ObjectId, StaggeredLayout>& layouts,
    const TraceAuditOptions& opts) {
  // Bandwidth conservation: one fragment per disk per interval.  The
  // tracer counts any second Record onto an occupied cell.
  STAGGER_AUDIT_VERIFY(trace.num_collisions() == 0)
      << "; " << trace.num_collisions()
      << " intervals scheduled two fragments on one disk (B_Disk exceeded)";

  struct SubobjectReads {
    std::set<int32_t> fragments;
    int64_t first_interval = 0;
    int64_t last_interval = 0;
    int64_t duplicate_reads = 0;
  };
  std::map<std::pair<ObjectId, int64_t>, SubobjectReads> per_subobject;

  for (const auto& [interval, row] : trace.events()) {
    for (const auto& [disk, event] : row) {
      auto it = layouts.find(event.object);
      STAGGER_AUDIT_VERIFY(it != layouts.end())
          << "; interval " << interval << " reads unknown object "
          << event.object;
      const StaggeredLayout& layout = it->second;
      STAGGER_AUDIT_VERIFY(event.fragment >= 0 &&
                           event.fragment < layout.degree())
          << "; object " << event.object << " fragment index "
          << event.fragment << " outside [0, " << layout.degree() << ")";
      STAGGER_AUDIT_VERIFY(event.subobject >= 0)
          << "; object " << event.object << " has negative subobject "
          << event.subobject;
      const int32_t expected = layout.DiskFor(event.subobject, event.fragment);
      STAGGER_AUDIT_VERIFY(disk == expected)
          << "; interval " << interval << ": fragment " << event.object
          << "." << event.subobject << "." << event.fragment << " read from"
          << " disk " << disk << " but the layout places it on disk "
          << expected;

      auto& reads = per_subobject[{event.object, event.subobject}];
      if (reads.fragments.empty()) {
        reads.first_interval = interval;
        reads.last_interval = interval;
      } else {
        reads.first_interval = std::min(reads.first_interval, interval);
        reads.last_interval = std::max(reads.last_interval, interval);
      }
      if (!reads.fragments.insert(event.fragment).second) {
        ++reads.duplicate_reads;
      }
    }
  }

  for (const auto& [key, reads] : per_subobject) {
    const auto& [object, subobject] = key;
    STAGGER_AUDIT_VERIFY(reads.duplicate_reads == 0)
        << "; subobject " << object << "." << subobject << " had "
        << reads.duplicate_reads << " duplicate fragment reads";
    if (reads.last_interval != reads.first_interval) {
      STAGGER_AUDIT_VERIFY(opts.allow_time_fragmentation)
          << "; subobject " << object << "." << subobject
          << " split across intervals [" << reads.first_interval << ", "
          << reads.last_interval
          << "] without Algorithm-1 buffering in effect";
    }
    if (!trace.truncated()) {
      const int32_t degree = layouts.at(object).degree();
      STAGGER_AUDIT_VERIFY(static_cast<int32_t>(reads.fragments.size()) ==
                           degree)
          << "; subobject " << object << "." << subobject << " read only "
          << reads.fragments.size() << " of " << degree << " fragments";
    }
  }
  return Status::OK();
}

Status InvariantAuditor::AuditScheduler(const IntervalScheduler& s) {
  const int32_t d = s.frame_.num_disks();
  STAGGER_AUDIT_VERIFY(static_cast<int32_t>(s.vdisk_owner_.size()) == d)
      << "; occupancy vector has " << s.vdisk_owner_.size()
      << " entries for D=" << d;

  // Slot storage consistency: active_ maps each live stream id to its
  // slot, strictly sorted by id (the tick loop's processing order), and
  // every slot is either on the free list or holds a live stream.
  STAGGER_AUDIT_VERIFY(s.active_.size() + s.free_slots_.size() ==
                       s.slots_.size())
      << "; " << s.slots_.size() << " slots but " << s.active_.size()
      << " active + " << s.free_slots_.size() << " free";
  for (size_t i = 1; i < s.active_.size(); ++i) {
    STAGGER_AUDIT_VERIFY(s.active_[i - 1].first < s.active_[i].first)
        << "; active stream index not strictly sorted at position " << i;
  }
  for (const int32_t slot : s.free_slots_) {
    STAGGER_AUDIT_VERIFY(slot >= 0 &&
                         slot < static_cast<int32_t>(s.slots_.size()) &&
                         s.slots_[static_cast<size_t>(slot)].id == kNoStream)
        << "; free slot " << slot << " holds a live stream";
  }

  // Forward ownership: every active lane owns exactly the virtual disk
  // it claims, and buffer accounting balances against the pool.
  int64_t owned_lanes = 0;
  int64_t total_reserved = 0;
  int64_t total_buffered = 0;
  for (const auto& [id, slot] : s.active_) {
    STAGGER_AUDIT_VERIFY(slot >= 0 &&
                         slot < static_cast<int32_t>(s.slots_.size()))
        << "; active stream " << id << " maps to bad slot " << slot;
    const Stream& stream = s.slots_[static_cast<size_t>(slot)];
    STAGGER_AUDIT_VERIFY(stream.id == id)
        << "; stream table slot " << slot << " holds stream " << stream.id
        << ", active index says " << id;
    STAGGER_AUDIT_VERIFY(static_cast<int32_t>(stream.lanes.size()) ==
                         stream.degree)
        << "; stream " << id << " has " << stream.lanes.size()
        << " lanes for degree " << stream.degree;
    STAGGER_AUDIT_VERIFY(stream.delivered >= 0 &&
                         stream.delivered <= stream.num_subobjects)
        << "; stream " << id << " delivered " << stream.delivered << " of "
        << stream.num_subobjects;
    STAGGER_AUDIT_VERIFY(stream.delta_max >= 0)
        << "; stream " << id << " has negative delta_max "
        << stream.delta_max;

    const int64_t tau = stream.Tau(s.interval_index_);
    // Delivery clock exactness: after interval t the stream has
    // delivered exactly the subobjects due by Algorithm 1's output rule
    // (one per interval starting at tau == delta_max).
    const int64_t due = std::min(stream.num_subobjects,
                                 std::max<int64_t>(0, tau - stream.delta_max + 1));
    STAGGER_AUDIT_VERIFY(stream.delivered == due)
        << "; stream " << id << " delivered " << stream.delivered
        << " subobjects at tau " << tau << ", Algorithm 1 requires " << due;

    bool any_lane_leads = false;
    for (size_t j = 0; j < stream.lanes.size(); ++j) {
      const FragmentLane& lane = stream.lanes[j];
      STAGGER_AUDIT_VERIFY(lane.reads_done >= 0 &&
                           lane.reads_done <= stream.num_subobjects)
          << "; stream " << id << " lane " << j << " read "
          << lane.reads_done << " of " << stream.num_subobjects;
      // Buffer non-underflow: no delivered subobject can be missing a
      // fragment on any lane.
      STAGGER_AUDIT_VERIFY(lane.reads_done >= stream.delivered)
          << "; stream " << id << " lane " << j << " underflow: delivered "
          << stream.delivered << " subobjects but read only "
          << lane.reads_done;
      if (lane.released()) {
        STAGGER_AUDIT_VERIFY(lane.reads_done == stream.num_subobjects)
            << "; stream " << id << " lane " << j
            << " released before completing its reads";
        continue;
      }
      STAGGER_AUDIT_VERIFY(lane.vdisk >= 0 && lane.vdisk < d)
          << "; stream " << id << " lane " << j << " on nonexistent virtual"
          << " disk " << lane.vdisk;
      STAGGER_AUDIT_VERIFY(
          s.vdisk_owner_[static_cast<size_t>(lane.vdisk)] == id)
          << "; stream " << id << " lane " << j << " claims virtual disk "
          << lane.vdisk << " owned by "
          << s.vdisk_owner_[static_cast<size_t>(lane.vdisk)];
      ++owned_lanes;
      // A lane's effective alignment delay never exceeds delta_max —
      // otherwise its reads arrive after the output clock needs them.
      const int64_t effective = lane.next_read_tau - lane.reads_done;
      STAGGER_AUDIT_VERIFY(effective >= 0 && effective <= stream.delta_max)
          << "; stream " << id << " lane " << j << " effective delay "
          << effective << " outside [0, " << stream.delta_max << "]";
      if (lane.reads_done < stream.num_subobjects &&
          effective < stream.delta_max) {
        any_lane_leads = true;
      }
    }
    // Coalescing bookkeeping: a lane reading ahead of the output clock
    // requires Algorithm-1 buffering to be flagged on the stream.
    STAGGER_AUDIT_VERIFY(!any_lane_leads || stream.fragmented)
        << "; stream " << id
        << " reads ahead on some lane but is not marked fragmented";
    STAGGER_AUDIT_VERIFY(stream.buffer_reserved >= 0)
        << "; stream " << id << " has negative buffer reservation";
    total_reserved += stream.buffer_reserved;
    total_buffered += stream.TotalBufferedFragments();
  }

  // Backward ownership: every owned virtual disk belongs to a live
  // stream (counted above), so counts must match exactly — and the
  // occupancy bitmap mirrors the owner array bit for bit.
  int64_t owned_disks = 0;
  for (size_t v = 0; v < s.vdisk_owner_.size(); ++v) {
    const StreamId owner = s.vdisk_owner_[v];
    STAGGER_AUDIT_VERIFY(s.vdisk_occupied_.Test(static_cast<int32_t>(v)) ==
                         (owner != kNoStream))
        << "; virtual disk " << v << " occupancy bit disagrees with owner "
        << owner;
    if (owner == kNoStream) continue;
    ++owned_disks;
    STAGGER_AUDIT_VERIFY(s.SlotOf(owner) >= 0)
        << "; virtual disk " << v << " owned by dead stream " << owner;
  }
  STAGGER_AUDIT_VERIFY(owned_disks == owned_lanes)
      << "; " << owned_disks << " virtual disks owned but " << owned_lanes
      << " lanes hold disks (orphaned ownership)";

  STAGGER_AUDIT_VERIFY(total_reserved == s.buffers_.reserved())
      << "; streams reserve " << total_reserved
      << " buffer fragments but the pool records " << s.buffers_.reserved();
  // The incremental buffered-fragments counter must equal a full
  // recomputation over the active streams.
  STAGGER_AUDIT_VERIFY(total_buffered == s.buffered_fragments_)
      << "; active streams buffer " << total_buffered
      << " fragments but the incremental counter records "
      << s.buffered_fragments_;

  // Request bookkeeping: queued handles map to no stream; admitted
  // handles map to a live stream keyed by the same id.
  // stagger-lint: allow(determinism-unordered-iter) -- audit-only verification; every mapping is checked independently, so visit order cannot affect the outcome
  for (const auto& [request, stream_id] : s.request_to_stream_) {
    if (stream_id == kNoStream) continue;
    STAGGER_AUDIT_VERIFY(s.SlotOf(stream_id) >= 0)
        << "; request " << request << " maps to dead stream " << stream_id;
  }

  // The output clock never stalls: a hiccup means some interval
  // delivered a subobject whose fragments were not all read in time.
  STAGGER_AUDIT_VERIFY(s.metrics_.hiccups == 0)
      << "; " << s.metrics_.hiccups << " display hiccups recorded";

  // --- degraded-state rules (fault subsystem, src/fault/) --------------
  // A failed or stalled disk carries zero load: no read this interval
  // may have been placed on it.  (The audit runs before the interval
  // close-out clears the busy flags.)
  for (DiskId disk = 0; disk < s.disks_->num_disks(); ++disk) {
    STAGGER_AUDIT_VERIFY(s.disks_->IsAvailable(disk) ||
                         !s.disks_->SlotBusy(disk))
        << "; disk " << disk << " is "
        << (s.disks_->disk(disk).health() == DiskHealth::kFailed ? "failed"
                                                                 : "stalled")
        << " yet carries load this interval";
  }

  // No double-scheduling: each live request handle is in exactly one of
  // the pending queue, the paused set, or the active stream table.
  std::set<RequestId> scheduled;
  for (const auto& pending : s.queue_) {
    STAGGER_AUDIT_VERIFY(scheduled.insert(pending.id).second)
        << "; request " << pending.id << " queued twice";
  }
  for (const auto& paused : s.paused_) {
    STAGGER_AUDIT_VERIFY(scheduled.insert(paused.id).second)
        << "; paused request " << paused.id
        << " is also queued or paused twice";
    auto rit = s.request_to_stream_.find(paused.id);
    STAGGER_AUDIT_VERIFY(rit != s.request_to_stream_.end() &&
                         rit->second == kNoStream)
        << "; paused request " << paused.id
        << " still maps to an active stream";
    STAGGER_AUDIT_VERIFY(paused.remainder.num_subobjects >= 1)
        << "; paused request " << paused.id << " has an empty remainder";
    STAGGER_AUDIT_VERIFY(paused.backoff >= 1 &&
                         paused.retry_at_interval > paused.paused_at_interval)
        << "; paused request " << paused.id << " has a degenerate backoff";
  }
  for (const auto& [id, slot] : s.active_) {
    STAGGER_AUDIT_VERIFY(scheduled.insert(id).second)
        << "; active stream " << id << " is also queued or paused";
  }
  return Status::OK();
}

Status InvariantAuditor::AuditLogicalScheduler(
    const LogicalDiskScheduler& s) {
  const int32_t d = s.config_.num_disks;
  const int32_t l = s.config_.logical_per_disk;
  STAGGER_AUDIT_VERIFY(static_cast<int32_t>(s.used_units_.size()) == d)
      << "; unit vector has " << s.used_units_.size() << " entries for D="
      << d;

  // Recompute per-virtual-disk occupancy from the active streams and
  // compare against the scheduler's incremental bookkeeping.
  std::vector<int64_t> expected(static_cast<size_t>(d), 0);
  // stagger-lint: allow(determinism-unordered-iter) -- audit-only verification; the loop accumulates order-independent per-disk sums
  for (const auto& [id, stream] : s.streams_) {
    STAGGER_AUDIT_VERIFY(stream.delivered >= 0 &&
                         stream.delivered <= stream.req.num_subobjects)
        << "; stream " << id << " delivered " << stream.delivered << " of "
        << stream.req.num_subobjects;
    const int32_t width = s.WidthOf(stream.req.units);
    for (int32_t lane = 0; lane < width; ++lane) {
      const int32_t v = static_cast<int32_t>(PositiveMod(
          static_cast<int64_t>(stream.first_vdisk) + lane, d));
      expected[static_cast<size_t>(v)] +=
          s.UnitsOnLane(stream.req.units, lane, stream.req.partial_lane_first);
    }
  }
  for (int32_t v = 0; v < d; ++v) {
    const int32_t used = s.used_units_[static_cast<size_t>(v)];
    STAGGER_AUDIT_VERIFY(used >= 0 && used <= l)
        << "; virtual disk " << v << " uses " << used
        << " logical units, outside [0, " << l << "]";
    STAGGER_AUDIT_VERIFY(used == expected[static_cast<size_t>(v)])
        << "; virtual disk " << v << " records " << used
        << " used units but active streams account for "
        << expected[static_cast<size_t>(v)];
  }
  return Status::OK();
}

}  // namespace stagger
