// Closed-form performance model of a staggered-striping system — the
// back-of-envelope formulas scattered through Sections 1 and 3, in one
// place.  The test suite cross-validates the simulator against these
// bounds; capacity_planner uses them interactively.

#ifndef STAGGER_CORE_ANALYSIS_H_
#define STAGGER_CORE_ANALYSIS_H_

#include <cstdint>

#include "disk/disk_parameters.h"
#include "util/result.h"
#include "util/units.h"

namespace stagger {

/// \brief Inputs of the analytical model.
struct SystemModel {
  int32_t num_disks = 0;            ///< D
  DiskParameters disk;              ///< drive model
  int64_t fragment_cylinders = 1;   ///< fragment size
  Bandwidth display_bandwidth;      ///< B_Display of the media type
  int64_t subobjects_per_object = 0;
  /// When true, disk.transfer_rate is already the *effective* B_Disk
  /// (Table 3 specifies 20 mbps net of seek/latency) and the interval
  /// is pure transfer time; when false (e.g. the Sabre), the effective
  /// rate is derated by T_switch per activation.
  bool transfer_rate_is_effective = false;

  Status Validate() const;

  /// Effective per-disk bandwidth for the chosen fragment size.
  Bandwidth EffectiveDiskBandwidth() const {
    return transfer_rate_is_effective
               ? disk.transfer_rate
               : disk.EffectiveBandwidthCylinders(fragment_cylinders);
  }
  /// Degree of declustering M = ceil(B_Display / B_Disk).
  int32_t Degree() const;
  /// Number of (logical) clusters R = floor(D / M).
  int32_t NumClusters() const { return num_disks / Degree(); }
  /// Time interval S(C_i).
  SimTime Interval() const {
    return transfer_rate_is_effective
               ? TransferTime(disk.cylinder_capacity * fragment_cylinders,
                              disk.transfer_rate)
               : disk.ServiceTime(fragment_cylinders);
  }
  /// Wall-clock duration of one display: n intervals.
  SimTime DisplayTime() const { return Interval() * subobjects_per_object; }
  /// Maximum simultaneous displays the disk bandwidth supports: R.
  int32_t MaxConcurrentDisplays() const { return NumClusters(); }
  /// Upper bound on sustained throughput (displays/hour):
  /// R / display-time.
  double MaxDisplaysPerHour() const {
    return MaxConcurrentDisplays() / DisplayTime().hours();
  }
  /// Worst-case transfer-initiation delay at full load (Section 3.1):
  /// (R - 1) * S(C_i).
  SimTime WorstCaseInitiationDelay() const {
    return Interval() * (NumClusters() - 1);
  }
  /// Size of one object.
  DataSize ObjectSize() const {
    return disk.cylinder_capacity *
           (fragment_cylinders * Degree() * subobjects_per_object);
  }
  /// Whole objects the farm can hold.
  int32_t MaxResidentObjects() const;
  /// Minimum buffer memory for the whole farm (Equation 1 per disk).
  DataSize MinTotalBufferMemory() const {
    return DataSize::Bytes(
        disk.MinBufferMemory(disk.cylinder_capacity * fragment_cylinders)
            .bytes() *
        num_disks);
  }
};

}  // namespace stagger

#endif  // STAGGER_CORE_ANALYSIS_H_
