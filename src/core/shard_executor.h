// Execution-policy seam between the interval scheduler and the shard
// worker pool.  The scheduler plans per-shard work as index-addressed
// tasks and hands them to a ShardExecutor; the core layer deliberately
// knows nothing about threads, so the pool implementation lives in
// node/ (node depends on core, never the reverse) and a null executor
// simply runs the tasks inline.
//
// Determinism contract: ParallelFor must invoke fn(i) exactly once for
// every i in [0, num_tasks) and must not return before all invocations
// have completed (fork/join semantics).  Task bodies only mutate state
// owned by their own index, so any interleaving is observably identical
// to the serial loop.

#ifndef STAGGER_CORE_SHARD_EXECUTOR_H_
#define STAGGER_CORE_SHARD_EXECUTOR_H_

#include <cstdint>
#include <functional>

namespace stagger {

/// \brief Fork/join executor for per-shard tick tasks.
class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;

  /// Runs fn(0) .. fn(num_tasks - 1), each exactly once, and returns
  /// only after every task has finished.  Implementations may run the
  /// tasks on worker threads in any order.
  virtual void ParallelFor(int32_t num_tasks,
                           const std::function<void(int32_t)>& fn) = 0;
};

}  // namespace stagger

#endif  // STAGGER_CORE_SHARD_EXECUTOR_H_
