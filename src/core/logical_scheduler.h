// Interval scheduler over *logical* disks (Section 3.2.3).  Each
// physical disk is split into L logical disks of B_Disk / L; a display
// reserves an integral number of logical units per interval, so several
// low-bandwidth objects can share one disk within a time interval
// (Figure 7), at the cost of buffering the fraction of a lane's data
// read ahead of its transmission slot.
//
// This is a deliberately simpler sibling of IntervalScheduler —
// contiguous admission only, FIFO with backfill — used by the E7
// benchmark and the low-bandwidth example to *measure* the rounding
// waste that whole-disk allocation incurs.

#ifndef STAGGER_CORE_LOGICAL_SCHEDULER_H_
#define STAGGER_CORE_LOGICAL_SCHEDULER_H_

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/stream.h"
#include "core/virtual_disk.h"
#include "disk/disk_array.h"
#include "sim/simulator.h"
#include "storage/media_object.h"
#include "util/result.h"
#include "util/stats.h"
#include "util/units.h"

namespace stagger {

/// \brief Configuration for the logical-disk scheduler.
struct LogicalSchedulerConfig {
  int32_t num_disks = 0;          ///< D
  int32_t stride = 1;             ///< k
  int32_t logical_per_disk = 2;   ///< L
  SimTime interval = SimTime::Millis(605);

  Status Validate() const;
};

/// \brief One display request in logical units.
struct LogicalRequest {
  ObjectId object = kInvalidObject;
  int32_t start_disk = 0;
  /// Logical units reserved per interval (see AllocateLogical).
  int64_t units = 0;
  int64_t num_subobjects = 0;
  /// Places the partial lane on the *first* disk instead of the last,
  /// letting two fractional objects share a middle disk (Figure 7's
  /// X-then-Y pairing: X = [full, half], Y = [half, full]).
  bool partial_lane_first = false;
  std::function<void(SimTime)> on_started;
  std::function<void()> on_completed;
};

/// \brief Counters reported by the logical scheduler.
struct LogicalSchedulerMetrics {
  int64_t displays_requested = 0;
  int64_t displays_completed = 0;
  StreamingStats startup_latency_sec;
  /// Unit-intervals actually reserved (for utilization).
  int64_t unit_intervals_used = 0;
  int64_t intervals_elapsed = 0;
  /// Stream-intervals stalled because a lane's physical disk was down
  /// (health-aware mode only).  All logical units of a down disk stall
  /// together — a half-disk cannot outlive its spindle.
  int64_t stalled_stream_intervals = 0;
  /// Fraction-of-interval buffer load contributed by partial lanes,
  /// time-averaged in fragments.
  TimeWeighted buffered_fraction;
};

/// \brief Interval-synchronous scheduler with L logical units per disk.
class LogicalDiskScheduler {
 public:
  /// \param disks optional health source covering the scheduler's D
  ///        physical disks.  When present, admission refuses lanes whose
  ///        physical disk is unavailable this interval, and active
  ///        streams over a down disk stall delivery (every logical unit
  ///        of the disk together) until it recovers.  Null preserves the
  ///        always-healthy behavior.
  static Result<std::unique_ptr<LogicalDiskScheduler>> Create(
      Simulator* sim, const LogicalSchedulerConfig& config,
      const DiskArray* disks = nullptr);

  ~LogicalDiskScheduler();
  LogicalDiskScheduler(const LogicalDiskScheduler&) = delete;
  LogicalDiskScheduler& operator=(const LogicalDiskScheduler&) = delete;

  Result<RequestId> Submit(LogicalRequest request);

  const LogicalSchedulerMetrics& metrics() const { return metrics_; }
  const LogicalSchedulerConfig& config() const { return config_; }
  size_t active_streams() const { return streams_.size(); }
  size_t pending_requests() const { return queue_.size(); }

  /// Free units on the virtual disk `v` this interval.
  int32_t FreeUnits(int32_t v) const {
    return config_.logical_per_disk - used_units_[static_cast<size_t>(v)];
  }
  /// Mean unit utilization over elapsed intervals.
  double Utilization() const;

 private:
  friend class InvariantAuditor;

  struct ActiveStream {
    RequestId id;
    LogicalRequest req;
    SimTime arrival;
    int32_t first_vdisk = 0;  ///< units occupy vdisks first..first+w-1
    int64_t delivered = 0;
  };
  struct Pending {
    RequestId id;
    LogicalRequest req;
    SimTime arrival;
  };

  LogicalDiskScheduler(Simulator* sim, LogicalSchedulerConfig config,
                       VirtualDiskFrame frame, const DiskArray* disks);

  /// True when every physical disk under the stream's lanes is
  /// available this interval (vacuously true without a health source).
  bool StreamHealthy(const ActiveStream& s) const;

  /// Units the stream places on lane index `lane` (full L except one
  /// possibly-partial lane — last by default, first when
  /// `partial_first`).
  int32_t UnitsOnLane(int64_t units, int32_t lane, bool partial_first) const;
  int32_t WidthOf(int64_t units) const {
    return static_cast<int32_t>(CeilDiv(units, config_.logical_per_disk));
  }
  void Tick(int64_t tick_index);
  bool TryAdmit(const Pending& p);
  void Reserve(int32_t first_vdisk, int64_t units, bool partial_first,
               int32_t sign);

  Simulator* sim_;
  LogicalSchedulerConfig config_;
  VirtualDiskFrame frame_;
  const DiskArray* disks_ = nullptr;  ///< optional health source
  SimTime epoch_;
  int64_t interval_index_ = 0;
  std::vector<int32_t> used_units_;
  std::unordered_map<RequestId, ActiveStream> streams_;
  std::deque<Pending> queue_;
  RequestId next_id_ = 1;
  LogicalSchedulerMetrics metrics_;
  std::unique_ptr<PeriodicTicker> ticker_;
};

}  // namespace stagger

#endif  // STAGGER_CORE_LOGICAL_SCHEDULER_H_
