// The invariant audit subsystem: machine-checkable statements of the
// paper's placement and scheduling guarantees.
//
// The paper's correctness argument rests on invariants, not on code:
//  * fragments of one subobject occupy M_X *consecutive* disks mod D
//    (Section 3.2's declustering rule);
//  * successive subobjects shift by the system-wide stride k, and the
//    resulting data skew is governed by gcd(D, k) (Section 3.2.2);
//  * a disk transfers at most one fragment (B_Disk) per time interval
//    (bandwidth conservation);
//  * a displaying stream never underflows its buffer: every lane has
//    read subobject s before interval delta_max + s delivers it
//    (Algorithm 1), and coalescing migrations (Algorithm 2) only ever
//    move reads *earlier* relative to the output clock, never later.
//
// InvariantAuditor verifies these over three representations:
//  1. static layouts (StaggeredLayout / explicit placement tables),
//  2. recorded schedules (ScheduleTracer),
//  3. live scheduler state (IntervalScheduler / LogicalDiskScheduler),
//     via friend access, invoked per interval when STAGGER_AUDIT is on.
//
// All audits return Status (Internal on violation) rather than
// aborting, so tests can assert that corrupted inputs are rejected;
// the per-interval hooks promote a non-OK audit to a fatal check.

#ifndef STAGGER_CORE_INVARIANTS_H_
#define STAGGER_CORE_INVARIANTS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/schedule_trace.h"
#include "storage/catalog.h"
#include "storage/layout.h"
#include "util/status.h"
#include "util/units.h"

namespace stagger {

class IntervalScheduler;
class LogicalDiskScheduler;

/// Explicit placement table: placement[i][j] is the physical disk
/// holding fragment X_{i.j}.  Materialized from a StaggeredLayout for
/// auditing, or hand-built (and deliberately corrupted) by tests.
using PlacementTable = std::vector<std::vector<int32_t>>;

/// Expands a layout into the explicit placement of its first
/// `num_subobjects` subobjects.  With `include_parity`, each row gains
/// the subobject's parity disk as an extra trailing column — the
/// augmented row is M+1 consecutive disks mod D, so the placement and
/// skew audits apply unchanged with the wider window.
PlacementTable MaterializePlacement(const StaggeredLayout& layout,
                                    int64_t num_subobjects,
                                    bool include_parity = false);

/// \brief Options for ScheduleTracer audits.
struct TraceAuditOptions {
  /// Algorithm-1 buffering is in effect (fragmented admission or
  /// coalescing): fragments of one subobject may legally be read in
  /// different intervals.  When false, any time-split subobject is a
  /// violation — a subobject was spread across non-aligned disks with
  /// no buffering to absorb the skew.
  bool allow_time_fragmentation = false;
};

/// \brief Stateless verifier for the paper's placement and scheduling
/// invariants.  All methods return OK or Status::Internal describing
/// the first violation found.
class InvariantAuditor {
 public:
  // --- static placement audits -----------------------------------------

  /// Mod-D contiguity and stride progression: every row holds disks
  /// p_i, p_i+1, ..., p_i+M-1 (mod D) and row i+1 starts at
  /// p_i + stride (mod D).
  static Status AuditPlacement(const PlacementTable& placement,
                               int32_t num_disks, int32_t stride);

  /// GCD skew bounds (Section 3.2.2): with g = gcd(D, k) and period
  /// P = D/g, subobject start disks stay in one residue class mod g,
  /// per-disk fragment counts respect the floor/ceil window bounds, and
  /// the total equals n * M.
  static Status AuditSkew(const PlacementTable& placement, int32_t num_disks,
                          int32_t stride);

  /// Full audit of a StaggeredLayout: materializes the placement, runs
  /// AuditPlacement + AuditSkew, and cross-checks the layout's own
  /// FragmentsPerDisk / UniqueDisksUsed closed forms against the
  /// materialized table.  Parity-carrying layouts are audited over the
  /// augmented M+1-column table (parity is the stripe's next
  /// consecutive disk), plus AuditParityPlacement.
  static Status AuditLayout(const StaggeredLayout& layout,
                            int64_t num_subobjects);

  /// Parity disjointness (fault-tolerance layer): every subobject's
  /// parity fragment sits on the expected disk (p + i*k + M mod D) and
  /// never co-resides with any of the stripe's own data disks.
  static Status AuditParityPlacement(const StaggeredLayout& layout,
                                     int64_t num_subobjects);

  /// Catalog sanity under an effective disk bandwidth: every object has
  /// subobjects to display, positive display bandwidth, and a degree of
  /// declustering M_X = ceil(B_Display / B_Disk) that fits in [1, D].
  static Status AuditCatalog(const Catalog& catalog, Bandwidth disk_bandwidth,
                             int32_t num_disks);

  // --- recorded schedule audits ----------------------------------------

  /// Audits a recorded schedule against the layouts that produced it:
  ///  * every read lands on the disk its layout dictates (contiguity and
  ///    stride progression of the *actual* schedule),
  ///  * no disk transfers two fragments in one interval (B_Disk),
  ///  * no fragment of a subobject is read twice,
  ///  * a subobject read across several intervals implies Algorithm-1
  ///    buffering (opts.allow_time_fragmentation),
  ///  * on untruncated traces, every touched subobject is read
  ///    completely (all M_X fragments).
  ///
  /// Assumes each object is displayed at most once in the traced window
  /// (true for the paper's Figure 3-5 schedules this tracer renders).
  static Status AuditTrace(const ScheduleTracer& trace,
                           const std::map<ObjectId, StaggeredLayout>& layouts,
                           const TraceAuditOptions& opts = {});

  // --- live scheduler audits (per-interval hooks) -----------------------

  /// Walks the interval scheduler's occupancy and stream state:
  /// virtual-disk ownership is consistent both ways, every active lane
  /// is within delta_max of the output clock (buffer non-underflow),
  /// delivery progress matches the interval arithmetic exactly, buffer
  /// accounting balances against the pool, and zero hiccups occurred.
  static Status AuditScheduler(const IntervalScheduler& scheduler);

  /// Walks the logical-disk scheduler: per-virtual-disk unit usage is
  /// within [0, L] and equals the sum over active streams of the units
  /// each stream places on that disk.
  static Status AuditLogicalScheduler(const LogicalDiskScheduler& scheduler);
};

}  // namespace stagger

#endif  // STAGGER_CORE_INVARIANTS_H_
