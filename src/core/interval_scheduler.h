// The Centralized Scheduler / Disk Manager of the paper, for the striped
// schemes (simple striping is the stride = M special case).
//
// Time is divided into fixed intervals of length S(C_i).  In each
// interval an active display reads one fragment of its current
// subobject from each of M_X disks; the whole disk set shifts k to the
// right every interval.  Because every stream shifts by the same k, we
// track occupancy in *virtual-disk* space (see virtual_disk.h), where
// stream ownership is time-invariant.
//
// Admission policies:
//  * kContiguous — a request starts when the M adjacent virtual disks
//    currently over its first subobject's disks are all idle (the simple
//    striping rule; worst-case latency (R-1) * S(C_i)).
//  * kFragmented — additionally admits over non-adjacent idle virtual
//    disks within an alignment lookahead, buffering early reads
//    (Algorithm 1).  With `coalesce` set, fragmented streams migrate
//    lanes onto later-aligned free disks as they appear, draining
//    buffers (Algorithm 2).

#ifndef STAGGER_CORE_INTERVAL_SCHEDULER_H_
#define STAGGER_CORE_INTERVAL_SCHEDULER_H_

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/buffer_pool.h"
#include "core/shard_executor.h"
#include "core/stream.h"
#include "core/virtual_disk.h"
#include "disk/disk_array.h"
#include "sim/simulator.h"
#include "util/bitmap.h"
#include "util/result.h"
#include "util/stats.h"

namespace stagger {

/// Admission policy (Section 3.2.1).
enum class AdmissionPolicy {
  kContiguous,   ///< adjacent, aligned virtual disks only
  kFragmented,   ///< + Algorithm 1 (buffered, non-adjacent admission)
};

/// \brief How the scheduler reacts when a lane's read lands on a failed
/// or stalled disk (fault subsystem, src/fault/).
enum class DegradedPolicy {
  /// Ignore disk health entirely (the paper's all-healthy assumption);
  /// a read on an unavailable disk is a fatal contract violation.
  kNone,
  /// Pause the affected stream and re-admit it with bounded exponential
  /// backoff; a stream paused longer than `max_pause_intervals` is
  /// cancelled as an interrupted display.
  kPause,
  /// First try to remap the lost fragment's bandwidth onto a surviving
  /// disk with slack this interval — the subobject's own stripe disks
  /// first, then any idle disk (modeling reconstruction from a
  /// stripe-level replica) — and fall back to pause-and-retry when no
  /// slack exists.
  kRemapOrPause,
  /// For parity-carrying streams, read the stripe's parity fragment in
  /// the same interval and reconstruct the lost fragment in buffer —
  /// one extra read charged against the parity disk's slack.  Streams
  /// without parity, or intervals where the parity disk has no slack,
  /// fall through the kRemapOrPause ladder.
  kReconstruct,
};

/// \brief Counters and distributions reported by the scheduler.
struct SchedulerMetrics {
  int64_t displays_requested = 0;
  int64_t displays_admitted = 0;
  int64_t displays_completed = 0;
  int64_t displays_cancelled = 0;
  int64_t fragmented_admissions = 0;
  int64_t coalesce_migrations = 0;
  /// Output intervals where a lane had not yet read the due fragment.
  /// Zero by construction; a non-zero value indicates a scheduler bug.
  int64_t hiccups = 0;
  // --- degraded-mode counters (DegradedPolicy) -------------------------
  /// Fragment reads remapped onto a surviving disk with slack.
  int64_t degraded_reads = 0;
  /// Fragment reads rebuilt in buffer from the stripe's survivors plus
  /// parity (kReconstruct only).
  int64_t reconstructed_reads = 0;
  /// Streams paused because a read hit an unavailable disk with no slack.
  int64_t streams_paused = 0;
  /// Paused streams successfully re-admitted.
  int64_t streams_resumed = 0;
  /// Paused streams cancelled after exceeding `max_pause_intervals`
  /// (also counted in displays_cancelled).
  int64_t displays_interrupted = 0;
  /// Reads that hit a latent-error cell and were caught by the display
  /// path's checksum (any policy except kNone); the fragment was then
  /// served via the degraded ladder instead.
  int64_t corrupt_reads_detected = 0;
  /// Corrupt fragments shipped to a viewer.  Only possible under
  /// DegradedPolicy::kNone, where nothing verifies reads; fault-aware
  /// configurations must keep this at zero.
  int64_t corrupt_frames_delivered = 0;
  /// Seconds from pause to successful re-admission.
  StreamingStats resume_latency_sec;
  /// Seconds from request arrival to first delivered subobject.
  StreamingStats startup_latency_sec;
  /// Pending-queue length sampled every interval (time-weighted).
  TimeWeighted queue_length;
  /// Fragment buffers in use (time-weighted) and their peak.
  TimeWeighted buffered_fragments;
  int64_t peak_buffered_fragments = 0;
  /// Ticks whose advance ran through the sharded plan/apply path (zero
  /// when sharding is off or every tick fell back to the serial walk).
  int64_t sharded_ticks = 0;
};

/// \brief Configuration of the interval scheduler.
struct SchedulerConfig {
  int32_t stride = 1;                  ///< k
  SimTime interval = SimTime::Millis(605);  ///< S(C_i)
  AdmissionPolicy policy = AdmissionPolicy::kContiguous;
  /// Enable Algorithm 2 lane migration (only meaningful with kFragmented).
  bool coalesce = false;
  /// Max alignment delay (intervals) accepted for a fragmented lane.
  int64_t fragmented_lookahead = 16;
  /// Buffer budget in fragments; <= 0 means unlimited.
  int64_t buffer_capacity_fragments = 0;
  /// Requests behind a blocked head may be admitted (Figure 3's "idle
  /// time intervals would be used to service the new request").
  bool allow_backfill = true;
  /// Reaction to reads landing on failed/stalled disks (src/fault/).
  DegradedPolicy degraded_policy = DegradedPolicy::kRemapOrPause;
  /// First re-admission attempt this many intervals after a pause.
  int64_t retry_backoff_intervals = 1;
  /// Backoff doubles after each failed retry, capped here.
  int64_t max_retry_backoff_intervals = 64;
  /// A stream paused longer than this is cancelled as an interrupted
  /// display; <= 0 means never (retry forever).
  int64_t max_pause_intervals = 4096;
  /// Optional observer invoked for every fragment read:
  /// (interval, object, subobject, fragment, physical disk).  Used by
  /// ScheduleTracer to render Figure 3-style schedules.
  std::function<void(int64_t, ObjectId, int64_t, int32_t, int32_t)>
      read_observer;
  // --- sharded execution (src/node/, DESIGN.md §11) --------------------
  /// Number of shards the tick's stream walk is decomposed into.  This
  /// is a pure *execution* knob: shard s plans the advance of the s-th
  /// contiguous slice of the id-sorted active set, journalling every
  /// shared-state effect, and the journals are applied in shard order —
  /// exactly ascending stream id, i.e. the serial mutation sequence —
  /// so results are bit-identical to num_shards == 1 by construction.
  int32_t num_shards = 1;
  /// Below this many active streams a sharded tick falls back to the
  /// serial walk (fork/join overhead would dominate).  <= 0 shards
  /// every eligible tick, which the differential tests use to force
  /// coverage of the parallel path.
  int64_t shard_min_active_streams = 256;
};

/// \brief One display request handed to the scheduler.
struct DisplayRequest {
  ObjectId object = kInvalidObject;
  /// Physical disk of the first fragment to read (layout of X_{s.0} when
  /// starting from subobject s).
  int32_t start_disk = 0;
  int32_t degree = 0;
  int64_t num_subobjects = 0;
  /// True when the object's layout stores a per-subobject parity
  /// fragment on the disk after the stripe (kReconstruct eligibility).
  bool parity = false;
  /// Invoked when the first subobject is delivered, with the startup
  /// latency (arrival to display start).
  std::function<void(SimTime)> on_started;
  /// Invoked when the last subobject is delivered.
  std::function<void()> on_completed;
  /// Invoked when the degraded-mode policy abandons the display (pause
  /// past max_pause_intervals); never fires for a user-initiated Cancel.
  std::function<void()> on_interrupted;
};

/// \brief Interval-synchronous scheduler for staggered striping.
class IntervalScheduler {
 public:
  /// \param sim    simulation kernel; must outlive the scheduler.
  /// \param disks  disk farm (utilization stats); must outlive it.
  /// \param config scheduler parameters; validated here.
  static Result<std::unique_ptr<IntervalScheduler>> Create(
      Simulator* sim, DiskArray* disks, const SchedulerConfig& config);

  ~IntervalScheduler();
  IntervalScheduler(const IntervalScheduler&) = delete;
  IntervalScheduler& operator=(const IntervalScheduler&) = delete;

  /// Enqueues a display request; admission follows the configured
  /// policy.  Returns a handle usable with Cancel().
  Result<RequestId> Submit(DisplayRequest request);

  /// Cancels a pending or active request.  Active streams release their
  /// disks immediately; no completion callback fires.
  Status Cancel(RequestId id);

  /// Repositions an *active* display (rewind / fast-forward without
  /// scan, Section 3.2.5): the stream is torn down and re-queued reading
  /// `new_num_subobjects` stripes starting from the disk holding the
  /// target position's first fragment.  Returns the new handle.  The
  /// caller computes both values from the object's layout.
  Result<RequestId> Seek(RequestId id, int32_t new_start_disk,
                         int64_t new_num_subobjects);

  const SchedulerMetrics& metrics() const { return metrics_; }
  const VirtualDiskFrame& frame() const { return frame_; }
  const SchedulerConfig& config() const { return config_; }
  int64_t current_interval() const { return interval_index_; }
  size_t pending_requests() const { return queue_.size(); }
  size_t active_streams() const { return active_.size(); }
  /// Streams parked by the degraded-mode policy, awaiting re-admission.
  size_t paused_streams() const { return paused_.size(); }
  int32_t idle_virtual_disks() const;

  /// Interval-start wall time of interval index `t`.
  SimTime IntervalStart(int64_t t) const {
    return epoch_ + config_.interval * t;
  }

  /// Installs the fork/join executor the sharded tick dispatches plan
  /// tasks through.  With none installed (the default) a num_shards > 1
  /// scheduler still runs the plan/apply split, just with the plan
  /// tasks inlined on the calling thread — same journals, same results,
  /// no threads.  The executor must outlive the scheduler.
  void SetShardExecutor(ShardExecutor* executor) {
    shard_executor_ = executor;
  }

  /// Installs a hook invoked once per interval after display reads are
  /// scheduled but before the interval closes, with the interval index.
  /// Leftover disk slack at that point is genuinely idle bandwidth; the
  /// rebuild subsystem (src/rebuild/) consumes it for spare rebuilding.
  void SetIdleBandwidthHook(std::function<void(int64_t)> hook) {
    idle_hook_ = std::move(hook);
  }

 private:
  friend class InvariantAuditor;

  struct Pending {
    RequestId id;
    DisplayRequest req;
    SimTime arrival;
    /// True when this entry re-admits a stream paused by the degraded
    /// policy; suppresses the displays_admitted increment (the display
    /// was counted at its first admission).
    bool resumed = false;
    /// True when the display had delivered subobjects before pausing;
    /// suppresses the duplicate on_started / startup-latency sample.
    bool started = false;
  };

  /// A stream parked by the degraded-mode policy: its lanes are torn
  /// down and the undelivered remainder waits for re-admission.
  struct PausedStream {
    RequestId id;
    DisplayRequest remainder;  ///< undelivered tail of the display
    SimTime arrival;           ///< original request arrival
    SimTime paused_at;
    int64_t paused_at_interval = 0;
    int64_t retry_at_interval = 0;  ///< next re-admission attempt
    int64_t backoff = 1;            ///< current backoff (intervals)
    /// True when the display had already delivered subobjects, i.e. the
    /// viewer saw an interruption.
    bool resumed_mid_display = false;
  };

  IntervalScheduler(Simulator* sim, DiskArray* disks, SchedulerConfig config,
                    VirtualDiskFrame frame);

  void Tick(int64_t tick_index);
  void TryAdmissions();
  /// Attempts to admit `p` at the current interval; true on success.
  bool TryAdmit(const Pending& p);
  bool TryAdmitContiguous(const Pending& p);
  bool TryAdmitFragmented(const Pending& p);
  /// `lockstep` marks a contiguous admission: adjacent lanes advancing
  /// in unison, eligible for the tick's range-reserve fast path.
  void AdmitStream(const Pending& p, LaneArray lanes, int64_t delta_max,
                   bool fragmented, bool lockstep, int64_t buffer_frags);
  void AdvanceStreams();
  // --- sharded tick (plan/apply fork/join, DESIGN.md §11) ---------------
  /// One shared-state effect recorded by a shard's plan phase, replayed
  /// verbatim by the serial apply phase.
  struct ShardOp {
    enum class Kind : uint8_t {
      kReserveRun,    ///< a = first physical disk, b = run length
      kReserveSlot,   ///< a = physical disk
      kObserve,       ///< a = fragment, b = disk, c = subobject, d = object
      kReleaseVdisk,  ///< a = virtual disk, c = owning stream id
      kStarted,       ///< a = slot of the stream whose display started
    };
    Kind kind;
    int32_t a = 0;
    int32_t b = 0;
    int64_t c = 0;
    int64_t d = 0;
  };
  /// Per-shard plan output.  Cache-line aligned so two shards' appends
  /// never share a line (the vectors' inline headers are the hot part).
  struct alignas(64) ShardJournal {
    std::vector<ShardOp> ops;
    std::vector<StreamId> finished;
    int64_t buffered_delta = 0;
    int64_t hiccups = 0;
    void Clear() {
      ops.clear();        // keeps capacity across ticks
      finished.clear();
      buffered_delta = 0;
      hiccups = 0;
    }
  };
  /// The sharded advance: fork the plan across shards, join at the
  /// epoch barrier inside ParallelFor, then apply journals in shard
  /// order (== ascending stream id).  Only called when the tick is
  /// eligible (healthy array, no coalescing, executor installed).
  void AdvanceStreamsSharded(int32_t rot);
  /// Plans the advance of active_[begin, end): mutates only the slice's
  /// stream-local state and appends shared-state effects to
  /// shard_journals_[shard].  Runs concurrently with other shards.
  void PlanShardAdvance(int32_t shard, int32_t rot, size_t begin, size_t end);
  /// Serial replay of all journals in shard order; byte-for-byte the
  /// shared-state mutation sequence of the serial walk.
  void ApplyShardJournals();
  void TryCoalesce(Stream* s);
  void ReleaseLane(Stream* s, int32_t lane_index);
  void FinishStream(StreamId id, bool completed);
  void UpdateIntervalStats();
  // --- stream storage ---------------------------------------------------
  /// Slot of `id` in slots_, or -1.  Binary search over active_.
  int32_t SlotOf(StreamId id) const;
  /// Pointer into slots_, or nullptr when `id` is not active.  Valid
  /// until the next admission (slots_ may reallocate).
  Stream* FindStream(StreamId id);
  const Stream* FindStream(StreamId id) const;
  /// Pops a free slot, growing slots_ when the free list is empty.
  int32_t AllocSlot();
  /// Inserts (id, slot) into active_ keeping it sorted by id.  Ids are
  /// usually monotonic (fresh requests), so push_back is the fast path;
  /// a resumed paused stream re-enters with its original smaller id.
  void InsertActive(StreamId id, int32_t slot);
  void EraseActive(StreamId id);
  // --- degraded mode ---------------------------------------------------
  /// Re-admits paused streams whose backoff expired; cancels those past
  /// `max_pause_intervals`.  Runs before fresh admissions so resumed
  /// displays have priority.
  void RetryPaused();
  /// Tears down an active stream and parks its undelivered remainder.
  void PauseStream(StreamId id);
  /// Marks `disk` as due to be read by some active lane this interval.
  void MarkClaimed(int32_t disk) {
    claimed_epoch_[static_cast<size_t>(disk)] = claim_stamp_;
  }
  bool IsClaimed(int32_t disk) const {
    return claimed_epoch_[static_cast<size_t>(disk)] == claim_stamp_;
  }
  /// Physical disk with slack to absorb lane `lane_index`'s read this
  /// interval, or -1.  Consults the claimed-disk stamps of the current
  /// interval (disks some active lane is due to read, whether or not
  /// already reserved).
  int32_t FindDegradedSubstitute(const Stream& s, size_t lane_index) const;

  Simulator* sim_;
  DiskArray* disks_;
  SchedulerConfig config_;
  VirtualDiskFrame frame_;
  BufferPool buffers_;
  SimTime epoch_;
  int64_t interval_index_ = 0;

  /// Owner of each virtual disk (kNoStream when free) plus the same set
  /// as a bitmap.  The bitmap answers the hot-path queries (window test
  /// at contiguous admission, per-delay probes at fragmented admission
  /// and coalescing) in O(M/64) words; the owner array backs O(1)
  /// release and the audit's cross-checks.
  std::vector<StreamId> vdisk_owner_;
  Bitmap vdisk_occupied_;
  /// Stream storage: stable slots plus a free list, so steady-state
  /// admission/retirement never allocates.  active_ maps stream id ->
  /// slot, sorted by id — the tick loop iterates it directly instead of
  /// rebuilding and sorting an id vector every interval.
  std::vector<Stream> slots_;
  std::vector<int32_t> free_slots_;
  std::vector<std::pair<StreamId, int32_t>> active_;
  std::deque<Pending> queue_;
  std::deque<PausedStream> paused_;
  RequestId next_request_id_ = 1;
  /// Maps live request handles to their stream (or kNoStream if queued).
  std::unordered_map<RequestId, StreamId> request_to_stream_;

  /// Sum over active streams of TotalBufferedFragments(), maintained
  /// incrementally (+1 per read, -degree per delivery, -contribution at
  /// retirement) so per-interval stats cost O(1).
  int64_t buffered_fragments_ = 0;

  // Scratch reused across ticks (no per-tick allocation).
  /// Virtual disks tentatively taken by earlier lanes of one fragmented
  /// admission; bits listed in scratch_taken_bits_ are cleared after
  /// each attempt.
  Bitmap scratch_taken_;
  std::vector<int32_t> scratch_taken_bits_;
  /// Claimed-disk set as interval-stamped epochs: claimed_epoch_[d] ==
  /// claim_stamp_ means claimed this interval.  Never cleared; stamping
  /// makes last interval's entries stale for free.  Built only when some
  /// disk is actually down.
  std::vector<int64_t> claimed_epoch_;
  int64_t claim_stamp_ = 0;
  std::vector<StreamId> scratch_finished_;
  std::vector<StreamId> scratch_to_pause_;

  SchedulerMetrics metrics_;
  std::function<void(int64_t)> idle_hook_;
  /// Fork/join executor for the sharded tick; not owned.  See
  /// SetShardExecutor for the nullptr (inline plan) semantics.
  ShardExecutor* shard_executor_ = nullptr;
  std::vector<ShardJournal> shard_journals_;
  std::unique_ptr<PeriodicTicker> ticker_;
};

}  // namespace stagger

#endif  // STAGGER_CORE_INTERVAL_SCHEDULER_H_
