#include "core/fast_forward.h"

namespace stagger {

Result<FastForwardReplica> MakeFastForwardReplica(const MediaObject& original,
                                                  int32_t speedup) {
  if (speedup < 1) {
    return Status::InvalidArgument("fast-forward speedup must be >= 1");
  }
  if (original.num_subobjects < 1) {
    return Status::InvalidArgument("original object has no subobjects");
  }
  FastForwardReplica replica;
  replica.speedup = speedup;
  replica.object = original;
  replica.object.id = kInvalidObject;
  replica.object.name = original.name + ".ff" + std::to_string(speedup);
  replica.object.num_subobjects =
      CeilDiv(original.num_subobjects, static_cast<int64_t>(speedup));
  return replica;
}

Result<std::vector<ObjectId>> AddFastForwardReplicas(Catalog* catalog,
                                                     int32_t speedup) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("need a catalog to add replicas to");
  }
  const int32_t originals = catalog->size();
  std::vector<ObjectId> replica_of(static_cast<size_t>(originals),
                                   kInvalidObject);
  for (ObjectId id = 0; id < originals; ++id) {
    STAGGER_ASSIGN_OR_RETURN(
        FastForwardReplica replica,
        MakeFastForwardReplica(catalog->Get(id), speedup));
    replica_of[static_cast<size_t>(id)] = catalog->Add(replica.object);
  }
  return replica_of;
}

}  // namespace stagger
