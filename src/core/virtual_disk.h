// Virtual disks (Section 3.2.1).  "A virtual disk i at time interval t
// is defined as physical disk (i - kt) mod D ... a virtual disk reads
// the same fragment of each subobject and shifts in time with the
// stride of the staggering."
//
// We model occupancy in virtual-disk space: because every stream shifts
// by the same stride k per interval, ownership of a virtual disk is
// time-invariant — two streams that do not collide at admission never
// collide later.  This file provides the frame mapping between virtual
// and physical indices and the modular alignment solver used by
// admission: the earliest interval at which a virtual disk passes over a
// given physical disk.

#ifndef STAGGER_CORE_VIRTUAL_DISK_H_
#define STAGGER_CORE_VIRTUAL_DISK_H_

#include <cstdint>
#include <optional>
#include <utility>

#include "util/bitmap.h"
#include "util/result.h"
#include "util/units.h"

namespace stagger {

/// Extended Euclid: returns g = gcd(a, b) and x, y with a*x + b*y = g.
int64_t ExtendedGcd(int64_t a, int64_t b, int64_t* x, int64_t* y);

/// Modular inverse of a modulo m (m >= 1); NotFound when gcd(a, m) != 1.
Result<int64_t> ModInverse(int64_t a, int64_t m);

/// \brief The rotating frame relating virtual and physical disk indices
/// for a system of `D` disks with stride `k`.
class VirtualDiskFrame {
 public:
  /// \param num_disks  D >= 1.
  /// \param stride     k in [1, D].
  static Result<VirtualDiskFrame> Create(int32_t num_disks, int32_t stride);

  int32_t num_disks() const { return num_disks_; }
  int32_t stride() const { return stride_; }
  /// gcd(D, k); virtual disk v only ever visits physical disks congruent
  /// to v modulo this value.
  int32_t gcd() const { return gcd_; }
  /// Number of intervals after which a virtual disk revisits the same
  /// physical disk: D / gcd(D, k).
  int32_t period() const { return num_disks_ / gcd_; }

  /// Physical disk under virtual disk `v` at interval `t`.
  int32_t PhysicalOf(int32_t v, int64_t t) const {
    return static_cast<int32_t>(
        PositiveMod(static_cast<int64_t>(v) + static_cast<int64_t>(stride_) * t,
                    num_disks_));
  }

  /// Virtual disk over physical disk `p` at interval `t` (the paper's
  /// (i - kt) mod D).
  int32_t VirtualOf(int32_t p, int64_t t) const {
    return static_cast<int32_t>(
        PositiveMod(static_cast<int64_t>(p) - static_cast<int64_t>(stride_) * t,
                    num_disks_));
  }

  /// Smallest delta >= 0 such that virtual disk `v` sits over physical
  /// disk `p` at interval `t + delta`; nullopt when unreachable (p and v
  /// in different residue classes modulo gcd(D, k)).
  std::optional<int64_t> AlignmentDelay(int32_t v, int32_t p, int64_t t) const;

  /// Frame rotation at interval `t`: PhysicalOf(v, t) == v + RotationAt(t)
  /// reduced mod D.  The scheduler hoists this out of its per-lane loop so
  /// the hot path is an add and a compare instead of 64-bit div/mod.
  int32_t RotationAt(int64_t t) const {
    return static_cast<int32_t>(
        PositiveMod(static_cast<int64_t>(stride_) * t, num_disks_));
  }

  // --- occupancy-bitmap searches (O(active work) scheduler tick) --------
  //
  // Exactly one virtual disk aligns with a given physical disk at each
  // delay: v_delta = (target - k*(t + delta)) mod D, and v_delta repeats
  // with period P = D/gcd(D, k).  Searching delays therefore probes ONE
  // bitmap bit per delay instead of solving AlignmentDelay for all D
  // virtual disks — the admission/coalesce scans drop from O(D) to
  // O(min(bound, P)) with an early exit on the first free disk.

  /// Free (not occupied, not taken) virtual disk with the smallest
  /// alignment delay onto physical disk `target` at/after interval `t`,
  /// considering delays in [skip_zero ? 1 : 0, max_delay].  Returns
  /// {vdisk, delay} or nullopt.  Equivalent to minimizing AlignmentDelay
  /// over all free virtual disks (Algorithm-1 fragmented admission).
  std::optional<std::pair<int32_t, int64_t>> FindEarliestFreeVdisk(
      const Bitmap& occupied, const Bitmap& taken, int64_t t, int32_t target,
      int64_t max_delay, bool skip_zero) const;

  /// Free virtual disk whose latest alignment onto `target` no later
  /// than stream-local interval `max_resume` is largest: resume = tau +
  /// AlignmentDelay + c*period maximized subject to resume <= max_resume.
  /// Returns {vdisk, resume} or nullopt (Algorithm-2 coalescing search).
  std::optional<std::pair<int32_t, int64_t>> FindLatestFreeVdisk(
      const Bitmap& occupied, int64_t t, int32_t target, int64_t tau,
      int64_t max_resume) const;

 private:
  VirtualDiskFrame(int32_t num_disks, int32_t stride, int32_t gcd,
                   int64_t stride_inverse)
      : num_disks_(num_disks), stride_(stride), gcd_(gcd),
        stride_inverse_(stride_inverse) {}

  int32_t num_disks_;
  int32_t stride_;
  int32_t gcd_;
  /// Inverse of (k / g) modulo (D / g), precomputed.
  int64_t stride_inverse_;
};

}  // namespace stagger

#endif  // STAGGER_CORE_VIRTUAL_DISK_H_
