// Virtual disks (Section 3.2.1).  "A virtual disk i at time interval t
// is defined as physical disk (i - kt) mod D ... a virtual disk reads
// the same fragment of each subobject and shifts in time with the
// stride of the staggering."
//
// We model occupancy in virtual-disk space: because every stream shifts
// by the same stride k per interval, ownership of a virtual disk is
// time-invariant — two streams that do not collide at admission never
// collide later.  This file provides the frame mapping between virtual
// and physical indices and the modular alignment solver used by
// admission: the earliest interval at which a virtual disk passes over a
// given physical disk.

#ifndef STAGGER_CORE_VIRTUAL_DISK_H_
#define STAGGER_CORE_VIRTUAL_DISK_H_

#include <cstdint>
#include <optional>

#include "util/result.h"
#include "util/units.h"

namespace stagger {

/// Extended Euclid: returns g = gcd(a, b) and x, y with a*x + b*y = g.
int64_t ExtendedGcd(int64_t a, int64_t b, int64_t* x, int64_t* y);

/// Modular inverse of a modulo m (m >= 1); NotFound when gcd(a, m) != 1.
Result<int64_t> ModInverse(int64_t a, int64_t m);

/// \brief The rotating frame relating virtual and physical disk indices
/// for a system of `D` disks with stride `k`.
class VirtualDiskFrame {
 public:
  /// \param num_disks  D >= 1.
  /// \param stride     k in [1, D].
  static Result<VirtualDiskFrame> Create(int32_t num_disks, int32_t stride);

  int32_t num_disks() const { return num_disks_; }
  int32_t stride() const { return stride_; }
  /// gcd(D, k); virtual disk v only ever visits physical disks congruent
  /// to v modulo this value.
  int32_t gcd() const { return gcd_; }
  /// Number of intervals after which a virtual disk revisits the same
  /// physical disk: D / gcd(D, k).
  int32_t period() const { return num_disks_ / gcd_; }

  /// Physical disk under virtual disk `v` at interval `t`.
  int32_t PhysicalOf(int32_t v, int64_t t) const {
    return static_cast<int32_t>(
        PositiveMod(static_cast<int64_t>(v) + static_cast<int64_t>(stride_) * t,
                    num_disks_));
  }

  /// Virtual disk over physical disk `p` at interval `t` (the paper's
  /// (i - kt) mod D).
  int32_t VirtualOf(int32_t p, int64_t t) const {
    return static_cast<int32_t>(
        PositiveMod(static_cast<int64_t>(p) - static_cast<int64_t>(stride_) * t,
                    num_disks_));
  }

  /// Smallest delta >= 0 such that virtual disk `v` sits over physical
  /// disk `p` at interval `t + delta`; nullopt when unreachable (p and v
  /// in different residue classes modulo gcd(D, k)).
  std::optional<int64_t> AlignmentDelay(int32_t v, int32_t p, int64_t t) const;

 private:
  VirtualDiskFrame(int32_t num_disks, int32_t stride, int32_t gcd,
                   int64_t stride_inverse)
      : num_disks_(num_disks), stride_(stride), gcd_(gcd),
        stride_inverse_(stride_inverse) {}

  int32_t num_disks_;
  int32_t stride_;
  int32_t gcd_;
  /// Inverse of (k / g) modulo (D / g), precomputed.
  int64_t stride_inverse_;
};

}  // namespace stagger

#endif  // STAGGER_CORE_VIRTUAL_DISK_H_
