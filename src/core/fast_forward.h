// Fast-forward with scanning (Section 3.2.5).  The data layout is tuned
// for normal-speed delivery, so scanning stores a small "fast forward
// replica" per object: roughly every 16th frame, displayed at the normal
// rate, covering the timeline `speedup` times faster.  This header maps
// between normal and replica positions and sizes the replica.

#ifndef STAGGER_CORE_FAST_FORWARD_H_
#define STAGGER_CORE_FAST_FORWARD_H_

#include <vector>

#include "storage/catalog.h"
#include "storage/media_object.h"
#include "util/result.h"

namespace stagger {

/// \brief Fast-forward replica descriptor.
struct FastForwardReplica {
  /// The replica as a displayable object (same bandwidth, fewer
  /// subobjects); its id is assigned when added to a catalog.
  MediaObject object;
  /// Timeline compression factor (e.g. 16 for VHS-style scan).
  int32_t speedup = 1;

  /// Replica subobject covering normal-speed subobject `i`.
  int64_t ToReplica(int64_t i) const { return i / speedup; }
  /// First normal-speed subobject covered by replica subobject `ri`.
  int64_t FromReplica(int64_t ri) const { return ri * speedup; }

  /// Fraction of the original object's storage the replica consumes.
  double StorageOverhead(const MediaObject& original) const {
    return static_cast<double>(object.num_subobjects) /
           static_cast<double>(original.num_subobjects);
  }
};

/// Builds the scan replica of `original`: ceil(n / speedup) subobjects
/// at the original display bandwidth.  `speedup` must be >= 1.
Result<FastForwardReplica> MakeFastForwardReplica(const MediaObject& original,
                                                  int32_t speedup);

/// Appends a scan replica of every object currently in `catalog` and
/// returns the original -> replica id map (sized to the original
/// catalog), in the shape OpenArrivalsConfig::scan_replica consumes.
/// Replica ids start at the pre-call catalog size, so existing ids are
/// untouched.
Result<std::vector<ObjectId>> AddFastForwardReplicas(Catalog* catalog,
                                                     int32_t speedup);

}  // namespace stagger

#endif  // STAGGER_CORE_FAST_FORWARD_H_
