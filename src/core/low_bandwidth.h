// Low-bandwidth objects (Section 3.2.3).  Objects with
// B_Display < B_Disk (or a non-multiple of it) waste bandwidth when
// forced to occupy an integral number of disks.  The paper splits each
// disk into L logical disks of B_Disk / L each, multiplexing several
// subobjects per time interval at the cost of extra buffer space
// (Figure 7).  This module provides the rounding-waste analysis and the
// logical-unit allocation math used by the E7 benchmark and the
// logical-disk scheduler.

#ifndef STAGGER_CORE_LOW_BANDWIDTH_H_
#define STAGGER_CORE_LOW_BANDWIDTH_H_

#include <cstdint>

#include "util/result.h"
#include "util/units.h"

namespace stagger {

/// \brief Allocation of one object onto logical disk units.
struct LogicalAllocation {
  /// Logical units reserved per interval (each B_Disk / L).
  int64_t units = 0;
  /// Physical disks touched per interval: ceil(units / L).
  int64_t disks = 0;
  /// Fraction of the reserved bandwidth left unused by the object.
  double wasted_fraction = 0.0;
  /// Extra buffering, as a fraction of one subobject, needed to smooth
  /// intra-interval multiplexing (zero when L == 1; Figure 7's half-
  /// subobject when L == 2 and the object uses one unit).
  double buffer_subobject_fraction = 0.0;
};

/// Bandwidth waste when `display` is served by an integral number of
/// whole disks of `disk` bandwidth: 1 - display / (ceil(display/disk) *
/// disk).  The paper's 30 mbps object on 20 mbps disks wastes 25 %.
double IntegralDiskWaste(Bandwidth display, Bandwidth disk);

/// Allocates `display` bandwidth in units of `disk`/`logical_per_disk`.
/// \param display          the object's B_Display (> 0).
/// \param disk             effective disk bandwidth B_Disk (> 0).
/// \param logical_per_disk L >= 1 logical disks per physical disk.
Result<LogicalAllocation> AllocateLogical(Bandwidth display, Bandwidth disk,
                                          int32_t logical_per_disk);

}  // namespace stagger

#endif  // STAGGER_CORE_LOW_BANDWIDTH_H_
