#include "core/interval_scheduler.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "core/invariants.h"
#include "util/check.h"
#include "util/hot_path.h"

namespace stagger {

Result<std::unique_ptr<IntervalScheduler>> IntervalScheduler::Create(
    Simulator* sim, DiskArray* disks, const SchedulerConfig& config) {
  if (config.interval <= SimTime::Zero()) {
    return Status::InvalidArgument("scheduler interval must be positive");
  }
  if (config.fragmented_lookahead < 0) {
    return Status::InvalidArgument("fragmented lookahead must be >= 0");
  }
  if (config.retry_backoff_intervals < 1) {
    return Status::InvalidArgument("retry backoff must be >= 1 interval");
  }
  if (config.max_retry_backoff_intervals < config.retry_backoff_intervals) {
    return Status::InvalidArgument(
        "max retry backoff must be >= the initial backoff");
  }
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (config.num_shards > disks->num_disks()) {
    return Status::InvalidArgument(
        "num_shards must not exceed the number of disks");
  }
  STAGGER_ASSIGN_OR_RETURN(VirtualDiskFrame frame,
                           VirtualDiskFrame::Create(disks->num_disks(),
                                                    config.stride));
  auto scheduler = std::unique_ptr<IntervalScheduler>(
      new IntervalScheduler(sim, disks, config, frame));
  return scheduler;
}

IntervalScheduler::IntervalScheduler(Simulator* sim, DiskArray* disks,
                                     SchedulerConfig config,
                                     VirtualDiskFrame frame)
    : sim_(sim), disks_(disks), config_(config), frame_(frame),
      buffers_(config.buffer_capacity_fragments), epoch_(sim->Now()),
      vdisk_owner_(static_cast<size_t>(disks->num_disks()), kNoStream) {
  vdisk_occupied_.Resize(disks->num_disks());
  scratch_taken_.Resize(disks->num_disks());
  claimed_epoch_.assign(static_cast<size_t>(disks->num_disks()), 0);
  ticker_ = std::make_unique<PeriodicTicker>(
      sim_, epoch_, config_.interval, [this](int64_t tick) { Tick(tick); });
}

IntervalScheduler::~IntervalScheduler() = default;

Result<RequestId> IntervalScheduler::Submit(DisplayRequest request) {
  if (request.degree < 1 || request.degree > frame_.num_disks()) {
    return Status::InvalidArgument("display degree must be in [1, D]");
  }
  if (request.num_subobjects < 1) {
    return Status::InvalidArgument("display must cover at least one subobject");
  }
  if (request.start_disk < 0 || request.start_disk >= frame_.num_disks()) {
    return Status::InvalidArgument("start disk out of range");
  }
  const RequestId id = next_request_id_++;
  queue_.push_back(Pending{id, std::move(request), sim_->Now()});
  request_to_stream_[id] = kNoStream;
  ++metrics_.displays_requested;
  return id;
}

Status IntervalScheduler::Cancel(RequestId id) {
  auto it = request_to_stream_.find(id);
  if (it == request_to_stream_.end()) {
    return Status::NotFound("unknown request " + std::to_string(id));
  }
  if (it->second == kNoStream) {
    bool dequeued = false;
    for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
      if (qit->id == id) {
        queue_.erase(qit);
        dequeued = true;
        break;
      }
    }
    if (!dequeued) {
      // A handle mapped to kNoStream but absent from the queue is a
      // stream parked by the degraded policy.
      for (auto pit = paused_.begin(); pit != paused_.end(); ++pit) {
        if (pit->id == id) {
          paused_.erase(pit);
          break;
        }
      }
    }
  } else {
    FinishStream(it->second, /*completed=*/false);
  }
  request_to_stream_.erase(id);
  ++metrics_.displays_cancelled;
  return Status::OK();
}

Result<RequestId> IntervalScheduler::Seek(RequestId id, int32_t new_start_disk,
                                          int64_t new_num_subobjects) {
  auto it = request_to_stream_.find(id);
  if (it == request_to_stream_.end() || it->second == kNoStream) {
    return Status::FailedPrecondition("Seek requires an active stream");
  }
  Stream* s = FindStream(it->second);
  STAGGER_CHECK(s != nullptr);
  DisplayRequest req;
  req.object = s->object;
  req.degree = s->degree;
  req.start_disk = new_start_disk;
  req.num_subobjects = new_num_subobjects;
  req.parity = s->parity;
  req.on_started = s->on_started;
  req.on_completed = s->on_completed;
  req.on_interrupted = s->on_interrupted;

  FinishStream(it->second, /*completed=*/false);
  request_to_stream_.erase(it);
  return Submit(std::move(req));
}

int32_t IntervalScheduler::idle_virtual_disks() const {
  return frame_.num_disks() - vdisk_occupied_.CountSet();
}

int32_t IntervalScheduler::SlotOf(StreamId id) const {
  auto it = std::lower_bound(
      active_.begin(), active_.end(), id,
      [](const std::pair<StreamId, int32_t>& e, StreamId v) {
        return e.first < v;
      });
  if (it == active_.end() || it->first != id) return -1;
  return it->second;
}

Stream* IntervalScheduler::FindStream(StreamId id) {
  const int32_t slot = SlotOf(id);
  return slot < 0 ? nullptr : &slots_[static_cast<size_t>(slot)];
}

const Stream* IntervalScheduler::FindStream(StreamId id) const {
  const int32_t slot = SlotOf(id);
  return slot < 0 ? nullptr : &slots_[static_cast<size_t>(slot)];
}

int32_t IntervalScheduler::AllocSlot() {
  if (!free_slots_.empty()) {
    const int32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<int32_t>(slots_.size()) - 1;
}

void IntervalScheduler::InsertActive(StreamId id, int32_t slot) {
  if (active_.empty() || active_.back().first < id) {
    active_.emplace_back(id, slot);
    return;
  }
  auto it = std::lower_bound(
      active_.begin(), active_.end(), id,
      [](const std::pair<StreamId, int32_t>& e, StreamId v) {
        return e.first < v;
      });
  STAGGER_DCHECK(it == active_.end() || it->first != id);
  active_.insert(it, {id, slot});
}

void IntervalScheduler::EraseActive(StreamId id) {
  auto it = std::lower_bound(
      active_.begin(), active_.end(), id,
      [](const std::pair<StreamId, int32_t>& e, StreamId v) {
        return e.first < v;
      });
  STAGGER_CHECK(it != active_.end() && it->first == id)
      << "unknown stream " << id;
  active_.erase(it);
}

STAGGER_HOT_PATH void IntervalScheduler::Tick(int64_t tick_index) {
  interval_index_ = tick_index;
  // Entries stamped in earlier intervals go stale without any clearing.
  claim_stamp_ = tick_index + 1;
  RetryPaused();
  TryAdmissions();
  AdvanceStreams();
  UpdateIntervalStats();
#ifdef STAGGER_AUDIT
  // Self-check every simulated interval: occupancy, delivery clock,
  // buffer accounting, and non-underflow (see core/invariants.h).
  STAGGER_CHECK_OK(InvariantAuditor::AuditScheduler(*this));
#endif
  // Whatever slack remains after display reads is genuinely idle
  // bandwidth: the rebuild hook may consume it before the interval
  // closes.  It runs after the audit so display-path invariants are
  // checked against display reads alone.
  if (idle_hook_) idle_hook_(interval_index_);
  // Interval close-out runs after the audit so the degraded-state rules
  // can inspect this interval's busy flags (a failed disk carries zero
  // load).
  disks_->EndInterval();
}

STAGGER_HOT_PATH void IntervalScheduler::TryAdmissions() {
  // Scan FIFO; with backfill, requests behind a blocked head may be
  // admitted (the paper's Figure 3 idle slots serving a new request).
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (TryAdmit(*it)) {
      it = queue_.erase(it);
    } else if (config_.allow_backfill) {
      ++it;
    } else {
      break;
    }
  }
}

STAGGER_HOT_PATH bool IntervalScheduler::TryAdmit(const Pending& p) {
  if (TryAdmitContiguous(p)) return true;
  if (config_.policy == AdmissionPolicy::kFragmented &&
      TryAdmitFragmented(p)) {
    return true;
  }
  return false;
}

STAGGER_HOT_PATH bool IntervalScheduler::TryAdmitContiguous(const Pending& p) {
  // The request starts only when the virtual disks *currently over* its
  // first fragments are all idle (alignment delay zero): one modular
  // window test over the occupancy bitmap.
  const int32_t v0 = frame_.VirtualOf(p.req.start_disk, interval_index_);
  const int32_t m = p.req.degree;
  if (!vdisk_occupied_.WindowClear(v0, m)) return false;
  if (config_.degraded_policy != DegradedPolicy::kNone &&
      disks_->UnavailableCount() > 0) {
    // The stream reads its first stripe immediately — refuse to start a
    // display whose first reads land on unavailable disks (it would
    // pause on its very first interval).  Under kReconstruct a single
    // lost fragment is tolerable when the stripe's parity disk can
    // stand in for it.
    int32_t down = 0;
    for (int32_t j = 0; j < m; ++j) {
      const int32_t physical = static_cast<int32_t>(PositiveMod(
          static_cast<int64_t>(p.req.start_disk) + j, frame_.num_disks()));
      if (!disks_->IsAvailable(physical)) ++down;
    }
    if (down > 0) {
      const int32_t parity_disk = static_cast<int32_t>(PositiveMod(
          static_cast<int64_t>(p.req.start_disk) + m, frame_.num_disks()));
      const bool reconstructable =
          config_.degraded_policy == DegradedPolicy::kReconstruct &&
          p.req.parity && down == 1 && disks_->IsAvailable(parity_disk);
      if (!reconstructable) return false;
    }
  }
  LaneArray lanes;
  lanes.Assign(m);
  for (int32_t j = 0; j < m; ++j) {
    lanes[static_cast<size_t>(j)].vdisk = static_cast<int32_t>(
        PositiveMod(static_cast<int64_t>(v0) + j, frame_.num_disks()));
    lanes[static_cast<size_t>(j)].next_read_tau = 0;
  }
  AdmitStream(p, std::move(lanes), /*delta_max=*/0, /*fragmented=*/false,
              /*lockstep=*/true, /*buffer_frags=*/0);
  return true;
}

STAGGER_HOT_PATH bool IntervalScheduler::TryAdmitFragmented(const Pending& p) {
  const int32_t m = p.req.degree;
  const int32_t d = frame_.num_disks();
  const bool check_health = config_.degraded_policy != DegradedPolicy::kNone &&
                            disks_->UnavailableCount() > 0;
  LaneArray lanes;
  lanes.Assign(m);
  int64_t delta_max = 0;

  // scratch_taken_ carries the virtual disks tentatively picked for
  // earlier lanes of this attempt; set bits are recorded so teardown is
  // O(m), not O(D).
  STAGGER_DCHECK(scratch_taken_bits_.empty());
  bool ok = true;
  for (int32_t j = 0; j < m; ++j) {
    const int32_t target = static_cast<int32_t>(
        PositiveMod(static_cast<int64_t>(p.req.start_disk) + j, d));
    // A lane with alignment delay zero reads `target` this interval;
    // skip such candidates while the disk is down (later-aligned lanes
    // are still fine — health at their read time is unknowable).
    const bool target_down = check_health && !disks_->IsAvailable(target);
    const auto found = frame_.FindEarliestFreeVdisk(
        vdisk_occupied_, scratch_taken_, interval_index_, target,
        config_.fragmented_lookahead, target_down);
    if (!found.has_value()) {
      ok = false;
      break;
    }
    scratch_taken_.Set(found->first);
    // stagger-lint: allow(hot-path-alloc) -- scratch_taken_bits_ keeps its capacity across admissions (clear(), never shrink), so this amortizes to zero allocations in steady state
    scratch_taken_bits_.push_back(found->first);
    lanes[static_cast<size_t>(j)].vdisk = found->first;
    lanes[static_cast<size_t>(j)].next_read_tau = found->second;
    delta_max = std::max(delta_max, found->second);
  }
  for (int32_t v : scratch_taken_bits_) scratch_taken_.Clear(v);
  scratch_taken_bits_.clear();
  if (!ok) return false;

  int64_t buffer_frags = 0;
  for (int32_t j = 0; j < m; ++j) {
    buffer_frags += delta_max - lanes[static_cast<size_t>(j)].next_read_tau;
  }
  if (!buffers_.TryReserve(buffer_frags)) return false;

  AdmitStream(p, std::move(lanes), delta_max, /*fragmented=*/buffer_frags > 0,
              /*lockstep=*/false,
              buffer_frags);
  return true;
}

void IntervalScheduler::AdmitStream(const Pending& p, LaneArray lanes,
                                    int64_t delta_max, bool fragmented,
                                    bool lockstep, int64_t buffer_frags) {
  const int32_t slot = AllocSlot();
  Stream& s = slots_[static_cast<size_t>(slot)];
  s.id = p.id;
  s.object = p.req.object;
  s.degree = p.req.degree;
  s.num_subobjects = p.req.num_subobjects;
  s.start_disk = p.req.start_disk;
  s.admit_interval = interval_index_;
  s.delta_max = delta_max;
  s.arrival_time = p.arrival;
  s.lanes = std::move(lanes);
  s.delivered = 0;
  s.fragmented = fragmented;
  s.lockstep = lockstep;
  s.parity = p.req.parity;
  s.buffer_reserved = buffer_frags;
  s.resumed_mid_display = p.started;
  s.on_completed = p.req.on_completed;
  s.on_started = p.req.on_started;
  s.on_interrupted = p.req.on_interrupted;

  for (const FragmentLane& lane : s.lanes) {
    STAGGER_DCHECK(vdisk_owner_[static_cast<size_t>(lane.vdisk)] == kNoStream);
    vdisk_owner_[static_cast<size_t>(lane.vdisk)] = s.id;
    vdisk_occupied_.Set(lane.vdisk);
  }
  // A resumed stream continues a display counted at first admission.
  if (!p.resumed) ++metrics_.displays_admitted;
  if (fragmented) ++metrics_.fragmented_admissions;
  request_to_stream_[p.id] = s.id;
  InsertActive(s.id, slot);
}

STAGGER_HOT_PATH void IntervalScheduler::AdvanceStreams() {
  const int32_t d = frame_.num_disks();
  // Physical disk under virtual disk v this interval is v + rot (mod D);
  // hoisting the rotation turns the per-lane mapping into an add and a
  // conditional subtract.
  const int32_t rot = frame_.RotationAt(interval_index_);

  // Physical disks some active lane is due to read this interval.  A
  // degraded remap may only borrow a disk no stream is about to use, or
  // a later stream's read would find its disk already reserved.  (A
  // coalescing migration either keeps the same read target this
  // interval or postpones the read, so the precomputed set stays sound.)
  // Disk health only changes between ticks (fault events), so when every
  // disk is up the set is never consulted and its build is skipped.
  const bool degraded = config_.degraded_policy != DegradedPolicy::kNone;
  const bool any_down = degraded && disks_->UnavailableCount() > 0;
  // Latent sector errors trip the same degraded ladder: a read whose
  // checksum fails is as unusable as a read off a failed disk.  The
  // O(1) active() test keeps the no-corruption common case free.
  const LatentErrorMap& latent = disks_->latent_errors();
  const bool latent_active = latent.active();
#ifndef STAGGER_AUDIT
  // Sharded fast path (DESIGN.md §11): on a healthy array the advance
  // of one stream neither reads nor writes any other stream's state, so
  // the id-sorted active set is split into num_shards contiguous slices
  // planned in parallel, each journalling its shared-state effects;
  // replaying the journals in shard order reproduces the serial
  // mutation sequence exactly.  Degraded ticks (a down disk or a live
  // latent error) fall back to the serial walk below — cross-stream
  // reads (claimed set, slack probes) make them order-dependent — as do
  // coalescing configs, whose lane migrations probe shared occupancy.
  // The per-tick re-check keeps a faulty run bit-identical too: the
  // same intervals shard in every (S, threads) combination.  Audit
  // builds compile the path out so every read crosses the per-lane
  // alignment audit, mirroring the lockstep fast path's treatment.
  if (config_.num_shards > 1 && !config_.coalesce && !any_down &&
      !latent_active && !active_.empty() &&
      static_cast<int64_t>(active_.size()) >=
          config_.shard_min_active_streams) {
    AdvanceStreamsSharded(rot);
    return;
  }
#endif
  if (any_down || (degraded && latent_active)) {
    for (const auto& [id, slot] : active_) {
      const Stream& s = slots_[static_cast<size_t>(slot)];
      const int64_t tau = s.Tau(interval_index_);
      for (const FragmentLane& lane : s.lanes) {
        if (lane.released() || lane.reads_done >= s.num_subobjects) continue;
        if (tau < lane.next_read_tau) continue;
        int32_t physical = lane.vdisk + rot;
        if (physical >= d) physical -= d;
        MarkClaimed(physical);
      }
    }
  }

  STAGGER_DCHECK(scratch_finished_.empty() && scratch_to_pause_.empty());
  // Hoisted out of the lane loop: testing a std::function loads its
  // target pointer every time, and the buffered-fragments counter is a
  // member the compiler cannot keep in a register across calls.  The
  // local delta is committed right after the loop, before the pause /
  // finish fix-ups below read the member.
  const bool observe = static_cast<bool>(config_.read_observer);
  int64_t buffered_delta = 0;
  // active_ is sorted by id, giving the deterministic ascending-id
  // processing order directly.  No admissions run inside this loop, so
  // slots_ is stable and index-based iteration is safe.
  for (size_t idx = 0; idx < active_.size(); ++idx) {
    const StreamId id = active_[idx].first;
    Stream& s = slots_[static_cast<size_t>(active_[idx].second)];
    // The slot walk jumps around slots_, whose active region is too
    // large to stay L1-resident at scale; fetching the next stream's
    // header + inline-lane lines while this one advances hides most of
    // that latency.
    if (idx + 1 < active_.size()) {
      const char* next = reinterpret_cast<const char*>(
          &slots_[static_cast<size_t>(active_[idx + 1].second)]);
      __builtin_prefetch(next);
      __builtin_prefetch(next + 64);
      __builtin_prefetch(next + 128);
    }
    const int64_t tau = s.Tau(interval_index_);

    if (config_.coalesce && s.fragmented) TryCoalesce(&s);

    // Reads: each lane reads the next fragment when its disk is aligned.
    // min_reads tracks the least-advanced unreleased lane so the
    // delivery step below can skip its per-lane hiccup scan on the
    // (overwhelmingly common) on-schedule path.  Released lanes are
    // excluded: they finished all their reads, so they never hiccup.
    bool pausing = false;
    int64_t min_reads = std::numeric_limits<int64_t>::max();
    bool advanced = false;
#ifndef STAGGER_AUDIT
    // Lockstep fast path.  A contiguous stream's lanes are admitted
    // together and then read every interval, so they stay identical in
    // reads_done / next_read_tau and occupy M adjacent virtual disks
    // (a pause mid-stripe retires the stream before divergence can
    // reach this loop).  One masked range-reserve plus a branchless
    // lane update replaces the per-lane scatter.  Audit builds keep
    // the per-lane path so the alignment audit covers every read; the
    // release-preset golden traces pin both paths to the same history.
    if (s.lockstep && !any_down && !latent_active && !observe &&
        s.degree > 0) {
      FragmentLane* lanes = s.lanes.data();
      if (!lanes[0].released() && lanes[0].reads_done < s.num_subobjects &&
          tau >= lanes[0].next_read_tau) {
        int32_t first = lanes[0].vdisk + rot;
        if (first >= d) first -= d;
        disks_->ReserveRun(first, s.degree);
        const int64_t done = lanes[0].reads_done + 1;
        for (int32_t j = 0; j < s.degree; ++j) {
          STAGGER_DCHECK(!lanes[j].released() &&
                         lanes[j].reads_done + 1 == done &&
                         lanes[j].next_read_tau <= tau &&
                         lanes[j].vdisk ==
                             (lanes[0].vdisk + j) % frame_.num_disks())
              << "contiguous stream " << s.id << " lanes out of lockstep";
          lanes[j].reads_done = done;
          lanes[j].next_read_tau = tau + 1;
        }
        buffered_delta += s.degree;
        min_reads = done;
        if (done >= s.num_subobjects) {
          for (int32_t j = 0; j < s.degree; ++j) ReleaseLane(&s, j);
        }
        advanced = true;
      }
    }
#endif
    if (!advanced) for (int32_t j = 0; j < s.degree; ++j) {
      FragmentLane& lane = s.lanes[static_cast<size_t>(j)];
      if (lane.released()) continue;
      if (lane.reads_done >= s.num_subobjects || tau < lane.next_read_tau) {
        min_reads = std::min(min_reads, lane.reads_done);
        continue;
      }
      int32_t physical = lane.vdisk + rot;
      if (physical >= d) physical -= d;
#ifdef STAGGER_AUDIT
      const int32_t expected = static_cast<int32_t>(PositiveMod(
          static_cast<int64_t>(s.start_disk) +
              lane.reads_done * config_.stride + j,
          d));
      STAGGER_CHECK(physical == expected)
          << "lane misalignment: stream " << s.id << " fragment " << j;
#endif
      int32_t read_disk = physical;
      const bool down = any_down && !disks_->IsAvailable(physical);
      const bool corrupt = !down && latent_active &&
                           latent.IsCorrupt(physical, lane.reads_done);
      if (corrupt && !degraded) {
        // DegradedPolicy::kNone verifies nothing: the corrupt fragment
        // ships to the viewer.  Counted so fault-aware configurations
        // can pin this to zero.
        ++metrics_.corrupt_frames_delivered;
      }
      if (degraded && (down || corrupt)) {
        if (corrupt) {
          // The checksum rejects the transfer before it completes, so
          // the corrupt read is not charged against the disk's slack;
          // the fragment is served through the ladder below instead.
          disks_->latent_errors().MarkDetected(physical, lane.reads_done);
          ++metrics_.corrupt_reads_detected;
        }
        read_disk = -1;
        if (config_.degraded_policy == DegradedPolicy::kReconstruct &&
            s.parity) {
          // Read the stripe's parity fragment in place of the lost one:
          // the M-1 surviving lanes plus parity reconstruct it in
          // buffer.  The extra read is charged against the parity
          // disk's slack this interval.
          const int32_t parity_disk = static_cast<int32_t>(PositiveMod(
              static_cast<int64_t>(s.start_disk) +
                  lane.reads_done * config_.stride + s.degree,
              d));
          if (disks_->IsAvailable(parity_disk) &&
              !disks_->SlotBusy(parity_disk) && !IsClaimed(parity_disk) &&
              !(latent_active &&
                latent.IsCorrupt(parity_disk, lane.reads_done))) {
            read_disk = parity_disk;
            ++metrics_.reconstructed_reads;
          }
        }
        if (read_disk < 0 &&
            config_.degraded_policy != DegradedPolicy::kPause) {
          // kRemapOrPause, or kReconstruct falling down its ladder when
          // parity offers no slack (or the stream carries none).  The
          // substitute models a replica read off another disk's copy,
          // so the original cell's corruption does not follow it.
          read_disk = FindDegradedSubstitute(s, static_cast<size_t>(j));
          if (read_disk >= 0) ++metrics_.degraded_reads;
        }
        if (read_disk < 0) {
          pausing = true;
          break;
        }
        MarkClaimed(read_disk);
      }
      disks_->ReserveSlot(read_disk);
      if (observe) {
        config_.read_observer(interval_index_, s.object, lane.reads_done, j,
                              read_disk);
      }
      ++lane.reads_done;
      ++buffered_delta;
      lane.next_read_tau = tau + 1;
      min_reads = std::min(min_reads, lane.reads_done);
      if (lane.reads_done >= s.num_subobjects) ReleaseLane(&s, j);
    }
    if (pausing) {
      // The stream cannot read its due fragment: park it before the
      // output clock would record a hiccup.  Reads already issued this
      // interval are wasted bandwidth, which is the honest cost of the
      // mid-stripe failure.
      // stagger-lint: allow(hot-path-alloc) -- scratch_to_pause_ keeps its capacity across ticks (clear(), never shrink), so this amortizes to zero allocations in steady state
      scratch_to_pause_.push_back(id);
      continue;
    }

    // Output: subobject `delivered` is transmitted at tau == delta_max +
    // delivered, synchronized across lanes (Algorithm 1).
    if (tau >= s.delta_max && s.delivered < s.num_subobjects) {
      const int64_t due = s.delivered;
      if (min_reads <= due) {
        // Some lane fell behind the output clock: charge one hiccup per
        // late lane, exactly as the full scan would.
        for (int32_t j = 0; j < s.degree; ++j) {
          if (s.lanes[static_cast<size_t>(j)].reads_done <= due) {
            ++metrics_.hiccups;
          }
        }
      }
      ++s.delivered;
      buffered_delta -= s.degree;
      if (s.delivered == 1 && !s.resumed_mid_display) {
        const SimTime latency = IntervalStart(interval_index_) - s.arrival_time;
        metrics_.startup_latency_sec.Add(latency.seconds());
        if (s.on_started) s.on_started(latency);
      }
      // stagger-lint: allow(hot-path-alloc) -- scratch_finished_ keeps its capacity across ticks (clear(), never shrink), so this amortizes to zero allocations in steady state
      if (s.delivered == s.num_subobjects) scratch_finished_.push_back(id);
    }
  }
  buffered_fragments_ += buffered_delta;

  for (StreamId id : scratch_to_pause_) PauseStream(id);
  scratch_to_pause_.clear();
  for (StreamId id : scratch_finished_) {
    if (SlotOf(id) < 0) continue;
    request_to_stream_.erase(id);
    FinishStream(id, /*completed=*/true);
  }
  scratch_finished_.clear();
}

void IntervalScheduler::AdvanceStreamsSharded(int32_t rot) {
  const int32_t num_shards = config_.num_shards;
  const size_t n = active_.size();
  if (shard_journals_.size() < static_cast<size_t>(num_shards)) {
    shard_journals_.resize(static_cast<size_t>(num_shards));
  }
  // Contiguous count-balanced slices of the id-sorted active set: slice
  // boundaries differ by at most one stream, and concatenating the
  // slices in shard order is exactly ascending stream id.
  const auto slice_begin = [n, num_shards](int32_t shard) {
    return n * static_cast<size_t>(shard) / static_cast<size_t>(num_shards);
  };
  if (shard_executor_ != nullptr) {
    shard_executor_->ParallelFor(
        num_shards, [this, rot, &slice_begin](int32_t shard) {
          PlanShardAdvance(shard, rot, slice_begin(shard),
                           slice_begin(shard + 1));
        });
  } else {
    for (int32_t shard = 0; shard < num_shards; ++shard) {
      PlanShardAdvance(shard, rot, slice_begin(shard), slice_begin(shard + 1));
    }
  }
  ++metrics_.sharded_ticks;
  ApplyShardJournals();
}

STAGGER_HOT_PATH void IntervalScheduler::PlanShardAdvance(int32_t shard,
                                                          int32_t rot,
                                                          size_t begin,
                                                          size_t end) {
  const int32_t d = frame_.num_disks();
  ShardJournal& journal = shard_journals_[static_cast<size_t>(shard)];
  journal.Clear();
  const bool observe = static_cast<bool>(config_.read_observer);
  // Mirrors the serial walk's healthy path line for line — the gate in
  // AdvanceStreams guarantees no disk is down, no latent error is live
  // and coalescing is off, so the degraded ladder and TryCoalesce are
  // unreachable here.  Everything mutated is stream-local; every shared
  // effect (reservations, observer calls, lane releases, stat samples)
  // is journalled instead of executed.
  for (size_t idx = begin; idx < end; ++idx) {
    const StreamId id = active_[idx].first;
    Stream& s = slots_[static_cast<size_t>(active_[idx].second)];
    if (idx + 1 < end) {
      const char* next = reinterpret_cast<const char*>(
          &slots_[static_cast<size_t>(active_[idx + 1].second)]);
      __builtin_prefetch(next);
      __builtin_prefetch(next + 64);
      __builtin_prefetch(next + 128);
    }
    const int64_t tau = s.Tau(interval_index_);

    int64_t min_reads = std::numeric_limits<int64_t>::max();
    bool advanced = false;
    // Lockstep fast path, journalled: one range-reserve op replaces the
    // per-lane scatter (same busy bits, folded identically at
    // EndInterval).  Observer configs take the per-lane path below so
    // the journal carries one observe op per read, like the serial walk.
    if (s.lockstep && !observe && s.degree > 0) {
      FragmentLane* lanes = s.lanes.data();
      if (!lanes[0].released() && lanes[0].reads_done < s.num_subobjects &&
          tau >= lanes[0].next_read_tau) {
        int32_t first = lanes[0].vdisk + rot;
        if (first >= d) first -= d;
        // stagger-lint: allow(hot-path-alloc) -- journal vectors keep their capacity across ticks (Clear(), never shrink), so this amortizes to zero allocations in steady state
        journal.ops.push_back(
            ShardOp{ShardOp::Kind::kReserveRun, first, s.degree, 0, 0});
        const int64_t done = lanes[0].reads_done + 1;
        for (int32_t j = 0; j < s.degree; ++j) {
          STAGGER_DCHECK(!lanes[j].released() &&
                         lanes[j].reads_done + 1 == done &&
                         lanes[j].next_read_tau <= tau &&
                         lanes[j].vdisk ==
                             (lanes[0].vdisk + j) % frame_.num_disks())
              << "contiguous stream " << s.id << " lanes out of lockstep";
          lanes[j].reads_done = done;
          lanes[j].next_read_tau = tau + 1;
        }
        journal.buffered_delta += s.degree;
        min_reads = done;
        if (done >= s.num_subobjects) {
          for (int32_t j = 0; j < s.degree; ++j) {
            FragmentLane& lane = lanes[j];
            STAGGER_DCHECK(!lane.released());
            // stagger-lint: allow(hot-path-alloc) -- journal vectors keep their capacity across ticks (Clear(), never shrink), so this amortizes to zero allocations in steady state
            journal.ops.push_back(ShardOp{ShardOp::Kind::kReleaseVdisk,
                                          lane.vdisk, 0, id, 0});
            lane.vdisk = FragmentLane::kReleased;
          }
        }
        advanced = true;
      }
    }
    if (!advanced) for (int32_t j = 0; j < s.degree; ++j) {
      FragmentLane& lane = s.lanes[static_cast<size_t>(j)];
      if (lane.released()) continue;
      if (lane.reads_done >= s.num_subobjects || tau < lane.next_read_tau) {
        min_reads = std::min(min_reads, lane.reads_done);
        continue;
      }
      int32_t physical = lane.vdisk + rot;
      if (physical >= d) physical -= d;
      // stagger-lint: allow(hot-path-alloc) -- journal vectors keep their capacity across ticks (Clear(), never shrink), so this amortizes to zero allocations in steady state
      journal.ops.push_back(
          ShardOp{ShardOp::Kind::kReserveSlot, physical, 0, 0, 0});
      if (observe) {
        // stagger-lint: allow(hot-path-alloc) -- journal vectors keep their capacity across ticks (Clear(), never shrink), so this amortizes to zero allocations in steady state
        journal.ops.push_back(ShardOp{ShardOp::Kind::kObserve, j, physical,
                                      lane.reads_done,
                                      static_cast<int64_t>(s.object)});
      }
      ++lane.reads_done;
      ++journal.buffered_delta;
      lane.next_read_tau = tau + 1;
      min_reads = std::min(min_reads, lane.reads_done);
      if (lane.reads_done >= s.num_subobjects) {
        // stagger-lint: allow(hot-path-alloc) -- journal vectors keep their capacity across ticks (Clear(), never shrink), so this amortizes to zero allocations in steady state
        journal.ops.push_back(
            ShardOp{ShardOp::Kind::kReleaseVdisk, lane.vdisk, 0, id, 0});
        lane.vdisk = FragmentLane::kReleased;
      }
    }

    if (tau >= s.delta_max && s.delivered < s.num_subobjects) {
      const int64_t due = s.delivered;
      if (min_reads <= due) {
        for (int32_t j = 0; j < s.degree; ++j) {
          if (s.lanes[static_cast<size_t>(j)].reads_done <= due) {
            ++journal.hiccups;
          }
        }
      }
      ++s.delivered;
      journal.buffered_delta -= s.degree;
      if (s.delivered == 1 && !s.resumed_mid_display) {
        // stagger-lint: allow(hot-path-alloc) -- journal vectors keep their capacity across ticks (Clear(), never shrink), so this amortizes to zero allocations in steady state
        journal.ops.push_back(ShardOp{ShardOp::Kind::kStarted,
                                      active_[idx].second, 0, 0, 0});
      }
      if (s.delivered == s.num_subobjects) {
        // stagger-lint: allow(hot-path-alloc) -- journal vectors keep their capacity across ticks (Clear(), never shrink), so this amortizes to zero allocations in steady state
        journal.finished.push_back(id);
      }
    }
  }
}

STAGGER_HOT_PATH void IntervalScheduler::ApplyShardJournals() {
  int64_t buffered_delta = 0;
  for (int32_t shard = 0; shard < config_.num_shards; ++shard) {
    ShardJournal& journal = shard_journals_[static_cast<size_t>(shard)];
    for (const ShardOp& op : journal.ops) {
      switch (op.kind) {
        case ShardOp::Kind::kReserveRun:
          disks_->ReserveRun(op.a, op.b);
          break;
        case ShardOp::Kind::kReserveSlot:
          disks_->ReserveSlot(op.a);
          break;
        case ShardOp::Kind::kObserve:
          config_.read_observer(interval_index_,
                                static_cast<ObjectId>(op.d), op.c, op.a,
                                op.b);
          break;
        case ShardOp::Kind::kReleaseVdisk:
          STAGGER_DCHECK(vdisk_owner_[static_cast<size_t>(op.a)] == op.c);
          vdisk_owner_[static_cast<size_t>(op.a)] = kNoStream;
          vdisk_occupied_.Clear(op.a);
          break;
        case ShardOp::Kind::kStarted: {
          Stream& s = slots_[static_cast<size_t>(op.a)];
          const SimTime latency =
              IntervalStart(interval_index_) - s.arrival_time;
          metrics_.startup_latency_sec.Add(latency.seconds());
          if (s.on_started) s.on_started(latency);
          break;
        }
      }
    }
    metrics_.hiccups += journal.hiccups;
    buffered_delta += journal.buffered_delta;
  }
  // Same commit point as the serial walk: the delta lands before the
  // finish fix-ups read the member through TotalBufferedFragments().
  buffered_fragments_ += buffered_delta;
  for (int32_t shard = 0; shard < config_.num_shards; ++shard) {
    for (StreamId id : shard_journals_[static_cast<size_t>(shard)].finished) {
      if (SlotOf(id) < 0) continue;
      request_to_stream_.erase(id);
      FinishStream(id, /*completed=*/true);
    }
  }
}

int32_t IntervalScheduler::FindDegradedSubstitute(const Stream& s,
                                                  size_t lane_index) const {
  const int32_t d = frame_.num_disks();
  const FragmentLane& lane = s.lanes[lane_index];
  const auto usable = [&](int32_t disk) {
    return disks_->IsAvailable(disk) && !disks_->SlotBusy(disk) &&
           !IsClaimed(disk);
  };
  // Surviving disks of the subobject's own stripe first — they hold the
  // sibling fragments a stripe-level replica reconstructs from — then
  // any disk with slack this interval.
  const int64_t base = static_cast<int64_t>(s.start_disk) +
                       lane.reads_done * config_.stride;
  for (int32_t j = 0; j < s.degree; ++j) {
    const int32_t cand = static_cast<int32_t>(PositiveMod(base + j, d));
    if (usable(cand)) return cand;
  }
  for (int32_t cand = 0; cand < d; ++cand) {
    if (usable(cand)) return cand;
  }
  return -1;
}

void IntervalScheduler::PauseStream(StreamId id) {
  Stream* sp = FindStream(id);
  STAGGER_CHECK(sp != nullptr) << "unknown stream " << id;
  Stream& s = *sp;
  STAGGER_DCHECK(s.delivered < s.num_subobjects);

  PausedStream p;
  p.id = s.id;
  p.remainder.object = s.object;
  p.remainder.degree = s.degree;
  // Resume from the first undelivered subobject; buffered read-ahead is
  // dropped (those fragments will be re-read after recovery).
  p.remainder.start_disk = static_cast<int32_t>(PositiveMod(
      static_cast<int64_t>(s.start_disk) + s.delivered * config_.stride,
      frame_.num_disks()));
  p.remainder.num_subobjects = s.num_subobjects - s.delivered;
  p.remainder.parity = s.parity;
  p.remainder.on_started = std::move(s.on_started);
  p.remainder.on_completed = std::move(s.on_completed);
  p.remainder.on_interrupted = std::move(s.on_interrupted);
  p.arrival = s.arrival_time;
  p.paused_at = sim_->Now();
  p.paused_at_interval = interval_index_;
  p.backoff = config_.retry_backoff_intervals;
  p.retry_at_interval = interval_index_ + p.backoff;
  p.resumed_mid_display = s.delivered > 0 || s.resumed_mid_display;

  request_to_stream_[id] = kNoStream;
  ++metrics_.streams_paused;
  FinishStream(id, /*completed=*/false);
  paused_.push_back(std::move(p));
}

void IntervalScheduler::RetryPaused() {
  for (auto it = paused_.begin(); it != paused_.end();) {
    PausedStream& p = *it;
    if (interval_index_ < p.retry_at_interval) {
      ++it;
      continue;
    }
    if (config_.max_pause_intervals > 0 &&
        interval_index_ - p.paused_at_interval > config_.max_pause_intervals) {
      // Give up: the viewer's display is interrupted for good.  The
      // owner is told so it can release per-display state (pins) and a
      // closed-loop station is not left waiting forever.
      request_to_stream_.erase(p.id);
      ++metrics_.displays_interrupted;
      ++metrics_.displays_cancelled;
      auto on_interrupted = std::move(p.remainder.on_interrupted);
      it = paused_.erase(it);
      if (on_interrupted) on_interrupted();
      continue;
    }
    Pending pending;
    pending.id = p.id;
    pending.req = p.remainder;
    pending.arrival = p.arrival;
    pending.resumed = true;
    pending.started = p.resumed_mid_display;
    if (TryAdmit(pending)) {
      ++metrics_.streams_resumed;
      metrics_.resume_latency_sec.Add((sim_->Now() - p.paused_at).seconds());
      it = paused_.erase(it);
    } else {
      p.backoff =
          std::min(p.backoff * 2, config_.max_retry_backoff_intervals);
      p.retry_at_interval = interval_index_ + p.backoff;
      ++it;
    }
  }
}

void IntervalScheduler::TryCoalesce(Stream* s) {
  // One migration per stream per interval (Algorithm 2 admits a new
  // coalesce request only after the previous one completes).
  const int64_t tau = s->Tau(interval_index_);
  const int32_t d = frame_.num_disks();

  // Pick the lane with the largest lead (biggest buffer backlog).
  int32_t pick = -1;
  int64_t pick_lead = 0;
  for (int32_t j = 0; j < s->degree; ++j) {
    const FragmentLane& lane = s->lanes[static_cast<size_t>(j)];
    if (lane.released() || lane.reads_done >= s->num_subobjects) continue;
    if (lane.next_read_tau > tau) continue;  // mid-gap from prior migration
    const int64_t effective_delta = lane.next_read_tau - lane.reads_done;
    const int64_t lead = s->delta_max - effective_delta;
    if (lead > pick_lead) {
      pick_lead = lead;
      pick = j;
    }
  }
  if (pick < 0) return;

  FragmentLane& lane = s->lanes[static_cast<size_t>(pick)];
  const int32_t target = static_cast<int32_t>(PositiveMod(
      static_cast<int64_t>(s->start_disk) + lane.reads_done * config_.stride +
          pick,
      d));
  const int64_t cur_effective = lane.next_read_tau - lane.reads_done;
  // Latest safe resume: outputs reach subobject reads_done exactly when
  // the new disk takes over (backlog fully drained, no hiccup).
  const int64_t max_resume = lane.reads_done + s->delta_max;

  // The free virtual disk with the largest safe resume, found by probing
  // the occupancy bitmap in strictly decreasing resume order.
  const auto found = frame_.FindLatestFreeVdisk(vdisk_occupied_,
                                                interval_index_, target, tau,
                                                max_resume);
  if (!found.has_value()) return;
  const int32_t best_v = found->first;
  const int64_t best_resume = found->second;
  const int64_t new_effective = best_resume - lane.reads_done;
  if (new_effective <= cur_effective) return;  // no buffer improvement

  // Migrate: release the old disk now; reads resume on the new one.
  vdisk_owner_[static_cast<size_t>(lane.vdisk)] = kNoStream;
  vdisk_occupied_.Clear(lane.vdisk);
  vdisk_owner_[static_cast<size_t>(best_v)] = s->id;
  vdisk_occupied_.Set(best_v);
  lane.vdisk = best_v;
  lane.next_read_tau = best_resume;
  ++metrics_.coalesce_migrations;

  // Shrink the buffer reservation to the new steady-state backlog.
  int64_t new_reserved = 0;
  for (int32_t j = 0; j < s->degree; ++j) {
    const FragmentLane& l = s->lanes[static_cast<size_t>(j)];
    if (l.reads_done >= s->num_subobjects) continue;
    const int64_t eff = l.next_read_tau - l.reads_done;
    new_reserved += std::max<int64_t>(0, s->delta_max - eff);
  }
  if (new_reserved < s->buffer_reserved) {
    buffers_.Release(s->buffer_reserved - new_reserved);
    s->buffer_reserved = new_reserved;
  }
  // Still fragmented while any lane leads.
  s->fragmented = false;
  for (int32_t j = 0; j < s->degree; ++j) {
    const FragmentLane& l = s->lanes[static_cast<size_t>(j)];
    if (l.reads_done >= s->num_subobjects) continue;
    if (l.next_read_tau - l.reads_done < s->delta_max) {
      s->fragmented = true;
      break;
    }
  }
}

void IntervalScheduler::ReleaseLane(Stream* s, int32_t lane_index) {
  FragmentLane& lane = s->lanes[static_cast<size_t>(lane_index)];
  if (lane.released()) return;
  STAGGER_DCHECK(vdisk_owner_[static_cast<size_t>(lane.vdisk)] == s->id);
  vdisk_owner_[static_cast<size_t>(lane.vdisk)] = kNoStream;
  vdisk_occupied_.Clear(lane.vdisk);
  lane.vdisk = FragmentLane::kReleased;
}

void IntervalScheduler::FinishStream(StreamId id, bool completed) {
  const int32_t slot = SlotOf(id);
  STAGGER_CHECK(slot >= 0) << "unknown stream " << id;
  Stream& s = slots_[static_cast<size_t>(slot)];
  buffered_fragments_ -= s.TotalBufferedFragments();
  for (int32_t j = 0; j < s.degree; ++j) {
    ReleaseLane(&s, j);
  }
  if (s.buffer_reserved > 0) {
    buffers_.Release(s.buffer_reserved);
    s.buffer_reserved = 0;
  }
  auto on_completed = std::move(s.on_completed);
  // Reset the slot for reuse; lanes keep their capacity, callbacks drop
  // their captures.
  s.id = kNoStream;
  s.lanes.clear();
  s.on_completed = nullptr;
  s.on_started = nullptr;
  s.on_interrupted = nullptr;
  EraseActive(id);
  free_slots_.push_back(slot);
  if (completed) {
    ++metrics_.displays_completed;
    if (on_completed) on_completed();
  }
}

void IntervalScheduler::UpdateIntervalStats() {
  const SimTime now = sim_->Now();
  metrics_.queue_length.Set(now, static_cast<double>(queue_.size()));
  metrics_.buffered_fragments.Set(now,
                                  static_cast<double>(buffered_fragments_));
  metrics_.peak_buffered_fragments =
      std::max(metrics_.peak_buffered_fragments, buffered_fragments_);
}

}  // namespace stagger
