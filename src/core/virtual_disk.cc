#include "core/virtual_disk.h"

#include <algorithm>
#include <numeric>
#include <string>

namespace stagger {

int64_t ExtendedGcd(int64_t a, int64_t b, int64_t* x, int64_t* y) {
  if (b == 0) {
    *x = 1;
    *y = 0;
    return a;
  }
  int64_t x1, y1;
  const int64_t g = ExtendedGcd(b, a % b, &x1, &y1);
  *x = y1;
  *y = x1 - (a / b) * y1;
  return g;
}

Result<int64_t> ModInverse(int64_t a, int64_t m) {
  if (m < 1) return Status::InvalidArgument("ModInverse: modulus must be >= 1");
  if (m == 1) return int64_t{0};
  int64_t x, y;
  const int64_t g = ExtendedGcd(PositiveMod(a, m), m, &x, &y);
  if (g != 1) {
    return Status::NotFound("ModInverse: " + std::to_string(a) + " not invertible mod " +
                            std::to_string(m));
  }
  return PositiveMod(x, m);
}

Result<VirtualDiskFrame> VirtualDiskFrame::Create(int32_t num_disks, int32_t stride) {
  if (num_disks < 1) {
    return Status::InvalidArgument("VirtualDiskFrame: need at least one disk");
  }
  if (stride < 1 || stride > num_disks) {
    return Status::InvalidArgument("VirtualDiskFrame: stride must be in [1, D]");
  }
  const int32_t g = static_cast<int32_t>(
      std::gcd(static_cast<int64_t>(num_disks), static_cast<int64_t>(stride)));
  // (k/g) is invertible modulo (D/g) by construction.
  STAGGER_ASSIGN_OR_RETURN(int64_t inv, ModInverse(stride / g, num_disks / g));
  return VirtualDiskFrame(num_disks, stride, g, inv);
}

std::optional<int64_t> VirtualDiskFrame::AlignmentDelay(int32_t v, int32_t p,
                                                        int64_t t) const {
  // Solve k * delta == p - PhysicalOf(v, t)  (mod D), delta >= 0 minimal.
  const int64_t c = PositiveMod(p - PhysicalOf(v, t), num_disks_);
  if (c % gcd_ != 0) return std::nullopt;
  const int64_t m = period();
  return PositiveMod((c / gcd_) * stride_inverse_, m);
}

std::optional<std::pair<int32_t, int64_t>> VirtualDiskFrame::FindEarliestFreeVdisk(
    const Bitmap& occupied, const Bitmap& taken, int64_t t, int32_t target,
    int64_t max_delay, bool skip_zero) const {
  // Delays beyond the period revisit the same virtual disks.
  const int64_t limit = std::min<int64_t>(max_delay, period() - 1);
  int32_t v = VirtualOf(target, t);  // the delta = 0 candidate
  for (int64_t delta = 0; delta <= limit; ++delta) {
    if (!(skip_zero && delta == 0) && !occupied.Test(v) && !taken.Test(v)) {
      return std::make_pair(v, delta);
    }
    // v_{delta+1} = v_delta - k (mod D).
    v -= stride_;
    if (v < 0) v += num_disks_;
  }
  return std::nullopt;
}

std::optional<std::pair<int32_t, int64_t>> VirtualDiskFrame::FindLatestFreeVdisk(
    const Bitmap& occupied, int64_t t, int32_t target, int64_t tau,
    int64_t max_resume) const {
  if (max_resume < tau) return std::nullopt;
  // A candidate at delay delta resumes at tau + delta, boosted by whole
  // periods up to max_resume; the boosted value is max_resume - c with
  // c = (max_resume - tau - delta) mod P.  Scanning c upward therefore
  // visits resumes in strictly decreasing order, and within one scan each
  // candidate virtual disk appears exactly once.
  const int64_t p = period();
  int64_t delta = PositiveMod(max_resume - tau, p);  // the c = 0 candidate
  int32_t v = VirtualOf(target, t + delta);
  for (int64_t c = 0; c < p; ++c) {
    // Reject candidates whose smallest alignment already overshoots
    // (only possible while max_resume - tau < P).
    if (tau + delta <= max_resume && !occupied.Test(v)) {
      return std::make_pair(v, max_resume - c);
    }
    // delta decreases by one per step (wrapping to P-1), so v advances
    // by +k mod D: v depends on delta only through delta mod P.
    delta = delta == 0 ? p - 1 : delta - 1;
    v += stride_;
    if (v >= num_disks_) v -= num_disks_;
  }
  return std::nullopt;
}

}  // namespace stagger
