#include "core/virtual_disk.h"

#include <numeric>
#include <string>

namespace stagger {

int64_t ExtendedGcd(int64_t a, int64_t b, int64_t* x, int64_t* y) {
  if (b == 0) {
    *x = 1;
    *y = 0;
    return a;
  }
  int64_t x1, y1;
  const int64_t g = ExtendedGcd(b, a % b, &x1, &y1);
  *x = y1;
  *y = x1 - (a / b) * y1;
  return g;
}

Result<int64_t> ModInverse(int64_t a, int64_t m) {
  if (m < 1) return Status::InvalidArgument("ModInverse: modulus must be >= 1");
  if (m == 1) return int64_t{0};
  int64_t x, y;
  const int64_t g = ExtendedGcd(PositiveMod(a, m), m, &x, &y);
  if (g != 1) {
    return Status::NotFound("ModInverse: " + std::to_string(a) + " not invertible mod " +
                            std::to_string(m));
  }
  return PositiveMod(x, m);
}

Result<VirtualDiskFrame> VirtualDiskFrame::Create(int32_t num_disks, int32_t stride) {
  if (num_disks < 1) {
    return Status::InvalidArgument("VirtualDiskFrame: need at least one disk");
  }
  if (stride < 1 || stride > num_disks) {
    return Status::InvalidArgument("VirtualDiskFrame: stride must be in [1, D]");
  }
  const int32_t g = static_cast<int32_t>(
      std::gcd(static_cast<int64_t>(num_disks), static_cast<int64_t>(stride)));
  // (k/g) is invertible modulo (D/g) by construction.
  STAGGER_ASSIGN_OR_RETURN(int64_t inv, ModInverse(stride / g, num_disks / g));
  return VirtualDiskFrame(num_disks, stride, g, inv);
}

std::optional<int64_t> VirtualDiskFrame::AlignmentDelay(int32_t v, int32_t p,
                                                        int64_t t) const {
  // Solve k * delta == p - PhysicalOf(v, t)  (mod D), delta >= 0 minimal.
  const int64_t c = PositiveMod(p - PhysicalOf(v, t), num_disks_);
  if (c % gcd_ != 0) return std::nullopt;
  const int64_t m = period();
  return PositiveMod((c / gcd_) * stride_inverse_, m);
}

}  // namespace stagger
