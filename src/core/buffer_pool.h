// Buffer-memory accounting.  Time-fragmented delivery (Algorithm 1)
// and low-bandwidth multiplexing (Section 3.2.3) trade memory for
// schedulability; the pool enforces a configurable fragment budget and
// records usage statistics for the experiments.

#ifndef STAGGER_CORE_BUFFER_POOL_H_
#define STAGGER_CORE_BUFFER_POOL_H_

#include <cstdint>

#include "util/stats.h"
#include "util/units.h"

namespace stagger {

/// \brief Counting semaphore over fragment-sized buffers.
class BufferPool {
 public:
  /// \param capacity_fragments  budget; <= 0 means unlimited.
  explicit BufferPool(int64_t capacity_fragments)
      : capacity_(capacity_fragments) {}

  bool unlimited() const { return capacity_ <= 0; }
  int64_t capacity() const { return capacity_; }
  int64_t reserved() const { return reserved_; }
  int64_t peak_reserved() const { return peak_; }

  /// Attempts to reserve `fragments` buffers; false when the budget
  /// would be exceeded.
  bool TryReserve(int64_t fragments) {
    STAGGER_DCHECK(fragments >= 0);
    if (!unlimited() && reserved_ + fragments > capacity_) return false;
    reserved_ += fragments;
    if (reserved_ > peak_) peak_ = reserved_;
    return true;
  }

  void Release(int64_t fragments) {
    STAGGER_DCHECK(fragments >= 0);
    reserved_ -= fragments;
    STAGGER_CHECK(reserved_ >= 0) << "buffer pool released more than reserved";
  }

 private:
  int64_t capacity_;
  int64_t reserved_ = 0;
  int64_t peak_ = 0;
};

}  // namespace stagger

#endif  // STAGGER_CORE_BUFFER_POOL_H_
